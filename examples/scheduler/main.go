// scheduler: an OS process-scheduler relation — the motivating example of
// the RelC line of work (Hawkins et al., PLDI 2011) — made concurrent.
//
// The scheduler tracks {pid, state, cpu | pid → state, cpu}: every process
// has a unique pid, a run state and a cpu assignment. Hot queries:
//
//   - dispatch: the runnable processes on a given cpu  (state, cpu bound)
//   - ps: everything about one pid                     (pid bound)
//   - load balancing: all processes on a cpu           (cpu bound)
//
// The decomposition indexes the relation twice: a ConcurrentHashMap from
// pid (point lookups), and a two-level state → cpu → pid index whose inner
// containers are TreeMaps (sorted dispatch order). Scheduler ticks from
// several goroutines migrate processes between states and cpus while
// dispatchers query runnable sets — all serializable by construction.
package main

import (
	"fmt"
	"log"
	"sync"

	crs "repro"
)

const (
	stateRunnable = "runnable"
	stateRunning  = "running"
	stateBlocked  = "blocked"
)

func buildScheduler() *crs.Relation {
	spec := crs.MustSpec([]string{"pid", "state", "cpu"},
		crs.FD{From: []string{"pid"}, To: []string{"state", "cpu"}})
	// Two indexes:
	//   ρa: pid → (state, cpu)            — ConcurrentHashMap + Cell
	//   ρb: state → cpu → pid set         — HashMap of TreeMap of TreeMap
	d, err := crs.NewBuilder(spec, "ρ").
		Edge("ρa", "ρ", "a", []string{"pid"}, crs.ConcurrentHashMap).
		Edge("ab", "a", "b", []string{"cpu", "state"}, crs.Cell).
		Edge("ρc", "ρ", "c", []string{"state"}, crs.HashMap).
		Edge("cd", "c", "d", []string{"cpu"}, crs.TreeMap).
		Edge("de", "d", "b", []string{"pid"}, crs.TreeMap).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	p := crs.NewPlacement(d)
	// Stripe the pid index across 64 root locks; the state index keeps a
	// single root-stripe lock (few states, coarse is right there), the
	// per-state and per-cpu levels get their own instance locks.
	p.SetStripes(d.Root, 64)
	p.Place(d.EdgeByName("ρa"), d.Root, "pid")
	p.Place(d.EdgeByName("ρc"), d.Root)
	r, err := crs.Synthesize(spec, crs.WithDecomposition(d), crs.WithPlacement(p))
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	sched := buildScheduler()

	// Spawn 64 processes, runnable, round-robin across 4 cpus.
	for pid := 0; pid < 64; pid++ {
		ok, err := sched.Insert(crs.T("pid", pid), crs.T("state", stateRunnable, "cpu", pid%4))
		if err != nil || !ok {
			log.Fatalf("spawn %d: %v %v", pid, ok, err)
		}
	}

	// ps 17.
	ps, _ := sched.Query(crs.T("pid", 17), "state", "cpu")
	fmt.Println("ps 17:", ps)

	// Dispatch queue for cpu 2.
	runnable, _ := sched.Query(crs.T("state", stateRunnable, "cpu", 2), "pid")
	fmt.Printf("cpu 2 runnable: %d processes\n", len(runnable))

	// migrate changes a process's state/cpu: relationally, remove + insert
	// under put-if-absent (pid is the key, so this is atomic per step and
	// the FD pid → state,cpu can never break).
	migrate := func(pid int, state string, cpu int) {
		if ok, err := sched.Remove(crs.T("pid", pid)); err != nil || !ok {
			return
		}
		if _, err := sched.Insert(crs.T("pid", pid), crs.T("state", state, "cpu", cpu)); err != nil {
			log.Fatal(err)
		}
	}

	// Concurrent scheduler ticks: per-cpu dispatchers picking runnable
	// processes and running them, a load balancer moving processes across
	// cpus, and an I/O goroutine blocking/unblocking processes.
	var wg sync.WaitGroup
	for cpu := 0; cpu < 4; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			for tick := 0; tick < 200; tick++ {
				q, _ := sched.Query(crs.T("state", stateRunnable, "cpu", cpu), "pid")
				if len(q) > 0 {
					pid := q[tick%len(q)].MustGet("pid").(int)
					migrate(pid, stateRunning, cpu)
					migrate(pid, stateRunnable, cpu)
				}
			}
		}(cpu)
	}
	wg.Add(2)
	go func() { // load balancer
		defer wg.Done()
		for i := 0; i < 200; i++ {
			migrate(i%64, stateRunnable, (i*7)%4)
		}
	}()
	go func() { // I/O: block and wake processes
		defer wg.Done()
		for i := 0; i < 200; i++ {
			pid := (i * 13) % 64
			migrate(pid, stateBlocked, pid%4)
			migrate(pid, stateRunnable, pid%4)
		}
	}()
	wg.Wait()

	// Invariants after the storm: exactly 64 processes, pid unique.
	snap, _ := sched.Snapshot()
	pids := map[int]bool{}
	for _, t := range snap {
		pids[t.MustGet("pid").(int)] = true
	}
	fmt.Printf("after concurrent scheduling: %d processes, %d distinct pids\n", len(snap), len(pids))
	perState := map[string]int{}
	for _, t := range snap {
		perState[t.MustGet("state").(string)]++
	}
	fmt.Println("by state:", perState)

	plan, _ := sched.ExplainQuery([]string{"cpu", "state"}, []string{"pid"})
	fmt.Println("\ndispatch-queue plan:")
	fmt.Print(plan)
}
