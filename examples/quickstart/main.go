// Quickstart: the §2 running example — a concurrent directed-graph
// relation — synthesized three ways (coarse stick, striped stick,
// speculative diamond), exercised with the four relational operations and
// a small concurrent workload.
package main

import (
	"fmt"
	"log"
	"sync"

	crs "repro"
)

func main() {
	// 1. The relational specification is the whole data definition:
	//    columns {src, dst, weight} with the FD src,dst → weight.
	spec := crs.GraphSpec()
	fmt.Println("specification:", spec)

	// 2. Describe a representation: a "stick" — a ConcurrentHashMap from
	//    src to a TreeMap from dst to the weight — plus a lock placement
	//    striping the top level across 64 root locks.
	d, err := crs.NewBuilder(spec, "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, crs.ConcurrentHashMap).
		Edge("uv", "u", "v", []string{"dst"}, crs.TreeMap).
		Edge("vw", "v", "w", []string{"weight"}, crs.Cell).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	p := crs.NewPlacement(d)
	p.SetStripes(d.Root, 64)
	p.Place(d.EdgeByName("ρu"), d.Root, "src")

	// 3. Synthesize: the compiler validates everything, plans each
	//    operation, and returns a serializable, deadlock-free relation.
	graph, err := crs.Synthesize(spec, crs.WithDecomposition(d), crs.WithPlacement(p))
	if err != nil {
		log.Fatal(err)
	}

	// 4. The §2 worked example.
	ok, _ := graph.Insert(crs.T("src", 1, "dst", 2), crs.T("weight", 42))
	fmt.Println("insert (1,2,42):", ok)
	ok, _ = graph.Insert(crs.T("src", 1, "dst", 2), crs.T("weight", 101))
	fmt.Println("insert (1,2,101) — put-if-absent rejects:", ok)
	graph.Insert(crs.T("src", 1, "dst", 3), crs.T("weight", 7))
	succ, _ := graph.Query(crs.T("src", 1), "dst", "weight")
	fmt.Println("successors of 1:", succ)
	graph.Remove(crs.T("dst", 2, "src", 1))
	snap, _ := graph.Snapshot()
	fmt.Println("after remove:", snap)

	// 5. The same program text runs against any legal representation:
	//    swap in the speculative diamond without touching client code.
	v, err := crs.GraphVariantByName("Diamond Spec")
	if err != nil {
		log.Fatal(err)
	}
	diamond, err := v.Build()
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s, dd := int64((w*31+i)%40), int64((w*17+i*3)%40)
				diamond.Insert(crs.T("src", s, "dst", dd), crs.T("weight", i))
				diamond.Query(crs.T("src", s), "dst", "weight")
				diamond.Query(crs.T("dst", dd), "src", "weight")
				if i%3 == 0 {
					diamond.Remove(crs.T("src", s, "dst", dd))
				}
			}
		}(w)
	}
	wg.Wait()
	final, _ := diamond.Snapshot()
	fmt.Printf("diamond after concurrent workload: %d edges, serializable throughout\n", len(final))

	// 6. Ask the compiler what it generated.
	plan, _ := graph.ExplainQuery([]string{"src"}, []string{"dst", "weight"})
	fmt.Println("\nplan for find-successors on the stick:")
	fmt.Print(plan)
}
