// autotuned: the §6.1 workflow end to end — train the autotuner on your
// workload, take the winning representation, and use it.
//
// The example tunes two very different mixes (successor-only vs
// predecessor-heavy) on a reduced candidate set and shows that the best
// representation changes with the workload — the paper's headline
// observation ("the best data representation varies with the workload").
package main

import (
	"fmt"
	"log"

	crs "repro"
)

func main() {
	cands := crs.EnumerateGraphCandidates()
	fmt.Printf("search space: %d legal representations (structure × placement × striping × containers)\n", len(cands))

	mixes := []crs.Mix{
		{Successors: 70, Predecessors: 0, Inserts: 20, Removes: 10},
		{Successors: 45, Predecessors: 45, Inserts: 9, Removes: 1},
	}
	for _, mix := range mixes {
		cfg := crs.BenchConfig{
			Threads:      2,
			OpsPerThread: 4_000,
			KeySpace:     256,
			Seed:         7,
			Mix:          mix,
		}
		// Static pre-filter: rank all candidates by the §5.2 plan-cost
		// model, measure only the 24 cheapest — the static+dynamic search
		// the paper sketches in §8.
		scored, err := crs.Tune(cands, cfg, crs.TuneOptions{TopStatic: 24})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nmix %s — top 5 of %d measured:\n", mix, len(scored))
		for i := 0; i < 5 && i < len(scored); i++ {
			fmt.Printf("  %d. %-62s %10.0f ops/s\n", i+1, scored[i].Name, scored[i].Result.Throughput)
		}

		// Deploy the winner.
		best := scored[0]
		r, err := best.Build()
		if err != nil {
			log.Fatal(err)
		}
		g := crs.MustRelationGraph(r)
		for i := int64(0); i < 100; i++ {
			g.InsertEdge(i%10, i%7, i)
		}
		fmt.Printf("  deployed %q: node 3 has %d successors, %d predecessors\n",
			best.Name, g.FindSuccessors(3), g.FindPredecessors(3))
	}
}
