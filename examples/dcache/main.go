// dcache: the Figure 2 example — a filesystem directory-entry cache
// modeled on the Linux kernel's dcache, expressed as the relation
// {parent, name, child | parent,name → child} and decomposed exactly as
// in Figure 2(a): a TreeMap from parent to a TreeMap of names (fast
// directory listing and unmount), plus a global ConcurrentHashMap over
// (parent, name) (fast path lookup).
//
// The example populates the Figure 2(b) instance, runs the path-walking
// and listing queries, then simulates concurrent path lookups racing with
// creates and unlinks — the workload the kernel's dcache locks exist for.
package main

import (
	"fmt"
	"log"
	"sync"

	crs "repro"
)

func buildDcache() (*crs.Relation, *crs.Decomposition) {
	spec := crs.MustSpec([]string{"parent", "name", "child"},
		crs.FD{From: []string{"parent", "name"}, To: []string{"child"}})
	d, err := crs.NewBuilder(spec, "ρ").
		Edge("ρx", "ρ", "x", []string{"parent"}, crs.TreeMap).
		Edge("xy", "x", "y", []string{"name"}, crs.TreeMap).
		Edge("ρy", "ρ", "y", []string{"parent", "name"}, crs.ConcurrentHashMap).
		Edge("yz", "y", "z", []string{"child"}, crs.Cell).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	// Fine-grain placement: one lock per directory (Figure 2(a)'s edge
	// labels ρ, x, y are exactly these placements).
	r, err := crs.Synthesize(spec, crs.WithDecomposition(d))
	if err != nil {
		log.Fatal(err)
	}
	return r, d
}

func main() {
	dc, d := buildDcache()

	// The Figure 2(b) instance: inode 1 contains "a"→2; inode 2 contains
	// "b"→3 and "c"→4.
	for _, e := range []struct {
		parent int
		name   string
		child  int
	}{{1, "a", 2}, {2, "b", 3}, {2, "c", 4}} {
		if ok, err := dc.Insert(crs.T("parent", e.parent, "name", e.name), crs.T("child", e.child)); err != nil || !ok {
			log.Fatalf("mkdir %v: %v %v", e, ok, err)
		}
	}

	// Path lookup /a/b — two hashtable hits on the ρy edge.
	lookup := func(parent int, name string) (int, bool) {
		res, err := dc.Query(crs.T("parent", parent, "name", name), "child")
		if err != nil {
			log.Fatal(err)
		}
		if len(res) == 0 {
			return 0, false
		}
		return res[0].MustGet("child").(int), true
	}
	a, _ := lookup(1, "a")
	b, _ := lookup(a, "b")
	fmt.Printf("path walk /a/b → inode %d\n", b)

	// Directory listing of inode 2 — sorted scan of the per-directory
	// TreeMap.
	ls, _ := dc.Query(crs.T("parent", 2), "name", "child")
	fmt.Println("ls inode 2:", ls)

	// Creating a colliding name fails atomically (the FD guard).
	if ok, _ := dc.Insert(crs.T("parent", 2, "name", "b"), crs.T("child", 99)); ok {
		log.Fatal("duplicate dentry accepted")
	}

	// Concurrent workload: path lookups racing with create/unlink churn in
	// separate directories, all serializable by construction.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dir := 100 + w // each worker owns a directory inode
			for i := 0; i < 300; i++ {
				name := fmt.Sprintf("f%d", i%10)
				dc.Insert(crs.T("parent", dir, "name", name), crs.T("child", dir*1000+i))
				lookup(dir, name)
				dc.Query(crs.T("parent", dir), "name", "child") // readdir
				if i%4 == 3 {
					dc.Remove(crs.T("parent", dir, "name", name))
				}
			}
		}(w)
	}
	wg.Wait()
	snap, _ := dc.Snapshot()
	fmt.Printf("after churn: %d dentries, all indexes coherent\n", len(snap))

	// What the compiler generated for the unmount-style full iteration —
	// compare with plans (2)–(4) of §5.2.
	plan, _ := dc.ExplainQuery(nil, []string{"child", "name", "parent"})
	fmt.Println("\nfull-iteration plan (cf. §5.2 plan (4)):")
	fmt.Print(plan)

	fmt.Println("\nGraphviz of the decomposition (Figure 2(a)):")
	fmt.Print(d.ToDOT("dcache"))
}
