// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Figure 5 panels:      BenchmarkFigure5_<mix>/<variant>
// Figure 1 table:       BenchmarkFigure1Containers/<kind>/<op>
// Ablations (§4.4/4.5/§5.2/§6.2):
//
//	BenchmarkAblationStripes, BenchmarkAblationSpeculative,
//	BenchmarkAblationSortElision, BenchmarkAblationContainers
//
// Each Figure 5 benchmark iteration performs one graph operation drawn
// from the mix; b.RunParallel spreads iterations over GOMAXPROCS
// goroutines, so ops/sec (reported as the custom metric "ops/s") is the
// aggregate-throughput analog of the paper's y-axis. cmd/crsbench runs the
// same series with explicit thread counts and the paper's 5·10^5
// ops/thread methodology.
package crs_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	crs "repro"
	"repro/internal/container"
	"repro/internal/handcoded"
	"repro/internal/rel"
)

// benchKeySpace matches cmd/crsbench's default node-id space.
const benchKeySpace = 512

func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// benchGraphOps runs mix-distributed operations over g for b.N iterations
// across parallel goroutines and reports aggregate ops/s.
func benchGraphOps(b *testing.B, g crs.GraphOps, mix crs.Mix) {
	b.Helper()
	// Pre-populate so reads have something to find.
	seed := uint64(12345)
	for i := 0; i < 2048; i++ {
		r := splitmix(&seed)
		g.InsertEdge(int64(r%benchKeySpace), int64((r>>32)%benchKeySpace), int64(r>>48))
	}
	var tid atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		state := tid.Add(1) * 0x9e3779b97f4a7c15
		var sink int
		for pb.Next() {
			r := splitmix(&state)
			choice := int(r % 100)
			a := int64((r >> 32) % benchKeySpace)
			c := int64((r >> 16) % benchKeySpace)
			switch {
			case choice < mix.Successors:
				sink += g.FindSuccessors(a)
			case choice < mix.Successors+mix.Predecessors:
				sink += g.FindPredecessors(a)
			case choice < mix.Successors+mix.Predecessors+mix.Inserts:
				g.InsertEdge(a, c, int64(r>>40))
			default:
				g.RemoveEdge(a, c)
			}
		}
		_ = sink
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// figure5Panel benchmarks every Figure 5 variant plus the handcoded
// baseline under one mix.
func figure5Panel(b *testing.B, mix crs.Mix) {
	for _, v := range crs.Figure5Variants() {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			r, err := v.Build()
			if err != nil {
				b.Fatal(err)
			}
			benchGraphOps(b, crs.MustRelationGraph(r), mix)
		})
	}
	b.Run("Handcoded", func(b *testing.B) {
		benchGraphOps(b, handcoded.New(), mix)
	})
}

// BenchmarkFigure5_70_0_20_10 regenerates Figure 5, panel 1 (successor
// heavy, no predecessor queries).
func BenchmarkFigure5_70_0_20_10(b *testing.B) { figure5Panel(b, crs.Figure5Mixes()[0]) }

// BenchmarkFigure5_35_35_20_10 regenerates Figure 5, panel 2 (balanced
// reads, write heavy).
func BenchmarkFigure5_35_35_20_10(b *testing.B) { figure5Panel(b, crs.Figure5Mixes()[1]) }

// BenchmarkFigure5_0_0_50_50 regenerates Figure 5, panel 3 (pure writes).
func BenchmarkFigure5_0_0_50_50(b *testing.B) { figure5Panel(b, crs.Figure5Mixes()[2]) }

// BenchmarkFigure5_45_45_9_1 regenerates Figure 5, panel 4 (read heavy,
// both directions).
func BenchmarkFigure5_45_45_9_1(b *testing.B) { figure5Panel(b, crs.Figure5Mixes()[3]) }

// BenchmarkFigure1Containers measures the primitive container operations
// underlying the Figure 1 taxonomy (lookup / scan / write per kind).
func BenchmarkFigure1Containers(b *testing.B) {
	for _, kind := range []container.Kind{
		container.HashMap, container.TreeMap, container.ConcurrentHashMap,
		container.ConcurrentSkipListMap, container.CopyOnWriteMap,
	} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.Run("lookup", func(b *testing.B) {
				m := container.New(kind)
				for i := 0; i < 1024; i++ {
					m.Write(rel.NewKey(i), i)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Lookup(rel.NewKey(i & 1023))
				}
			})
			b.Run("write", func(b *testing.B) {
				m := container.New(kind)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Write(rel.NewKey(i&1023), i)
				}
			})
			b.Run("scan1k", func(b *testing.B) {
				m := container.New(kind)
				for i := 0; i < 1024; i++ {
					m.Write(rel.NewKey(i), i)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n := 0
					m.Scan(func(rel.Key, any) bool { n++; return true })
				}
			})
		})
	}
}

// buildStickStriped synthesizes the stick with a root stripe factor k —
// the §4.4 striping ablation subject.
func buildStickStriped(b *testing.B, k int) *crs.Relation {
	b.Helper()
	d, err := crs.NewBuilder(crs.GraphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, crs.ConcurrentHashMap).
		Edge("uv", "u", "v", []string{"dst"}, crs.TreeMap).
		Edge("vw", "v", "w", []string{"weight"}, crs.Cell).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	p := crs.NewPlacement(d)
	if k > 1 {
		p.SetStripes(d.Root, k)
		p.Place(d.EdgeByName("ρu"), d.Root, "src")
	} else {
		p.Place(d.EdgeByName("ρu"), d.Root)
	}
	r, err := crs.Synthesize(d.Spec, crs.WithDecomposition(d), crs.WithPlacement(p))
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkAblationStripes sweeps the §4.4 striping factor on the same
// structure and containers: contention falls as k grows.
func BenchmarkAblationStripes(b *testing.B) {
	for _, k := range []int{1, 4, 64, 1024} {
		k := k
		b.Run(benchName("k", k), func(b *testing.B) {
			r := buildStickStriped(b, k)
			benchGraphOps(b, crs.MustRelationGraph(r), crs.Figure5Mixes()[0])
		})
	}
}

// BenchmarkAblationSpeculative compares the three placement families of
// Figure 3(c)'s discussion on one diamond structure: coarse, striped
// (ψ3), speculative (ψ4).
func BenchmarkAblationSpeculative(b *testing.B) {
	build := func(b *testing.B, mode string) *crs.Relation {
		top := crs.ConcurrentHashMap
		if mode == "coarse" {
			top = crs.HashMap
		}
		d, err := crs.NewBuilder(crs.GraphSpec(), "ρ").
			Edge("ρx", "ρ", "x", []string{"src"}, top).
			Edge("ρy", "ρ", "y", []string{"dst"}, top).
			Edge("xz", "x", "z", []string{"dst"}, crs.TreeMap).
			Edge("yz", "y", "z", []string{"src"}, crs.TreeMap).
			Edge("zw", "z", "w", []string{"weight"}, crs.Cell).
			Build()
		if err != nil {
			b.Fatal(err)
		}
		var p *crs.Placement
		switch mode {
		case "coarse":
			p = crs.CoarsePlacement(d)
		case "striped":
			p = crs.NewPlacement(d)
			p.SetStripes(d.Root, 1024)
			p.Place(d.EdgeByName("ρx"), d.Root, "src")
			p.Place(d.EdgeByName("ρy"), d.Root, "dst")
		case "speculative":
			p = crs.NewPlacement(d)
			p.SetStripes(d.Root, 1024)
			p.PlaceSpeculative(d.EdgeByName("ρx"), d.Root, "src")
			p.PlaceSpeculative(d.EdgeByName("ρy"), d.Root, "dst")
		}
		r, err := crs.Synthesize(d.Spec, crs.WithDecomposition(d), crs.WithPlacement(p))
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	for _, mode := range []string{"coarse", "striped", "speculative"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			r := build(b, mode)
			benchGraphOps(b, crs.MustRelationGraph(r), crs.Figure5Mixes()[1])
		})
	}
}

// BenchmarkAblationSortElision compares successor queries whose lock batch
// arrives pre-sorted (TreeMap scan, §5.2 elision applies) against a
// HashMap top level (batch must be sorted).
func BenchmarkAblationSortElision(b *testing.B) {
	build := func(b *testing.B, top crs.ContainerKind) *crs.Relation {
		d, err := crs.NewBuilder(crs.GraphSpec(), "ρ").
			Edge("ρu", "ρ", "u", []string{"src"}, top).
			Edge("uv", "u", "v", []string{"dst"}, crs.TreeMap).
			Edge("vw", "v", "w", []string{"weight"}, crs.Cell).
			Build()
		if err != nil {
			b.Fatal(err)
		}
		r, err := crs.Synthesize(d.Spec, crs.WithDecomposition(d))
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	for _, tc := range []struct {
		name string
		top  crs.ContainerKind
	}{{"sorted-scan-TreeMap", crs.TreeMap}, {"unsorted-scan-HashMap", crs.HashMap}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			r := build(b, tc.top)
			g := crs.MustRelationGraph(r)
			// Populate a fan of successors under a handful of sources so
			// full-relation scans lock many instances.
			for s := int64(0); s < 16; s++ {
				for d := int64(0); d < 64; d++ {
					g.InsertEdge(s, d, s+d)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Predecessor query scans the top level: the lock batch
				// over u-instances is where sortedness matters.
				g.FindPredecessors(int64(i) % 64)
			}
		})
	}
}

// BenchmarkAblationContainers fixes structure and placement (striped
// stick) and varies only the container selection — the Stick 2/3/4
// comparison of §6.2.
func BenchmarkAblationContainers(b *testing.B) {
	combos := []struct {
		name     string
		top, mid crs.ContainerKind
	}{
		{"CHMofHashMap", crs.ConcurrentHashMap, crs.HashMap},
		{"CHMofTreeMap", crs.ConcurrentHashMap, crs.TreeMap},
		{"CSLofHashMap", crs.ConcurrentSkipListMap, crs.HashMap},
		{"CSLofTreeMap", crs.ConcurrentSkipListMap, crs.TreeMap},
	}
	for _, tc := range combos {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			d, err := crs.NewBuilder(crs.GraphSpec(), "ρ").
				Edge("ρu", "ρ", "u", []string{"src"}, tc.top).
				Edge("uv", "u", "v", []string{"dst"}, tc.mid).
				Edge("vw", "v", "w", []string{"weight"}, crs.Cell).
				Build()
			if err != nil {
				b.Fatal(err)
			}
			p := crs.NewPlacement(d)
			p.SetStripes(d.Root, 1024)
			p.Place(d.EdgeByName("ρu"), d.Root, "src")
			r, err := crs.Synthesize(d.Spec, crs.WithDecomposition(d), crs.WithPlacement(p))
			if err != nil {
				b.Fatal(err)
			}
			benchGraphOps(b, crs.MustRelationGraph(r), crs.Figure5Mixes()[0])
		})
	}
}

// BenchmarkPreparedRowVsTuple isolates the schema-compiled row pipeline
// against the tuple boundary on the same prepared operations: the delta
// is the cost of per-call column-name resolution and tuple assembly that
// the row path eliminates.
func BenchmarkPreparedRowVsTuple(b *testing.B) {
	build := func(b *testing.B) *crs.Relation {
		v, err := crs.GraphVariantByName("Stick 1")
		if err != nil {
			b.Fatal(err)
		}
		r, err := v.Build()
		if err != nil {
			b.Fatal(err)
		}
		g := crs.MustRelationGraph(r)
		seed := uint64(7)
		for i := 0; i < 2048; i++ {
			x := splitmix(&seed)
			g.InsertEdge(int64(x%benchKeySpace), int64((x>>32)%benchKeySpace), int64(x>>48))
		}
		return r
	}
	b.Run("count/row", func(b *testing.B) {
		r := build(b)
		q, err := r.PrepareQuery([]string{"src"}, []string{"dst", "weight"})
		if err != nil {
			b.Fatal(err)
		}
		iSrc := r.Schema().MustIndex("src")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var buf [3]crs.Value
			row := crs.RowOver(buf[:], 0)
			row.Set(iSrc, int64(i)%benchKeySpace)
			if _, err := q.CountRow(row); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("count/tuple", func(b *testing.B) {
		r := build(b)
		q, err := r.PrepareQuery([]string{"src"}, []string{"dst", "weight"})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := q.Count(crs.T("src", int64(i)%benchKeySpace)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insert+remove/row", func(b *testing.B) {
		r := build(b)
		g := crs.MustRelationGraph(r)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src, dst := int64(i)%benchKeySpace, int64(i>>9)%benchKeySpace
			g.InsertEdge(src, dst, int64(i))
			g.RemoveEdge(src, dst)
		}
	})
	b.Run("insert+remove/tuple", func(b *testing.B) {
		r := build(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src, dst := int64(i)%benchKeySpace, int64(i>>9)%benchKeySpace
			s := crs.T("src", src, "dst", dst)
			r.Insert(s, crs.T("weight", int64(i)))
			r.Remove(s)
		}
	})
}

// BenchmarkBatchedVsSequential is the batched Figure-5 variant: composite
// graph operations (insert-edge-pair, move-edge as remove+insert, grouped
// successor counts, 2-hop counts) executed as one coalesced two-phase-
// locking transaction per group ("batched") versus one transaction per
// member operation ("sequential"). Both sides run the same prepared row
// pipeline; the delta is the lock-coalescing win — an N-op batch takes
// each physical lock at most once. Contention makes the delta grow: run
// with -cpu 1,4,... to see the scalability side.
func BenchmarkBatchedVsSequential(b *testing.B) {
	build := func(b *testing.B) *crs.Relation {
		d, err := crs.NewBuilder(crs.GraphSpec(), "ρ").
			Edge("ρu", "ρ", "u", []string{"src"}, crs.ConcurrentHashMap).
			Edge("uv", "u", "v", []string{"dst"}, crs.TreeMap).
			Edge("vw", "v", "w", []string{"weight"}, crs.Cell).
			Build()
		if err != nil {
			b.Fatal(err)
		}
		p := crs.NewPlacement(d)
		p.SetStripes(d.Root, 1024)
		p.Place(d.EdgeByName("ρu"), d.Root, "src")
		r, err := crs.Synthesize(d.Spec, crs.WithDecomposition(d), crs.WithPlacement(p))
		if err != nil {
			b.Fatal(err)
		}
		g := crs.MustRelationGraph(r)
		seed := uint64(12345)
		for i := 0; i < 2048; i++ {
			x := splitmix(&seed)
			g.InsertEdge(int64(x%benchKeySpace), int64((x>>32)%benchKeySpace), int64(x>>48))
		}
		return r
	}
	mix := crs.DefaultBatchMix()
	runComposite := func(b *testing.B, g crs.BatchGraphOps) {
		b.Helper()
		var tid atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			state := tid.Add(1) * 0x9e3779b97f4a7c15
			var sink uint64
			for pb.Next() {
				sink += crs.BatchCompositeOp(g, &state, mix, benchKeySpace)
			}
			_ = sink
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "groups/s")
	}
	b.Run("batched", func(b *testing.B) {
		runComposite(b, crs.MustRelationBatchGraph(build(b)))
	})
	b.Run("sequential", func(b *testing.B) {
		g, err := crs.NewSequentialBatchGraph(build(b))
		if err != nil {
			b.Fatal(err)
		}
		runComposite(b, g)
	})
}

// BenchmarkBatchPrimitives isolates the per-composite coalescing deltas
// on an uncontended relation: each sub-benchmark runs one composite
// batched and sequential back to back via -bench filtering.
func BenchmarkBatchPrimitives(b *testing.B) {
	build := func(b *testing.B) *crs.Relation {
		v, err := crs.GraphVariantByName("Split 4")
		if err != nil {
			b.Fatal(err)
		}
		r, err := v.Build()
		if err != nil {
			b.Fatal(err)
		}
		g := crs.MustRelationGraph(r)
		seed := uint64(7)
		for i := 0; i < 2048; i++ {
			x := splitmix(&seed)
			g.InsertEdge(int64(x%benchKeySpace), int64((x>>32)%benchKeySpace), int64(x>>48))
		}
		return r
	}
	type side struct {
		name string
		mk   func(*testing.B) crs.BatchGraphOps
	}
	sides := []side{
		{"batched", func(b *testing.B) crs.BatchGraphOps { return crs.MustRelationBatchGraph(build(b)) }},
		{"sequential", func(b *testing.B) crs.BatchGraphOps {
			g, err := crs.NewSequentialBatchGraph(build(b))
			if err != nil {
				b.Fatal(err)
			}
			return g
		}},
	}
	for _, s := range sides {
		s := s
		b.Run("insertpair/"+s.name, func(b *testing.B) {
			g := s.mk(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := int64(i) % benchKeySpace
				g.InsertEdgePair(src, (src+1)%benchKeySpace, int64(i), src, (src+2)%benchKeySpace, int64(i))
			}
		})
		b.Run("move/"+s.name, func(b *testing.B) {
			g := s.mk(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := int64(i) % benchKeySpace
				g.MoveEdge(src, (src+1)%benchKeySpace, (src+2)%benchKeySpace, int64(i))
			}
		})
		b.Run("countpair/"+s.name, func(b *testing.B) {
			g := s.mk(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.CountSuccessorPair(int64(i)%benchKeySpace, int64(i+1)%benchKeySpace)
			}
		})
		b.Run("twohop/"+s.name, func(b *testing.B) {
			g := s.mk(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.TwoHopCount(int64(i) % benchKeySpace)
			}
		})
	}
}

// BenchmarkHandcodedVsSplit4 is the §6.2 head-to-head: the hand-written
// graph against its synthesized twin.
func BenchmarkHandcodedVsSplit4(b *testing.B) {
	b.Run("Handcoded", func(b *testing.B) {
		benchGraphOps(b, handcoded.New(), crs.Figure5Mixes()[1])
	})
	b.Run("Split4", func(b *testing.B) {
		v, err := crs.GraphVariantByName("Split 4")
		if err != nil {
			b.Fatal(err)
		}
		r, err := v.Build()
		if err != nil {
			b.Fatal(err)
		}
		benchGraphOps(b, crs.MustRelationGraph(r), crs.Figure5Mixes()[1])
	})
}

func benchName(prefix string, k int) string {
	return fmt.Sprintf("%s=%d", prefix, k)
}
