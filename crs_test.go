package crs_test

import (
	"fmt"
	"testing"

	crs "repro"
)

// TestPublicAPIRoundTrip exercises the full public surface end to end:
// spec → decomposition → placement → synthesize → operate.
func TestPublicAPIRoundTrip(t *testing.T) {
	spec := crs.MustSpec([]string{"src", "dst", "weight"},
		crs.FD{From: []string{"src", "dst"}, To: []string{"weight"}})
	d, err := crs.NewBuilder(spec, "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, crs.ConcurrentHashMap).
		Edge("uv", "u", "v", []string{"dst"}, crs.TreeMap).
		Edge("vw", "v", "w", []string{"weight"}, crs.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := crs.NewPlacement(d)
	p.SetStripes(d.Root, 64)
	p.Place(d.EdgeByName("ρu"), d.Root, "src")
	r, err := crs.Synthesize(d.Spec, crs.WithDecomposition(d), crs.WithPlacement(p))
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := r.Insert(crs.T("src", 1, "dst", 2), crs.T("weight", 42)); err != nil || !ok {
		t.Fatalf("insert: %v %v", ok, err)
	}
	res, err := r.Query(crs.T("src", 1), "dst", "weight")
	if err != nil || len(res) != 1 {
		t.Fatalf("query: %v %v", res, err)
	}
	// Differential against the reference.
	ref := crs.NewReference(spec)
	ref.Insert(crs.T("src", 1, "dst", 2), crs.T("weight", 42))
	want, _ := ref.Query(crs.T("src", 1), "dst", "weight")
	if len(want) != 1 || !res[0].Equal(want[0]) {
		t.Fatalf("reference disagrees: %v vs %v", res, want)
	}
	if ok, err := r.Remove(crs.T("src", 1, "dst", 2)); err != nil || !ok {
		t.Fatalf("remove: %v %v", ok, err)
	}
}

func TestPublicTaxonomy(t *testing.T) {
	if crs.FormatTaxonomy() == "" {
		t.Fatal("empty taxonomy")
	}
	if crs.ContainerPropertiesOf(crs.ConcurrentHashMap).ConcurrencySafe() != true {
		t.Fatal("taxonomy wrong")
	}
	if crs.ContainerPropertiesOf(crs.HashMap).ConcurrencySafe() {
		t.Fatal("taxonomy wrong for HashMap")
	}
}

func TestPublicVariantsAndBench(t *testing.T) {
	v, err := crs.GraphVariantByName("Split 4")
	if err != nil {
		t.Fatal(err)
	}
	r, err := v.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := crs.RunBench(crs.MustRelationGraph(r), crs.BenchConfig{
		Threads: 2, OpsPerThread: 200, KeySpace: 16, Seed: 1, Mix: crs.Figure5Mixes()[0]})
	if res.Ops != 400 {
		t.Fatalf("bench ops = %d", res.Ops)
	}
}

func TestPublicTuneTiny(t *testing.T) {
	cands := crs.EnumerateGraphCandidates()
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	scored, err := crs.Tune(cands[:3], crs.BenchConfig{
		Threads: 1, OpsPerThread: 100, KeySpace: 8, Seed: 1, Mix: crs.Figure5Mixes()[0]}, crs.TuneOptions{})
	if err != nil || len(scored) != 3 {
		t.Fatalf("tune: %v (%d results)", err, len(scored))
	}
}

func ExampleT() {
	fmt.Println(crs.T("src", 1, "dst", 2))
	// Output: ⟨dst: 2, src: 1⟩
}

func TestPublicStructureEnumeration(t *testing.T) {
	ds, err := crs.EnumerateStructures(crs.GraphSpec(), crs.StructureOptions{Share: true, Limit: 20})
	if err != nil || len(ds) == 0 {
		t.Fatalf("EnumerateStructures: %v (%d)", err, len(ds))
	}
	cands, err := crs.EnumerateGenericCandidates(crs.GraphSpec(), 4)
	if err != nil || len(cands) == 0 {
		t.Fatalf("EnumerateGenericCandidates: %v (%d)", err, len(cands))
	}
}

// ExampleNewBuilder synthesizes the paper's Figure 2(a) directory-tree
// representation and runs a path lookup.
func ExampleNewBuilder() {
	spec := crs.MustSpec([]string{"parent", "name", "child"},
		crs.FD{From: []string{"parent", "name"}, To: []string{"child"}})
	d, _ := crs.NewBuilder(spec, "ρ").
		Edge("ρx", "ρ", "x", []string{"parent"}, crs.TreeMap).
		Edge("xy", "x", "y", []string{"name"}, crs.TreeMap).
		Edge("ρy", "ρ", "y", []string{"parent", "name"}, crs.ConcurrentHashMap).
		Edge("yz", "y", "z", []string{"child"}, crs.Cell).
		Build()
	dcache, _ := crs.Synthesize(d.Spec, crs.WithDecomposition(d))
	dcache.Insert(crs.T("parent", 1, "name", "a"), crs.T("child", 2))
	child, _ := dcache.Query(crs.T("parent", 1, "name", "a"), "child")
	fmt.Println(child[0])
	// Output: ⟨child: 2⟩
}
