// Command crsd serves a synthesized registry over HTTP+JSON with
// cross-client group commit: requests arriving from different connections
// within a short window are coalesced into one registry batch (coalesced
// lock schedule, lock-free read-only groups, Silo-style OCC for mixed
// groups), and each client receives its own members' results after the
// group commits. It is the step from "library" to "system": the batching
// wins of the core scale with traffic instead of with caller discipline.
//
// crsd serves the built-in social registry (users, posts, follows — the
// same three relations the cross-relation benchmarks run); embedding
// internal/server.New over a custom registry is the library route to
// serving any schema.
//
// Usage:
//
//	crsd [-addr :7070] [-window 500us] [-max-batch 64]
//
// Endpoints (see internal/server for the wire model):
//
//	POST /v1/txn /v1/insert /v1/remove /v1/count /v1/query
//	GET  /v1/stats /v1/relations /healthz
//
// SIGINT/SIGTERM shut down gracefully: the in-flight window drains and
// every accepted request is answered before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	window := flag.Duration("window", server.DefaultWindow, "group-commit coalescing window (time the first request of a batch waits for company)")
	maxBatch := flag.Int("max-batch", server.DefaultMaxBatch, "close a window early at this many requests (1 disables coalescing)")
	flag.Parse()

	social, err := workload.NewSocial()
	if err != nil {
		fatal(err)
	}
	srv := server.New(social.Reg, server.Config{Window: *window, MaxBatch: *maxBatch})

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "crsd: serving users/posts/follows on %s (window %s, max batch %d)\n",
			*addr, *window, *maxBatch)
		done <- srv.ListenAndServe(*addr)
	}()
	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "crsd: %s — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(err)
		}
		st := srv.Dispatcher().Stats()
		fmt.Fprintf(os.Stderr, "crsd: served %d requests in %d batches (mean batch %.2f, max %d)\n",
			st.Requests, st.Batches, st.MeanBatchSize, st.MaxBatchSize)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crsd:", err)
	os.Exit(1)
}
