// Command crsd serves a synthesized registry over HTTP+JSON with
// cross-client group commit: requests arriving from different connections
// within a short window are coalesced into one registry batch (coalesced
// lock schedule, lock-free read-only groups, Silo-style OCC for mixed
// groups), and each client receives its own members' results after the
// group commits. It is the step from "library" to "system": the batching
// wins of the core scale with traffic instead of with caller discipline.
//
// crsd serves the built-in social registry (users, posts, follows — the
// same three relations the cross-relation benchmarks run); embedding
// internal/server.New over a custom registry is the library route to
// serving any schema.
//
// With -wal-dir the registry is durable: every committed batch appends
// one CRC-checked redo record to a write-ahead log before any client in
// its window is answered, the window closer fsyncs once per coalesced
// batch (group commit and fsync batching are one mechanism), and on boot
// crsd recovers the directory — latest valid snapshot plus the redo
// tail — before serving. kill -9 loses nothing that was acknowledged.
//
// With -adapt crsd becomes self-tuning: the registry boots on the
// conservative non-concurrent representation (HashMap/TreeMap
// containers), an online advisor periodically harvests the always-on
// operation counters, and when the observed read fraction makes the
// lock-free optimistic paths worth having, it live-migrates relations to
// their concurrent container archetypes — under traffic, with no dropped
// or duplicated acknowledged requests. Completed migrations appear in
// GET /v1/stats under registry.migrations.
//
// Usage:
//
//	crsd [-addr :7070] [-window 500us] [-max-batch 64]
//	     [-wal-dir DIR] [-fsync none|batch|always] [-snapshot-every N]
//	     [-adapt] [-adapt-interval 1s] [-adapt-min-ops 1000]
//
// Endpoints (see internal/server for the wire model):
//
//	POST /v1/txn /v1/insert /v1/remove /v1/count /v1/query
//	GET  /v1/stats /v1/relations /healthz
//
// SIGINT/SIGTERM shut down gracefully: the in-flight window drains and
// every accepted request is answered before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	window := flag.Duration("window", server.DefaultWindow, "group-commit coalescing window (time the first request of a batch waits for company)")
	maxBatch := flag.Int("max-batch", server.DefaultMaxBatch, "close a window early at this many requests (1 disables coalescing)")
	walDir := flag.String("wal-dir", "", "write-ahead log directory; empty runs without durability")
	fsync := flag.String("fsync", "batch", "fsync policy with -wal-dir: none (no fsync), batch (once per group commit, before replies), always (every append)")
	snapEvery := flag.Int("snapshot-every", 4096, "with -wal-dir, snapshot and truncate the log every N committed batches (0 disables)")
	adapt := flag.Bool("adapt", false, "boot on non-concurrent containers and let the online advisor live-migrate relations as the workload warrants")
	adaptInterval := flag.Duration("adapt-interval", time.Second, "with -adapt, how often the advisor harvests counters and reconsiders")
	adaptMinOps := flag.Uint64("adapt-min-ops", 1000, "with -adapt, observed operations required on a relation before migrating it")
	flag.Parse()

	var social *workload.Social
	var err error
	if *adapt {
		social, err = workload.NewSocialPessimistic()
	} else {
		social, err = workload.NewSocial()
	}
	if err != nil {
		fatal(err)
	}
	cfg := server.Config{Window: *window, MaxBatch: *maxBatch}
	var m *wal.Manager
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			fatal(err)
		}
		// Recovery runs inside Open — the registry is rebuilt from the
		// latest valid snapshot plus the redo tail before the logger is
		// attached, so recovered batches are never re-logged.
		m, err = wal.Open(*walDir, social.Reg, wal.Options{Policy: policy, SnapshotEvery: *snapEvery})
		if err != nil {
			fatal(err)
		}
		social.Reg.SetCommitLogger(m)
		cfg.WAL = m
		fmt.Fprintf(os.Stderr, "crsd: wal %s (fsync %s, snapshot every %d): recovered %d batches through lsn %d\n",
			*walDir, policy, *snapEvery, m.Stats().RecoveredBatches, m.Stats().LastLSN)
	}
	srv := server.New(social.Reg, cfg)

	var adv *autotune.Advisor
	if *adapt {
		advCfg := autotune.DefaultConfig()
		advCfg.MinOps = *adaptMinOps
		adv = &autotune.Advisor{
			Registry: social.Reg,
			Config:   advCfg,
			Interval: *adaptInterval,
			OnMigrate: func(rec *autotune.Recommendation, ev *core.MigrationEvent, err error) {
				if err != nil {
					fmt.Fprintf(os.Stderr, "crsd: advisor: migrate %s: %v\n", rec.Relation, err)
					return
				}
				fmt.Fprintf(os.Stderr, "crsd: advisor: migrated %s: %s -> %s (%s; backfilled %d, catch-up %d, pause %s)\n",
					ev.Relation, ev.From, ev.To, rec.Reason, ev.Backfilled, ev.CatchupOps, time.Duration(ev.PauseNS))
			},
		}
		adv.Start()
		defer adv.Stop()
		fmt.Fprintf(os.Stderr, "crsd: adaptive mode: booted on non-concurrent containers, advisor every %s (min ops %d)\n",
			*adaptInterval, *adaptMinOps)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "crsd: serving users/posts/follows on %s (window %s, max batch %d)\n",
			*addr, *window, *maxBatch)
		done <- srv.ListenAndServe(*addr)
	}()
	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "crsd: %s — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(err)
		}
		st := srv.Dispatcher().Stats()
		fmt.Fprintf(os.Stderr, "crsd: served %d requests in %d batches (mean batch %.2f, max %d)\n",
			st.Requests, st.Batches, st.MeanBatchSize, st.MaxBatchSize)
		if m != nil {
			ws := m.Stats()
			if err := m.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "crsd: wal %d appends, %d fsyncs, %d snapshots (last lsn %d)\n",
				ws.Appends, ws.Fsyncs, ws.Snapshots, ws.LastLSN)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crsd:", err)
	os.Exit(1)
}
