// Command checkdocs is the repository's missing-doc-comment check, run in
// CI next to gofmt and go vet: every package must carry a package comment
// and every exported top-level declaration (functions, methods on
// exported types, types, and const/var groups) must carry a doc comment.
//
// Usage:
//
//	checkdocs [dir]
//
// It walks dir (default ".") recursively, skipping _test.go files and
// testdata directories, and exits non-zero listing every violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []string
	pkgDocs := map[string]bool{} // package dir → has package comment
	pkgDirs := map[string]string{}

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		dir := filepath.Dir(path)
		pkgDirs[dir] = f.Name.Name
		if f.Doc != nil {
			pkgDocs[dir] = true
		}
		for _, decl := range f.Decls {
			for _, v := range checkDecl(fset, decl) {
				violations = append(violations, v)
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(2)
	}
	for dir, pkg := range pkgDirs {
		if !pkgDocs[dir] && pkg != "main" {
			violations = append(violations, fmt.Sprintf("%s: package %s has no package comment", dir, pkg))
		}
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Println(v)
		}
		fmt.Printf("checkdocs: %d missing doc comments\n", len(violations))
		os.Exit(1)
	}
}

// checkDecl returns a violation per undocumented exported declaration in
// decl.
func checkDecl(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s has no doc comment", p.Filename, p.Line, what))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		name := d.Name.Name
		if d.Recv != nil && len(d.Recv.List) > 0 {
			recv := receiverName(d.Recv.List[0].Type)
			if recv != "" && !ast.IsExported(recv) {
				return nil // method on unexported type
			}
			name = recv + "." + name
		}
		report(d.Pos(), "exported func "+name)
	case *ast.GenDecl:
		if d.Tok == token.IMPORT {
			return nil
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), "exported type "+s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), fmt.Sprintf("exported %s %s", d.Tok, n.Name))
					}
				}
			}
		}
	}
	return out
}

// receiverName extracts the receiver's type name (unwrapping pointers and
// generic instantiations).
func receiverName(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.StarExpr:
		return receiverName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return receiverName(e.X)
	case *ast.IndexListExpr:
		return receiverName(e.X)
	}
	return ""
}
