// Command benchguard is the CI bench-regression gate: it compares a fresh
// crsbench -format json run against a committed BENCH_*.json baseline and
// fails the build when coalesced lock-acquisition counts regress.
//
// Lock-acquisition counts — not throughput — are the guarded signal: CI
// runners and the dev container are low-core and noisy, but the number of
// physical locks a deterministic single-threaded workload acquires is a
// pure function of the scheduler, so an increase means the coalescing or
// the registry-wide lock order got worse, never that the machine was
// busy.
//
// Usage:
//
//	benchguard -baseline BENCH_3.json -current current.json [-tolerance 0]
//	           [-min-batch-ratio 0.65 [-ratio-threads 1,2] [-ratio-variants "Stick 1"]]
//	           [-min-wire-batch 2] [-min-wal-ratio 0.1] [-min-migrate-ratio 0.9]
//	           [-max-openloop-p99 1s]
//
// Both documents must carry the bench_schema this guard supports;
// mismatched or missing schemas fail immediately instead of being
// silently compared field-by-field. Schema 6 additionally echoes the
// run's full configuration into EVERY result row; the guard fails any
// row whose echo disagrees with its own document's config block, so a
// row from a differently parameterized run can never be spliced into a
// baseline unnoticed.
//
// Rules enforced, per (mix, variant, mode, threads) record carrying lock
// or optimistic counts:
//
//   - the current run's locks_acquired must not exceed the baseline's by
//     more than -tolerance (a fraction; 0 demands no regression at all);
//   - likewise locks_requested: pre-coalescing request growth means the
//     schedulers started doing more lock-step work per member, even if
//     dedup still hides it;
//   - every baseline record with counts must still exist;
//   - where both modes were measured, the batched mode must acquire
//     STRICTLY fewer locks than the sequential mode — the coalescing
//     property itself, with no read-row exemption: mixed groups commit
//     Silo-style (write locks + validated lock-free reads), so a batch
//     never out-locks its sequential decomposition;
//   - wherever the baseline ran optimistic read-only batches, the current
//     run must detect at least as many, and they must report zero locks
//     acquired, zero validation retries and zero fallbacks — the
//     deterministic pass is uncontended, so nonzero values are protocol
//     regressions, not noise;
//   - wherever the baseline committed mixed batches via OCC, the current
//     run must commit at least as many, with ZERO Shared-mode (read)
//     locks on the OCC path, zero validation retries and zero fallbacks;
//   - with -min-wire-batch set, every current batched row of the -wire
//     benchmark (wire_batches > 0) must report a mean coalesced batch
//     size (wire_requests / wire_batches) of at least the given floor —
//     the cross-client group-commit property itself. The lockstep wire
//     pass is deterministic, so the mean is exact, not a noisy average;
//   - with -min-wal-ratio set, the -wal durability identities are
//     enforced: every WAL-carrying row must report wal_fsyncs ==
//     wal_appends (exactly one fsync per committed mutating group),
//     batched rows must fsync strictly less than their sequential twins
//     and append no more records than the baseline (group commit IS
//     fsync batching), and WAL-on throughput must reach the given
//     fraction of the same run's WAL-off throughput on the batched rows;
//   - with -max-openloop-p99 set, the -openloop window-knob tradeoff is
//     gated on the current run's open-loop rows: every cell's
//     client-side p99 (measured from the SCHEDULED arrival, so
//     coordinated omission cannot hide a stall) must stay within the
//     given bound plus four times the cell's dispatcher window; every
//     window-0 cell must report a mean coalesced batch of exactly 1
//     (coalescing off is really off); and under BURSTY arrivals the mean
//     batch must STRICTLY increase along the window sweep per client
//     count — the reason the window exists. The p99 bound is deliberately
//     loose (shared runners stall), the batch gates are structural;
//   - with -min-migrate-ratio set, the live-migration payoff is gated:
//     for every (mix, variant, threads) the current -migrate run measured
//     in both phases, the migrated steady state ("migrate-post") must
//     reach the given fraction of the pre-migration throughput
//     ("migrate-pre") — both from the SAME run, so the ratio
//     self-normalizes against machine drift. The gate fails if no
//     matching row pairs exist (the run was not crsbench -migrate). The
//     migrate rows' deterministic threads=1 lock totals also ride the
//     baseline rules above: pre-migration rows pin the pessimistic 2PL
//     acquisition count, post-migration rows pin the lock-free read-only
//     batches at zero locks.
//
// With -min-batch-ratio set, one throughput gate rides along, designed to
// survive noisy runners: for every (mix, variant, threads) the CURRENT
// run measured in both modes, batched ops_per_sec must be at least the
// given fraction of sequential ops_per_sec. Both numbers come from the
// same run on the same machine (crsbench interleaves the modes rep by
// rep), so the ratio self-normalizes against machine drift — absolute
// throughput is never compared across runs. -ratio-threads and
// -ratio-variants restrict the gate to specific rows: contended rows
// measure lock-holding overhead rather than scheduling quality, and
// speculative-heavy variants (Diamond Spec) pay an irreducible per-round
// resolution premium, so CI gates the Stick low-thread rows.
// Skewed rows (skew > 0) are never ratio-gated: the skew sweep exists to
// expose contention-dependent retry behaviour, which is the opposite of a
// stable signal.
//
// Improvements (fewer acquisitions than the baseline) are reported so the
// baseline can be refreshed, but do not fail the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// supportedSchema is the crsbench json document schema this guard
// understands; documents carrying any other version (including none) are
// rejected rather than silently compared field-by-field.
const supportedSchema = 6

// benchDoc mirrors crsbench's -format json document (the subset the guard
// reads).
type benchDoc struct {
	BenchSchema int           `json:"bench_schema"`
	Config      benchConfig   `json:"config"`
	Results     []benchRecord `json:"results"`
}

// benchConfig is the workload configuration stamped into each document
// AND (schema 6) echoed into each row — crsbench's RunConfig. Lock
// counts are only comparable between runs with identical workloads, and
// open-loop latency cells only between runs with identical arrival
// parameters, so the guard compares the whole struct with ==.
type benchConfig struct {
	Bench        string  `json:"bench"`
	OpsPerThread int     `json:"ops_per_thread"`
	KeySpace     int64   `json:"keyspace"`
	Seed         uint64  `json:"seed"`
	Windows      string  `json:"windows"`
	ArrivalGapUS int64   `json:"arrival_gap_us"`
	BurstMean    float64 `json:"burst_mean"`
	InFlight     int     `json:"inflight"`
}

// benchRecord is one measurement row.
type benchRecord struct {
	Mix            string  `json:"mix"`
	Variant        string  `json:"variant"`
	Mode           string  `json:"mode"`
	Threads        int     `json:"threads"`
	Skew           float64 `json:"skew"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	LocksRequested int64   `json:"locks_requested"`
	LocksAcquired  int64   `json:"locks_acquired"`
	// Optimistic read-only counters (crsbench -optimistic deterministic
	// pass). ROBatches > 0 marks a record as carrying them.
	ROBatches         int64 `json:"ro_batches"`
	ROLocksAcquired   int64 `json:"ro_locks_acquired"`
	ValidationRetries int64 `json:"validation_retries"`
	ROFallbacks       int64 `json:"ro_fallbacks"`
	// Mixed-batch OCC counters (crsbench -mixed deterministic pass).
	// OCCBatches > 0 marks a record as carrying them.
	OCCBatches   int64 `json:"occ_batches"`
	OCCShared    int64 `json:"occ_shared_locks"`
	OCCRetries   int64 `json:"occ_validation_retries"`
	OCCFallbacks int64 `json:"occ_fallbacks"`
	// Cross-client group-commit counters (crsbench -wire deterministic
	// pass). WireBatches > 0 marks a record as carrying them.
	WireBatches  int64 `json:"wire_batches"`
	WireRequests int64 `json:"wire_requests"`
	// Durability counters (crsbench -wal deterministic pass, variant
	// "social-wire-wal"). WALAppends > 0 marks a record as carrying them.
	WALAppends int64 `json:"wal_appends"`
	WALFsyncs  int64 `json:"wal_fsyncs"`
	// The schema-6 per-row configuration echo; must equal the document's
	// own config block.
	Config *benchConfig `json:"config"`
	// Open-loop cell coordinates and measurements (crsbench -openloop;
	// Mode "openloop" marks the rows). WindowUS is a pointer because the
	// no-coalescing window 0 is a meaningful swept value.
	Arrival   string  `json:"arrival"`
	WindowUS  *int64  `json:"window_us"`
	MeanBatch float64 `json:"mean_batch"`
	P99NS     int64   `json:"p99_ns"`
}

// key identifies a comparable record across runs. Arrival/WindowUS are
// the -openloop cell coordinates (empty and -1 for every other mode —
// the sentinel keeps the struct comparable while never colliding with a
// real microsecond window).
type key struct {
	Mix, Variant, Mode string
	Threads            int
	Arrival            string
	WindowUS           int64
}

// recKey builds a record's comparison key, folding a nil window into the
// -1 sentinel.
func recKey(r benchRecord) key {
	w := int64(-1)
	if r.WindowUS != nil {
		w = *r.WindowUS
	}
	return key{r.Mix, r.Variant, r.Mode, r.Threads, r.Arrival, w}
}

func load(path string) (*benchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// counted indexes a document's count-carrying records by key: rows from a
// deterministic counting pass, recognizable by lock totals or optimistic
// read-only counters.
func counted(doc *benchDoc) map[key]benchRecord {
	m := map[key]benchRecord{}
	for _, r := range doc.Results {
		if r.LocksAcquired > 0 || r.ROBatches > 0 || r.OCCBatches > 0 || r.WireBatches > 0 {
			m[recKey(r)] = r
		}
	}
	return m
}

// cell renders a key's openloop coordinates for failure messages; empty
// for the classic modes.
func cell(k key) string {
	if k.Arrival == "" && k.WindowUS < 0 {
		return ""
	}
	return fmt.Sprintf(" %s@%dus", k.Arrival, k.WindowUS)
}

func main() {
	baselinePath := flag.String("baseline", "", "committed BENCH_*.json baseline")
	currentPath := flag.String("current", "", "fresh crsbench -format json output")
	tolerance := flag.Float64("tolerance", 0, "allowed fractional increase in locks_acquired (0 = none)")
	minBatchRatio := flag.Float64("min-batch-ratio", 0, "minimum batched/sequential ops_per_sec ratio within the current run (0 = gate off)")
	minWireBatch := flag.Float64("min-wire-batch", 0, "minimum mean coalesced batch size (wire_requests/wire_batches) for the current run's batched -wire rows (0 = gate off)")
	minWalRatio := flag.Float64("min-wal-ratio", 0, "minimum WAL-on/WAL-off ops_per_sec ratio for the current run's batched -wal row pairs (0 = gate off; also arms the fsyncs==appends and batched-fewer-fsyncs gates)")
	minMigrateRatio := flag.Float64("min-migrate-ratio", 0, "minimum migrate-post/migrate-pre ops_per_sec ratio for the current run's -migrate row pairs (0 = gate off)")
	maxOpenLoopP99 := flag.Duration("max-openloop-p99", 0, "p99 bound for the current run's -openloop rows, each cell allowed the bound plus 4x its window (0 = gate off; also arms the window-0 mean-batch==1 and bursty batch-monotonicity gates)")
	ratioThreads := flag.String("ratio-threads", "", "comma-separated thread counts the -min-batch-ratio and -min-migrate-ratio gates apply to (empty = all)")
	ratioVariants := flag.String("ratio-variants", "", "comma-separated variant names the ratio gate applies to (empty = all)")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fatal(fmt.Errorf("-baseline and -current are both required"))
	}
	base, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fatal(err)
	}
	for path, doc := range map[string]*benchDoc{*baselinePath: base, *currentPath: cur} {
		if doc.BenchSchema != supportedSchema {
			fatal(fmt.Errorf("%s carries bench_schema %d, this guard understands %d — regenerate the file with the current crsbench",
				path, doc.BenchSchema, supportedSchema))
		}
		// The schema-6 per-row echo: every row must carry the document's
		// own config verbatim, so a spliced-in row from a differently
		// parameterized run is refused before any comparison.
		for i, r := range doc.Results {
			if r.Config == nil {
				fatal(fmt.Errorf("%s result %d carries no config echo — regenerate the file with the current crsbench", path, i))
			}
			if *r.Config != doc.Config {
				fatal(fmt.Errorf("%s result %d echoes config %+v but the document's is %+v — the row comes from a different run",
					path, i, *r.Config, doc.Config))
			}
		}
	}
	if base.Config != cur.Config {
		fatal(fmt.Errorf("workload configs differ (baseline %+v, current %+v): lock counts are only comparable for identical workloads — rerun crsbench with the baseline's flags",
			base.Config, cur.Config))
	}
	baseRecs, curRecs := counted(base), counted(cur)
	if len(baseRecs) == 0 {
		fatal(fmt.Errorf("%s carries no lock-count records; regenerate it with crsbench -registry/-optimistic -format json", *baselinePath))
	}
	failures := 0
	for k, b := range baseRecs {
		c, ok := curRecs[k]
		if !ok {
			fmt.Printf("FAIL %s/%s %s %dthr%s: record with lock counts missing from current run\n", k.Variant, k.Mode, k.Mix, k.Threads, cell(k))
			failures++
			continue
		}
		if k.Mode == "openloop" {
			// Open-loop cells carry no deterministic lock totals; existence
			// (above) plus the -max-openloop-p99 gates are their rules.
			continue
		}
		limit := int64(float64(b.LocksAcquired) * (1 + *tolerance))
		reqLimit := int64(float64(b.LocksRequested) * (1 + *tolerance))
		switch {
		case c.LocksAcquired > limit:
			fmt.Printf("FAIL %s/%s %s %dthr: locks acquired %d > baseline %d (limit %d)\n",
				k.Variant, k.Mode, k.Mix, k.Threads, c.LocksAcquired, b.LocksAcquired, limit)
			failures++
		case c.LocksRequested > reqLimit:
			fmt.Printf("FAIL %s/%s %s %dthr: locks requested %d > baseline %d (limit %d)\n",
				k.Variant, k.Mode, k.Mix, k.Threads, c.LocksRequested, b.LocksRequested, reqLimit)
			failures++
		case c.LocksAcquired < b.LocksAcquired:
			fmt.Printf("ok   %s/%s %s %dthr: locks acquired %d improved on baseline %d — consider refreshing the baseline\n",
				k.Variant, k.Mode, k.Mix, k.Threads, c.LocksAcquired, b.LocksAcquired)
		default:
			fmt.Printf("ok   %s/%s %s %dthr: locks acquired %d (baseline %d)\n",
				k.Variant, k.Mode, k.Mix, k.Threads, c.LocksAcquired, b.LocksAcquired)
		}
	}
	// The coalescing property: batched must beat sequential in the
	// current run wherever both were measured — unconditionally. PR 4
	// exempted pairs carrying read-only batches because a mixed group
	// still locked its read members pessimistically and could legitimately
	// out-lock its sequential decomposition; the Silo-style OCC commit
	// removed that case (mixed groups take write locks only, reads are
	// epoch-validated), restoring the clean invariant "a batch never
	// out-locks its sequential decomposition".
	for k, c := range curRecs {
		if k.Mode != "batched" {
			continue
		}
		sk := k
		sk.Mode = "sequential"
		s, ok := curRecs[sk]
		if !ok {
			continue
		}
		if c.LocksAcquired >= s.LocksAcquired {
			fmt.Printf("FAIL %s %s %dthr: batched acquired %d locks, sequential %d — coalescing must win\n",
				k.Variant, k.Mix, k.Threads, c.LocksAcquired, s.LocksAcquired)
			failures++
		}
	}

	// The optimistic zero-lock gate: wherever the baseline ran read-only
	// batches, the current run must (a) still detect at least as many
	// read-only batches (fewer means groups stopped being recognized as
	// read-only), and (b) report zero locks acquired by them, zero
	// validation retries and zero fallbacks — the counting pass is
	// single-threaded and uncontended, so any nonzero value is a protocol
	// regression, never machine noise.
	for k, b := range baseRecs {
		if b.ROBatches == 0 {
			continue
		}
		c, ok := curRecs[k]
		if !ok {
			continue // already reported missing above
		}
		switch {
		case c.ROBatches < b.ROBatches:
			fmt.Printf("FAIL %s/%s %s %dthr: %d read-only batches, baseline %d — groups stopped being detected as read-only\n",
				k.Variant, k.Mode, k.Mix, k.Threads, c.ROBatches, b.ROBatches)
			failures++
		case c.ROLocksAcquired != 0 || c.ValidationRetries != 0 || c.ROFallbacks != 0:
			fmt.Printf("FAIL %s/%s %s %dthr: read-only batches acquired %d locks, %d retries, %d fallbacks on the uncontended pass — want all zero\n",
				k.Variant, k.Mode, k.Mix, k.Threads, c.ROLocksAcquired, c.ValidationRetries, c.ROFallbacks)
			failures++
		default:
			fmt.Printf("ok   %s/%s %s %dthr: %d read-only batches, 0 locks / 0 retries / 0 fallbacks\n",
				k.Variant, k.Mode, k.Mix, k.Threads, c.ROBatches)
		}
	}

	// The mixed-batch OCC gates: wherever the baseline committed mixed
	// groups Silo-style, the current run must (a) still commit at least as
	// many via OCC (fewer means mixed groups stopped being detected or
	// started falling back), and (b) report ZERO Shared-mode lock
	// acquisitions on the OCC path — reads divert into the read-set, so a
	// shared lock means the scheduler leaked a read member into the
	// growing phase — plus zero validation retries and zero fallbacks on
	// the uncontended deterministic pass.
	for k, b := range baseRecs {
		if b.OCCBatches == 0 {
			continue
		}
		c, ok := curRecs[k]
		if !ok {
			continue // already reported missing above
		}
		switch {
		case c.OCCBatches < b.OCCBatches:
			fmt.Printf("FAIL %s/%s %s %dthr: %d OCC batches, baseline %d — mixed groups stopped committing Silo-style\n",
				k.Variant, k.Mode, k.Mix, k.Threads, c.OCCBatches, b.OCCBatches)
			failures++
		case c.OCCShared != 0 || c.OCCRetries != 0 || c.OCCFallbacks != 0:
			fmt.Printf("FAIL %s/%s %s %dthr: OCC path took %d shared locks, %d retries, %d fallbacks on the uncontended pass — want all zero\n",
				k.Variant, k.Mode, k.Mix, k.Threads, c.OCCShared, c.OCCRetries, c.OCCFallbacks)
			failures++
		default:
			fmt.Printf("ok   %s/%s %s %dthr: %d OCC batches, 0 shared locks / 0 retries / 0 fallbacks\n",
				k.Variant, k.Mode, k.Mix, k.Threads, c.OCCBatches)
		}
	}
	// The batched-throughput gate: batched ops_per_sec must reach the
	// given fraction of sequential ops_per_sec, both taken from the SAME
	// current run (crsbench interleaves the two modes, so the ratio
	// cancels machine drift that would swamp any absolute comparison).
	// Skewed rows are excluded — contention-dependent by design — and
	// -ratio-threads narrows the gate to the thread counts whose ratio is
	// a scheduling-quality signal rather than a lock-holding tax.
	wantThreads := map[int]bool{}
	if *ratioThreads != "" {
		for _, f := range splitCommas(*ratioThreads) {
			var n int
			if _, err := fmt.Sscanf(f, "%d", &n); err != nil {
				fatal(fmt.Errorf("-ratio-threads: bad thread count %q", f))
			}
			wantThreads[n] = true
		}
	}
	if *minBatchRatio > 0 {
		wantVariants := map[string]bool{}
		for _, v := range splitCommas(*ratioVariants) {
			wantVariants[v] = true
		}
		type tkey struct {
			Mix, Variant string
			Threads      int
		}
		seq := map[tkey]benchRecord{}
		for _, r := range cur.Results {
			if r.Mode == "sequential" && r.Skew == 0 {
				seq[tkey{r.Mix, r.Variant, r.Threads}] = r
			}
		}
		gated := 0
		for _, r := range cur.Results {
			if r.Mode != "batched" || r.Skew != 0 {
				continue
			}
			if len(wantThreads) > 0 && !wantThreads[r.Threads] {
				continue
			}
			if len(wantVariants) > 0 && !wantVariants[r.Variant] {
				continue
			}
			s, ok := seq[tkey{r.Mix, r.Variant, r.Threads}]
			if !ok || s.OpsPerSec <= 0 {
				continue
			}
			gated++
			ratio := r.OpsPerSec / s.OpsPerSec
			if ratio < *minBatchRatio {
				fmt.Printf("FAIL %s %s %dthr: batched %.0f ops/s is %.2fx sequential %.0f — want >= %.2fx\n",
					r.Variant, r.Mix, r.Threads, r.OpsPerSec, ratio, s.OpsPerSec, *minBatchRatio)
				failures++
			} else {
				fmt.Printf("ok   %s %s %dthr: batched %.0f ops/s is %.2fx sequential %.0f (floor %.2fx)\n",
					r.Variant, r.Mix, r.Threads, r.OpsPerSec, ratio, s.OpsPerSec, *minBatchRatio)
			}
		}
		if gated == 0 {
			fmt.Printf("FAIL ratio gate matched no (batched, sequential) row pairs in %s — wrong -ratio-threads/-ratio-variants, or the run measured one mode only\n", *currentPath)
			failures++
		}
	}
	// The wire group-commit gate: every batched -wire row of the current
	// run must have coalesced to at least the floor. The lockstep pass
	// commits K clients per group deterministically, so a shortfall means
	// the dispatcher window stopped coalescing across connections, never
	// that the machine was slow. Baseline wire rows additionally pin that
	// the mean batch size must not shrink (their lock totals are already
	// guarded by the rules above).
	if *minWireBatch > 0 {
		gated := 0
		for _, r := range cur.Results {
			if r.Mode != "batched" || r.WireBatches == 0 {
				continue
			}
			gated++
			mean := float64(r.WireRequests) / float64(r.WireBatches)
			if mean < *minWireBatch {
				fmt.Printf("FAIL %s %s %dthr: mean coalesced batch %.2f (%d requests in %d group commits) — want >= %.2f\n",
					r.Variant, r.Mix, r.Threads, mean, r.WireRequests, r.WireBatches, *minWireBatch)
				failures++
				continue
			}
			k := recKey(r)
			if b, ok := baseRecs[k]; ok && b.WireBatches > 0 {
				baseMean := float64(b.WireRequests) / float64(b.WireBatches)
				if mean < baseMean {
					fmt.Printf("FAIL %s %s %dthr: mean coalesced batch %.2f below baseline %.2f\n",
						r.Variant, r.Mix, r.Threads, mean, baseMean)
					failures++
					continue
				}
			}
			fmt.Printf("ok   %s %s %dthr: mean coalesced batch %.2f (%d requests in %d group commits, floor %.2f)\n",
				r.Variant, r.Mix, r.Threads, mean, r.WireRequests, r.WireBatches, *minWireBatch)
		}
		if gated == 0 {
			fmt.Printf("FAIL wire gate matched no batched wire rows in %s — the run was not crsbench -wire, or it measured the sequential mode only\n", *currentPath)
			failures++
		}
	}
	// The durability gates (-min-wal-ratio arms all three): the -wal run's
	// deterministic identities plus a coarse overhead bound.
	//
	//   (a) fsyncs == appends on every WAL-carrying row: the dispatcher
	//       syncs exactly once per committed mutating group — never twice
	//       for one window, never zero before a reply;
	//   (b) the batched discipline fsyncs strictly less than the
	//       sequential one, and no more than the baseline did: group
	//       commit IS fsync batching, and losing the amortization is a
	//       regression even if throughput happens to survive it;
	//   (c) WAL-on throughput must reach the given fraction of WAL-off
	//       throughput for the batched rows of the SAME run — a guard
	//       against the commit path regressing to per-request durability
	//       work, deliberately loose because absolute fsync cost is the
	//       runner's, not the scheduler's.
	if *minWalRatio > 0 {
		walRows := 0
		for _, r := range cur.Results {
			if r.WALAppends == 0 {
				continue
			}
			walRows++
			if r.WALFsyncs != r.WALAppends {
				fmt.Printf("FAIL %s/%s %s %dthr: %d fsyncs for %d appends — want exactly one fsync per committed group\n",
					r.Variant, r.Mode, r.Mix, r.Threads, r.WALFsyncs, r.WALAppends)
				failures++
			}
		}
		if walRows == 0 {
			fmt.Printf("FAIL wal gate found no WAL-carrying rows in %s — the run was not crsbench -wal\n", *currentPath)
			failures++
		}
		for k, c := range curRecs {
			if c.WALAppends == 0 || k.Mode != "batched" {
				continue
			}
			sk := k
			sk.Mode = "sequential"
			if s, ok := curRecs[sk]; ok && s.WALAppends > 0 {
				if c.WALFsyncs >= s.WALFsyncs {
					fmt.Printf("FAIL %s %s %dthr: batched %d fsyncs, sequential %d — group commit must amortize the sync\n",
						k.Variant, k.Mix, k.Threads, c.WALFsyncs, s.WALFsyncs)
					failures++
				} else {
					fmt.Printf("ok   %s %s %dthr: batched %d fsyncs vs sequential %d\n",
						k.Variant, k.Mix, k.Threads, c.WALFsyncs, s.WALFsyncs)
				}
			}
			if b, ok := baseRecs[k]; ok && b.WALAppends > 0 && c.WALAppends > b.WALAppends {
				fmt.Printf("FAIL %s/%s %s %dthr: %d appends > baseline %d — groups stopped coalescing into single records\n",
					k.Variant, k.Mode, k.Mix, k.Threads, c.WALAppends, b.WALAppends)
				failures++
			}
		}
		type wkey struct {
			Mix, Mode string
			Threads   int
		}
		plain := map[wkey]benchRecord{}
		for _, r := range cur.Results {
			if r.Variant == "social-wire" {
				plain[wkey{r.Mix, r.Mode, r.Threads}] = r
			}
		}
		gated := 0
		for _, r := range cur.Results {
			if r.Variant != "social-wire-wal" || r.Mode != "batched" {
				continue
			}
			p, ok := plain[wkey{r.Mix, r.Mode, r.Threads}]
			if !ok || p.OpsPerSec <= 0 {
				continue
			}
			gated++
			ratio := r.OpsPerSec / p.OpsPerSec
			if ratio < *minWalRatio {
				fmt.Printf("FAIL %s %s %dthr: WAL-on %.0f req/s is %.2fx WAL-off %.0f — want >= %.2fx\n",
					r.Variant, r.Mix, r.Threads, r.OpsPerSec, ratio, p.OpsPerSec, *minWalRatio)
				failures++
			} else {
				fmt.Printf("ok   %s %s %dthr: WAL-on %.0f req/s is %.2fx WAL-off %.0f (floor %.2fx)\n",
					r.Variant, r.Mix, r.Threads, r.OpsPerSec, ratio, p.OpsPerSec, *minWalRatio)
			}
		}
		if gated == 0 {
			fmt.Printf("FAIL wal ratio gate matched no (WAL-on, WAL-off) row pairs in %s — the run measured one configuration only\n", *currentPath)
			failures++
		}
	}
	// The live-migration gate: migrate-post throughput must reach the
	// given fraction of migrate-pre throughput per (mix, variant,
	// threads), both halves from the SAME current run (crsbench -migrate
	// runs them back to back on one registry), so the ratio cancels
	// machine drift. A migration that costs steady-state throughput is a
	// regression even when every lock count above still holds.
	// -ratio-threads scopes this gate too: contended rows on oversubscribed
	// runners measure scheduler luck, so CI gates the 1-thread pair, whose
	// pre/post margin is structural (lock-free reads vs 2PL).
	if *minMigrateRatio > 0 {
		type tkey struct {
			Mix, Variant string
			Threads      int
		}
		pre := map[tkey]benchRecord{}
		for _, r := range cur.Results {
			if r.Mode == "migrate-pre" {
				pre[tkey{r.Mix, r.Variant, r.Threads}] = r
			}
		}
		gated := 0
		for _, r := range cur.Results {
			if r.Mode != "migrate-post" {
				continue
			}
			if len(wantThreads) > 0 && !wantThreads[r.Threads] {
				continue
			}
			p, ok := pre[tkey{r.Mix, r.Variant, r.Threads}]
			if !ok || p.OpsPerSec <= 0 {
				continue
			}
			gated++
			ratio := r.OpsPerSec / p.OpsPerSec
			if ratio < *minMigrateRatio {
				fmt.Printf("FAIL %s %s %dthr: migrated steady state %.0f ops/s is %.2fx pre-migration %.0f — want >= %.2fx\n",
					r.Variant, r.Mix, r.Threads, r.OpsPerSec, ratio, p.OpsPerSec, *minMigrateRatio)
				failures++
			} else {
				fmt.Printf("ok   %s %s %dthr: migrated steady state %.0f ops/s is %.2fx pre-migration %.0f (floor %.2fx)\n",
					r.Variant, r.Mix, r.Threads, r.OpsPerSec, ratio, p.OpsPerSec, *minMigrateRatio)
			}
		}
		if gated == 0 {
			fmt.Printf("FAIL migrate gate matched no (migrate-pre, migrate-post) row pairs in %s — the run was not crsbench -migrate\n", *currentPath)
			failures++
		}
	}
	// The open-loop window-knob gates (-max-openloop-p99 arms all three):
	//
	//   (a) every openloop cell's client-side p99 stays within the bound
	//       plus 4x the cell's window — coordinated-omission-free, so a
	//       dispatcher that parks a request past its window cannot hide;
	//       the bound is loose by design because shared runners stall;
	//   (b) every window-0 cell reports a mean coalesced batch of exactly
	//       1 — MaxBatch 1 really disables coalescing;
	//   (c) under bursty arrivals the mean batch STRICTLY increases along
	//       the window sweep per (mix, clients) — the structural payoff the
	//       window exists for, robust on noisy runners because a longer
	//       window can only gather more of a burst.
	if *maxOpenLoopP99 > 0 {
		type okey struct {
			Mix, Arrival string
			Threads      int
		}
		cells := map[okey][]benchRecord{}
		gated := 0
		for _, r := range cur.Results {
			if r.Mode != "openloop" {
				continue
			}
			if r.WindowUS == nil {
				fmt.Printf("FAIL %s %s %dthr: openloop row carries no window_us\n", r.Variant, r.Mix, r.Threads)
				failures++
				continue
			}
			gated++
			w := *r.WindowUS
			bound := maxOpenLoopP99.Nanoseconds() + 4*w*1000
			if r.P99NS > bound {
				fmt.Printf("FAIL %s %s %dthr %s@%dus: p99 %.2fms over the %.2fms bound (%v + 4x window)\n",
					r.Variant, r.Mix, r.Threads, r.Arrival, w, float64(r.P99NS)/1e6, float64(bound)/1e6, *maxOpenLoopP99)
				failures++
			}
			if w == 0 && r.MeanBatch != 1 {
				fmt.Printf("FAIL %s %s %dthr %s@0us: mean batch %.2f with coalescing disabled — want exactly 1\n",
					r.Variant, r.Mix, r.Threads, r.Arrival, r.MeanBatch)
				failures++
			}
			cells[okey{r.Mix, r.Arrival, r.Threads}] = append(cells[okey{r.Mix, r.Arrival, r.Threads}], r)
		}
		if gated == 0 {
			fmt.Printf("FAIL openloop gate matched no openloop rows in %s — the run was not crsbench -openloop\n", *currentPath)
			failures++
		}
		for ck, rows := range cells {
			if ck.Arrival != "bursty" {
				continue
			}
			sort.Slice(rows, func(i, j int) bool { return *rows[i].WindowUS < *rows[j].WindowUS })
			mono := true
			for i := 1; i < len(rows); i++ {
				if rows[i].MeanBatch <= rows[i-1].MeanBatch {
					fmt.Printf("FAIL %s %dthr bursty: mean batch %.2f at window %dus does not exceed %.2f at %dus — widening the window stopped gathering bursts\n",
						ck.Mix, ck.Threads, rows[i].MeanBatch, *rows[i].WindowUS, rows[i-1].MeanBatch, *rows[i-1].WindowUS)
					failures++
					mono = false
				}
			}
			if mono {
				batches := make([]string, len(rows))
				for i, r := range rows {
					batches[i] = fmt.Sprintf("%.2f@%dus", r.MeanBatch, *r.WindowUS)
				}
				fmt.Printf("ok   %s %dthr bursty: mean batch strictly increasing across windows (%s)\n",
					ck.Mix, ck.Threads, strings.Join(batches, " < "))
			}
		}
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d bench regression(s) against %s", failures, *baselinePath))
	}
	fmt.Printf("benchguard: %d record(s) checked against %s, no regressions\n", len(baseRecs), *baselinePath)
}

// splitCommas splits a comma-separated list, dropping empty fields.
func splitCommas(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
