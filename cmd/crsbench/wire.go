package main

// The -wire benchmark: cross-client group commit measured end to end.
// K lockstep HTTP clients (each blocks on its reply before sending the
// next request) stream composite social requests at an in-process crsd.
// In the batched discipline the dispatcher window is MaxBatch = K with a
// far-off timer, so every round commits as ONE group of exactly K
// cross-client requests; the sequential discipline is MaxBatch = 1 —
// the same K clients, every request committing alone. Disjoint
// per-client key partitions (client c of K draws keys ≡ c mod K) make
// per-request results and the traced lock totals independent of arrival
// order inside a window, so the counting pass is deterministic: group
// commits never overlap in time (all clients are parked until the group
// commits), hence zero OCC retries and zero read-only fallbacks, and the
// coalesced lock schedule is a pure function of the seed.
//
// Per client count and discipline the benchmark runs a traced counting
// pass — lock totals, read-only/OCC counters, and the dispatcher's
// batch statistics (wire_batches/wire_requests/wire_max_batch) — whose
// timing is discarded, then an untraced throughput pass timed over the
// full client run (requests per second, HTTP round trips included).

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/wal"
	"repro/internal/workload"
)

// wirePass runs one complete client run: K lockstep clients, ops
// requests each, against a fresh social registry served over loopback
// HTTP. A non-empty walDir attaches a fresh write-ahead log (the -wal
// benchmark's durable configuration; the dispatcher then fsyncs once
// per group commit before replying). It returns the run's wall time,
// the fold-checksum of every reply, and the dispatcher's stats snapshot
// (carrying the WAL counters when durable).
func wirePass(clients, ops int, keyspace int64, seed uint64, cfg server.Config, walDir string) (time.Duration, uint64, server.Stats) {
	soc := workload.MustSocial()
	var m *wal.Manager
	if walDir != "" {
		var err error
		// SnapshotEvery 0: no background snapshots, so the append and
		// fsync totals are pure functions of the workload.
		m, err = wal.Open(walDir, soc.Reg, wal.Options{})
		if err != nil {
			fatal(fmt.Errorf("wire: wal: %v", err))
		}
		soc.Reg.SetCommitLogger(m)
		cfg.WAL = m
	}
	srv := server.New(soc.Reg, cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		fatal(fmt.Errorf("wire: %v", err))
	}
	base := "http://" + srv.Addr()
	mix := workload.DefaultSocialMix()

	sums := make([]uint64, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(base)
			gen := server.NewSocialTraffic(seed, mix, keyspace, int64(clients), int64(c))
			var sum uint64
			for i := 0; i < ops; i++ {
				resp, err := cl.Do(context.Background(), gen.Next())
				if err != nil {
					fatal(fmt.Errorf("wire: client %d request %d: %v", c, i, err))
				}
				sum = server.FoldResponse(sum, resp)
			}
			sums[c] = sum
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := srv.Dispatcher().Stats()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal(fmt.Errorf("wire: shutdown: %v", err))
	}
	if m != nil {
		if err := m.Close(); err != nil {
			fatal(fmt.Errorf("wire: wal close: %v", err))
		}
	}
	var checksum uint64
	for _, s := range sums {
		checksum += s
	}
	return elapsed, checksum, st
}

// wireConfig builds the dispatcher configuration of one discipline: the
// batched window closes only on the MaxBatch = clients cutoff (the timer
// is parked far away — lockstep clients always fill the window), the
// sequential discipline commits every request alone.
func wireConfig(mode string, clients int, counts *workload.LockCounts) server.Config {
	if mode == "batched" {
		return server.Config{Window: 30 * time.Second, MaxBatch: clients, Counts: counts}
	}
	return server.Config{MaxBatch: 1, Counts: counts}
}

// runWireBench runs the wire group-commit comparison for every requested
// client count.
func runWireBench(doc *jsonDoc, rc RunConfig, threads []int, format string) {
	ops, keyspace, seed := rc.OpsPerThread, rc.KeySpace, rc.Seed
	mix := workload.DefaultSocialMix()
	if format == "csv" {
		fmt.Println("mix,mode,clients,requests,seconds,requests_per_sec,wire_batches,wire_requests,wire_max_batch,locks_requested,locks_acquired")
	}
	if format == "table" {
		fmt.Printf("\nWire group commit, social mix %s over loopback HTTP (GOMAXPROCS=%d)\n",
			mix, runtime.GOMAXPROCS(0))
	}
	for _, mode := range []string{"batched", "sequential"} {
		for _, k := range threads {
			if mode == "batched" && k == 1 {
				// One client has nothing to coalesce with: the discipline
				// degenerates to MaxBatch 1 and would tie the sequential
				// lock totals, which benchguard's strict coalescing rule
				// (batched < sequential) rightly rejects.
				continue
			}
			// Counting pass: tracing on, timing discarded (tracing
			// allocates per batch).
			counts := &workload.LockCounts{}
			_, checksum, st := wirePass(k, ops, keyspace, seed, wireConfig(mode, k, counts), "")
			if mode == "batched" && k > 1 && st.MeanBatchSize < 2 {
				fatal(fmt.Errorf("wire: %d lockstep clients coalesced to mean batch %.2f — the window is broken", k, st.MeanBatchSize))
			}
			// Throughput pass: untraced, timed end to end.
			elapsed, checksum2, _ := wirePass(k, ops, keyspace, seed, wireConfig(mode, k, nil), "")
			if checksum2 != checksum {
				fatal(fmt.Errorf("wire: traced and untraced passes diverged (%d vs %d) — the workload is not deterministic", checksum, checksum2))
			}
			total := k * ops
			row := jsonResult{
				Mix: mix.String(), Variant: "social-wire", Mode: mode, Threads: k,
				Ops: total, Seconds: elapsed.Seconds(),
				OpsPerSec:      float64(total) / elapsed.Seconds(),
				Checksum:       checksum,
				WireBatches:    int64(st.Batches),
				WireRequests:   int64(st.Requests),
				WireMaxBatch:   int64(st.MaxBatchSize),
				LocksRequested: counts.Requested.Load(),
				LocksAcquired:  counts.Acquired.Load(),
			}
			row.ROBatches = counts.ReadOnlyBatches.Load()
			row.ROLocksAcquired = counts.ReadOnlyAcquired.Load()
			row.ValidationRetries = counts.ValidationRetries.Load()
			row.ROFallbacks = counts.Fallbacks.Load()
			row.OCCBatches = counts.OCCBatches.Load()
			row.OCCWriteLocks = counts.OCCWriteLocks.Load()
			row.OCCShared = counts.OCCSharedLocks.Load()
			row.OCCReadSet = counts.OCCReadSet.Load()
			row.OCCRetries = counts.OCCRetries.Load()
			row.OCCFallbacks = counts.OCCFallbacks.Load()
			switch format {
			case "table":
				fmt.Printf("%-12s %d clients: %8.0f req/s, %d batches for %d requests (mean %.2f, max %d), locks %d -> %d\n",
					mode, k, row.OpsPerSec, row.WireBatches, row.WireRequests,
					float64(row.WireRequests)/float64(row.WireBatches), row.WireMaxBatch,
					row.LocksRequested, row.LocksAcquired)
			case "csv":
				fmt.Printf("%s,%s,%d,%d,%.3f,%.0f,%d,%d,%d,%d,%d\n", mix, mode, k, total,
					elapsed.Seconds(), row.OpsPerSec, row.WireBatches, row.WireRequests,
					row.WireMaxBatch, row.LocksRequested, row.LocksAcquired)
			case "json":
				doc.Results = append(doc.Results, row)
			}
		}
	}
	emitJSON(doc, format)
}
