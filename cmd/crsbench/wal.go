package main

// The -wal benchmark: the wire group-commit workload run twice per
// discipline and client count — once with a write-ahead log attached
// (variant "social-wire-wal") and once without ("social-wire") — so the
// cost of durability is measured against its exact non-durable twin in
// the same run.
//
// The durable configuration is crsd's default: fsync policy "batch",
// one redo record per committed group, one fsync per window before any
// reply. That yields two deterministic identities the counting pass
// records and cmd/benchguard gates:
//
//   - wal_fsyncs == wal_appends: exactly one fsync per committed
//     mutating group — the dispatcher never syncs twice for one window
//     and never acknowledges ahead of the sync;
//   - batched wal_fsyncs < sequential wal_fsyncs: the sequential
//     discipline pays one fsync per mutating request, the batched
//     discipline one per K-client group — group commit above IS fsync
//     batching below, the durability tentpole's measurable form.
//
// Throughput rows additionally let benchguard bound the WAL-on vs
// WAL-off ratio within the run (-min-wal-ratio), a coarse guard against
// the commit path regressing to per-request durability work.

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
)

// walPass runs one durable wire pass in a throwaway WAL directory.
func walPass(clients, ops int, keyspace int64, seed uint64, cfg server.Config) (time.Duration, uint64, server.Stats) {
	dir, err := os.MkdirTemp("", "crsbench-wal-")
	if err != nil {
		fatal(fmt.Errorf("wal: %v", err))
	}
	defer os.RemoveAll(dir)
	return wirePass(clients, ops, keyspace, seed, cfg, dir)
}

// runWalBench runs the durability comparison for every requested client
// count: per discipline, a traced WAL-on counting pass (lock totals,
// batch statistics, append/fsync counts; timing discarded), then an
// untraced WAL-on throughput pass and an untraced WAL-off throughput
// pass. All passes replay the identical deterministic streams, verified
// by reply checksums.
func runWalBench(doc *jsonDoc, rc RunConfig, threads []int, format string) {
	ops, keyspace, seed := rc.OpsPerThread, rc.KeySpace, rc.Seed
	mix := workload.DefaultSocialMix()
	if format == "csv" {
		fmt.Println("mix,variant,mode,clients,requests,seconds,requests_per_sec,wire_batches,wire_requests,wal_appends,wal_fsyncs,locks_requested,locks_acquired")
	}
	if format == "table" {
		fmt.Printf("\nDurability over the wire, social mix %s over loopback HTTP (GOMAXPROCS=%d)\n",
			mix, runtime.GOMAXPROCS(0))
	}
	for _, mode := range []string{"batched", "sequential"} {
		for _, k := range threads {
			if mode == "batched" && k == 1 {
				continue // one client cannot coalesce; see runWireBench
			}
			// Counting pass: WAL on, tracing on, timing discarded.
			counts := &workload.LockCounts{}
			_, checksum, st := walPass(k, ops, keyspace, seed, wireConfig(mode, k, counts))
			if st.WAL == nil || st.WAL.Appends == 0 {
				fatal(fmt.Errorf("wal: the counting pass logged nothing — the commit hook is detached"))
			}
			if st.WAL.Fsyncs != st.WAL.Appends {
				fatal(fmt.Errorf("wal: %d fsyncs for %d appends — the dispatcher must sync exactly once per committed group", st.WAL.Fsyncs, st.WAL.Appends))
			}
			// Throughput passes: untraced, WAL on then WAL off, identical
			// streams.
			durElapsed, sum2, _ := walPass(k, ops, keyspace, seed, wireConfig(mode, k, nil))
			offElapsed, sum3, _ := wirePass(k, ops, keyspace, seed, wireConfig(mode, k, nil), "")
			if sum2 != checksum || sum3 != checksum {
				fatal(fmt.Errorf("wal: durable and plain passes diverged (%d / %d / %d) — the workload is not deterministic", checksum, sum2, sum3))
			}
			total := k * ops
			durable := jsonResult{
				Mix: mix.String(), Variant: "social-wire-wal", Mode: mode, Threads: k,
				Ops: total, Seconds: durElapsed.Seconds(),
				OpsPerSec:      float64(total) / durElapsed.Seconds(),
				Checksum:       checksum,
				WireBatches:    int64(st.Batches),
				WireRequests:   int64(st.Requests),
				WireMaxBatch:   int64(st.MaxBatchSize),
				WALAppends:     int64(st.WAL.Appends),
				WALFsyncs:      int64(st.WAL.Fsyncs),
				LocksRequested: counts.Requested.Load(),
				LocksAcquired:  counts.Acquired.Load(),
			}
			durable.ROBatches = counts.ReadOnlyBatches.Load()
			durable.ROLocksAcquired = counts.ReadOnlyAcquired.Load()
			durable.ValidationRetries = counts.ValidationRetries.Load()
			durable.ROFallbacks = counts.Fallbacks.Load()
			durable.OCCBatches = counts.OCCBatches.Load()
			durable.OCCWriteLocks = counts.OCCWriteLocks.Load()
			durable.OCCShared = counts.OCCSharedLocks.Load()
			durable.OCCReadSet = counts.OCCReadSet.Load()
			durable.OCCRetries = counts.OCCRetries.Load()
			durable.OCCFallbacks = counts.OCCFallbacks.Load()
			// The WAL-off twin: throughput only (its counters are the -wire
			// benchmark's business), present so the overhead ratio compares
			// rows of one run.
			plain := jsonResult{
				Mix: mix.String(), Variant: "social-wire", Mode: mode, Threads: k,
				Ops: total, Seconds: offElapsed.Seconds(),
				OpsPerSec: float64(total) / offElapsed.Seconds(),
				Checksum:  checksum,
			}
			switch format {
			case "table":
				fmt.Printf("%-12s %d clients: wal %8.0f req/s vs plain %8.0f (%.2fx), %d appends / %d fsyncs over %d groups\n",
					mode, k, durable.OpsPerSec, plain.OpsPerSec, durable.OpsPerSec/plain.OpsPerSec,
					durable.WALAppends, durable.WALFsyncs, durable.WireBatches)
			case "csv":
				for _, row := range []jsonResult{durable, plain} {
					fmt.Printf("%s,%s,%s,%d,%d,%.3f,%.0f,%d,%d,%d,%d,%d,%d\n", mix, row.Variant, mode, k, total,
						row.Seconds, row.OpsPerSec, row.WireBatches, row.WireRequests,
						row.WALAppends, row.WALFsyncs, row.LocksRequested, row.LocksAcquired)
				}
			case "json":
				doc.Results = append(doc.Results, durable, plain)
			}
		}
	}
	emitJSON(doc, format)
}
