package main

// The -openloop benchmark: the wire front end driven by ARRIVING traffic
// instead of lockstep clients. K open-loop clients each fire requests on
// their own deterministic arrival schedule (internal/server/openloop);
// the benchmark sweeps the dispatcher window over -windows for two
// arrival processes at matched offered load — Poisson (independent
// clients) and bursty (clumped front-end fan-out, mean burst -burst,
// idle gap burst×-arrival-gap so the long-run rate equals Poisson's).
//
// Each (arrival, window, clients) cell reports offered vs achieved
// throughput, the drop/error accounting (overload is visible, never
// silently closed-loop), the server's mean coalesced batch size, and the
// coordinated-omission-free p50/p95/p99 measured from each request's
// SCHEDULED arrival time. Window 0 disables coalescing (MaxBatch 1) —
// the no-batching baseline whose mean batch is exactly 1. This is the
// window-knob tradeoff made measurable: under bursty arrivals the mean
// batch must GROW with the window (cmd/benchguard gates it strictly)
// while p99 stays bounded relative to the window (-max-openloop-p99).

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/server/openloop"
	"repro/internal/workload"
)

// openLoopArrivals are the two arrival processes every cell pair
// compares; both run at the same long-run offered rate.
var openLoopArrivals = []string{"poisson", "bursty"}

// parseWindows parses the -windows sweep: comma-separated Go durations
// ("0" allowed for the no-coalescing baseline), at least one, all
// distinct and non-negative.
func parseWindows(s string) ([]time.Duration, error) {
	var out []time.Duration
	seen := map[time.Duration]bool{}
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "0" {
			f = "0s"
		}
		w, err := time.ParseDuration(f)
		if err != nil {
			return nil, fmt.Errorf("bad -windows entry %q: %v", f, err)
		}
		if w < 0 {
			return nil, fmt.Errorf("-windows entry %v is negative", w)
		}
		if seen[w] {
			return nil, fmt.Errorf("-windows entry %v repeats", w)
		}
		seen[w] = true
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-windows is empty")
	}
	return out, nil
}

// openLoopGen builds client c's arrival generator for one cell. Seeds
// derive from the workload seed and the client index so every cell of a
// run replays the same schedules.
func openLoopGen(arrival string, rc RunConfig, c int) workload.ArrivalGen {
	gap := time.Duration(rc.ArrivalGapUS) * time.Microsecond
	seed := rc.Seed + uint64(c+1)
	if arrival == "bursty" {
		// Mean burst B separated by idle gaps of mean B×gap: one arrival
		// per gap in the long run — Poisson's offered load, clumped.
		return workload.NewBurstyArrivals(seed, rc.BurstMean, time.Duration(rc.BurstMean*float64(gap)))
	}
	return workload.NewPoissonArrivals(seed, gap)
}

// openLoopServerConfig maps a swept window to a dispatcher config:
// window 0 disables coalescing entirely (MaxBatch 1), a positive window
// coalesces up to the default MaxBatch cutoff.
func openLoopServerConfig(window time.Duration) server.Config {
	if window == 0 {
		return server.Config{MaxBatch: 1}
	}
	return server.Config{Window: window}
}

// runOpenLoopBench sweeps (arrival process × window × client count),
// one fresh server and one open-loop pass per cell.
func runOpenLoopBench(doc *jsonDoc, rc RunConfig, threads []int, format string) {
	windows, err := parseWindows(rc.Windows)
	if err != nil {
		fatal(err)
	}
	mix := workload.DefaultSocialMix()
	if format == "csv" {
		fmt.Println("mix,arrival,window_us,clients,scheduled,offered_per_sec,achieved_per_sec,dropped,errors,mean_batch,p50_us,p95_us,p99_us")
	}
	if format == "table" {
		fmt.Printf("\nOpen-loop arrivals, social mix %s over loopback HTTP (GOMAXPROCS=%d, gap %dus/client, burst %g, inflight %d)\n",
			mix, runtime.GOMAXPROCS(0), rc.ArrivalGapUS, rc.BurstMean, rc.InFlight)
	}
	for _, arrival := range openLoopArrivals {
		for _, window := range windows {
			for _, k := range threads {
				res, st := openLoopPass(arrival, window, k, rc)
				windowUS := window.Microseconds()
				row := jsonResult{
					Mix: mix.String(), Variant: "social-openloop", Mode: "openloop",
					Threads: k, Arrival: arrival, WindowUS: &windowUS,
					Ops: res.Scheduled, Seconds: res.Elapsed.Seconds(),
					OpsPerSec:     res.AchievedPerSec,
					OfferedPerSec: res.OfferedPerSec,
					Dropped:       res.Dropped,
					Errors:        res.Errors,
					Checksum:      res.Checksum,
					WireBatches:   int64(st.Batches),
					WireRequests:  int64(st.Requests),
					WireMaxBatch:  int64(st.MaxBatchSize),
					MeanBatch:     st.MeanBatchSize,
					P50NS:         res.Latency.Quantile(0.50),
					P95NS:         res.Latency.Quantile(0.95),
					P99NS:         res.Latency.Quantile(0.99),
					MaxNS:         res.Latency.Quantile(1),
				}
				if st.CommitLatency != nil {
					row.ServerP99NS = st.CommitLatency.P99
				}
				switch format {
				case "table":
					fmt.Printf("%-8s window %8v, %d clients: offered %7.0f req/s, achieved %7.0f, drop %3d, err %3d, mean batch %5.2f, p50 %7.0fus p95 %7.0fus p99 %7.0fus\n",
						arrival, window, k, row.OfferedPerSec, row.OpsPerSec, row.Dropped, row.Errors,
						row.MeanBatch, float64(row.P50NS)/1e3, float64(row.P95NS)/1e3, float64(row.P99NS)/1e3)
				case "csv":
					fmt.Printf("%s,%s,%d,%d,%d,%.0f,%.0f,%d,%d,%.3f,%.0f,%.0f,%.0f\n",
						mix, arrival, windowUS, k, row.Ops, row.OfferedPerSec, row.OpsPerSec,
						row.Dropped, row.Errors, row.MeanBatch,
						float64(row.P50NS)/1e3, float64(row.P95NS)/1e3, float64(row.P99NS)/1e3)
				case "json":
					doc.Results = append(doc.Results, row)
				}
			}
		}
	}
	emitJSON(doc, format)
}

// openLoopPass runs one cell: fresh social registry served over
// loopback, K open-loop clients on the cell's arrival schedules, stats
// snapshot before shutdown. Drops and errors are reported in the row,
// not fatal: overload is a measurement, not a failure — but a server
// that breaks (every request erroring) still aborts the run.
func openLoopPass(arrival string, window time.Duration, clients int, rc RunConfig) (*openloop.Result, server.Stats) {
	soc := workload.MustSocial()
	srv := server.New(soc.Reg, openLoopServerConfig(window))
	if err := srv.Start("127.0.0.1:0"); err != nil {
		fatal(fmt.Errorf("openloop: %v", err))
	}
	res, err := openloop.Run(openloop.Config{
		BaseURL:  "http://" + srv.Addr(),
		Clients:  clients,
		Requests: rc.OpsPerThread,
		InFlight: rc.InFlight,
		Timeout:  10 * time.Second,
		NewArrivals: func(c int) workload.ArrivalGen {
			return openLoopGen(arrival, rc, c)
		},
		NewTraffic: func(c int) *server.SocialTraffic {
			return server.NewSocialTraffic(rc.Seed+uint64(c), workload.DefaultSocialMix(), rc.KeySpace, int64(clients), int64(c))
		},
	})
	if err != nil {
		fatal(fmt.Errorf("openloop: %v", err))
	}
	if res.Sent > 0 && res.Errors == res.Sent {
		fatal(fmt.Errorf("openloop: every one of %d sent requests failed — the server is broken, not overloaded", res.Sent))
	}
	st := srv.Dispatcher().Stats()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal(fmt.Errorf("openloop: shutdown: %v", err))
	}
	return res, st
}
