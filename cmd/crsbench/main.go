// Command crsbench regenerates Figure 5 of "Concurrent Data Representation
// Synthesis" (PLDI 2012): throughput/scalability series for the twelve
// named decompositions plus the hand-coded baseline, across the four
// operation mixes, using the paper's methodology (k threads × N random
// operations each over one shared graph relation).
//
// Usage:
//
//	crsbench [-mixes all|70-0-20-10,...] [-threads 1,2,4] [-ops 500000]
//	         [-keyspace 512] [-variants all|Stick 1,...] [-format table|csv|json]
//	         [-batch] [-registry] [-optimistic] [-mixed] [-wire] [-wal] [-migrate]
//
// The json format emits one machine-readable document (configuration plus
// one record per mix/variant/thread-count with ops/s) so successive runs
// can be archived — e.g. as BENCH_<date>.json — and compared across PRs.
// -registry additionally records deterministic coalesced lock-acquisition
// counts (single-threaded pass, fixed seed) that cmd/benchguard compares
// against the committed baseline in CI; -optimistic records the read-only
// zero-lock counters, and -mixed the mixed-batch OCC counters (write
// locks, read-set size, retries, fallbacks) over the Follow-heavy social
// mix. -migrate measures live representation migration: the read-heavy
// social mix on the pessimistic boot representation ("migrate-pre" rows),
// then — after Registry.Migrate upgrades every relation to the concurrent
// container archetypes — the identical workload on the migrated registry
// ("migrate-post" rows); cmd/benchguard's -min-migrate-ratio gates the
// post/pre throughput ratio within the one run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	crs "repro"
	"repro/internal/autotune"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/handcoded"
	"repro/internal/workload"
)

// benchSchema versions the -format json document; cmd/benchguard refuses
// to compare documents with mismatched schemas. Bump it whenever a field
// changes meaning (schema 2 added the optimistic read-only counters,
// schema 3 the mixed-batch OCC counters of the -mixed pass, schema 4 the
// deterministic -batch rows: ns_per_member/members/counters_absent, plus
// the skew field of the -mixed -skew sweep; schema 5 the -wire rows'
// cross-client group-commit counters: wire_batches/wire_requests/
// wire_max_batch; schema 6 the RunConfig block echoed into every row and
// the -openloop rows' arrival/window/latency fields).
const benchSchema = 6

// RunConfig is the one parameter block every benchmark mode shares: the
// workload shape (-ops/-keyspace/-seed) plus the open-loop arrival knobs
// (zero-valued for the other modes). It appears once at the document's
// config level and is echoed VERBATIM into every result row, so
// cmd/benchguard can validate arrival and window parameters exactly the
// way it validates ops/keyspace/seed — a row from a differently
// parameterized run can never masquerade as comparable. The struct is
// comparable (no slices/maps) so the guard checks it with ==.
type RunConfig struct {
	// Bench names the mode that produced the document: figure5, batch,
	// registry, optimistic, mixed, wire, wal, migrate or openloop.
	Bench string `json:"bench"`
	// OpsPerThread, KeySpace and Seed are the classic workload knobs
	// (-ops is requests per client for the wire-family benches).
	OpsPerThread int    `json:"ops_per_thread"`
	KeySpace     int64  `json:"keyspace"`
	Seed         uint64 `json:"seed"`
	// Windows is the -openloop window sweep verbatim (e.g.
	// "0,200us,500us,2ms"); empty for other modes.
	Windows string `json:"windows,omitempty"`
	// ArrivalGapUS is the target mean inter-arrival gap per client in
	// microseconds — identical for both arrival processes, which is what
	// "matched offered load" means.
	ArrivalGapUS int64 `json:"arrival_gap_us,omitempty"`
	// BurstMean is the bursty process's mean burst size; its idle gap is
	// BurstMean×ArrivalGapUS so the long-run rate matches Poisson's.
	BurstMean float64 `json:"burst_mean,omitempty"`
	// InFlight is the per-client in-flight cap of the open-loop driver.
	InFlight int `json:"inflight,omitempty"`
}

// jsonDoc is the -format json output document.
type jsonDoc struct {
	BenchSchema int          `json:"bench_schema"`
	Config      jsonConfig   `json:"config"`
	Results     []jsonResult `json:"results"`
}

type jsonConfig struct {
	RunConfig
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

type jsonResult struct {
	Mix       string  `json:"mix"`
	Variant   string  `json:"variant"`
	Threads   int     `json:"threads"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Checksum  uint64  `json:"checksum"`
	// Mode distinguishes the -batch and -registry comparison rows:
	// "batched" groups run as one coalesced transaction, "sequential" one
	// transaction per member. Empty for the classic Figure 5 runs.
	Mode string `json:"mode,omitempty"`
	// Skew tags the rows of a -mixed -skew sweep with their Zipf-like
	// skew parameter (workload.SkewedKey); omitted for uniform draws.
	Skew float64 `json:"skew,omitempty"`
	// NsPerMember and Members appear on the deterministic single-thread
	// -batch rows: the untraced threads=1 wall time divided by the number
	// of relational members the composites issued (counted by a separate
	// traced pass over the identical deterministic workload). Both
	// disciplines execute the same members, so ns_per_member is the
	// per-operation cost the batched-vs-sequential throughput-ratio gate
	// in cmd/benchguard normalizes away group-size effects with.
	NsPerMember float64 `json:"ns_per_member,omitempty"`
	Members     int64   `json:"members,omitempty"`
	// CountersAbsent marks deterministic rows that structurally carry NO
	// lock-schedule, read-only or OCC counters: the sequential -batch
	// discipline runs bare single operations outside any traced batch, so
	// those counters do not exist for it (rather than happening to be
	// zero). Batched -batch rows always carry lock counts; their OCC
	// counters are absent-by-structure too — the composite graph mix has
	// no mixed read/write group, so no batch ever takes the Silo-style
	// path — which this flag does NOT mark, since the same rows' lock and
	// read-only counters are live.
	CountersAbsent bool `json:"counters_absent,omitempty"`
	// LocksRequested/LocksAcquired are the lock-schedule totals of the
	// -registry deterministic counting pass (single thread, fixed seed):
	// pre-coalescing requests vs distinct physical locks taken. They are
	// the regression signal cmd/benchguard guards — acquisition counts
	// are stable across machines, unlike throughput on low-core CI
	// runners. Zero (omitted) for throughput-only rows.
	LocksRequested int64 `json:"locks_requested,omitempty"`
	LocksAcquired  int64 `json:"locks_acquired,omitempty"`
	// The optimistic read-only counters of the -optimistic deterministic
	// counting pass: batches that took the lock-free epoch-validation
	// path, the locks those batches acquired (0 unless they fell back),
	// their validation retries, and their pessimistic fallbacks.
	// benchguard gates the last three at zero for the uncontended pass.
	ROBatches         int64 `json:"ro_batches,omitempty"`
	ROLocksAcquired   int64 `json:"ro_locks_acquired,omitempty"`
	ValidationRetries int64 `json:"validation_retries,omitempty"`
	ROFallbacks       int64 `json:"ro_fallbacks,omitempty"`
	// The mixed-batch OCC counters of the -mixed deterministic counting
	// pass: mixed groups committed Silo-style, the write locks their
	// growing phases acquired, the Shared-mode acquisitions of successful
	// OCC commits (benchguard gates these at zero — reads divert into the
	// read-set), the distinct epoch cells validated, validation retries
	// and full-2PL fallbacks (both gated at zero on the uncontended pass).
	OCCBatches    int64 `json:"occ_batches,omitempty"`
	OCCWriteLocks int64 `json:"occ_write_locks,omitempty"`
	OCCShared     int64 `json:"occ_shared_locks,omitempty"`
	OCCReadSet    int64 `json:"occ_read_set,omitempty"`
	OCCRetries    int64 `json:"occ_validation_retries,omitempty"`
	OCCFallbacks  int64 `json:"occ_fallbacks,omitempty"`
	// The cross-client group-commit counters of the -wire deterministic
	// counting pass: group commits the dispatcher performed and the client
	// requests they carried (wire_requests / wire_batches is the mean
	// coalesced batch size benchguard gates ≥ 2 for the batched rows), plus
	// the largest group. K lockstep clients against a MaxBatch-K window
	// commit in groups of exactly K, so these are deterministic.
	WireBatches  int64 `json:"wire_batches,omitempty"`
	WireRequests int64 `json:"wire_requests,omitempty"`
	WireMaxBatch int64 `json:"wire_max_batch,omitempty"`
	// The durability counters of the -wal counting pass (variant
	// "social-wire-wal"): redo records appended (one per committed
	// mutating group) and fsyncs of the log. The dispatcher syncs once
	// per group commit, so fsyncs == appends exactly and the batched
	// discipline's fsync total is the sequential discipline's divided by
	// the group size — group commit IS fsync batching, and benchguard
	// gates both identities.
	WALAppends int64 `json:"wal_appends,omitempty"`
	WALFsyncs  int64 `json:"wal_fsyncs,omitempty"`
	// Config echoes the run's RunConfig verbatim into the row (schema 6);
	// benchguard refuses rows whose echo disagrees with the document's or
	// the baseline's config.
	Config *RunConfig `json:"config,omitempty"`
	// The -openloop cell coordinates: the arrival process ("poisson" or
	// "bursty") and the swept dispatcher window in microseconds (pointer,
	// so the meaningful window 0 still serializes). Ops on these rows is
	// the SCHEDULED arrival count; ops_per_sec the achieved completion
	// rate.
	Arrival  string `json:"arrival,omitempty"`
	WindowUS *int64 `json:"window_us,omitempty"`
	// OfferedPerSec is the schedule's aggregate arrival rate (a property
	// of the generators); Dropped and Errors the open-loop driver's
	// overload accounting — nonzero values mean achieved < offered for a
	// visible reason, never silent back-pressure.
	OfferedPerSec float64 `json:"offered_per_sec,omitempty"`
	Dropped       int     `json:"dropped,omitempty"`
	Errors        int     `json:"errors,omitempty"`
	// MeanBatch is the server's mean coalesced batch size for the cell
	// (wire_requests/wire_batches as a float; the window-knob payoff).
	MeanBatch float64 `json:"mean_batch,omitempty"`
	// The client-side coordinated-omission-free latency quantiles in
	// nanoseconds (measured from each request's SCHEDULED arrival), and
	// the server-side commit p99 for cross-checking.
	P50NS       int64 `json:"p50_ns,omitempty"`
	P95NS       int64 `json:"p95_ns,omitempty"`
	P99NS       int64 `json:"p99_ns,omitempty"`
	MaxNS       int64 `json:"max_ns,omitempty"`
	ServerP99NS int64 `json:"server_p99_ns,omitempty"`
}

func main() {
	mixesFlag := flag.String("mixes", "all", "comma-separated mixes (x-y-z-w) or 'all' for the four Figure 5 panels")
	threadsFlag := flag.String("threads", defaultThreads(), "comma-separated thread counts")
	ops := flag.Int("ops", 500_000, "operations per thread (the paper uses 5e5)")
	keyspace := flag.Int64("keyspace", 512, "node id space")
	variantsFlag := flag.String("variants", "all", "comma-separated variant names or 'all'")
	format := flag.String("format", "table", "output format: table, csv or json")
	seed := flag.Uint64("seed", 1, "workload seed")
	batch := flag.Bool("batch", false, "run the batched-transaction benchmark (composite operation groups, batched vs sequential) instead of Figure 5")
	registry := flag.Bool("registry", false, "run the cross-relation registry benchmark (users/posts/follows composite groups over Registry.Batch, batched vs sequential, with deterministic lock-acquisition counts) instead of Figure 5")
	optimistic := flag.Bool("optimistic", false, "run the optimistic read-only batch benchmark (read-heavy mixes over optimistic-capable representations, with deterministic zero-lock/retry/fallback counts) instead of Figure 5")
	mixed := flag.Bool("mixed", false, "run the mixed-batch OCC benchmark (Follow-heavy social mix, batched vs sequential, with deterministic write-lock/read-set/retry/fallback counts) instead of Figure 5")
	wire := flag.Bool("wire", false, "run the wire group-commit benchmark (lockstep HTTP clients against an in-process crsd, cross-client coalescing vs per-request commits, with deterministic batch-size and lock counts) instead of Figure 5; -threads is the client counts, -ops the requests per client")
	walBench := flag.Bool("wal", false, "run the durability benchmark (the wire workload with a write-ahead log attached vs without, batched vs sequential, with deterministic append/fsync counts) instead of Figure 5; -threads is the client counts, -ops the requests per client")
	migrate := flag.Bool("migrate", false, "run the live-migration benchmark (read-heavy social mix on the pessimistic boot representation, then the identical workload after Registry.Migrate upgrades every relation to the concurrent containers, with deterministic lock/zero-lock counts) instead of Figure 5")
	openLoop := flag.Bool("openloop", false, "run the open-loop arrival-driven wire benchmark (K clients firing on Poisson and bursty schedules at matched offered load, sweeping the dispatcher window, with coordinated-omission-free latency quantiles) instead of Figure 5; -threads is the client counts, -ops the scheduled requests per client")
	windowsFlag := flag.String("windows", "0,200us,500us,2ms", "comma-separated dispatcher windows the -openloop benchmark sweeps; 0 disables coalescing (MaxBatch 1)")
	arrivalGap := flag.Duration("arrival-gap", 2*time.Millisecond, "-openloop target mean inter-arrival gap per client (both arrival processes run at this long-run rate)")
	burstMean := flag.Float64("burst", 8, "-openloop mean burst size of the bursty arrival process (its idle gap is burst×arrival-gap, matching Poisson's offered load)")
	inFlight := flag.Int("inflight", 32, "-openloop per-client in-flight cap; arrivals past the cap are dropped and counted, never queued")
	skewFlag := flag.String("skew", "", "comma-separated Zipf-like skew levels in [0,1) for -mixed (e.g. 0,0.6,0.9): repeats the benchmark per level with hot-key-biased draws, recording the OCC retry/fallback counters per level; empty keeps the uniform draws")
	flag.Parse()

	if *format != "table" && *format != "csv" && *format != "json" {
		fatal(fmt.Errorf("unknown format %q (want table, csv or json)", *format))
	}

	mixes, err := cli.ParseMixes(*mixesFlag)
	if err != nil {
		fatal(err)
	}
	threads, err := cli.ParseInts(*threadsFlag)
	if err != nil {
		fatal(err)
	}
	variants, err := cli.ParseVariants(*variantsFlag)
	if err != nil {
		fatal(err)
	}

	if *format == "csv" && !*batch {
		fmt.Println("mix,variant,threads,ops,seconds,throughput_ops_per_sec")
	}
	rc := RunConfig{Bench: "figure5", OpsPerThread: *ops, KeySpace: *keyspace, Seed: *seed}
	for name, on := range map[string]bool{
		"batch": *batch, "registry": *registry, "optimistic": *optimistic,
		"mixed": *mixed, "wire": *wire, "wal": *walBench, "migrate": *migrate,
		"openloop": *openLoop,
	} {
		if !on {
			continue
		}
		if rc.Bench != "figure5" {
			fatal(fmt.Errorf("-batch, -registry, -optimistic, -mixed, -wire, -wal, -migrate and -openloop are mutually exclusive benchmarks; pick one"))
		}
		rc.Bench = name
	}
	if *openLoop {
		rc.Windows = *windowsFlag
		rc.ArrivalGapUS = arrivalGap.Microseconds()
		rc.BurstMean = *burstMean
		rc.InFlight = *inFlight
	}
	doc := jsonDoc{BenchSchema: benchSchema, Config: jsonConfig{
		RunConfig:  rc,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}}
	skews, err := parseSkews(*skewFlag)
	if err != nil {
		fatal(err)
	}
	if len(skews) > 0 && !*mixed {
		fatal(fmt.Errorf("-skew applies only to the -mixed benchmark (the OCC retry/fallback counters are its signal)"))
	}
	if *openLoop {
		if *mixesFlag != "all" || *variantsFlag != "all" {
			fatal(fmt.Errorf("-mixes/-variants do not apply to -openloop: it runs the social mix %s over the users/posts/follows registry served by an in-process crsd", workload.DefaultSocialMix()))
		}
		runOpenLoopBench(&doc, rc, threads, *format)
		return
	}
	if *migrate {
		if *mixesFlag != "all" || *variantsFlag != "all" {
			fatal(fmt.Errorf("-mixes/-variants do not apply to -migrate: it runs the read-heavy social mix %s over the users/posts/follows registry, pre- and post-migration", workload.ReadHeavySocialMix()))
		}
		runMigrateBench(&doc, rc, threads, *format)
		return
	}
	if *wire {
		if *mixesFlag != "all" || *variantsFlag != "all" {
			fatal(fmt.Errorf("-mixes/-variants do not apply to -wire: it runs the social mix %s over the users/posts/follows registry served by an in-process crsd", workload.DefaultSocialMix()))
		}
		runWireBench(&doc, rc, threads, *format)
		return
	}
	if *walBench {
		if *mixesFlag != "all" || *variantsFlag != "all" {
			fatal(fmt.Errorf("-mixes/-variants do not apply to -wal: it runs the social mix %s over the users/posts/follows registry served by an in-process crsd", workload.DefaultSocialMix()))
		}
		runWalBench(&doc, rc, threads, *format)
		return
	}
	if *mixed {
		if *mixesFlag != "all" || *variantsFlag != "all" {
			fatal(fmt.Errorf("-mixes/-variants do not apply to -mixed: it runs the Follow-heavy social mix %s over the users/posts/follows registry", workload.MixedSocialMix()))
		}
		runMixedBench(&doc, rc, threads, *format, skews)
		return
	}
	if *optimistic {
		if *mixesFlag != "all" || *variantsFlag != "all" {
			fatal(fmt.Errorf("-mixes/-variants do not apply to -optimistic: it runs the read-heavy mixes %s (graph) and %s (social) over optimistic-capable representations",
				workload.ReadHeavyBatchMix(), workload.ReadHeavySocialMix()))
		}
		runOptimisticBench(&doc, rc, threads, *format)
		return
	}
	if *registry {
		if *mixesFlag != "all" || *variantsFlag != "all" {
			fatal(fmt.Errorf("-mixes/-variants do not apply to -registry: it runs the social mix %s over the users/posts/follows registry", workload.DefaultSocialMix()))
		}
		runRegistryBench(&doc, rc, threads, *format)
		return
	}
	if *batch {
		if *mixesFlag != "all" {
			fatal(fmt.Errorf("-mixes does not apply to -batch: the batched benchmark runs the composite mix %s", crs.DefaultBatchMix()))
		}
		if *variantsFlag != "all" {
			for _, name := range variants {
				if name == "Handcoded" {
					fatal(fmt.Errorf("-batch needs a synthesized relation; the Handcoded baseline has no batched transactions"))
				}
			}
		}
		runBatchBench(&doc, rc, variants, threads, *format)
		return
	}
	for _, mix := range mixes {
		if *format == "table" {
			fmt.Printf("\nOperation Distribution: %s (GOMAXPROCS=%d)\n", mix, runtime.GOMAXPROCS(0))
			fmt.Printf("%-14s", "variant")
			for _, k := range threads {
				fmt.Printf(" %12s", fmt.Sprintf("%d thr", k))
			}
			fmt.Println(" (ops/sec)")
		}
		for _, name := range variants {
			row := make([]float64, 0, len(threads))
			for _, k := range threads {
				cfg := crs.BenchConfig{Threads: k, OpsPerThread: *ops, KeySpace: *keyspace, Seed: *seed, Mix: mix}
				g, err := buildGraph(name)
				if err != nil {
					fatal(err)
				}
				res := crs.RunBench(g, cfg)
				row = append(row, res.Throughput)
				switch *format {
				case "csv":
					fmt.Printf("%s,%s,%d,%d,%.3f,%.0f\n", mix, name, k, res.Ops, res.Duration.Seconds(), res.Throughput)
				case "json":
					doc.Results = append(doc.Results, jsonResult{
						Mix:       mix.String(),
						Variant:   name,
						Threads:   k,
						Ops:       res.Ops,
						Seconds:   res.Duration.Seconds(),
						OpsPerSec: res.Throughput,
						Checksum:  res.Checksum,
					})
				}
			}
			if *format == "table" {
				fmt.Printf("%-14s", name)
				for _, v := range row {
					fmt.Printf(" %12.0f", v)
				}
				fmt.Println()
			}
		}
	}
	emitJSON(&doc, *format)
}

// emitJSON stamps the run's RunConfig into every result row — the
// schema-6 per-row echo cmd/benchguard validates against both the
// document's own config and the committed baseline's — and writes the
// document to stdout. No-op for the table/csv formats.
func emitJSON(doc *jsonDoc, format string) {
	if format != "json" {
		return
	}
	for i := range doc.Results {
		c := doc.Config.RunConfig
		doc.Results[i].Config = &c
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

// runBatchBench runs the batched-transaction comparison: for each
// variant and thread count, the composite-operation workload
// (insert pairs, moves, grouped counts, two-hop counts) once with each
// group as one coalesced transaction and once with one transaction per
// member. Throughput is composite groups per second.
//
// Each variant/mode additionally gets one DETERMINISTIC threads=1 pass
// pair: a counting pass (member totals, and for the batched discipline
// the traced lock-schedule and read-only counters; its timing is
// discarded because tracing allocates per batch) followed by the untraced
// threads=1 throughput pass, whose row carries ns_per_member — the
// per-relational-member cost benchguard's batched-vs-sequential
// throughput-ratio gate rides on. Sequential deterministic rows are
// marked counters_absent: that discipline runs bare single operations
// outside any traced batch, so lock-schedule counters do not exist for
// it. OCC counters never appear here — the composite graph mix has no
// mixed read/write group, so no batch takes the Silo-style path (see the
// jsonResult field comments).
// benchReps is how many interleaved repetitions each (variant, threads)
// timing pair runs; the reported row is each mode's best. Three is enough
// to shed one-off scheduler or GC hiccups without tripling total runtime
// noticeably (the counting passes dominate at small -ops).
const benchReps = 3

func runBatchBench(doc *jsonDoc, rc RunConfig, variants []string, threads []int, format string) {
	ops, keyspace, seed := rc.OpsPerThread, rc.KeySpace, rc.Seed
	mix := crs.DefaultBatchMix()
	threads = withThread1(threads)
	if format == "csv" {
		fmt.Println("mix,variant_mode,threads,ops,seconds,throughput_groups_per_sec,ns_per_member,members,locks_requested,locks_acquired")
	}
	if format == "table" {
		fmt.Printf("\nBatched transactions, composite mix %s (GOMAXPROCS=%d, groups/sec)\n",
			mix, runtime.GOMAXPROCS(0))
		fmt.Printf("%-28s", "variant/mode")
		for _, k := range threads {
			fmt.Printf(" %12s", fmt.Sprintf("%d thr", k))
		}
		fmt.Println()
	}
	build := func(name, mode string, counts *workload.LockCounts) crs.BatchGraphOps {
		v, err := crs.GraphVariantByName(name)
		if err != nil {
			fatal(err)
		}
		r, err := v.Build()
		if err != nil {
			fatal(err)
		}
		if mode == "batched" {
			g := crs.MustRelationBatchGraph(r)
			g.Counts = counts
			return g
		}
		g, err := crs.NewSequentialBatchGraph(r)
		if err != nil {
			fatal(err)
		}
		g.Counts = counts
		return g
	}
	modes := []string{"batched", "sequential"}
	for _, name := range variants {
		if name == "Handcoded" {
			continue // composite ops need a relation ("all" includes it; explicit requests were rejected in main)
		}
		// Deterministic counting passes, one per mode: threads=1, fixed
		// seed, counters attached — the source of the members denominator
		// and (batched) the coalesced lock totals benchguard gates on.
		memberCount := map[string]int64{}
		lockCounts := map[string]*workload.LockCounts{}
		for _, mode := range modes {
			counts := &workload.LockCounts{}
			cfg1 := crs.BenchConfig{Threads: 1, OpsPerThread: ops, KeySpace: keyspace, Seed: seed}
			crs.RunBatchedBench(build(name, mode, counts), cfg1, mix)
			memberCount[mode] = counts.Members.Load()
			lockCounts[mode] = counts
		}
		// Timing passes: for each thread count the two modes alternate
		// back-to-back, best of benchReps repetitions per mode. The
		// batched/sequential throughput ratio is benchguard's gated
		// signal, and interleaving the modes inside one repetition keeps
		// machine-state drift (frequency scaling, cache warmth, background
		// load) OUT of the ratio — a batched pass and its sequential
		// counterpart always run within milliseconds of each other,
		// whereas mode-major ordering put whole sweeps between them.
		rowVals := map[string][]float64{}
		for _, k := range threads {
			best := map[string]crs.BenchResult{}
			for rep := 0; rep < benchReps; rep++ {
				for _, mode := range modes {
					// Collect the previous pass's garbage (the traced
					// counting pass in particular allocates heavily) so
					// every pass starts from the same heap state instead of
					// inheriting its predecessor's GC debt.
					runtime.GC()
					cfg := crs.BenchConfig{Threads: k, OpsPerThread: ops, KeySpace: keyspace, Seed: seed}
					res := crs.RunBatchedBench(build(name, mode, nil), cfg, mix)
					if res.Throughput > best[mode].Throughput {
						best[mode] = res
					}
				}
			}
			for _, mode := range modes {
				res := best[mode]
				rowVals[mode] = append(rowVals[mode], res.Throughput)
				jr := jsonResult{
					Mix:       mix.String(),
					Variant:   name,
					Mode:      mode,
					Threads:   k,
					Ops:       res.Ops,
					Seconds:   res.Duration.Seconds(),
					OpsPerSec: res.Throughput,
					Checksum:  res.Checksum,
				}
				if k == 1 {
					members := memberCount[mode]
					jr.Members = members
					if members > 0 {
						jr.NsPerMember = res.Duration.Seconds() * 1e9 / float64(members)
					}
					if mode == "batched" {
						counts := lockCounts[mode]
						jr.LocksRequested = counts.Requested.Load()
						jr.LocksAcquired = counts.Acquired.Load()
						jr.ROBatches = counts.ReadOnlyBatches.Load()
						jr.ROLocksAcquired = counts.ReadOnlyAcquired.Load()
						jr.ValidationRetries = counts.ValidationRetries.Load()
						jr.ROFallbacks = counts.Fallbacks.Load()
					} else {
						jr.CountersAbsent = true
					}
				}
				switch format {
				case "csv":
					fmt.Printf("%s,%s/%s,%d,%d,%.3f,%.0f,%.1f,%d,%d,%d\n", mix, name, mode, k, res.Ops,
						res.Duration.Seconds(), res.Throughput, jr.NsPerMember, jr.Members,
						jr.LocksRequested, jr.LocksAcquired)
				case "json":
					doc.Results = append(doc.Results, jr)
				}
			}
		}
		if format == "table" {
			for _, mode := range modes {
				fmt.Printf("%-28s", name+"/"+mode)
				for _, v := range rowVals[mode] {
					fmt.Printf(" %12.0f", v)
				}
				fmt.Println()
			}
		}
	}
	emitJSON(doc, format)
}

// runRegistryBench runs the cross-relation comparison over the social
// registry (users/posts/follows): for each mode, one DETERMINISTIC
// single-threaded counting pass (fixed seed, lock tracing on) that
// records the coalesced lock-acquisition totals — the benchguard
// regression signal — followed by throughput passes over the requested
// thread counts. Each pass starts from a fresh registry so runs are
// comparable.
// withThread1 ensures the thread list contains 1: the deterministic
// counting passes ride on the 1-thread record, so it is always measured.
func withThread1(threads []int) []int {
	for _, k := range threads {
		if k == 1 {
			return threads
		}
	}
	return append([]int{1}, threads...)
}

func runRegistryBench(doc *jsonDoc, rc RunConfig, threads []int, format string) {
	ops, keyspace, seed := rc.OpsPerThread, rc.KeySpace, rc.Seed
	mix := workload.DefaultSocialMix()
	threads = withThread1(threads)
	if format == "csv" {
		fmt.Println("mix,mode,threads,ops,seconds,throughput_groups_per_sec,locks_requested,locks_acquired,ro_batches,ro_locks_acquired")
	}
	if format == "table" {
		fmt.Printf("\nCross-relation registry transactions, social mix %s (GOMAXPROCS=%d)\n",
			mix, runtime.GOMAXPROCS(0))
	}
	for _, mode := range []string{"batched", "sequential"} {
		grouped := mode == "batched"
		// Counting pass: threads=1 with tracing ON, so the lock totals are
		// reproducible. Its timing is discarded — tracing allocates per
		// batch, which would depress the 1-thread row relative to the
		// untraced throughput passes below.
		s := workload.MustSocial()
		s.Grouped = grouped
		s.Counts = &workload.LockCounts{}
		workload.RunSocial(s, crs.BenchConfig{Threads: 1, OpsPerThread: ops, KeySpace: keyspace, Seed: seed}, mix)
		counts := s.Counts
		// Throughput passes (no tracing): every requested thread count,
		// each on a fresh registry. The 1-thread row carries the counting
		// pass's lock and optimistic totals alongside its untraced timing
		// (read-only groups run lock-free in both disciplines, which is why
		// benchguard's cross-discipline coalescing rule exempts rows
		// carrying ro_batches).
		for _, k := range threads {
			s := workload.MustSocial()
			s.Grouped = grouped
			cfg := crs.BenchConfig{Threads: k, OpsPerThread: ops, KeySpace: keyspace, Seed: seed}
			res := workload.RunSocial(s, cfg, mix)
			row := jsonResult{
				Mix: mix.String(), Variant: "social", Mode: mode, Threads: k,
				Ops: res.Ops, Seconds: res.Duration.Seconds(), OpsPerSec: res.Throughput,
				Checksum: res.Checksum,
			}
			if k == 1 {
				row.LocksRequested = counts.Requested.Load()
				row.LocksAcquired = counts.Acquired.Load()
				row.ROBatches = counts.ReadOnlyBatches.Load()
				row.ROLocksAcquired = counts.ReadOnlyAcquired.Load()
				row.ValidationRetries = counts.ValidationRetries.Load()
				row.ROFallbacks = counts.Fallbacks.Load()
			}
			switch format {
			case "table":
				fmt.Printf("%-12s %d thr: %8.0f groups/s", mode, k, res.Throughput)
				if k == 1 {
					fmt.Printf(", locks requested %d -> acquired %d, ro batches %d -> %d locks",
						row.LocksRequested, row.LocksAcquired, row.ROBatches, row.ROLocksAcquired)
				}
				fmt.Println()
			case "csv":
				fmt.Printf("%s,%s,%d,%d,%.3f,%.0f,%d,%d,%d,%d\n", mix, mode, k, res.Ops, res.Duration.Seconds(),
					res.Throughput, row.LocksRequested, row.LocksAcquired, row.ROBatches, row.ROLocksAcquired)
			case "json":
				doc.Results = append(doc.Results, row)
			}
		}
	}
	emitJSON(doc, format)
}

// runMixedBench runs the mixed-batch OCC benchmark over the social
// registry with the Follow-heavy MixedSocialMix: for each discipline
// (batched = one Registry.Batch per composite, whose mixed groups commit
// Silo-style; sequential = one single-member batch per relational
// operation), one DETERMINISTIC single-threaded counting pass (fixed
// seed, tracing on) records the benchguard signals — total locks
// acquired (gated strictly below the sequential discipline's), OCC
// batches committed, their write locks, Shared-mode acquisitions (gated
// at zero: reads divert into the read-set), distinct read-set epochs,
// validation retries and fallbacks (both gated at zero uncontended) —
// followed by throughput passes over the requested thread counts.
// When skews is non-empty the whole benchmark repeats per skew level with
// hot-key-biased draws (workload.SkewedKey), tagging every row with its
// level. Skewed multithreaded batched rows additionally carry the OCC
// retry/fallback/batch counters harvested from a SEPARATE traced pass at
// the same thread count: contention counters are only nonzero under
// concurrency, and only there does skew show its effect — those rows are
// NOT deterministic (benchguard only gates threads=1 rows). An empty
// skews runs the historical uniform benchmark unchanged.
func runMixedBench(doc *jsonDoc, rc RunConfig, threads []int, format string, skews []float64) {
	ops, keyspace, seed := rc.OpsPerThread, rc.KeySpace, rc.Seed
	mix := workload.MixedSocialMix()
	threads = withThread1(threads)
	sweep := len(skews) > 0
	if !sweep {
		skews = []float64{0}
	}
	if format == "csv" {
		fmt.Println("mix,mode,skew,threads,ops,seconds,throughput_groups_per_sec,locks_requested,locks_acquired,occ_batches,occ_write_locks,occ_shared_locks,occ_read_set,occ_validation_retries,occ_fallbacks")
	}
	if format == "table" {
		fmt.Printf("\nMixed-batch OCC, social mix %s (GOMAXPROCS=%d)\n", mix, runtime.GOMAXPROCS(0))
	}
	for _, skew := range skews {
		if sweep && format == "table" {
			fmt.Printf("skew %g:\n", skew)
		}
		for _, mode := range []string{"batched", "sequential"} {
			grouped := mode == "batched"
			// Counting pass: threads=1 with tracing ON for reproducible totals;
			// its timing is discarded (tracing allocates per batch).
			s := workload.MustSocial()
			s.Grouped = grouped
			s.Counts = &workload.LockCounts{}
			workload.RunSocialSkewed(s, crs.BenchConfig{Threads: 1, OpsPerThread: ops, KeySpace: keyspace, Seed: seed}, mix, skew)
			counts := s.Counts
			for _, k := range threads {
				s := workload.MustSocial()
				s.Grouped = grouped
				cfg := crs.BenchConfig{Threads: k, OpsPerThread: ops, KeySpace: keyspace, Seed: seed}
				res := workload.RunSocialSkewed(s, cfg, mix, skew)
				row := jsonResult{
					Mix: mix.String(), Variant: "social", Mode: mode, Skew: skew, Threads: k,
					Ops: res.Ops, Seconds: res.Duration.Seconds(), OpsPerSec: res.Throughput,
					Checksum: res.Checksum,
				}
				if k == 1 {
					row.LocksRequested = counts.Requested.Load()
					row.LocksAcquired = counts.Acquired.Load()
					row.OCCBatches = counts.OCCBatches.Load()
					row.OCCWriteLocks = counts.OCCWriteLocks.Load()
					row.OCCShared = counts.OCCSharedLocks.Load()
					row.OCCReadSet = counts.OCCReadSet.Load()
					row.OCCRetries = counts.OCCRetries.Load()
					row.OCCFallbacks = counts.OCCFallbacks.Load()
				} else if sweep && grouped {
					// Contention counters per skew level: traced rerun at the
					// same thread count (nondeterministic; timing above stays
					// from the untraced pass).
					st := workload.MustSocial()
					st.Grouped = grouped
					st.Counts = &workload.LockCounts{}
					workload.RunSocialSkewed(st, cfg, mix, skew)
					row.OCCBatches = st.Counts.OCCBatches.Load()
					row.OCCRetries = st.Counts.OCCRetries.Load()
					row.OCCFallbacks = st.Counts.OCCFallbacks.Load()
				}
				switch format {
				case "table":
					fmt.Printf("%-12s %d thr: %8.0f groups/s", mode, k, res.Throughput)
					if k == 1 {
						fmt.Printf(", locks %d -> %d, occ batches %d (write locks %d, shared %d, read set %d, retries %d, fallbacks %d)",
							row.LocksRequested, row.LocksAcquired, row.OCCBatches, row.OCCWriteLocks,
							row.OCCShared, row.OCCReadSet, row.OCCRetries, row.OCCFallbacks)
					} else if sweep && grouped {
						fmt.Printf(", occ batches %d (retries %d, fallbacks %d)",
							row.OCCBatches, row.OCCRetries, row.OCCFallbacks)
					}
					fmt.Println()
				case "csv":
					fmt.Printf("%s,%s,%g,%d,%d,%.3f,%.0f,%d,%d,%d,%d,%d,%d,%d,%d\n", mix, mode, skew, k, res.Ops,
						res.Duration.Seconds(), res.Throughput, row.LocksRequested, row.LocksAcquired,
						row.OCCBatches, row.OCCWriteLocks, row.OCCShared, row.OCCReadSet, row.OCCRetries, row.OCCFallbacks)
				case "json":
					doc.Results = append(doc.Results, row)
				}
			}
		}
	}
	emitJSON(doc, format)
}

// parseSkews parses the -skew flag: a comma-separated list of levels in
// [0, 1). Empty means no sweep (uniform draws).
func parseSkews(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -skew level %q: %v", f, err)
		}
		if v < 0 || v >= 1 {
			return nil, fmt.Errorf("-skew level %g outside [0, 1)", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// runOptimisticBench runs the optimistic read-only batch benchmark: the
// read-heavy graph mix over the optimistic-capable "Stick LF"
// representation and the read-heavy social mix over the registry, each
// with one DETERMINISTIC single-threaded counting pass (fixed seed,
// tracing on) recording the zero-lock signal benchguard gates —
// read-only batches attempted, locks they acquired (0 expected),
// validation retries (0 expected uncontended) and fallbacks (0 expected)
// — followed by throughput passes over the requested thread counts.
func runOptimisticBench(doc *jsonDoc, rc RunConfig, threads []int, format string) {
	ops, keyspace, seed := rc.OpsPerThread, rc.KeySpace, rc.Seed
	threads = withThread1(threads)
	if format == "csv" {
		fmt.Println("mix,variant,threads,ops,seconds,throughput_groups_per_sec,locks_requested,locks_acquired,ro_batches,ro_locks_acquired,validation_retries,ro_fallbacks")
	}
	if format == "table" {
		fmt.Printf("\nOptimistic read-only batches (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	}

	emit := func(mix, variant string, k int, res crs.BenchResult, c *workload.LockCounts) {
		row := jsonResult{
			Mix: mix, Variant: variant, Mode: "optimistic", Threads: k,
			Ops: res.Ops, Seconds: res.Duration.Seconds(), OpsPerSec: res.Throughput,
			Checksum: res.Checksum,
		}
		if c != nil {
			row.LocksRequested = c.Requested.Load()
			row.LocksAcquired = c.Acquired.Load()
			row.ROBatches = c.ReadOnlyBatches.Load()
			row.ROLocksAcquired = c.ReadOnlyAcquired.Load()
			row.ValidationRetries = c.ValidationRetries.Load()
			row.ROFallbacks = c.Fallbacks.Load()
		}
		switch format {
		case "table":
			fmt.Printf("%-10s %d thr: %8.0f groups/s", variant, k, res.Throughput)
			if c != nil {
				fmt.Printf(", ro batches %d -> %d locks, %d retries, %d fallbacks (writes acquired %d)",
					row.ROBatches, row.ROLocksAcquired, row.ValidationRetries, row.ROFallbacks, row.LocksAcquired)
			}
			fmt.Println()
		case "csv":
			fmt.Printf("%s,%s,%d,%d,%.3f,%.0f,%d,%d,%d,%d,%d,%d\n", mix, variant, k, res.Ops,
				res.Duration.Seconds(), res.Throughput, row.LocksRequested, row.LocksAcquired,
				row.ROBatches, row.ROLocksAcquired, row.ValidationRetries, row.ROFallbacks)
		case "json":
			doc.Results = append(doc.Results, row)
		}
	}

	// Graph scenario: read-heavy composite groups over Stick LF.
	gmix := workload.ReadHeavyBatchMix()
	buildLF := func() crs.BatchGraphOps {
		v, err := crs.GraphVariantByName("Stick LF")
		if err != nil {
			fatal(err)
		}
		r, err := v.Build()
		if err != nil {
			fatal(err)
		}
		return crs.MustRelationBatchGraph(r)
	}
	{
		g := buildLF().(*workload.RelationBatchGraph)
		g.Counts = &workload.LockCounts{}
		cfg := crs.BenchConfig{Threads: 1, OpsPerThread: ops, KeySpace: keyspace, Seed: seed}
		workload.RunBatched(g, cfg, gmix)
		counts := g.Counts
		for _, k := range threads {
			cfg := crs.BenchConfig{Threads: k, OpsPerThread: ops, KeySpace: keyspace, Seed: seed}
			res := crs.RunBatchedBench(buildLF(), cfg, gmix)
			var c *workload.LockCounts
			if k == 1 {
				c = counts
			}
			emit(gmix.String(), "Stick LF", k, res, c)
		}
	}

	// Social scenario: read-heavy cross-relation groups over the registry.
	smix := workload.ReadHeavySocialMix()
	{
		s := workload.MustSocial()
		s.Counts = &workload.LockCounts{}
		workload.RunSocial(s, crs.BenchConfig{Threads: 1, OpsPerThread: ops, KeySpace: keyspace, Seed: seed}, smix)
		counts := s.Counts
		for _, k := range threads {
			s := workload.MustSocial()
			cfg := crs.BenchConfig{Threads: k, OpsPerThread: ops, KeySpace: keyspace, Seed: seed}
			res := workload.RunSocial(s, cfg, smix)
			var c *workload.LockCounts
			if k == 1 {
				c = counts
			}
			emit(smix.String(), "social", k, res, c)
		}
	}

	emitJSON(doc, format)
}

// runMigrateBench measures what live migration buys: the read-heavy
// social mix first on the PESSIMISTIC boot representation (HashMap roots,
// TreeMap middles — every group takes the 2PL paths), then — after
// Registry.Migrate upgrades all three relations to the concurrent
// container archetypes, exactly the hop crsd -adapt's advisor performs —
// the identical workload on the SAME, now-migrated registry. Rows carry
// Mode "migrate-pre" and "migrate-post"; benchguard's -min-migrate-ratio
// gates the post/pre ops_per_sec ratio per thread count, self-normalized
// against machine drift because both rows come from one run.
//
// One deterministic threads=1 counting-pass pair (fixed seed, tracing
// on, timing discarded) additionally records the structural signal on
// the 1-thread rows: pre-migration the optimistic path is structurally
// unavailable (ro_batches = 0, every group locks — thousands of
// acquisitions), post-migration the same read-only groups run lock-free
// (ro_batches > 0 with zero locks/retries/fallbacks, and two orders of
// magnitude fewer total acquisitions), which benchguard's optimistic
// gate then pins against the committed baseline.
func runMigrateBench(doc *jsonDoc, rc RunConfig, threads []int, format string) {
	ops, keyspace, seed := rc.OpsPerThread, rc.KeySpace, rc.Seed
	mix := workload.ReadHeavySocialMix()
	threads = withThread1(threads)
	if format == "csv" {
		fmt.Println("mix,mode,threads,ops,seconds,throughput_groups_per_sec,locks_requested,locks_acquired,ro_batches,ro_locks_acquired")
	}
	if format == "table" {
		fmt.Printf("\nLive migration, read-heavy social mix %s (GOMAXPROCS=%d)\n", mix, runtime.GOMAXPROCS(0))
	}

	// Counting passes: one pessimistic, then — after the migration — one
	// on the upgraded representation, both threads=1 with tracing on.
	cfg1 := crs.BenchConfig{Threads: 1, OpsPerThread: ops, KeySpace: keyspace, Seed: seed}
	sc := mustSocialPessimistic()
	sc.Counts = &workload.LockCounts{}
	workload.RunSocial(sc, cfg1, mix)
	preCounts := sc.Counts
	upgradeSocial(sc, format == "table")
	sc.Counts = &workload.LockCounts{}
	workload.RunSocial(sc, cfg1, mix)
	postCounts := sc.Counts

	countsFor := map[string]*workload.LockCounts{"migrate-pre": preCounts, "migrate-post": postCounts}
	for _, k := range threads {
		// Throughput passes (no tracing): a fresh pessimistic registry per
		// thread count; the post pass reruns the identical streams on the
		// same registry right after the migration — the steady state an
		// adaptive server reaches.
		s := mustSocialPessimistic()
		cfg := crs.BenchConfig{Threads: k, OpsPerThread: ops, KeySpace: keyspace, Seed: seed}
		pre := workload.RunSocial(s, cfg, mix)
		upgradeSocial(s, false)
		post := workload.RunSocial(s, cfg, mix)
		for _, half := range []struct {
			mode string
			res  crs.BenchResult
		}{{"migrate-pre", pre}, {"migrate-post", post}} {
			row := jsonResult{
				Mix: mix.String(), Variant: "social-adapt", Mode: half.mode, Threads: k,
				Ops: half.res.Ops, Seconds: half.res.Duration.Seconds(), OpsPerSec: half.res.Throughput,
				Checksum: half.res.Checksum,
			}
			if k == 1 {
				c := countsFor[half.mode]
				row.LocksRequested = c.Requested.Load()
				row.LocksAcquired = c.Acquired.Load()
				row.ROBatches = c.ReadOnlyBatches.Load()
				row.ROLocksAcquired = c.ReadOnlyAcquired.Load()
				row.ValidationRetries = c.ValidationRetries.Load()
				row.ROFallbacks = c.Fallbacks.Load()
			}
			switch format {
			case "table":
				fmt.Printf("%-13s %d thr: %8.0f groups/s", half.mode, k, half.res.Throughput)
				if k == 1 {
					fmt.Printf(", locks %d -> %d, ro batches %d -> %d locks",
						row.LocksRequested, row.LocksAcquired, row.ROBatches, row.ROLocksAcquired)
				}
				fmt.Println()
			case "csv":
				fmt.Printf("%s,%s,%d,%d,%.3f,%.0f,%d,%d,%d,%d\n", mix, half.mode, k, half.res.Ops,
					half.res.Duration.Seconds(), half.res.Throughput, row.LocksRequested, row.LocksAcquired,
					row.ROBatches, row.ROLocksAcquired)
			case "json":
				doc.Results = append(doc.Results, row)
			}
		}
	}
	emitJSON(doc, format)
}

// mustSocialPessimistic builds the HashMap/TreeMap social registry the
// adaptive server boots on, fataling on error.
func mustSocialPessimistic() *workload.Social {
	s, err := workload.NewSocialPessimistic()
	if err != nil {
		fatal(err)
	}
	return s
}

// upgradeSocial live-migrates every relation of the social registry to
// its concurrent container archetypes — the same Materialize + Migrate
// pair the online advisor runs, under no traffic here (crsbench measures
// the representations; the under-traffic correctness is the e2e suite's
// job). verbose prints each migration's event line.
func upgradeSocial(s *workload.Social, verbose bool) {
	for _, r := range []*core.Relation{s.Users, s.Posts, s.Follows} {
		rec := &autotune.Recommendation{Relation: r.Name()}
		d2, p2, err := autotune.Materialize(r, rec)
		if err != nil {
			fatal(fmt.Errorf("materialize %s: %w", r.Name(), err))
		}
		ev, err := s.Reg.Migrate(r.Name(), core.WithDecomposition(d2), core.WithPlacement(p2))
		if err != nil {
			fatal(fmt.Errorf("migrate %s: %w", r.Name(), err))
		}
		if verbose {
			fmt.Printf("migrated %-8s %s -> %s (backfilled %d, catch-up %d, pause %dus)\n",
				ev.Relation, ev.From, ev.To, ev.Backfilled, ev.CatchupOps, ev.PauseNS/1000)
		}
	}
}

func buildGraph(name string) (crs.GraphOps, error) {
	if name == "Handcoded" {
		return handcoded.New(), nil
	}
	v, err := crs.GraphVariantByName(name)
	if err != nil {
		return nil, err
	}
	r, err := v.Build()
	if err != nil {
		return nil, err
	}
	return crs.MustRelationGraph(r), nil
}

func defaultThreads() string {
	max := runtime.GOMAXPROCS(0)
	var ks []string
	for k := 1; k <= max; k *= 2 {
		ks = append(ks, strconv.Itoa(k))
	}
	return strings.Join(ks, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crsbench:", err)
	os.Exit(1)
}
