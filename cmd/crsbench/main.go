// Command crsbench regenerates Figure 5 of "Concurrent Data Representation
// Synthesis" (PLDI 2012): throughput/scalability series for the twelve
// named decompositions plus the hand-coded baseline, across the four
// operation mixes, using the paper's methodology (k threads × N random
// operations each over one shared graph relation).
//
// Usage:
//
//	crsbench [-mixes all|70-0-20-10,...] [-threads 1,2,4] [-ops 500000]
//	         [-keyspace 512] [-variants all|Stick 1,...] [-format table|csv|json]
//
// The json format emits one machine-readable document (configuration plus
// one record per mix/variant/thread-count with ops/s) so successive runs
// can be archived — e.g. as BENCH_<date>.json — and compared across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	crs "repro"
	"repro/internal/cli"
	"repro/internal/handcoded"
)

// jsonDoc is the -format json output document.
type jsonDoc struct {
	Config  jsonConfig   `json:"config"`
	Results []jsonResult `json:"results"`
}

type jsonConfig struct {
	OpsPerThread int    `json:"ops_per_thread"`
	KeySpace     int64  `json:"keyspace"`
	Seed         uint64 `json:"seed"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	GoVersion    string `json:"go_version"`
}

type jsonResult struct {
	Mix       string  `json:"mix"`
	Variant   string  `json:"variant"`
	Threads   int     `json:"threads"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Checksum  uint64  `json:"checksum"`
}

func main() {
	mixesFlag := flag.String("mixes", "all", "comma-separated mixes (x-y-z-w) or 'all' for the four Figure 5 panels")
	threadsFlag := flag.String("threads", defaultThreads(), "comma-separated thread counts")
	ops := flag.Int("ops", 500_000, "operations per thread (the paper uses 5e5)")
	keyspace := flag.Int64("keyspace", 512, "node id space")
	variantsFlag := flag.String("variants", "all", "comma-separated variant names or 'all'")
	format := flag.String("format", "table", "output format: table, csv or json")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	if *format != "table" && *format != "csv" && *format != "json" {
		fatal(fmt.Errorf("unknown format %q (want table, csv or json)", *format))
	}

	mixes, err := cli.ParseMixes(*mixesFlag)
	if err != nil {
		fatal(err)
	}
	threads, err := cli.ParseInts(*threadsFlag)
	if err != nil {
		fatal(err)
	}
	variants, err := cli.ParseVariants(*variantsFlag)
	if err != nil {
		fatal(err)
	}

	if *format == "csv" {
		fmt.Println("mix,variant,threads,ops,seconds,throughput_ops_per_sec")
	}
	doc := jsonDoc{Config: jsonConfig{
		OpsPerThread: *ops,
		KeySpace:     *keyspace,
		Seed:         *seed,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		GoVersion:    runtime.Version(),
	}}
	for _, mix := range mixes {
		if *format == "table" {
			fmt.Printf("\nOperation Distribution: %s (GOMAXPROCS=%d)\n", mix, runtime.GOMAXPROCS(0))
			fmt.Printf("%-14s", "variant")
			for _, k := range threads {
				fmt.Printf(" %12s", fmt.Sprintf("%d thr", k))
			}
			fmt.Println(" (ops/sec)")
		}
		for _, name := range variants {
			row := make([]float64, 0, len(threads))
			for _, k := range threads {
				cfg := crs.BenchConfig{Threads: k, OpsPerThread: *ops, KeySpace: *keyspace, Seed: *seed, Mix: mix}
				g, err := buildGraph(name)
				if err != nil {
					fatal(err)
				}
				res := crs.RunBench(g, cfg)
				row = append(row, res.Throughput)
				switch *format {
				case "csv":
					fmt.Printf("%s,%s,%d,%d,%.3f,%.0f\n", mix, name, k, res.Ops, res.Duration.Seconds(), res.Throughput)
				case "json":
					doc.Results = append(doc.Results, jsonResult{
						Mix:       mix.String(),
						Variant:   name,
						Threads:   k,
						Ops:       res.Ops,
						Seconds:   res.Duration.Seconds(),
						OpsPerSec: res.Throughput,
						Checksum:  res.Checksum,
					})
				}
			}
			if *format == "table" {
				fmt.Printf("%-14s", name)
				for _, v := range row {
					fmt.Printf(" %12.0f", v)
				}
				fmt.Println()
			}
		}
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
	}
}

func buildGraph(name string) (crs.GraphOps, error) {
	if name == "Handcoded" {
		return handcoded.New(), nil
	}
	v, err := crs.GraphVariantByName(name)
	if err != nil {
		return nil, err
	}
	r, err := v.Build()
	if err != nil {
		return nil, err
	}
	return crs.MustRelationGraph(r), nil
}

func defaultThreads() string {
	max := runtime.GOMAXPROCS(0)
	var ks []string
	for k := 1; k <= max; k *= 2 {
		ks = append(ks, strconv.Itoa(k))
	}
	return strings.Join(ks, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crsbench:", err)
	os.Exit(1)
}
