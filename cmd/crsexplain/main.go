// Command crsexplain dumps what the compiler synthesized for a named
// representation: the decomposition (with node types A ▷ B), the lock
// placement, and the query/mutation plans in the paper's let-notation
// (Figure 4). With -dot it also emits Graphviz for the decomposition,
// reproducing the diagrams of Figures 2 and 3. With -compiled it prints
// the schema-resolved form of each plan — the integer column offsets,
// filter positions and stripe-selector indices the executor actually
// runs on. With -batch it executes a sample batched transaction (an
// insert pair, a move, and grouped counts) with lock-schedule tracing
// and prints the coalesced lock set of every scheduler round, so the
// ARCHITECTURE.md worked example can be reproduced from the CLI.
// With -registry it builds a two-relation registry (users + posts),
// executes a cross-relation Registry.Batch with tracing, and prints the
// coalesced lock schedule in the registry-wide (relation id, node, inst,
// stripe) order, contrasted with the same members issued individually.
// With -occ it builds the same registry over concurrency-safe containers
// and runs the canonical MIXED group — insert a follows-style edge, count
// another relation — showing the Silo-style commit: exclusive locks on
// the written relation only, the read relation covered by validated
// epoch records instead of shared locks.
// With -rounds it prints each benchmark operation's compiled round map —
// the flat, pre-classified lock schedule (lock rounds, speculative
// rounds, step runs with their lock-order gates) that the batched
// growing phase walks instead of re-classifying plan steps per sweep.
// With -migrate it narrates one live representation migration end to
// end: a pessimistic relation accumulates a read-heavy counter profile,
// the online advisor's decision rule recommends the concurrent container
// archetypes, Registry.Migrate re-synthesizes and cuts over, and the
// same read-only batch is traced before (locks) and after (lock-free).
//
// Usage:
//
//	crsexplain [-variant "Split 4"|dcache] [-dot] [-plans] [-compiled] [-rounds] [-batch] [-registry] [-occ] [-migrate]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	crs "repro"
	"repro/internal/autotune"
)

func main() {
	variant := flag.String("variant", "Split 4", `variant name ("Stick 1".."Diamond 2", "Diamond Spec"), or "dcache" for the Figure 2 directory tree`)
	dot := flag.Bool("dot", false, "emit Graphviz DOT for the decomposition")
	instance := flag.Bool("instance", false, "populate sample data and emit the instance diagram (Figure 2(b) style)")
	plans := flag.Bool("plans", true, "print the plans for the benchmark operations")
	compiled := flag.Bool("compiled", false, "print the schema-resolved (integer-offset) form of each plan")
	batch := flag.Bool("batch", false, "run a sample batched transaction and print its coalesced lock schedule")
	registry := flag.Bool("registry", false, "build a two-relation registry and print a cross-relation batch's coalesced lock schedule")
	occ := flag.Bool("occ", false, "run a mixed batch on optimistic-capable relations and print its Silo-style OCC trace (write locks + validated read epochs)")
	rounds := flag.Bool("rounds", false, "print each benchmark operation's compiled round map — the flat lock schedule the batched growing phase walks")
	migrate := flag.Bool("migrate", false, "narrate one live representation migration: counter harvest, advisor verdict, side synthesis, backfill, catch-up, cutover, and the before/after lock traces")
	flag.Parse()

	if *migrate {
		if err := printMigrate(); err != nil {
			fatal(err)
		}
		return
	}
	if *occ {
		if err := printOCC(); err != nil {
			fatal(err)
		}
		return
	}
	if *registry {
		if err := printRegistry(); err != nil {
			fatal(err)
		}
		return
	}

	r, err := buildRelation(*variant)
	if err != nil {
		fatal(err)
	}
	d := r.Decomposition()
	fmt.Printf("=== %s ===\n\n%s\n%s\n", *variant, d, r.Placement())
	fmt.Println("lock order: topological node order, then instance key, then stripe:")
	for _, n := range d.Nodes {
		fmt.Printf("  %d: %s (stripes: %d)\n", n.Index, n.Name, r.Placement().StripeCount(n))
	}

	if *plans {
		if *variant == "dcache" {
			printPlan(r, "full iteration", nil, []string{"child", "name", "parent"})
			printPlan(r, "path lookup (parent,name)", []string{"name", "parent"}, []string{"child"})
			printPlan(r, "directory listing (parent)", []string{"parent"}, []string{"child", "name"})
			printMutations(r, []string{"name", "parent"})
		} else {
			printPlan(r, "find successors", []string{"src"}, []string{"dst", "weight"})
			printPlan(r, "find predecessors", []string{"dst"}, []string{"src", "weight"})
			printMutations(r, []string{"dst", "src"})
		}
	}
	if *compiled {
		if *variant == "dcache" {
			printCompiled(r, "path lookup (parent,name)", []string{"name", "parent"}, []string{"child"}, []string{"name", "parent"})
		} else {
			printCompiled(r, "find successors", []string{"src"}, []string{"dst", "weight"}, []string{"dst", "src"})
		}
	}
	if *rounds {
		if err := printRounds(r, *variant); err != nil {
			fatal(err)
		}
	}
	if *batch {
		if err := printBatch(r, *variant); err != nil {
			fatal(err)
		}
	}
	if *dot {
		fmt.Println("\n--- DOT ---")
		fmt.Println(d.ToDOT(*variant))
	}
	if *instance {
		if err := populateSample(r, *variant); err != nil {
			fatal(err)
		}
		fmt.Println("\n--- instance diagram (cf. Figure 2(b)) ---")
		fmt.Println(r.InstanceDOT(*variant + " instance"))
	}
}

// populateSample inserts the paper's running-example data: the Figure 2(b)
// directory entries for dcache, three §2-style edges otherwise.
func populateSample(r *crs.Relation, variant string) error {
	if variant == "dcache" {
		for _, e := range []struct {
			p int
			n string
			c int
		}{{1, "a", 2}, {2, "b", 3}, {2, "c", 4}} {
			if _, err := r.Insert(crs.T("parent", e.p, "name", e.n), crs.T("child", e.c)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range [][3]int{{1, 2, 42}, {1, 3, 7}, {2, 3, 9}} {
		if _, err := r.Insert(crs.T("src", e[0], "dst", e[1]), crs.T("weight", e[2])); err != nil {
			return err
		}
	}
	return nil
}

// printCompiled prints the schema-resolved query, count and mutation
// plans for one signature.
func printCompiled(r *crs.Relation, title string, bound, out, key []string) {
	fmt.Printf("--- compiled plans (schema: columns %v get indices 0..%d) ---\n",
		r.Schema().Columns(), r.Schema().Len()-1)
	if s, err := r.DescribeQuery(bound, out); err == nil {
		fmt.Printf("%s:\n%s", title, s)
	}
	if s, err := r.DescribeCount(bound); err == nil {
		fmt.Printf("count pushdown (%v):\n%s", bound, s)
	}
	if s, err := r.DescribeInsert(key); err == nil {
		fmt.Printf("insert (key %v):\n%s", key, s)
	}
	if s, err := r.DescribeRemove(key); err == nil {
		fmt.Printf("remove (key %v):\n%s", key, s)
	}
	fmt.Println()
}

// printRounds prints the compiled round map of every benchmark operation:
// the flat, pre-classified schedule (lock rounds, speculative rounds,
// step runs) the batched growing phase walks with an integer cursor
// instead of re-classifying plan steps per sweep — §5's
// synchronization-is-compiled thesis extended to batched transactions.
func printRounds(r *crs.Relation, variant string) error {
	fmt.Println("--- compiled round maps (batched growing-phase schedules) ---")
	type q struct {
		title      string
		bound, out []string
	}
	var queries []q
	var mutCols []string
	if variant == "dcache" {
		queries = []q{
			{"path lookup (parent,name)", []string{"name", "parent"}, []string{"child"}},
			{"directory listing (parent)", []string{"parent"}, []string{"child", "name"}},
		}
		mutCols = []string{"name", "parent"}
	} else {
		queries = []q{
			{"find successors", []string{"src"}, []string{"dst", "weight"}},
			{"find predecessors", []string{"dst"}, []string{"src", "weight"}},
		}
		mutCols = []string{"dst", "src"}
	}
	for _, query := range queries {
		s, err := r.DescribeQueryRounds(query.bound, query.out)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n%s", query.title, s)
	}
	if s, err := r.DescribeCountRounds(queries[0].bound); err == nil {
		fmt.Printf("count (%v):\n%s", queries[0].bound, s)
	}
	s, err := r.DescribeInsertRounds(mutCols)
	if err != nil {
		return err
	}
	fmt.Printf("insert (key %v):\n%s", mutCols, s)
	if s, err := r.DescribeRemoveRounds(mutCols); err == nil {
		fmt.Printf("remove (key %v):\n%s", mutCols, s)
	}
	fmt.Println()
	return nil
}

// printBatch runs a representative batched transaction with tracing and
// prints the coalesced per-round lock schedule, then contrasts it with
// the same operations as one-member batches.
func printBatch(r *crs.Relation, variant string) error {
	if variant == "dcache" {
		return fmt.Errorf("-batch demo uses the graph variants")
	}
	if err := populateSample(r, variant); err != nil {
		return err
	}
	fmt.Println("--- batched transaction: insert pair + move edge + grouped counts ---")
	ops := []func(tx *crs.Txn) error{
		func(tx *crs.Txn) error {
			_, err := tx.Insert(crs.T("src", 1, "dst", 9), crs.T("weight", 5))
			return err
		},
		func(tx *crs.Txn) error {
			_, err := tx.Insert(crs.T("src", 1, "dst", 8), crs.T("weight", 6))
			return err
		},
		func(tx *crs.Txn) error { _, err := tx.Remove(crs.T("src", 1, "dst", 2)); return err },
		func(tx *crs.Txn) error {
			_, err := tx.Insert(crs.T("src", 1, "dst", 7), crs.T("weight", 42))
			return err
		},
		func(tx *crs.Txn) error { _, err := tx.Count(crs.T("src", 1)); return err },
		func(tx *crs.Txn) error { _, err := tx.Count(crs.T("src", 2)); return err },
	}
	var tr *crs.BatchTrace
	err := r.Batch(func(tx *crs.Txn) error {
		tx.EnableTrace()
		tr = tx.Trace()
		for _, op := range ops {
			if err := op(tx); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Print(tr)
	// The non-coalesced baseline: the same operations, one per batch.
	// (The relation state differs slightly after the batch above; the
	// point is the acquisition count, not the results.)
	requested, acquired := 0, 0
	for _, op := range ops {
		var str *crs.BatchTrace
		err := r.Batch(func(tx *crs.Txn) error {
			tx.EnableTrace()
			str = tx.Trace()
			return op(tx)
		})
		if err != nil {
			return err
		}
		requested += str.Requested
		acquired += str.Acquired
	}
	fmt.Printf("same operations issued individually: %d requested -> %d acquired\n", requested, acquired)
	fmt.Printf("coalescing: %d acquisitions for the 6-op batch vs %d individually\n\n", tr.Acquired, acquired)
	return nil
}

// printRegistry builds the two-relation users/posts registry, runs the
// canonical cross-relation group — insert a post and bump the author's
// post counter, then read the author's post count — as ONE Registry.Batch
// with tracing, and prints the coalesced schedule: every acquisition in
// the registry-wide (relation id, node, inst, stripe) order, each
// physical lock at most once, users rounds strictly before posts rounds
// regardless of enqueue order.
func printRegistry() error {
	db := crs.NewRegistry()
	uspec := crs.MustSpec([]string{"user", "posts"},
		crs.FD{From: []string{"user"}, To: []string{"posts"}})
	ud, err := crs.NewBuilder(uspec, "ρ").
		Edge("ρu", "ρ", "u", []string{"user"}, crs.ConcurrentHashMap).
		Edge("uc", "u", "c", []string{"posts"}, crs.Cell).
		Build()
	if err != nil {
		return err
	}
	users, err := db.Synthesize("users", uspec, crs.WithDecomposition(ud))
	if err != nil {
		return err
	}
	pspec := crs.MustSpec([]string{"author", "post", "ts"},
		crs.FD{From: []string{"author", "post"}, To: []string{"ts"}})
	pd, err := crs.NewBuilder(pspec, "ρ").
		Edge("ρa", "ρ", "a", []string{"author"}, crs.ConcurrentHashMap).
		Edge("ap", "a", "p", []string{"post"}, crs.TreeMap).
		Edge("pt", "p", "t", []string{"ts"}, crs.Cell).
		Build()
	if err != nil {
		return err
	}
	posts, err := db.Synthesize("posts", pspec, crs.WithDecomposition(pd))
	if err != nil {
		return err
	}
	fmt.Println("=== registry: users + posts ===")
	for _, r := range db.Relations() {
		fmt.Printf("\nrelation %d: %s\n%s", r.RegistryID(), r.Name(), r.Decomposition())
	}
	fmt.Println("\nglobal lock order: (relation id, node, instance key, stripe) —")
	fmt.Println("every users lock precedes every posts lock; within a relation the")
	fmt.Println("§5.1 per-decomposition order applies unchanged.")

	if _, err := users.Insert(crs.T("user", 1), crs.T("posts", 1)); err != nil {
		return err
	}
	if _, err := posts.Insert(crs.T("author", 1, "post", 100), crs.T("ts", 5)); err != nil {
		return err
	}
	ops := []func(tx *crs.Txn) error{
		func(tx *crs.Txn) error {
			_, err := tx.InsertInto(posts, crs.T("author", 1, "post", 101), crs.T("ts", 6))
			return err
		},
		func(tx *crs.Txn) error { _, err := tx.RemoveFrom(users, crs.T("user", 1)); return err },
		func(tx *crs.Txn) error {
			_, err := tx.InsertInto(users, crs.T("user", 1), crs.T("posts", 2))
			return err
		},
		func(tx *crs.Txn) error { _, err := tx.CountIn(posts, crs.T("author", 1)); return err },
	}
	fmt.Println("\n--- cross-relation batch: insert post + bump author counter + count ---")
	fmt.Println("(enqueue order interleaves posts and users; acquisition order does not)")
	var tr *crs.BatchTrace
	err = db.Batch(func(tx *crs.Txn) error {
		tx.EnableTrace()
		tr = tx.Trace()
		for _, op := range ops {
			if err := op(tx); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Print(tr)
	requested, acquired := 0, 0
	for _, op := range ops {
		var str *crs.BatchTrace
		err := db.Batch(func(tx *crs.Txn) error {
			tx.EnableTrace()
			str = tx.Trace()
			return op(tx)
		})
		if err != nil {
			return err
		}
		requested += str.Requested
		acquired += str.Acquired
	}
	fmt.Printf("same members issued individually: %d requested -> %d acquired\n", requested, acquired)
	fmt.Printf("coalescing: %d acquisitions for the cross-relation batch vs %d individually\n\n", tr.Acquired, acquired)
	return nil
}

// printOCC builds a two-relation registry over concurrency-safe
// containers (both relations OptimisticCapable) and runs the canonical
// MIXED group — insert into follows, count posts — as one Registry.Batch
// with tracing: the printed schedule shows exclusive locks on the written
// relation only, while the read relation is covered by epoch records
// validated at commit (the Silo-style OCC protocol of mixed batches).
// The same members issued individually show what the reads would have
// cost under shared locks.
func printOCC() error {
	db := crs.NewRegistry()
	fspec := crs.MustSpec([]string{"src", "dst", "since"},
		crs.FD{From: []string{"src", "dst"}, To: []string{"since"}})
	fd, err := crs.NewBuilder(fspec, "ρ").
		Edge("ρs", "ρ", "s", []string{"src"}, crs.ConcurrentHashMap).
		Edge("sd", "s", "d", []string{"dst"}, crs.ConcurrentSkipListMap).
		Edge("dw", "d", "w", []string{"since"}, crs.Cell).
		Build()
	if err != nil {
		return err
	}
	follows, err := db.Synthesize("follows", fspec, crs.WithDecomposition(fd))
	if err != nil {
		return err
	}
	pspec := crs.MustSpec([]string{"author", "post", "ts"},
		crs.FD{From: []string{"author", "post"}, To: []string{"ts"}})
	pd, err := crs.NewBuilder(pspec, "ρ").
		Edge("ρa", "ρ", "a", []string{"author"}, crs.ConcurrentHashMap).
		Edge("ap", "a", "p", []string{"post"}, crs.ConcurrentSkipListMap).
		Edge("pt", "p", "t", []string{"ts"}, crs.Cell).
		Build()
	if err != nil {
		return err
	}
	posts, err := db.Synthesize("posts", pspec, crs.WithDecomposition(pd))
	if err != nil {
		return err
	}
	fmt.Println("=== mixed-batch OCC: follows + posts (all containers concurrency-safe) ===")
	for _, r := range db.Relations() {
		fmt.Printf("\nrelation %d: %s (OptimisticCapable=%v)\n%s", r.RegistryID(), r.Name(), r.OptimisticCapable(), r.Decomposition())
	}
	for i := int64(1); i <= 3; i++ {
		if _, err := posts.Insert(crs.T("author", 7, "post", i), crs.T("ts", i)); err != nil {
			return err
		}
	}
	fmt.Println("\n--- mixed group: insert follows(1→7) + count posts(author=7) ---")
	fmt.Println("(a Follow: the write member locks exclusively, the count takes NO locks —")
	fmt.Println("its epochs are recorded and validated after the undo-logged apply)")
	var cnt *crs.Pending[int]
	var tr *crs.BatchTrace
	err = db.Batch(func(tx *crs.Txn) error {
		tx.EnableTrace()
		tr = tx.Trace()
		if _, err := tx.InsertInto(follows, crs.T("src", 1, "dst", 7), crs.T("since", 99)); err != nil {
			return err
		}
		var err error
		cnt, err = tx.CountIn(posts, crs.T("author", 7))
		return err
	})
	if err != nil {
		return err
	}
	fmt.Print(tr)
	fmt.Printf("OCC=%v attempts=%d fellBack=%v: %d write locks (%d shared), read set %d epochs (%d distinct), count=%d\n",
		tr.OCC, tr.Attempts, tr.FellBack, tr.Acquired, tr.SharedAcquired, tr.EpochsRecorded, tr.EpochsDistinct, cnt.Value())

	// The same members issued individually: the count rides the read-only
	// lock-free path, so the comparison isolates what coalescing + OCC
	// save on the write side.
	requested, acquired := 0, 0
	ops := []func(tx *crs.Txn) error{
		func(tx *crs.Txn) error {
			_, err := tx.InsertInto(follows, crs.T("src", 2, "dst", 7), crs.T("since", 100))
			return err
		},
		func(tx *crs.Txn) error { _, err := tx.CountIn(posts, crs.T("author", 7)); return err },
	}
	for _, op := range ops {
		var str *crs.BatchTrace
		err := db.Batch(func(tx *crs.Txn) error {
			tx.EnableTrace()
			str = tx.Trace()
			return op(tx)
		})
		if err != nil {
			return err
		}
		requested += str.Requested
		acquired += str.Acquired
	}
	fmt.Printf("same members issued individually: %d requested -> %d acquired\n", requested, acquired)
	// CI runs this demo as a smoke gate: a mixed group acquiring more
	// locks than its sequential decomposition is the regression the OCC
	// commit exists to prevent, so fail loudly instead of printing a
	// self-contradictory claim.
	if tr.Acquired > acquired {
		return fmt.Errorf("mixed group acquired %d locks, its sequential decomposition %d — the OCC commit must never out-lock it", tr.Acquired, acquired)
	}
	fmt.Printf("the mixed group never out-locks its sequential decomposition: %d <= %d\n\n", tr.Acquired, acquired)
	return nil
}

// printMigrate narrates one live representation migration end to end on
// the §2 graph relation: boot pessimistic (HashMap/TreeMap — the 2PL-only
// representation), accumulate a read-heavy counter profile, show the
// online advisor's verdict (the same RecommendKinds rule crsd -adapt and
// crstune -live run), execute Registry.Migrate, and trace the identical
// read-only batch before (locks) and after (lock-free) the cutover.
func printMigrate() error {
	db := crs.NewRegistry()
	spec := crs.MustSpec([]string{"src", "dst", "weight"},
		crs.FD{From: []string{"src", "dst"}, To: []string{"weight"}})
	d, err := crs.NewBuilder(spec, "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, crs.HashMap).
		Edge("uv", "u", "v", []string{"dst"}, crs.TreeMap).
		Edge("vw", "v", "w", []string{"weight"}, crs.Cell).
		Build()
	if err != nil {
		return err
	}
	edges, err := db.Synthesize("edges", spec, crs.WithDecomposition(d))
	if err != nil {
		return err
	}
	fmt.Println("=== live migration: edges, pessimistic boot representation ===")
	fmt.Printf("\nrelation %d: edges (OptimisticCapable=%v)\n%s", edges.RegistryID(), edges.OptimisticCapable(), edges.Decomposition())

	for i := int64(0); i < 32; i++ {
		if _, err := edges.Insert(crs.T("src", i%8, "dst", i), crs.T("weight", i)); err != nil {
			return err
		}
	}
	// A read-heavy warm-up: the always-on counters are the advisor's only
	// input, so the observed profile — not a config file — drives the
	// verdict below.
	for i := int64(0); i < 2000; i++ {
		if _, err := edges.Query(crs.T("src", i%8), "dst"); err != nil {
			return err
		}
	}

	rc := edges.Harvest()
	fmt.Printf("\n--- harvested counters ---\nreads %d, writes %d, read fraction %.2f, optimistic-capable %v\n",
		rc.Reads, rc.Writes, float64(rc.Reads)/float64(rc.Reads+rc.Writes), rc.OptimisticCapable)
	rec, ok := autotune.RecommendKinds(rc, autotune.DefaultConfig())
	if !ok {
		return fmt.Errorf("advisor declined to migrate the warmed-up relation")
	}
	fmt.Printf("advisor verdict (same rule as crsd -adapt / crstune -live):\n  MIGRATE %v -> %v\n  %s\n", rec.From, rec.To, rec.Reason)

	// The identical read-only batch, traced on each side of the cutover.
	traceRO := func() (*crs.BatchTrace, error) {
		var tr *crs.BatchTrace
		err := edges.BatchReadOnly(func(tx *crs.Txn) error {
			tx.EnableTrace()
			tr = tx.Trace()
			for s := int64(0); s < 4; s++ {
				if _, err := tx.Count(crs.T("src", s)); err != nil {
					return err
				}
			}
			return nil
		})
		return tr, err
	}
	before, err := traceRO()
	if err != nil {
		return err
	}
	fmt.Printf("\nread-only batch BEFORE: optimistic=%v, %d lock requests -> %d acquired\n",
		before.Optimistic, before.Requested, before.Acquired)

	d2, p2, err := autotune.Materialize(edges, rec)
	if err != nil {
		return err
	}
	fmt.Println("\n--- Registry.Migrate: side synthesis, backfill, catch-up, cutover ---")
	ev, err := db.Migrate("edges", crs.WithDecomposition(d2), crs.WithPlacement(p2))
	if err != nil {
		return err
	}
	fmt.Printf("  side synthesis: %s (same relation id %d, so the §5.1 global\n", ev.To, edges.RegistryID())
	fmt.Println("  lock order is preserved — new lock IDs re-base onto the old slot)")
	fmt.Printf("  backfill: %d rows replayed from the snapshot\n", ev.Backfilled)
	fmt.Printf("  catch-up: %d concurrent mutations drained from the commit tap\n", ev.CatchupOps)
	fmt.Printf("  cutover: exclusive latch held %s (total migration %s)\n",
		time.Duration(ev.PauseNS), time.Duration(ev.TotalNS))

	after, err := traceRO()
	if err != nil {
		return err
	}
	fmt.Printf("\nread-only batch AFTER: optimistic=%v, %d lock requests -> %d acquired (epochs validated: %d)\n",
		after.Optimistic, after.Requested, after.Acquired, after.EpochsDistinct)
	if !after.Optimistic || after.Acquired != 0 {
		return fmt.Errorf("post-migration read-only batch still locking (optimistic=%v, acquired %d)", after.Optimistic, after.Acquired)
	}
	fmt.Printf("\nmigration events now served under /v1/stats registry.migrations: %d\n\n", len(db.Harvest().Migrations))
	return nil
}

func printPlan(r *crs.Relation, title string, bound, out []string) {
	s, err := r.ExplainQuery(bound, out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("--- query plan: %s ---\n%s\n", title, s)
}

func printMutations(r *crs.Relation, key []string) {
	if s, err := r.ExplainInsert(key); err == nil {
		fmt.Printf("--- insert plan (key %v) ---\n%s\n", key, s)
	}
	if s, err := r.ExplainRemove(key); err == nil {
		fmt.Printf("--- remove plan (key %v) ---\n%s\n", key, s)
	}
}

func buildRelation(name string) (*crs.Relation, error) {
	if name == "dcache" {
		spec := crs.MustSpec([]string{"parent", "name", "child"},
			crs.FD{From: []string{"parent", "name"}, To: []string{"child"}})
		d, err := crs.NewBuilder(spec, "ρ").
			Edge("ρx", "ρ", "x", []string{"parent"}, crs.TreeMap).
			Edge("xy", "x", "y", []string{"name"}, crs.TreeMap).
			Edge("ρy", "ρ", "y", []string{"parent", "name"}, crs.ConcurrentHashMap).
			Edge("yz", "y", "z", []string{"child"}, crs.Cell).
			Build()
		if err != nil {
			return nil, err
		}
		return crs.Synthesize(spec, crs.WithDecomposition(d))
	}
	v, err := crs.GraphVariantByName(name)
	if err != nil {
		return nil, err
	}
	return v.Build()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crsexplain:", err)
	os.Exit(1)
}
