// Command crsexplain dumps what the compiler synthesized for a named
// representation: the decomposition (with node types A ▷ B), the lock
// placement, and the query/mutation plans in the paper's let-notation
// (Figure 4). With -dot it also emits Graphviz for the decomposition,
// reproducing the diagrams of Figures 2 and 3.
//
// Usage:
//
//	crsexplain [-variant "Split 4"|dcache] [-dot] [-plans]
package main

import (
	"flag"
	"fmt"
	"os"

	crs "repro"
)

func main() {
	variant := flag.String("variant", "Split 4", `variant name ("Stick 1".."Diamond 2", "Diamond Spec"), or "dcache" for the Figure 2 directory tree`)
	dot := flag.Bool("dot", false, "emit Graphviz DOT for the decomposition")
	instance := flag.Bool("instance", false, "populate sample data and emit the instance diagram (Figure 2(b) style)")
	plans := flag.Bool("plans", true, "print the plans for the benchmark operations")
	flag.Parse()

	r, err := buildRelation(*variant)
	if err != nil {
		fatal(err)
	}
	d := r.Decomposition()
	fmt.Printf("=== %s ===\n\n%s\n%s\n", *variant, d, r.Placement())
	fmt.Println("lock order: topological node order, then instance key, then stripe:")
	for _, n := range d.Nodes {
		fmt.Printf("  %d: %s (stripes: %d)\n", n.Index, n.Name, r.Placement().StripeCount(n))
	}

	if *plans {
		if *variant == "dcache" {
			printPlan(r, "full iteration", nil, []string{"child", "name", "parent"})
			printPlan(r, "path lookup (parent,name)", []string{"name", "parent"}, []string{"child"})
			printPlan(r, "directory listing (parent)", []string{"parent"}, []string{"child", "name"})
			printMutations(r, []string{"name", "parent"})
		} else {
			printPlan(r, "find successors", []string{"src"}, []string{"dst", "weight"})
			printPlan(r, "find predecessors", []string{"dst"}, []string{"src", "weight"})
			printMutations(r, []string{"dst", "src"})
		}
	}
	if *dot {
		fmt.Println("\n--- DOT ---")
		fmt.Println(d.ToDOT(*variant))
	}
	if *instance {
		if err := populateSample(r, *variant); err != nil {
			fatal(err)
		}
		fmt.Println("\n--- instance diagram (cf. Figure 2(b)) ---")
		fmt.Println(r.InstanceDOT(*variant + " instance"))
	}
}

// populateSample inserts the paper's running-example data: the Figure 2(b)
// directory entries for dcache, three §2-style edges otherwise.
func populateSample(r *crs.Relation, variant string) error {
	if variant == "dcache" {
		for _, e := range []struct {
			p int
			n string
			c int
		}{{1, "a", 2}, {2, "b", 3}, {2, "c", 4}} {
			if _, err := r.Insert(crs.T("parent", e.p, "name", e.n), crs.T("child", e.c)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range [][3]int{{1, 2, 42}, {1, 3, 7}, {2, 3, 9}} {
		if _, err := r.Insert(crs.T("src", e[0], "dst", e[1]), crs.T("weight", e[2])); err != nil {
			return err
		}
	}
	return nil
}

func printPlan(r *crs.Relation, title string, bound, out []string) {
	s, err := r.ExplainQuery(bound, out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("--- query plan: %s ---\n%s\n", title, s)
}

func printMutations(r *crs.Relation, key []string) {
	if s, err := r.ExplainInsert(key); err == nil {
		fmt.Printf("--- insert plan (key %v) ---\n%s\n", key, s)
	}
	if s, err := r.ExplainRemove(key); err == nil {
		fmt.Printf("--- remove plan (key %v) ---\n%s\n", key, s)
	}
}

func buildRelation(name string) (*crs.Relation, error) {
	if name == "dcache" {
		spec := crs.MustSpec([]string{"parent", "name", "child"},
			crs.FD{From: []string{"parent", "name"}, To: []string{"child"}})
		d, err := crs.NewBuilder(spec, "ρ").
			Edge("ρx", "ρ", "x", []string{"parent"}, crs.TreeMap).
			Edge("xy", "x", "y", []string{"name"}, crs.TreeMap).
			Edge("ρy", "ρ", "y", []string{"parent", "name"}, crs.ConcurrentHashMap).
			Edge("yz", "y", "z", []string{"child"}, crs.Cell).
			Build()
		if err != nil {
			return nil, err
		}
		return crs.Synthesize(d, crs.FineGrainedPlacement(d))
	}
	v, err := crs.GraphVariantByName(name)
	if err != nil {
		return nil, err
	}
	return v.Build()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crsexplain:", err)
	os.Exit(1)
}
