// Command crstaxonomy prints the container taxonomy of Figure 1: the
// concurrency-safety and consistency properties of every container kind,
// for the operation pairs lookup/lookup, lookup/write, scan/write,
// write/write and lookup/scan, scan/scan.
//
// The safe cells of the table are verified empirically by the concurrent
// stress tests in internal/container (run with `go test -race
// ./internal/container`); the "no" cells are contract statements — the
// synthesizer never exercises those pairs without a serializing lock.
package main

import (
	"fmt"

	crs "repro"
)

func main() {
	fmt.Println("Figure 1: concurrency safety and consistency of containers")
	fmt.Println()
	fmt.Print(crs.FormatTaxonomy())
	fmt.Println()
	fmt.Println("L = lookup, S = scan, W = write.")
	fmt.Println("yes = safe and linearizable; weak = safe, weakly consistent; no = unsafe.")
	fmt.Println("Verify the safe cells: go test -race ./internal/container")
}
