// Command crstune runs the autotuner of §6.1: it enumerates legal
// representations of the directed-graph relation (structure × placement ×
// striping factor × containers), measures each on a training workload,
// and prints the ranking.
//
// With -live FILE it instead runs the ONLINE advisor's decision rule on a
// harvested counter dump — either the registry document a crsd /v1/stats
// response carries under "registry", or a bare core.Counters JSON ("-"
// reads stdin) — and prints, for every relation, the migration the
// advisor would trigger. The rule is literally the same code cmd/crsd
// -adapt runs (autotune.RecommendKinds), so the offline verdict and the
// online behavior cannot drift apart.
//
// Usage:
//
//	crstune [-mix 35-35-20-10] [-threads 4] [-ops 20000] [-keyspace 512]
//	        [-top 15] [-topstatic 64] [-family stick|split|diamond]
//	crstune -live stats.json [-min-ops 1000] [-margin 0.1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	crs "repro"
	"repro/internal/autotune"
	"repro/internal/cli"
)

func main() {
	mixFlag := flag.String("mix", "35-35-20-10", "training mix x-y-z-w")
	threads := flag.Int("threads", 4, "training threads")
	ops := flag.Int("ops", 20_000, "training operations per thread")
	keyspace := flag.Int64("keyspace", 512, "node id space")
	top := flag.Int("top", 15, "print the top N results")
	topStatic := flag.Int("topstatic", 0, "pre-filter to the N statically cheapest candidates (0 = measure all)")
	family := flag.String("family", "", "restrict to one family: stick, split or diamond")
	seed := flag.Uint64("seed", 1, "workload seed")
	live := flag.String("live", "", "harvested counters JSON (a /v1/stats document or bare core.Counters; - reads stdin): print the online advisor's verdict instead of autotuning")
	minOps := flag.Uint64("min-ops", autotune.DefaultConfig().MinOps, "with -live, observed operations required before recommending")
	margin := flag.Float64("margin", autotune.DefaultConfig().Margin, "with -live, required relative cost improvement")
	flag.Parse()

	if *live != "" {
		if err := runLive(*live, *minOps, *margin); err != nil {
			fatal(err)
		}
		return
	}

	mix, err := cli.ParseMix(*mixFlag)
	if err != nil {
		fatal(err)
	}
	cands := crs.EnumerateGraphCandidates()
	if *family != "" {
		var filtered []crs.TuneCandidate
		for _, c := range cands {
			if c.Family == *family {
				filtered = append(filtered, c)
			}
		}
		cands = filtered
	}
	fmt.Printf("autotuning %d candidates (mix %s, %d threads × %d ops, keyspace %d)\n",
		len(cands), mix, *threads, *ops, *keyspace)
	if *topStatic > 0 {
		fmt.Printf("static pre-filter: measuring only the %d cheapest by plan cost\n", *topStatic)
	}

	cfg := crs.BenchConfig{Threads: *threads, OpsPerThread: *ops, KeySpace: *keyspace, Seed: *seed, Mix: mix}
	scored, err := crs.Tune(cands, cfg, crs.TuneOptions{TopStatic: *topStatic})
	if err != nil {
		fatal(err)
	}
	n := *top
	if n > len(scored) {
		n = len(scored)
	}
	fmt.Printf("\n%-4s %-64s %14s %10s\n", "rank", "candidate", "ops/sec", "static")
	for i := 0; i < n; i++ {
		s := scored[i]
		fmt.Printf("%-4d %-64s %14.0f %10.1f\n", i+1, s.Name, s.Result.Throughput, s.Static)
	}
	fmt.Printf("\nbest: %s (%s)\n", scored[0].Name, scored[0].Description)
}

// runLive reads a harvested counter dump and prints, per relation, the
// migration the online advisor would trigger under the given thresholds.
func runLive(path string, minOps uint64, margin float64) error {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	counters, err := decodeCounters(raw)
	if err != nil {
		return err
	}
	cfg := autotune.DefaultConfig()
	cfg.MinOps = minOps
	cfg.Margin = margin

	if len(counters.Relations) == 0 {
		return fmt.Errorf("no relation counters in %s", path)
	}
	fmt.Printf("online advisor verdict (min ops %d, margin %.0f%%):\n\n", cfg.MinOps, cfg.Margin*100)
	for _, rc := range counters.Relations {
		total := rc.Reads + rc.Writes
		frac := 0.0
		if total > 0 {
			frac = float64(rc.Reads) / float64(total)
		}
		fmt.Printf("%-10s %s  (%d ops, read fraction %.2f, optimistic=%v)\n",
			rc.Name, strings.Join(rc.Containers, "/"), total, frac, rc.OptimisticCapable)
		if rec, ok := autotune.RecommendKinds(rc, cfg); ok {
			fmt.Printf("  -> MIGRATE to %s\n     %s\n", strings.Join(rec.To, "/"), rec.Reason)
		} else {
			fmt.Printf("  -> keep\n")
		}
	}
	if n := len(counters.Migrations); n > 0 {
		fmt.Printf("\n%d migrations already completed:\n", n)
		for _, ev := range counters.Migrations {
			fmt.Printf("  %s: %s -> %s (backfilled %d, catch-up %d)\n",
				ev.Relation, ev.From, ev.To, ev.Backfilled, ev.CatchupOps)
		}
	}
	return nil
}

// decodeCounters accepts either a full /v1/stats document (counters under
// "registry") or a bare core.Counters dump.
func decodeCounters(raw []byte) (*crs.Counters, error) {
	var stats struct {
		Registry *crs.Counters `json:"registry"`
	}
	if err := json.Unmarshal(raw, &stats); err == nil && stats.Registry != nil && len(stats.Registry.Relations) > 0 {
		return stats.Registry, nil
	}
	var bare crs.Counters
	if err := json.Unmarshal(raw, &bare); err != nil {
		return nil, fmt.Errorf("not a stats or counters document: %w", err)
	}
	return &bare, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crstune:", err)
	os.Exit(1)
}
