// Command crstune runs the autotuner of §6.1: it enumerates legal
// representations of the directed-graph relation (structure × placement ×
// striping factor × containers), measures each on a training workload,
// and prints the ranking.
//
// Usage:
//
//	crstune [-mix 35-35-20-10] [-threads 4] [-ops 20000] [-keyspace 512]
//	        [-top 15] [-topstatic 64] [-family stick|split|diamond]
package main

import (
	"flag"
	"fmt"
	"os"

	crs "repro"
	"repro/internal/cli"
)

func main() {
	mixFlag := flag.String("mix", "35-35-20-10", "training mix x-y-z-w")
	threads := flag.Int("threads", 4, "training threads")
	ops := flag.Int("ops", 20_000, "training operations per thread")
	keyspace := flag.Int64("keyspace", 512, "node id space")
	top := flag.Int("top", 15, "print the top N results")
	topStatic := flag.Int("topstatic", 0, "pre-filter to the N statically cheapest candidates (0 = measure all)")
	family := flag.String("family", "", "restrict to one family: stick, split or diamond")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	mix, err := cli.ParseMix(*mixFlag)
	if err != nil {
		fatal(err)
	}
	cands := crs.EnumerateGraphCandidates()
	if *family != "" {
		var filtered []crs.TuneCandidate
		for _, c := range cands {
			if c.Family == *family {
				filtered = append(filtered, c)
			}
		}
		cands = filtered
	}
	fmt.Printf("autotuning %d candidates (mix %s, %d threads × %d ops, keyspace %d)\n",
		len(cands), mix, *threads, *ops, *keyspace)
	if *topStatic > 0 {
		fmt.Printf("static pre-filter: measuring only the %d cheapest by plan cost\n", *topStatic)
	}

	cfg := crs.BenchConfig{Threads: *threads, OpsPerThread: *ops, KeySpace: *keyspace, Seed: *seed, Mix: mix}
	scored, err := crs.Tune(cands, cfg, crs.TuneOptions{TopStatic: *topStatic})
	if err != nil {
		fatal(err)
	}
	n := *top
	if n > len(scored) {
		n = len(scored)
	}
	fmt.Printf("\n%-4s %-64s %14s %10s\n", "rank", "candidate", "ops/sec", "static")
	for i := 0; i < n; i++ {
		s := scored[i]
		fmt.Printf("%-4d %-64s %14.0f %10.1f\n", i+1, s.Name, s.Result.Throughput, s.Static)
	}
	fmt.Printf("\nbest: %s (%s)\n", scored[0].Name, scored[0].Description)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crstune:", err)
	os.Exit(1)
}
