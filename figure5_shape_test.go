package crs_test

import (
	"runtime"
	"testing"

	crs "repro"
	"repro/internal/handcoded"
)

// TestFigure5Shape asserts the qualitative findings of §6.2 that are
// robust to hardware (the absolute curves of Figure 5 are not — see
// EXPERIMENTS.md):
//
//  1. sticks handle successor-only mixes far better than mixes that need
//     predecessors (finding predecessors on a stick scans every edge);
//  2. on predecessor-containing mixes, splits and diamonds beat sticks by
//     a wide margin;
//  3. the hand-coded implementation and its synthesized twin (Split 4)
//     both complete the same workload correctly, and the synthesized code
//     stays within an interpreter-overhead factor of hand-written Go.
func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(name string, mix crs.Mix) float64 {
		t.Helper()
		g, err := buildShapeGraph(name)
		if err != nil {
			t.Fatal(err)
		}
		res := crs.RunBench(g, crs.BenchConfig{
			Threads:      maxThreads(),
			OpsPerThread: 30_000 / maxThreads(),
			KeySpace:     256,
			Seed:         11,
			Mix:          mix,
		})
		return res.Throughput
	}
	succOnly := crs.Figure5Mixes()[0]  // 70-0-20-10
	predHeavy := crs.Figure5Mixes()[3] // 45-45-9-1

	stickSucc := run("Stick 3", succOnly)
	stickPred := run("Stick 3", predHeavy)
	splitPred := run("Split 4", predHeavy)
	diamondPred := run("Diamond 1", predHeavy)
	handPred := run("Handcoded", predHeavy)
	splitSucc := run("Split 4", succOnly)

	// (1) The stick collapses when predecessors enter the mix.
	if stickSucc < 3*stickPred {
		t.Errorf("stick should collapse on predecessor mixes: succ-only %.0f vs pred-heavy %.0f ops/s",
			stickSucc, stickPred)
	}
	// (2) Split and diamond dominate the stick on predecessor mixes.
	if splitPred < 2*stickPred {
		t.Errorf("split should beat stick on predecessor mix: %.0f vs %.0f ops/s", splitPred, stickPred)
	}
	if diamondPred < 2*stickPred {
		t.Errorf("diamond should beat stick on predecessor mix: %.0f vs %.0f ops/s", diamondPred, stickPred)
	}
	// Sticks remain respectable on the successor-only mix (the paper's
	// panel 1): within a modest factor of the split.
	if stickSucc*20 < splitSucc {
		t.Errorf("stick should be viable on successor-only mix: %.0f vs split %.0f ops/s", stickSucc, splitSucc)
	}
	// (3) Synthesized Split 4 within an interpreter-overhead factor of the
	// hand-written graph (the paper's versions were near-identical because
	// both were compiled; ours interprets plans — EXPERIMENTS.md records
	// the measured gap).
	if splitPred*50 < handPred {
		t.Errorf("synthesized Split 4 unreasonably far from handcoded: %.0f vs %.0f ops/s", splitPred, handPred)
	}
	t.Logf("succ-only: stick=%.0f split=%.0f | pred-heavy: stick=%.0f split=%.0f diamond=%.0f hand=%.0f",
		stickSucc, splitSucc, stickPred, splitPred, diamondPred, handPred)
}

func buildShapeGraph(name string) (crs.GraphOps, error) {
	if name == "Handcoded" {
		return handcoded.New(), nil
	}
	v, err := crs.GraphVariantByName(name)
	if err != nil {
		return nil, err
	}
	r, err := v.Build()
	if err != nil {
		return nil, err
	}
	return crs.MustRelationGraph(r), nil
}

func maxThreads() int {
	k := runtime.GOMAXPROCS(0)
	if k > 4 {
		k = 4
	}
	if k < 1 {
		k = 1
	}
	return k
}
