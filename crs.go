// Package crs — Concurrent Representation Synthesis — is a Go
// implementation of "Concurrent Data Representation Synthesis" (Hawkins,
// Aiken, Fisher, Rinard, Sagiv; PLDI 2012).
//
// Programs describe data as concurrent relations: a set of columns, a set
// of functional dependencies, and four atomic operations (insert, remove,
// query, plus construction). The library synthesizes the representation:
// a decomposition of the relation into cooperating container data
// structures (hash maps, red-black trees, concurrent hash maps, lazy
// concurrent skip lists, copy-on-write maps, singleton cells), a lock
// placement (coarse, fine, striped, or speculative) mapping every logical
// lock onto physical locks, and query/mutation plans whose two-phase,
// globally ordered lock acquisition makes every operation serializable
// and deadlock-free by construction.
//
// # Quick start
//
//	spec := crs.MustSpec([]string{"src", "dst", "weight"},
//	    crs.FD{From: []string{"src", "dst"}, To: []string{"weight"}})
//	d, _ := crs.NewBuilder(spec, "ρ").
//	    Edge("ρu", "ρ", "u", []string{"src"}, crs.ConcurrentHashMap).
//	    Edge("uv", "u", "v", []string{"dst"}, crs.TreeMap).
//	    Edge("vw", "v", "w", []string{"weight"}, crs.Cell).
//	    Build()
//	p := crs.NewPlacement(d)
//	p.SetStripes(d.Root, 1024)
//	p.Place(d.EdgeByName("ρu"), d.Root, "src")
//	r, _ := crs.Synthesize(spec, crs.WithDecomposition(d), crs.WithPlacement(p))
//	r.Insert(crs.T("src", 1, "dst", 2), crs.T("weight", 42))
//	succs, _ := r.Query(crs.T("src", 1), "dst", "weight")
//
// Omitting WithPlacement defaults to the fine-grain placement ψ2, and
// crs.WithAutotune lets the §6.1 enumerator pick the representation from
// the specification alone.
//
// # Prepared row execution
//
// Synthesize assigns every column a dense index (a Schema) and compiles
// all plans down to integer offsets. The Tuple API above converts at the
// boundary; hot paths can skip even that by preparing an operation once
// and executing it over schema-indexed Row values — no column names are
// touched at run time:
//
//	q, _ := r.PrepareQuery([]string{"src"}, []string{"dst", "weight"})
//	row := r.Schema().NewRow()
//	row.Set(r.Schema().MustIndex("src"), int64(1))
//	n, _ := q.CountRow(row)
//
// PreparedInsert.ExecRow and PreparedRemove.ExecRow are the mutation
// analogs; PreparedQuery.ExecRows streams result rows under the query's
// locks. The §6.2 benchmark adapters run on this path.
//
// # Batched transactions
//
// Several operations can run as ONE two-phase-locking transaction: the
// callback enqueues members (nothing executes yet), then the commit
// merges every member plan's lock requirements — deduplicated, shared
// upgraded to exclusive where any member writes — and acquires the
// coalesced set once in the global order, so an N-op batch takes each
// physical lock at most once. The group is atomic and behaves like its
// members ran sequentially (later members observe earlier members'
// writes):
//
//	ins, _ := r.PrepareInsert([]string{"dst", "src"})
//	var moved, placed *crs.Pending[bool]
//	r.Batch(func(tx *crs.Txn) error {
//	    moved, _ = tx.Remove(crs.T("src", 1, "dst", 2)) // tuple API…
//	    placed, _ = tx.ExecRow(ins, row)                // …or prepared rows
//	    return nil                                      // error ⇒ nothing runs
//	})
//	_ = moved.Value() // results resolve when Batch returns
//
// # Read-only batches
//
// A batch whose members are all queries and counts runs OPTIMISTICALLY
// when every container of the touched relations is concurrency-safe
// (Relation.OptimisticCapable): instead of acquiring its plans' locks
// shared, it records each lock's epoch cell, reads lock-free, validates
// the recorded epochs in the global lock order at commit, and retries on
// conflict — falling back to ordinary two-phase locking after a few
// failed attempts, so results never depend on the path taken. The happy
// path acquires zero physical locks. Batch detects read-only groups
// automatically; BatchReadOnly (on Relation and Registry) makes the
// intent explicit and rejects mutation enqueues:
//
//	var n *crs.Pending[int]
//	r.BatchReadOnly(func(tx *crs.Txn) error {
//	    n, _ = tx.Count(crs.T("src", 1))
//	    return nil
//	})
//
// Standalone Query/Count/ExecRows on capable relations ride the same
// lock-free path as one-member read-only batches, so the zero-lock read
// story covers the whole read API.
//
// # Mixed batches: Silo-style OCC
//
// A MIXED group — mutations plus reads — on OptimisticCapable relations
// auto-upgrades to an OCC commit: exclusive locks are acquired for the
// write members only (coalesced, in the global order), read members run
// lock-free recording epochs, results are staged under an undo log, and
// the read-set is validated (excluding locks the batch itself holds
// exclusively) before delivery, with retry and full-2PL fallback exactly
// like the read-only path. On the OCC path a batch therefore never
// acquires more locks than its sequential decomposition (the rare
// contention-forced 2PL fallback pays the pessimistic schedule instead).
//
// # Durability
//
// A Registry can log every committed batch to a write-ahead redo log
// (internal/wal) through the Registry.SetCommitLogger seam: the record
// is appended at the commit point — after the locks are held and the
// writes validated, before any result is delivered — so replaying the
// log through Registry.Batch reproduces exactly the committed history.
// The wal.Manager adds CRC-checked framing, group-commit fsync
// batching, periodic snapshots with log truncation, and crash recovery
// that tolerates a torn tail; cmd/crsd wires it up behind -wal-dir so
// an acknowledged request survives kill -9 and (under the default
// fsync policy) power loss. With no logger attached the commit path is
// untouched — the steady-state batch loop still allocates nothing.
//
// Or let the autotuner pick the representation for your workload:
//
//	best, _ := crs.Tune(crs.EnumerateGraphCandidates(), cfg, crs.TuneOptions{TopStatic: 32})
//
// The packages under internal/ implement the paper's subsystems; this
// package re-exports the stable public surface.
package crs

import (
	"repro/internal/autotune"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/graphreps"
	"repro/internal/locks"
	"repro/internal/rel"
	"repro/internal/workload"
)

// Relational substrate (§2).
type (
	// Value is a dynamically typed relational value (bool, int, int64,
	// uint64, float64 or string).
	Value = rel.Value
	// Tuple is an immutable column→value mapping.
	Tuple = rel.Tuple
	// Spec is a relational specification: columns plus functional
	// dependencies.
	Spec = rel.Spec
	// FD is a functional dependency From → To.
	FD = rel.FD
	// Schema assigns every spec column a dense index, fixed at
	// Synthesize time; see Relation.Schema.
	Schema = rel.Schema
	// Row is a dense tuple: one value slot per schema column plus a
	// bitmask of bound columns — the prepared-execution input type.
	Row = rel.Row
)

// RowOver wraps a value slice (one slot per schema column) and bound mask
// as a Row without copying.
func RowOver(vals []Value, mask uint64) Row { return rel.RowOver(vals, mask) }

// T builds a tuple from alternating column/value pairs; it panics on
// malformed input (use NewTuple for checked construction).
func T(pairs ...any) Tuple { return rel.T(pairs...) }

// NewTuple builds a tuple from alternating column/value pairs.
func NewTuple(pairs ...any) (Tuple, error) { return rel.NewTuple(pairs...) }

// NewSpec builds and validates a relational specification.
func NewSpec(columns []string, fds ...FD) (Spec, error) { return rel.NewSpec(columns, fds...) }

// MustSpec is NewSpec panicking on error.
func MustSpec(columns []string, fds ...FD) Spec { return rel.MustSpec(columns, fds...) }

// Containers (§3, Figure 1).
type (
	// ContainerKind identifies a container implementation.
	ContainerKind = container.Kind
	// ContainerProperties is a container's Figure 1 row.
	ContainerProperties = container.Properties
)

// The container kinds (named after their JDK archetypes).
const (
	HashMap               = container.HashMap
	TreeMap               = container.TreeMap
	ConcurrentHashMap     = container.ConcurrentHashMap
	ConcurrentSkipListMap = container.ConcurrentSkipListMap
	CopyOnWriteMap        = container.CopyOnWriteMap
	Cell                  = container.Cell
)

// ContainerPropertiesOf returns the concurrency-safety and consistency
// properties of a container kind (the paper's Figure 1).
func ContainerPropertiesOf(k ContainerKind) ContainerProperties { return container.PropertiesOf(k) }

// FormatTaxonomy renders the Figure 1 table.
func FormatTaxonomy() string { return container.FormatTaxonomy() }

// Decompositions (§4.1).
type (
	// Decomposition is a rooted DAG describing a representation.
	Decomposition = decomp.Decomposition
	// DecompositionBuilder assembles decompositions edge by edge.
	DecompositionBuilder = decomp.Builder
	// Node is a decomposition vertex with type A ▷ B.
	Node = decomp.Node
	// Edge is a decomposition edge carrying key columns and a container.
	Edge = decomp.Edge
)

// NewBuilder starts a decomposition for spec rooted at the named node.
func NewBuilder(spec Spec, root string) *DecompositionBuilder { return decomp.NewBuilder(spec, root) }

// StructureOptions bounds generic structure enumeration (§6.1).
type StructureOptions = decomp.EnumOptions

// EnumerateStructures returns adequate decomposition structures for spec
// within the given bounds — the §6.1 autotuner's first phase. With
// Share set, diamonds emerge from hash-consing shared suffixes.
func EnumerateStructures(spec Spec, opts StructureOptions) ([]*Decomposition, error) {
	return decomp.Enumerate(spec, opts)
}

// Lock placements (§4.3–4.5).
type (
	// Placement maps every edge's logical locks onto physical locks.
	Placement = locks.Placement
	// PlacementRule is one edge's rule.
	PlacementRule = locks.Rule
)

// NewPlacement returns the fine-grain default placement (ψ2); customize
// with Place / PlaceSpeculative / SetStripes.
func NewPlacement(d *Decomposition) *Placement { return locks.NewPlacement(d) }

// CoarsePlacement returns ψ1: a single root lock protects everything.
func CoarsePlacement(d *Decomposition) *Placement { return locks.Coarse(d) }

// FineGrainedPlacement returns ψ2: one lock per node instance.
func FineGrainedPlacement(d *Decomposition) *Placement { return locks.FineGrained(d) }

// Synthesis (§5).
type (
	// Relation is a synthesized concurrent relation.
	Relation = core.Relation
	// Reference is the executable sequential specification.
	Reference = core.Reference
	// PreparedQuery, PreparedInsert and PreparedRemove are compiled
	// operation handles: prepare once, execute many times over tuples or
	// schema-indexed rows with zero per-call plan work.
	PreparedQuery  = core.PreparedQuery
	PreparedInsert = core.PreparedInsert
	PreparedRemove = core.PreparedRemove
)

// Batched transactions.
type (
	// Txn is a batched multi-operation transaction under construction;
	// see Relation.Batch and Registry.Batch (and their BatchReadOnly
	// variants, which reject mutations and run lock-free when the
	// relations are OptimisticCapable). Enqueue operations with
	// Txn.Insert / Remove / Count / Query (tuples, single-relation
	// batches), Txn.InsertInto / RemoveFrom / CountIn / QueryIn (tuples,
	// naming the relation) or Txn.ExecRow / CountRow / ExecRows (prepared
	// rows, routed by the prepared handle's relation); each returns a
	// Pending resolved at commit.
	Txn = core.Txn
	// BatchMutation is the common interface of PreparedInsert and
	// PreparedRemove accepted by Txn.ExecRow.
	BatchMutation = core.BatchMutation
	// BatchTrace records a batch's coalesced lock schedule (Txn.EnableTrace).
	BatchTrace = core.BatchTrace
	// BatchRound is one coalesced acquisition in a BatchTrace.
	BatchRound = core.BatchRound
)

// Pending is a batch result future: resolved when Relation.Batch returns.
type Pending[T any] = core.Pending[T]

// Registry is a set of relations sharing one transactional domain — the
// library's database handle. Relations register at Synthesize time and
// receive a stable relation id that leads every lock ID they mint, so the
// §5.1 total lock order extends registry-wide to (relation id, node,
// instance key, stripe) and Registry.Batch can run one atomic,
// deadlock-free transaction over members against any registered
// relations:
//
//	db := crs.NewRegistry()
//	users, _ := db.Synthesize("users", uspec, crs.WithDecomposition(ud))
//	posts, _ := db.Synthesize("posts", pspec, crs.WithDecomposition(pd))
//	db.Batch(func(tx *crs.Txn) error {
//	    tx.InsertInto(posts, crs.T("author", 1, "post", 9), crs.T("ts", 4))
//	    tx.RemoveFrom(users, crs.T("user", 1))        // bump the counter:
//	    tx.InsertInto(users, crs.T("user", 1), crs.T("posts", 2))
//	    return nil
//	})
type Registry = core.Registry

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return core.NewRegistry() }

// SynthOption configures a Synthesize, Registry.Synthesize or
// Registry.Migrate call: pass an explicit representation with
// WithDecomposition / WithPlacement, or let a picker derive one from the
// specification (WithAutotune, WithPicker).
type SynthOption = core.SynthOption

// WithDecomposition selects an explicit decomposition.
func WithDecomposition(d *Decomposition) SynthOption { return core.WithDecomposition(d) }

// WithPlacement selects an explicit lock placement; omitted, the
// fine-grain default placement ψ2 of the resolved decomposition is used.
func WithPlacement(p *Placement) SynthOption { return core.WithPlacement(p) }

// WithPicker installs a custom representation picker deriving the
// decomposition (and optionally the placement) from the specification.
// Explicit WithDecomposition / WithPlacement options take precedence.
func WithPicker(pick func(Spec) (*Decomposition, *Placement, error)) SynthOption {
	return core.WithPicker(pick)
}

// WithAutotune lets the §6.1 enumerator pick the representation: adequate
// structures are enumerated from the specification (at most structLimit
// per sharing mode; ≤ 0 means the default bound) and scored statically,
// preferring representations whose containers keep the lock-free
// optimistic read path available. Explicit options still win.
func WithAutotune(structLimit int) SynthOption {
	return core.WithPicker(autotune.PickGeneric(structLimit))
}

// Synthesize compiles a representation of spec into a concurrent relation
// — the paper's compiler entry point. The representation comes from the
// options: an explicit decomposition and placement, or a picker such as
// WithAutotune. Use Registry.Synthesize instead when transactions must
// span several relations.
func Synthesize(spec Spec, opts ...SynthOption) (*Relation, error) {
	return core.SynthesizeSpec(spec, opts...)
}

// SynthesizeDP is the positional form of Synthesize.
//
// Deprecated: use Synthesize with WithDecomposition and WithPlacement.
func SynthesizeDP(d *Decomposition, p *Placement) (*Relation, error) { return core.Synthesize(d, p) }

// Counters and migration (adaptive operation).
type (
	// Counters is a registry-wide harvested counter snapshot — aggregate
	// totals, per-relation breakdowns and the migration event history;
	// see Registry.Harvest and Relation.Harvest.
	Counters = core.Counters
	// RelationCounters is one relation's harvested counter snapshot.
	RelationCounters = core.RelationCounters
	// MigrationEvent describes one completed live representation
	// migration; see Registry.Migrate.
	MigrationEvent = core.MigrationEvent
)

// NewReference returns the coarsely locked reference implementation of the
// relational operations, for differential testing.
func NewReference(spec Spec) *Reference { return core.NewReference(spec) }

// Benchmarking (§6.2).
type (
	// Mix is an operation distribution (x-y-z-w in the paper).
	Mix = workload.Mix
	// BenchConfig parameterizes a benchmark run.
	BenchConfig = workload.Config
	// BenchResult reports aggregate throughput.
	BenchResult = workload.Result
	// GraphOps is the §6.2 benchmark operation interface.
	GraphOps = workload.GraphOps
	// RelationGraph adapts a synthesized graph relation to GraphOps.
	RelationGraph = workload.RelationGraph
)

// Batched benchmarking.
type (
	// BatchGraphOps is the composite-operation interface of the batched
	// benchmark: insert pairs, edge moves, grouped counts.
	BatchGraphOps = workload.BatchGraphOps
	// RelationBatchGraph adapts a synthesized relation to BatchGraphOps
	// with one batched transaction per composite operation.
	RelationBatchGraph = workload.RelationBatchGraph
	// SequentialRelationBatchGraph is the per-operation baseline.
	SequentialRelationBatchGraph = workload.SequentialRelationBatchGraph
	// BatchOpsMix is an operation distribution over composite batched ops.
	BatchOpsMix = workload.BatchMix
)

// NewRelationBatchGraph prepares the batched benchmark operations.
func NewRelationBatchGraph(r *Relation) (*RelationBatchGraph, error) {
	return workload.NewRelationBatchGraph(r)
}

// MustRelationBatchGraph is NewRelationBatchGraph panicking on error.
func MustRelationBatchGraph(r *Relation) *RelationBatchGraph {
	return workload.MustRelationBatchGraph(r)
}

// NewSequentialBatchGraph prepares the sequential (non-coalesced)
// baseline over the same prepared operations.
func NewSequentialBatchGraph(r *Relation) (*SequentialRelationBatchGraph, error) {
	return workload.NewSequentialRelationBatchGraph(r)
}

// DefaultBatchMix returns the batched benchmark's mixed read-write
// distribution.
func DefaultBatchMix() BatchOpsMix { return workload.DefaultBatchMix() }

// ReadHeavyBatchMix returns the 95/5 read-dominated distribution of the
// optimistic benchmark: mostly count pairs and two-hop scans, which run
// as lock-free read-only batches on an optimistic-capable relation.
func ReadHeavyBatchMix() BatchOpsMix { return workload.ReadHeavyBatchMix() }

// RunBatchedBench executes one batched benchmark run.
func RunBatchedBench(g BatchGraphOps, cfg BenchConfig, mix BatchOpsMix) BenchResult {
	return workload.RunBatched(g, cfg, mix)
}

// BatchCompositeOp draws and executes one composite batched operation —
// the single dispatch shared by RunBatchedBench and external harnesses
// (the in-repo benchmark), so both measure the same workload.
func BatchCompositeOp(g BatchGraphOps, state *uint64, mix BatchOpsMix, keySpace int64) uint64 {
	return workload.CompositeOp(g, state, mix, keySpace)
}

// Figure5Mixes lists the four operation distributions of Figure 5.
func Figure5Mixes() []Mix { return workload.Figure5Mixes() }

// NewRelationGraph prepares the four benchmark operations against a
// synthesized graph relation.
func NewRelationGraph(r *Relation) (*RelationGraph, error) { return workload.NewRelationGraph(r) }

// MustRelationGraph is NewRelationGraph panicking on error.
func MustRelationGraph(r *Relation) *RelationGraph { return workload.MustRelationGraph(r) }

// RunBench executes one benchmark run.
func RunBench(g GraphOps, cfg BenchConfig) BenchResult { return workload.Run(g, cfg) }

// GraphSpec returns the directed-graph specification of §2.
func GraphSpec() Spec { return workload.GraphSpec() }

// Named representations (§4.3, §6.2).
type GraphVariant = graphreps.Variant

// Figure5Variants returns the twelve named decompositions of Figure 5.
func Figure5Variants() []GraphVariant { return graphreps.Figure5Variants() }

// GraphVariantByName returns a named Figure 5 variant (or "Diamond Spec").
func GraphVariantByName(name string) (GraphVariant, error) { return graphreps.VariantByName(name) }

// Autotuning (§6.1).
type (
	// TuneCandidate is one representation the autotuner can measure.
	TuneCandidate = autotune.Candidate
	// TuneOptions tunes the search.
	TuneOptions = autotune.Options
	// TuneScored is a candidate with its measurements.
	TuneScored = autotune.Scored
)

// EnumerateGraphCandidates enumerates every legal representation of the
// graph relation over the three Figure 3 structures.
func EnumerateGraphCandidates() []TuneCandidate { return autotune.EnumerateGraph() }

// EnumerateGenericCandidates runs the full §6.1 pipeline from a bare
// specification: enumerate adequate structures, then placements, then
// containers the placements permit.
func EnumerateGenericCandidates(spec Spec, structLimit int) ([]TuneCandidate, error) {
	return autotune.EnumerateGeneric(spec, structLimit)
}

// Tune measures candidates under a training workload and ranks them by
// throughput.
func Tune(cands []TuneCandidate, cfg BenchConfig, opts TuneOptions) ([]TuneScored, error) {
	return autotune.Tune(cands, cfg, opts)
}
