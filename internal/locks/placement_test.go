package locks

import (
	"strings"
	"testing"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/rel"
)

func graphSpec() rel.Spec {
	return rel.MustSpec([]string{"src", "dst", "weight"},
		rel.FD{From: []string{"src", "dst"}, To: []string{"weight"}})
}

// stick builds the Figure 3(a) decomposition: ρ→u {src} → v {dst} → w {weight}.
func stick(kinds ...container.Kind) (*decomp.Decomposition, error) {
	k := func(i int, def container.Kind) container.Kind {
		if i < len(kinds) {
			return kinds[i]
		}
		return def
	}
	return decomp.NewBuilder(graphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, k(0, container.TreeMap)).
		Edge("uv", "u", "v", []string{"dst"}, k(1, container.TreeMap)).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
}

// diamond builds the Figure 3(c) decomposition.
func diamond(top container.Kind) (*decomp.Decomposition, error) {
	return decomp.NewBuilder(graphSpec(), "ρ").
		Edge("ρx", "ρ", "x", []string{"src"}, top).
		Edge("ρy", "ρ", "y", []string{"dst"}, top).
		Edge("xz", "x", "z", []string{"dst"}, container.TreeMap).
		Edge("yz", "y", "z", []string{"src"}, container.TreeMap).
		Edge("zw", "z", "w", []string{"weight"}, container.Cell).
		Build()
}

func TestCoarsePlacementValid(t *testing.T) {
	d, err := stick()
	if err != nil {
		t.Fatal(err)
	}
	p := Coarse(d)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range d.Edges {
		if p.RuleFor(e).At != d.Root {
			t.Fatalf("coarse rule for %s not at root", e.Name)
		}
	}
}

func TestFineGrainedValidOnStick(t *testing.T) {
	d, err := stick()
	if err != nil {
		t.Fatal(err)
	}
	if err := FineGrained(d).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFineGrainedValidOnDiamond(t *testing.T) {
	d, err := diamond(container.ConcurrentHashMap)
	if err != nil {
		t.Fatal(err)
	}
	// ψ2 on the diamond: every edge locked at its source. z has two
	// parents but edges xz and yz are placed at x and y respectively,
	// which trivially dominate themselves.
	if err := FineGrained(d).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStripedPlacementψ3(t *testing.T) {
	// Figure 3(b)-style striping: k locks at the root, edges ρu striped
	// by src. The top-level container must be concurrency-safe for
	// entry-level striping.
	d, err := stick(container.ConcurrentHashMap, container.TreeMap)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(d)
	p.SetStripes(d.Root, 8)
	p.Place(d.EdgeByName("ρu"), d.Root, "src")
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Stripe selection: bound tuple picks one stripe, unbound takes all.
	idx, ok := p.StripeIndex(d.Root, []string{"src"}, rel.T("src", 42))
	if !ok || idx < 0 || idx >= 8 {
		t.Fatalf("StripeIndex = %d, %v", idx, ok)
	}
	if _, ok := p.StripeIndex(d.Root, []string{"src"}, rel.T("dst", 1)); ok {
		t.Fatal("unbound stripe selector must report !ok")
	}
	// Same tuple always picks the same stripe.
	idx2, _ := p.StripeIndex(d.Root, []string{"src"}, rel.T("src", 42))
	if idx2 != idx {
		t.Fatal("stripe selection not deterministic")
	}
}

func TestEntryStripingRejectedForUnsafeContainer(t *testing.T) {
	// Striping the entries of a TreeMap (non-concurrent) across locks
	// must be rejected (Figure 1: TreeMap W/W unsafe).
	d, err := stick(container.TreeMap, container.TreeMap)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(d)
	p.SetStripes(d.Root, 8)
	p.Place(d.EdgeByName("ρu"), d.Root, "src")
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "concurrency-safe") {
		t.Fatalf("want taxonomy rejection, got %v", err)
	}
}

func TestContainerStripingAllowedForUnsafeContainerBySourceKey(t *testing.T) {
	// Striping by the *source* key serializes each container instance even
	// with k > 1, so it is legal for non-concurrent containers: edge uv
	// placed at ρ striped by src (⊆ A_u) — every entry of one u-container
	// shares a stripe.
	d, err := stick(container.ConcurrentHashMap, container.TreeMap)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(d)
	p.SetStripes(d.Root, 8)
	p.Place(d.EdgeByName("ρu"), d.Root, "src")
	p.Place(d.EdgeByName("uv"), d.Root, "src") // src ⊆ A_u for edge uv
	p.Place(d.EdgeByName("vw"), d.Root, "src")
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementDominationRejected(t *testing.T) {
	d, err := diamond(container.ConcurrentHashMap)
	if err != nil {
		t.Fatal(err)
	}
	// Placing edge zw's lock at x is invalid: x does not dominate z (z is
	// reachable via y too).
	p := NewPlacement(d)
	p.Place(d.EdgeByName("zw"), d.NodeByName("x"))
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "dominate") {
		t.Fatalf("want domination error, got %v", err)
	}
}

func TestPathSharingRejected(t *testing.T) {
	// Edge uv placed at ρ but edge ρu placed at u's source... construct a
	// violation: uv at ρ while ρu is at ρ is fine; instead place uv at ρ
	// and ρu at itself? ρu's rule At=ρ (source). Make ρu fine-grained at
	// ρ (same) — need a real violation: place vw at ρ but uv at u.
	d, err := stick(container.ConcurrentHashMap, container.TreeMap)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(d) // ρu@ρ, uv@u, vw@v
	p.Place(d.EdgeByName("vw"), d.Root)
	// Path ρ→v passes through edges ρu (placed at ρ, ok) and uv (placed
	// at u ≠ ρ): violation.
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "share the placement") {
		t.Fatalf("want path-sharing error, got %v", err)
	}
}

func TestSpeculativePlacementψ4(t *testing.T) {
	d, err := diamond(container.ConcurrentHashMap)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(d)
	p.SetStripes(d.Root, 16)
	p.PlaceSpeculative(d.EdgeByName("ρx"), d.Root, "src")
	p.PlaceSpeculative(d.EdgeByName("ρy"), d.Root, "dst")
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r := p.RuleFor(d.EdgeByName("ρx"))
	if !r.Speculative || r.At != d.NodeByName("x") || r.FallbackAt != d.Root {
		t.Fatalf("speculative rule wrong: %+v", r)
	}
}

func TestSpeculativeRejectedForUnsafeContainer(t *testing.T) {
	d, err := diamond(container.HashMap)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(d)
	p.PlaceSpeculative(d.EdgeByName("ρx"), d.Root, "src")
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "linearizable") {
		t.Fatalf("want linearizable-reads rejection, got %v", err)
	}
}

func TestSpeculativeTargetMustHaveOneLock(t *testing.T) {
	d, err := diamond(container.ConcurrentHashMap)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(d)
	p.PlaceSpeculative(d.EdgeByName("ρx"), d.Root, "src")
	p.SetStripes(d.NodeByName("x"), 4)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "exactly one lock") {
		t.Fatalf("want single-lock rejection, got %v", err)
	}
}

func TestStripeCountValidation(t *testing.T) {
	d, err := stick()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(d)
	p.Stripes[0] = 0
	if err := p.Validate(); err == nil {
		t.Fatal("want stripe-count error")
	}
}

func TestStripeSelectorUnavailableColumns(t *testing.T) {
	d, err := stick(container.ConcurrentHashMap)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(d)
	p.SetStripes(d.Root, 4)
	// ρu is keyed by src; striping it by weight is not computable at
	// access time.
	p.Place(d.EdgeByName("ρu"), d.Root, "weight")
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "not available") {
		t.Fatalf("want availability error, got %v", err)
	}
}

func TestPlacementString(t *testing.T) {
	d, err := diamond(container.ConcurrentHashMap)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(d)
	p.SetStripes(d.Root, 16)
	p.PlaceSpeculative(d.EdgeByName("ρx"), d.Root, "src")
	s := p.String()
	for _, want := range []string{"ψ(ρx)", "speculative", "stripes(ρ) = 16"} {
		if !strings.Contains(s, want) {
			t.Errorf("placement string missing %q:\n%s", want, s)
		}
	}
}
