package locks

import (
	"testing"

	"repro/internal/rel"
)

// TestLockSetCoalesces checks the three coalescing rules: duplicate
// requests collapse to one acquisition, shared+exclusive requests for the
// same lock acquire exclusive, and the merged set is taken in global
// order regardless of Add order.
func TestLockSetCoalesces(t *testing.T) {
	arr := NewArray(0, 0, rel.NewKey(), 4)
	var s LockSet
	s.Add(&arr[2], Shared)
	s.Add(&arr[0], Shared)
	s.Add(&arr[2], Exclusive) // same lock, stronger mode
	s.Add(&arr[0], Shared)    // duplicate
	s.Add(&arr[1], Exclusive)
	if s.Requested() != 5 {
		t.Fatalf("Requested = %d, want 5", s.Requested())
	}
	tx := NewTxn()
	tx.AcquireSet(&s)
	if tx.HeldCount() != 3 {
		t.Fatalf("held %d locks, want 3", tx.HeldCount())
	}
	wantModes := []Mode{Shared, Exclusive, Exclusive}
	for i := 0; i < tx.HeldCount(); i++ {
		id, mode := tx.HeldID(i)
		if id.Stripe != i {
			t.Fatalf("held[%d] = %v, want stripe %d (global order)", i, id, i)
		}
		if mode != wantModes[i] {
			t.Fatalf("held[%d] mode = %v, want %v", i, mode, wantModes[i])
		}
	}
	if s.Len() != 0 || s.Requested() != 0 {
		t.Fatal("AcquireSet did not consume the set")
	}
	tx.ReleaseAll()
}

// TestLockSetSkipsHeld checks that re-requesting an already-held lock in
// a later set is a no-op (the at-most-once batch guarantee), and that a
// later set may still acquire strictly larger locks.
func TestLockSetSkipsHeld(t *testing.T) {
	arr := NewArray(0, 0, rel.NewKey(), 3)
	tx := NewTxn()
	var s LockSet
	s.Add(&arr[0], Exclusive)
	tx.AcquireSet(&s)
	s.Add(&arr[0], Shared) // weaker re-request of a held lock: skipped
	s.Add(&arr[1], Shared)
	tx.AcquireSet(&s)
	if tx.HeldCount() != 2 {
		t.Fatalf("held %d locks, want 2", tx.HeldCount())
	}
	// The exclusive hold must still be exclusive (no silent downgrade).
	if _, mode := tx.HeldID(0); mode != Exclusive {
		t.Fatalf("held[0] mode = %v, want exclusive", mode)
	}
	tx.ReleaseAll()
}

// TestLockSetUpgradePanics checks that requesting exclusive on a lock the
// transaction already holds shared panics: coalescing must merge modes
// before the first acquisition, upgrades can deadlock.
func TestLockSetUpgradePanics(t *testing.T) {
	arr := NewArray(0, 0, rel.NewKey(), 2)
	tx := NewTxn()
	var s LockSet
	s.Add(&arr[0], Shared)
	tx.AcquireSet(&s)
	defer func() {
		if recover() == nil {
			t.Fatal("shared→exclusive upgrade via AcquireSet did not panic")
		}
		// The panic left arr[0] held shared; release for cleanliness.
		tx.ReleaseAll()
	}()
	s.Add(&arr[0], Exclusive)
	tx.AcquireSet(&s)
}

// TestLockSetOrderViolationPanics checks that a set acquiring below the
// transaction's high-water mark (and not already held) panics rather than
// risking deadlock.
func TestLockSetOrderViolationPanics(t *testing.T) {
	arr := NewArray(0, 0, rel.NewKey(), 2)
	tx := NewTxn()
	var s LockSet
	s.Add(&arr[1], Shared)
	tx.AcquireSet(&s)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order AcquireSet did not panic")
		}
		tx.ReleaseAll()
	}()
	s.Add(&arr[0], Shared)
	tx.AcquireSet(&s)
}

// TestLockSetAfterReleasePanics checks two-phasedness: no acquisition
// after the shrinking phase begins.
func TestLockSetAfterReleasePanics(t *testing.T) {
	arr := NewArray(0, 0, rel.NewKey(), 1)
	tx := NewTxn()
	tx.ReleaseAll()
	defer func() {
		if recover() == nil {
			t.Fatal("AcquireSet after ReleaseAll did not panic")
		}
	}()
	var s LockSet
	s.Add(&arr[0], Shared)
	tx.AcquireSet(&s)
}
