package locks

import (
	"strings"
	"testing"

	"repro/internal/container"
	"repro/internal/decomp"
)

// upgrade maps the non-concurrent archetypes onto their concurrent
// counterparts, the hop the online advisor takes.
func upgrade(e *decomp.Edge) container.Kind {
	switch e.Container {
	case container.HashMap:
		return container.ConcurrentHashMap
	case container.TreeMap:
		return container.ConcurrentSkipListMap
	}
	return e.Container
}

func TestRebaseCarriesTunedPlacement(t *testing.T) {
	// A tuned ψ3 placement — striped root, every edge routed to the root
	// lock — must survive a container upgrade verbatim: same stripe
	// counts, same rules, but every node pointer remapped into the new
	// decomposition.
	d, err := stick(container.ConcurrentHashMap, container.TreeMap)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(d)
	p.SetStripes(d.Root, 8)
	p.Place(d.EdgeByName("ρu"), d.Root, "src")
	p.Place(d.EdgeByName("uv"), d.Root, "src")
	p.Place(d.EdgeByName("vw"), d.Root, "src")
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	d2, err := d.WithContainers(upgrade)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Rebase(p, d2)
	if err != nil {
		t.Fatal(err)
	}
	if q.D != d2 {
		t.Fatal("rebased placement not bound to the new decomposition")
	}
	if got := q.StripeCount(d2.Root); got != 8 {
		t.Fatalf("stripe count not carried: got %d, want 8", got)
	}
	for _, e := range d2.Edges {
		r := q.RuleFor(e)
		if r.At != d2.Root {
			t.Fatalf("rule for %s not remapped onto d2's root", e.Name)
		}
		if len(r.StripeBy) != 1 || r.StripeBy[0] != "src" {
			t.Fatalf("rule for %s lost its stripe selector: %v", e.Name, r.StripeBy)
		}
	}
	// The original placement must be untouched (Rebase clones).
	if p.RuleFor(d.EdgeByName("uv")).At != d.Root {
		t.Fatal("Rebase mutated its input")
	}
}

func TestRebaseSpeculativeRule(t *testing.T) {
	// ψ4 rules carry a fallback node; Rebase must remap it too.
	d, err := stick(container.ConcurrentHashMap, container.ConcurrentSkipListMap)
	if err != nil {
		t.Fatal(err)
	}
	p := FineGrained(d)
	p.PlaceSpeculative(d.EdgeByName("uv"), d.Root)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	d2, err := d.WithContainers(func(e *decomp.Edge) container.Kind { return e.Container })
	if err != nil {
		t.Fatal(err)
	}
	q, err := Rebase(p, d2)
	if err != nil {
		t.Fatal(err)
	}
	r := q.RuleFor(d2.EdgeByName("uv"))
	if !r.Speculative || r.FallbackAt != d2.Root {
		t.Fatalf("speculative rule not carried: %+v", r)
	}
}

func TestRebaseShapeMismatchRejected(t *testing.T) {
	ds, err := stick()
	if err != nil {
		t.Fatal(err)
	}
	dd, err := diamond(container.ConcurrentHashMap)
	if err != nil {
		t.Fatal(err)
	}
	p := FineGrained(ds)
	if _, err := Rebase(p, dd); err == nil || !strings.Contains(err.Error(), "shape mismatch") {
		t.Fatalf("want shape mismatch, got %v", err)
	}
}

func TestRebaseDowngradeRevalidates(t *testing.T) {
	// Entry-level striping is legal on a ConcurrentHashMap root but not
	// on a plain HashMap (Figure 1: W/W unsafe). Rebasing such a
	// placement onto the downgraded decomposition must fail validation,
	// not silently produce an unsound lock assignment.
	d, err := stick(container.ConcurrentHashMap, container.TreeMap)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(d)
	p.SetStripes(d.Root, 8)
	p.Place(d.EdgeByName("ρu"), d.Root, "src")
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	d2, err := d.WithContainers(func(e *decomp.Edge) container.Kind {
		if e.Container == container.ConcurrentHashMap {
			return container.HashMap
		}
		return e.Container
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Rebase(p, d2); err == nil || !strings.Contains(err.Error(), "concurrency-safe") {
		t.Fatalf("want taxonomy rejection after downgrade, got %v", err)
	}
}
