package locks

import (
	"fmt"
	"sort"
)

// This file implements multi-operation lock-set coalescing, the locking
// substrate of batched transactions: several compiled plans contribute
// their physical-lock requirements to one LockSet, which deduplicates
// requests by lock identity, upgrades shared requests to exclusive when
// any contributor writes, and acquires the merged set in the §5.1 global
// order. An N-operation batch therefore takes each physical lock at most
// once, in one ordered pass per decomposition node, instead of up to N
// times across N transactions.

// Req is one coalesced lock request: a physical lock and the mode some
// batch member needs it in.
type Req struct {
	L *Lock
	M Mode
}

// LockSet accumulates the lock requirements of several compiled plans
// before a single ordered acquisition. The zero value is ready to use;
// Reset recycles the backing storage between rounds.
type LockSet struct {
	reqs []Req
	// requested counts every Add call, including duplicates that the
	// acquisition later merges — the denominator of the batch's
	// coalescing ratio.
	requested int
}

// Add records that some batch member needs l in mode m.
func (s *LockSet) Add(l *Lock, m Mode) {
	s.reqs = append(s.reqs, Req{L: l, M: m})
	s.requested++
}

// Len returns the number of pending (pre-dedup) requests.
func (s *LockSet) Len() int { return len(s.reqs) }

// Requested returns the total number of Add calls since the last Reset:
// the lock count a non-coalesced execution of the same members would have
// requested.
func (s *LockSet) Requested() int { return s.requested }

// Reset empties the set, retaining capacity.
func (s *LockSet) Reset() {
	s.reqs = s.reqs[:0]
	s.requested = 0
}

// AcquireSet acquires every distinct lock in the set, in the global ID
// order, each in the strongest mode any contributor requested — the
// shared→exclusive upgrade rule of batched transactions: if one member
// reads under a lock that another member writes under, the single
// acquisition is exclusive. Locks the transaction already holds are
// skipped; as in Acquire, a required upgrade of an already-held lock
// panics, because the coalescing pass must have merged the modes before
// the lock was first taken. The set is consumed (reset) by the call.
func (t *Txn) AcquireSet(s *LockSet) {
	if t.shrinking {
		panic("locks: acquire after release violates two-phase locking")
	}
	reqs := s.reqs
	if len(reqs) == 0 {
		return
	}
	// Sort by the precomputed lock-ID byte encoding: closure-free
	// insertion sort for the typical small per-node round (keeps the batch
	// hot path allocation-free), falling back to sort.Slice for large
	// rounds (e.g. all-stripe scans), where quadratic insertion would
	// dominate. Byte comparison replaces the old dynamic key walk — the
	// ROADMAP's "cheaper batch scheduling" item — and is what makes the
	// registry-wide (relation, node, inst, stripe) order one memcmp.
	if len(reqs) <= 32 {
		for i := 1; i < len(reqs); i++ {
			for j := i; j > 0 && compareLocks(reqs[j].L, reqs[j-1].L) < 0; j-- {
				reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
			}
		}
	} else {
		sort.Slice(reqs, func(i, j int) bool { return compareLocks(reqs[i].L, reqs[j].L) < 0 })
	}
	for i := 0; i < len(reqs); i++ {
		l, m := reqs[i].L, reqs[i].M
		// Merge duplicate requests for the same lock: exclusive wins.
		for i+1 < len(reqs) && reqs[i+1].L == l {
			if reqs[i+1].M == Exclusive {
				m = Exclusive
			}
			i++
		}
		if max := t.maxHeld(); max != nil && compareLocks(l, max) <= 0 {
			if idx, held := t.findHeld(l); held {
				if m == Exclusive && t.held[idx].mode == Shared {
					panic(fmt.Sprintf("locks: batch upgrade from shared to exclusive on %v; coalescing must merge modes before first acquisition", l.id))
				}
				continue
			}
			panic(fmt.Sprintf("locks: batch acquisition of %v violates lock order (max held %v)", l.id, max.id))
		}
		l.lock(m)
		t.held = append(t.held, heldLock{l: l, mode: m})
	}
	s.Reset()
}

// HeldID returns the identity and mode of the i'th held lock, in
// acquisition (= global ID) order. It exposes the held list to the batch
// executor's tracing; i must be < HeldCount().
func (t *Txn) HeldID(i int) (ID, Mode) {
	h := t.held[i]
	return h.l.id, h.mode
}
