package locks

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rel"
)

func TestCompareIDs(t *testing.T) {
	cases := []struct {
		a, b ID
		want int
	}{
		{ID{Node: 0}, ID{Node: 1}, -1},
		{ID{Node: 1}, ID{Node: 0}, 1},
		{ID{Node: 1, Inst: rel.NewKey(1)}, ID{Node: 1, Inst: rel.NewKey(2)}, -1},
		{ID{Node: 1, Inst: rel.NewKey(2), Stripe: 0}, ID{Node: 1, Inst: rel.NewKey(2), Stripe: 1}, -1},
		{ID{Node: 1, Inst: rel.NewKey(2), Stripe: 1}, ID{Node: 1, Inst: rel.NewKey(2), Stripe: 1}, 0},
	}
	for _, c := range cases {
		if got := CompareIDs(c.a, c.b); got != c.want {
			t.Errorf("CompareIDs(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := CompareIDs(c.b, c.a); got != -c.want {
			t.Errorf("antisymmetry broken for (%v, %v)", c.a, c.b)
		}
	}
}

func TestNewArrayIDs(t *testing.T) {
	ls := NewArray(0, 3, rel.NewKey("k"), 4)
	if len(ls) != 4 {
		t.Fatalf("len = %d", len(ls))
	}
	for i := range ls {
		id := ls[i].ID()
		if id.Node != 3 || id.Stripe != i || !id.Inst.Equal(rel.NewKey("k")) {
			t.Fatalf("stripe %d has id %v", i, id)
		}
	}
}

func TestTxnBasicAcquireRelease(t *testing.T) {
	a := NewArray(0, 0, rel.NewKey(), 1)
	b := NewArray(0, 1, rel.NewKey(5), 1)
	txn := NewTxn()
	txn.Acquire([]*Lock{&a[0]}, Exclusive, false)
	txn.Acquire([]*Lock{&b[0]}, Shared, false)
	if !txn.Holds(&a[0]) || !txn.Holds(&b[0]) || txn.HeldCount() != 2 {
		t.Fatal("locks not tracked")
	}
	txn.ReleaseAll()
	if txn.Holds(&a[0]) || txn.HeldCount() != 0 {
		t.Fatal("release incomplete")
	}
	// Locks are free again.
	txn2 := NewTxn()
	txn2.Acquire([]*Lock{&a[0], &b[0]}, Exclusive, false)
	txn2.ReleaseAll()
}

func TestTxnDedup(t *testing.T) {
	a := NewArray(0, 0, rel.NewKey(), 1)
	txn := NewTxn()
	txn.Acquire([]*Lock{&a[0], &a[0]}, Exclusive, false)
	if txn.HeldCount() != 1 {
		t.Fatalf("HeldCount = %d", txn.HeldCount())
	}
	// Re-acquire of held lock in same or weaker mode is a no-op.
	txn.Acquire([]*Lock{&a[0]}, Shared, false)
	txn.Acquire([]*Lock{&a[0]}, Exclusive, false)
	txn.ReleaseAll()
}

func TestTxnSortsBatch(t *testing.T) {
	arr := NewArray(0, 2, rel.NewKey(), 8)
	txn := NewTxn()
	// Deliberately unsorted batch must be fine.
	txn.Acquire([]*Lock{&arr[5], &arr[1], &arr[3]}, Exclusive, false)
	txn.ReleaseAll()
}

func TestTxnOrderViolationPanics(t *testing.T) {
	a := NewArray(0, 0, rel.NewKey(), 1)
	b := NewArray(0, 1, rel.NewKey(), 1)
	txn := NewTxn()
	txn.Acquire([]*Lock{&b[0]}, Exclusive, false)
	defer func() {
		txn.ReleaseAll()
		if recover() == nil {
			t.Fatal("expected order-violation panic")
		}
	}()
	txn.Acquire([]*Lock{&a[0]}, Exclusive, false) // node 0 after node 1
}

func TestTxnUpgradePanics(t *testing.T) {
	a := NewArray(0, 0, rel.NewKey(), 1)
	txn := NewTxn()
	txn.Acquire([]*Lock{&a[0]}, Shared, false)
	defer func() {
		txn.ReleaseAll()
		if recover() == nil {
			t.Fatal("expected upgrade panic")
		}
	}()
	txn.Acquire([]*Lock{&a[0]}, Exclusive, false)
}

func TestTxnTwoPhasePanics(t *testing.T) {
	a := NewArray(0, 0, rel.NewKey(), 1)
	txn := NewTxn()
	txn.Acquire([]*Lock{&a[0]}, Shared, false)
	txn.ReleaseAll()
	defer func() {
		if recover() == nil {
			t.Fatal("expected 2PL panic")
		}
	}()
	txn.Acquire([]*Lock{&a[0]}, Shared, false)
}

func TestTxnPreSortedVerification(t *testing.T) {
	arr := NewArray(0, 0, rel.NewKey(), 4)
	txn := NewTxn()
	defer func() {
		if recover() == nil {
			t.Fatal("expected pre-sorted verification panic")
		}
		txn.ReleaseAll()
	}()
	txn.Acquire([]*Lock{&arr[2], &arr[0]}, Shared, true) // lies about sortedness
}

func TestSpeculativeAcquireAbandon(t *testing.T) {
	a := NewArray(0, 0, rel.NewKey(), 2)
	b := NewArray(0, 1, rel.NewKey(7), 1)
	txn := NewTxn()
	txn.Acquire([]*Lock{&a[0]}, Shared, false)
	txn.AcquireSpeculative(&b[0], Exclusive)
	if !txn.Holds(&b[0]) {
		t.Fatal("speculative lock not held")
	}
	txn.Abandon(&b[0])
	if txn.Holds(&b[0]) {
		t.Fatal("abandoned lock still held")
	}
	// After abandoning, a lock with smaller ID than b (but larger than a)
	// can still be taken: the order rolls back.
	txn.Acquire([]*Lock{&a[1]}, Shared, false)
	txn.ReleaseAll()
}

func TestAbandonNonTopPanics(t *testing.T) {
	a := NewArray(0, 0, rel.NewKey(), 2)
	txn := NewTxn()
	txn.Acquire([]*Lock{&a[0], &a[1]}, Shared, false)
	defer func() {
		txn.ReleaseAll()
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	txn.Abandon(&a[0])
}

func TestSharedAllowsParallelReaders(t *testing.T) {
	a := NewArray(0, 0, rel.NewKey(), 1)
	var inside atomic.Int32
	var peak atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			txn := NewTxn()
			txn.Acquire([]*Lock{&a[0]}, Shared, false)
			n := inside.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			inside.Add(-1)
			txn.ReleaseAll()
		}()
	}
	wg.Wait()
	if peak.Load() < 2 {
		t.Fatalf("shared mode never overlapped (peak=%d)", peak.Load())
	}
}

func TestExclusiveExcludes(t *testing.T) {
	a := NewArray(0, 0, rel.NewKey(), 1)
	var inside atomic.Int32
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				txn := NewTxn()
				txn.Acquire([]*Lock{&a[0]}, Exclusive, false)
				if inside.Add(1) != 1 {
					fail <- "two writers inside exclusive section"
				}
				inside.Add(-1)
				txn.ReleaseAll()
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

// TestNoDeadlockUnderInversePatterns exercises the classic deadlock shape:
// two lock sets acquired by many goroutines in *request* orders that would
// deadlock without a global order; ordered acquisition must make it safe.
func TestNoDeadlockUnderInversePatterns(t *testing.T) {
	a := NewArray(0, 0, rel.NewKey(), 1)
	b := NewArray(0, 1, rel.NewKey(), 1)
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					txn := NewTxn()
					// Both orders requested; Acquire sorts them.
					if w%2 == 0 {
						txn.Acquire([]*Lock{&a[0], &b[0]}, Exclusive, false)
					} else {
						txn.Acquire([]*Lock{&b[0], &a[0]}, Exclusive, false)
					}
					txn.ReleaseAll()
				}
			}(w)
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: goroutines did not finish")
	}
}

func TestModeString(t *testing.T) {
	if Shared.String() != "shared" || Exclusive.String() != "exclusive" {
		t.Fatal("Mode.String broken")
	}
}

func TestIDString(t *testing.T) {
	id := ID{Node: 3, Inst: rel.NewKey(1, "a"), Stripe: 2}
	if id.String() != `node3(1, "a")#2` {
		t.Fatalf("ID.String = %s", id.String())
	}
}
