package locks

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/rel"
)

// randIDLock builds a lock with a random identity across the
// (rel, node, inst, stripe) space, instancing single- and two-column keys
// over the integer and string types the decompositions use.
func randIDLock(rng *rand.Rand) *Lock {
	relID := rng.Intn(3)
	node := rng.Intn(4)
	stripe := rng.Intn(3)
	var key rel.Key
	switch rng.Intn(3) {
	case 0:
		key = rel.NewKey()
	case 1:
		key = rel.NewKey(int64(rng.Intn(5)))
	default:
		key = rel.NewKey(int64(rng.Intn(3)), string(byte('a'+rng.Intn(3))))
	}
	arr := NewArray(relID, node, key, stripe+1)
	return &arr[stripe]
}

// TestLockEncodingMatchesCompareIDs quick-checks the load-bearing
// invariant of the byte-encoded lock order: comparing two locks'
// precomputed encodings agrees with CompareIDs on their identities, for
// every combination of relation id, node, instance key and stripe.
func TestLockEncodingMatchesCompareIDs(t *testing.T) {
	sign := func(c int) int {
		switch {
		case c < 0:
			return -1
		case c > 0:
			return 1
		}
		return 0
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		a, b := randIDLock(rng), randIDLock(rng)
		if got, want := sign(bytes.Compare(a.enc, b.enc)), sign(CompareIDs(a.id, b.id)); got != want {
			t.Fatalf("enc order of %v vs %v: bytes %d, CompareIDs %d", a.id, b.id, got, want)
		}
	}
}

// TestLockEncodingRelMajor pins the registry-wide extension: every lock
// of a lower relation id precedes every lock of a higher one, regardless
// of node, instance or stripe.
func TestLockEncodingRelMajor(t *testing.T) {
	lo := NewArray(1, 9, rel.NewKey("zzz", int64(1<<40)), 4)
	hi := NewArray(2, 0, rel.NewKey(), 1)
	for i := range lo {
		if bytes.Compare(lo[i].enc, hi[0].enc) >= 0 {
			t.Fatalf("lock %v does not precede %v in the encoded order", lo[i].id, hi[0].id)
		}
		if CompareIDs(lo[i].id, hi[0].id) >= 0 {
			t.Fatalf("CompareIDs does not order %v before %v", lo[i].id, hi[0].id)
		}
	}
}
