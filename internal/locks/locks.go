// Package locks implements the locking substrate of §§4.2–4.5 and §5.1 of
// "Concurrent Data Representation Synthesis" (PLDI 2012): physical
// shared/exclusive locks attached to decomposition node instances, a global
// total lock order guaranteeing deadlock freedom, a two-phase-locking
// transaction tracker, and lock placements (including striped and
// speculative placements) mapping the logical lock of every decomposition
// edge instance onto a physical lock.
package locks

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/rel"
)

// Mode is the access mode of a lock: Shared for transactions that observe
// the state of protected edges, Exclusive for transactions that change it
// (§4.2).
type Mode int

const (
	// Shared access permits concurrent holders.
	Shared Mode = iota
	// Exclusive access excludes all other holders.
	Exclusive
)

// String renders the mode as "shared" or "exclusive".
func (m Mode) String() string {
	if m == Exclusive {
		return "exclusive"
	}
	return "shared"
}

// ID identifies a physical lock and defines the global total order of
// §5.1, extended registry-wide: first the registering relation's id, then
// a topological sort of the decomposition nodes the locks belong to, then
// the lexicographic order of the node-instance key, then the stripe
// number. Cross-relation transactions acquire in this order, so the
// deadlock-freedom argument of §5.1 carries over to batches spanning any
// set of registered relations.
type ID struct {
	// Rel is the id the registry assigned the relation at Synthesize time
	// (0 for relations synthesized outside a registry, which never share a
	// transaction).
	Rel int
	// Node is the topological index of the decomposition node.
	Node int
	// Inst is the node-instance key: the valuation of the node's bound
	// columns A in sorted column order (empty for the root).
	Inst rel.Key
	// Stripe is the index of the physical lock within the instance's
	// stripe array (§4.4).
	Stripe int
}

// CompareIDs orders lock IDs by (Rel, Node, Inst, Stripe).
func CompareIDs(a, b ID) int {
	switch {
	case a.Rel != b.Rel:
		if a.Rel < b.Rel {
			return -1
		}
		return 1
	case a.Node != b.Node:
		if a.Node < b.Node {
			return -1
		}
		return 1
	}
	if c := rel.CompareKeys(a.Inst, b.Inst); c != 0 {
		return c
	}
	switch {
	case a.Stripe < b.Stripe:
		return -1
	case a.Stripe > b.Stripe:
		return 1
	default:
		return 0
	}
}

// String renders the ID as "node3(1, "a")#0", prefixed "rel1." when the
// lock belongs to a registered relation.
func (id ID) String() string {
	if id.Rel != 0 {
		return fmt.Sprintf("rel%d.node%d%s#%d", id.Rel, id.Node, id.Inst, id.Stripe)
	}
	return fmt.Sprintf("node%d%s#%d", id.Node, id.Inst, id.Stripe)
}

// Lock is a physical lock: a shared/exclusive mutex plus its identity in
// the global order, plus the epoch cell of the optimistic read protocol.
// Locks are embedded in node instances and must not be copied after first
// use.
type Lock struct {
	mu sync.RWMutex
	id ID
	// enc is the order-preserving byte encoding of id, precomputed once:
	// bytes.Compare(a.enc, b.enc) == CompareIDs(a.id, b.id), so every
	// growing-phase sort and order assertion is a memcmp instead of a
	// dynamic key walk.
	enc []byte
	// epoch is the seqlock-style version cell read-only transactions
	// validate against instead of taking the lock shared (readset.go). It
	// is only ever modified by a transaction holding the lock exclusively:
	// +1 before the holder's first protected write (odd = write in flight),
	// +1 again before the lock is released (even = quiescent). A lock-free
	// reader therefore observed a stable state iff the epoch it recorded
	// before reading is even and unchanged when it validates.
	epoch atomic.Uint64
}

// encodeIDPrefix appends the order-preserving encoding of the ID fields
// shared by a whole stripe array: (rel, node, inst). Rel, Node and (in
// NewArray) Stripe are small non-negative ints, so a 4-byte big-endian
// field preserves their order; Inst uses the rel package's ordered value
// encoding.
func encodeIDPrefix(dst []byte, relID, node int, inst rel.Key) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(relID))
	dst = binary.BigEndian.AppendUint32(dst, uint32(node))
	return rel.AppendOrderedKey(dst, inst)
}

// NewArray allocates the stripe array of physical locks for one node
// instance of the relation registered as relID: n locks ordered
// consecutively at (relID, nodeIndex, inst, 0..n-1). NewArray runs on
// the insert hot path (one call per new node instance), so the shared
// (rel, node, inst) encoding prefix is built in a stack buffer and all n
// per-stripe encodings share one backing array.
func NewArray(relID, nodeIndex int, inst rel.Key, n int) []Lock {
	ls := make([]Lock, n)
	var pbuf [64]byte
	prefix := encodeIDPrefix(pbuf[:0], relID, nodeIndex, inst)
	buf := make([]byte, 0, n*(len(prefix)+4))
	for i := range ls {
		ls[i].id = ID{Rel: relID, Node: nodeIndex, Inst: inst, Stripe: i}
		off := len(buf)
		buf = append(buf, prefix...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(i))
		ls[i].enc = buf[off:len(buf):len(buf)]
	}
	return ls
}

// ID returns the lock's identity.
func (l *Lock) ID() ID { return l.id }

// Epoch returns the lock's epoch cell. Even values mean no protected write
// is in flight; see Lock.epoch and ReadSet.
func (l *Lock) Epoch() uint64 { return l.epoch.Load() }

// EpochOdd reports whether a protected write is in flight under this lock
// (the epoch cell's begin-bump has happened but not its end-bump).
func (l *Lock) EpochOdd() bool { return l.epoch.Load()&1 == 1 }

// BumpEpoch increments the epoch cell by one. The caller must hold the
// lock exclusively — the cell is a seqlock sequence word, and only the
// exclusive holder may move it — and must bump an even number of times in
// total before releasing: once before its first protected write (marking
// the write in flight) and once when done (restoring evenness). The
// executor in internal/core pairs the bumps around every mutation's write
// phase, including undo-log rollback.
func (l *Lock) BumpEpoch() { l.epoch.Add(1) }

// compareLocks orders two locks by their precomputed ID encodings — the
// hot-path equivalent of CompareIDs on the lock identities.
func compareLocks(a, b *Lock) int { return bytes.Compare(a.enc, b.enc) }

func (l *Lock) lock(m Mode) {
	if m == Exclusive {
		l.mu.Lock()
	} else {
		l.mu.RLock()
	}
}

func (l *Lock) unlock(m Mode) {
	if m == Exclusive {
		l.mu.Unlock()
	} else {
		l.mu.RUnlock()
	}
}

// Txn tracks the physical locks held by one transaction and enforces the
// protocol that makes transactions serializable and deadlock-free by
// construction:
//
//   - two-phase (§4.2): all acquisitions precede all releases; acquiring
//     after ReleaseAll panics (it is a compiler bug, not a user error);
//   - ordered (§5.1): every acquisition must be for a lock strictly after
//     every currently held lock in the global ID order, except for
//     re-acquisition of an already-held lock, which is deduplicated;
//   - speculative acquisitions (§4.5) may be individually abandoned
//     (released) before being relied upon, which is the one permitted
//     departure from physical two-phasedness; the paper shows the
//     transaction is still logically two-phase.
type Txn struct {
	// held is sorted ascending by lock ID (ordered acquisition maintains
	// this), so membership tests are binary searches and no auxiliary set
	// is needed.
	held      []heldLock
	shrinking bool
}

type heldLock struct {
	l    *Lock
	mode Mode
}

// NewTxn returns an empty transaction.
func NewTxn() *Txn {
	return &Txn{}
}

// Reset returns the transaction to its initial state (retaining the held
// buffer) so it can be pooled. All locks must have been released.
func (t *Txn) Reset() {
	if len(t.held) != 0 {
		panic("locks: Reset with locks still held")
	}
	t.shrinking = false
}

// maxHeld returns the largest held lock, or nil if none is held.
func (t *Txn) maxHeld() *Lock {
	if len(t.held) == 0 {
		return nil
	}
	return t.held[len(t.held)-1].l
}

// findHeld binary-searches the sorted held list for a lock with l's ID,
// returning its index and whether the same lock object is held.
func (t *Txn) findHeld(l *Lock) (int, bool) {
	lo, hi := 0, len(t.held)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.held[mid].l.enc, l.enc) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(t.held) && t.held[lo].l == l
}

// Holds reports whether the transaction currently holds l (in any mode).
func (t *Txn) Holds(l *Lock) bool {
	_, ok := t.findHeld(l)
	return ok
}

// HoldsExclusive reports whether the transaction currently holds l in
// Exclusive mode — the precondition for bumping l's epoch cell.
func (t *Txn) HoldsExclusive(l *Lock) bool {
	idx, ok := t.findHeld(l)
	return ok && t.held[idx].mode == Exclusive
}

// BeginWriteEpochs begin-bumps (makes odd) the epoch cell of every lock
// in the stripe array arr that the transaction holds exclusively and has
// not already bumped, appending the bumped locks to out and returning it;
// the caller must end-bump each before release. It is the writer half of
// the optimistic read protocol, called before a transaction's container
// writes on arr's instance. A stripe array is contiguous in the global
// lock order (same (rel, node, inst) prefix), so the held locks of the
// instance form one run of the sorted held list: one binary search plus a
// bounded scan, instead of probing all k stripes of a striped node.
func (t *Txn) BeginWriteEpochs(arr []Lock, out []*Lock) []*Lock {
	if len(t.held) == 0 || len(arr) == 0 {
		return out
	}
	lo, _ := t.findHeld(&arr[0])
	last := arr[len(arr)-1].enc
	for i := lo; i < len(t.held); i++ {
		h := &t.held[i]
		if bytes.Compare(h.l.enc, last) > 0 {
			break
		}
		if h.mode != Exclusive || h.l.EpochOdd() {
			continue
		}
		h.l.BumpEpoch()
		out = append(out, h.l)
	}
	return out
}

// HeldCount returns the number of distinct physical locks held.
func (t *Txn) HeldCount() int { return len(t.held) }

// Acquire takes every lock in batch in mode m, honoring the global order.
// The batch is sorted by ID unless preSorted is true (the §5.2
// sort-elision optimization for scans over sorted containers; the order is
// still verified). Locks already held are skipped; requesting Exclusive on
// a lock held Shared panics, because upgrades can deadlock and the planner
// must have requested the stronger mode up front.
func (t *Txn) Acquire(batch []*Lock, m Mode, preSorted bool) {
	if t.shrinking {
		panic("locks: acquire after release violates two-phase locking")
	}
	if len(batch) == 0 {
		return
	}
	if len(batch) > 1 {
		if !preSorted {
			sort.Slice(batch, func(i, j int) bool { return compareLocks(batch[i], batch[j]) < 0 })
		} else {
			for i := 1; i < len(batch); i++ {
				if compareLocks(batch[i-1], batch[i]) > 0 {
					panic(fmt.Sprintf("locks: batch marked pre-sorted but %v > %v", batch[i-1].id, batch[i].id))
				}
			}
		}
	}
	for i, l := range batch {
		if i > 0 && batch[i-1] == l {
			continue // duplicate within batch
		}
		if max := t.maxHeld(); max != nil && compareLocks(l, max) <= 0 {
			if idx, held := t.findHeld(l); held {
				if m == Exclusive && t.held[idx].mode == Shared {
					panic(fmt.Sprintf("locks: upgrade from shared to exclusive on %v; planner must request exclusive up front", l.id))
				}
				continue
			}
			panic(fmt.Sprintf("locks: acquisition of %v violates lock order (max held %v)", l.id, max.id))
		}
		l.lock(m)
		t.held = append(t.held, heldLock{l: l, mode: m})
	}
}

// AcquireSpeculative takes a single lock under the speculative protocol of
// §4.5: the order constraint is checked exactly as in Acquire, but the
// caller may subsequently Abandon the lock (if its guess about the heap
// proved wrong) without ending the growing phase. The lock must not be
// already held.
func (t *Txn) AcquireSpeculative(l *Lock, m Mode) {
	if t.shrinking {
		panic("locks: speculative acquire after release violates two-phase locking")
	}
	if t.Holds(l) {
		panic(fmt.Sprintf("locks: speculative acquire of already-held lock %v", l.id))
	}
	if max := t.maxHeld(); max != nil && compareLocks(l, max) <= 0 {
		panic(fmt.Sprintf("locks: speculative acquisition of %v violates lock order (max held %v)", l.id, max.id))
	}
	l.lock(m)
	t.held = append(t.held, heldLock{l: l, mode: m})
}

// Abandon releases a speculatively acquired lock whose guess failed. Only
// the most recently acquired lock may be abandoned (the speculative retry
// loop acquires and validates one lock at a time), which keeps the held
// list sorted.
func (t *Txn) Abandon(l *Lock) {
	n := len(t.held)
	if n == 0 || t.held[n-1].l != l {
		panic("locks: Abandon must release the most recently acquired lock")
	}
	l.unlock(t.held[n-1].mode)
	t.held = t.held[:n-1]
}

// ReleaseAll releases every held lock in reverse acquisition order and
// moves the transaction to the shrinking phase; any later acquisition
// panics.
func (t *Txn) ReleaseAll() {
	for i := len(t.held) - 1; i >= 0; i-- {
		h := t.held[i]
		h.l.unlock(h.mode)
	}
	t.held = t.held[:0]
	t.shrinking = true
}
