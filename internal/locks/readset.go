package locks

import "sort"

// This file implements the read-set of the optimistic read protocol: the
// §4.5 speculative idea — read without the lock, validate afterwards —
// generalized from one edge to a whole read-only transaction. Instead of
// acquiring its plan's physical locks shared, a read-only transaction
// RECORDS each lock's epoch cell where the pessimistic plan would have
// acquired it, performs its container reads lock-free, and finally
// validates that every recorded epoch is even (no protected write was in
// flight) and unchanged (no writer committed under that lock since the
// record). Writers bump the cells of exactly the locks they hold
// exclusively around their write phase (internal/core), so a successful
// validation proves the reads saw the same state a shared-lock execution
// would have — with zero lock acquisitions on the happy path.

// ReadEntry is one recorded observation: a physical lock and the epoch its
// cell held immediately before the reads that lock protects.
type ReadEntry struct {
	L *Lock
	E uint64
}

// ReadSet accumulates epoch observations during an optimistic read-only
// transaction. The zero value is ready to use; Reset recycles the backing
// storage between attempts.
type ReadSet struct {
	entries []ReadEntry
	// stale is set when a recorded epoch was odd at record time: a
	// protected write was already in flight, so the attempt cannot
	// validate no matter what happens later.
	stale bool
	// sorted records that entries are in global lock order (set by the
	// first sorting consumer, cleared by Record/Reset), so Validate
	// followed by Distinct sorts once, not twice.
	sorted bool
}

// Record snapshots l's epoch cell into the set. It must be called BEFORE
// the reads l protects (the plan emits lock steps before the accesses they
// cover, so recording at the acquisition point preserves this order). It
// reports whether the snapshot found the lock quiescent; an odd snapshot
// marks the whole set stale, but execution may continue — the reads are
// safe on concurrency-safe containers, merely doomed to fail validation.
func (s *ReadSet) Record(l *Lock) bool {
	e := l.epoch.Load()
	s.entries = append(s.entries, ReadEntry{L: l, E: e})
	s.sorted = false
	if e&1 == 1 {
		s.stale = true
		return false
	}
	return true
}

// sort puts the entries in the global lock order, once per set: a
// closure-free insertion sort for the typical small set (keeps the
// standalone optimistic read path allocation-free), sort.Slice beyond.
func (s *ReadSet) sort() {
	if s.sorted {
		return
	}
	es := s.entries
	if len(es) <= 16 {
		for i := 1; i < len(es); i++ {
			for j := i; j > 0 && compareLocks(es[j].L, es[j-1].L) < 0; j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
	} else {
		sort.Slice(es, func(i, j int) bool { return compareLocks(es[i].L, es[j].L) < 0 })
	}
	s.sorted = true
}

// Len returns the number of recorded observations (with duplicates: a lock
// recorded by several plan steps appears once per step).
func (s *ReadSet) Len() int { return len(s.entries) }

// Contains reports whether l has been recorded. It is the read-set analog
// of Txn.Holds, used by the well-lockedness auditor to check that every
// lock-free container access is covered by a recorded epoch.
func (s *ReadSet) Contains(l *Lock) bool {
	for i := range s.entries {
		if s.entries[i].L == l {
			return true
		}
	}
	return false
}

// Validate re-reads every recorded epoch cell and reports whether the
// whole read-set is still valid: each recorded epoch was even (quiescent)
// and is unchanged now. Entries are validated in the global lock order —
// the same (relation, node, instance, stripe) order a pessimistic
// transaction acquires in — so the validation pass is deterministic, its
// trace lines up with lock-schedule traces, and a future downgrade path
// (acquiring the read-set shared after repeated failures) can reuse the
// sorted set as its acquisition schedule directly. Validation consumes
// nothing; call Reset before the next attempt.
//
// own, when non-nil, is the self-hold rule of the mixed-batch OCC
// protocol: entries whose lock own reports as held by the validating
// transaction itself (exclusively) are skipped. The transaction's own
// writes begin-bump those cells (making them odd), but mutual exclusion —
// the lock was held from before the record until this validation — already
// proves no OTHER transaction moved the protected state, so the
// transaction's own write activity must not fail its own reads. Read-only
// validation passes own == nil and keeps the strict all-even rule.
func (s *ReadSet) Validate(own func(*Lock) bool) bool {
	if s.stale && own == nil {
		// An odd epoch at record time dooms a lock-free set; with an own
		// filter the per-entry checks below decide, because the stale
		// record may belong to a self-held lock.
		return false
	}
	s.sort()
	es := s.entries
	for i := range es {
		if own != nil && own(es[i].L) {
			continue
		}
		if i > 0 && es[i].L == es[i-1].L {
			// The same lock recorded at two different epochs can never
			// validate; equal records collapse to one re-read.
			if es[i].E != es[i-1].E {
				return false
			}
			continue
		}
		if es[i].E&1 == 1 {
			return false
		}
		if es[i].L.epoch.Load() != es[i].E {
			return false
		}
	}
	return true
}

// Distinct returns the number of distinct physical locks recorded — the
// optimistic analog of a batch's acquired-lock count. The set is sorted
// at most once across Validate and Distinct.
func (s *ReadSet) Distinct() int {
	s.sort()
	es := s.entries
	n := 0
	for i := range es {
		if i == 0 || es[i].L != es[i-1].L {
			n++
		}
	}
	return n
}

// Reset empties the set, retaining capacity.
func (s *ReadSet) Reset() {
	clear(s.entries)
	s.entries = s.entries[:0]
	s.stale = false
	s.sorted = false
}
