package locks

import (
	"testing"

	"repro/internal/rel"
)

func TestReadSetValidateQuiescent(t *testing.T) {
	ls := NewArray(1, 0, rel.KeyOver(nil), 4)
	var s ReadSet
	for i := range ls {
		if !s.Record(&ls[i]) {
			t.Fatalf("record of quiescent lock %d reported stale", i)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if !s.Validate(nil) {
		t.Fatal("validation of untouched epochs failed")
	}
	if s.Distinct() != 4 {
		t.Fatalf("Distinct = %d, want 4", s.Distinct())
	}
}

func TestReadSetDetectsCommittedWrite(t *testing.T) {
	ls := NewArray(1, 0, rel.KeyOver(nil), 2)
	var s ReadSet
	s.Record(&ls[0])
	s.Record(&ls[1])
	// A writer commits under ls[1] between record and validate.
	ls[1].BumpEpoch()
	ls[1].BumpEpoch()
	if s.Validate(nil) {
		t.Fatal("validation passed across a committed write")
	}
	s.Reset()
	s.Record(&ls[0])
	s.Record(&ls[1])
	if !s.Validate(nil) {
		t.Fatal("validation failed after Reset with quiescent epochs")
	}
}

func TestReadSetDetectsInFlightWrite(t *testing.T) {
	ls := NewArray(1, 0, rel.KeyOver(nil), 1)
	ls[0].BumpEpoch() // begin-bump: write in flight
	var s ReadSet
	if s.Record(&ls[0]) {
		t.Fatal("record of an odd epoch reported quiescent")
	}
	if s.Validate(nil) {
		t.Fatal("validation passed over an in-flight write")
	}
	// The write completes; the epoch moved, so the attempt stays invalid.
	ls[0].BumpEpoch()
	if s.Validate(nil) {
		t.Fatal("validation passed after the in-flight write completed")
	}
}

func TestReadSetDuplicateRecordsAtDifferentEpochs(t *testing.T) {
	ls := NewArray(1, 0, rel.KeyOver(nil), 1)
	var s ReadSet
	s.Record(&ls[0])
	ls[0].BumpEpoch()
	ls[0].BumpEpoch()
	s.Record(&ls[0]) // same lock, later epoch: a write landed mid-read
	if s.Validate(nil) {
		t.Fatal("validation passed with two records of one lock at different epochs")
	}
}

// TestReadSetValidateSelfHoldRule covers the mixed-batch OCC exclusion:
// entries whose lock the validating transaction itself holds exclusively
// are skipped, so the transaction's own begin-bumped (odd) cells — and
// cells it moved by a full write cycle — cannot fail its own validation,
// while foreign writes under non-held locks still do.
func TestReadSetValidateSelfHoldRule(t *testing.T) {
	ls := NewArray(1, 0, rel.KeyOver(nil), 3)
	own := func(l *Lock) bool { return l == &ls[0] }
	var s ReadSet
	s.Record(&ls[0])
	s.Record(&ls[1])
	// Our own write begin-bumps ls[0] (odd, in flight).
	ls[0].BumpEpoch()
	if s.Validate(nil) {
		t.Fatal("validation without the own filter passed over an odd cell")
	}
	if !s.Validate(own) {
		t.Fatal("self-held odd cell failed its own transaction's validation")
	}
	// A foreign write commits under ls[1]: even the own filter must fail.
	ls[1].BumpEpoch()
	ls[1].BumpEpoch()
	if s.Validate(own) {
		t.Fatal("own filter masked a foreign committed write")
	}

	// An odd epoch at record time under a self-held lock must not doom the
	// set through the stale flag.
	s.Reset()
	if s.Record(&ls[0]) {
		t.Fatal("record of the in-flight self-held cell reported quiescent")
	}
	s.Record(&ls[2])
	if !s.Validate(own) {
		t.Fatal("stale flag from a self-held record failed validation despite the exclusion")
	}
	if s.Validate(nil) {
		t.Fatal("stale set validated without the own filter")
	}
}

func TestReadSetContains(t *testing.T) {
	ls := NewArray(1, 0, rel.KeyOver(nil), 2)
	var s ReadSet
	s.Record(&ls[0])
	if !s.Contains(&ls[0]) || s.Contains(&ls[1]) {
		t.Fatal("Contains does not reflect recorded locks")
	}
	s.Reset()
	if s.Contains(&ls[0]) {
		t.Fatal("Contains true after Reset")
	}
}

func TestHoldsExclusive(t *testing.T) {
	a := NewArray(1, 0, rel.KeyOver(nil), 1)
	b := NewArray(1, 1, rel.KeyOver(nil), 1)
	txn := NewTxn()
	txn.Acquire([]*Lock{&a[0]}, Shared, false)
	txn.Acquire([]*Lock{&b[0]}, Exclusive, false)
	if txn.HoldsExclusive(&a[0]) {
		t.Fatal("shared hold reported exclusive")
	}
	if !txn.HoldsExclusive(&b[0]) {
		t.Fatal("exclusive hold not reported")
	}
	txn.ReleaseAll()
	if txn.HoldsExclusive(&b[0]) {
		t.Fatal("released lock reported held exclusive")
	}
}

// TestReadSetLargeSort drives the sort.Slice arm of the read-set sort (17+
// entries, recorded in descending lock order) and the duplicate-collapse
// rule on the sorted result.
func TestReadSetLargeSort(t *testing.T) {
	const n = 24
	ls := NewArray(1, 0, rel.KeyOver(nil), n)
	var s ReadSet
	for i := n - 1; i >= 0; i-- {
		s.Record(&ls[i])
	}
	s.Record(&ls[0]) // duplicate at the same epoch: collapses, still valid
	if !s.Validate(nil) {
		t.Fatal("validation of a large quiescent set failed")
	}
	if s.Distinct() != n {
		t.Fatalf("Distinct = %d, want %d", s.Distinct(), n)
	}
}

// TestBeginWriteEpochs pins the writer half of the epoch protocol at the
// locks layer: begin-bumping covers exactly the exclusively held,
// not-yet-odd locks of one stripe array, and a second call (a second
// container write on the same instance) bumps nothing twice.
func TestBeginWriteEpochs(t *testing.T) {
	arr := NewArray(1, 2, rel.KeyOver(nil), 4)
	other := NewArray(1, 1, rel.KeyOver(nil), 1)
	txn := NewTxn()
	txn.Acquire([]*Lock{&other[0]}, Exclusive, false)
	txn.Acquire([]*Lock{&arr[0], &arr[2]}, Exclusive, true)
	txn.Acquire([]*Lock{&arr[3]}, Shared, false)

	var bumped []*Lock
	bumped = txn.BeginWriteEpochs(arr, bumped)
	if len(bumped) != 2 {
		t.Fatalf("bumped %d locks, want 2 (the exclusive holds of this array)", len(bumped))
	}
	for _, l := range []*Lock{&arr[0], &arr[2]} {
		if !l.EpochOdd() {
			t.Fatalf("exclusively held %v not begin-bumped", l.ID())
		}
	}
	if arr[1].Epoch() != 0 || arr[3].Epoch() != 0 {
		t.Fatal("unheld or shared-held stripes were bumped")
	}
	if other[0].Epoch() != 0 {
		t.Fatal("a lock outside the stripe array was bumped")
	}
	// Second write on the same instance: already-odd cells are skipped.
	if again := txn.BeginWriteEpochs(arr, nil); len(again) != 0 {
		t.Fatalf("second begin-bump touched %d locks, want 0", len(again))
	}
	// End-bump and release: everything even, transaction reusable.
	for _, l := range bumped {
		l.BumpEpoch()
	}
	txn.ReleaseAll()
	txn.Reset()
	for i := range arr {
		if arr[i].EpochOdd() {
			t.Fatalf("stripe %d left odd", i)
		}
	}
}
