package locks

import (
	"testing"

	"repro/internal/rel"
)

func TestReadSetValidateQuiescent(t *testing.T) {
	ls := NewArray(1, 0, rel.KeyOver(nil), 4)
	var s ReadSet
	for i := range ls {
		if !s.Record(&ls[i]) {
			t.Fatalf("record of quiescent lock %d reported stale", i)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if !s.Validate() {
		t.Fatal("validation of untouched epochs failed")
	}
	if s.Distinct() != 4 {
		t.Fatalf("Distinct = %d, want 4", s.Distinct())
	}
}

func TestReadSetDetectsCommittedWrite(t *testing.T) {
	ls := NewArray(1, 0, rel.KeyOver(nil), 2)
	var s ReadSet
	s.Record(&ls[0])
	s.Record(&ls[1])
	// A writer commits under ls[1] between record and validate.
	ls[1].BumpEpoch()
	ls[1].BumpEpoch()
	if s.Validate() {
		t.Fatal("validation passed across a committed write")
	}
	s.Reset()
	s.Record(&ls[0])
	s.Record(&ls[1])
	if !s.Validate() {
		t.Fatal("validation failed after Reset with quiescent epochs")
	}
}

func TestReadSetDetectsInFlightWrite(t *testing.T) {
	ls := NewArray(1, 0, rel.KeyOver(nil), 1)
	ls[0].BumpEpoch() // begin-bump: write in flight
	var s ReadSet
	if s.Record(&ls[0]) {
		t.Fatal("record of an odd epoch reported quiescent")
	}
	if s.Validate() {
		t.Fatal("validation passed over an in-flight write")
	}
	// The write completes; the epoch moved, so the attempt stays invalid.
	ls[0].BumpEpoch()
	if s.Validate() {
		t.Fatal("validation passed after the in-flight write completed")
	}
}

func TestReadSetDuplicateRecordsAtDifferentEpochs(t *testing.T) {
	ls := NewArray(1, 0, rel.KeyOver(nil), 1)
	var s ReadSet
	s.Record(&ls[0])
	ls[0].BumpEpoch()
	ls[0].BumpEpoch()
	s.Record(&ls[0]) // same lock, later epoch: a write landed mid-read
	if s.Validate() {
		t.Fatal("validation passed with two records of one lock at different epochs")
	}
}

func TestReadSetContains(t *testing.T) {
	ls := NewArray(1, 0, rel.KeyOver(nil), 2)
	var s ReadSet
	s.Record(&ls[0])
	if !s.Contains(&ls[0]) || s.Contains(&ls[1]) {
		t.Fatal("Contains does not reflect recorded locks")
	}
	s.Reset()
	if s.Contains(&ls[0]) {
		t.Fatal("Contains true after Reset")
	}
}

func TestHoldsExclusive(t *testing.T) {
	a := NewArray(1, 0, rel.KeyOver(nil), 1)
	b := NewArray(1, 1, rel.KeyOver(nil), 1)
	txn := NewTxn()
	txn.Acquire([]*Lock{&a[0]}, Shared, false)
	txn.Acquire([]*Lock{&b[0]}, Exclusive, false)
	if txn.HoldsExclusive(&a[0]) {
		t.Fatal("shared hold reported exclusive")
	}
	if !txn.HoldsExclusive(&b[0]) {
		t.Fatal("exclusive hold not reported")
	}
	txn.ReleaseAll()
	if txn.HoldsExclusive(&b[0]) {
		t.Fatal("released lock reported held exclusive")
	}
}
