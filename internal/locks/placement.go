package locks

import (
	"fmt"
	"strings"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/rel"
)

// Rule maps the logical locks of one decomposition edge onto physical
// locks (§4.3). For a non-speculative rule, the logical lock of edge
// instance uv_t lives on the instance of node At identified by t, in the
// stripe selected by hashing t's StripeBy columns. For a speculative rule
// (§4.5), present edge instances are protected by the (single) lock of the
// *target* node instance, and absent edge instances by a stripe on
// FallbackAt.
type Rule struct {
	// At is the node whose instances carry the lock. It must dominate the
	// edge's source, or equal the edge's target for speculative rules.
	At *decomp.Node
	// StripeBy lists the tuple columns hashed to select a stripe on At
	// (§4.4). Empty means stripe 0. When an access does not bind all
	// StripeBy columns (e.g. a scan), all stripes are taken, which the
	// paper calls conservatively taking all k locks.
	StripeBy []string
	// Speculative marks the §4.5 placement: present edges are locked at
	// the target node instance, absent edges at FallbackAt stripes.
	Speculative bool
	// FallbackAt carries the locks protecting *absent* edge instances of
	// a speculative rule. It must dominate the edge's source.
	FallbackAt *decomp.Node
	// FallbackStripeBy selects the fallback stripe, like StripeBy.
	FallbackStripeBy []string
}

// Placement assigns a Rule to every edge of a decomposition plus a stripe
// count to every node (the size of the physical lock array on each node
// instance). Placements must pass Validate before being used to
// synthesize a relation.
type Placement struct {
	D *decomp.Decomposition
	// Rules is indexed by edge.Index.
	Rules []Rule
	// Stripes is indexed by node.Index; every entry is ≥ 1.
	Stripes []int
}

// NewPlacement returns the fine-grain default placement ψ2 of §4.3: every
// edge protected by a single lock at its source node. Callers then
// override individual edges with Place / PlaceSpeculative / SetStripes.
func NewPlacement(d *decomp.Decomposition) *Placement {
	p := &Placement{
		D:       d,
		Rules:   make([]Rule, len(d.Edges)),
		Stripes: make([]int, len(d.Nodes)),
	}
	for i := range p.Stripes {
		p.Stripes[i] = 1
	}
	for _, e := range d.Edges {
		p.Rules[e.Index] = Rule{At: e.Src}
	}
	return p
}

// Coarse returns the coarse-grain placement ψ1 of §4.3: a single lock at
// the root protects every edge.
func Coarse(d *decomp.Decomposition) *Placement {
	p := NewPlacement(d)
	for i := range p.Rules {
		p.Rules[i] = Rule{At: d.Root}
	}
	return p
}

// FineGrained returns ψ2: each edge protected by one lock at its source.
func FineGrained(d *decomp.Decomposition) *Placement {
	return NewPlacement(d)
}

// Place overrides the rule for edge e: lock at node `at`, striped by the
// given columns.
func (p *Placement) Place(e *decomp.Edge, at *decomp.Node, stripeBy ...string) *Placement {
	p.Rules[e.Index] = Rule{At: at, StripeBy: stripeBy}
	return p
}

// PlaceSpeculative overrides the rule for edge e with the §4.5 speculative
// placement: present entries locked at the edge target, absent entries at
// a stripe of fallbackAt chosen by fallbackStripeBy.
func (p *Placement) PlaceSpeculative(e *decomp.Edge, fallbackAt *decomp.Node, fallbackStripeBy ...string) *Placement {
	p.Rules[e.Index] = Rule{
		At:               e.Dst,
		Speculative:      true,
		FallbackAt:       fallbackAt,
		FallbackStripeBy: fallbackStripeBy,
	}
	return p
}

// SetStripes sets the number of physical locks carried by each instance of
// node n (§4.4's striping factor k).
func (p *Placement) SetStripes(n *decomp.Node, k int) *Placement {
	p.Stripes[n.Index] = k
	return p
}

// Rebase clones placement p onto a structurally identical decomposition
// d2 — typically the output of Decomposition.WithContainers, which
// reassigns container kinds but preserves node and edge order. Every
// rule's placement nodes are remapped by index (names are checked to
// guard against shape drift) and the result is validated, since the new
// container kinds may make a previously legal rule illegal (e.g.
// entry-level striping on a container that is no longer concurrency-safe
// never happens on upgrades, but downgrades exist too). The online
// advisor uses Rebase to carry a tuned placement across a container
// migration.
func Rebase(p *Placement, d2 *decomp.Decomposition) (*Placement, error) {
	d := p.D
	if len(p.Rules) != len(d2.Edges) || len(p.Stripes) != len(d2.Nodes) {
		return nil, fmt.Errorf("locks: Rebase shape mismatch: %d rules / %d edges, %d stripes / %d nodes",
			len(p.Rules), len(d2.Edges), len(p.Stripes), len(d2.Nodes))
	}
	remap := func(n *decomp.Node) (*decomp.Node, error) {
		if n == nil {
			return nil, nil
		}
		m := d2.Nodes[n.Index]
		if m.Name != n.Name {
			return nil, fmt.Errorf("locks: Rebase node order drift: %s vs %s at index %d", n.Name, m.Name, n.Index)
		}
		return m, nil
	}
	q := &Placement{
		D:       d2,
		Rules:   make([]Rule, len(p.Rules)),
		Stripes: append([]int(nil), p.Stripes...),
	}
	for i, r := range p.Rules {
		if i < len(d.Edges) && d.Edges[i].Name != d2.Edges[i].Name {
			return nil, fmt.Errorf("locks: Rebase edge order drift: %s vs %s at index %d", d.Edges[i].Name, d2.Edges[i].Name, i)
		}
		nr := r
		var err error
		if nr.At, err = remap(r.At); err != nil {
			return nil, err
		}
		if nr.FallbackAt, err = remap(r.FallbackAt); err != nil {
			return nil, err
		}
		nr.StripeBy = append([]string(nil), r.StripeBy...)
		nr.FallbackStripeBy = append([]string(nil), r.FallbackStripeBy...)
		q.Rules[i] = nr
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// RuleFor returns the rule protecting edge e.
func (p *Placement) RuleFor(e *decomp.Edge) Rule { return p.Rules[e.Index] }

// StripeCount returns the stripe count of node n.
func (p *Placement) StripeCount(n *decomp.Node) int { return p.Stripes[n.Index] }

// StripeIndex returns the stripe on node `at` selected by tuple t for the
// given stripeBy columns, and whether t binds them all. When it does not,
// the caller must conservatively take all stripes.
func (p *Placement) StripeIndex(at *decomp.Node, stripeBy []string, t rel.Tuple) (int, bool) {
	k := p.Stripes[at.Index]
	if k == 1 || len(stripeBy) == 0 {
		return 0, true
	}
	if !t.HasAll(stripeBy) {
		return 0, false
	}
	return int(t.Key(stripeBy).Hash() % uint64(k)), true
}

// Validate checks the well-formedness conditions of §4.3 plus the
// taxonomy-driven legality constraints of §6.1:
//
//  1. every edge has a rule and every stripe count is ≥ 1;
//  2. domination: a non-speculative rule's At dominates the edge source;
//     a speculative rule's At equals the edge target and its FallbackAt
//     dominates the edge source;
//  3. path-sharing: every edge on a path from the placement node to the
//     protected edge's source is itself protected at that placement node,
//     so the logical→physical mapping is stable while the lock is held;
//  4. stripe selectors only use columns available when the edge is
//     accessed (source-bound columns plus the edge's own columns);
//  5. container legality: striping the entries of a single container
//     across distinct locks (a selector that uses edge columns), and any
//     speculative placement, require a concurrency-safe container;
//     speculative placement additionally requires linearizable unlocked
//     reads (§4.5) and a single-lock target node;
//  6. a concurrency-unsafe container must have all its entries mapped to
//     one lock, which condition 5 guarantees by rejecting entry-level
//     striping for such containers.
func (p *Placement) Validate() error {
	d := p.D
	if len(p.Rules) != len(d.Edges) || len(p.Stripes) != len(d.Nodes) {
		return fmt.Errorf("locks: placement shape mismatch")
	}
	for i, k := range p.Stripes {
		if k < 1 {
			return fmt.Errorf("locks: node %s has stripe count %d", d.Nodes[i].Name, k)
		}
	}
	for _, e := range d.Edges {
		r := p.Rules[e.Index]
		props := container.PropertiesOf(e.Container)
		if r.At == nil {
			return fmt.Errorf("locks: edge %s has no placement", e.Name)
		}
		if r.Speculative {
			if r.At != e.Dst {
				return fmt.Errorf("locks: speculative rule for %s must place the lock at the edge target", e.Name)
			}
			if r.FallbackAt == nil || !d.Dominates(r.FallbackAt, e.Src) {
				return fmt.Errorf("locks: speculative rule for %s needs a fallback node dominating %s", e.Name, e.Src.Name)
			}
			if !props.ConcurrencySafe() || !props.LinearizableReads() {
				return fmt.Errorf("locks: speculative placement on %s requires a concurrency-safe container with linearizable reads, %s is not", e.Name, e.Container)
			}
			if p.Stripes[e.Dst.Index] != 1 {
				return fmt.Errorf("locks: speculative target %s must carry exactly one lock", e.Dst.Name)
			}
			if err := p.checkStripeBy(e, r.FallbackAt, r.FallbackStripeBy, props); err != nil {
				return err
			}
			if err := p.checkPathSharing(e, r.FallbackAt); err != nil {
				return err
			}
			continue
		}
		if !d.Dominates(r.At, e.Src) {
			return fmt.Errorf("locks: placement of %s at %s does not dominate source %s", e.Name, r.At.Name, e.Src.Name)
		}
		if err := p.checkStripeBy(e, r.At, r.StripeBy, props); err != nil {
			return err
		}
		if err := p.checkPathSharing(e, r.At); err != nil {
			return err
		}
	}
	return nil
}

// checkStripeBy validates a stripe selector for edge e placed at node at.
func (p *Placement) checkStripeBy(e *decomp.Edge, at *decomp.Node, stripeBy []string, props container.Properties) error {
	avail := rel.ColsUnion(e.Src.A, e.Cols)
	if !rel.ColsSubset(stripeBy, avail) {
		return fmt.Errorf("locks: stripe selector %v of edge %s uses columns not available at access time (have %v)", stripeBy, e.Name, avail)
	}
	if p.Stripes[at.Index] > 1 {
		// Entry-level striping: distinct entries of one container may be
		// protected by distinct locks iff the selector depends on edge
		// columns beyond the source instance key.
		entryLevel := len(rel.ColsIntersect(stripeBy, rel.ColsMinus(e.Cols, e.Src.A))) > 0
		if entryLevel && !props.ConcurrencySafe() {
			return fmt.Errorf("locks: entry-level striping of edge %s requires a concurrency-safe container, %s is not (Figure 1)", e.Name, props.Kind)
		}
		// With a strict dominator, instances of distinct containers can
		// share or split stripes freely; with selector ⊆ source key all
		// entries of one container share a stripe, which serializes the
		// container and is legal for any kind.
	}
	return nil
}

// checkPathSharing enforces §4.3's second well-formedness condition.
func (p *Placement) checkPathSharing(e *decomp.Edge, at *decomp.Node) error {
	for _, path := range p.D.PathsBetween(at, e.Src) {
		for _, pe := range path {
			r := p.Rules[pe.Index]
			target := r.At
			if r.Speculative {
				target = r.FallbackAt
			}
			if target != at {
				return fmt.Errorf("locks: edge %s on the path from placement %s to %s is placed at %s; all edges between a lock and its protected edge must share the placement",
					pe.Name, at.Name, e.Src.Name, target.Name)
			}
		}
	}
	return nil
}

// String summarizes the placement, e.g. for cmd/crsexplain.
func (p *Placement) String() string {
	var b strings.Builder
	b.WriteString("lock placement:\n")
	for _, e := range p.D.Edges {
		r := p.Rules[e.Index]
		if r.Speculative {
			fmt.Fprintf(&b, "  ψ(%s) = %s if present, %s", e.Name, r.At.Name, r.FallbackAt.Name)
			if len(r.FallbackStripeBy) > 0 {
				fmt.Fprintf(&b, "[hash(%s) mod %d]", strings.Join(r.FallbackStripeBy, ","), p.Stripes[r.FallbackAt.Index])
			}
			b.WriteString(" if absent (speculative)\n")
			continue
		}
		fmt.Fprintf(&b, "  ψ(%s) = %s", e.Name, r.At.Name)
		if p.Stripes[r.At.Index] > 1 {
			if len(r.StripeBy) > 0 {
				fmt.Fprintf(&b, "[hash(%s) mod %d]", strings.Join(r.StripeBy, ","), p.Stripes[r.At.Index])
			} else {
				fmt.Fprintf(&b, "[all %d stripes]", p.Stripes[r.At.Index])
			}
		}
		b.WriteString("\n")
	}
	for _, n := range p.D.Nodes {
		if p.Stripes[n.Index] > 1 {
			fmt.Fprintf(&b, "  stripes(%s) = %d\n", n.Name, p.Stripes[n.Index])
		}
	}
	return b.String()
}
