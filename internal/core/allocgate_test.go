package core

import (
	"testing"

	"repro/internal/container"
	"repro/internal/locks"
	"repro/internal/rel"
)

// TestSteadyStateBatchZeroAllocs is the CI alloc gate on the round-map
// growing phase: once the relation's pooled buffers are warm, a batch of
// prepared already-present inserts plus a prepared count — locks taken
// and released, round maps walked, members applied, results delivered —
// must not allocate. The prepared/row API is the measured surface because
// it is what the batched benchmark drives; the tuple convenience API
// unions tuples per call and is deliberately outside the gate. Slab
// refills (Txn and Pending handles are chunk-allocated, never reused)
// amortize to under one malloc per hundred batches and vanish in
// AllocsPerRun's integer division; anything that survives it is a real
// per-batch allocation creeping into the steady state.
func TestSteadyStateBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate measures the production build")
	}
	if !useRoundMaps {
		t.Fatal("round maps disabled; the gate must measure the default scheduler")
	}
	// The suite-wide well-lockedness auditor allocates its fresh-instance
	// map per batch by design; the gate measures the production
	// configuration, where auditing is off.
	SetAudit(false)
	defer SetAudit(true)
	r := stickRel(t, container.HashMap, container.TreeMap, locks.FineGrained)
	for i := 0; i < 64; i++ {
		if _, err := r.Insert(rel.T("src", i%8, "dst", i), rel.T("weight", i)); err != nil {
			t.Fatal(err)
		}
	}
	ins, err := r.PrepareInsert([]string{"dst", "src"})
	if err != nil {
		t.Fatal(err)
	}
	cq, err := r.PrepareQuery([]string{"src"}, []string{"dst", "weight"})
	if err != nil {
		t.Fatal(err)
	}
	schema := r.Schema()
	iSrc, _ := schema.IndexOf("src")
	iDst, _ := schema.IndexOf("dst")
	iWeight, _ := schema.IndexOf("weight")
	edge := func(buf []rel.Value, src, dst, w int64) rel.Row {
		row := rel.RowOver(buf, 0)
		row.Set(iSrc, src)
		row.Set(iDst, dst)
		row.Set(iWeight, w)
		return row
	}
	var b1, b2, b3 [3]rel.Value
	row1 := edge(b1[:], 1, 9, 9)   // already present: apply is a no-op
	row2 := edge(b2[:], 2, 10, 10) // already present
	cntRow := rel.RowOver(b3[:], 0)
	cntRow.Set(iSrc, 3)
	var pb1, pb2 *Pending[bool]
	var pi *Pending[int]
	fn := func(tx *Txn) error {
		var err error
		if pb1, err = tx.ExecRow(ins, row1); err != nil {
			return err
		}
		if pb2, err = tx.ExecRow(ins, row2); err != nil {
			return err
		}
		pi, err = tx.CountRow(cq, cntRow)
		return err
	}
	run := func() {
		if err := r.Batch(fn); err != nil {
			t.Fatal(err)
		}
		if pb1.Value() || pb2.Value() {
			t.Fatal("duplicate inserts reported success")
		}
		if pi.Value() != 8 {
			t.Fatalf("count = %d, want 8", pi.Value())
		}
	}
	// Warm the pooled buffer: state pool, arenas, member slots, slabs.
	for i := 0; i < 200; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("steady-state batch allocates %.0f objects per run, want 0", avg)
	}
}
