package core

// This file implements the Silo-style OCC commit of MIXED batches —
// groups holding both mutations and reads — on OptimisticCapable
// relations, closing the gap PR 4 left open: a read-only group already
// ran lock-free, but a mixed group (e.g. the social Follow = insert one
// relation + count another) still locked its read members pessimistically
// and could therefore acquire MORE locks than its sequential
// decomposition. The protocol synthesized here is derived from the
// compiled plans, in the spirit of the synchronization-synthesis line of
// work (Locksynth): the batch scheduler already knows exactly which lock
// IDs belong to write members, so the commit splits per batch into
//
//  1. GROWING (write locks only): the ordinary coalesced growing phase
//     runs over the WRITE members alone — their lock sets deduplicated,
//     acquired exclusively in the global byte-compare order. Read members
//     sit this phase out (initBatchMembers parks them at wDone).
//
//  2. READ (lock-free): each read member's compiled plan runs directly
//     with the buffer in optimistic mode (runShardOptimistic): lock steps
//     record epoch cells into the read-set where the pessimistic plan
//     would have acquired shared locks, speculative steps record their
//     targets' epochs. Reads may traverse instances the batch itself
//     write-locked — the auditor accepts either coverage (audit.go).
//
//  3. APPLY (undo-logged staging): members compute their results in
//     enqueue order under the held locks (computeMember): mutations write
//     — begin-bumping the epoch cells of the locks they hold exclusively,
//     recording every displaced binding in the undo log — and read
//     members overlapping an earlier mutation re-execute so the group
//     keeps sequential semantics. Nothing is delivered yet.
//
//  4. VALIDATE: the read-set is checked in the global lock order — every
//     recorded epoch even and unchanged — EXCLUDING locks the batch
//     itself holds exclusively (the self-hold rule: those cells are odd
//     because of our own begin-bumps, and mutual exclusion from before
//     the record until now already proves no other transaction moved
//     them). Success delivers every member's staged result (pendings,
//     yields) and commits. Failure rolls the undo log back, end-bumps the
//     begin-bumped cells (the state is genuinely restored, so concurrent
//     readers may validate against it again), and retries phases 2–4.
//
//  5. FALLBACK: after optimisticMaxAttempts failed validations the write
//     locks are released, the lock transaction reset, and the whole batch
//     re-runs under ordinary pessimistic 2PL (commitBatch/commitTxn),
//     which cannot starve — results never depend on the path taken.
//
// The serialization point of a successful OCC commit is its validation
// instant: the write locks are held across it (writes are "current"
// there), and the validated epochs prove every lock-free read observed
// exactly the state a shared-lock execution would have observed at that
// instant. Deadlock freedom is unchanged: phase 1 is the ordered growing
// phase, phases 2–4 block on nothing, and the fallback starts a fresh
// ordered acquisition from an empty lock set.

// occEligible reports whether one shard can join an OCC commit: the
// relation's containers are all concurrency-safe (lock-free reads racing
// writers would be data races otherwise).
func occEligible(sh *txnShard) bool { return sh.r.optimisticOK }

// commitOCC attempts the Silo-style commit of a mixed single-relation
// batch, reporting success. It declines (false, nothing executed) unless
// the batch holds both mutations and reads on an OptimisticCapable
// relation; after declining or exhausting its attempts the caller must
// run the pessimistic commitBatch — the buffer has been reset for it. A
// non-nil error is a commit-logger failure (redo.go): the attempt's
// writes were rolled back and the caller must surface the error rather
// than fall back — the disk, not contention, rejected the batch.
func (r *Relation) commitOCC(t *Txn, sh *txnShard) (bool, error) {
	if !occEligible(sh) || sh.firstMut < 0 || !sh.hasRead {
		return false, nil
	}
	b := sh.b
	if tr := t.trace; tr != nil {
		tr.OCC = true
	}
	b.occ = true
	r.initBatchMembers(b)
	r.growBatch(t, b) // write members only: coalesced exclusive locks in global order
	mark := b.n       // write members' retained states end here; read/apply states are per-attempt
	for attempt := 0; attempt < optimisticMaxAttempts; attempt++ {
		if attempt > 0 {
			optimisticBackoff(attempt)
			r.ctr.occRetries.Add(1)
		}
		if tr := t.trace; tr != nil {
			tr.Attempts++
		}
		b.n = mark
		r.runShardOptimistic(b)
		if hook := optimisticValidateHook; hook != nil {
			hook(attempt)
		}
		ok, err := r.occApply(b, sh.firstMut, func() {
			if tr := t.trace; tr != nil {
				tr.EpochsRecorded += b.reads.Len()
				tr.EpochsDistinct += b.reads.Distinct()
			}
			for i := range b.members {
				r.deliverMember(b, &b.members[i])
			}
		})
		if err != nil {
			// Logging failure, not a validation conflict: the writes were
			// rolled back and the epochs end-bumped; putBuf (in batch)
			// releases the write locks. No pessimistic fallback — retrying
			// against a failed log would just fail again.
			return false, err
		}
		if ok {
			b.occ = false
			return true, nil
		}
	}
	r.occFallback(t, b)
	return false, nil
}

// occApply runs one OCC attempt's apply-and-validate step: every member
// computes its staged result under the undo log (mutations write,
// overlapping reads re-execute), then the read-set is validated under the
// self-hold rule, and on success the batch's redo record is appended
// (commit point, redo.go) before deliver runs — still under the undo log,
// so a panicking yield callback unwinds the whole batch all-or-nothing
// exactly like the pessimistic apply phase. On validation failure the
// writes are rolled back and the begin-bumped epoch cells end-bumped —
// the representation is restored, so leaving them odd would wrongly doom
// concurrent readers — and the next attempt starts from a clean slate; a
// logging failure rolls back the same way but returns the error. A
// panic rolls back and unwinds; putBuf's finishEpochs/ReleaseAll complete
// the shrink.
func (r *Relation) occApply(b *opBuf, firstMut int, deliver func()) (ok bool, err error) {
	b.apply = true
	undo := &b.undoPool // buffer-resident: a stack undoLog would escape via b.undo
	undo.recs = undo.recs[:0]
	b.undo = undo
	defer func() {
		b.undo = nil
		b.apply = false
		if p := recover(); p != nil {
			undo.rollback()
			panic(p)
		}
		clear(undo.recs)
		undo.recs = undo.recs[:0]
	}()
	for i := range b.members {
		if !b.rounds {
			// Detach the ping-pong arrays before every compute: staged query
			// states must survive until post-validation delivery, so no later
			// member's pipeline may alias their backing array. (Round-mode
			// recomputation runs on member-owned arrays; the shared pair only
			// serves applyInsert/applyRemove transients, which nothing
			// retains.)
			b.pipe, b.spare = nil, nil
		}
		r.computeMember(b, &b.members[i], i, firstMut)
	}
	if b.reads.Validate(b.txn.HoldsExclusive) {
		// Commit point: validation succeeded, write locks held, nothing
		// delivered yet — exactly where a replayed prefix must cut.
		if lg, tp := r.commitLogger(), r.commitTap(); lg != nil || tp != nil {
			ops := r.shardRedo(b)
			if lg != nil && ops != nil {
				if lerr := lg.LogCommit(ops); lerr != nil {
					undo.rollback()
					b.finishEpochs()
					return false, lerr
				}
			}
			// Migration tap: durable commits only, under the held write
			// locks (migrate.go).
			if tp != nil && ops != nil {
				tp.record(ops)
			}
		}
		deliver()
		return true, nil
	}
	undo.rollback()
	b.finishEpochs()
	return false, nil
}

// occFallbackTrace marks the trace fallen-back and clears the
// lock-schedule fields the pessimistic rerun re-records (Attempts,
// FellBack and OCC are kept — they describe the failed attempt history).
func occFallbackTrace(t *Txn) {
	if tr := t.trace; tr != nil {
		tr.FellBack = true
		tr.Rounds = tr.Rounds[:0]
		tr.Requested, tr.Acquired, tr.Speculative, tr.SharedAcquired = 0, 0, 0, 0
	}
}

// occResetBuf returns one shard buffer from OCC mode to a clean slate for
// the pessimistic rerun: mode flag off, read-set emptied, state pool
// floor back to zero.
func occResetBuf(b *opBuf) {
	b.occ = false
	b.reads.Reset()
	b.n = 0
}

// occFallback abandons the OCC attempt sequence: the held write locks are
// released (the pessimistic growing phase re-acquires read members' locks,
// which may precede them in the global order, so the transaction must
// restart from an empty lock set), the lock-schedule trace fields are
// cleared (the pessimistic rerun re-records them), and the buffer is
// reset for commitBatch/commitTxn. The failed attempts' writes were all
// rolled back and their epoch cells end-bumped, so releasing here exposes
// exactly the pre-batch state.
func (r *Relation) occFallback(t *Txn, b *opBuf) {
	r.ctr.occFallbacks.Add(1)
	occFallbackTrace(t)
	occResetBuf(b)
	b.txn.ReleaseAll()
	b.txn.Reset()
}

// commitOCC attempts the Silo-style commit of a mixed registry batch:
// shard growing phases (write members only) run in relation-id order on
// the shared lock transaction, read members run lock-free per shard, one
// undo log spans every shard's apply, and validation walks the shards in
// relation-id order — so the validation pass follows the registry-wide
// global lock order exactly as the read-only path does. Any shard on a
// non-capable relation vetoes the whole batch (false, nothing executed).
// A non-nil error is a commit-logger failure, surfaced without falling
// back (see the single-relation commitOCC).
func (g *Registry) commitOCC(t *Txn) (bool, error) {
	hasRead, hasMut := false, false
	for _, sh := range t.multi.shards {
		if !occEligible(sh) {
			return false, nil
		}
		if sh.hasRead {
			hasRead = true
		}
		if sh.firstMut >= 0 {
			hasMut = true
		}
	}
	if !hasRead || !hasMut {
		return false, nil
	}
	if tr := t.trace; tr != nil {
		tr.OCC = true
	}
	for _, sh := range t.multi.shards {
		sh.b.occ = true
		sh.r.initBatchMembers(sh.b)
	}
	for _, sh := range t.multi.shards { // shards pre-sorted by relation id (Registry.batch)
		sh.r.growBatch(t, sh.b)
		sh.mark = sh.b.n
	}
	for attempt := 0; attempt < optimisticMaxAttempts; attempt++ {
		if attempt > 0 {
			optimisticBackoff(attempt)
			g.ctr.occRetries.Add(1)
		}
		if tr := t.trace; tr != nil {
			tr.Attempts++
		}
		for _, sh := range t.multi.shards {
			sh.b.n = sh.mark
			sh.r.runShardOptimistic(sh.b)
		}
		if hook := optimisticValidateHook; hook != nil {
			hook(attempt)
		}
		ok, err := g.occApply(t, func() {
			if tr := t.trace; tr != nil {
				for _, sh := range t.multi.shards {
					tr.EpochsRecorded += sh.b.reads.Len()
					tr.EpochsDistinct += sh.b.reads.Distinct()
				}
			}
			for _, ref := range t.multi.order {
				ref.sh.r.deliverMember(ref.sh.b, &ref.sh.b.members[ref.idx])
			}
		})
		if err != nil {
			// Logging failure: writes rolled back, epochs end-bumped; the
			// deferred shrink in Registry.batch releases the locks.
			return false, err
		}
		if ok {
			for _, sh := range t.multi.shards {
				sh.b.occ = false
			}
			return true, nil
		}
	}
	g.ctr.occFallbacks.Add(1)
	occFallbackTrace(t)
	for _, sh := range t.multi.shards {
		occResetBuf(sh.b)
	}
	t.ltxn.ReleaseAll()
	t.ltxn.Reset()
	return false, nil
}

// occApply is the registry counterpart of Relation.occApply: one undo log
// spans every shard, members compute in global enqueue order, every
// shard's read-set must validate (in relation-id = global lock order)
// under the shared transaction's self-hold rule, the redo record is
// appended at the post-validation commit point (redo.go), and deliver
// runs under the undo log so a panicking yield unwinds every relation's
// writes.
func (g *Registry) occApply(t *Txn, deliver func()) (ok bool, err error) {
	var undo undoLog
	for _, sh := range t.multi.shards {
		sh.b.apply = true
		sh.b.undo = &undo
	}
	defer func() {
		for _, sh := range t.multi.shards {
			sh.b.undo = nil
			sh.b.apply = false
		}
		if p := recover(); p != nil {
			undo.rollback()
			panic(p)
		}
	}()
	for pos, ref := range t.multi.order {
		if registryApplyHook != nil {
			registryApplyHook(ref.sh.r.name, pos)
		}
		if !ref.sh.b.rounds {
			ref.sh.b.pipe, ref.sh.b.spare = nil, nil
		}
		ref.sh.r.computeMember(ref.sh.b, &ref.sh.b.members[ref.idx], ref.idx, ref.sh.firstMut)
	}
	valid := true
	for _, sh := range t.multi.shards {
		if !sh.b.reads.Validate(t.ltxn.HoldsExclusive) {
			valid = false
			break
		}
	}
	if valid {
		// Commit point: every shard validated, all locks held, nothing
		// delivered yet (see redo.go).
		if lg, tp := g.logger, g.tap.Load(); lg != nil || tp != nil {
			ops := t.registryRedo()
			if lg != nil && ops != nil {
				if lerr := lg.LogCommit(ops); lerr != nil {
					undo.rollback()
					for _, sh := range t.multi.shards {
						sh.b.finishEpochs()
					}
					return false, lerr
				}
			}
			// Migration tap: durable commits only, under the held locks
			// (migrate.go).
			if tp != nil && ops != nil {
				tp.record(ops)
			}
		}
		deliver()
		return true, nil
	}
	undo.rollback()
	for _, sh := range t.multi.shards {
		sh.b.finishEpochs()
	}
	return false, nil
}
