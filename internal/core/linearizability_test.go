package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/linearize"
	"repro/internal/rel"
)

// recordHistory runs `clients` goroutines, each issuing `opsPerClient`
// random operations on r over a tiny key space (to force conflicts), and
// returns the timestamped history.
func recordHistory(t *testing.T, r *Relation, clients, opsPerClient int, seed int64) []linearize.Operation {
	t.Helper()
	base := time.Now()
	var mu sync.Mutex
	var history []linearize.Operation
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for i := 0; i < opsPerClient; i++ {
				src, dst := rng.Intn(2), rng.Intn(2)
				var op linearize.Operation
				start := time.Since(base).Nanoseconds()
				switch rng.Intn(4) {
				case 0:
					s, tt := rel.T("src", src, "dst", dst), rel.T("weight", rng.Intn(3))
					ok, err := r.Insert(s, tt)
					if err != nil {
						t.Errorf("insert: %v", err)
						return
					}
					op = linearize.Operation{Client: c, Kind: "insert", Args: []any{s, tt}, Ret: ok}
				case 1:
					s := rel.T("src", src, "dst", dst)
					ok, err := r.Remove(s)
					if err != nil {
						t.Errorf("remove: %v", err)
						return
					}
					op = linearize.Operation{Client: c, Kind: "remove", Args: []any{s}, Ret: ok}
				case 2:
					s := rel.T("src", src)
					out := []string{"dst", "weight"}
					res, err := r.Query(s, out...)
					if err != nil {
						t.Errorf("query: %v", err)
						return
					}
					op = linearize.Operation{Client: c, Kind: "query", Args: []any{s, out}, Ret: res}
				default:
					s := rel.T("dst", dst)
					out := []string{"src", "weight"}
					res, err := r.Query(s, out...)
					if err != nil {
						t.Errorf("query: %v", err)
						return
					}
					op = linearize.Operation{Client: c, Kind: "query", Args: []any{s, out}, Ret: res}
				}
				op.Start = start
				op.End = time.Since(base).Nanoseconds()
				mu.Lock()
				history = append(history, op)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	return history
}

// TestLinearizabilityOfSynthesizedRelations model-checks real concurrent
// histories from every representation variant against the sequential
// specification of §2 — the paper's central correctness claim.
func TestLinearizabilityOfSynthesizedRelations(t *testing.T) {
	rounds := 25
	if testing.Short() {
		rounds = 5
	}
	forEachVariant(t, func(t *testing.T, r *Relation) {
		for round := 0; round < rounds; round++ {
			// Fresh relation per round so histories stay small enough for
			// exhaustive checking.
			h := recordHistory(t, r, 3, 3, int64(round*1000))
			if !linearize.Check(linearize.RelationModel(), h) {
				t.Fatalf("round %d: history not linearizable:\n%v", round, h)
			}
			// Reset the relation for the next round.
			snap, err := r.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			for _, tu := range snap {
				if _, err := r.Remove(tu.Project([]string{"src", "dst"})); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
}
