package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rel"
)

// These tests cover the schema-compiled row pipeline: the prepared row
// API (ExecRow / ExecRows / CountRow) must agree with the sequential
// reference under randomized operation sequences, and must be safe for
// heavy concurrent use (run the package with -race).

// rowGraph bundles the prepared row operations over one graph relation.
type rowGraph struct {
	r                   *Relation
	succ, pred, point   *PreparedQuery
	ins                 *PreparedInsert
	rem                 *PreparedRemove
	iSrc, iDst, iWeight int
}

func newRowGraph(t *testing.T, r *Relation) *rowGraph {
	t.Helper()
	g := &rowGraph{r: r}
	var err error
	if g.succ, err = r.PrepareQuery([]string{"src"}, []string{"dst", "weight"}); err != nil {
		t.Fatal(err)
	}
	if g.pred, err = r.PrepareQuery([]string{"dst"}, []string{"src", "weight"}); err != nil {
		t.Fatal(err)
	}
	if g.point, err = r.PrepareQuery([]string{"src", "dst"}, []string{"weight"}); err != nil {
		t.Fatal(err)
	}
	if g.ins, err = r.PrepareInsert([]string{"dst", "src"}); err != nil {
		t.Fatal(err)
	}
	if g.rem, err = r.PrepareRemove([]string{"dst", "src"}); err != nil {
		t.Fatal(err)
	}
	s := r.Schema()
	g.iSrc, g.iDst, g.iWeight = s.MustIndex("src"), s.MustIndex("dst"), s.MustIndex("weight")
	return g
}

func (g *rowGraph) insert(src, dst, w int) (bool, error) {
	row := g.r.Schema().NewRow()
	row.Set(g.iSrc, src)
	row.Set(g.iDst, dst)
	row.Set(g.iWeight, w)
	return g.ins.ExecRow(row)
}

func (g *rowGraph) remove(src, dst int) (bool, error) {
	row := g.r.Schema().NewRow()
	row.Set(g.iSrc, src)
	row.Set(g.iDst, dst)
	return g.rem.ExecRow(row)
}

// successors collects (dst, weight) pairs through ExecRows and returns
// them as sorted tuples for comparison with the reference.
func (g *rowGraph) successors(src int) ([]rel.Tuple, error) {
	row := g.r.Schema().NewRow()
	row.Set(g.iSrc, src)
	var out []rel.Tuple
	err := g.succ.ExecRows(row, func(res rel.Row) bool {
		// Yielded rows are pooled: materialize inside the callback.
		out = append(out, rel.T("dst", res.At(g.iDst), "weight", res.At(g.iWeight)))
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

func (g *rowGraph) countSucc(src int) (int, error) {
	row := g.r.Schema().NewRow()
	row.Set(g.iSrc, src)
	return g.succ.CountRow(row)
}

func (g *rowGraph) countPred(dst int) (int, error) {
	row := g.r.Schema().NewRow()
	row.Set(g.iDst, dst)
	return g.pred.CountRow(row)
}

// TestQuickRowPathRefinesReference is the row-pipeline analog of
// TestQuickSynthesizedRefinesReference: random operation sequences issued
// through the prepared row API behave exactly like the §2 reference.
func TestQuickRowPathRefinesReference(t *testing.T) {
	variants := graphVariants()
	for _, name := range []string{"stick/fine/tree+tree", "stick/striped/chm+hash", "diamond/speculative"} {
		var v *variant
		for i := range variants {
			if variants[i].name == name {
				v = &variants[i]
			}
		}
		if v == nil {
			t.Fatalf("variant %s missing", name)
		}
		t.Run(name, func(t *testing.T) {
			f := func(ops graphOps) bool {
				r := v.build(t)
				g := newRowGraph(t, r)
				ref := NewReference(graphSpec())
				for _, op := range ops {
					src, dst := int(op.Src), int(op.Dst)
					key := rel.T("src", src, "dst", dst)
					switch op.Kind {
					case 0, 1:
						got, err := g.insert(src, dst, int(op.Weight))
						if err != nil {
							return false
						}
						want, _ := ref.Insert(key, rel.T("weight", int(op.Weight)))
						if got != want {
							return false
						}
					case 2:
						got, err := g.remove(src, dst)
						if err != nil {
							return false
						}
						want, _ := ref.Remove(key)
						if got != want {
							return false
						}
					case 3:
						got, err := g.successors(src)
						if err != nil {
							return false
						}
						want, _ := ref.Query(rel.T("src", src), "dst", "weight")
						if !tuplesEqual(got, want) {
							return false
						}
					default:
						n, err := g.countSucc(src)
						if err != nil {
							return false
						}
						want, _ := ref.Query(rel.T("src", src), "dst", "weight")
						if n != len(want) {
							return false
						}
					}
				}
				wf, err := r.VerifyWellFormed()
				if err != nil {
					return false
				}
				want, _ := ref.Snapshot()
				return tuplesEqual(wf, want)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRowPathRejectsMisboundRows: the prepared row API must refuse rows
// whose width or bound mask does not match the compiled signature, rather
// than silently ignoring extra or missing bindings.
func TestRowPathRejectsMisboundRows(t *testing.T) {
	r := graphVariants()[1].build(t) // stick/fine
	g := newRowGraph(t, r)
	s := r.Schema()

	under := s.NewRow()
	under.Set(g.iSrc, 1)
	if _, err := g.rem.ExecRow(under); err == nil {
		t.Fatal("remove accepted a row missing a key column")
	}
	if _, err := g.ins.ExecRow(under); err == nil {
		t.Fatal("insert accepted a partially bound row")
	}
	over := s.NewRow()
	over.Set(g.iSrc, 1)
	over.Set(g.iDst, 2)
	if _, err := g.succ.CountRow(over); err == nil {
		t.Fatal("count accepted a row binding extra columns")
	}
	narrow := rel.RowOver(make([]rel.Value, 2), 0)
	if err := g.succ.ExecRows(narrow, func(rel.Row) bool { return true }); err == nil {
		t.Fatal("query accepted a row of the wrong width")
	}
}

// TestPreparedRowConcurrent hammers the prepared row operations from many
// goroutines over every representation variant. With -race this checks
// that the pooled operation buffers, the row arenas and the lock protocol
// race-free; quiescent verification checks nothing was corrupted.
func TestPreparedRowConcurrent(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		g := newRowGraph(t, r)
		const workers = 8
		const opsPerWorker = 300
		const keys = 8
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < opsPerWorker; i++ {
					src, dst := rng.Intn(keys), rng.Intn(keys)
					switch rng.Intn(10) {
					case 0, 1, 2, 3:
						if _, err := g.insert(src, dst, rng.Intn(100)); err != nil {
							t.Errorf("insert: %v", err)
							return
						}
					case 4, 5:
						if _, err := g.remove(src, dst); err != nil {
							t.Errorf("remove: %v", err)
							return
						}
					case 6, 7:
						if _, err := g.countSucc(src); err != nil {
							t.Errorf("count succ: %v", err)
							return
						}
					case 8:
						if _, err := g.countPred(dst); err != nil {
							t.Errorf("count pred: %v", err)
							return
						}
					default:
						if _, err := g.successors(src); err != nil {
							t.Errorf("query: %v", err)
							return
						}
					}
				}
			}(int64(w + 1))
		}
		wg.Wait()
		// Quiescent coherence: row-path counts equal tuple-path queries,
		// and the instance graph is still well formed.
		if _, err := r.VerifyWellFormed(); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < keys; s++ {
			n, err := g.countSucc(s)
			if err != nil {
				t.Fatal(err)
			}
			full, err := r.Query(rel.T("src", s), "dst", "weight")
			if err != nil {
				t.Fatal(err)
			}
			if n != len(full) {
				t.Fatalf("src=%d: row count %d != query len %d", s, n, len(full))
			}
		}
	})
}

// TestRowPathMatchesTuplePath cross-checks the two prepared surfaces on
// the same relation: every row-API result must equal its tuple-API twin.
func TestRowPathMatchesTuplePath(t *testing.T) {
	r := graphVariants()[2].build(t) // stick/striped
	g := newRowGraph(t, r)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 400; i++ {
		src, dst := rng.Intn(6), rng.Intn(6)
		switch rng.Intn(4) {
		case 0, 1:
			viaRow, err := g.insert(src, dst, i)
			if err != nil {
				t.Fatal(err)
			}
			if viaRow {
				continue
			}
			// Already present: the tuple path must agree.
			got, err := g.point.Exec(rel.T("src", src, "dst", dst))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 0 {
				t.Fatalf("insert refused but no tuple present for %d→%d", src, dst)
			}
		case 2:
			if _, err := g.remove(src, dst); err != nil {
				t.Fatal(err)
			}
		default:
			fromRows, err := g.successors(src)
			if err != nil {
				t.Fatal(err)
			}
			fromTuples, err := g.succ.Exec(rel.T("src", src))
			if err != nil {
				t.Fatal(err)
			}
			if !tuplesEqual(fromRows, fromTuples) {
				t.Fatalf("row/tuple divergence for src=%d: %v vs %v", src, fromRows, fromTuples)
			}
		}
	}
}
