package core

import (
	"strings"
	"testing"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

// TestInstanceDOTFigure2b reproduces Figure 2(b): the directory-tree
// instance holding {⟨1,'a',2⟩, ⟨2,'b',3⟩, ⟨2,'c',4⟩} rendered as a graph
// with per-entry edges.
func TestInstanceDOTFigure2b(t *testing.T) {
	d, err := decomp.NewBuilder(dirSpec(), "ρ").
		Edge("ρx", "ρ", "x", []string{"parent"}, container.TreeMap).
		Edge("xy", "x", "y", []string{"name"}, container.TreeMap).
		Edge("ρy", "ρ", "y", []string{"parent", "name"}, container.ConcurrentHashMap).
		Edge("yz", "y", "z", []string{"child"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Synthesize(d, locks.FineGrained(d))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct {
		p int
		n string
		c int
	}{{1, "a", 2}, {2, "b", 3}, {2, "c", 4}} {
		if ok, err := r.Insert(rel.T("parent", e.p, "name", e.n), rel.T("child", e.c)); err != nil || !ok {
			t.Fatalf("insert: %v %v", ok, err)
		}
	}
	dot := r.InstanceDOT("fig2b")
	// Figure 2(b): two x instances (parents 1 and 2), three y instances,
	// three z instances.
	for _, want := range []string{"x1", "x2", "y1", "y2", "y3", "z1", "z2", "z3"} {
		if !strings.Contains(dot, "\""+want+"\"") {
			t.Errorf("instance diagram missing %s:\n%s", want, dot)
		}
	}
	if strings.Contains(dot, "\"x3\"") || strings.Contains(dot, "\"y4\"") {
		t.Errorf("too many instances:\n%s", dot)
	}
	// The hashtable edges carry composite keys like (2, "c").
	if !strings.Contains(dot, `(2, \"c\")`) && !strings.Contains(dot, `(2, "c")`) {
		t.Errorf("composite hashtable key missing:\n%s", dot)
	}
	// Styling: dotted singleton edges, dashed concurrent hashtable edges,
	// solid TreeMap edges.
	for _, want := range []string{"style=dotted", "style=dashed", "style=solid"} {
		if !strings.Contains(dot, want) {
			t.Errorf("missing %s:\n%s", want, dot)
		}
	}
	// Deterministic output.
	if dot != r.InstanceDOT("fig2b") {
		t.Error("instance DOT not deterministic")
	}
}

func TestInstanceDOTSharedNodes(t *testing.T) {
	// Diamond: the z instance must appear once with two in-edges.
	r := diamondRel(t, false)
	if ok, err := r.Insert(rel.T("src", 7, "dst", 8), rel.T("weight", 9)); err != nil || !ok {
		t.Fatal(err)
	}
	dot := r.InstanceDOT("diamond")
	if strings.Count(dot, `[label="z1`) != 1 {
		t.Fatalf("z instance should render once:\n%s", dot)
	}
	if strings.Count(dot, "-> \"z1\"") != 2 {
		t.Fatalf("z instance should have exactly two in-edges:\n%s", dot)
	}
}
