package core

import (
	"fmt"
	"sort"

	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/query"
	"repro/internal/rel"
)

// This file interprets compiled plans against a decomposition instance.
// The executor is the runtime half of the paper's code generator: plans
// fix the access path, the lock steps and their order at synthesis time;
// the executor evaluates them over query states (§5.2), sorting lock
// batches into the global order (eliding the sort when the plan proved the
// states pre-sorted) and running the speculative acquire/validate/retry
// protocol of §4.5.

// specRetryLimit bounds the §4.5 validate/retry loop; exceeding it
// indicates a livelock bug rather than contention, so the executor panics.
const specRetryLimit = 1 << 20

// runQuery executes a compiled query plan under a fresh transaction and
// returns the out-projection of every matching tuple.
func (r *Relation) runQuery(plan *query.Plan, s rel.Tuple, out []string) []rel.Tuple {
	txn := locks.NewTxn()
	defer txn.ReleaseAll()
	states := []*qstate{r.rootState(s)}
	for i := range plan.Steps {
		states = r.execStep(txn, &plan.Steps[i], states, s)
		if len(states) == 0 {
			break
		}
	}
	results := make([]rel.Tuple, 0, len(states))
	for _, st := range states {
		results = append(results, st.tuple.Project(out))
	}
	return results
}

// execStep dispatches one plan step over the current states.
func (r *Relation) execStep(txn *locks.Txn, step *query.Step, states []*qstate, s rel.Tuple) []*qstate {
	switch step.Kind {
	case query.StepLock:
		r.execLock(txn, step, states, s)
		return states
	case query.StepLookup:
		return r.execLookup(txn, step.Edge, states)
	case query.StepScan:
		if r.placement.RuleFor(step.Edge).Speculative {
			return r.execScanSpec(txn, step, states)
		}
		return r.execScan(txn, step.Edge, states)
	case query.StepSpecLookup:
		return r.execSpecLookup(txn, step.Edge, states, step.Mode)
	default:
		panic(fmt.Sprintf("core: unknown step kind %d", step.Kind))
	}
}

// execLock acquires the physical locks the step requires on the instances
// of its node present in states. Stripe selection follows §4.4: a bound
// selector hashes the operation tuple; anything else takes every stripe.
func (r *Relation) execLock(txn *locks.Txn, step *query.Step, states []*qstate, s rel.Tuple) {
	n := step.Node
	if len(states) == 1 {
		if inst := states[0].insts[n.Index]; inst != nil {
			var buf [1]*Instance
			buf[0] = inst
			r.execLockInsts(txn, step, buf[:], s)
		}
		return
	}
	seen := make(map[*Instance]bool, len(states))
	insts := make([]*Instance, 0, len(states))
	for _, st := range states {
		inst := st.insts[n.Index]
		if inst == nil || seen[inst] {
			continue
		}
		seen[inst] = true
		insts = append(insts, inst)
	}
	r.execLockInsts(txn, step, insts, s)
}

// execLockInsts acquires the step's locks over a deduplicated instance
// list.
func (r *Relation) execLockInsts(txn *locks.Txn, step *query.Step, insts []*Instance, s rel.Tuple) {
	n := step.Node
	k := r.placement.StripeCount(n)
	var bbuf [4]*locks.Lock
	batch := bbuf[:0]
	singlePerInstance := true
	for _, inst := range insts {
		all := false
		var sbuf [4]int
		stripes := sbuf[:0]
		for _, sel := range step.Selectors {
			if sel.All {
				all = true
				break
			}
			idx, ok := r.placement.StripeIndex(n, sel.Cols, s)
			if !ok {
				all = true
				break
			}
			stripes = append(stripes, idx)
		}
		if all {
			singlePerInstance = false
			for i := 0; i < k; i++ {
				batch = append(batch, inst.lock(i))
			}
			continue
		}
		sort.Ints(stripes)
		prev := -1
		cnt := 0
		for _, idx := range stripes {
			if idx == prev {
				continue
			}
			prev = idx
			batch = append(batch, inst.lock(idx))
			cnt++
		}
		if cnt != 1 {
			singlePerInstance = false
		}
	}
	preSorted := step.PreSorted && k == 1 && singlePerInstance
	txn.Acquire(batch, step.Mode, preSorted)
}

// execLookup advances each state across edge e by key lookup. States whose
// entry is absent are dropped: the transaction observed the absence under
// the logical lock its earlier lock steps imply.
func (r *Relation) execLookup(txn *locks.Txn, e *decomp.Edge, states []*qstate) []*qstate {
	out := states[:0]
	for _, st := range states {
		src := st.insts[e.Src.Index]
		if src == nil {
			continue
		}
		r.auditAccess(txn, e, st.insts, st.tuple, nil, nil, false)
		v, ok := src.containerFor(e).Lookup(st.tuple.Key(e.Cols))
		if !ok {
			continue
		}
		st.insts[e.Dst.Index] = v.(*Instance)
		out = append(out, st)
	}
	return out
}

// execScan advances states across edge e by iterating the source
// containers, joining each entry's key valuation with the state tuple and
// filtering entries that disagree on shared columns. The join is a linear
// merge over the edge's precomputed sorted column order.
func (r *Relation) execScan(txn *locks.Txn, e *decomp.Edge, states []*qstate) []*qstate {
	var out []*qstate
	// Filter positions: edge columns also bound in the state tuple.
	for _, st := range states {
		src := st.insts[e.Src.Index]
		if src == nil {
			continue
		}
		var filterIdx []int
		var filterVal []rel.Value
		for i, c := range e.Cols {
			if v, ok := st.tuple.Get(c); ok {
				filterIdx = append(filterIdx, i)
				filterVal = append(filterVal, v)
			}
		}
		r.auditAccess(txn, e, st.insts, st.tuple, nil, nil, len(filterIdx) == 0)
		src.containerFor(e).Scan(func(k rel.Key, v any) bool {
			for fi, idx := range filterIdx {
				if !rel.Equal(k.At(idx), filterVal[fi]) {
					return true
				}
			}
			vals := make([]rel.Value, len(e.SortPerm))
			for i, p := range e.SortPerm {
				vals[i] = k.At(p)
			}
			out = append(out, st.extend(st.tuple.MergeSorted(e.SortedCols, vals), e.Dst, v.(*Instance)))
			return true
		})
	}
	return out
}

// execSpecLookup advances states across a speculatively placed edge
// (§4.5). The plan has already taken the fallback stripe covering the
// absent case, so:
//
//   - an unlocked read that misses is final (the absence is protected by
//     the held fallback lock) and the state dies;
//   - a hit guesses the target instance, acquires its lock, and validates
//     the read under the lock; if the entry moved to a different instance
//     the guess is abandoned and retried, which is safe because the
//     abandoned lock was the most recently acquired.
//
// Requests are processed in target-key order so acquisitions respect the
// global lock order across states.
func (r *Relation) execSpecLookup(txn *locks.Txn, e *decomp.Edge, states []*qstate, mode locks.Mode) []*qstate {
	type req struct {
		st     *qstate
		target rel.Key
	}
	reqs := make([]req, 0, len(states))
	for _, st := range states {
		if st.insts[e.Src.Index] == nil {
			continue
		}
		reqs = append(reqs, req{st: st, target: st.tuple.Key(e.Dst.A)})
	}
	sort.Slice(reqs, func(i, j int) bool { return rel.CompareKeys(reqs[i].target, reqs[j].target) < 0 })
	var out []*qstate
	for _, rq := range reqs {
		st := rq.st
		src := st.insts[e.Src.Index]
		if inst, ok := r.specLocate(txn, e, src, st.tuple, mode); ok {
			st.insts[e.Dst.Index] = inst
			out = append(out, st)
		} else {
			// Absence is covered by the held fallback stripe; audit it.
			r.auditAccess(txn, e, st.insts, st.tuple, nil, nil, false)
		}
	}
	return out
}

// specLocate runs the speculative protocol for a single bound key and
// returns the locked target instance, or ok=false if the edge instance is
// absent (covered by the held fallback stripe).
func (r *Relation) specLocate(txn *locks.Txn, e *decomp.Edge, src *Instance, t rel.Tuple, mode locks.Mode) (*Instance, bool) {
	c := src.containerFor(e)
	key := t.Key(e.Cols)
	for attempt := 0; ; attempt++ {
		if attempt > specRetryLimit {
			panic(fmt.Sprintf("core: speculative retry livelock on edge %s", e.Name))
		}
		v, ok := c.Lookup(key) // unlocked read: container has linearizable lookups
		if !ok {
			return nil, false
		}
		guess := v.(*Instance)
		l := guess.lock(0)
		if txn.Holds(l) {
			// Already locked (e.g. located earlier via another in-edge or
			// an earlier state): the mapping is stable, trust a re-read.
			v2, ok2 := c.Lookup(key)
			if !ok2 {
				return nil, false
			}
			if v2.(*Instance) == guess {
				return guess, true
			}
			continue
		}
		txn.AcquireSpeculative(l, mode)
		v2, ok2 := c.Lookup(key)
		if ok2 && v2.(*Instance) == guess {
			return guess, true // guessed right: read was stable
		}
		txn.Abandon(l)
		if !ok2 {
			return nil, false
		}
		// The entry moved to a different instance; retry with the new one.
	}
}

// execScanSpec scans a speculatively placed edge: the plan took every
// fallback stripe (covering all absent entries, and thereby freezing the
// container's membership), so each discovered entry only needs its target
// lock validated. Candidates are locked in target-key order.
func (r *Relation) execScanSpec(txn *locks.Txn, step *query.Step, states []*qstate) []*qstate {
	e := step.Edge
	type cand struct {
		st     *qstate
		kt     rel.Tuple
		target rel.Key
	}
	var cands []cand
	for _, st := range states {
		src := st.insts[e.Src.Index]
		if src == nil {
			continue
		}
		r.auditAccess(txn, e, st.insts, st.tuple, nil, nil, true)
		src.containerFor(e).Scan(func(k rel.Key, v any) bool {
			kt := k.Tuple(e.Cols)
			if !kt.Matches(st.tuple) {
				return true
			}
			cands = append(cands, cand{st: st, kt: kt, target: st.tuple.MustUnion(kt).Key(e.Dst.A)})
			return true
		})
	}
	sort.Slice(cands, func(i, j int) bool { return rel.CompareKeys(cands[i].target, cands[j].target) < 0 })
	var out []*qstate
	for _, c := range cands {
		src := c.st.insts[e.Src.Index]
		tuple := c.st.tuple.MustUnion(c.kt)
		if inst, ok := r.specLocate(txn, e, src, tuple, step.Mode); ok {
			out = append(out, c.st.extend(tuple, e.Dst, inst))
		}
	}
	return out
}
