package core

import (
	"fmt"
	"sort"

	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/query"
	"repro/internal/rel"
)

// This file interprets compiled plans against a decomposition instance.
// The executor is the runtime half of the paper's code generator: plans
// fix the access path, the lock steps, their order, and — since the
// schema-compilation pass — every column offset at synthesis time; the
// executor evaluates them over dense row states (§5.2) with no string
// comparisons, sorting lock batches into the global order (eliding the
// sort when the plan proved the states pre-sorted) and running the
// speculative acquire/validate/retry protocol of §4.5.

// specRetryLimit bounds the §4.5 validate/retry loop; exceeding it
// indicates a livelock bug rather than contention, so the executor panics.
const specRetryLimit = 1 << 20

// runSteps executes a step list from the root state: the shared skeleton
// of queries, counts and the mutation-embedded existence checks. Callers
// must pass the final state list to b.recycle once consumed.
func (r *Relation) runSteps(b *opBuf, steps []query.Step, op rel.Row, mask uint64) []*qstate {
	states := append(b.pipe[:0], b.rootState(r, op, mask))
	b.pipe = states
	for i := range steps {
		states = r.execStep(b, &steps[i], states, op)
		if len(states) == 0 {
			break
		}
	}
	return states
}

// execStep dispatches one plan step over the current states. In a batch's
// apply phase (b.apply) every lock the batch can need is already held, so
// lock steps are skipped and speculative accesses run as plain lookups and
// scans — re-validation is unnecessary because no other transaction can
// move entries under the batch's locks, and entries written by earlier
// batch members live in instances private to the transaction.
func (r *Relation) execStep(b *opBuf, step *query.Step, states []*qstate, op rel.Row) []*qstate {
	switch step.Kind {
	case query.StepLock:
		if b.apply {
			return states
		}
		r.execLock(b, step, states, op)
		return states
	case query.StepLookup:
		return r.execLookup(b, step.Edge, step.ColIdx, states)
	case query.StepScan:
		if r.placement.RuleFor(step.Edge).Speculative && !b.apply {
			if b.optimistic {
				return r.execOptimisticScanSpec(b, step, states)
			}
			return r.execScanSpec(b, step, states)
		}
		return r.execScan(b, step.Edge, step.ColIdx, step.FilterPos, step.FilterIdx, states)
	case query.StepSpecLookup:
		if b.apply {
			return r.execApplyLookup(b, step.Edge, step.ColIdx, states)
		}
		if b.optimistic {
			return r.execOptimisticLookup(b, step.Edge, step.ColIdx, states)
		}
		return r.execSpecLookup(b, step.Edge, step.ColIdx, step.TargetIdx, states, step.Mode)
	default:
		panic(fmt.Sprintf("core: unknown step kind %d", step.Kind))
	}
}

// execApplyLookup advances states across a speculatively placed edge
// during a batch's apply phase: a plain keyed lookup, trusted without the
// §4.5 validate/retry protocol because the batch already holds either the
// target's lock (acquired when the growing phase located it) or created
// the target itself (private to the transaction).
func (r *Relation) execApplyLookup(b *opBuf, e *decomp.Edge, colIdx []int, states []*qstate) []*qstate {
	out := states[:0]
	for _, st := range states {
		src := st.insts[e.Src.Index]
		if src == nil {
			continue
		}
		v, ok := r.container(src, e).Lookup(b.keyOf(st.row, colIdx))
		if !ok {
			r.auditAccess(b, e, st.insts, st.row, nil, b.fresh, false)
			continue
		}
		inst := v.(*Instance)
		r.auditAccess(b, e, st.insts, st.row, inst, b.fresh, false)
		st.insts[e.Dst.Index] = inst
		out = append(out, st)
	}
	return out
}

// execOptimisticLookup advances states across a speculatively placed edge
// during an optimistic read-only attempt: a plain lock-free lookup whose
// stability is established by epochs rather than by the §4.5
// acquire/validate/retry protocol. The entry's membership is covered by
// the fallback stripes the plan's preceding lock step recorded; the
// target's content is covered by recording the target lock's epoch here,
// before any later step descends into the target's containers. If the
// entry moves or the target's subtree changes before the batch validates,
// one of those recorded epochs moves with it.
func (r *Relation) execOptimisticLookup(b *opBuf, e *decomp.Edge, colIdx []int, states []*qstate) []*qstate {
	out := states[:0]
	for _, st := range states {
		src := st.insts[e.Src.Index]
		if src == nil {
			continue
		}
		v, ok := r.container(src, e).Lookup(b.keyOf(st.row, colIdx))
		if !ok {
			r.auditAccess(b, e, st.insts, st.row, nil, b.fresh, false)
			continue
		}
		inst := v.(*Instance)
		b.reads.Record(inst.lock(0))
		r.auditAccess(b, e, st.insts, st.row, inst, b.fresh, false)
		st.insts[e.Dst.Index] = inst
		out = append(out, st)
	}
	return out
}

// execOptimisticScanSpec scans a speculatively placed edge during an
// optimistic read-only attempt. The plan's preceding lock step recorded
// every fallback stripe (the epochs standing in for "freezing the
// membership"), so each discovered entry only needs its target's epoch
// recorded before later steps read the target's subtree.
func (r *Relation) execOptimisticScanSpec(b *opBuf, step *query.Step, states []*qstate) []*qstate {
	out := r.execOptimisticScanSpecInto(b, b.spare[:0], step, states)
	b.spare = states[:0]
	return out
}

// execOptimisticScanSpecInto is execOptimisticScanSpec building onto a
// caller-supplied output array; the round-map scheduler passes member-owned
// arrays here instead of the shared ping-pong pair.
func (r *Relation) execOptimisticScanSpecInto(b *opBuf, out []*qstate, step *query.Step, states []*qstate) []*qstate {
	e := step.Edge
	for _, st := range states {
		src := st.insts[e.Src.Index]
		if src == nil {
			continue
		}
		r.auditAccess(b, e, st.insts, st.row, nil, b.fresh, true)
		r.container(src, e).Scan(func(k rel.Key, v any) bool {
			for fi, p := range step.FilterPos {
				if !rel.Equal(k.At(p), st.row.At(step.FilterIdx[fi])) {
					return true
				}
			}
			ns := b.clone(r, st)
			for p, ci := range step.ColIdx {
				ns.row.Set(ci, k.At(p))
			}
			inst := v.(*Instance)
			b.reads.Record(inst.lock(0))
			ns.insts[e.Dst.Index] = inst
			out = append(out, ns)
			return true
		})
	}
	return out
}

// execLock acquires the physical locks the step requires on the instances
// of its node present in states. Stripe selection follows §4.4: a bound
// selector hashes the operation row through its compiled indices;
// anything else takes every stripe.
func (r *Relation) execLock(b *opBuf, step *query.Step, states []*qstate, op rel.Row) {
	n := step.Node
	// Deduplicate instances: linear for small batches, map beyond.
	insts := b.instScratch[:0]
	if len(states) <= 64 {
		for _, st := range states {
			inst := st.insts[n.Index]
			if inst == nil {
				continue
			}
			dup := false
			for _, seen := range insts {
				if seen == inst {
					dup = true
					break
				}
			}
			if !dup {
				insts = append(insts, inst)
			}
		}
	} else {
		if b.seen == nil {
			b.seen = make(map[*Instance]bool, len(states))
		}
		for _, st := range states {
			inst := st.insts[n.Index]
			if inst == nil || b.seen[inst] {
				continue
			}
			b.seen[inst] = true
			insts = append(insts, inst)
		}
		clear(b.seen)
	}
	b.instScratch = insts[:0]
	r.execLockInsts(b, step, insts, op)
}

// execLockInsts acquires the step's locks over a deduplicated instance
// list. The stripe set depends only on the operation row, so it is
// computed once and applied per instance.
func (r *Relation) execLockInsts(b *opBuf, step *query.Step, insts []*Instance, op rel.Row) {
	n := step.Node
	k := r.placement.StripeCount(n)
	all := false
	var sbuf [4]int
	stripes := sbuf[:0]
	for i := range step.Selectors {
		sel := &step.Selectors[i]
		if sel.All {
			all = true
			break
		}
		if k == 1 || len(sel.Idx) == 0 {
			stripes = append(stripes, 0)
			continue
		}
		if !op.BindsAll(sel.Mask) {
			all = true
			break
		}
		stripes = append(stripes, int(op.HashAt(sel.Idx)%uint64(k)))
	}
	distinct := 0
	if !all {
		sort.Ints(stripes)
		w := 0
		for i, idx := range stripes {
			if i == 0 || idx != stripes[w-1] {
				stripes[w] = idx
				w++
			}
		}
		stripes = stripes[:w]
		distinct = w
	}
	batch := b.lockBatch[:0]
	for _, inst := range insts {
		if all {
			for i := 0; i < k; i++ {
				batch = append(batch, inst.lock(i))
			}
			continue
		}
		for _, idx := range stripes {
			batch = append(batch, inst.lock(idx))
		}
	}
	preSorted := step.PreSorted && k == 1 && !all && distinct == 1
	switch {
	case b.optimistic:
		// Optimistic read-only attempt: record each lock's epoch where the
		// pessimistic plan would acquire it — BEFORE the reads it protects,
		// which follow this step — and acquire nothing (readonly.go).
		for _, l := range batch {
			b.reads.Record(l)
		}
	case b.collect != nil:
		// Batch growing phase: divert the step's requests into the
		// coalescing set; the batch scheduler acquires the merged set once
		// per decomposition node (batch.go).
		for _, l := range batch {
			b.collect.Add(l, step.Mode)
		}
	default:
		b.txn.Acquire(batch, step.Mode, preSorted)
	}
	b.lockBatch = batch[:0]
}

// execLookup advances each state across edge e by key lookup, gathering
// the container key straight from the row through the compiled indices.
// States whose entry is absent are dropped: the transaction observed the
// absence under the logical lock its earlier lock steps imply.
func (r *Relation) execLookup(b *opBuf, e *decomp.Edge, colIdx []int, states []*qstate) []*qstate {
	out := states[:0]
	for _, st := range states {
		src := st.insts[e.Src.Index]
		if src == nil {
			continue
		}
		r.auditAccess(b, e, st.insts, st.row, nil, b.fresh, false)
		v, ok := r.container(src, e).Lookup(b.keyOf(st.row, colIdx))
		if !ok {
			continue
		}
		st.insts[e.Dst.Index] = v.(*Instance)
		out = append(out, st)
	}
	return out
}

// execScan advances states across edge e by iterating the source
// containers. Each surviving entry's key values are scattered directly
// into a cloned row through the compiled indices — the dense-row analog
// of the tuple join, with no merge and no allocation beyond the pooled
// state. Filter positions compare entry values against row slots bound by
// the operation.
func (r *Relation) execScan(b *opBuf, e *decomp.Edge, colIdx, filterPos, filterIdx []int, states []*qstate) []*qstate {
	out := r.execScanInto(b, b.spare[:0], e, colIdx, filterPos, filterIdx, states)
	b.spare = states[:0]
	return out
}

// execScanInto is execScan building onto a caller-supplied output array;
// the round-map scheduler passes member-owned arrays here instead of the
// shared ping-pong pair.
func (r *Relation) execScanInto(b *opBuf, out []*qstate, e *decomp.Edge, colIdx, filterPos, filterIdx []int, states []*qstate) []*qstate {
	// The visitor closure is created once per buffer and parameterized
	// through b.scan: a fresh closure per (call × state) is the hottest
	// allocation in a scan-heavy batch, and Scan's indirect call makes it
	// escape unconditionally.
	sc := &b.scan
	if b.scanFn == nil {
		b.scanFn = func(k rel.Key, v any) bool {
			st := sc.st
			for fi, p := range sc.filterPos {
				if !rel.Equal(k.At(p), st.row.At(sc.filterIdx[fi])) {
					return true
				}
			}
			ns := sc.b.clone(sc.r, st)
			for p, ci := range sc.colIdx {
				ns.row.Set(ci, k.At(p))
			}
			ns.insts[sc.e.Dst.Index] = v.(*Instance)
			sc.out = append(sc.out, ns)
			return true
		}
	}
	sc.r, sc.b, sc.e = r, b, e
	sc.colIdx, sc.filterPos, sc.filterIdx = colIdx, filterPos, filterIdx
	sc.out = out
	for _, st := range states {
		src := st.insts[e.Src.Index]
		if src == nil {
			continue
		}
		r.auditAccess(b, e, st.insts, st.row, nil, b.fresh, len(filterPos) == 0)
		sc.st = st
		r.container(src, e).Scan(b.scanFn)
	}
	out = sc.out
	sc.out, sc.st = nil, nil // release retained states
	return out
}

// scanCtx carries execScanInto's per-call parameters to the buffer's
// cached visitor closure.
type scanCtx struct {
	r                            *Relation
	b                            *opBuf
	e                            *decomp.Edge
	colIdx, filterPos, filterIdx []int
	st                           *qstate
	out                          []*qstate
}

// execSpecLookup advances states across a speculatively placed edge
// (§4.5). The plan has already taken the fallback stripe covering the
// absent case, so:
//
//   - an unlocked read that misses is final (the absence is protected by
//     the held fallback lock) and the state dies;
//   - a hit guesses the target instance, acquires its lock, and validates
//     the read under the lock; if the entry moved to a different instance
//     the guess is abandoned and retried, which is safe because the
//     abandoned lock was the most recently acquired.
//
// Requests are processed in target-key order so acquisitions respect the
// global lock order across states.
func (r *Relation) execSpecLookup(b *opBuf, e *decomp.Edge, colIdx, targetIdx []int, states []*qstate, mode locks.Mode) []*qstate {
	reqs := b.reqs[:0]
	for _, st := range states {
		if st.insts[e.Src.Index] == nil {
			continue
		}
		reqs = append(reqs, specReq{st: st, target: b.keyOf(st.row, targetIdx)})
	}
	sort.Slice(reqs, func(i, j int) bool { return rel.CompareKeys(reqs[i].target, reqs[j].target) < 0 })
	out := b.spare[:0]
	for i := range reqs {
		st := reqs[i].st
		src := st.insts[e.Src.Index]
		if inst, ok := r.specLocate(b, e, colIdx, src, st.row, mode); ok {
			st.insts[e.Dst.Index] = inst
			out = append(out, st)
		} else {
			// Absence is covered by the held fallback stripe; audit it.
			r.auditAccess(b, e, st.insts, st.row, nil, b.fresh, false)
		}
	}
	clear(reqs) // drop state/key pointers now, so putBuf need not sweep capacity
	b.reqs = reqs[:0]
	b.spare = states[:0]
	return out
}

// specLocate runs the speculative protocol for a single bound key and
// returns the locked target instance, or ok=false if the edge instance is
// absent (covered by the held fallback stripe).
func (r *Relation) specLocate(b *opBuf, e *decomp.Edge, colIdx []int, src *Instance, row rel.Row, mode locks.Mode) (*Instance, bool) {
	c := r.container(src, e)
	key := b.keyOf(row, colIdx)
	for attempt := 0; ; attempt++ {
		if attempt > specRetryLimit {
			panic(fmt.Sprintf("core: speculative retry livelock on edge %s", e.Name))
		}
		v, ok := c.Lookup(key) // unlocked read: container has linearizable lookups
		if !ok {
			return nil, false
		}
		guess := v.(*Instance)
		l := guess.lock(0)
		if b.txn.Holds(l) {
			// Already locked (e.g. located earlier via another in-edge or
			// an earlier state): the mapping is stable, trust a re-read.
			v2, ok2 := c.Lookup(key)
			if !ok2 {
				return nil, false
			}
			if v2.(*Instance) == guess {
				return guess, true
			}
			continue
		}
		b.txn.AcquireSpeculative(l, mode)
		v2, ok2 := c.Lookup(key)
		if ok2 && v2.(*Instance) == guess {
			return guess, true // guessed right: read was stable
		}
		b.txn.Abandon(l)
		if !ok2 {
			return nil, false
		}
		// The entry moved to a different instance; retry with the new one.
	}
}

// execScanSpec scans a speculatively placed edge: the plan took every
// fallback stripe (covering all absent entries, and thereby freezing the
// container's membership), so each discovered entry only needs its target
// lock validated. Candidates are locked in target-key order.
func (r *Relation) execScanSpec(b *opBuf, step *query.Step, states []*qstate) []*qstate {
	e := step.Edge
	cands := b.reqs[:0]
	for _, st := range states {
		src := st.insts[e.Src.Index]
		if src == nil {
			continue
		}
		r.auditAccess(b, e, st.insts, st.row, nil, b.fresh, true)
		r.container(src, e).Scan(func(k rel.Key, v any) bool {
			for fi, p := range step.FilterPos {
				if !rel.Equal(k.At(p), st.row.At(step.FilterIdx[fi])) {
					return true
				}
			}
			ns := b.clone(r, st)
			for p, ci := range step.ColIdx {
				ns.row.Set(ci, k.At(p))
			}
			cands = append(cands, specReq{st: ns, target: b.keyOf(ns.row, step.TargetIdx)})
			return true
		})
	}
	sort.Slice(cands, func(i, j int) bool { return rel.CompareKeys(cands[i].target, cands[j].target) < 0 })
	out := b.spare[:0]
	for i := range cands {
		ns := cands[i].st
		src := ns.insts[e.Src.Index]
		if inst, ok := r.specLocate(b, e, step.ColIdx, src, ns.row, step.Mode); ok {
			ns.insts[e.Dst.Index] = inst
			out = append(out, ns)
		}
	}
	clear(cands)
	b.reqs = cands[:0]
	b.spare = states[:0]
	return out
}
