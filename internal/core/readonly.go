package core

import (
	"runtime"
	"time"

	"repro/internal/query"
	"repro/internal/rel"
)

// This file implements the optimistic execution mode for read-only
// batches: the §4.5 speculative protocol — read without the lock, validate
// afterwards — generalized from one edge to a whole transaction, the
// ROADMAP's "optimistic read path for batches" item.
//
// A batch whose members are all queries and counts takes no locks at all
// on the happy path. Instead of the pessimistic growing phase, each
// member's compiled plan runs directly (lock-free), with every lock step
// RECORDING the epoch cell of the physical locks it would have acquired
// into a read-set (locks.ReadSet) and every speculative access recording
// its target's epoch — always before the reads the lock protects, because
// plans emit lock steps before the accesses they cover. Mutating
// transactions begin-bump (make odd) the epoch cells of the locks they
// hold exclusively before their first write under each and end-bump (make
// even) them just before releasing, so the final validation — every
// recorded epoch even and unchanged, checked in the global lock order —
// proves the lock-free reads observed exactly the state a shared-lock
// execution would have. On validation failure the whole batch retries
// with a small backoff, and after optimisticMaxAttempts failed attempts
// it falls back to the ordinary pessimistic two-phase-locking path, which
// always succeeds. Results are delivered (pendings resolved, yields run)
// only after a successful validation, so callers never observe torn data.
//
// The mode is only legal when every container of the relation is
// concurrency-safe (Relation.OptimisticCapable): lock-free reads racing
// writers on a plain HashMap or TreeMap would be data races, so such
// relations always use the pessimistic path.

// optimisticMaxAttempts bounds the validate/retry loop of a read-only
// batch: after this many failed validations the batch falls back to
// pessimistic two-phase locking, which cannot starve. Contention raising
// retries this high means the read would have waited behind writers'
// locks anyway, so falling back loses nothing.
const optimisticMaxAttempts = 3

// optimisticValidateHook, when non-nil, runs after an optimistic
// attempt's lock-free execution but before its validation (argument: the
// 0-based attempt index). Tests use it to commit conflicting mutations at
// the worst possible moment, forcing validation failures, retries and the
// K-attempt fallback deterministically.
var optimisticValidateHook func(attempt int)

// optimisticBackoff delays between failed optimistic attempts: yield the
// processor first (the common conflict is a writer mid-commit on this
// core), then sleep exponentially so repeated conflicts cannot spin.
func optimisticBackoff(attempt int) {
	if attempt <= 1 {
		runtime.Gosched()
		return
	}
	time.Sleep(time.Duration(1<<uint(attempt-2)) * time.Microsecond)
}

// readOnly reports whether every enqueued member is a query or count —
// the precondition for the optimistic path. Shards track their first
// mutation for the apply phase's reuse rule, so this is a flag check.
func (t *Txn) readOnly() bool {
	if t.reg == nil {
		return t.single.firstMut < 0
	}
	for _, sh := range t.multi.shards {
		if sh.firstMut >= 0 {
			return false
		}
	}
	return true
}

// commitReadOnly attempts the optimistic lock-free commit of a read-only
// single-relation batch, reporting success. On false the caller must run
// the pessimistic commitBatch; the buffer has been reset for it.
func (r *Relation) commitReadOnly(t *Txn, sh *txnShard) bool {
	if !r.optimisticOK {
		return false
	}
	b := sh.b
	b.detectRounds() // read-only commits skip initBatchMembers, so decide here
	if tr := t.trace; tr != nil {
		tr.Optimistic = true
	}
	for attempt := 0; attempt < optimisticMaxAttempts; attempt++ {
		if attempt > 0 {
			optimisticBackoff(attempt)
		}
		if tr := t.trace; tr != nil {
			tr.Attempts++
		}
		b.n = 0
		r.runShardOptimistic(b)
		if hook := optimisticValidateHook; hook != nil {
			hook(attempt)
		}
		if b.reads.Validate(nil) {
			if tr := t.trace; tr != nil {
				tr.EpochsRecorded += b.reads.Len()
				tr.EpochsDistinct += b.reads.Distinct()
			}
			for i := range b.members {
				r.applyMember(b, &b.members[i], i, -1)
			}
			return true
		}
	}
	if tr := t.trace; tr != nil {
		tr.FellBack = true
	}
	b.reads.Reset()
	b.n = 0
	return false
}

// commitReadOnly attempts the optimistic lock-free commit of a read-only
// registry batch. Shards are validated in relation-id order, so the
// validation pass follows the registry-wide global lock order exactly as
// a pessimistic growing phase would.
func (g *Registry) commitReadOnly(t *Txn) bool {
	for _, sh := range t.multi.shards {
		if !sh.r.optimisticOK {
			return false
		}
	}
	for _, sh := range t.multi.shards {
		sh.b.detectRounds() // read-only commits skip initBatchMembers, so decide here
	}
	if tr := t.trace; tr != nil {
		tr.Optimistic = true
	}
	for attempt := 0; attempt < optimisticMaxAttempts; attempt++ {
		if attempt > 0 {
			optimisticBackoff(attempt)
		}
		if tr := t.trace; tr != nil {
			tr.Attempts++
		}
		for _, sh := range t.multi.shards {
			sh.b.n = 0
			sh.r.runShardOptimistic(sh.b)
		}
		if hook := optimisticValidateHook; hook != nil {
			hook(attempt)
		}
		valid := true
		for _, sh := range t.multi.shards {
			if !sh.b.reads.Validate(nil) {
				valid = false
				break
			}
		}
		if valid {
			if tr := t.trace; tr != nil {
				for _, sh := range t.multi.shards {
					tr.EpochsRecorded += sh.b.reads.Len()
					tr.EpochsDistinct += sh.b.reads.Distinct()
				}
			}
			for _, ref := range t.multi.order {
				ref.sh.r.applyMember(ref.sh.b, &ref.sh.b.members[ref.idx], ref.idx, -1)
			}
			return true
		}
	}
	if tr := t.trace; tr != nil {
		tr.FellBack = true
	}
	for _, sh := range t.multi.shards {
		sh.b.reads.Reset()
		sh.b.n = 0
	}
	return false
}

// runShardOptimistic executes one shard's READ members lock-free,
// recording epochs into the shard buffer's read-set. Each member's
// compiled plan runs exactly as in the apply phase of a pessimistic batch
// — there is no growing-phase scheduling to do, which is the point — and
// retains its final states (queries) or count for the post-validation
// delivery. Mutation members are skipped: a read-only batch has none, and
// in a mixed OCC commit (occ.go) they already ran the pessimistic growing
// phase under exclusive locks. Callers reset the state pool to the
// attempt's floor first (b.n = 0 for read-only batches, the post-growing
// mark for OCC), because the previous attempt's retained read lists are
// invalid and overwritten.
func (r *Relation) runShardOptimistic(b *opBuf) {
	b.optimistic = true
	b.reads.Reset()
	for i := range b.members {
		m := &b.members[i]
		if m.kind == mInsert || m.kind == mRemove {
			if !b.occ {
				// A read-only batch holding a mutation means readOnly()
				// misclassified it: silently skipping would later apply the
				// mutation with no locks, no epochs and no undo log.
				panic("core: mutation member in a read-only batch")
			}
			continue
		}
		if b.rounds {
			// Round mode pipes each member through its own arrays; the
			// shared pair is never touched, so nothing needs detaching.
			switch m.kind {
			case mQuery:
				r.runMemberRounds(b, m)
			case mCount:
				m.count = r.runMemberCountRounds(b, m)
				m.counted = true
				m.states = m.states[:0]
			}
			continue
		}
		// Detach the ping-pong arrays: members retain their final state
		// lists across the whole batch, so every member starts from
		// storage that cannot alias another member's retention.
		b.pipe, b.spare = nil, nil
		switch m.kind {
		case mQuery:
			m.states = r.runSteps(b, m.steps, m.row, m.boundMask)
		case mCount:
			m.count = r.runCountSteps(b, m.steps, m.row, m.boundMask)
			m.counted = true
			m.states = m.states[:0]
		}
	}
	b.optimistic = false
}

// runStatesOptimistic executes a standalone read plan lock-free with
// epoch validation — the single-operation (one-member) analog of a
// read-only batch, closing the ROADMAP "optimistic single operations"
// item: standalone Query/ExecRows on an OptimisticCapable relation
// acquire zero physical locks on the conflict-free path. ok=false means
// every attempt failed validation; the caller falls back to the ordinary
// locking execution on the same (reset) buffer, so results never depend
// on the path taken. Validated states stay pooled on b until putBuf.
func (r *Relation) runStatesOptimistic(b *opBuf, steps []query.Step, op rel.Row, mask uint64) ([]*qstate, bool) {
	for attempt := 0; attempt < optimisticMaxAttempts; attempt++ {
		if attempt > 0 {
			optimisticBackoff(attempt)
		}
		b.reads.Reset()
		b.n = 0
		b.optimistic = true
		states := r.runSteps(b, steps, op, mask)
		b.optimistic = false
		if hook := optimisticValidateHook; hook != nil {
			hook(attempt)
		}
		if b.reads.Validate(nil) {
			return states, true
		}
		b.recycle(states)
	}
	b.reads.Reset()
	b.n = 0
	return nil, false
}

// runCountOptimistic is the count analog of runStatesOptimistic: the
// standalone count path of Relation.Query/PreparedQuery.Count runs
// lock-free on capable relations, validated by epochs, with pessimistic
// fallback after optimisticMaxAttempts.
func (r *Relation) runCountOptimistic(b *opBuf, steps []query.Step, op rel.Row, mask uint64) (int, bool) {
	for attempt := 0; attempt < optimisticMaxAttempts; attempt++ {
		if attempt > 0 {
			optimisticBackoff(attempt)
		}
		b.reads.Reset()
		b.n = 0
		b.optimistic = true
		n := r.runCountSteps(b, steps, op, mask)
		b.optimistic = false
		if hook := optimisticValidateHook; hook != nil {
			hook(attempt)
		}
		if b.reads.Validate(nil) {
			return n, true
		}
	}
	b.reads.Reset()
	b.n = 0
	return 0, false
}

// runCountSteps executes a count plan's step list from the root state: a
// StepCount terminal sums container sizes at the counting frontier,
// otherwise the surviving states are counted. It is the shared body of
// the single-operation count path (prepared.go), the batch apply phase
// and the optimistic runner.
func (r *Relation) runCountSteps(b *opBuf, steps []query.Step, op rel.Row, mask uint64) int {
	states := append(b.pipe[:0], b.rootState(r, op, mask))
	b.pipe = states
	total := -1
	for i := range steps {
		step := &steps[i]
		if step.Kind == query.StepCount {
			total = 0
			for _, st := range states {
				if inst := st.insts[step.Edge.Src.Index]; inst != nil {
					r.auditAccess(b, step.Edge, st.insts, st.row, nil, b.fresh, true)
					total += r.container(inst, step.Edge).Len()
				}
			}
			break
		}
		states = r.execStep(b, step, states, op)
		if len(states) == 0 {
			break
		}
	}
	if total < 0 {
		total = len(states)
	}
	b.recycle(states)
	return total
}
