package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

// stripeOf computes the root stripe a row binding src=k selects on a
// striped placement — the white-box helper the single-relation OCC
// conflict tests use to pick keys whose stripes differ, so a hook-driven
// conflicting insert never blocks on a stripe the batch already holds.
func stripeOf(r *Relation, src int64, k int) int {
	row := r.schema.NewRow()
	row.Set(r.schema.MustIndex("src"), src)
	return int(row.HashAt(r.schema.Indices([]string{"src"})) % uint64(k))
}

// pickDisjointKey returns a key whose root stripe differs from every key
// in held, so mutations on it conflict only through epoch cells, never
// through the batch's held stripe locks.
func pickDisjointKey(t *testing.T, r *Relation, stripes int, held ...int64) int64 {
	t.Helper()
	for k := int64(1); k < 1024; k++ {
		ok := true
		for _, h := range held {
			if stripeOf(r, k, stripes) == stripeOf(r, h, stripes) {
				ok = false
				break
			}
		}
		if ok {
			return k
		}
	}
	t.Fatal("no stripe-disjoint key found")
	return 0
}

// TestMixedBatchOCC is the mixed-batch acceptance test: on every capable
// variant a group holding both mutations and reads must take the OCC path
// — write locks only (zero shared acquisitions), read epochs recorded,
// one clean attempt on a quiescent relation — with sequential semantics
// (a count before the insert does not see it, a count after does) and the
// well-lockedness auditor on throughout.
func TestMixedBatchOCC(t *testing.T) {
	forEachCapableVariant(t, func(t *testing.T, r *Relation) {
		mustInsert(t, r, 1, 2, 10)
		mustInsert(t, r, 1, 3, 11)
		mustInsert(t, r, 4, 5, 12)

		var before, after *Pending[int]
		var other *Pending[[]rel.Tuple]
		var ins *Pending[bool]
		var tr *BatchTrace
		err := r.Batch(func(tx *Txn) error {
			tx.EnableTrace()
			tr = tx.Trace()
			var err error
			if before, err = tx.Count(rel.T("src", 1)); err != nil {
				return err
			}
			if ins, err = tx.Insert(rel.T("src", 1, "dst", 9), rel.T("weight", 90)); err != nil {
				return err
			}
			if after, err = tx.Count(rel.T("src", 1)); err != nil {
				return err
			}
			// A read whose scope no mutation touches: reuses its lock-free
			// traversal.
			other, err = tx.Query(rel.T("src", 4), "dst", "weight")
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.OCC || tr.Optimistic {
			t.Fatalf("mixed batch: OCC=%v Optimistic=%v, want the OCC path", tr.OCC, tr.Optimistic)
		}
		if tr.Attempts != 1 || tr.FellBack {
			t.Fatalf("uncontended mixed batch: attempts=%d fellBack=%v, want one clean attempt", tr.Attempts, tr.FellBack)
		}
		if tr.Acquired == 0 {
			t.Fatal("OCC batch acquired no write locks")
		}
		if tr.SharedAcquired != 0 {
			t.Fatalf("OCC batch acquired %d shared locks, want 0 (reads divert into the read-set):\n%s",
				tr.SharedAcquired, tr)
		}
		if tr.EpochsRecorded == 0 || tr.EpochsDistinct == 0 {
			t.Fatal("OCC batch recorded no read epochs")
		}
		if !ins.Value() {
			t.Fatal("insert member reported existing tuple on a fresh key")
		}
		if before.Value() != 2 {
			t.Fatalf("count before insert = %d, want 2 (must not see the later insert)", before.Value())
		}
		if after.Value() != 3 {
			t.Fatalf("count after insert = %d, want 3 (sequential semantics)", after.Value())
		}
		if len(other.Value()) != 1 {
			t.Fatalf("untouched-scope query = %v, want the single (4,5) edge", other.Value())
		}
		if _, err := r.VerifyWellFormed(); err != nil {
			t.Fatalf("relation ill-formed after OCC commit: %v", err)
		}
	})
}

// TestOCCSelfHoldValidation is the self-hold epoch test: a read member
// whose lock set the batch itself holds exclusively (count and insert
// share the src=1 path, so the insert's write begin-bumps the very cells
// the count recorded) must still validate on the FIRST attempt — the
// batch's own exclusive holds are excluded from validation.
func TestOCCSelfHoldValidation(t *testing.T) {
	r := lockFreeStick(t)
	mustInsert(t, r, 1, 2, 10)
	var before, after *Pending[int]
	var tr *BatchTrace
	err := r.Batch(func(tx *Txn) error {
		tx.EnableTrace()
		tr = tx.Trace()
		var err error
		if before, err = tx.Count(rel.T("src", 1)); err != nil {
			return err
		}
		if _, err = tx.Insert(rel.T("src", 1, "dst", 7), rel.T("weight", 70)); err != nil {
			return err
		}
		after, err = tx.Count(rel.T("src", 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.OCC {
		t.Fatal("mixed batch did not take the OCC path")
	}
	if tr.Attempts != 1 || tr.FellBack {
		t.Fatalf("self-conflicting batch: attempts=%d fellBack=%v — the batch's own exclusive holds failed its validation",
			tr.Attempts, tr.FellBack)
	}
	if before.Value() != 1 || after.Value() != 2 {
		t.Fatalf("counts = %d/%d, want 1/2", before.Value(), after.Value())
	}
}

// TestOCCValidationRetry forces exactly one validation failure: a
// conflicting insert lands — on a stripe the batch does not hold — between
// the batch's lock-free reads and its validation. The batch must roll its
// writes back, retry, observe the new state, and commit on the second
// attempt with its mutation applied exactly once.
func TestOCCValidationRetry(t *testing.T) {
	r := stickRel(t, container.ConcurrentHashMap, container.ConcurrentSkipListMap, func(d *decomp.Decomposition) *locks.Placement {
		p := locks.NewPlacement(d)
		p.SetStripes(d.Root, 16)
		for _, e := range d.Edges {
			if e.Src == d.Root {
				p.Place(e, d.Root, e.Cols...)
			}
		}
		return p
	})
	readSrc := pickDisjointKey(t, r, 16)           // the batch reads this source…
	writeSrc := pickDisjointKey(t, r, 16, readSrc) // …writes this one…
	mustInsert(t, r, int(readSrc), 2, 10)
	optimisticValidateHook = func(attempt int) {
		if attempt == 0 {
			mustInsert(t, r, int(readSrc), 50, 50) // …and the conflict hits the read set only
		}
	}
	defer func() { optimisticValidateHook = nil }()
	var cnt *Pending[int]
	var ins *Pending[bool]
	var tr *BatchTrace
	err := r.Batch(func(tx *Txn) error {
		tx.EnableTrace()
		tr = tx.Trace()
		var err error
		if ins, err = tx.Insert(rel.T("src", writeSrc, "dst", 9), rel.T("weight", 9)); err != nil {
			return err
		}
		cnt, err = tx.Count(rel.T("src", readSrc))
		return err
	})
	optimisticValidateHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if !tr.OCC || tr.FellBack {
		t.Fatalf("OCC=%v fellBack=%v, want retried OCC success", tr.OCC, tr.FellBack)
	}
	if tr.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one validation failure, one clean retry)", tr.Attempts)
	}
	if !ins.Value() {
		t.Fatal("insert member reported failure")
	}
	if cnt.Value() != 2 {
		t.Fatalf("count = %d, want 2 (the retry must observe the conflicting insert)", cnt.Value())
	}
	// The rollback-and-reapply must leave exactly one (writeSrc, 9) edge.
	rows, err := r.Query(rel.T("src", writeSrc), "dst", "weight")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].Equal(rel.T("dst", 9, "weight", 9)) {
		t.Fatalf("write applied %v, want exactly one (dst 9, weight 9)", rows)
	}
	if _, err := r.VerifyWellFormed(); err != nil {
		t.Fatalf("relation ill-formed after retried OCC commit: %v", err)
	}
}

// TestOCCFallbackAfterK conflicts with EVERY attempt: after
// optimisticMaxAttempts failed validations the mixed batch must release
// its write locks, re-run under full pessimistic 2PL — whose growing
// phase re-acquires the read members' shared locks from scratch — and
// still commit exactly once with correct results.
func TestOCCFallbackAfterK(t *testing.T) {
	r := stickRel(t, container.ConcurrentHashMap, container.ConcurrentSkipListMap, func(d *decomp.Decomposition) *locks.Placement {
		p := locks.NewPlacement(d)
		p.SetStripes(d.Root, 16)
		for _, e := range d.Edges {
			if e.Src == d.Root {
				p.Place(e, d.Root, e.Cols...)
			}
		}
		return p
	})
	readSrc := pickDisjointKey(t, r, 16)
	writeSrc := pickDisjointKey(t, r, 16, readSrc)
	mustInsert(t, r, int(readSrc), 2, 10)
	next := int64(100)
	optimisticValidateHook = func(attempt int) {
		mustInsert(t, r, int(readSrc), int(next), 7)
		next++
	}
	defer func() { optimisticValidateHook = nil }()
	var cnt *Pending[int]
	var ins *Pending[bool]
	var tr *BatchTrace
	err := r.Batch(func(tx *Txn) error {
		tx.EnableTrace()
		tr = tx.Trace()
		var err error
		if ins, err = tx.Insert(rel.T("src", writeSrc, "dst", 9), rel.T("weight", 9)); err != nil {
			return err
		}
		cnt, err = tx.Count(rel.T("src", readSrc))
		return err
	})
	optimisticValidateHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if !tr.OCC || !tr.FellBack {
		t.Fatalf("OCC=%v fellBack=%v, want exhausted attempts and fallback", tr.OCC, tr.FellBack)
	}
	if tr.Attempts != optimisticMaxAttempts {
		t.Fatalf("attempts = %d, want %d", tr.Attempts, optimisticMaxAttempts)
	}
	if tr.Acquired == 0 || tr.SharedAcquired == 0 {
		t.Fatalf("fallback run acquired %d locks (%d shared): the 2PL rerun must lock the reads shared",
			tr.Acquired, tr.SharedAcquired)
	}
	if !ins.Value() {
		t.Fatal("insert member reported failure after fallback")
	}
	want := 1 + optimisticMaxAttempts // seed edge + one conflicting insert per attempt
	if cnt.Value() != want {
		t.Fatalf("count = %d, want %d", cnt.Value(), want)
	}
	rows, err := r.Query(rel.T("src", writeSrc), "dst")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("fallback applied the write %d times: %v", len(rows), rows)
	}
	if _, err := r.VerifyWellFormed(); err != nil {
		t.Fatalf("relation ill-formed after fallback: %v", err)
	}
}

// TestOCCDoomedAttemptAuditsCleanly pins the audit relaxation of doomed
// attempts: a re-executed read member (unbound query, overlapping the
// batch's own insert) discovers an instance a CONCURRENT insert created
// after the batch's read phase. With the auditor on (suite default) the
// access is covered by neither a held lock nor a phase-2 epoch record —
// the audit must record the discovered lock instead of panicking, the
// attempt must fail validation (the discovery container's epoch moved),
// and the retry must commit with the foreign row visible.
func TestOCCDoomedAttemptAuditsCleanly(t *testing.T) {
	r := stickRel(t, container.ConcurrentHashMap, container.ConcurrentSkipListMap, func(d *decomp.Decomposition) *locks.Placement {
		p := locks.NewPlacement(d)
		p.SetStripes(d.Root, 16)
		for _, e := range d.Edges {
			if e.Src == d.Root {
				p.Place(e, d.Root, e.Cols...)
			}
		}
		return p
	})
	writeSrc := pickDisjointKey(t, r, 16)
	newSrc := pickDisjointKey(t, r, 16, writeSrc)
	mustInsert(t, r, int(writeSrc), 1, 1)
	optimisticValidateHook = func(attempt int) {
		if attempt == 0 {
			// Creates a brand-new u(newSrc) instance the re-executed
			// unbound scan will discover at apply time.
			mustInsert(t, r, int(newSrc), 5, 5)
		}
	}
	defer func() { optimisticValidateHook = nil }()
	var all *Pending[[]rel.Tuple]
	var tr *BatchTrace
	err := r.Batch(func(tx *Txn) error {
		tx.EnableTrace()
		tr = tx.Trace()
		if _, err := tx.Insert(rel.T("src", writeSrc, "dst", 9), rel.T("weight", 9)); err != nil {
			return err
		}
		var err error
		all, err = tx.Query(rel.T(), "src", "dst") // unbound: always re-executed after the insert
		return err
	})
	optimisticValidateHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if !tr.OCC || tr.FellBack {
		t.Fatalf("OCC=%v fellBack=%v, want a retried OCC success", tr.OCC, tr.FellBack)
	}
	if tr.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (the doomed attempt must fail validation, not panic)", tr.Attempts)
	}
	if len(all.Value()) != 3 { // seed + batch insert + hook insert
		t.Fatalf("unbound query = %v, want 3 rows including the concurrent insert", all.Value())
	}
	if _, err := r.VerifyWellFormed(); err != nil {
		t.Fatalf("relation ill-formed: %v", err)
	}
}

// TestRegistryMixedOCC covers the cross-relation OCC path on the
// Follow-shaped group — insert into one relation, count another: the OCC
// commit must hold exclusive locks on the written relation only, record
// the read relation's epochs, and retry cleanly when a conflicting write
// lands in the READ relation (whose locks the batch never holds, so the
// hook-driven conflict cannot deadlock).
func TestRegistryMixedOCC(t *testing.T) {
	g := NewRegistry()
	build := func(name string) *Relation {
		d, err := decomp.NewBuilder(graphSpec(), "ρ").
			Edge("ρu", "ρ", "u", []string{"src"}, container.ConcurrentHashMap).
			Edge("uv", "u", "v", []string{"dst"}, container.ConcurrentSkipListMap).
			Edge("vw", "v", "w", []string{"weight"}, container.Cell).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		r, err := g.Synthesize(name, d.Spec, WithDecomposition(d), WithPlacement(locks.FineGrained(d)))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	follows, posts := build("follows"), build("posts")
	mustInsert(t, posts, 7, 1, 10)
	mustInsert(t, posts, 7, 2, 11)

	// Clean OCC commit: locks only on follows, epochs on posts.
	var cnt *Pending[int]
	var tr *BatchTrace
	err := g.Batch(func(tx *Txn) error {
		tx.EnableTrace()
		tr = tx.Trace()
		if _, err := tx.InsertInto(follows, rel.T("src", 1, "dst", 7), rel.T("weight", 0)); err != nil {
			return err
		}
		var err error
		cnt, err = tx.CountIn(posts, rel.T("src", 7))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.OCC || tr.Attempts != 1 || tr.FellBack {
		t.Fatalf("OCC=%v attempts=%d fellBack=%v, want one clean OCC attempt", tr.OCC, tr.Attempts, tr.FellBack)
	}
	if tr.SharedAcquired != 0 {
		t.Fatalf("cross-relation OCC acquired %d shared locks, want 0", tr.SharedAcquired)
	}
	for _, rd := range tr.Rounds {
		for _, id := range rd.IDs {
			if id.Rel != follows.RegistryID() {
				t.Fatalf("OCC batch locked relation %d (%v); only the written relation may be locked", id.Rel, id)
			}
		}
	}
	if cnt.Value() != 2 {
		t.Fatalf("count = %d, want 2", cnt.Value())
	}

	// Conflicted commit: a write lands in posts between read and validate.
	optimisticValidateHook = func(attempt int) {
		if attempt == 0 {
			mustInsert(t, posts, 7, 50, 50)
		}
	}
	defer func() { optimisticValidateHook = nil }()
	err = g.Batch(func(tx *Txn) error {
		tx.EnableTrace()
		tr = tx.Trace()
		if _, err := tx.InsertInto(follows, rel.T("src", 2, "dst", 7), rel.T("weight", 0)); err != nil {
			return err
		}
		var err error
		cnt, err = tx.CountIn(posts, rel.T("src", 7))
		return err
	})
	optimisticValidateHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if !tr.OCC || tr.Attempts != 2 || tr.FellBack {
		t.Fatalf("conflicted OCC: attempts=%d fellBack=%v, want one retry then success", tr.Attempts, tr.FellBack)
	}
	if cnt.Value() != 3 {
		t.Fatalf("count = %d, want 3 (the retry must observe the conflicting insert)", cnt.Value())
	}
	for _, r := range []*Relation{follows, posts} {
		if _, err := r.VerifyWellFormed(); err != nil {
			t.Fatalf("%s ill-formed: %v", r.Name(), err)
		}
	}
}

// occOp is one randomized operation for the mixed-batch differential
// quick-check.
type occOp struct {
	Kind     uint8 // 0 insert, 1 remove, 2 count, 3 query
	Src, Dst int64
}

// TestOCCDifferentialQuickCheck interleaves random MIXED batches with the
// sequential Reference oracle on every capable variant: each group's
// per-member results and the final contents must match the same sequence
// executed one operation at a time, whichever commit path ran.
func TestOCCDifferentialQuickCheck(t *testing.T) {
	forEachCapableVariant(t, func(t *testing.T, r *Relation) {
		ref := NewReference(r.Spec())
		rng := rand.New(rand.NewSource(11))
		const keys = 6
		for round := 0; round < 120; round++ {
			n := rng.Intn(5) + 2
			ops := make([]occOp, n)
			mixed := false
			for i := range ops {
				ops[i] = occOp{Kind: uint8(rng.Intn(4)), Src: rng.Int63n(keys), Dst: rng.Int63n(keys)}
			}
			var pb []*Pending[bool]
			var pi []*Pending[int]
			var pt []*Pending[[]rel.Tuple]
			var kindsB, kindsI, kindsT []int
			var tr *BatchTrace
			err := r.Batch(func(tx *Txn) error {
				tx.EnableTrace()
				tr = tx.Trace()
				for i, op := range ops {
					switch op.Kind {
					case 0:
						p, err := tx.Insert(rel.T("src", op.Src, "dst", op.Dst), rel.T("weight", op.Src*10+op.Dst))
						if err != nil {
							return err
						}
						pb, kindsB = append(pb, p), append(kindsB, i)
					case 1:
						p, err := tx.Remove(rel.T("src", op.Src, "dst", op.Dst))
						if err != nil {
							return err
						}
						pb, kindsB = append(pb, p), append(kindsB, i)
					case 2:
						p, err := tx.Count(rel.T("src", op.Src))
						if err != nil {
							return err
						}
						pi, kindsI = append(pi, p), append(kindsI, i)
					case 3:
						p, err := tx.Query(rel.T("src", op.Src), "dst", "weight")
						if err != nil {
							return err
						}
						pt, kindsT = append(pt, p), append(kindsT, i)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			hasW, hasR := false, false
			for _, op := range ops {
				if op.Kind <= 1 {
					hasW = true
				} else {
					hasR = true
				}
			}
			mixed = hasW && hasR
			if mixed && !tr.OCC {
				t.Fatalf("round %d: mixed batch on capable variant skipped the OCC path", round)
			}
			// Replay sequentially against the oracle and compare.
			bi, ii, ti := 0, 0, 0
			for i, op := range ops {
				switch op.Kind {
				case 0:
					want, _ := ref.Insert(rel.T("src", op.Src, "dst", op.Dst), rel.T("weight", op.Src*10+op.Dst))
					if got := pb[bi].Value(); got != want {
						t.Fatalf("round %d member %d: insert = %v, want %v", round, i, got, want)
					}
					bi++
				case 1:
					want, _ := ref.Remove(rel.T("src", op.Src, "dst", op.Dst))
					if got := pb[bi].Value(); got != want {
						t.Fatalf("round %d member %d: remove = %v, want %v", round, i, got, want)
					}
					bi++
				case 2:
					want, _ := ref.Query(rel.T("src", op.Src), "dst")
					if got := pi[ii].Value(); got != len(want) {
						t.Fatalf("round %d member %d: count = %d, want %d", round, i, got, len(want))
					}
					ii++
				case 3:
					want, _ := ref.Query(rel.T("src", op.Src), "dst", "weight")
					if !tuplesEqual(pt[ti].Value(), want) {
						t.Fatalf("round %d member %d: query = %v, want %v", round, i, pt[ti].Value(), want)
					}
					ti++
				}
			}
			if round%10 == 9 {
				got, err := r.VerifyWellFormed()
				if err != nil {
					t.Fatal(err)
				}
				want, _ := ref.Query(rel.T(), r.Spec().Columns...)
				if !tuplesEqual(got, want) {
					t.Fatalf("round %d: contents diverged from oracle", round)
				}
			}
		}
	})
}

// TestOCCConcurrentStress races mixed OCC batches against each other and
// against lock-free read-only batches (run under -race in CI). Every
// writer batch keeps the invariant "src 1 and src 2 have identical
// successor sets" by mutating (1,k) and (2,k) together and counting both
// AFTER the mutations in the same group — sequential semantics plus OCC
// atomicity mean the two in-batch counts must always be equal, and so
// must any read-only batch's counts.
func TestOCCConcurrentStress(t *testing.T) {
	for _, name := range []string{"stick/striped/chm+csl", "diamond/speculative/chm+csl"} {
		t.Run(name, func(t *testing.T) {
			var r *Relation
			for _, v := range capableVariants() {
				if v.name == name {
					r = v.build(t)
				}
			}
			const (
				writers = 2
				readers = 2
				iters   = 250
				keys    = 12
			)
			var wwg, rwg sync.WaitGroup
			stop := make(chan struct{})
			errs := make(chan error, writers+readers)
			for w := 0; w < writers; w++ {
				wwg.Add(1)
				go func(seed int64) {
					defer wwg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						k := rng.Int63n(keys)
						ins := rng.Intn(2) == 0
						var c1, c2 *Pending[int]
						err := r.Batch(func(tx *Txn) error {
							var err error
							if ins {
								if _, err = tx.Insert(rel.T("src", 1, "dst", k), rel.T("weight", k)); err != nil {
									return err
								}
								if _, err = tx.Insert(rel.T("src", 2, "dst", k), rel.T("weight", k)); err != nil {
									return err
								}
							} else {
								if _, err = tx.Remove(rel.T("src", 1, "dst", k)); err != nil {
									return err
								}
								if _, err = tx.Remove(rel.T("src", 2, "dst", k)); err != nil {
									return err
								}
							}
							if c1, err = tx.Count(rel.T("src", 1)); err != nil {
								return err
							}
							c2, err = tx.Count(rel.T("src", 2))
							return err
						})
						if err != nil {
							errs <- err
							return
						}
						if c1.Value() != c2.Value() {
							errs <- fmt.Errorf("mixed-batch atomicity broken: in-batch counts %d != %d", c1.Value(), c2.Value())
							return
						}
					}
				}(int64(w) + 1)
			}
			for rd := 0; rd < readers; rd++ {
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						var c1, c2 *Pending[int]
						err := r.BatchReadOnly(func(tx *Txn) error {
							var err error
							if c1, err = tx.Count(rel.T("src", 1)); err != nil {
								return err
							}
							c2, err = tx.Count(rel.T("src", 2))
							return err
						})
						if err != nil {
							errs <- err
							return
						}
						if c1.Value() != c2.Value() {
							errs <- fmt.Errorf("reader atomicity broken: %d != %d", c1.Value(), c2.Value())
							return
						}
					}
				}()
			}
			wwg.Wait()
			close(stop)
			rwg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			if _, err := r.VerifyWellFormed(); err != nil {
				t.Fatalf("relation ill-formed after OCC stress: %v", err)
			}
		})
	}
}

// TestStandaloneReadsLockFree pins the "optimistic single operations"
// ROADMAP item with a white-box zero-lock trace: the standalone optimistic
// helpers must validate on a quiescent relation while the buffer's
// transaction holds ZERO physical locks, and the public Query/Count
// surfaces must return the same results the locking path returns.
func TestStandaloneReadsLockFree(t *testing.T) {
	forEachCapableVariant(t, func(t *testing.T, r *Relation) {
		for d := 1; d <= 3; d++ {
			mustInsert(t, r, 1, d*3, d)
		}
		qplan, err := r.queryPlanFor([]string{"src"}, []string{"dst", "weight"})
		if err != nil {
			t.Fatal(err)
		}
		row, err := r.rowForTuple(rel.T("src", 1), qplan.BoundMask)
		if err != nil {
			t.Fatal(err)
		}
		b := r.getBuf()
		states, ok := r.runStatesOptimistic(b, qplan.Steps, row, qplan.BoundMask)
		if !ok {
			t.Fatal("quiescent standalone query failed optimistic validation")
		}
		if held := b.txn.HeldCount(); held != 0 {
			t.Fatalf("lock-free standalone query held %d locks, want 0", held)
		}
		if b.reads.Len() == 0 {
			t.Fatal("standalone query recorded no epochs")
		}
		if len(states) != 3 {
			t.Fatalf("optimistic query found %d states, want 3", len(states))
		}
		r.putBuf(b)

		cplan, err := r.countPlanFor([]string{"src"})
		if err != nil {
			t.Fatal(err)
		}
		crow, err := r.rowForTuple(rel.T("src", 1), cplan.BoundMask)
		if err != nil {
			t.Fatal(err)
		}
		b = r.getBuf()
		n, ok := r.runCountOptimistic(b, cplan.Steps, crow, cplan.BoundMask)
		if !ok {
			t.Fatal("quiescent standalone count failed optimistic validation")
		}
		if held := b.txn.HeldCount(); held != 0 {
			t.Fatalf("lock-free standalone count held %d locks, want 0", held)
		}
		if n != 3 {
			t.Fatalf("optimistic count = %d, want 3", n)
		}
		r.putBuf(b)

		// The public surfaces agree with the (audited) results.
		rows, err := r.Query(rel.T("src", 1), "dst", "weight")
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 3 {
			t.Fatalf("Query returned %d rows, want 3", len(rows))
		}
		q, err := r.PrepareQuery([]string{"src"}, []string{"dst"})
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.Count(rel.T("src", 1))
		if err != nil {
			t.Fatal(err)
		}
		if got != 3 {
			t.Fatalf("prepared Count = %d, want 3", got)
		}
	})
}

// TestStandaloneReadRetryAndFallback drives the standalone optimistic
// read through its retry and fallback arms with the validate hook: one
// conflict means one retry (still lock-free), a conflict on every attempt
// means the pessimistic fallback — and in every case the result reflects
// the state including the conflicting writes.
func TestStandaloneReadRetryAndFallback(t *testing.T) {
	r := lockFreeStick(t)
	mustInsert(t, r, 1, 2, 10)
	q, err := r.PrepareQuery([]string{"src"}, []string{"dst"})
	if err != nil {
		t.Fatal(err)
	}

	// One conflict: the retry observes the new row.
	optimisticValidateHook = func(attempt int) {
		if attempt == 0 {
			mustInsert(t, r, 1, 50, 50)
		}
	}
	n, err := q.Count(rel.T("src", 1))
	optimisticValidateHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count after one conflict = %d, want 2", n)
	}

	// A conflict per attempt: the fallback (locking) path runs and counts
	// everything inserted by then.
	next := int64(100)
	fired := 0
	optimisticValidateHook = func(attempt int) {
		fired++
		mustInsert(t, r, 1, int(next), 7)
		next++
	}
	n, err = q.Count(rel.T("src", 1))
	optimisticValidateHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if fired != optimisticMaxAttempts {
		t.Fatalf("hook fired %d times, want %d attempts", fired, optimisticMaxAttempts)
	}
	if n != 2+optimisticMaxAttempts {
		t.Fatalf("fallback count = %d, want %d", n, 2+optimisticMaxAttempts)
	}
}
