package core

import "sync/atomic"

// This file is the advisor's input contract: one always-on counter
// surface unifying what used to be scattered across trace-fed
// workload.LockCounts, the OCC trace fields and hand-rolled server
// fields. Every relation carries a set of atomic cells incremented at
// the existing commit points (one atomic add per cell per batch — no
// allocations, so the steady-state zero-alloc guarantee of the batch
// path holds with the counters always attached), and Harvest snapshots
// them into plain JSON-serializable structs. The online advisor
// (internal/autotune), crstune -live and /v1/stats all consume exactly
// this snapshot.

// relCounters are one relation's live counter cells. They live on the
// Relation (not the representation), so they survive a migration swap.
type relCounters struct {
	reads         atomic.Uint64 // read operations: standalone queries/counts + batch read members
	writes        atomic.Uint64 // mutations: standalone inserts/removes + batch write members
	batches       atomic.Uint64 // committed Relation.Batch groups
	locksAcquired atomic.Uint64 // physical locks held at Relation.Batch commit points
	roOptimistic  atomic.Uint64 // read-only groups that committed lock-free
	occCommits    atomic.Uint64 // mixed groups that committed Silo-style
	occRetries    atomic.Uint64 // optimistic attempts beyond each group's first
	occFallbacks  atomic.Uint64 // groups that exhausted attempts and re-ran under 2PL
	migrations    atomic.Uint64 // completed representation migrations
}

// noteMembers folds a committed batch's member kinds into the cells.
func (c *relCounters) noteMembers(members []member) {
	var rd, wr uint64
	for i := range members {
		if k := members[i].kind; k == mInsert || k == mRemove {
			wr++
		} else {
			rd++
		}
	}
	c.reads.Add(rd)
	c.writes.Add(wr)
}

// regCounters are the registry-level cells, covering cross-relation
// batches (whose per-relation member counts land on the relations, but
// whose batch/lock/path totals belong to the registry batch itself).
type regCounters struct {
	batches       atomic.Uint64
	locksAcquired atomic.Uint64
	roOptimistic  atomic.Uint64
	occCommits    atomic.Uint64
	occRetries    atomic.Uint64
	occFallbacks  atomic.Uint64
}

// RelationCounters is one relation's harvested counter snapshot — the
// advisor's per-relation input: the representation summary (containers,
// optimistic capability) next to the live read/write shape.
type RelationCounters struct {
	// Name is the registration name ("" for standalone relations).
	Name string `json:"name"`
	// Containers lists the container kind of every decomposition edge,
	// in edge-index order.
	Containers []string `json:"containers"`
	// OptimisticCapable reports whether the current representation lets
	// read-only groups run lock-free (every container concurrency-safe).
	OptimisticCapable bool `json:"optimistic_capable"`
	// Reads counts read operations (standalone queries/counts plus batch
	// read members) against the relation.
	Reads uint64 `json:"reads"`
	// Writes counts mutations (standalone plus batch write members).
	Writes uint64 `json:"writes"`
	// Batches counts committed Relation.Batch groups.
	Batches uint64 `json:"batches"`
	// LocksAcquired totals the physical locks held at Relation.Batch
	// commit points.
	LocksAcquired uint64 `json:"locks_acquired"`
	// ReadOnlyOptimistic counts read-only groups committed lock-free.
	ReadOnlyOptimistic uint64 `json:"ro_optimistic"`
	// OCCCommits counts mixed groups committed Silo-style.
	OCCCommits uint64 `json:"occ_commits"`
	// OCCRetries counts optimistic attempts beyond each group's first.
	OCCRetries uint64 `json:"occ_retries"`
	// OCCFallbacks counts groups that exhausted their optimistic
	// attempts and re-ran under full two-phase locking.
	OCCFallbacks uint64 `json:"occ_fallbacks"`
	// Migrations counts completed representation migrations.
	Migrations uint64 `json:"migrations"`
}

// Counters is a registry-wide harvested snapshot: aggregate totals, the
// per-relation breakdown, and the migration event history. It is the
// single counter document the advisor loop, crstune -live and the
// server's /v1/stats all share.
type Counters struct {
	// Batches counts every committed batch: registry-wide groups plus
	// each relation's single-relation groups.
	Batches uint64 `json:"batches"`
	// LocksAcquired totals physical locks held at commit points.
	LocksAcquired uint64 `json:"locks_acquired"`
	// ReadOnlyOptimistic counts read-only groups committed lock-free.
	ReadOnlyOptimistic uint64 `json:"ro_optimistic"`
	// OCCCommits counts mixed groups committed Silo-style.
	OCCCommits uint64 `json:"occ_commits"`
	// OCCRetries counts optimistic attempts beyond each group's first.
	OCCRetries uint64 `json:"occ_retries"`
	// OCCFallbacks counts groups that fell back to full 2PL.
	OCCFallbacks uint64 `json:"occ_fallbacks"`
	// Relations is the per-relation breakdown, in registration order.
	Relations []RelationCounters `json:"relations"`
	// Migrations is the completed migration event history, oldest first.
	Migrations []MigrationEvent `json:"migrations,omitempty"`
}

// Harvest snapshots the relation's counters. Safe to call concurrently
// with traffic; the representation summary is read under the migration
// latch so it never observes a half-migrated relation.
func (r *Relation) Harvest() RelationCounters {
	r.lockRep()
	kinds := make([]string, len(r.decomp.Edges))
	for _, e := range r.decomp.Edges {
		kinds[e.Index] = e.Container.String()
	}
	optimistic := r.optimisticOK
	r.unlockRep()
	return RelationCounters{
		Name:               r.name,
		Containers:         kinds,
		OptimisticCapable:  optimistic,
		Reads:              r.ctr.reads.Load(),
		Writes:             r.ctr.writes.Load(),
		Batches:            r.ctr.batches.Load(),
		LocksAcquired:      r.ctr.locksAcquired.Load(),
		ReadOnlyOptimistic: r.ctr.roOptimistic.Load(),
		OCCCommits:         r.ctr.occCommits.Load(),
		OCCRetries:         r.ctr.occRetries.Load(),
		OCCFallbacks:       r.ctr.occFallbacks.Load(),
		Migrations:         r.ctr.migrations.Load(),
	}
}

// Harvest snapshots the registry's counters: the aggregate totals (the
// registry's own cross-relation batches plus every relation's), each
// relation's breakdown, and the migration history.
func (g *Registry) Harvest() Counters {
	c := Counters{
		Batches:            g.ctr.batches.Load(),
		LocksAcquired:      g.ctr.locksAcquired.Load(),
		ReadOnlyOptimistic: g.ctr.roOptimistic.Load(),
		OCCCommits:         g.ctr.occCommits.Load(),
		OCCRetries:         g.ctr.occRetries.Load(),
		OCCFallbacks:       g.ctr.occFallbacks.Load(),
	}
	for _, r := range g.Relations() {
		rc := r.Harvest()
		c.Batches += rc.Batches
		c.LocksAcquired += rc.LocksAcquired
		c.ReadOnlyOptimistic += rc.ReadOnlyOptimistic
		c.OCCCommits += rc.OCCCommits
		c.OCCRetries += rc.OCCRetries
		c.OCCFallbacks += rc.OCCFallbacks
		c.Relations = append(c.Relations, rc)
	}
	g.evMu.Lock()
	if len(g.events) > 0 {
		c.Migrations = append([]MigrationEvent(nil), g.events...)
	}
	g.evMu.Unlock()
	return c
}

// noteBatch folds one committed registry batch into the counters: the
// registry-level batch/lock/path totals, plus each shard's member kinds
// onto its relation. Called at the commit paths of Registry.batch while
// the transaction's locks are still held (HeldCount is meaningful).
func (g *Registry) noteBatch(t *Txn, ro, occ bool) {
	g.ctr.batches.Add(1)
	if ro {
		g.ctr.roOptimistic.Add(1)
	} else {
		g.ctr.locksAcquired.Add(uint64(t.ltxn.HeldCount()))
	}
	if occ {
		g.ctr.occCommits.Add(1)
	}
	for _, sh := range t.multi.shards {
		sh.r.ctr.noteMembers(sh.b.members)
	}
}
