package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

func edgesSpec() rel.Spec {
	return rel.MustSpec([]string{"src", "dst", "weight"},
		rel.FD{From: []string{"src", "dst"}, To: []string{"weight"}})
}

// edgesDecomp builds the canonical graph stick ρ→u→v→w with the given
// top and middle container kinds.
func edgesDecomp(t testing.TB, top, mid container.Kind) *decomp.Decomposition {
	t.Helper()
	d, err := decomp.NewBuilder(edgesSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, top).
		Edge("uv", "u", "v", []string{"dst"}, mid).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// migRegistry returns a registry holding one "edges" relation over
// non-concurrent containers — the starting point of every migration test.
func migRegistry(t testing.TB) (*Registry, *Relation) {
	t.Helper()
	g := NewRegistry()
	d := edgesDecomp(t, container.HashMap, container.TreeMap)
	r, err := g.Synthesize("edges", d.Spec, WithDecomposition(d), WithPlacement(locks.FineGrained(d)))
	if err != nil {
		t.Fatal(err)
	}
	return g, r
}

// sortedState renders the relation's full contents canonically.
func sortedState(t testing.TB, r *Relation) []string {
	t.Helper()
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(snap))
	for i, tu := range snap {
		out[i] = tu.String()
	}
	sort.Strings(out)
	return out
}

func statesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMigrateBasic pins the quiescent protocol end to end: data survives
// byte-for-byte, the optimistic capability flips with the containers, the
// event record is coherent, and the relation keeps serving (and keeps its
// lock-ID slot) afterwards.
func TestMigrateBasic(t *testing.T) {
	g, r := migRegistry(t)
	const n = 100
	for i := int64(0); i < n; i++ {
		if ok, err := r.Insert(rel.T("src", i%10, "dst", i), rel.T("weight", i*i)); err != nil || !ok {
			t.Fatalf("seed insert %d: ok=%v err=%v", i, ok, err)
		}
	}
	before := sortedState(t, r)
	if r.OptimisticCapable() {
		t.Fatal("HashMap/TreeMap relation claims optimistic capability")
	}

	d2 := edgesDecomp(t, container.ConcurrentHashMap, container.ConcurrentSkipListMap)
	ev, err := g.Migrate("edges", WithDecomposition(d2), WithPlacement(locks.FineGrained(d2)))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Relation != "edges" || ev.Backfilled != n {
		t.Fatalf("event = %+v; want relation=edges backfilled=%d", ev, n)
	}
	if ev.From != "HashMap/TreeMap/Cell" || ev.To != "ConcurrentHashMap/ConcurrentSkipListMap/Cell" {
		t.Fatalf("event summaries = %q -> %q", ev.From, ev.To)
	}
	if ev.OptimisticBefore || !ev.OptimisticAfter {
		t.Fatalf("optimistic flags = %v -> %v", ev.OptimisticBefore, ev.OptimisticAfter)
	}
	if !r.OptimisticCapable() {
		t.Fatal("migrated relation is not optimistic-capable")
	}
	if after := sortedState(t, r); !statesEqual(before, after) {
		t.Fatalf("contents changed across migration:\nbefore %v\nafter  %v", before, after)
	}
	if id := r.root.lock(0).ID(); id.Rel != 1 {
		t.Fatalf("migrated root lock carries rel id %d, want 1", id.Rel)
	}
	// The relation still serves all four operations on the new rep.
	if ok, err := r.Insert(rel.T("src", 999, "dst", 999), rel.T("weight", 1)); err != nil || !ok {
		t.Fatalf("post-migration insert: ok=%v err=%v", ok, err)
	}
	if ok, err := r.Remove(rel.T("src", 999, "dst", 999)); err != nil || !ok {
		t.Fatalf("post-migration remove: ok=%v err=%v", ok, err)
	}
	if got, err := r.Query(rel.T("src", 1), "dst"); err != nil || len(got) != 10 {
		t.Fatalf("post-migration query: %d rows err=%v", len(got), err)
	}
	rc := r.Harvest()
	if rc.Migrations != 1 || rc.OptimisticCapable != true {
		t.Fatalf("harvest = %+v", rc)
	}
	c := g.Harvest()
	if len(c.Migrations) != 1 || c.Migrations[0].To != ev.To {
		t.Fatalf("registry harvest migrations = %+v", c.Migrations)
	}
}

// TestMigrateErrors pins the failure modes: unknown relation, a
// decomposition for the wrong spec, and no representation at all — each
// leaves the relation untouched and the tap uninstalled.
func TestMigrateErrors(t *testing.T) {
	g, r := migRegistry(t)
	if _, err := g.Migrate("nope", WithDecomposition(edgesDecomp(t, container.HashMap, container.TreeMap))); err == nil {
		t.Fatal("migrating an unknown relation succeeded")
	}
	other, err := decomp.NewBuilder(usersSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"user"}, container.HashMap).
		Edge("uc", "u", "c", []string{"posts"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Migrate("edges", WithDecomposition(other)); err == nil {
		t.Fatal("wrong-spec decomposition accepted")
	}
	if _, err := g.Migrate("edges"); err == nil {
		t.Fatal("optionless migrate accepted")
	}
	if g.tap.Load() != nil {
		t.Fatal("failed migration left the tap installed")
	}
	if ok, err := r.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 3)); err != nil || !ok {
		t.Fatalf("relation broken after failed migrations: ok=%v err=%v", ok, err)
	}
}

// TestMigratePreparedHandles pins the versioned-handle contract: handles
// prepared against the old representation transparently recompile against
// the new one on first use after cutover.
func TestMigratePreparedHandles(t *testing.T) {
	g, r := migRegistry(t)
	q, err := r.PrepareQuery([]string{"src"}, []string{"dst", "weight"})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := r.PrepareInsert([]string{"dst", "src"})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := r.PrepareRemove([]string{"dst", "src"})
	if err != nil {
		t.Fatal(err)
	}
	mkRow := func(src, dst, w int64, full bool) rel.Row {
		row := r.Schema().NewRow()
		row.Set(r.Schema().MustIndex("src"), src)
		row.Set(r.Schema().MustIndex("dst"), dst)
		if full {
			row.Set(r.Schema().MustIndex("weight"), w)
		}
		return row
	}
	if ok, err := ins.ExecRow(mkRow(1, 2, 30, true)); err != nil || !ok {
		t.Fatalf("pre-migration prepared insert: ok=%v err=%v", ok, err)
	}

	d2 := edgesDecomp(t, container.ConcurrentHashMap, container.ConcurrentSkipListMap)
	if _, err := g.Migrate("edges", WithDecomposition(d2)); err != nil {
		t.Fatal(err)
	}

	srcRow := r.Schema().NewRow()
	srcRow.Set(r.Schema().MustIndex("src"), int64(1))
	if n, err := q.CountRow(srcRow); err != nil || n != 1 {
		t.Fatalf("prepared count after migration = %d, err=%v", n, err)
	}
	if ok, err := ins.ExecRow(mkRow(4, 5, 60, true)); err != nil || !ok {
		t.Fatalf("prepared insert after migration: ok=%v err=%v", ok, err)
	}
	if ok, err := rm.ExecRow(mkRow(1, 2, 0, false)); err != nil || !ok {
		t.Fatalf("prepared remove after migration: ok=%v err=%v", ok, err)
	}
	if state := sortedState(t, r); len(state) != 1 {
		t.Fatalf("final state = %v", state)
	}
}

// TestMigrateMidTrafficDifferential is the deterministic cutover test:
// the stage hook freezes the migration after backfill, a burst of
// concurrent mutations (standalone ops AND batched transactions) lands in
// the tap, and after release the migrated relation must equal an oracle
// that saw every acknowledged mutation — i.e. catch-up replay loses
// nothing and duplicates nothing.
func TestMigrateMidTrafficDifferential(t *testing.T) {
	g, r := migRegistry(t)
	oracle := map[string]string{} // "src|dst" -> full tuple rendering
	key := func(src, dst int64) string { return fmt.Sprintf("%d|%d", src, dst) }
	ins := func(src, dst, w int64) {
		t.Helper()
		ok, err := r.Insert(rel.T("src", src, "dst", dst), rel.T("weight", w))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			oracle[key(src, dst)] = rel.T("src", src, "dst", dst, "weight", w).String()
		}
	}
	rm := func(src, dst int64) {
		t.Helper()
		ok, err := r.Remove(rel.T("src", src, "dst", dst))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			delete(oracle, key(src, dst))
		}
	}
	for i := int64(0); i < 50; i++ {
		ins(i%5, i, i)
	}

	paused := make(chan struct{})
	release := make(chan struct{})
	migrateStageHook = func(stage string) {
		if stage == "backfilled" {
			close(paused)
			<-release
		}
	}
	defer func() { migrateStageHook = nil }()

	d2 := edgesDecomp(t, container.ConcurrentHashMap, container.ConcurrentSkipListMap)
	done := make(chan error, 1)
	go func() {
		_, err := g.Migrate("edges", WithDecomposition(d2))
		done <- err
	}()
	<-paused

	// Concurrent traffic while the migration is frozen mid-flight: the
	// backfill already ran, so every one of these must reach the new
	// representation via the tap. Overwrite half the snapshot (remove +
	// re-insert with a new weight), delete some, add fresh rows — via
	// standalone ops, single-relation batches and a registry batch.
	for i := int64(0); i < 20; i++ {
		rm(i%5, i)
		ins(i%5, i, 1000+i)
	}
	for i := int64(20); i < 30; i++ {
		rm(i%5, i)
	}
	err := r.Batch(func(tx *Txn) error {
		if _, err := tx.Insert(rel.T("src", 77, "dst", 1), rel.T("weight", 7)); err != nil {
			return err
		}
		_, err := tx.Remove(rel.T("src", 4, "dst", 49))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle[key(77, 1)] = rel.T("src", 77, "dst", 1, "weight", 7).String()
	delete(oracle, key(4, 49))
	err = g.Batch(func(tx *Txn) error {
		if _, err := tx.InsertInto(r, rel.T("src", 88, "dst", 2), rel.T("weight", 8)); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle[key(88, 2)] = rel.T("src", 88, "dst", 2, "weight", 8).String()
	// Reads during the frozen migration still serve from the old rep.
	if rows, err := r.Query(rel.T("src", 77), "dst"); err != nil || len(rows) != 1 {
		t.Fatalf("mid-migration query = %d rows err=%v", len(rows), err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	want := make([]string, 0, len(oracle))
	for _, s := range oracle {
		want = append(want, s)
	}
	sort.Strings(want)
	if got := sortedState(t, r); !statesEqual(got, want) {
		t.Fatalf("migrated state diverges from oracle:\ngot  %v\nwant %v", got, want)
	}
	if !r.OptimisticCapable() {
		t.Fatal("migration did not complete to the concurrent representation")
	}
}

// TestMigrateConcurrentStress hammers the relation from several mutator
// goroutines (disjoint key ownership: goroutine i owns dst ≡ i mod G)
// while the representation migrates back and forth between the
// non-concurrent and concurrent container families. Run under -race this
// is the latch/tap memory-safety proof; the final differential check
// proves zero acknowledged operations were lost or duplicated.
func TestMigrateConcurrentStress(t *testing.T) {
	g, r := migRegistry(t)
	const G = 4
	const rounds = 6

	var stop atomic.Bool
	var wg sync.WaitGroup
	type ownState struct {
		m map[int64]int64 // dst -> weight currently acked as present
	}
	owned := make([]ownState, G)
	for i := range owned {
		owned[i] = ownState{m: map[int64]int64{}}
	}
	for i := 0; i < G; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := owned[i]
			for n := int64(0); !stop.Load(); n++ {
				dst := int64(i) + G*(n%50)
				switch n % 3 {
				case 0:
					w := n
					if ok, err := r.Insert(rel.T("src", i, "dst", dst), rel.T("weight", w)); err != nil {
						t.Errorf("insert: %v", err)
						return
					} else if ok {
						st.m[dst] = w
					}
				case 1:
					if _, err := r.Query(rel.T("src", i), "dst", "weight"); err != nil {
						t.Errorf("query: %v", err)
						return
					}
				case 2:
					if ok, err := r.Remove(rel.T("src", i, "dst", dst)); err != nil {
						t.Errorf("remove: %v", err)
						return
					} else if ok {
						delete(st.m, dst)
					}
				}
			}
		}()
	}

	reps := []struct{ top, mid container.Kind }{
		{container.ConcurrentHashMap, container.ConcurrentSkipListMap},
		{container.HashMap, container.TreeMap},
	}
	for n := 0; n < rounds; n++ {
		d := edgesDecomp(t, reps[n%2].top, reps[n%2].mid)
		if _, err := g.Migrate("edges", WithDecomposition(d)); err != nil {
			t.Errorf("migration %d: %v", n, err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	want := make([]string, 0)
	for i := 0; i < G; i++ {
		for dst, w := range owned[i].m {
			want = append(want, rel.T("src", int64(i), "dst", dst, "weight", w).String())
		}
	}
	sort.Strings(want)
	if got := sortedState(t, r); !statesEqual(got, want) {
		t.Fatalf("state after %d migrations diverges (%d rows, want %d)", rounds, len(got), len(want))
	}
	if rc := r.Harvest(); rc.Migrations != rounds {
		t.Fatalf("harvested migrations = %d, want %d", rc.Migrations, rounds)
	}
}

// TestMigrateCountersHarvest pins the counter plumbing the advisor
// consumes: standalone ops, batches (pessimistic and read-only
// optimistic) and the registry aggregate all land in Harvest snapshots.
func TestMigrateCountersHarvest(t *testing.T) {
	g, r := migRegistry(t)
	for i := int64(0); i < 10; i++ {
		if _, err := r.Insert(rel.T("src", i, "dst", i), rel.T("weight", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Query(rel.T("src", 1), "dst"); err != nil {
		t.Fatal(err)
	}
	err := r.Batch(func(tx *Txn) error {
		if _, err := tx.Count(rel.T("src", 1)); err != nil {
			return err
		}
		_, err := tx.Insert(rel.T("src", 50, "dst", 50), rel.T("weight", 50))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	rc := r.Harvest()
	if rc.Writes < 11 {
		t.Fatalf("writes = %d, want ≥ 11", rc.Writes)
	}
	if rc.Reads < 2 {
		t.Fatalf("reads = %d, want ≥ 2", rc.Reads)
	}
	if rc.Batches != 1 || rc.LocksAcquired == 0 {
		t.Fatalf("batches = %d locks = %d", rc.Batches, rc.LocksAcquired)
	}
	if rc.Name != "edges" || len(rc.Containers) != 3 || rc.OptimisticCapable {
		t.Fatalf("representation summary = %+v", rc)
	}

	// After migrating to concurrent containers, a read-only batch commits
	// lock-free and the counter says so.
	d2 := edgesDecomp(t, container.ConcurrentHashMap, container.ConcurrentSkipListMap)
	if _, err := g.Migrate("edges", WithDecomposition(d2)); err != nil {
		t.Fatal(err)
	}
	err = r.BatchReadOnly(func(tx *Txn) error {
		_, err := tx.Count(rel.T("src", 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	rc = r.Harvest()
	if rc.ReadOnlyOptimistic != 1 {
		t.Fatalf("ro_optimistic = %d, want 1", rc.ReadOnlyOptimistic)
	}
	c := g.Harvest()
	if len(c.Relations) != 1 || c.Batches != rc.Batches {
		t.Fatalf("registry aggregate = %+v", c)
	}
}
