package core

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/query"
	"repro/internal/rel"
)

// This file executes mutation plans. Both mutations share the same growing
// phase skeleton: one pass over the decomposition nodes in topological
// order, acquiring each node's locks exclusively (so lock acquisition
// follows the global order of §5.1), locating the instances the operation
// touches, and — interleaved at the right node positions — advancing the
// embedded existence/locate query states. Writes and deletes then run
// entirely under the held locks, and the transaction releases everything
// at the end: trivially two-phase (§4.2). Operations run on dense rows:
// x is the fully bound tuple as a row, and the key-column subset s is just
// x narrowed to the plan's bound mask.

// runInsert implements insert r s t (§2): insert x = s ∪ t unless some
// existing tuple matches s. x must bind every schema column.
func (r *Relation) runInsert(plan *insertPlan, x rel.Row) bool {
	b := r.getBuf()
	defer r.putBuf(b)

	nNodes := len(r.decomp.Nodes)
	if cap(b.xinst) < nNodes {
		b.xinst = make([]*Instance, nNodes)
	}
	xinst := b.xinst[:nNodes]
	clear(xinst)
	xinst[r.decomp.Root.Index] = r.root
	estates := append(b.pipe[:0], b.rootState(r, x, plan.mut.BoundMask))
	b.pipe = estates

	for i := range plan.mut.PerNode {
		nd := &plan.mut.PerNode[i]
		v := nd.Node
		if v != r.decomp.Root {
			r.locateX(b, nd, xinst, x)
			// Advance the put-if-absent existence states if the exist
			// plan's path passes through this node.
			if step := plan.existAt[v.Index]; step != nil {
				estates = r.execStep(b, step, estates, x)
			}
		}
		r.lockDirective(b, nd, xinst[v.Index], estates, x)
	}

	// Existence: any surviving state traversed the whole existence path,
	// i.e. some tuple matches s — the insert must not happen.
	if len(estates) > 0 {
		b.recycle(estates)
		r.ctr.writes.Add(1)
		return false
	}
	b.recycle(estates)

	r.insertWrite(b, xinst, x)
	r.ctr.writes.Add(1)
	// Migration tap (migrate.go): the deferred putBuf still holds this
	// operation's locks here, so the recorded order is the serialization
	// order.
	r.tapDirect(true, plan.mut.BoundMask, x)
	return true
}

// insertWrite is the write phase of an insert: create the missing
// instances under the held locks. A located instance implies all its
// in-edge entries exist (the entry/instance existence invariant), so only
// missing instances need writes — and they need an entry on every
// in-edge. Written keys are gathered fresh (containers retain them);
// everything else reuses the operation buffer. Batched transactions share
// one fresh-instance set (b.fresh) across all member applies.
func (r *Relation) insertWrite(b *opBuf, xinst []*Instance, x rel.Row) {
	fresh := b.fresh
	if fresh == nil && AuditEnabled() {
		fresh = map[*Instance]bool{}
	}
	for _, n := range r.decomp.Nodes {
		if n == r.decomp.Root || xinst[n.Index] != nil {
			continue
		}
		inst := r.newInstance(n, x)
		xinst[n.Index] = inst
		if fresh != nil {
			fresh[inst] = true
		}
		for _, e := range n.In {
			src := xinst[e.Src.Index]
			if src == nil {
				panic(fmt.Sprintf("core: insert write phase reached %s before its source %s", n.Name, e.Src.Name))
			}
			r.auditAccess(b, e, xinst, x, nil, fresh, false)
			r.writeEdge(b, src, e, x.KeyAt(r.edgeCols[e.Index]), inst)
		}
	}
}

// writeEdge performs the container write implementing edge e on src:
// begin-bump the epoch cells of src's exclusively held locks (so
// optimistic readers overlapping this write cannot validate; epochs stay
// odd until the shrinking phase even if the batch later rolls back), then
// record the displaced binding in the batch undo log when one is active
// (all-or-nothing rollback; batch.go), then write.
func (r *Relation) writeEdge(b *opBuf, src *Instance, e *decomp.Edge, key rel.Key, val any) {
	r.beginWriteEpochs(b, src)
	c := r.container(src, e)
	if b.undo != nil {
		old, had := c.Lookup(key)
		b.undo.record(c, key, old, had)
	}
	c.Write(key, val)
}

// runRemove implements remove r s (§2) for a key row s: locate the
// matching tuple (if any), then remove its edge entries bottom-up with
// cascading cleanup of dead instances.
func (r *Relation) runRemove(plan *removePlan, s rel.Row) bool {
	b := r.getBuf()
	defer r.putBuf(b)

	states := append(b.pipe[:0], b.rootState(r, s, plan.mut.BoundMask))
	b.pipe = states
	for i := range plan.mut.PerNode {
		nd := &plan.mut.PerNode[i]
		if nd.Node != r.decomp.Root {
			states = r.advanceStates(b, nd, states)
		}
		r.lockDirective(b, nd, nil, states, s)
	}
	// Survivors hold complete rows extending s; with s a key there is at
	// most one (more only if the client violated the FDs, in which case we
	// remove them all — remove r s removes every tuple extending s).
	removed := false
	for _, st := range states {
		if st.row.Mask() != r.fullMask {
			continue
		}
		r.deleteTuple(b, st)
		removed = true
	}
	b.recycle(states)
	r.ctr.writes.Add(1)
	if removed {
		// Migration tap (migrate.go): locks still held (putBuf deferred).
		r.tapDirect(false, plan.mut.BoundMask, s)
	}
	return removed
}

// locateX locates node nd.Node's instance for the fully bound row x
// during an insert, via the speculative in-edges (running the §4.5
// protocol, which leaves the target instance locked) or the planned access
// edge. Absent instances leave xinst nil; their creation happens in the
// write phase.
func (r *Relation) locateX(b *opBuf, nd *query.NodeDirective, xinst []*Instance, x rel.Row) {
	v := nd.Node
	var found *Instance
	for i, e := range nd.SpecIns {
		src := xinst[e.Src.Index]
		if src == nil {
			continue
		}
		var inst *Instance
		var ok bool
		if b.apply {
			// Batch apply phase: a plain lookup suffices (see execApplyLookup).
			inst, ok = r.applySpecLocate(b, e, nd.SpecColIdx[i], src, x, xinst)
		} else {
			inst, ok = r.specLocate(b, e, nd.SpecColIdx[i], src, x, locks.Exclusive)
		}
		if !ok {
			continue
		}
		if found != nil && found != inst {
			panic(fmt.Sprintf("core: inconsistent instances of %s via speculative in-edges", v.Name))
		}
		found = inst
	}
	if found == nil && nd.AccessIn != nil {
		if src := xinst[nd.AccessIn.Src.Index]; src != nil {
			r.auditAccess(b, nd.AccessIn, xinst, x, nil, b.fresh, false)
			if val, ok := r.container(src, nd.AccessIn).Lookup(b.keyOf(x, nd.ColIdx)); ok {
				found = val.(*Instance)
			}
		}
	}
	xinst[v.Index] = found
}

// applySpecLocate locates the target of a speculative in-edge during a
// batch's apply phase with a plain lookup: the growing phase already
// locked every pre-existing target the batch can reach, and targets
// created by earlier batch members are private to the transaction.
func (r *Relation) applySpecLocate(b *opBuf, e *decomp.Edge, colIdx []int, src *Instance, row rel.Row, insts []*Instance) (*Instance, bool) {
	v, ok := r.container(src, e).Lookup(b.keyOf(row, colIdx))
	if !ok {
		r.auditAccess(b, e, insts, row, nil, b.fresh, false)
		return nil, false
	}
	inst := v.(*Instance)
	r.auditAccess(b, e, insts, row, inst, b.fresh, false)
	return inst, true
}

// advanceStates moves the remove operation's query states across node
// nd.Node using the planned access route: the first speculative in-edge
// (whose key columns are always bound for mutations) or the planned
// access edge as a lookup or filtered scan.
func (r *Relation) advanceStates(b *opBuf, nd *query.NodeDirective, states []*qstate) []*qstate {
	if len(nd.SpecIns) > 0 {
		if b.apply {
			return r.execApplyLookup(b, nd.SpecIns[0], nd.SpecColIdx[0], states)
		}
		return r.execSpecLookup(b, nd.SpecIns[0], nd.SpecColIdx[0], nd.SpecTargetIdx[0], states, locks.Exclusive)
	}
	e := nd.AccessIn
	if e == nil {
		return nil
	}
	if nd.AccessScan {
		return r.execScan(b, e, nd.ColIdx, nd.FilterPos, nd.FilterIdx, states)
	}
	return r.execLookup(b, e, nd.ColIdx, states)
}

// lockDirective acquires the node's lock step for a mutation: the union of
// the directive's selectors over the x instance (if any) and every state's
// instance at this node, all exclusive.
func (r *Relation) lockDirective(b *opBuf, nd *query.NodeDirective, x *Instance, states []*qstate, op rel.Row) {
	if len(nd.Selectors) == 0 {
		return
	}
	insts := b.instScratch[:0]
	if x != nil {
		insts = append(insts, x)
	}
	for _, st := range states {
		if inst := st.insts[nd.Node.Index]; inst != nil && inst != x {
			insts = append(insts, inst)
		}
	}
	b.instScratch = insts[:0]
	step := query.Step{Kind: query.StepLock, Node: nd.Node, Mode: locks.Exclusive, Selectors: nd.Selectors}
	r.execLockInsts(b, &step, insts, op)
}

// deleteTuple removes the tuple of st.row (fully bound) from every edge,
// in reverse topological order with cascading cleanup (§4.1's instances
// stay adequate): an instance is dead once all its containers are empty —
// unit instances always are — and a dead instance's in-edge entries are
// removed, which may empty its parents' containers in turn.
func (r *Relation) deleteTuple(b *opBuf, st *qstate) {
	for i := len(r.decomp.Nodes) - 1; i >= 0; i-- {
		n := r.decomp.Nodes[i]
		if n == r.decomp.Root {
			continue
		}
		inst := st.insts[n.Index]
		if inst == nil {
			panic(fmt.Sprintf("core: delete phase missing instance of %s", n.Name))
		}
		dead := true
		for ci, c := range inst.containers {
			// Emptiness is a whole-container observation.
			r.auditAccess(b, n.Out[ci], st.insts, st.row, nil, b.fresh, true)
			if c.Len() > 0 {
				dead = false
				break
			}
		}
		if !dead {
			continue
		}
		for _, e := range n.In {
			src := st.insts[e.Src.Index]
			if src == nil {
				panic(fmt.Sprintf("core: delete phase missing source %s of edge %s", e.Src.Name, e.Name))
			}
			// Removal flips present→absent: both the present-entry lock
			// (the speculative target, when applicable) and the absent
			// lock (fallback stripe / placement lock) must be held.
			r.auditAccess(b, e, st.insts, st.row, inst, b.fresh, false)
			r.auditAccess(b, e, st.insts, st.row, nil, b.fresh, false)
			r.writeEdge(b, src, e, b.keyOf(st.row, r.edgeCols[e.Index]), nil)
		}
	}
}
