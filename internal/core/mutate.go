package core

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/query"
	"repro/internal/rel"
)

// This file executes mutation plans. Both mutations share the same growing
// phase skeleton: one pass over the decomposition nodes in topological
// order, acquiring each node's locks exclusively (so lock acquisition
// follows the global order of §5.1), locating the instances the operation
// touches, and — interleaved at the right node positions — advancing the
// embedded existence/locate query states. Writes and deletes then run
// entirely under the held locks, and the transaction releases everything
// at the end: trivially two-phase (§4.2).

// runInsert implements insert r s t (§2): insert x = s ∪ t unless some
// existing tuple matches s.
func (r *Relation) runInsert(plan *insertPlan, s, x rel.Tuple) bool {
	txn := getTxn()
	defer func() {
		txn.ReleaseAll()
		putTxn(txn)
	}()

	nNodes := len(r.decomp.Nodes)
	xinst := make([]*Instance, nNodes)
	xinst[r.decomp.Root.Index] = r.root
	estates := []*qstate{r.rootState(s)}

	for i := range plan.mut.PerNode {
		nd := &plan.mut.PerNode[i]
		v := nd.Node
		if v != r.decomp.Root {
			r.locateX(txn, nd, xinst, x)
			// Advance the put-if-absent existence states if the exist
			// plan's path passes through this node.
			if step := plan.existAt[v.Index]; step != nil {
				estates = r.execStep(txn, step, estates, s)
			}
		}
		r.lockDirective(txn, nd, xinst[v.Index], estates, s)
	}

	// Existence: any surviving state traversed the whole existence path,
	// i.e. some tuple matches s — the insert must not happen.
	if len(estates) > 0 {
		return false
	}

	// Write phase: create the missing instances under the held locks.
	// A located instance implies all its in-edge entries exist (the
	// entry/instance existence invariant), so only missing instances need
	// writes — and they need an entry on every in-edge.
	var fresh map[*Instance]bool
	if AuditEnabled() {
		fresh = map[*Instance]bool{}
	}
	for _, n := range r.decomp.Nodes {
		if n == r.decomp.Root || xinst[n.Index] != nil {
			continue
		}
		inst := r.newInstance(n, x)
		xinst[n.Index] = inst
		if fresh != nil {
			fresh[inst] = true
		}
		for _, e := range n.In {
			src := xinst[e.Src.Index]
			if src == nil {
				panic(fmt.Sprintf("core: insert write phase reached %s before its source %s", n.Name, e.Src.Name))
			}
			r.auditAccess(txn, e, xinst, x, nil, fresh, false)
			src.containerFor(e).Write(x.Key(e.Cols), inst)
		}
	}
	return true
}

// runRemove implements remove r s (§2) for a key tuple s: locate the
// matching tuple (if any), then remove its edge entries bottom-up with
// cascading cleanup of dead instances.
func (r *Relation) runRemove(plan *removePlan, s rel.Tuple) bool {
	txn := getTxn()
	defer func() {
		txn.ReleaseAll()
		putTxn(txn)
	}()

	states := []*qstate{r.rootState(s)}
	for i := range plan.mut.PerNode {
		nd := &plan.mut.PerNode[i]
		v := nd.Node
		if v != r.decomp.Root {
			states = r.advanceStates(txn, nd, states)
		}
		r.lockDirective(txn, nd, nil, states, s)
	}
	// Survivors hold complete tuples extending s; with s a key there is at
	// most one (more only if the client violated the FDs, in which case we
	// remove them all — remove r s removes every tuple extending s).
	removed := false
	for _, st := range states {
		if !rel.ColsEqual(st.tuple.Dom(), r.spec.Columns) {
			continue
		}
		r.deleteTuple(txn, st)
		removed = true
	}
	return removed
}

// locateX locates node nd.Node's instance for the fully bound tuple x
// during an insert, via the speculative in-edges (running the §4.5
// protocol, which leaves the target instance locked) or the planned access
// edge. Absent instances leave xinst nil; their creation happens in the
// write phase.
func (r *Relation) locateX(txn *locks.Txn, nd *query.NodeDirective, xinst []*Instance, x rel.Tuple) {
	v := nd.Node
	var found *Instance
	for _, e := range nd.SpecIns {
		src := xinst[e.Src.Index]
		if src == nil {
			continue
		}
		inst, ok := r.specLocate(txn, e, src, x, locks.Exclusive)
		if !ok {
			continue
		}
		if found != nil && found != inst {
			panic(fmt.Sprintf("core: inconsistent instances of %s via speculative in-edges", v.Name))
		}
		found = inst
	}
	if found == nil && nd.AccessIn != nil {
		if src := xinst[nd.AccessIn.Src.Index]; src != nil {
			r.auditAccess(txn, nd.AccessIn, xinst, x, nil, nil, false)
			if val, ok := src.containerFor(nd.AccessIn).Lookup(x.Key(nd.AccessIn.Cols)); ok {
				found = val.(*Instance)
			}
		}
	}
	xinst[v.Index] = found
}

// advanceStates moves the remove operation's query states across node
// nd.Node using the planned access route: the first speculative in-edge
// (whose key columns are always bound for mutations) or the planned
// access edge as a lookup or filtered scan.
func (r *Relation) advanceStates(txn *locks.Txn, nd *query.NodeDirective, states []*qstate) []*qstate {
	if len(nd.SpecIns) > 0 {
		return r.execSpecLookup(txn, nd.SpecIns[0], states, locks.Exclusive)
	}
	e := nd.AccessIn
	if e == nil {
		return nil
	}
	if nd.AccessScan {
		return r.execScan(txn, e, states)
	}
	return r.execLookup(txn, e, states)
}

// lockDirective acquires the node's lock step for a mutation: the union of
// the directive's selectors over the x instance (if any) and every state's
// instance at this node, all exclusive.
func (r *Relation) lockDirective(txn *locks.Txn, nd *query.NodeDirective, x *Instance, states []*qstate, s rel.Tuple) {
	if len(nd.Selectors) == 0 {
		return
	}
	var buf [4]*Instance
	insts := buf[:0]
	if x != nil {
		insts = append(insts, x)
	}
	for _, st := range states {
		if inst := st.insts[nd.Node.Index]; inst != nil && inst != x {
			insts = append(insts, inst)
		}
	}
	step := query.Step{Kind: query.StepLock, Node: nd.Node, Mode: locks.Exclusive, Selectors: nd.Selectors}
	r.execLockInsts(txn, &step, insts, s)
}

// deleteTuple removes tuple st.tuple (fully bound) from every edge, in
// reverse topological order with cascading cleanup (§4.1's instances stay
// adequate): an instance is dead once all its containers are empty — unit
// instances always are — and a dead instance's in-edge entries are
// removed, which may empty its parents' containers in turn.
func (r *Relation) deleteTuple(txn *locks.Txn, st *qstate) {
	x := st.tuple
	for i := len(r.decomp.Nodes) - 1; i >= 0; i-- {
		n := r.decomp.Nodes[i]
		if n == r.decomp.Root {
			continue
		}
		inst := st.insts[n.Index]
		if inst == nil {
			panic(fmt.Sprintf("core: delete phase missing instance of %s for %v", n.Name, x))
		}
		dead := true
		for ci, c := range inst.containers {
			// Emptiness is a whole-container observation.
			r.auditAccess(txn, n.Out[ci], st.insts, x, nil, nil, true)
			if c.Len() > 0 {
				dead = false
				break
			}
		}
		if !dead {
			continue
		}
		for _, e := range n.In {
			src := st.insts[e.Src.Index]
			if src == nil {
				panic(fmt.Sprintf("core: delete phase missing source %s of edge %s", e.Src.Name, e.Name))
			}
			// Removal flips present→absent: both the present-entry lock
			// (the speculative target, when applicable) and the absent
			// lock (fallback stripe / placement lock) must be held.
			r.auditAccess(txn, e, st.insts, x, inst, nil, false)
			r.auditAccess(txn, e, st.insts, x, nil, nil, false)
			src.containerFor(e).Write(x.Key(e.Cols), nil)
		}
	}
}
