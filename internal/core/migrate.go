package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/decomp"
	"repro/internal/rel"
)

// This file implements live representation migration: Registry.Migrate
// re-synthesizes a registered relation — new decomposition and/or lock
// placement — while the relation keeps serving traffic, and cuts over
// atomically. The protocol (ARCHITECTURE §14):
//
//  1. SIDE SYNTHESIS: the target representation is compiled as a
//     detached relation (tmp) with the SAME stable relation id, so every
//     lock array it mints bakes the identical leading component into its
//     lock IDs and the §5.1 registry-wide total order survives the swap
//     unchanged. tmp is private to the migration: unlogged, untapped,
//     invisible to every other goroutine.
//
//  2. TAP: a migrationTap is installed beside the commit logger. Every
//     commit path that mutates relations — pessimistic single-relation
//     and registry batches, both OCC commits, and standalone
//     insert/remove — already builds (or can build) the batch's logical
//     redo ops at its commit point, under its held locks; the tap
//     records the ops targeting the migrating relation there. Because
//     recording happens before any lock is released, the tap order of
//     two CONFLICTING mutations is exactly their serialization order.
//     After the store, Migrate takes the representation latch exclusive
//     and releases it immediately: every operation that entered before
//     the tap was visible has drained, so from here on each committed
//     mutation is either already applied (and visible to the snapshot
//     below) or recorded in the tap — possibly both, which replay
//     tolerates.
//
//  3. SNAPSHOT + BACKFILL: a consistent full read of the live relation
//     (the optimistic or 2PL read path, either way validated) seeds tmp
//     through its ordinary insert plans.
//
//  4. CATCH-UP: tapped ops are drained and replayed onto tmp in tap
//     order, in rounds, until a round drains below a small threshold.
//     Replay re-executes each op's original decision procedure
//     (put-if-absent insert, blind remove), so re-applying ops the
//     snapshot already reflects is harmless: after the full tapped
//     stream is replayed in order, tmp's final state equals the live
//     relation's regardless of snapshot/tap overlap.
//
//  5. CUTOVER: the representation latch is taken exclusive — every
//     operation entry point holds it shared for its full duration, so
//     exclusivity means no operation is in flight and none can start.
//     The residue of the tap is replayed (nothing new can arrive), the
//     tap is removed, and the relation adopts tmp's representation in
//     place: decomposition, placement, planner, root instance, compiled
//     tables, plan caches and buffer pool swap under the latch, and the
//     representation version bumps so prepared handles re-resolve their
//     plans on next use. In-flight batches therefore never observe a
//     half-migrated relation: they either completed against the old
//     representation before the latch or start against the new one.
//
// Crash contract: the representation choice is NOT persisted. The WAL
// stays a purely logical redo log, so a crash at ANY point of a
// migration recovers by replaying logical ops into the boot-time
// representation — the store is never part-old, part-new on disk
// because the disk never knew about representations in the first place.
//
// Deadlock argument: Migrate holds migrateMu (one migration at a time)
// throughout; it acquires the latch shared only via the snapshot read
// and exclusive only at the barrier and cutover, never while holding
// any data lock; operations acquire the latch before any data lock and
// release it after all of them (latch ≺ every lock in the acquisition
// order). The latch is therefore a root of the lock order and cannot
// close a cycle.

// catchupThreshold is the drain size under which Migrate stops catch-up
// rounds and proceeds to cutover — the residue is small enough to replay
// inside the exclusive-latch pause.
const catchupThreshold = 32

// maxCatchupRounds bounds the catch-up phase: if mutators outrun replay
// this long, the remaining backlog is replayed under the latch (a longer
// pause, never incorrectness).
const maxCatchupRounds = 8

// migrateStageHook, when non-nil, runs at each named stage boundary of a
// migration ("synthesized", "tapped", "snapshot", "backfilled",
// "cutover"). Tests use it to freeze a migration mid-flight and drive
// concurrent traffic deterministically. The hook runs outside the
// exclusive latch, so traffic flows while it blocks.
var migrateStageHook func(stage string)

func migrateStage(stage string) {
	if h := migrateStageHook; h != nil {
		h(stage)
	}
}

// migrationTap records the logical redo ops of committed mutations
// against one relation while a migration is in flight. record runs at
// commit points under the committing batch's locks, so the recorded
// order of conflicting ops is their serialization order; RedoOp.Vals are
// freshly allocated per op (redo.go), so retaining them is safe.
type migrationTap struct {
	rel string
	mu  sync.Mutex
	ops []RedoOp
}

// record appends the ops targeting the tapped relation.
func (tp *migrationTap) record(ops []RedoOp) {
	tp.mu.Lock()
	for i := range ops {
		if ops[i].Rel == tp.rel {
			tp.ops = append(tp.ops, ops[i])
		}
	}
	tp.mu.Unlock()
}

// drain takes the recorded ops, leaving the tap empty.
func (tp *migrationTap) drain() []RedoOp {
	tp.mu.Lock()
	ops := tp.ops
	tp.ops = nil
	tp.mu.Unlock()
	return ops
}

// commitTap returns the migration tap charged with this relation's
// commits: the owning registry's, or nil. One atomic load; nil whenever
// no migration is in flight.
func (r *Relation) commitTap() *migrationTap {
	if g := r.registry; g != nil {
		return g.tap.Load()
	}
	return nil
}

// tapDirect records a standalone (non-batch) mutation into the live
// migration tap, if one is installed and targets this relation. Called
// from runInsert/runRemove while the operation's locks are still held —
// the buffer release (and with it the shrinking phase) is deferred — so
// the serialization-order guarantee of batch commit points extends to
// the direct paths.
func (r *Relation) tapDirect(insert bool, boundMask uint64, row rel.Row) {
	tp := r.commitTap()
	if tp == nil || tp.rel != r.name {
		return
	}
	w := row.Width()
	vals := make([]rel.Value, w)
	mask := row.Mask()
	for i := 0; i < w; i++ {
		if mask&(1<<uint(i)) != 0 {
			vals[i] = row.At(i)
		}
	}
	tp.mu.Lock()
	tp.ops = append(tp.ops, RedoOp{Rel: r.name, Insert: insert, Vals: vals, RowMask: mask, BoundMask: boundMask})
	tp.mu.Unlock()
}

// lockRep acquires the owning registry's representation latch shared —
// every operation entry point holds it for the operation's full
// duration, so Migrate's exclusive acquisition at cutover means "no
// operation in flight". Standalone relations have no registry and no
// migrations, so the latch degenerates to nothing.
func (r *Relation) lockRep() {
	if g := r.registry; g != nil {
		g.migrMu.RLock()
	}
}

// unlockRep releases lockRep.
func (r *Relation) unlockRep() {
	if g := r.registry; g != nil {
		g.migrMu.RUnlock()
	}
}

// MigrationEvent describes one completed live migration — the record
// Registry.Harvest exposes (and /v1/stats serves) so operators can see
// what the advisor did and what it cost.
type MigrationEvent struct {
	// Relation is the migrated relation's registered name.
	Relation string `json:"relation"`
	// From and To summarize the representations as their container kinds
	// in edge-index order, "/"-joined.
	From string `json:"from"`
	To   string `json:"to"`
	// OptimisticBefore/After report OptimisticCapable on each side — the
	// headline unlock of a TreeMap → ConcurrentSkipListMap migration.
	OptimisticBefore bool `json:"optimistic_before"`
	OptimisticAfter  bool `json:"optimistic_after"`
	// Backfilled counts the tuples copied from the snapshot.
	Backfilled int `json:"backfilled"`
	// CatchupOps counts the tapped mutations replayed (catch-up rounds
	// plus the final under-latch residue).
	CatchupOps int `json:"catchup_ops"`
	// PauseNS is the exclusive-latch cutover pause; TotalNS the whole
	// migration, side synthesis through cutover.
	PauseNS int64 `json:"pause_ns"`
	TotalNS int64 `json:"total_ns"`
}

// containerSummary renders a decomposition's container kinds in
// edge-index order, "/"-joined — the From/To fields of MigrationEvent.
func containerSummary(d *decomp.Decomposition) string {
	kinds := make([]string, len(d.Edges))
	for _, e := range d.Edges {
		kinds[e.Index] = e.Container.String()
	}
	return strings.Join(kinds, "/")
}

// Migrate re-synthesizes the named relation to the representation the
// options select (the same option vocabulary as Synthesize) while the
// relation serves traffic, and cuts over atomically; see the protocol
// comment above. It returns the completed migration's event record.
// Migrations are serialized: a second Migrate blocks until the first
// finishes. On any error the relation is untouched — the old
// representation keeps serving.
func (g *Registry) Migrate(name string, opts ...SynthOption) (*MigrationEvent, error) {
	g.migrateMu.Lock()
	defer g.migrateMu.Unlock()

	r := g.RelationByName(name)
	if r == nil {
		return nil, fmt.Errorf("core: no relation %q registered", name)
	}
	d, p, err := resolveSynth(r.spec, opts)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	ev := MigrationEvent{
		Relation:         name,
		From:             containerSummary(r.decomp),
		OptimisticBefore: r.optimisticOK,
	}

	// 1. Side synthesis: detached (nil registry — unlogged, untapped)
	// but with the live relation's stable id, so the new representation's
	// lock IDs occupy exactly the old one's slot in the global order.
	tmp, err := synthesize(nil, r.regID, name, d, p)
	if err != nil {
		return nil, err
	}
	ev.To = containerSummary(tmp.decomp)
	ev.OptimisticAfter = tmp.optimisticOK
	migrateStage("synthesized")

	// 2. Install the tap, then drain in-flight operations: after this
	// Lock/Unlock pulse every running operation either finished (its
	// effects are visible to the snapshot) or started after the store
	// (its commit point sees the tap).
	tp := &migrationTap{rel: name}
	g.tap.Store(tp)
	g.migrMu.Lock()
	//lint:ignore SA2001 empty critical section is the point: a reader
	// barrier — entering excludes all pre-store operations, and any
	// operation entering afterwards observes the tap store.
	g.migrMu.Unlock()
	migrateStage("tapped")

	abort := func(err error) (*MigrationEvent, error) {
		g.tap.Store(nil)
		return nil, err
	}

	// 3. Consistent snapshot of the live relation, backfilled into tmp
	// through its ordinary insert plans (full rows, full-column key).
	snap, err := r.Snapshot()
	if err != nil {
		return abort(err)
	}
	migrateStage("snapshot")
	ins, err := tmp.insertPlanFor(tmp.spec.Columns)
	if err != nil {
		return abort(err)
	}
	for _, tu := range snap {
		row, rerr := tmp.schema.RowFromTuple(tu, nil)
		if rerr != nil {
			return abort(rerr)
		}
		tmp.runInsert(ins, row)
	}
	ev.Backfilled = len(snap)
	migrateStage("backfilled")

	// 4. Catch-up: replay tapped mutations in tap (= serialization)
	// order until a round's drain is small enough to finish under the
	// latch.
	for round := 0; round < maxCatchupRounds; round++ {
		ops := tp.drain()
		ev.CatchupOps += len(ops)
		for i := range ops {
			if aerr := tmp.applyRedo(ops[i]); aerr != nil {
				return abort(aerr)
			}
		}
		if len(ops) <= catchupThreshold {
			break
		}
	}
	migrateStage("cutover")

	// 5. Cutover: exclusive latch — no operation in flight, none can
	// start. Replay the residue, remove the tap, adopt in place.
	pauseStart := time.Now()
	g.migrMu.Lock()
	residue := tp.drain()
	ev.CatchupOps += len(residue)
	for i := range residue {
		if aerr := tmp.applyRedo(residue[i]); aerr != nil {
			g.migrMu.Unlock()
			return abort(aerr)
		}
	}
	g.tap.Store(nil)
	r.adoptRep(tmp)
	r.ctr.migrations.Add(1)
	g.migrMu.Unlock()
	ev.PauseNS = time.Since(pauseStart).Nanoseconds()
	ev.TotalNS = time.Since(start).Nanoseconds()

	g.evMu.Lock()
	g.events = append(g.events, ev)
	g.evMu.Unlock()
	return &ev, nil
}

// applyRedo replays one logical redo op against the relation through its
// ordinary mutation plans — the same re-execution recovery uses, here
// serving migration catch-up. Failed inserts (key present) and empty
// removes are fine: re-applying ops the snapshot already reflects must
// be a no-op.
func (r *Relation) applyRedo(op RedoOp) error {
	row := rel.RowOver(op.Vals, op.RowMask)
	if op.Insert {
		plan, err := r.insertPlanFor(r.maskCols(op.BoundMask))
		if err != nil {
			return err
		}
		r.runInsert(plan, row)
		return nil
	}
	plan, err := r.removePlanFor(r.maskCols(op.BoundMask))
	if err != nil {
		return err
	}
	r.runRemove(plan, row)
	return nil
}

// adoptRep swaps tmp's representation into r in place. Caller holds the
// representation latch exclusive (no operation in flight) — everything
// compiled against the old representation goes at once: decomposition,
// placement, planner, root instance, schema-compiled tables, the
// optimistic capability, the plan caches (tmp's are warm — backfill and
// catch-up compiled against the new representation) and the buffer pool
// (pooled buffers hold old-shape state slabs; tmp's pool is shaped
// right). The identity fields — spec, schema, registry coordinates,
// counters — stay: the relation is the same relation, represented
// differently. The version bump tells prepared handles to re-resolve.
func (r *Relation) adoptRep(tmp *Relation) {
	r.decomp = tmp.decomp
	r.placement = tmp.placement
	r.planner = tmp.planner
	r.root = tmp.root
	r.edgeCols = tmp.edgeCols
	r.edgeSlot = tmp.edgeSlot
	r.nodeKey = tmp.nodeKey
	r.nodeKeyMask = tmp.nodeKeyMask
	r.optimisticOK = tmp.optimisticOK
	r.bufPool = tmp.bufPool
	r.mu.Lock()
	r.queryPlans = tmp.queryPlans
	r.countPlans = tmp.countPlans
	r.insertPlans = tmp.insertPlans
	r.removePlans = tmp.removePlans
	r.mu.Unlock()
	r.repVer++
}
