// Package core ties the substrates together into the paper's headline
// artifact: Synthesize compiles a relational specification, a concurrent
// decomposition (§4.1) and a lock placement (§4.3–4.5) into a Relation
// whose operations (§2) are planned once (internal/query) and executed
// under two-phase, globally ordered locking — serializable and
// deadlock-free by construction (§5).
package core

import (
	"fmt"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

// Instance is the runtime counterpart of a decomposition node (§4.1): one
// object per distinct valuation of the node's bound columns A. It owns one
// container per outgoing edge and the stripe array of physical locks the
// placement assigns to the node.
type Instance struct {
	node *decomp.Node
	// key is the valuation of node.A in sorted column order; it is the
	// instance component of the lock IDs (§5.1).
	key rel.Key
	// containers holds one container per outgoing edge, indexed by the
	// edge's position in node.Out. Values stored in a container are
	// always *Instance.
	containers []container.Map
	// lockArr is the stripe array of physical locks (§4.4).
	lockArr []locks.Lock
}

// newInstance allocates the instance of node n for the valuation carried
// by tuple t (which must bind all of n.A).
func (r *Relation) newInstance(n *decomp.Node, t rel.Tuple) *Instance {
	key := t.Key(n.A)
	inst := &Instance{
		node:       n,
		key:        key,
		containers: make([]container.Map, len(n.Out)),
		lockArr:    locks.NewArray(n.Index, key, r.placement.StripeCount(n)),
	}
	for i, e := range n.Out {
		inst.containers[i] = container.New(e.Container)
	}
	return inst
}

// containerFor returns the container implementing edge e on this instance.
// e must be an out-edge of the instance's node.
func (inst *Instance) containerFor(e *decomp.Edge) container.Map {
	for i, oe := range inst.node.Out {
		if oe == e {
			return inst.containers[i]
		}
	}
	panic(fmt.Sprintf("core: edge %s is not an out-edge of node %s", e.Name, inst.node.Name))
}

// lock returns the i'th physical lock of the instance.
func (inst *Instance) lock(i int) *locks.Lock { return &inst.lockArr[i] }

// qstate is a query state (§5.2): a tuple binding a subset of the
// relation's columns plus the node instances located so far, indexed by
// node topological index.
type qstate struct {
	tuple rel.Tuple
	insts []*Instance
}

// rootState returns the initial query state holding only the root
// instance and the operation's input tuple.
func (r *Relation) rootState(t rel.Tuple) *qstate {
	insts := make([]*Instance, len(r.decomp.Nodes))
	insts[r.decomp.Root.Index] = r.root
	return &qstate{tuple: t, insts: insts}
}

// extend returns a copy of the state with an additional bound tuple part
// and a located instance.
func (st *qstate) extend(t rel.Tuple, n *decomp.Node, inst *Instance) *qstate {
	insts := make([]*Instance, len(st.insts))
	copy(insts, st.insts)
	insts[n.Index] = inst
	return &qstate{tuple: t, insts: insts}
}
