// Package core ties the substrates together into the paper's headline
// artifact: Synthesize compiles a relational specification, a concurrent
// decomposition (§4.1) and a lock placement (§4.3–4.5) into a Relation
// whose operations (§2) are planned once (internal/query) and executed
// under two-phase, globally ordered locking — serializable and
// deadlock-free by construction (§5).
package core

import (
	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

// Instance is the runtime counterpart of a decomposition node (§4.1): one
// object per distinct valuation of the node's bound columns A. It owns one
// container per outgoing edge and the stripe array of physical locks the
// placement assigns to the node.
type Instance struct {
	node *decomp.Node
	// key is the valuation of node.A in sorted column order; it is the
	// instance component of the lock IDs (§5.1).
	key rel.Key
	// containers holds one container per outgoing edge, indexed by the
	// edge's position in node.Out. Values stored in a container are
	// always *Instance.
	containers []container.Map
	// lockArr is the stripe array of physical locks (§4.4).
	lockArr []locks.Lock
}

// newInstance allocates the instance of node n for the valuation carried
// by row (which must bind all of n.A). The instance key is gathered
// through the relation's precomputed schema indices for n.A.
func (r *Relation) newInstance(n *decomp.Node, row rel.Row) *Instance {
	key := row.KeyAt(r.nodeKey[n.Index])
	inst := &Instance{
		node:       n,
		key:        key,
		containers: make([]container.Map, len(n.Out)),
		lockArr:    locks.NewArray(r.regID, n.Index, key, r.placement.StripeCount(n)),
	}
	for i, e := range n.Out {
		inst.containers[i] = container.New(e.Container)
	}
	return inst
}

// container returns the container implementing edge e on inst, via the
// relation's precomputed edge→slot table (no adjacency-list search).
// e must be an out-edge of inst's node.
func (r *Relation) container(inst *Instance, e *decomp.Edge) container.Map {
	return inst.containers[r.edgeSlot[e.Index]]
}

// lock returns the i'th physical lock of the instance.
func (inst *Instance) lock(i int) *locks.Lock { return &inst.lockArr[i] }

// beginWriteEpochs marks a protected write to inst's containers as in
// flight: every epoch cell of inst whose lock the transaction holds
// exclusively is begin-bumped (made odd), exactly once per transaction
// (an already-odd cell under our exclusive hold was bumped by us — no
// other transaction can move a cell while we hold its lock). The bumped
// cells are remembered on the buffer and end-bumped (made even again) by
// finishEpochs just before the shrinking phase releases the locks, so a
// lock-free optimistic reader can never validate a read that overlapped
// this transaction's write phase — including writes later undone by the
// rollback of a panicked batch, which happens while the locks (and the
// odd epochs) are still held.
//
// The written entry's physical lock is always among the bumped cells: the
// executor only writes a container under the entry's placement lock held
// exclusively (the well-lockedness invariant the auditor asserts), and
// that lock lives in the written instance's stripe array — a selector
// stripe for plain placements, the fallback stripe for speculative
// membership changes. Bumping every exclusively held stripe of inst is
// conservative beyond that (it may invalidate readers of sibling
// entries), but never misses a conflict. An already-odd cell under our
// exclusive hold was bumped by us (no other transaction can move a cell
// while we hold its lock) and is skipped inside BeginWriteEpochs.
func (r *Relation) beginWriteEpochs(b *opBuf, inst *Instance) {
	b.bumped = b.txn.BeginWriteEpochs(inst.lockArr, b.bumped)
}

// qstate is a query state (§5.2): a dense row binding a subset of the
// relation's columns plus the node instances located so far, indexed by
// node topological index. States are pooled per operation (see opBuf);
// both backing arrays have fixed width, so states are recycled with no
// allocation on the hot path.
type qstate struct {
	row   rel.Row
	insts []*Instance
}
