package core

// This file is the durability seam of the commit path: the registry can
// carry a CommitLogger (internal/wal's Manager in production), and every
// commit path that mutates a relation — pessimistic single-relation
// batches (commitBatch), pessimistic registry batches (commitTxn) and
// both Silo-style OCC commits (occ.go) — hands the logger one logical
// redo record per committed batch at its commit point: after the apply
// phase has fully staged the batch (2PL) or after read-set validation has
// succeeded (OCC), but before any result is delivered and, crucially,
// while every lock the batch holds is still held. Holding the locks
// across the append means the log order of two CONFLICTING batches is
// exactly their serialization order (the second cannot reach its commit
// point before the first releases), so a replayed log prefix is always a
// serializable prefix of committed batches. If the logger fails, the
// batch rolls back through the same undo log that serves mid-apply
// panics and the error surfaces from Batch — a batch is either durable
// and delivered, or neither.
//
// Read-only batches never log (there is nothing to redo), and a nil
// logger costs the hot path one pointer test — the steady-state
// zero-allocation guarantee of the batch path is unchanged when
// durability is off.

import "repro/internal/rel"

// RedoOp is one logical mutation of a committed batch, in enqueue order:
// the unit of the write-ahead redo log. Vals holds the operation row's
// values in schema column-index order (entries outside RowMask are nil);
// for an insert RowMask covers every column and BoundMask is the s-side
// of the insert's s/t split (the put-if-absent key columns), for a remove
// RowMask == BoundMask covers the bound search columns. Replaying the
// op through Txn.InsertInto/RemoveFrom with the same split re-executes
// the original decision procedure, so replay is idempotent: re-applying
// a suffix of already-applied ops is a no-op.
type RedoOp struct {
	// Rel is the registered name of the relation the op targets.
	Rel string
	// Insert discriminates insert (true) from remove (false).
	Insert bool
	// Vals are the operation row's values, indexed by schema column.
	Vals []rel.Value
	// RowMask marks the columns Vals binds.
	RowMask uint64
	// BoundMask is the insert's s-column split (RowMask for removes).
	BoundMask uint64
}

// CommitLogger is the hook a durability layer implements to persist
// committed batches. LogCommit is called once per committed mutating
// batch, at the commit point, with the batch's mutations in enqueue
// order; the ops slice and the Vals it references are only valid for the
// duration of the call (rows are arena-backed and recycled). A non-nil
// error aborts the commit: the caller rolls the batch back and surfaces
// the error from Batch, so delivery and durability cannot disagree.
//
// LogCommit runs with the batch's locks held — implementations must not
// re-enter the registry (no Batch calls) and should append quickly;
// fsync policy is the implementation's business (see internal/wal).
type CommitLogger interface {
	LogCommit(ops []RedoOp) error
}

// SetCommitLogger attaches (or, with nil, detaches) the registry's
// commit logger. Attach before the registry serves traffic: the field is
// read on every commit without synchronization, so mutating it
// concurrently with batches is a race. Recovery (internal/wal's Open)
// replays into the registry BEFORE attaching the logger, so replayed
// batches are never re-logged.
func (g *Registry) SetCommitLogger(l CommitLogger) { g.logger = l }

// commitLogger returns the logger charged with this relation's commits:
// the owning registry's, or nil for standalone relations.
func (r *Relation) commitLogger() CommitLogger {
	if r.registry == nil {
		return nil
	}
	return r.registry.logger
}

// appendMemberRedo appends m's redo op to ops; the caller filtered m to
// mutation kinds. Vals alias the member's arena-backed row storage, which
// outlives the LogCommit call per the CommitLogger contract.
func appendMemberRedo(ops []RedoOp, relName string, m *member) []RedoOp {
	row := m.row
	w := row.Width()
	vals := make([]rel.Value, w)
	mask := row.Mask()
	for i := 0; i < w; i++ {
		if mask&(1<<uint(i)) != 0 {
			vals[i] = row.At(i)
		}
	}
	return append(ops, RedoOp{
		Rel:       relName,
		Insert:    m.kind == mInsert,
		Vals:      vals,
		RowMask:   mask,
		BoundMask: m.mut.BoundMask,
	})
}

// shardRedo builds the redo ops of a single-relation batch in member
// (= enqueue) order; nil when the batch holds no mutations.
func (r *Relation) shardRedo(b *opBuf) []RedoOp {
	n := 0
	for i := range b.members {
		if k := b.members[i].kind; k == mInsert || k == mRemove {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	ops := make([]RedoOp, 0, n)
	for i := range b.members {
		m := &b.members[i]
		if m.kind != mInsert && m.kind != mRemove {
			continue
		}
		ops = appendMemberRedo(ops, r.name, m)
	}
	return ops
}

// registryRedo builds the redo ops of a registry batch in global enqueue
// order (t.multi.order, spanning all shards); nil when the batch holds no
// mutations.
func (t *Txn) registryRedo() []RedoOp {
	n := 0
	for _, ref := range t.multi.order {
		if k := ref.sh.b.members[ref.idx].kind; k == mInsert || k == mRemove {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	ops := make([]RedoOp, 0, n)
	for _, ref := range t.multi.order {
		m := &ref.sh.b.members[ref.idx]
		if m.kind != mInsert && m.kind != mRemove {
			continue
		}
		ops = appendMemberRedo(ops, ref.sh.r.name, m)
	}
	return ops
}
