package core

import (
	"repro/internal/locks"
	"repro/internal/rel"
)

// opBuf bundles everything one executing operation needs — the two-phase
// transaction, the query-state pool, the key arena and assorted scratch
// slices — so that a steady-state operation performs no heap allocation
// beyond what containers themselves do. Buffers are pooled per Relation
// (widths depend on the schema and decomposition), checked out by getBuf
// at the start of an operation or batch and returned by putBuf, whose
// ReleaseAll is the shrinking phase of every transaction.
//
// Ownership rules, which the batch executor (batch.go) leans on:
//
//   - qstates come from the `all` pool and stay owned by the buffer; a
//     state handed out remains valid until putBuf, so batch members may
//     retain their final state lists across the whole transaction;
//   - pipe and spare are ping-pong ARRAYS for state lists, not state
//     owners: a scan builds its output on spare and donates its input
//     array back. Single operations may leave the two aliased (harmless
//     there); the batch executor detaches both before running;
//   - keys carved from the arena (keyOf/carve) live until putBuf but must
//     never be stored into containers, which retain keys indefinitely —
//     use Row.KeyAt for durable keys.
type opBuf struct {
	txn *locks.Txn

	// all is every qstate this buffer ever allocated; n is how many are
	// handed out to the current operation. Rows and instance arrays have
	// fixed width, so recycling a state is a mask clear plus a memclr.
	all []*qstate
	n   int

	// pipe and spare are the two backing arrays the step pipeline
	// ping-pongs between: list-producing steps (scans, speculative
	// lookups) fill spare and recycle the incoming list as the new spare.
	pipe  []*qstate
	spare []*qstate

	// karena backs transient container keys (lookups, removals, stripe
	// sorts). Keys carved here must never be stored into a container —
	// the arena is recycled across operations; use Row.KeyAt for keys a
	// container retains.
	karena []rel.Value

	// lockBatch, instScratch, seen and reqs are per-step scratch.
	lockBatch   []*locks.Lock
	instScratch []*Instance
	seen        map[*Instance]bool
	reqs        []specReq
	xinst       []*Instance

	// Batched-transaction mode (batch.go). collect, when non-nil, diverts
	// lock-step acquisition into a coalescing LockSet instead of taking
	// the locks immediately (the growing phase of a batch). apply marks
	// the batch's apply phase: every lock the batch needs is already
	// held, so lock steps are skipped and speculative accesses degrade to
	// plain lookups/scans. fresh tracks instances created by the running
	// batch (private until release; consulted by the auditor), and undo
	// logs container writes for all-or-nothing rollback.
	collect *locks.LockSet
	apply   bool
	fresh   map[*Instance]bool
	undo    *undoLog

	// Batch slabs, pooled with the buffer: the member list a Txn enqueues
	// into, the pending speculative requests of the current scheduler
	// round, the coalescing lock set, and the arena backing member-owned
	// copies of operation rows. (The Txn handle itself is deliberately
	// NOT pooled; see Relation.Batch.)
	members  []member
	specs    []batchSpecReq
	set      locks.LockSet
	rowArena []rel.Value

	// Optimistic read protocol state (readonly.go). bumped lists the epoch
	// cells this operation begin-bumped before its first write under each
	// (beginWriteEpochs); finishEpochs end-bumps them just before the
	// shrinking phase. optimistic marks a lock-free read-only attempt:
	// lock steps record epochs into reads instead of acquiring, and
	// speculative accesses degrade to recorded plain lookups.
	bumped     []*locks.Lock
	optimistic bool
	reads      locks.ReadSet

	// occ marks the Silo-style commit of a MIXED batch (occ.go): write
	// members run the pessimistic growing phase (exclusive locks only),
	// read members run lock-free with epoch records, and the apply phase
	// is undo-log staged until the read-set validates. While occ is set the
	// well-lockedness auditor accepts EITHER a held lock or a recorded
	// epoch as coverage.
	occ bool

	// Round-map scheduler state (rounds.go). rounds marks a batch whose
	// every member carries a compiled round program, so the growing phase
	// walks flat round arrays over member-owned state lists instead of the
	// generic cursor machine. groupKey/groupOrder memoize the plan-identity
	// grouping of the member list across batches (groupKey[i] is member i's
	// program pointer); specIdx holds the per-node index buckets of the
	// bucketed speculative resolution; undoPool is the buffer-resident
	// apply-phase undo log (a stack undoLog escapes through b.undo, so
	// reusing this one saves an allocation per batch).
	rounds     bool
	groupKey   []any
	groupOrder []int32
	specIdx    [][]int32
	undoPool   undoLog

	// scan/scanFn are the cached scan-visitor closure and its per-call
	// parameter block (exec.go execScanInto): one closure allocation per
	// buffer lifetime instead of one per scanned state.
	scan   scanCtx
	scanFn func(k rel.Key, v any) bool

	// pbSlab/piSlab/txnSlab chunk-allocate Pending and Txn handles
	// (batch.go newPB/newPI/newTxn); they persist across batches, so a
	// slab's already-handed-out prefix stays untouched while later batches
	// keep filling the tail.
	pbSlab  []Pending[bool]
	piSlab  []Pending[int]
	txnSlab []Txn

	// shard is the Relation.Batch transaction's single shard, recycled
	// across batches (Txn.single points here). Unlike the Txn handle it
	// may be reused freely: every path from a leaked *Txn to its shard is
	// behind the sealed check.
	shard txnShard
}

// specReq pairs a state with its speculative target key so acquisitions
// can be ordered by target (§4.5 + §5.1).
type specReq struct {
	st     *qstate
	target rel.Key
}

// getBuf fetches a pooled buffer with a reset transaction.
func (r *Relation) getBuf() *opBuf {
	b, _ := r.bufPool.Get().(*opBuf)
	if b == nil {
		b = &opBuf{txn: locks.NewTxn()}
	}
	b.txn.Reset()
	return b
}

// finishEpochs end-bumps every epoch cell the operation begin-bumped,
// restoring evenness. It must run while the locks are still held — after
// any undo-log rollback, before the shrinking phase — so the odd window
// covers every write the operation performed, including rolled-back ones.
func (b *opBuf) finishEpochs() {
	for i, l := range b.bumped {
		l.BumpEpoch()
		b.bumped[i] = nil
	}
	b.bumped = b.bumped[:0]
}

// putBuf releases the operation's locks and returns the buffer to the
// pool. The shrinking phase (release every lock, reverse order) lives
// here, mirroring the implicit unlock suffix of every compiled plan.
func (r *Relation) putBuf(b *opBuf) {
	b.finishEpochs()
	b.txn.ReleaseAll()
	b.n = 0
	if len(b.all) > 4096 {
		// Bound pool growth after huge scans: copy into a fresh backing
		// array and drop the pipeline lists so the trimmed states (and
		// the values their rows hold) really become collectable.
		b.all = append(make([]*qstate, 0, 4096), b.all[:4096]...)
		b.pipe, b.spare = nil, nil
	}
	clear(b.karena)
	b.karena = b.karena[:0]
	// Every reqs/specs consumer clears its used prefix before truncating,
	// so only panic leftovers (len > 0) can hold stale pointers here — a
	// length-only clear suffices, not a capacity sweep.
	clear(b.reqs)
	b.reqs = b.reqs[:0]
	clear(b.seen) // b.seen is normally clean; a recovered panic mid-dedup must not leak entries
	b.collect = nil
	b.apply = false
	b.fresh = nil
	b.undo = nil
	for i := range b.members {
		b.members[i].reset()
	}
	b.members = b.members[:0]
	clear(b.specs)
	b.specs = b.specs[:0]
	b.set.Reset()
	clear(b.rowArena)
	b.rowArena = b.rowArena[:0]
	b.optimistic = false
	b.occ = false
	b.reads.Reset()
	b.rounds = false
	// groupKey/groupOrder persist: they memoize the plan-identity grouping
	// and are revalidated against the member list before every use.
	for i := range b.specIdx {
		b.specIdx[i] = b.specIdx[i][:0] // normally empty; a recovered panic mid-wave must not leak indices
	}
	r.bufPool.Put(b)
}

// state hands out a cleared query state.
func (b *opBuf) state(r *Relation) *qstate {
	if b.n < len(b.all) {
		st := b.all[b.n]
		b.n++
		st.row.ClearMask()
		clear(st.insts)
		return st
	}
	st := &qstate{row: r.schema.NewRow(), insts: make([]*Instance, len(r.decomp.Nodes))}
	b.all = append(b.all, st)
	b.n++
	return st
}

// clone hands out a copy of st.
func (b *opBuf) clone(r *Relation, st *qstate) *qstate {
	ns := b.state(r)
	ns.row.CopyFrom(st.row)
	copy(ns.insts, st.insts)
	return ns
}

// rootState builds the initial query state: the operation row narrowed to
// mask, with the root instance located.
func (b *opBuf) rootState(r *Relation, op rel.Row, mask uint64) *qstate {
	st := b.state(r)
	st.row.CopyFrom(op)
	st.row.SetMask(mask)
	st.insts[r.decomp.Root.Index] = r.root
	return st
}

// carve reserves n value slots in the key arena. When the arena is full a
// fresh one is allocated; previously carved keys keep referencing the old
// array, which stays alive until the operation ends.
func (b *opBuf) carve(n int) []rel.Value {
	if len(b.karena)+n > cap(b.karena) {
		c := 2 * cap(b.karena)
		if c < 64 {
			c = 64
		}
		if c < n {
			c = n
		}
		b.karena = make([]rel.Value, 0, c)
	}
	off := len(b.karena)
	b.karena = b.karena[:off+n]
	return b.karena[off : off+n : off+n]
}

// keyOf gathers a transient container key from row values at idx. The key
// lives in the arena: valid for the rest of the operation, but must not
// be stored into a container.
func (b *opBuf) keyOf(row rel.Row, idx []int) rel.Key {
	kv := b.carve(len(idx))
	for i, ci := range idx {
		kv[i] = row.At(ci)
	}
	return rel.KeyOver(kv)
}

// recycle hands a finished pipeline list back so the next operation on
// this buffer reuses its capacity.
func (b *opBuf) recycle(states []*qstate) {
	if states != nil {
		b.pipe = states[:0]
	}
}
