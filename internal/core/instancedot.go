package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/container"
	"repro/internal/rel"
)

// InstanceDOT renders the current decomposition instance as Graphviz DOT
// in the style of Figure 2(b): one graph node per node instance (labelled
// with its bound-column valuation), one edge per container entry
// (labelled with the entry's key valuation), dotted/dashed/solid styling
// matching the static diagram. Like VerifyWellFormed it takes no locks and
// is meant for quiescent relations (tools, tests, documentation).
func (r *Relation) InstanceDOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")

	names := map[*Instance]string{}
	counters := make([]int, len(r.decomp.Nodes))
	nameOf := func(inst *Instance) string {
		if n, ok := names[inst]; ok {
			return n
		}
		counters[inst.node.Index]++
		n := fmt.Sprintf("%s%d", inst.node.Name, counters[inst.node.Index])
		names[inst] = n
		label := n
		if inst.key.Len() > 0 {
			label = fmt.Sprintf("%s\\n%s", n, inst.key)
		}
		fmt.Fprintf(&b, "  %q [label=\"%s\"];\n", n, strings.ReplaceAll(label, `"`, `\"`))
		return n
	}

	type entry struct {
		src, dst *Instance
		label    string
		style    string
	}
	var entries []entry
	seen := map[*Instance]bool{}
	var walk func(inst *Instance)
	walk = func(inst *Instance) {
		if seen[inst] {
			return
		}
		seen[inst] = true
		nameOf(inst)
		for i, e := range inst.node.Out {
			style := "solid"
			switch {
			case e.IsUnitEdge():
				style = "dotted"
			case container.PropertiesOf(e.Container).ConcurrencySafe():
				style = "dashed"
			}
			inst.containers[i].Scan(func(k rel.Key, v any) bool {
				child := v.(*Instance)
				entries = append(entries, entry{src: inst, dst: child, label: k.String(), style: style})
				walk(child)
				return true
			})
		}
	}
	walk(r.root)

	// Deterministic edge order for stable output.
	sort.Slice(entries, func(i, j int) bool {
		a, bb := entries[i], entries[j]
		if names[a.src] != names[bb.src] {
			return names[a.src] < names[bb.src]
		}
		if a.label != bb.label {
			return a.label < bb.label
		}
		return names[a.dst] < names[bb.dst]
	})
	for _, e := range entries {
		fmt.Fprintf(&b, "  %q -> %q [label=%q, style=%s];\n", names[e.src], names[e.dst], e.label, e.style)
	}
	b.WriteString("}\n")
	return b.String()
}
