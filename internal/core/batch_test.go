package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/container"
	"repro/internal/rel"
)

// TestBatchMatchesSequential runs the same operation sequence once as
// individual operations and once as a single batch, on every variant, and
// requires identical per-operation results and final contents — the batch
// semantics contract: a batch behaves like its members run sequentially,
// atomically.
func TestBatchMatchesSequential(t *testing.T) {
	ops := []struct {
		kind             string
		src, dst, weight int
	}{
		{"ins", 1, 2, 10},
		{"ins", 1, 3, 11},
		{"ins", 1, 2, 99}, // duplicate key: put-if-absent fails
		{"cnt", 1, 0, 0},
		{"rem", 1, 2, 0},
		{"ins", 1, 2, 12}, // re-insert after remove in the same batch
		{"cnt", 1, 0, 0},
		{"rem", 9, 9, 0}, // absent key
	}
	forEachVariant(t, func(t *testing.T, r *Relation) {
		ref := NewReference(r.Spec())
		var want []any
		for _, op := range ops {
			switch op.kind {
			case "ins":
				ok, err := ref.Insert(rel.T("src", op.src, "dst", op.dst), rel.T("weight", op.weight))
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, ok)
			case "rem":
				ok, err := ref.Remove(rel.T("src", op.src, "dst", op.dst))
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, ok)
			case "cnt":
				res, err := ref.Query(rel.T("src", op.src), "dst")
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, len(res))
			}
		}
		var bools []*Pending[bool]
		var ints []*Pending[int]
		var order []string
		err := r.Batch(func(tx *Txn) error {
			for _, op := range ops {
				switch op.kind {
				case "ins":
					p, err := tx.Insert(rel.T("src", op.src, "dst", op.dst), rel.T("weight", op.weight))
					if err != nil {
						return err
					}
					bools = append(bools, p)
					order = append(order, "b")
				case "rem":
					p, err := tx.Remove(rel.T("src", op.src, "dst", op.dst))
					if err != nil {
						return err
					}
					bools = append(bools, p)
					order = append(order, "b")
				case "cnt":
					p, err := tx.Count(rel.T("src", op.src))
					if err != nil {
						return err
					}
					ints = append(ints, p)
					order = append(order, "i")
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		bi, ii := 0, 0
		for i, tag := range order {
			var got any
			if tag == "b" {
				got = bools[bi].Value()
				bi++
			} else {
				got = ints[ii].Value()
				ii++
			}
			if got != want[i] {
				t.Fatalf("op %d (%s): batch got %v, sequential reference got %v", i, ops[i].kind, got, want[i])
			}
		}
		assertSameTuples(t, r, ref)
	})
}

// assertSameTuples checks that the relation's contents match the
// reference's, and that the instance graph is well formed.
func assertSameTuples(t *testing.T, r *Relation, ref *Reference) {
	t.Helper()
	got, err := r.VerifyWellFormed()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("contents diverge: synthesized has %d tuples, reference %d\n%v\n%v", len(got), len(want), got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("tuple %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestBatchReadSnapshot pins the read-members contract: queries and
// counts enqueued before the first mutation see the pre-batch state, and
// ones enqueued after it see the effects of the mutations before them.
func TestBatchReadSnapshot(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		mustInsert(t, r, 1, 2, 40)
		var before, after *Pending[int]
		err := r.Batch(func(tx *Txn) error {
			var err error
			if before, err = tx.Count(rel.T("src", 1)); err != nil {
				return err
			}
			if _, err = tx.Insert(rel.T("src", 1, "dst", 7), rel.T("weight", 1)); err != nil {
				return err
			}
			after, err = tx.Count(rel.T("src", 1))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if before.Value() != 1 {
			t.Fatalf("pre-mutation count = %d, want 1", before.Value())
		}
		if after.Value() != 2 {
			t.Fatalf("post-mutation count = %d, want 2 (read-your-writes)", after.Value())
		}
	})
}

// TestBatchExecRows exercises the prepared-row batch surface end to end:
// ExecRow mutations and an ExecRows read delivering rows at commit.
func TestBatchExecRows(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		ins, err := r.PrepareInsert([]string{"dst", "src"})
		if err != nil {
			t.Fatal(err)
		}
		rem, err := r.PrepareRemove([]string{"dst", "src"})
		if err != nil {
			t.Fatal(err)
		}
		q, err := r.PrepareQuery([]string{"src"}, []string{"dst", "weight"})
		if err != nil {
			t.Fatal(err)
		}
		schema := r.Schema()
		iSrc, iDst, iW := schema.MustIndex("src"), schema.MustIndex("dst"), schema.MustIndex("weight")
		row := func(src, dst, w int64, full bool) rel.Row {
			rw := schema.NewRow()
			rw.Set(iSrc, src)
			rw.Set(iDst, dst)
			if full {
				rw.Set(iW, w)
			}
			return rw
		}
		mustInsert(t, r, 5, 1, 100)
		var okIns, okRem *Pending[bool]
		seen := 0
		err = r.Batch(func(tx *Txn) error {
			var err error
			if okIns, err = tx.ExecRow(ins, row(5, 2, 7, true)); err != nil {
				return err
			}
			if okRem, err = tx.ExecRow(rem, row(5, 1, 0, false)); err != nil {
				return err
			}
			qr := schema.NewRow()
			qr.Set(iSrc, int64(5))
			return tx.ExecRows(q, qr, func(rel.Row) bool { seen++; return true })
		})
		if err != nil {
			t.Fatal(err)
		}
		if !okIns.Value() || !okRem.Value() {
			t.Fatalf("ExecRow results: insert %v remove %v, want true true", okIns.Value(), okRem.Value())
		}
		// The query was enqueued after the mutations: it must observe them.
		if seen != 1 {
			t.Fatalf("ExecRows yielded %d rows, want 1 (post-mutation view)", seen)
		}
	})
}

// TestBatchAbort checks all-or-nothing on callback error: nothing runs.
func TestBatchAbort(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		mustInsert(t, r, 1, 2, 3)
		errBoom := fmt.Errorf("boom")
		err := r.Batch(func(tx *Txn) error {
			if _, err := tx.Insert(rel.T("src", 8, "dst", 8), rel.T("weight", 8)); err != nil {
				return err
			}
			if _, err := tx.Remove(rel.T("src", 1, "dst", 2)); err != nil {
				return err
			}
			return errBoom
		})
		if err != errBoom {
			t.Fatalf("Batch returned %v, want the callback error", err)
		}
		tuples, err := r.VerifyWellFormed()
		if err != nil {
			t.Fatal(err)
		}
		if len(tuples) != 1 {
			t.Fatalf("aborted batch changed the relation: %v", tuples)
		}
	})
}

// TestBatchLockAudit is the coalescing acceptance test: an N-operation
// batch acquires each physical lock AT MOST ONCE (no lock identity
// repeats anywhere in the batch's acquisition trace), and acquires no
// more locks than the same operations issued as N one-member batches.
func TestBatchLockAudit(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		// Overlapping ops: two inserts under one source, a remove of one of
		// them, and reads of the same source — heavy lock overlap.
		run := func(grouped bool) (acquired, requested int) {
			ops := func(tx *Txn) error {
				if _, err := tx.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 10)); err != nil {
					return err
				}
				if _, err := tx.Insert(rel.T("src", 1, "dst", 3), rel.T("weight", 11)); err != nil {
					return err
				}
				if _, err := tx.Count(rel.T("src", 1)); err != nil {
					return err
				}
				if _, err := tx.Remove(rel.T("src", 1, "dst", 2)); err != nil {
					return err
				}
				return nil
			}
			if grouped {
				var tr *BatchTrace
				err := r.Batch(func(tx *Txn) error {
					tx.EnableTrace()
					tr = tx.Trace()
					return ops(tx)
				})
				if err != nil {
					t.Fatal(err)
				}
				seen := map[string]bool{}
				for _, rd := range tr.Rounds {
					for _, id := range rd.IDs {
						if seen[id.String()] {
							t.Fatalf("batch acquired lock %v more than once:\n%s", id, tr)
						}
						seen[id.String()] = true
					}
				}
				return tr.Acquired, tr.Requested
			}
			// One-member batches: the non-coalesced baseline.
			singles := []func(tx *Txn) error{
				func(tx *Txn) error { _, err := tx.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 10)); return err },
				func(tx *Txn) error { _, err := tx.Insert(rel.T("src", 1, "dst", 3), rel.T("weight", 11)); return err },
				func(tx *Txn) error { _, err := tx.Count(rel.T("src", 1)); return err },
				func(tx *Txn) error { _, err := tx.Remove(rel.T("src", 1, "dst", 2)); return err },
			}
			for _, s := range singles {
				var tr *BatchTrace
				err := r.Batch(func(tx *Txn) error {
					tx.EnableTrace()
					tr = tx.Trace()
					return s(tx)
				})
				if err != nil {
					t.Fatal(err)
				}
				acquired += tr.Acquired
				requested += tr.Requested
			}
			return acquired, requested
		}
		groupedAcq, _ := run(true)
		// Reset contents for the sequential run.
		r.Remove(rel.T("src", 1, "dst", 3))
		seqAcq, _ := run(false)
		if groupedAcq > seqAcq {
			t.Fatalf("coalesced batch acquired %d locks, sequential acquired %d", groupedAcq, seqAcq)
		}
		if groupedAcq == 0 {
			t.Fatal("trace recorded no acquisitions")
		}
	})
}

// TestBatchDifferentialQuick is the batched-vs-sequential differential
// quick-check: any random operation group executed as one batch yields
// the same per-operation results and final contents as the same sequence
// executed one operation at a time against the §2 reference.
func TestBatchDifferentialQuick(t *testing.T) {
	runBatchDifferentialQuick(t)
}

// TestBatchDifferentialQuickCursorMachine re-runs the same differential
// with the round-map scheduler disabled, so the generic cursor machine
// (the fallback scheduler) stays pinned to the sequential oracle too.
func TestBatchDifferentialQuickCursorMachine(t *testing.T) {
	defer SetRoundMaps(SetRoundMaps(false))
	runBatchDifferentialQuick(t)
}

func runBatchDifferentialQuick(t *testing.T) {
	for _, name := range []string{"stick/fine/tree+tree", "split/striped/chm+hash", "diamond/speculative"} {
		var v *variant
		vars := graphVariants()
		for i := range vars {
			if vars[i].name == name {
				v = &vars[i]
			}
		}
		if v == nil {
			t.Fatalf("variant %s missing", name)
		}
		t.Run(name, func(t *testing.T) {
			f := func(pre, group graphOps) bool {
				r := v.build(t)
				ref := NewReference(r.Spec())
				// Pre-populate both sides identically.
				for _, op := range pre {
					if op.Kind%5 >= 2 {
						continue
					}
					s := rel.T("src", int(op.Src), "dst", int(op.Dst))
					w := rel.T("weight", int(op.Weight))
					if _, err := r.Insert(s, w); err != nil {
						t.Fatal(err)
					}
					if _, err := ref.Insert(s, w); err != nil {
						t.Fatal(err)
					}
				}
				// Sequential reference results.
				var want []any
				for _, op := range group {
					s := rel.T("src", int(op.Src), "dst", int(op.Dst))
					switch op.Kind % 5 {
					case 0, 1:
						ok, _ := ref.Insert(s, rel.T("weight", int(op.Weight)))
						want = append(want, ok)
					case 2:
						ok, _ := ref.Remove(s)
						want = append(want, ok)
					case 3:
						res, _ := ref.Query(rel.T("src", int(op.Src)), "dst")
						want = append(want, len(res))
					default:
						res, _ := ref.Query(rel.T("src", int(op.Src), "dst", int(op.Dst)), "weight")
						want = append(want, len(res))
					}
				}
				// The same group as one batch.
				var got []func() any
				err := r.Batch(func(tx *Txn) error {
					for _, op := range group {
						s := rel.T("src", int(op.Src), "dst", int(op.Dst))
						switch op.Kind % 5 {
						case 0, 1:
							p, err := tx.Insert(s, rel.T("weight", int(op.Weight)))
							if err != nil {
								return err
							}
							got = append(got, func() any { return p.Value() })
						case 2:
							p, err := tx.Remove(s)
							if err != nil {
								return err
							}
							got = append(got, func() any { return p.Value() })
						case 3:
							p, err := tx.Count(rel.T("src", int(op.Src)))
							if err != nil {
								return err
							}
							got = append(got, func() any { return p.Value() })
						default:
							p, err := tx.Count(s)
							if err != nil {
								return err
							}
							got = append(got, func() any { return p.Value() })
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if got[i]() != want[i] {
						t.Errorf("group op %d: batch %v, sequential %v", i, got[i](), want[i])
						return false
					}
				}
				assertSameTuples(t, r, ref)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBatchConcurrentStress drives overlapping batches from many
// goroutines on every variant — insert pairs, move-edges (remove+insert),
// grouped counts — and checks deadlock freedom (timeout) and quiescent
// coherence. Run under -race.
func TestBatchConcurrentStress(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		const workers = 8
		const batchesPerWorker = 120
		const keys = 8
		done := make(chan struct{})
		go func() {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < batchesPerWorker; i++ {
						a, b, c := rng.Intn(keys), rng.Intn(keys), rng.Intn(keys)
						var err error
						switch rng.Intn(4) {
						case 0: // insert pair
							err = r.Batch(func(tx *Txn) error {
								if _, e := tx.Insert(rel.T("src", a, "dst", b), rel.T("weight", i)); e != nil {
									return e
								}
								_, e := tx.Insert(rel.T("src", a, "dst", c), rel.T("weight", i+1))
								return e
							})
						case 1: // move edge
							err = r.Batch(func(tx *Txn) error {
								if _, e := tx.Remove(rel.T("src", a, "dst", b)); e != nil {
									return e
								}
								_, e := tx.Insert(rel.T("src", a, "dst", c), rel.T("weight", i))
								return e
							})
						case 2: // grouped counts (both directions)
							err = r.Batch(func(tx *Txn) error {
								if _, e := tx.Count(rel.T("src", a)); e != nil {
									return e
								}
								_, e := tx.Count(rel.T("dst", b))
								return e
							})
						default: // mixed read-write
							err = r.Batch(func(tx *Txn) error {
								if _, e := tx.Count(rel.T("src", a)); e != nil {
									return e
								}
								if _, e := tx.Insert(rel.T("src", b, "dst", c), rel.T("weight", i)); e != nil {
									return e
								}
								_, e := tx.Remove(rel.T("src", c, "dst", a))
								return e
							})
						}
						if err != nil {
							t.Errorf("batch: %v", err)
							return
						}
					}
				}(int64(w*7919 + 13))
			}
			wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(90 * time.Second):
			t.Fatal("deadlock: concurrent batch stress did not finish")
		}
		if _, err := r.VerifyWellFormed(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestBatchPendingBeforeCommit pins the future contract: reading a
// Pending inside the callback panics, Get reports not-done.
func TestBatchPendingBeforeCommit(t *testing.T) {
	r := graphVariants()[0].build(t)
	err := r.Batch(func(tx *Txn) error {
		p, err := tx.Insert(rel.T("src", 1, "dst", 1), rel.T("weight", 1))
		if err != nil {
			return err
		}
		if _, done := p.Get(); done {
			t.Error("Pending done inside callback")
		}
		defer func() {
			if recover() == nil {
				t.Error("Pending.Value inside callback did not panic")
			}
		}()
		p.Value()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestUndoLogRollback checks the all-or-nothing substrate directly:
// recorded writes are reversed exactly, in reverse order, restoring
// previously present and previously absent keys alike.
func TestUndoLogRollback(t *testing.T) {
	c := container.New(container.TreeMap)
	c.Write(rel.NewKey(int64(1)), "a")
	c.Write(rel.NewKey(int64(2)), "b")
	var u undoLog
	// Overwrite 1, delete 2, create 3 — recording each displaced binding.
	record := func(k rel.Key, v any) {
		old, had := c.Lookup(k)
		u.record(c, k, old, had)
		c.Write(k, v)
	}
	record(rel.NewKey(int64(1)), "A")
	record(rel.NewKey(int64(2)), nil)
	record(rel.NewKey(int64(3)), "c")
	u.rollback()
	if v, ok := c.Lookup(rel.NewKey(int64(1))); !ok || v != "a" {
		t.Fatalf("key 1 not restored: %v %v", v, ok)
	}
	if v, ok := c.Lookup(rel.NewKey(int64(2))); !ok || v != "b" {
		t.Fatalf("key 2 not restored: %v %v", v, ok)
	}
	if _, ok := c.Lookup(rel.NewKey(int64(3))); ok {
		t.Fatal("key 3 not rolled back")
	}
	if c.Len() != 2 {
		t.Fatalf("container has %d entries after rollback, want 2", c.Len())
	}
}

// mustInsert is a test helper for a single tuple insert.
func mustInsert(t *testing.T, r *Relation, src, dst, w int) {
	t.Helper()
	ok, err := r.Insert(rel.T("src", src, "dst", dst), rel.T("weight", w))
	if err != nil || !ok {
		t.Fatalf("insert (%d,%d,%d): ok=%v err=%v", src, dst, w, ok, err)
	}
}
