package core

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/query"
	"repro/internal/rel"
)

// This file implements batched multi-operation transactions: several
// queries and mutations executed as ONE two-phase-locking transaction.
// The paper's §4.2/§5.1 substrate gives every single operation a
// deadlock-free sorted lock schedule; batching generalizes the unit of
// atomicity from the operation to a user-defined group, the framing of
// the synchronization-synthesis line of work (Samanta et al., Locksynth),
// where the atomic region — not the individual access — is what gets a
// synthesized locking protocol.
//
// Execution has two phases, both inside one locks.Txn:
//
//   - The GROWING phase walks every member's compiled plan in lockstep
//     over the decomposition's topological node order. At each node the
//     scheduler (a) resolves all members' pending speculative accesses
//     together, sorted by target key across members so §4.5 acquisitions
//     respect the global order, and (b) merges all members' regular lock
//     requests into one locks.LockSet — deduplicated by lock identity,
//     shared requests upgraded to exclusive where any member writes — and
//     acquires the coalesced set once. An N-operation batch therefore
//     takes each physical lock at most once, instead of up to N times.
//
//   - The APPLY phase re-executes members in batch order under the held
//     locks: queries traverse, inserts run their put-if-absent check and
//     write, removes locate and delete. No further locks are taken
//     (execStep's b.apply mode): every pre-existing instance a member can
//     reach was locked during the growing phase (container contents only
//     change through this batch's own writes), and instances created by
//     earlier members are private to the transaction. Re-execution gives
//     the batch sequential semantics — each member observes the effects
//     of the members before it — and an undo log makes the mutation
//     suffix all-or-nothing if an invariant violation panics mid-apply.
//
// Members whose results cannot be affected by the batch's own writes
// (every member up to and including the first mutation) skip the apply
// re-execution and reuse their growing-phase traversal, so a read-only
// batch traverses exactly once.

// Pending is a batch result delivered at commit: enqueueing an operation
// on a Txn returns a *Pending resolved when Relation.Batch returns.
type Pending[T any] struct {
	v    T
	done bool
}

func (p *Pending[T]) set(v T) { p.v, p.done = v, true }

// Get returns the result and whether the batch has committed.
func (p *Pending[T]) Get() (T, bool) { return p.v, p.done }

// Value returns the committed result; it panics if the batch has not
// committed (reading a result inside the Batch callback is an error —
// operations execute only after the callback returns).
func (p *Pending[T]) Value() T {
	if !p.done {
		panic("core: batch result read before commit")
	}
	return p.v
}

// Txn is a batched transaction under construction. The Batch callback
// enqueues operations on it; none execute until the callback returns,
// when the whole group runs as one two-phase-locking transaction with a
// coalesced lock schedule. A Txn is valid only inside its callback and is
// not safe for concurrent use.
//
// A Txn built by Relation.Batch accepts members against that relation
// only; one built by Registry.Batch accepts members against any relation
// registered in the registry, grouped into per-relation shards that share
// a single locks.Txn — the growing phase walks shards in relation-id
// order, so all acquisitions follow the registry-wide
// (relation, node, inst, stripe) lock order.
type Txn struct {
	reg  *Registry  // owning registry for cross-relation batches, nil for Relation.Batch
	ltxn *locks.Txn // the lock transaction every shard's buffer shares
	// single is the Relation.Batch fast path's only shard (shards stays
	// empty). It points into the buffer (opBuf.shard), not the Txn: the
	// Txn handle comes from a never-reused slab so a leaked *Txn stays
	// sealed forever, and keeping the 6-field shard out of it roughly
	// halves the bytes that discipline retires per batch. A leaked handle
	// can never reach the recycled shard — every path to t.single is
	// behind the sealed check.
	single *txnShard
	multi  *txnReg // registry mode only (nil for Relation.Batch): shards + global order
	sealed bool
	roOnly bool // BatchReadOnly: mutation enqueues are rejected
	trace  *BatchTrace
}

// txnReg is the registry-mode state of a cross-relation transaction: the
// per-relation shards (first-touch order, sorted by relation id before
// commit) and the global enqueue order the apply phase replays. It hangs
// off the Txn behind a pointer so the Relation.Batch fast path — whose
// Txn handles are slab-retired once per batch, never reused — pays for
// two words of registry machinery instead of six.
type txnReg struct {
	shards []*txnShard
	order  []memberRef
}

// pendingSlabSize is the chunk size of the buffer's Pending slabs.
const pendingSlabSize = 64

// newPB hands out one Pending[bool] from the buffer's slab. Slabs
// persist across batches — handed-out entries are never reused (the slab
// only ever advances), so a full slab is abandoned to its holders and
// replaced. Enqueuing N mutations costs ~N/pendingSlabSize allocations
// instead of N.
func (b *opBuf) newPB() *Pending[bool] {
	if len(b.pbSlab) == cap(b.pbSlab) {
		b.pbSlab = make([]Pending[bool], 0, pendingSlabSize)
	}
	b.pbSlab = b.pbSlab[:len(b.pbSlab)+1]
	return &b.pbSlab[len(b.pbSlab)-1]
}

// newPI hands out one Pending[int] from the buffer's slab; see newPB.
func (b *opBuf) newPI() *Pending[int] {
	if len(b.piSlab) == cap(b.piSlab) {
		b.piSlab = make([]Pending[int], 0, pendingSlabSize)
	}
	b.piSlab = b.piSlab[:len(b.piSlab)+1]
	return &b.piSlab[len(b.piSlab)-1]
}

// newTxn hands out one Txn from the buffer's slab, under the same
// never-reuse discipline as the Pending slabs: the slab only advances,
// a full one is abandoned to its holders and replaced. This keeps the
// sealed guard airtight — a caller that leaks the *Txn past Batch holds
// a slot no later batch ever touches, so it stays sealed forever, exactly
// as an individually heap-allocated Txn would — while costing one
// allocation per txnSlabSize batches instead of one per batch.
func (b *opBuf) newTxn() *Txn {
	if len(b.txnSlab) == cap(b.txnSlab) {
		b.txnSlab = make([]Txn, 0, txnSlabSize)
	}
	b.txnSlab = b.txnSlab[:len(b.txnSlab)+1]
	return &b.txnSlab[len(b.txnSlab)-1]
}

// txnSlabSize is the chunk size of the buffer's Txn slab.
const txnSlabSize = 64

// txnShard is one relation's slice of a batched transaction: its pooled
// operation buffer (whose locks.Txn is displaced by the transaction-wide
// one in registry mode) and the index of the shard's first mutation, the
// pivot of the apply phase's growing-result reuse rule. Mutations in
// OTHER relations never invalidate reuse — relations are disjoint object
// graphs, so a write in one cannot change what a member of another
// observes.
type txnShard struct {
	r        *Relation
	b        *opBuf
	own      *locks.Txn // the buffer's own txn, restored before putBuf (registry mode)
	firstMut int        // index into b.members of the first mutation, -1 if none
	hasRead  bool       // the shard holds at least one query/count member (OCC eligibility)
	mark     int        // OCC state-pool floor: write members' retained states end here (occ.go)
}

// memberRef addresses one member across shards, preserving the global
// enqueue order the apply phase replays for sequential semantics.
type memberRef struct {
	sh  *txnShard
	idx int
}

// shardFor resolves (creating on first use, in registry mode) the shard
// holding members against relation r. A sealed transaction resolves
// nothing — in registry mode a late resolution would check out a buffer
// nobody releases.
func (t *Txn) shardFor(r *Relation) (*txnShard, error) {
	if err := t.checkOpen(); err != nil {
		return nil, err
	}
	if t.reg == nil {
		if r != t.single.r {
			return nil, fmt.Errorf("core: operation targets a relation outside this transaction (use Registry.Batch for cross-relation groups)")
		}
		return t.single, nil
	}
	if r.registry != t.reg {
		return nil, fmt.Errorf("core: relation %q is not registered in this transaction's registry", r.name)
	}
	for _, sh := range t.multi.shards {
		if sh.r == r {
			return sh, nil
		}
	}
	b := r.getBuf()
	sh := &txnShard{r: r, b: b, own: b.txn, firstMut: -1}
	b.txn = t.ltxn
	t.multi.shards = append(t.multi.shards, sh)
	return sh, nil
}

// defaultShard returns the Relation.Batch shard; registry transactions
// have no default and must name the relation (InsertInto etc. or the
// prepared-handle API).
func (t *Txn) defaultShard() (*txnShard, error) {
	if err := t.checkOpen(); err != nil {
		return nil, err
	}
	if t.reg != nil {
		return nil, fmt.Errorf("core: registry transaction needs an explicit relation (use InsertInto/RemoveFrom/CountIn/QueryIn or prepared handles)")
	}
	return t.single, nil
}

// memberKind discriminates the operation kinds a batch can hold.
type memberKind uint8

const (
	mQuery memberKind = iota
	mCount
	mInsert
	mRemove
)

// waitKind is what a member's growing-phase cursor is blocked on.
type waitKind uint8

const (
	wNone waitKind = iota // runnable
	wSpec                 // registered speculative requests, awaiting resolution
	wLock                 // contributed to the round's lock set, awaiting acquisition
	wDone                 // growing phase complete
)

// member is one enqueued operation and its growing-phase execution state.
type member struct {
	kind memberKind

	// Compiled plans: steps for queries and counts, ins/rem (+ the shared
	// mut) for mutations.
	steps     []query.Step
	boundMask uint64
	outIdx    []int
	outCols   []string
	ins       *insertPlan
	rem       *removePlan
	mut       *query.MutationPlan
	// qprog is the compiled round map of a query/count member's plan; its
	// pointer doubles as the plan-identity key of the round-map scheduler's
	// memoized grouping (mutations use mut.Prog instead).
	qprog *query.RoundProgram

	// row is the member-owned dense operation row (arena-backed copy).
	row rel.Row

	// Result sinks; exactly one is non-nil per kind.
	pb    *Pending[bool]
	pi    *Pending[int]
	pt    *Pending[[]rel.Tuple]
	yield func(rel.Row) bool

	// Growing-phase cursor: step index for queries/counts, directive
	// index for mutations (plus the intra-directive stage).
	cursor int
	stage  uint8
	wait   waitKind

	states  []*qstate   // query pipeline / remove victims / insert existence states
	xinst   []*Instance // insert's located instances per node
	specOut []*qstate   // survivors delivered by speculative resolution

	specReg      bool      // requests registered, resolution pending
	specResolved bool      // resolution delivered, cursor may consume it
	specFound    *Instance // locate-kind resolution result (inserts)

	count   int  // StepCount accumulator
	counted bool // count delivered by a StepCount terminal

	// Apply-phase staging (computeMember/deliverMember): ok is a
	// mutation's staged outcome, recomputed marks a query whose apply-time
	// re-execution (not the growing/read-phase traversal) produced
	// m.states. Staging lets the OCC commit (occ.go) compute every
	// member's result under undo logging and deliver — resolve pendings,
	// run yields — only after the read-set validates.
	ok         bool
	recomputed bool
}

// reset clears a member slab entry for reuse, retaining slice capacity.
func (m *member) reset() {
	*m = member{states: m.states[:0], specOut: m.specOut[:0], xinst: m.xinst[:0]}
}

// batchSpecReq is one pending speculative access: a member waiting to run
// the §4.5 protocol for one target. Requests are pooled per scheduler
// round and resolved in (node, target key) order across all members, so
// the interleaved acquisitions respect the global lock order; requests
// for the same target are resolved in the strongest requested mode.
type batchSpecReq struct {
	m      *member
	st     *qstate // per-state request (queries, removes, existence checks); nil for locate requests
	edge   *decomp.Edge
	colIdx []int
	row    rel.Row
	src    *Instance
	key    rel.Key
	node   int
	mode   locks.Mode
}

// BatchTrace records the coalesced lock schedule of one batch, for the
// lock-audit tests and cmd/crsexplain's worked example. Enable with
// Txn.EnableTrace before enqueueing.
type BatchTrace struct {
	// Rounds lists each coalesced acquisition: one entry per
	// decomposition node that contributed locks, plus speculative waves.
	Rounds []BatchRound
	// Requested counts every pre-coalescing lock request — what a
	// non-batched execution of the same members would have asked for.
	Requested int
	// Acquired counts the distinct physical locks actually taken.
	Acquired int
	// Speculative counts the locks taken by the §4.5 protocol (a subset
	// of Acquired).
	Speculative int
	// SharedAcquired counts the locks taken in Shared mode (a subset of
	// Acquired). On a successful OCC commit of a mixed batch it is
	// structurally zero for plain placements — read members divert into
	// the read-set and write members lock exclusively — which the
	// benchguard mixed pass gates.
	SharedAcquired int

	// Optimistic reports that the batch was detected read-only and
	// attempted the lock-free epoch-validation path (readonly.go). When
	// the final attempt validated, Requested and Acquired stay zero — the
	// batch took no locks at all.
	Optimistic bool
	// Attempts counts the optimistic attempts executed (1 on the
	// conflict-free happy path); Attempts-1 is the validation-retry count,
	// unless FellBack adds one more failed attempt.
	Attempts int
	// EpochsRecorded counts the read-set observations of the last
	// optimistic attempt (the analog of Requested), and EpochsDistinct the
	// distinct epoch cells validated (the analog of Acquired).
	EpochsRecorded int
	EpochsDistinct int
	// FellBack reports that every optimistic attempt failed validation and
	// the batch re-ran under pessimistic two-phase locking (whose lock
	// schedule then fills Rounds/Requested/Acquired as usual).
	FellBack bool

	// OCC reports that the batch was MIXED (mutations plus reads) on
	// OptimisticCapable relations and ran the Silo-style commit of occ.go:
	// write members' lock sets acquired exclusively in the global order
	// (filling Rounds/Requested/Acquired), read members lock-free with
	// their epochs in the read-set (filling EpochsRecorded/EpochsDistinct
	// on success), validation after the undo-logged apply. Attempts,
	// FellBack and the epoch counters mean the same as on the read-only
	// path; when FellBack is set the lock-schedule fields describe the
	// pessimistic rerun instead.
	OCC bool
}

// BatchRound is one coalesced acquisition in a batch's growing phase.
type BatchRound struct {
	// Node names the decomposition node whose round this was;
	// speculative waves are suffixed "(speculative)".
	Node string
	// Requested is the number of pre-dedup requests merged into this round.
	Requested int
	// IDs lists the lock identities actually acquired, in global order,
	// and Modes the (upgraded) mode of each.
	IDs   []locks.ID
	Modes []locks.Mode
}

// String renders the trace as the per-round coalesced lock sets. Long
// rounds (all-stripe acquisitions) are elided after the first few IDs.
func (tr *BatchTrace) String() string {
	s := fmt.Sprintf("batch lock schedule: %d requested -> %d acquired (%d speculative)\n",
		tr.Requested, tr.Acquired, tr.Speculative)
	for _, rd := range tr.Rounds {
		s += fmt.Sprintf("  %s: %d requests -> %d locks:", rd.Node, rd.Requested, len(rd.IDs))
		for i, id := range rd.IDs {
			if i == 8 {
				s += fmt.Sprintf(" … (%d more)", len(rd.IDs)-i)
				break
			}
			s += fmt.Sprintf(" %v/%v", id, rd.Modes[i])
		}
		s += "\n"
	}
	return s
}

// EnableTrace turns on lock-schedule tracing for this batch.
func (t *Txn) EnableTrace() { t.trace = &BatchTrace{} }

// Trace returns the recorded lock schedule (nil unless EnableTrace was
// called); valid after Batch returns.
func (t *Txn) Trace() *BatchTrace { return t.trace }

// Batch runs fn to assemble a group of operations, then executes the
// whole group as one two-phase-locking transaction: the lock requirements
// of every member plan are merged — deduplicated and upgraded to
// exclusive where any member writes — and acquired once, in the §5.1
// global order, so the batch takes each physical lock at most once. The
// group is atomic (serializable as a unit, all-or-nothing) and its
// members behave as if executed sequentially: each mutation observes the
// effects of the members enqueued before it. If fn returns an error,
// nothing executes and the error is returned.
//
// A group whose members are all queries and counts is detected
// automatically and — when the relation is OptimisticCapable — executed
// lock-free under the optimistic epoch-validation protocol (readonly.go),
// acquiring zero physical locks on the conflict-free path. A MIXED group
// (mutations plus reads) on an OptimisticCapable relation auto-upgrades
// to the Silo-style OCC commit (occ.go): exclusive locks for the write
// members only, lock-free epoch-validated reads for the rest, so a batch
// never acquires more locks than its sequential decomposition.
func (r *Relation) Batch(fn func(tx *Txn) error) error {
	return r.batch(fn, false)
}

// BatchReadOnly is Batch restricted to read-only groups: enqueueing a
// mutation fails with an error, making the zero-lock optimistic intent
// explicit in the API. Execution is identical to what Batch auto-detects
// for read-only groups — optimistic with pessimistic fallback when the
// relation is OptimisticCapable, plain pessimistic 2PL otherwise — so the
// results never depend on which path ran.
func (r *Relation) BatchReadOnly(fn func(tx *Txn) error) error {
	return r.batch(fn, true)
}

// batch is the shared body of Batch and BatchReadOnly.
func (r *Relation) batch(fn func(tx *Txn) error, roOnly bool) error {
	// Representation latch, held shared across the whole batch including
	// the deferred buffer release (registered after the RUnlock, so it
	// runs before it): a migration cutover is strictly ordered against
	// every in-flight batch (migrate.go).
	r.lockRep()
	defer r.unlockRep()
	b := r.getBuf()
	defer r.putBuf(b)
	// The Txn slot comes from the buffer's never-reused slab (newTxn): a
	// caller that leaks the *Txn past Batch must hit the sealed guard (an
	// error), so a slot may never be handed out twice — a recycled handle
	// would be silently un-sealed by a later batch, turning the leak into
	// cross-transaction corruption.
	t := b.newTxn()
	*t = Txn{ltxn: b.txn, roOnly: roOnly}
	b.shard = txnShard{r: r, b: b, firstMut: -1}
	t.single = &b.shard
	if err := fn(t); err != nil {
		t.sealed = true
		return err
	}
	t.sealed = true
	if len(b.members) == 0 {
		return nil
	}
	if t.readOnly() && r.commitReadOnly(t, t.single) {
		r.ctr.batches.Add(1)
		r.ctr.roOptimistic.Add(1)
		r.ctr.noteMembers(b.members)
		return nil
	}
	if ok, err := r.commitOCC(t, t.single); ok || err != nil {
		if ok && err == nil {
			// Counted before the deferred putBuf releases the locks, so
			// HeldCount still reflects the commit's write-lock set.
			r.ctr.batches.Add(1)
			r.ctr.occCommits.Add(1)
			r.ctr.locksAcquired.Add(uint64(b.txn.HeldCount()))
			r.ctr.noteMembers(b.members)
		}
		return err
	}
	if err := r.commitBatch(t, t.single); err != nil {
		return err
	}
	r.ctr.batches.Add(1)
	r.ctr.locksAcquired.Add(uint64(b.txn.HeldCount()))
	r.ctr.noteMembers(b.members)
	return nil
}

// errTxnSealed guards against enqueueing outside the Batch callback.
func (t *Txn) checkOpen() error {
	if t.sealed {
		return fmt.Errorf("core: batch transaction used outside its Batch callback")
	}
	return nil
}

// checkMutable rejects mutation enqueues on read-only transactions
// (BatchReadOnly); plain Batch transactions accept anything.
func (t *Txn) checkMutable() error {
	if t.roOnly {
		return fmt.Errorf("core: read-only batch cannot enqueue mutations (use Batch for mixed groups)")
	}
	return nil
}

// copyRow copies an operation row into the batch's arena: callers
// typically pass stack-backed rows that do not survive the callback.
func (b *opBuf) copyRow(row rel.Row) rel.Row {
	w := row.Width()
	if len(b.rowArena)+w > cap(b.rowArena) {
		c := 2 * cap(b.rowArena)
		if c < 64 {
			c = 64
		}
		if c < w {
			c = w
		}
		b.rowArena = make([]rel.Value, 0, c)
	}
	off := len(b.rowArena)
	b.rowArena = b.rowArena[:off+w]
	vals := b.rowArena[off : off+w : off+w]
	for i := 0; i < w; i++ {
		vals[i] = row.At(i)
	}
	return rel.RowOver(vals, row.Mask())
}

// newMember hands out the next member slot of shard sh, tracking the
// shard's first mutation, whether the shard holds any read member (OCC
// eligibility) and (for registry transactions) the global enqueue order.
// The caller stores only the fields its member kind uses: a recycled slot
// was already zeroed by putBuf's reset (which preserves the states,
// specOut and xinst backings), and a fresh slot is runtime-zeroed, so no
// member-sized struct literal is copied on the enqueue hot path.
func (t *Txn) newMember(sh *txnShard, kind memberKind) *member {
	if kind == mInsert || kind == mRemove {
		if sh.firstMut < 0 {
			sh.firstMut = len(sh.b.members)
		}
	} else {
		sh.hasRead = true
	}
	bm := sh.b.members
	if len(bm) < cap(bm) {
		bm = bm[:len(bm)+1]
	} else {
		bm = append(bm, member{})
	}
	nm := &bm[len(bm)-1]
	sh.b.members = bm
	nm.kind = kind
	if nm.states == nil {
		nm.states = []*qstate{}
	}
	if t.reg != nil {
		t.multi.order = append(t.multi.order, memberRef{sh: sh, idx: len(sh.b.members) - 1})
	}
	return nm
}

// BatchMutation is the common interface of *PreparedInsert and
// *PreparedRemove for Txn.ExecRow.
type BatchMutation interface {
	batchEnqueue(t *Txn, row rel.Row) (*Pending[bool], error)
}

// batchEnqueue enqueues a prepared insert for the fully bound row x.
func (p *PreparedInsert) batchEnqueue(t *Txn, x rel.Row) (*Pending[bool], error) {
	if err := t.checkMutable(); err != nil {
		return nil, err
	}
	sh, err := t.shardFor(p.r)
	if err != nil {
		return nil, err
	}
	plan, err := p.resolve() // under the batch's representation latch
	if err != nil {
		return nil, err
	}
	if err := p.r.checkRow(x, p.r.fullMask); err != nil {
		return nil, err
	}
	pb := sh.b.newPB()
	m := t.newMember(sh, mInsert)
	m.ins, m.mut, m.row, m.pb = plan, plan.mut, sh.b.copyRow(x), pb
	return pb, nil
}

// batchEnqueue enqueues a prepared remove for a row binding the key.
func (p *PreparedRemove) batchEnqueue(t *Txn, s rel.Row) (*Pending[bool], error) {
	if err := t.checkMutable(); err != nil {
		return nil, err
	}
	sh, err := t.shardFor(p.r)
	if err != nil {
		return nil, err
	}
	plan, err := p.resolve() // under the batch's representation latch
	if err != nil {
		return nil, err
	}
	if err := p.r.checkRow(s, plan.mut.BoundMask); err != nil {
		return nil, err
	}
	pb := sh.b.newPB()
	m := t.newMember(sh, mRemove)
	m.rem, m.mut, m.row, m.pb = plan, plan.mut, sh.b.copyRow(s), pb
	return pb, nil
}

// ExecRow enqueues a prepared mutation (insert or remove) over a
// schema-indexed row — the zero-name-resolution batch mutation path. The
// result resolves when Batch returns.
func (t *Txn) ExecRow(op BatchMutation, row rel.Row) (*Pending[bool], error) {
	return op.batchEnqueue(t, row) // sealed/foreign-relation checks in shardFor
}

// CountRow enqueues a prepared count over a schema-indexed row, using the
// prepared query's count-pushdown plan. The result resolves when Batch
// returns.
func (t *Txn) CountRow(q *PreparedQuery, s rel.Row) (*Pending[int], error) {
	sh, err := t.shardFor(q.r)
	if err != nil {
		return nil, err
	}
	ps, err := q.plans() // under the batch's representation latch
	if err != nil {
		return nil, err
	}
	if err := q.r.checkRow(s, ps.plan.BoundMask); err != nil {
		return nil, err
	}
	pi := sh.b.newPI()
	m := t.newMember(sh, mCount)
	m.steps, m.boundMask, m.qprog = ps.countPlan.Steps, ps.countPlan.BoundMask, ps.countPlan.Prog
	m.row, m.pi = sh.b.copyRow(s), pi
	return pi, nil
}

// ExecRows enqueues a prepared query over a schema-indexed row; yield is
// invoked once per matching row at commit time, under the batch's locks,
// until it returns false. Yielded rows are only valid during the
// callback (their storage is pooled).
func (t *Txn) ExecRows(q *PreparedQuery, s rel.Row, yield func(rel.Row) bool) error {
	sh, err := t.shardFor(q.r)
	if err != nil {
		return err
	}
	ps, err := q.plans() // under the batch's representation latch
	if err != nil {
		return err
	}
	if err := q.r.checkRow(s, ps.plan.BoundMask); err != nil {
		return err
	}
	m := t.newMember(sh, mQuery)
	m.steps, m.boundMask, m.qprog = ps.plan.Steps, ps.plan.BoundMask, ps.plan.Prog
	m.outIdx, m.outCols = ps.plan.OutIdx, ps.plan.OutCols
	m.row, m.yield = sh.b.copyRow(s), yield
	return nil
}

// Insert enqueues insert r s t (§2) by tuples against the transaction's
// relation, like Relation.Insert. Registry transactions must use
// InsertInto.
func (t *Txn) Insert(s, tup rel.Tuple) (*Pending[bool], error) {
	sh, err := t.defaultShard()
	if err != nil {
		return nil, err
	}
	return t.insertInto(sh, s, tup)
}

// InsertInto enqueues insert r s t (§2) against the named relation, which
// must belong to the transaction (the Batch relation, or any relation of
// the Registry).
func (t *Txn) InsertInto(r *Relation, s, tup rel.Tuple) (*Pending[bool], error) {
	sh, err := t.shardFor(r)
	if err != nil {
		return nil, err
	}
	return t.insertInto(sh, s, tup)
}

// insertInto enqueues against a shard already vetted (and open-checked)
// by shardFor/defaultShard, as do the three sibling helpers below.
func (t *Txn) insertInto(sh *txnShard, s, tup rel.Tuple) (*Pending[bool], error) {
	if err := t.checkMutable(); err != nil {
		return nil, err
	}
	r := sh.r
	x, err := s.Union(tup)
	if err != nil {
		return nil, err
	}
	if len(rel.ColsIntersect(s.Dom(), tup.Dom())) > 0 {
		return nil, fmt.Errorf("core: insert requires disjoint s and t, both bind %v", rel.ColsIntersect(s.Dom(), tup.Dom()))
	}
	if !rel.ColsEqual(x.Dom(), r.spec.Columns) {
		return nil, fmt.Errorf("core: insert tuple binds %v, want all of %v", x.Dom(), r.spec.Columns)
	}
	plan, err := r.insertPlanFor(s.Dom())
	if err != nil {
		return nil, err
	}
	row, err := r.schema.RowFromTuple(x, nil)
	if err != nil {
		return nil, err
	}
	pb := sh.b.newPB()
	m := t.newMember(sh, mInsert)
	m.ins, m.mut, m.row, m.pb = plan, plan.mut, row, pb
	return pb, nil
}

// Remove enqueues remove r s (§2) by tuple against the transaction's
// relation, like Relation.Remove. Registry transactions must use
// RemoveFrom.
func (t *Txn) Remove(s rel.Tuple) (*Pending[bool], error) {
	sh, err := t.defaultShard()
	if err != nil {
		return nil, err
	}
	return t.removeFrom(sh, s)
}

// RemoveFrom enqueues remove r s (§2) against the named relation.
func (t *Txn) RemoveFrom(r *Relation, s rel.Tuple) (*Pending[bool], error) {
	sh, err := t.shardFor(r)
	if err != nil {
		return nil, err
	}
	return t.removeFrom(sh, s)
}

func (t *Txn) removeFrom(sh *txnShard, s rel.Tuple) (*Pending[bool], error) {
	if err := t.checkMutable(); err != nil {
		return nil, err
	}
	r := sh.r
	if err := r.checkCols(s.Dom()); err != nil {
		return nil, err
	}
	plan, err := r.removePlanFor(s.Dom())
	if err != nil {
		return nil, err
	}
	row, err := r.schema.RowFromTuple(s, nil)
	if err != nil {
		return nil, err
	}
	pb := sh.b.newPB()
	m := t.newMember(sh, mRemove)
	m.rem, m.mut, m.row, m.pb = plan, plan.mut, row, pb
	return pb, nil
}

// Count enqueues a cardinality query |query r s C| by tuple against the
// transaction's relation. Registry transactions must use CountIn.
func (t *Txn) Count(s rel.Tuple) (*Pending[int], error) {
	sh, err := t.defaultShard()
	if err != nil {
		return nil, err
	}
	return t.countIn(sh, s)
}

// CountIn enqueues a cardinality query against the named relation.
func (t *Txn) CountIn(r *Relation, s rel.Tuple) (*Pending[int], error) {
	sh, err := t.shardFor(r)
	if err != nil {
		return nil, err
	}
	return t.countIn(sh, s)
}

func (t *Txn) countIn(sh *txnShard, s rel.Tuple) (*Pending[int], error) {
	r := sh.r
	if err := r.checkCols(s.Dom()); err != nil {
		return nil, err
	}
	plan, err := r.countPlanFor(s.Dom())
	if err != nil {
		return nil, err
	}
	row, err := r.schema.RowFromTuple(s, nil)
	if err != nil {
		return nil, err
	}
	if row.Mask() != plan.BoundMask {
		return nil, fmt.Errorf("core: tuple %v does not bind the plan's columns", s)
	}
	pi := sh.b.newPI()
	m := t.newMember(sh, mCount)
	m.steps, m.boundMask, m.qprog = plan.Steps, plan.BoundMask, plan.Prog
	m.row, m.pi = row, pi
	return pi, nil
}

// Query enqueues query r s C by tuple against the transaction's relation;
// the projected result tuples resolve when Batch returns. Registry
// transactions must use QueryIn.
func (t *Txn) Query(s rel.Tuple, out ...string) (*Pending[[]rel.Tuple], error) {
	sh, err := t.defaultShard()
	if err != nil {
		return nil, err
	}
	return t.queryIn(sh, s, out)
}

// QueryIn enqueues query r s C against the named relation.
func (t *Txn) QueryIn(r *Relation, s rel.Tuple, out ...string) (*Pending[[]rel.Tuple], error) {
	sh, err := t.shardFor(r)
	if err != nil {
		return nil, err
	}
	return t.queryIn(sh, s, out)
}

func (t *Txn) queryIn(sh *txnShard, s rel.Tuple, out []string) (*Pending[[]rel.Tuple], error) {
	r := sh.r
	if err := r.checkCols(s.Dom()); err != nil {
		return nil, err
	}
	if err := r.checkCols(out); err != nil {
		return nil, err
	}
	plan, err := r.queryPlanFor(s.Dom(), out)
	if err != nil {
		return nil, err
	}
	row, err := r.schema.RowFromTuple(s, nil)
	if err != nil {
		return nil, err
	}
	pt := &Pending[[]rel.Tuple]{}
	m := t.newMember(sh, mQuery)
	m.steps, m.boundMask, m.qprog = plan.Steps, plan.BoundMask, plan.Prog
	m.outIdx, m.outCols, m.row, m.pt = plan.OutIdx, plan.OutCols, row, pt
	return pt, nil
}

// commitBatch executes a single-relation batch: growing phase (coalesced
// lock acquisition), apply phase (in-order execution under held locks),
// then release (putBuf, in the caller). Registry batches run the same
// phases across shards; see Registry.commitTxn. With a commit logger
// attached (redo.go) the batch's redo record is appended after the apply
// phase, still under the held locks; a logging failure rolls the batch
// back and is returned from Batch.
func (r *Relation) commitBatch(t *Txn, sh *txnShard) error {
	b := sh.b
	r.initBatchMembers(b)
	r.growBatch(t, b)

	// Apply phase: in-order execution under the held locks, with an undo
	// log so a panic mid-apply restores the pre-batch representation
	// before the locks are released (all-or-nothing).
	b.apply = true
	undo := &b.undoPool // buffer-resident: a stack undoLog would escape via b.undo
	undo.recs = undo.recs[:0]
	b.undo = undo
	defer func() {
		b.undo = nil
		if p := recover(); p != nil {
			undo.rollback()
			panic(p)
		}
		clear(undo.recs)
		undo.recs = undo.recs[:0]
	}()
	for i := range b.members {
		r.applyMember(b, &b.members[i], i, sh.firstMut)
	}
	// Commit point: fully applied, locks still held (see redo.go).
	if lg, tp := r.commitLogger(), r.commitTap(); lg != nil || tp != nil {
		if ops := r.shardRedo(b); ops != nil {
			if lg != nil {
				if err := lg.LogCommit(ops); err != nil {
					undo.rollback()
					b.apply = false
					return err
				}
			}
			// Migration tap: durable commits only, under the held locks
			// (migrate.go).
			if tp != nil {
				tp.record(ops)
			}
		}
	}
	b.apply = false
	return nil
}

// initBatchMembers sets up every member's growing-phase pipeline and the
// buffer's batch mode.
func (r *Relation) initBatchMembers(b *opBuf) {
	if AuditEnabled() {
		b.fresh = map[*Instance]bool{}
	}
	nNodes := len(r.decomp.Nodes)
	for i := range b.members {
		m := &b.members[i]
		// Zero the growing-phase cursor and result accumulators: a batch
		// falling back from failed optimistic attempts re-enters here with
		// stale per-attempt state (counted counts in particular must not
		// leak into the apply phase's reuse path).
		m.cursor, m.stage, m.wait = 0, stStart, wNone
		m.count, m.counted = 0, false
		m.ok, m.recomputed = false, false
		m.specReg, m.specResolved, m.specFound = false, false, nil
		switch m.kind {
		case mQuery, mCount:
			if b.occ {
				// OCC commit: read members sit the pessimistic growing
				// phase out entirely — their lock and speculative steps
				// divert into the read-set when the lock-free read phase
				// (occ.go) executes them after the write locks are held.
				m.wait = wDone
				m.states = m.states[:0]
				continue
			}
			m.states = append(m.states[:0], b.rootState(r, m.row, m.boundMask))
		case mInsert, mRemove:
			if cap(m.xinst) < nNodes {
				m.xinst = make([]*Instance, nNodes)
			}
			m.xinst = m.xinst[:nNodes]
			clear(m.xinst)
			m.xinst[r.decomp.Root.Index] = r.root
			m.states = append(m.states[:0], b.rootState(r, m.row, m.mut.BoundMask))
		}
	}

	b.detectRounds()

	// Detach the single-op ping-pong arrays. Single operations may leave
	// b.pipe and b.spare aliased (a scan step on an already-dead pipeline
	// donates the pipe array to spare), which is benign when nothing
	// outlives the operation — but batch members RETAIN their final state
	// lists across the whole transaction, so the scan ping-pong and the
	// apply phase's runSteps must start from storage that cannot alias a
	// member's retention. The round-map scheduler pipes member states
	// through member-owned arrays only, so it keeps the pair (their
	// capacity serves apply-phase re-execution) and merely de-aliases it.
	if !b.rounds {
		b.pipe, b.spare = nil, nil
	} else if sameBacking(b.pipe, b.spare) {
		b.spare = nil
	}
}

// growBatch runs the growing phase for one relation's members: per-node
// rounds that pool speculative resolutions and coalesce lock requests. In
// a registry transaction the shards' growing phases run in relation-id
// order on one shared locks.Txn, so the acquisitions of the whole batch
// follow the global (relation, node, inst, stripe) order.
func (r *Relation) growBatch(t *Txn, b *opBuf) {
	nNodes := len(r.decomp.Nodes)
	b.collect = &b.set
	if b.rounds {
		b.buildGroups()
	}
	for v := 0; v < nNodes; v++ {
		for {
			progress := false
			if b.rounds {
				// Members sweep in plan-identity groups: same-plan members
				// advance back to back, so their per-node lock and spec
				// contributions merge while round-hot data stays cached. The
				// coalescing set and the sorted spec waves make the order
				// trace-invariant.
				for _, mi := range b.groupOrder {
					if r.advanceMemberRounds(b, &b.members[mi], v) {
						progress = true
					}
				}
			} else {
				for i := range b.members {
					if r.advanceMember(b, &b.members[i], v) {
						progress = true
					}
				}
			}
			if len(b.specs) > 0 {
				r.resolveBatchSpecs(t, b)
				progress = true
			}
			if b.set.Len() > 0 {
				req := b.set.Requested()
				prev := b.txn.HeldCount()
				b.txn.AcquireSet(&b.set)
				t.recordRound(b, r.traceLabel(r.decomp.Nodes[v].Name), req, prev, false)
			}
			for i := range b.members {
				if b.members[i].wait == wLock {
					b.members[i].wait = wNone
					progress = true
				}
			}
			if !progress {
				break
			}
		}
	}
	b.collect = nil
	for i := range b.members {
		if b.members[i].wait != wDone {
			panic(fmt.Sprintf("core: batch member %d stalled in growing phase (kind %d, cursor %d)",
				i, b.members[i].kind, b.members[i].cursor))
		}
	}
}

// traceLabel prefixes a trace round's node name with the relation's
// registration name, so cross-relation schedules read "users.u" vs
// "posts.a".
func (r *Relation) traceLabel(node string) string {
	if r.name == "" {
		return node
	}
	return r.name + "." + node
}

// recordRound appends a trace round covering the locks acquired since
// held index prev.
func (t *Txn) recordRound(b *opBuf, node string, requested, prev int, spec bool) {
	tr := t.trace
	if tr == nil {
		return
	}
	if spec {
		node += " (speculative)"
	}
	rd := BatchRound{Node: node, Requested: requested}
	for i := prev; i < b.txn.HeldCount(); i++ {
		id, mode := b.txn.HeldID(i)
		rd.IDs = append(rd.IDs, id)
		rd.Modes = append(rd.Modes, mode)
		if mode == locks.Shared {
			tr.SharedAcquired++
		}
	}
	tr.Requested += requested
	tr.Acquired += len(rd.IDs)
	if spec {
		tr.Speculative += len(rd.IDs)
	}
	if requested > 0 || len(rd.IDs) > 0 {
		tr.Rounds = append(tr.Rounds, rd)
	}
}

// advanceMember runs one member's growing-phase cursor as far as round v
// allows, reporting whether any work was done. Lock steps divert into the
// round's coalescing set (b.collect); speculative steps register requests
// for the pooled resolution.
func (r *Relation) advanceMember(b *opBuf, m *member, v int) bool {
	if m.wait != wNone {
		return false
	}
	switch m.kind {
	case mQuery, mCount:
		return r.advancePlan(b, m, v)
	case mInsert:
		return r.advanceInsert(b, m, v)
	case mRemove:
		return r.advanceRemove(b, m, v)
	}
	panic("core: unknown batch member kind")
}

// advancePlan advances a query/count member through its compiled steps.
func (r *Relation) advancePlan(b *opBuf, m *member, v int) bool {
	progress := false
	for m.cursor < len(m.steps) {
		s := &m.steps[m.cursor]
		switch s.Kind {
		case query.StepLock:
			if s.Node.Index > v {
				return progress
			}
			r.execLock(b, s, m.states, m.row) // diverts into b.collect
			m.cursor++
			m.wait = wLock
			return true
		case query.StepSpecLookup:
			if m.specResolved {
				m.consumeSpec()
				progress = true
				continue
			}
			if s.Edge.Dst.Index > v {
				return progress
			}
			n := 0
			for _, st := range m.states {
				src := st.insts[s.Edge.Src.Index]
				if src == nil {
					continue
				}
				b.specs = append(b.specs, batchSpecReq{m: m, st: st, edge: s.Edge, colIdx: s.ColIdx,
					row: st.row, src: src, key: b.keyOf(st.row, s.TargetIdx), node: s.Edge.Dst.Index, mode: s.Mode})
				n++
			}
			m.specOut = m.specOut[:0]
			m.specReg = true
			if n == 0 {
				m.specResolved = true
				continue
			}
			m.wait = wSpec
			return true
		case query.StepScan:
			if rule := r.placement.RuleFor(s.Edge); rule.Speculative {
				if m.specResolved {
					m.consumeSpec()
					progress = true
					continue
				}
				if s.Edge.Dst.Index > v {
					return progress
				}
				n := r.registerSpecScan(b, m, s)
				m.specOut = m.specOut[:0]
				m.specReg = true
				if n == 0 {
					m.specResolved = true
					continue
				}
				m.wait = wSpec
				return true
			}
			m.states = r.execScan(b, s.Edge, s.ColIdx, s.FilterPos, s.FilterIdx, m.states)
			m.cursor++
			progress = true
		case query.StepCount:
			total := 0
			for _, st := range m.states {
				if inst := st.insts[s.Edge.Src.Index]; inst != nil {
					r.auditAccess(b, s.Edge, st.insts, st.row, nil, b.fresh, true)
					total += r.container(inst, s.Edge).Len()
				}
			}
			m.count, m.counted = total, true
			m.cursor = len(m.steps)
			m.wait = wDone
			return true
		default:
			m.states = r.execStep(b, s, m.states, m.row)
			m.cursor++
			progress = true
		}
		if len(m.states) == 0 {
			m.wait = wDone
			return true
		}
	}
	m.wait = wDone
	return true
}

// takeSpecResults installs the survivors of a resolved speculative wave:
// the member's pipeline becomes the delivered specOut list, and the old
// states array (no longer referenced by anyone) becomes the next
// specOut backing — the same ownership-transfer discipline as the scan
// ping-pong.
func (m *member) takeSpecResults() {
	m.states, m.specOut = m.specOut, m.states[:0]
	m.specResolved, m.specReg = false, false
}

// consumeSpec installs the survivors of a resolved speculative step and
// advances the cursor past it.
func (m *member) consumeSpec() {
	m.takeSpecResults()
	m.cursor++
}

// registerSpecScan scans a speculatively placed edge (membership frozen
// by the already-held fallback stripes) and registers one request per
// surviving entry, returning how many were registered.
func (r *Relation) registerSpecScan(b *opBuf, m *member, s *query.Step) int {
	n := 0
	for _, st := range m.states {
		src := st.insts[s.Edge.Src.Index]
		if src == nil {
			continue
		}
		r.auditAccess(b, s.Edge, st.insts, st.row, nil, b.fresh, true)
		r.container(src, s.Edge).Scan(func(k rel.Key, v any) bool {
			for fi, p := range s.FilterPos {
				if !rel.Equal(k.At(p), st.row.At(s.FilterIdx[fi])) {
					return true
				}
			}
			ns := b.clone(r, st)
			for p, ci := range s.ColIdx {
				ns.row.Set(ci, k.At(p))
			}
			b.specs = append(b.specs, batchSpecReq{m: m, st: ns, edge: s.Edge, colIdx: s.ColIdx,
				row: ns.row, src: src, key: b.keyOf(ns.row, s.TargetIdx), node: s.Edge.Dst.Index, mode: s.Mode})
			n++
			return true
		})
	}
	return n
}

// Intra-directive stages of a mutation member's growing phase.
const (
	stStart   = 0 // register speculative in-edge requests
	stSpecGot = 1 // consume the locate/spec resolution
	stAccess  = 2 // plain access-edge locate
	stExist   = 3 // advance the embedded existence check (inserts)
	stLock    = 4 // contribute the node's lock directive
)

// advanceInsert advances an insert member: per node, locate the row's
// instance (speculative in-edges via the pooled resolution, then the
// planned access edge), interleave the put-if-absent existence states,
// and contribute the lock directive — the batched counterpart of
// runInsert's growing phase.
func (r *Relation) advanceInsert(b *opBuf, m *member, v int) bool {
	progress := false
	for m.cursor < len(m.mut.PerNode) {
		nd := &m.mut.PerNode[m.cursor]
		if nd.Node.Index > v {
			return progress
		}
		switch m.stage {
		case stStart:
			if nd.Node == r.decomp.Root {
				m.stage = stLock
				continue
			}
			n := 0
			for i, e := range nd.SpecIns {
				src := m.xinst[e.Src.Index]
				if src == nil {
					continue
				}
				b.specs = append(b.specs, batchSpecReq{m: m, edge: e, colIdx: nd.SpecColIdx[i],
					row: m.row, src: src, key: b.keyOf(m.row, nd.SpecTargetIdx[i]),
					node: nd.Node.Index, mode: locks.Exclusive})
				n++
			}
			m.stage = stSpecGot
			if n > 0 {
				m.specReg = true
				m.wait = wSpec
				return true
			}
		case stSpecGot:
			if m.specFound != nil {
				m.xinst[nd.Node.Index] = m.specFound
				m.specFound = nil
			}
			m.specReg, m.specResolved = false, false
			m.stage = stAccess
		case stAccess:
			if m.xinst[nd.Node.Index] == nil && nd.AccessIn != nil {
				if src := m.xinst[nd.AccessIn.Src.Index]; src != nil {
					r.auditAccess(b, nd.AccessIn, m.xinst, m.row, nil, b.fresh, false)
					if val, ok := r.container(src, nd.AccessIn).Lookup(b.keyOf(m.row, nd.ColIdx)); ok {
						m.xinst[nd.Node.Index] = val.(*Instance)
					}
				}
			}
			m.stage = stExist
		case stExist:
			if step := m.ins.existAt[nd.Node.Index]; step != nil && len(m.states) > 0 {
				if step.Kind == query.StepSpecLookup {
					if m.specResolved {
						m.takeSpecResults()
					} else {
						n := 0
						for _, st := range m.states {
							src := st.insts[step.Edge.Src.Index]
							if src == nil {
								continue
							}
							b.specs = append(b.specs, batchSpecReq{m: m, st: st, edge: step.Edge,
								colIdx: step.ColIdx, row: st.row, src: src,
								key: b.keyOf(st.row, step.TargetIdx), node: nd.Node.Index, mode: step.Mode})
							n++
						}
						m.specOut = m.specOut[:0]
						m.specReg = true
						if n > 0 {
							m.wait = wSpec
							return true
						}
						m.specResolved = true
						continue
					}
				} else {
					m.states = r.execStep(b, step, m.states, m.row)
				}
			}
			m.stage = stLock
		case stLock:
			r.lockDirective(b, nd, m.xinst[nd.Node.Index], m.states, m.row) // diverts into b.collect
			m.cursor++
			m.stage = stStart
			if len(nd.Selectors) > 0 {
				m.wait = wLock
				return true
			}
			progress = true
		}
	}
	m.wait = wDone
	return true
}

// advanceRemove advances a remove member: per node, move the victim
// states across the planned access route and contribute the lock
// directive — the batched counterpart of runRemove's growing phase.
//
// In addition to the state pipeline, removes maintain an insert-style
// row-based locate (xinst). The states alone under-lock a batch: when a
// keyed lookup misses, the victim states die, and directive nodes keyed
// from still-located sources (e.g. the root) would never register their
// lock requests — yet the apply phase can reach those pre-existing
// instances if an earlier batch member re-creates the missing key. The
// row-based locate covers every instance the bound row determines,
// independent of state survival, closing that gap.
func (r *Relation) advanceRemove(b *opBuf, m *member, v int) bool {
	progress := false
	for m.cursor < len(m.mut.PerNode) {
		nd := &m.mut.PerNode[m.cursor]
		if nd.Node.Index > v {
			return progress
		}
		switch m.stage {
		case stStart:
			if nd.Node == r.decomp.Root {
				m.stage = stLock
				continue
			}
			n := 0
			// Row-based locate requests over every speculative in-edge
			// (their key columns are always bound for mutations).
			for i, e := range nd.SpecIns {
				src := m.xinst[e.Src.Index]
				if src == nil {
					continue
				}
				b.specs = append(b.specs, batchSpecReq{m: m, edge: e, colIdx: nd.SpecColIdx[i],
					row: m.row, src: src, key: b.keyOf(m.row, nd.SpecTargetIdx[i]),
					node: nd.Node.Index, mode: locks.Exclusive})
				n++
			}
			// State-based requests advancing the victim pipeline.
			if len(nd.SpecIns) > 0 {
				for _, st := range m.states {
					src := st.insts[nd.SpecIns[0].Src.Index]
					if src == nil {
						continue
					}
					b.specs = append(b.specs, batchSpecReq{m: m, st: st, edge: nd.SpecIns[0],
						colIdx: nd.SpecColIdx[0], row: st.row, src: src,
						key: b.keyOf(st.row, nd.SpecTargetIdx[0]), node: nd.Node.Index, mode: locks.Exclusive})
					n++
				}
				m.specOut = m.specOut[:0]
				m.specReg = true
				m.stage = stSpecGot
				if n > 0 {
					m.wait = wSpec
					return true
				}
				m.specResolved = true
				continue
			}
			m.stage = stAccess
		case stSpecGot:
			m.takeSpecResults()
			if m.specFound != nil {
				m.xinst[nd.Node.Index] = m.specFound
				m.specFound = nil
			}
			r.rowLocate(b, m, nd)
			m.stage = stLock
			progress = true
		case stAccess:
			switch e := nd.AccessIn; {
			case e == nil:
				m.states = m.states[:0]
			case nd.AccessScan:
				m.states = r.execScan(b, e, nd.ColIdx, nd.FilterPos, nd.FilterIdx, m.states)
			default:
				m.states = r.execLookup(b, e, nd.ColIdx, m.states)
			}
			r.rowLocate(b, m, nd)
			m.stage = stLock
			progress = true
		case stLock:
			r.lockDirective(b, nd, m.xinst[nd.Node.Index], m.states, m.row) // diverts into b.collect
			m.cursor++
			m.stage = stStart
			if len(nd.Selectors) > 0 {
				m.wait = wLock
				return true
			}
			progress = true
		}
	}
	m.wait = wDone
	return true
}

// rowLocate fills a remove member's row-based located instance for the
// directive's node via the planned access edge, when the edge's key
// columns are bound by the operation row (scan-located nodes stay nil:
// their instances are only reachable through state rows, and the
// fresh-bridge argument covers them at apply time).
func (r *Relation) rowLocate(b *opBuf, m *member, nd *query.NodeDirective) {
	if m.xinst[nd.Node.Index] != nil || nd.AccessIn == nil || nd.AccessScan {
		return
	}
	var need uint64
	for _, ci := range nd.ColIdx {
		need |= 1 << uint(ci)
	}
	if !m.row.BindsAll(need) {
		return
	}
	src := m.xinst[nd.AccessIn.Src.Index]
	if src == nil {
		return
	}
	r.auditAccess(b, nd.AccessIn, m.xinst, m.row, nil, b.fresh, false)
	if val, ok := r.container(src, nd.AccessIn).Lookup(b.keyOf(m.row, nd.ColIdx)); ok {
		m.xinst[nd.Node.Index] = val.(*Instance)
	}
}

// resolveBatchSpecs runs the §4.5 protocol for every pending request, in
// (node, target key) order across all members so the interleaved target
// acquisitions respect the global lock order. Requests for the same
// target resolve in the strongest mode any requester needs (the
// speculative analog of the coalescing upgrade rule); later requesters
// find the lock held and merely re-validate. Survivors are delivered to
// their members, which resume at the next scheduler sweep.
func (r *Relation) resolveBatchSpecs(t *Txn, b *opBuf) {
	if b.rounds {
		r.resolveBatchSpecsBucketed(t, b)
		return
	}
	specs := b.specs
	// Sort by (node, key): closure-free insertion sort for the typical
	// small pool, sort.Slice beyond (quadratic insertion would dominate
	// on scan-fed pools).
	less := func(a, c *batchSpecReq) bool {
		if a.node != c.node {
			return a.node < c.node
		}
		return rel.CompareKeys(a.key, c.key) < 0
	}
	if len(specs) <= 32 {
		for i := 1; i < len(specs); i++ {
			for j := i; j > 0 && less(&specs[j], &specs[j-1]); j-- {
				specs[j], specs[j-1] = specs[j-1], specs[j]
			}
		}
	} else {
		sort.Slice(specs, func(i, j int) bool { return less(&specs[i], &specs[j]) })
	}
	prev := b.txn.HeldCount()
	for i := 0; i < len(specs); {
		j := i
		mode := locks.Shared
		for ; j < len(specs) && specs[j].node == specs[i].node && rel.CompareKeys(specs[j].key, specs[i].key) == 0; j++ {
			if specs[j].mode == locks.Exclusive {
				mode = locks.Exclusive
			}
		}
		for k := i; k < j; k++ {
			r.resolveOneSpec(b, &specs[k], mode)
		}
		i = j
	}
	if t.trace != nil && len(specs) > 0 {
		t.recordRound(b, r.traceLabel(r.decomp.Nodes[specs[0].node].Name), len(specs), prev, true)
	}
	clear(specs)
	b.specs = specs[:0]
	for i := range b.members {
		m := &b.members[i]
		if m.wait == wSpec {
			m.wait = wNone
			m.specResolved = true
		}
	}
}

// resolveOneSpec runs the §4.5 protocol body for one pending request in
// the (already upgraded) mode of its (node, key) run, delivering survivors
// to the member's specOut list or its located-instance slot.
func (r *Relation) resolveOneSpec(b *opBuf, req *batchSpecReq, mode locks.Mode) {
	inst, ok := r.specLocate(b, req.edge, req.colIdx, req.src, req.row, mode)
	switch {
	case req.st != nil && ok:
		req.st.insts[req.edge.Dst.Index] = inst
		req.m.specOut = append(req.m.specOut, req.st)
	case req.st != nil:
		r.auditAccess(b, req.edge, req.st.insts, req.st.row, nil, b.fresh, false)
	case ok:
		if req.m.specFound != nil && req.m.specFound != inst {
			panic(fmt.Sprintf("core: inconsistent instances of %s via speculative in-edges", req.edge.Dst.Name))
		}
		req.m.specFound = inst
	default:
		r.auditAccess(b, req.edge, req.m.xinst, req.row, nil, b.fresh, false)
	}
}

// rowsAgree reports whether two rows hold equal values at every column
// of mask. An empty mask agrees vacuously — callers treat that as a
// potential conflict (nothing distinguishes the rows).
func rowsAgree(a, c rel.Row, mask uint64) bool {
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		if !rel.Equal(a.At(i), c.At(i)) {
			return false
		}
		mask &^= 1 << uint(i)
	}
	return true
}

// opMask returns the member's bound-column mask (the key scope of the
// operation).
func (m *member) opMask() uint64 {
	if m.mut != nil {
		return m.mut.BoundMask
	}
	return m.boundMask
}

// memberReusable reports whether member m at index idx can reuse its
// growing-phase results at apply time instead of re-executing. The
// growing phase saw the pre-batch state, so reuse is sound iff no earlier
// mutation can have changed what m observes or the instances m writes:
//
//   - tuple overlap: an earlier insert's row extending m's bound key, or
//     an earlier remove whose key can share an extension with m's,
//     changes m's existence check / victim set / query result;
//   - creation overlap (inserts only): a node instance m found missing
//     and plans to create may have been created by an earlier insert that
//     agrees on the node's key columns A — m must re-locate;
//   - deletion overlap (inserts only): a node instance m located may have
//     been cascade-deleted by an earlier remove agreeing on A.
//
// Disagreement on any shared bound column proves disjointness; columns a
// side leaves unbound cannot be compared, so they count as agreement
// (conservative).
func (r *Relation) memberReusable(b *opBuf, m *member, idx, firstMut int) bool {
	if firstMut < 0 || idx <= firstMut {
		return true
	}
	mMask := m.opMask()
	rootIdx := r.decomp.Root.Index
	for i := firstMut; i < idx; i++ {
		mm := &b.members[i]
		if mm.kind != mInsert && mm.kind != mRemove {
			continue
		}
		test := mMask
		if mm.kind == mRemove {
			test &= mm.mut.BoundMask
		}
		if rowsAgree(m.row, mm.row, test) {
			return false
		}
		if m.kind != mInsert {
			continue
		}
		for v, am := range r.nodeKeyMask {
			if v == rootIdx {
				continue
			}
			if m.xinst[v] == nil {
				if mm.kind == mInsert && rowsAgree(m.row, mm.row, am) {
					return false
				}
			} else if mm.kind == mRemove && rowsAgree(m.row, mm.row, am&mm.mut.BoundMask) {
				return false
			}
		}
	}
	return true
}

// applyMember executes one member at commit time, under the full held
// lock set: compute the result, then deliver it. The pessimistic paths
// fuse the two; the OCC commit (occ.go) computes every member under undo
// logging first and delivers only after the read-set validates, so
// callers never observe results of an attempt that failed validation.
func (r *Relation) applyMember(b *opBuf, m *member, idx, firstMut int) {
	r.computeMember(b, m, idx, firstMut)
	r.deliverMember(b, m)
}

// computeMember executes one member's apply-phase work and stages the
// result on the member (states for queries, count for counts, ok for
// mutations) without touching any caller-visible sink. Members whose
// scope no earlier mutation touched reuse their growing/read-phase
// traversal (it is exact); the rest re-execute in apply mode so they
// observe the writes of the members before them — sequential semantics.
// firstMut is the owning SHARD's first-mutation index: mutations in other
// relations of a registry batch never invalidate reuse, because relations
// are disjoint object graphs.
//
// computeMember is idempotent across OCC attempts: a validation failure
// rolls the container writes back (undo log) and the next attempt
// recomputes from the restored state — which is why the reuse-insert
// branch writes through a scratch copy of the located instances instead
// of mutating m.xinst (insertWrite fills in the instances it creates).
func (r *Relation) computeMember(b *opBuf, m *member, idx, firstMut int) {
	reuse := r.memberReusable(b, m, idx, firstMut)
	switch m.kind {
	case mQuery:
		m.recomputed = !reuse
		if !reuse {
			if b.rounds {
				r.runMemberRounds(b, m)
			} else {
				m.states = r.runSteps(b, m.steps, m.row, m.boundMask)
			}
		}
	case mCount:
		switch {
		case reuse && m.counted:
			// m.count already holds the growing/read-phase result.
		case reuse:
			m.count = len(m.states)
		case b.rounds:
			m.count = r.runMemberCountRounds(b, m)
			m.states = m.states[:0]
		default:
			m.count = r.applyCount(b, m)
		}
		m.counted = true
	case mInsert:
		m.ok = false
		if reuse {
			if len(m.states) == 0 {
				nNodes := len(m.xinst)
				if cap(b.xinst) < nNodes {
					b.xinst = make([]*Instance, nNodes)
				}
				xinst := b.xinst[:nNodes]
				copy(xinst, m.xinst)
				r.insertWrite(b, xinst, m.row)
				m.ok = true
			}
		} else {
			m.ok = r.applyInsert(b, m)
		}
	case mRemove:
		m.ok = false
		if reuse {
			for _, st := range m.states {
				if st.row.Mask() != r.fullMask {
					continue
				}
				r.deleteTuple(b, st)
				m.ok = true
			}
		} else {
			m.ok = r.applyRemove(b, m)
		}
	}
}

// deliverMember resolves one member's caller-visible sinks — pendings and
// query yields — from the staged results. On the OCC path it runs only
// after a successful validation, so yields never observe torn data.
func (r *Relation) deliverMember(b *opBuf, m *member) {
	switch m.kind {
	case mQuery:
		states := m.states
		if m.yield != nil {
			for _, st := range states {
				if !m.yield(st.row) {
					break
				}
			}
		}
		if m.pt != nil {
			results := make([]rel.Tuple, 0, len(states))
			for _, st := range states {
				vals := make([]rel.Value, len(m.outIdx))
				for j, ci := range m.outIdx {
					vals[j] = st.row.At(ci)
				}
				results = append(results, rel.TupleFromSorted(m.outCols, vals))
			}
			m.pt.set(results)
		}
		if m.recomputed && !b.rounds {
			// Legacy apply ran runSteps on the shared ping-pong pair; hand
			// the capacity back and sever the member's reference so a later
			// round-mode batch never sees b.pipe aliasing a member slab
			// entry. Round-mode recomputation used the member's own arrays,
			// which the member simply keeps.
			b.recycle(states)
			m.states = nil
		}
	case mCount:
		m.pi.set(m.count)
	case mInsert, mRemove:
		m.pb.set(m.ok)
	}
}

// applyCount re-executes a count member in apply mode.
func (r *Relation) applyCount(b *opBuf, m *member) int {
	return r.runCountSteps(b, m.steps, m.row, m.boundMask)
}

// applyInsert re-executes an insert at commit time: re-run the
// put-if-absent existence check against the batch-current representation
// (an earlier member may have inserted or removed the key), re-locate the
// row's instances, and write.
func (r *Relation) applyInsert(b *opBuf, m *member) bool {
	states := r.runSteps(b, m.ins.exist.Steps, m.row, m.ins.exist.BoundMask)
	exists := len(states) > 0
	b.recycle(states)
	if exists {
		return false
	}
	nNodes := len(r.decomp.Nodes)
	if cap(b.xinst) < nNodes {
		b.xinst = make([]*Instance, nNodes)
	}
	xinst := b.xinst[:nNodes]
	clear(xinst)
	xinst[r.decomp.Root.Index] = r.root
	for i := range m.mut.PerNode {
		nd := &m.mut.PerNode[i]
		if nd.Node != r.decomp.Root {
			r.locateX(b, nd, xinst, m.row)
		}
	}
	r.insertWrite(b, xinst, m.row)
	return true
}

// applyRemove re-executes a remove at commit time against the
// batch-current representation.
func (r *Relation) applyRemove(b *opBuf, m *member) bool {
	states := append(b.pipe[:0], b.rootState(r, m.row, m.mut.BoundMask))
	b.pipe = states
	for i := range m.mut.PerNode {
		nd := &m.mut.PerNode[i]
		if nd.Node == r.decomp.Root {
			continue
		}
		states = r.advanceStates(b, nd, states)
		if len(states) == 0 {
			break
		}
	}
	removed := false
	for _, st := range states {
		if st.row.Mask() != r.fullMask {
			continue
		}
		r.deleteTuple(b, st)
		removed = true
	}
	b.recycle(states)
	return removed
}

// undoLog records displaced container bindings during a batch's apply
// phase so a panic mid-apply can restore the pre-batch representation
// before the transaction's locks are released (all-or-nothing).
type undoLog struct {
	recs []undoRec
}

// undoRec is one displaced binding: the container, the written key, and
// what the key mapped to before (had=false for a previously absent key).
type undoRec struct {
	c   container.Map
	key rel.Key
	old any
	had bool
}

// record appends one displaced binding.
func (u *undoLog) record(c container.Map, key rel.Key, old any, had bool) {
	u.recs = append(u.recs, undoRec{c: c, key: key, old: old, had: had})
}

// rollback restores every displaced binding in reverse order. Keys are
// cloned on re-insertion: containers retain inserted keys, and the
// recorded key may be carved from the operation's transient arena.
func (u *undoLog) rollback() {
	for i := len(u.recs) - 1; i >= 0; i-- {
		rec := u.recs[i]
		if rec.had {
			rec.c.Write(rec.key.Clone(), rec.old)
		} else {
			rec.c.Write(rec.key, nil)
		}
	}
	clear(u.recs)
	u.recs = u.recs[:0]
}
