package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

// capableVariants lists representations whose containers are all
// concurrency-safe, i.e. OptimisticCapable: the optimistic suite runs
// over plain, striped and speculative placements to cover every read-set
// recording path (lock steps, spec lookups, spec scans).
func capableVariants() []variant {
	striped := func(k int) func(*decomp.Decomposition) *locks.Placement {
		return func(d *decomp.Decomposition) *locks.Placement {
			p := locks.NewPlacement(d)
			p.SetStripes(d.Root, k)
			for _, e := range d.Edges {
				if e.Src == d.Root {
					p.Place(e, d.Root, e.Cols...)
				}
			}
			return p
		}
	}
	return []variant{
		{"stick/fine/chm+csl", func(t *testing.T) *Relation {
			return stickRel(t, container.ConcurrentHashMap, container.ConcurrentSkipListMap, locks.FineGrained)
		}},
		{"stick/striped/chm+csl", func(t *testing.T) *Relation {
			return stickRel(t, container.ConcurrentHashMap, container.ConcurrentSkipListMap, striped(16))
		}},
		{"stick/fine/cow+cow", func(t *testing.T) *Relation {
			return stickRel(t, container.CopyOnWriteMap, container.CopyOnWriteMap, locks.FineGrained)
		}},
		{"split/striped/chm+csl", func(t *testing.T) *Relation {
			return splitRel(t, container.ConcurrentHashMap, container.ConcurrentSkipListMap, striped(16))
		}},
		{"diamond/speculative/chm+csl", func(t *testing.T) *Relation {
			return specDiamondCapable(t)
		}},
	}
}

// specDiamondCapable builds the §4.5 speculative diamond over concurrent
// containers only, so the optimistic path must mirror spec lookups and
// spec scans with epoch records instead of target-lock acquisitions.
func specDiamondCapable(t *testing.T) *Relation {
	t.Helper()
	d, err := decomp.NewBuilder(graphSpec(), "ρ").
		Edge("ρx", "ρ", "x", []string{"src"}, container.ConcurrentHashMap).
		Edge("ρy", "ρ", "y", []string{"dst"}, container.ConcurrentHashMap).
		Edge("xz", "x", "z", []string{"dst"}, container.ConcurrentSkipListMap).
		Edge("yz", "y", "z", []string{"src"}, container.ConcurrentSkipListMap).
		Edge("zw", "z", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := locks.NewPlacement(d)
	p.SetStripes(d.Root, 16)
	p.PlaceSpeculative(d.EdgeByName("ρx"), d.Root, "src")
	p.PlaceSpeculative(d.EdgeByName("ρy"), d.Root, "dst")
	r, err := Synthesize(d, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func forEachCapableVariant(t *testing.T, f func(t *testing.T, r *Relation)) {
	for _, v := range capableVariants() {
		t.Run(v.name, func(t *testing.T) {
			r := v.build(t)
			if !r.OptimisticCapable() {
				t.Fatalf("variant %s should be optimistic-capable", v.name)
			}
			f(t, r)
		})
	}
}

// TestReadOnlyBatchLockFree is the zero-lock acceptance test: on a
// quiescent relation, a read-only batch must run optimistically, validate
// on its first attempt, acquire zero physical locks — with the
// well-lockedness auditor on, so every lock-free access was covered by a
// recorded epoch — and return exactly what the pessimistic operations
// return.
func TestReadOnlyBatchLockFree(t *testing.T) {
	forEachCapableVariant(t, func(t *testing.T, r *Relation) {
		for s := 1; s <= 4; s++ {
			for d := 1; d <= 3; d++ {
				mustInsert(t, r, s, d*7, s*10+d)
			}
		}
		wantCnt, err := r.Query(rel.T("src", 2), "dst")
		if err != nil {
			t.Fatal(err)
		}
		wantRows, err := r.Query(rel.T("src", 3), "dst", "weight")
		if err != nil {
			t.Fatal(err)
		}
		wantAll, err := r.Snapshot()
		if err != nil {
			t.Fatal(err)
		}

		var cnt *Pending[int]
		var rows, all *Pending[[]rel.Tuple]
		var tr *BatchTrace
		err = r.Batch(func(tx *Txn) error {
			tx.EnableTrace()
			tr = tx.Trace()
			var err error
			if cnt, err = tx.Count(rel.T("src", 2)); err != nil {
				return err
			}
			if rows, err = tx.Query(rel.T("src", 3), "dst", "weight"); err != nil {
				return err
			}
			// The unbound member scans every edge — on the speculative
			// diamond this exercises the optimistic spec-scan recording.
			all, err = tx.Query(rel.T(), "src", "dst", "weight")
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Optimistic {
			t.Fatal("read-only batch did not take the optimistic path")
		}
		if tr.Attempts != 1 || tr.FellBack {
			t.Fatalf("uncontended batch: attempts=%d fellBack=%v, want one clean attempt", tr.Attempts, tr.FellBack)
		}
		if tr.Acquired != 0 || tr.Requested != 0 {
			t.Fatalf("read-only batch acquired %d locks (%d requested), want 0", tr.Acquired, tr.Requested)
		}
		if tr.EpochsRecorded == 0 || tr.EpochsDistinct == 0 {
			t.Fatal("optimistic batch recorded no epochs")
		}
		if cnt.Value() != len(wantCnt) {
			t.Fatalf("count = %d, want %d", cnt.Value(), len(wantCnt))
		}
		if !tuplesEqual(rows.Value(), wantRows) {
			t.Fatalf("query = %v, want %v", rows.Value(), wantRows)
		}
		if !tuplesEqual(all.Value(), wantAll) {
			t.Fatalf("unbound query = %v, want %v", all.Value(), wantAll)
		}
	})
}

// TestBatchReadOnlyRejectsMutations pins the BatchReadOnly contract: every
// mutation enqueue surface errors, and nothing executes.
func TestBatchReadOnlyRejectsMutations(t *testing.T) {
	r := lockFreeStick(t)
	ins, err := r.PrepareInsert([]string{"dst", "src"})
	if err != nil {
		t.Fatal(err)
	}
	rem, err := r.PrepareRemove([]string{"dst", "src"})
	if err != nil {
		t.Fatal(err)
	}
	row := r.Schema().NewRow()
	row.Set(r.Schema().MustIndex("src"), int64(1))
	row.Set(r.Schema().MustIndex("dst"), int64(2))
	row.Set(r.Schema().MustIndex("weight"), int64(3))
	krow := r.Schema().NewRow()
	krow.Set(r.Schema().MustIndex("src"), int64(1))
	krow.Set(r.Schema().MustIndex("dst"), int64(2))
	err = r.BatchReadOnly(func(tx *Txn) error {
		if _, err := tx.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 3)); err == nil {
			t.Error("tuple insert accepted by read-only batch")
		}
		if _, err := tx.Remove(rel.T("src", 1, "dst", 2)); err == nil {
			t.Error("tuple remove accepted by read-only batch")
		}
		if _, err := tx.ExecRow(ins, row); err == nil {
			t.Error("prepared insert accepted by read-only batch")
		}
		if _, err := tx.ExecRow(rem, krow); err == nil {
			t.Error("prepared remove accepted by read-only batch")
		}
		_, err := tx.Count(rel.T("src", 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap, _ := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("rejected mutations executed anyway: %v", snap)
	}
}

// TestReadOnlyBatchPessimisticWhenIncapable: relations with any
// concurrency-unsafe container must keep the 2PL path (a lock-free read
// racing a TreeMap writer is a data race), with identical results.
func TestReadOnlyBatchPessimisticWhenIncapable(t *testing.T) {
	r := stickRel(t, container.ConcurrentHashMap, container.TreeMap, locks.FineGrained)
	if r.OptimisticCapable() {
		t.Fatal("TreeMap stick should not be optimistic-capable")
	}
	mustInsert(t, r, 1, 2, 10)
	mustInsert(t, r, 1, 3, 11)
	var cnt *Pending[int]
	var tr *BatchTrace
	err := r.BatchReadOnly(func(tx *Txn) error {
		tx.EnableTrace()
		tr = tx.Trace()
		var err error
		cnt, err = tx.Count(rel.T("src", 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Optimistic {
		t.Fatal("incapable relation attempted the lock-free path")
	}
	if tr.Acquired == 0 {
		t.Fatal("pessimistic read-only batch acquired no locks")
	}
	if cnt.Value() != 2 {
		t.Fatalf("count = %d, want 2", cnt.Value())
	}
}

// TestOptimisticValidationRetry forces exactly one validation failure: a
// conflicting insert lands between the batch's lock-free reads and its
// validation. The batch must retry, observe the new state, and validate
// the second attempt with still zero locks acquired.
func TestOptimisticValidationRetry(t *testing.T) {
	r := lockFreeStick(t)
	mustInsert(t, r, 1, 2, 10)
	mustInsert(t, r, 1, 3, 11)
	optimisticValidateHook = func(attempt int) {
		if attempt == 0 {
			mustInsert(t, r, 1, 50, 50)
		}
	}
	defer func() { optimisticValidateHook = nil }()
	var cnt *Pending[int]
	var tr *BatchTrace
	err := r.BatchReadOnly(func(tx *Txn) error {
		tx.EnableTrace()
		tr = tx.Trace()
		var err error
		cnt, err = tx.Count(rel.T("src", 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Optimistic || tr.FellBack {
		t.Fatalf("optimistic=%v fellBack=%v, want retried optimistic success", tr.Optimistic, tr.FellBack)
	}
	if tr.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one validation failure, one clean retry)", tr.Attempts)
	}
	if tr.Acquired != 0 {
		t.Fatalf("retried batch acquired %d locks, want 0", tr.Acquired)
	}
	if cnt.Value() != 3 {
		t.Fatalf("count = %d, want 3 (the retry must observe the conflicting insert)", cnt.Value())
	}
}

// TestOptimisticFallbackAfterK conflicts with EVERY optimistic attempt:
// after optimisticMaxAttempts failed validations the batch must fall back
// to pessimistic 2PL, acquire real locks, and return the correct result.
func TestOptimisticFallbackAfterK(t *testing.T) {
	r := lockFreeStick(t)
	mustInsert(t, r, 1, 2, 10)
	next := int64(100)
	optimisticValidateHook = func(attempt int) {
		mustInsert(t, r, 1, int(next), 7)
		next++
	}
	defer func() { optimisticValidateHook = nil }()
	var cnt *Pending[int]
	var tr *BatchTrace
	err := r.BatchReadOnly(func(tx *Txn) error {
		tx.EnableTrace()
		tr = tx.Trace()
		var err error
		cnt, err = tx.Count(rel.T("src", 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Optimistic || !tr.FellBack {
		t.Fatalf("optimistic=%v fellBack=%v, want exhausted attempts and fallback", tr.Optimistic, tr.FellBack)
	}
	if tr.Attempts != optimisticMaxAttempts {
		t.Fatalf("attempts = %d, want %d", tr.Attempts, optimisticMaxAttempts)
	}
	if tr.Acquired == 0 {
		t.Fatal("fallback run acquired no locks")
	}
	want := 1 + optimisticMaxAttempts // seed edge + one conflicting insert per attempt
	if cnt.Value() != want {
		t.Fatalf("count = %d, want %d", cnt.Value(), want)
	}
}

// TestOptimisticDifferentialQuickCheck interleaves random mutations with
// read-only batches on every capable variant and requires the batch
// results to match the sequential Reference oracle at each step.
func TestOptimisticDifferentialQuickCheck(t *testing.T) {
	forEachCapableVariant(t, func(t *testing.T, r *Relation) {
		ref := NewReference(r.Spec())
		rng := rand.New(rand.NewSource(7))
		const keys = 8
		for i := 0; i < 400; i++ {
			src, dst, w := rng.Int63n(keys), rng.Int63n(keys), rng.Int63n(64)
			if rng.Intn(3) == 0 {
				okR, _ := ref.Remove(rel.T("src", src, "dst", dst))
				okC, err := r.Remove(rel.T("src", src, "dst", dst))
				if err != nil {
					t.Fatal(err)
				}
				if okR != okC {
					t.Fatalf("step %d: remove diverged (ref %v, rel %v)", i, okR, okC)
				}
			} else {
				okR, _ := ref.Insert(rel.T("src", src, "dst", dst), rel.T("weight", w))
				okC, err := r.Insert(rel.T("src", src, "dst", dst), rel.T("weight", w))
				if err != nil {
					t.Fatal(err)
				}
				if okR != okC {
					t.Fatalf("step %d: insert diverged (ref %v, rel %v)", i, okR, okC)
				}
			}
			if i%5 != 4 {
				continue
			}
			qs := rng.Int63n(keys)
			wantRows, err := ref.Query(rel.T("src", qs), "dst", "weight")
			if err != nil {
				t.Fatal(err)
			}
			var cnt *Pending[int]
			var rows *Pending[[]rel.Tuple]
			var tr *BatchTrace
			err = r.BatchReadOnly(func(tx *Txn) error {
				tx.EnableTrace()
				tr = tx.Trace()
				var err error
				if cnt, err = tx.Count(rel.T("src", qs)); err != nil {
					return err
				}
				rows, err = tx.Query(rel.T("src", qs), "dst", "weight")
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			if !tr.Optimistic || tr.Acquired != 0 {
				t.Fatalf("step %d: uncontended read-only batch took locks (optimistic=%v acquired=%d)", i, tr.Optimistic, tr.Acquired)
			}
			if cnt.Value() != len(wantRows) {
				t.Fatalf("step %d: count(src=%d) = %d, want %d", i, qs, cnt.Value(), len(wantRows))
			}
			if !tuplesEqual(rows.Value(), wantRows) {
				t.Fatalf("step %d: query(src=%d) = %v, want %v", i, qs, rows.Value(), wantRows)
			}
		}
	})
}

// TestOptimisticConcurrentStress races mutating batches against lock-free
// read-only batches (run under -race in CI). Writers keep the invariant
// "src 1 and src 2 have identical successor sets" by always inserting and
// removing (1,k)/(2,k) pairs in one atomic batch; every read-only batch
// therefore must observe equal counts — a torn (unvalidated) read would
// break the equality. The stress also checks convergence: every batch
// terminates, either validating within optimisticMaxAttempts or falling
// back to 2PL.
func TestOptimisticConcurrentStress(t *testing.T) {
	for _, name := range []string{"stick/striped/chm+csl", "diamond/speculative/chm+csl"} {
		t.Run(name, func(t *testing.T) {
			var r *Relation
			for _, v := range capableVariants() {
				if v.name == name {
					r = v.build(t)
				}
			}
			const (
				writers = 2
				readers = 2
				iters   = 300
				keys    = 16
			)
			var wwg, rwg sync.WaitGroup
			var retries, fallbacks atomic.Int64
			stop := make(chan struct{})
			for w := 0; w < writers; w++ {
				wwg.Add(1)
				go func(seed int64) {
					defer wwg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < iters; i++ {
						k := rng.Int63n(keys)
						if rng.Intn(2) == 0 {
							err := r.Batch(func(tx *Txn) error {
								if _, err := tx.Insert(rel.T("src", 1, "dst", k), rel.T("weight", k)); err != nil {
									return err
								}
								_, err := tx.Insert(rel.T("src", 2, "dst", k), rel.T("weight", k))
								return err
							})
							if err != nil {
								panic(err)
							}
						} else {
							err := r.Batch(func(tx *Txn) error {
								if _, err := tx.Remove(rel.T("src", 1, "dst", k)); err != nil {
									return err
								}
								_, err := tx.Remove(rel.T("src", 2, "dst", k))
								return err
							})
							if err != nil {
								panic(err)
							}
						}
					}
				}(int64(w) + 1)
			}
			errs := make(chan error, readers)
			for rd := 0; rd < readers; rd++ {
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						var c1, c2 *Pending[int]
						var tr *BatchTrace
						err := r.BatchReadOnly(func(tx *Txn) error {
							tx.EnableTrace()
							tr = tx.Trace()
							var err error
							if c1, err = tx.Count(rel.T("src", 1)); err != nil {
								return err
							}
							c2, err = tx.Count(rel.T("src", 2))
							return err
						})
						if err != nil {
							errs <- err
							return
						}
						if tr.Attempts > optimisticMaxAttempts {
							errs <- fmt.Errorf("batch ran %d attempts, limit %d", tr.Attempts, optimisticMaxAttempts)
							return
						}
						retries.Add(int64(tr.Attempts - 1))
						if tr.FellBack {
							fallbacks.Add(1)
						}
						if c1.Value() != c2.Value() {
							errs <- fmt.Errorf("atomicity broken: count(src=1)=%d, count(src=2)=%d", c1.Value(), c2.Value())
							return
						}
					}
				}()
			}
			// Writers finish, then readers are stopped and drained; any
			// reader error fails the test.
			wwg.Wait()
			close(stop)
			rwg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			if _, err := r.VerifyWellFormed(); err != nil {
				t.Fatalf("relation ill-formed after stress: %v", err)
			}
			t.Logf("stress: %d validation retries, %d fallbacks", retries.Load(), fallbacks.Load())
		})
	}
}

// TestRegistryReadOnlyLockFree covers the cross-relation optimistic path:
// a read-only registry batch over two capable relations acquires zero
// locks and matches per-relation reads; a mixed batch keeps 2PL.
func TestRegistryReadOnlyLockFree(t *testing.T) {
	g := NewRegistry()
	build := func(name string) *Relation {
		d, err := decomp.NewBuilder(graphSpec(), "ρ").
			Edge("ρu", "ρ", "u", []string{"src"}, container.ConcurrentHashMap).
			Edge("uv", "u", "v", []string{"dst"}, container.ConcurrentSkipListMap).
			Edge("vw", "v", "w", []string{"weight"}, container.Cell).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		r, err := g.Synthesize(name, d.Spec, WithDecomposition(d), WithPlacement(locks.FineGrained(d)))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := build("a"), build("b")
	mustInsert(t, a, 1, 2, 10)
	mustInsert(t, a, 1, 3, 11)
	mustInsert(t, b, 1, 9, 90)

	var ca, cb *Pending[int]
	var tr *BatchTrace
	err := g.BatchReadOnly(func(tx *Txn) error {
		tx.EnableTrace()
		tr = tx.Trace()
		var err error
		if ca, err = tx.CountIn(a, rel.T("src", 1)); err != nil {
			return err
		}
		cb, err = tx.CountIn(b, rel.T("src", 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Optimistic || tr.Acquired != 0 || tr.Attempts != 1 {
		t.Fatalf("cross-relation read-only batch: optimistic=%v acquired=%d attempts=%d, want lock-free single attempt",
			tr.Optimistic, tr.Acquired, tr.Attempts)
	}
	if ca.Value() != 2 || cb.Value() != 1 {
		t.Fatalf("counts = %d/%d, want 2/1", ca.Value(), cb.Value())
	}

	// Mutation enqueues are rejected on the read-only surface.
	err = g.BatchReadOnly(func(tx *Txn) error {
		if _, err := tx.InsertInto(a, rel.T("src", 4, "dst", 4), rel.T("weight", 4)); err == nil {
			t.Error("InsertInto accepted by read-only registry batch")
		}
		if _, err := tx.RemoveFrom(a, rel.T("src", 1, "dst", 2)); err == nil {
			t.Error("RemoveFrom accepted by read-only registry batch")
		}
		_, err := tx.CountIn(a, rel.T("src", 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// A mixed batch is not read-only: it must skip the zero-lock path and
	// commit Silo-style instead (OCC: write locks only, read epochs).
	err = g.Batch(func(tx *Txn) error {
		tx.EnableTrace()
		tr = tx.Trace()
		if _, err := tx.InsertInto(a, rel.T("src", 5, "dst", 5), rel.T("weight", 5)); err != nil {
			return err
		}
		_, err := tx.CountIn(b, rel.T("src", 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Optimistic {
		t.Fatal("mixed registry batch attempted the read-only lock-free path")
	}
	if !tr.OCC {
		t.Fatal("mixed registry batch on capable relations skipped the OCC path")
	}
	if tr.Acquired == 0 {
		t.Fatal("mixed registry batch acquired no write locks")
	}
}

// TestRegistryOptimisticConcurrentStress is the cross-relation analog of
// TestOptimisticConcurrentStress: writers insert/remove the same key in
// two relations atomically; read-only registry batches must always see
// equal totals.
func TestRegistryOptimisticConcurrentStress(t *testing.T) {
	g := NewRegistry()
	build := func(name string) *Relation {
		d, err := decomp.NewBuilder(rel.MustSpec([]string{"k", "v"}, rel.FD{From: []string{"k"}, To: []string{"v"}}), "ρ").
			Edge("ρu", "ρ", "u", []string{"k"}, container.ConcurrentHashMap).
			Edge("uv", "u", "v", []string{"v"}, container.Cell).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		r, err := g.Synthesize(name, d.Spec, WithDecomposition(d), WithPlacement(locks.FineGrained(d)))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := build("a"), build("b")
	const iters = 400
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < iters; i++ {
			k := rng.Int63n(12)
			if rng.Intn(2) == 0 {
				err := g.Batch(func(tx *Txn) error {
					if _, err := tx.InsertInto(a, rel.T("k", k), rel.T("v", k)); err != nil {
						return err
					}
					_, err := tx.InsertInto(b, rel.T("k", k), rel.T("v", k))
					return err
				})
				if err != nil {
					panic(err)
				}
			} else {
				err := g.Batch(func(tx *Txn) error {
					if _, err := tx.RemoveFrom(a, rel.T("k", k)); err != nil {
						return err
					}
					_, err := tx.RemoveFrom(b, rel.T("k", k))
					return err
				})
				if err != nil {
					panic(err)
				}
			}
		}
	}()
	stop := make(chan struct{})
	var readerErr error
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var ca, cb *Pending[int]
			err := g.BatchReadOnly(func(tx *Txn) error {
				var err error
				if ca, err = tx.CountIn(a, rel.T()); err != nil {
					return err
				}
				cb, err = tx.CountIn(b, rel.T())
				return err
			})
			if err != nil {
				readerErr = err
				return
			}
			if ca.Value() != cb.Value() {
				readerErr = fmt.Errorf("atomicity broken: |a|=%d |b|=%d", ca.Value(), cb.Value())
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}
	for _, r := range []*Relation{a, b} {
		if _, err := r.VerifyWellFormed(); err != nil {
			t.Fatalf("%s ill-formed after stress: %v", r.Name(), err)
		}
	}
}
