package core

import (
	"sync"

	"repro/internal/locks"
	"repro/internal/query"
	"repro/internal/rel"
)

// Prepared operations are the library analog of the paper's static
// compilation: the Scala plugin compiled each syntactic relational
// operation once; here a client prepares an operation signature once and
// executes it many times with no per-call plan-cache lookups or
// validation. The §6.2 benchmark adapter uses these.

// txnPool recycles transaction objects (and their held-lock buffers)
// across operations.
var txnPool = sync.Pool{New: func() any { return locks.NewTxn() }}

func getTxn() *locks.Txn {
	t := txnPool.Get().(*locks.Txn)
	t.Reset()
	return t
}

func putTxn(t *locks.Txn) {
	txnPool.Put(t)
}

// PreparedQuery is a compiled query handle for one (bound columns, output
// columns) signature.
type PreparedQuery struct {
	r    *Relation
	plan *query.Plan
	// countPlan is the count-pushdown plan (internal/query/count.go),
	// compiled lazily-eagerly here since preparation is one-time.
	countPlan *query.Plan
	out       []string
}

// PrepareQuery compiles the query signature once. The tuple passed to
// Exec/Count must bind exactly the prepared bound columns.
func (r *Relation) PrepareQuery(bound, out []string) (*PreparedQuery, error) {
	if err := r.checkCols(bound); err != nil {
		return nil, err
	}
	if err := r.checkCols(out); err != nil {
		return nil, err
	}
	plan, err := r.queryPlanFor(bound, out)
	if err != nil {
		return nil, err
	}
	countPlan, err := r.planner.PlanCount(bound)
	if err != nil {
		countPlan = plan // fall back to the full plan
	}
	return &PreparedQuery{r: r, plan: plan, countPlan: countPlan, out: append([]string(nil), out...)}, nil
}

// Exec runs the prepared query for the bound tuple s.
func (q *PreparedQuery) Exec(s rel.Tuple) ([]rel.Tuple, error) {
	return q.r.runQueryPooled(q.plan, s, q.out), nil
}

// Count returns the number of tuples extending s, using the count-
// pushdown plan: once the bound columns are consumed, subtrees whose
// entries are keyed tuples are counted by container size under the
// already-required locks instead of being traversed.
func (q *PreparedQuery) Count(s rel.Tuple) (int, error) {
	txn := getTxn()
	defer func() {
		txn.ReleaseAll()
		putTxn(txn)
	}()
	states := []*qstate{q.r.rootState(s)}
	for i := range q.countPlan.Steps {
		step := &q.countPlan.Steps[i]
		if step.Kind == query.StepCount {
			total := 0
			for _, st := range states {
				if inst := st.insts[step.Edge.Src.Index]; inst != nil {
					q.r.auditAccess(txn, step.Edge, st.insts, st.tuple, nil, nil, true)
					total += inst.containerFor(step.Edge).Len()
				}
			}
			return total, nil
		}
		states = q.r.execStep(txn, step, states, s)
		if len(states) == 0 {
			return 0, nil
		}
	}
	return len(states), nil
}

// runQueryPooled is runQuery with a pooled transaction.
func (r *Relation) runQueryPooled(plan *query.Plan, s rel.Tuple, out []string) []rel.Tuple {
	txn := getTxn()
	defer func() {
		txn.ReleaseAll()
		putTxn(txn)
	}()
	states := []*qstate{r.rootState(s)}
	for i := range plan.Steps {
		states = r.execStep(txn, &plan.Steps[i], states, s)
		if len(states) == 0 {
			break
		}
	}
	results := make([]rel.Tuple, 0, len(states))
	for _, st := range states {
		results = append(results, st.tuple.Project(out))
	}
	return results
}

// PreparedInsert is a compiled insert handle for one key-column split.
type PreparedInsert struct {
	r    *Relation
	plan *insertPlan
}

// PrepareInsert compiles insert r s t for dom(s) = sCols.
func (r *Relation) PrepareInsert(sCols []string) (*PreparedInsert, error) {
	plan, err := r.insertPlanFor(sCols)
	if err != nil {
		return nil, err
	}
	return &PreparedInsert{r: r, plan: plan}, nil
}

// Exec runs the prepared insert; s must bind the prepared key columns and
// s ∪ t must bind every column (unchecked in this fast path — use
// Relation.Insert for validated inserts).
func (p *PreparedInsert) Exec(s, t rel.Tuple) (bool, error) {
	x, err := s.Union(t)
	if err != nil {
		return false, err
	}
	return p.r.runInsert(p.plan, s, x), nil
}

// PreparedRemove is a compiled remove handle for one key signature.
type PreparedRemove struct {
	r    *Relation
	plan *removePlan
}

// PrepareRemove compiles remove r s for dom(s) = sCols (a key).
func (r *Relation) PrepareRemove(sCols []string) (*PreparedRemove, error) {
	plan, err := r.removePlanFor(sCols)
	if err != nil {
		return nil, err
	}
	return &PreparedRemove{r: r, plan: plan}, nil
}

// Exec runs the prepared remove; s must bind the prepared key columns.
func (p *PreparedRemove) Exec(s rel.Tuple) (bool, error) {
	return p.r.runRemove(p.plan, s), nil
}
