package core

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/rel"
)

// Prepared operations are the library analog of the paper's static
// compilation: the Scala plugin compiled each syntactic relational
// operation once; here a client prepares an operation signature once and
// executes it many times with no per-call plan-cache lookups or
// validation. Two surfaces are offered:
//
//   - the Tuple API (Exec/Count), which converts between tuples and dense
//     rows exactly once at this boundary; and
//   - the Row API (ExecRow/ExecRows/CountRow), which accepts
//     schema-indexed rel.Row values directly and performs no column-name
//     work at all — the §6.2 benchmark adapters use it.

// PreparedQuery is a compiled query handle for one (bound columns, output
// columns) signature.
type PreparedQuery struct {
	r    *Relation
	plan *query.Plan
	// countPlan is the count-pushdown plan (internal/query/count.go),
	// compiled lazily-eagerly here since preparation is one-time.
	countPlan *query.Plan
}

// PrepareQuery compiles the query signature once. The tuple or row passed
// to Exec/Count must bind exactly the prepared bound columns.
func (r *Relation) PrepareQuery(bound, out []string) (*PreparedQuery, error) {
	if err := r.checkCols(bound); err != nil {
		return nil, err
	}
	if err := r.checkCols(out); err != nil {
		return nil, err
	}
	plan, err := r.queryPlanFor(bound, out)
	if err != nil {
		return nil, err
	}
	countPlan, err := r.countPlanFor(bound)
	if err != nil {
		countPlan = plan // fall back to the full plan
	}
	return &PreparedQuery{r: r, plan: plan, countPlan: countPlan}, nil
}

// Exec runs the prepared query for the bound tuple s.
func (q *PreparedQuery) Exec(s rel.Tuple) ([]rel.Tuple, error) {
	row, err := q.r.rowForTuple(s, q.plan.BoundMask)
	if err != nil {
		return nil, err
	}
	return q.r.runQueryTuples(q.plan, row), nil
}

// ExecRows runs the prepared query for the bound row s and yields each
// matching state's row until yield returns false. Yielded rows bind (at
// least) the prepared output columns; they are only valid during the
// callback — the backing storage is pooled. On an OptimisticCapable
// relation the traversal runs lock-free and yields only after its epoch
// records validated (no locks are held during the iteration); otherwise
// the query's shared locks are held for the duration of the iteration.
// Either way the yielded rows are a validated consistent snapshot.
func (q *PreparedQuery) ExecRows(s rel.Row, yield func(rel.Row) bool) error {
	if err := q.r.checkRow(s, q.plan.BoundMask); err != nil {
		return err
	}
	b := q.r.getBuf()
	defer q.r.putBuf(b)
	states, ok := []*qstate(nil), false
	if q.r.optimisticOK {
		// Lock-free single-operation read path: yields run only after the
		// recorded epochs validated, so callers never see torn rows.
		states, ok = q.r.runStatesOptimistic(b, q.plan.Steps, s, q.plan.BoundMask)
	}
	if !ok {
		states = q.r.runSteps(b, q.plan.Steps, s, q.plan.BoundMask)
	}
	for _, st := range states {
		if !yield(st.row) {
			break
		}
	}
	b.recycle(states)
	return nil
}

// Count returns the number of tuples extending s, using the count-
// pushdown plan: once the bound columns are consumed, subtrees whose
// entries are keyed tuples are counted by container size under the
// already-required locks instead of being traversed.
func (q *PreparedQuery) Count(s rel.Tuple) (int, error) {
	row, err := q.r.rowForTuple(s, q.plan.BoundMask)
	if err != nil {
		return 0, err
	}
	return q.r.runCount(q.countPlan, row), nil
}

// CountRow is Count over a schema-indexed row, the zero-name-resolution
// fast path.
func (q *PreparedQuery) CountRow(s rel.Row) (int, error) {
	if err := q.r.checkRow(s, q.plan.BoundMask); err != nil {
		return 0, err
	}
	return q.r.runCount(q.countPlan, s), nil
}

// runQueryTuples executes a compiled plan and materializes the results as
// tuples — the single row→tuple conversion point of the query path. On
// OptimisticCapable relations it runs lock-free with epoch validation
// (materialization happens only after a successful validation), falling
// back to the locking execution otherwise.
func (r *Relation) runQueryTuples(plan *query.Plan, op rel.Row) []rel.Tuple {
	b := r.getBuf()
	defer r.putBuf(b)
	states, ok := []*qstate(nil), false
	if r.optimisticOK {
		states, ok = r.runStatesOptimistic(b, plan.Steps, op, plan.BoundMask)
	}
	if !ok {
		states = r.runSteps(b, plan.Steps, op, plan.BoundMask)
	}
	results := make([]rel.Tuple, 0, len(states))
	for _, st := range states {
		vals := make([]rel.Value, len(plan.OutIdx))
		for j, ci := range plan.OutIdx {
			vals[j] = st.row.At(ci)
		}
		results = append(results, rel.TupleFromSorted(plan.OutCols, vals))
	}
	b.recycle(states)
	return results
}

// runCount executes a count plan; a StepCount terminal sums container
// sizes at the counting frontier, otherwise surviving states are counted.
// On OptimisticCapable relations the count runs lock-free with epoch
// validation, falling back to the locking execution otherwise.
func (r *Relation) runCount(plan *query.Plan, op rel.Row) int {
	b := r.getBuf()
	defer r.putBuf(b)
	if r.optimisticOK {
		if n, ok := r.runCountOptimistic(b, plan.Steps, op, plan.BoundMask); ok {
			return n
		}
	}
	return r.runCountSteps(b, plan.Steps, op, plan.BoundMask)
}

// rowForTuple converts an operation tuple to a fresh row and checks that
// it binds exactly the plan's bound columns.
func (r *Relation) rowForTuple(s rel.Tuple, want uint64) (rel.Row, error) {
	row, err := r.schema.RowFromTuple(s, nil)
	if err != nil {
		return rel.Row{}, err
	}
	if row.Mask() != want {
		return rel.Row{}, fmt.Errorf("core: tuple %v does not bind the prepared columns", s)
	}
	return row, nil
}

// checkRow validates a caller-provided row against the schema width and a
// required bound mask.
func (r *Relation) checkRow(s rel.Row, want uint64) error {
	if s.Width() != r.schema.Len() {
		return fmt.Errorf("core: row width %d does not match schema width %d", s.Width(), r.schema.Len())
	}
	if s.Mask() != want {
		return fmt.Errorf("core: row binds %v, prepared operation wants %v",
			r.maskCols(s.Mask()), r.maskCols(want))
	}
	return nil
}

// maskCols renders a bound mask as its column names, for error messages.
func (r *Relation) maskCols(mask uint64) []string {
	cols := make([]string, 0, r.schema.Len())
	for i := 0; i < r.schema.Len(); i++ {
		if mask&(1<<uint(i)) != 0 {
			cols = append(cols, r.schema.Column(i))
		}
	}
	return cols
}

// PreparedInsert is a compiled insert handle for one key-column split.
type PreparedInsert struct {
	r    *Relation
	plan *insertPlan
}

// PrepareInsert compiles insert r s t for dom(s) = sCols.
func (r *Relation) PrepareInsert(sCols []string) (*PreparedInsert, error) {
	plan, err := r.insertPlanFor(sCols)
	if err != nil {
		return nil, err
	}
	return &PreparedInsert{r: r, plan: plan}, nil
}

// Exec runs the prepared insert; s must bind the prepared key columns and
// s ∪ t must bind every column.
func (p *PreparedInsert) Exec(s, t rel.Tuple) (bool, error) {
	x, err := s.Union(t)
	if err != nil {
		return false, err
	}
	row, err := p.r.rowForTuple(x, p.r.fullMask)
	if err != nil {
		return false, err
	}
	return p.r.runInsert(p.plan, row), nil
}

// ExecRow runs the prepared insert for a fully bound row x; the key
// columns s of the put-if-absent check are the prepared subset of x.
func (p *PreparedInsert) ExecRow(x rel.Row) (bool, error) {
	if err := p.r.checkRow(x, p.r.fullMask); err != nil {
		return false, err
	}
	return p.r.runInsert(p.plan, x), nil
}

// PreparedRemove is a compiled remove handle for one key signature.
type PreparedRemove struct {
	r    *Relation
	plan *removePlan
}

// PrepareRemove compiles remove r s for dom(s) = sCols (a key).
func (r *Relation) PrepareRemove(sCols []string) (*PreparedRemove, error) {
	plan, err := r.removePlanFor(sCols)
	if err != nil {
		return nil, err
	}
	return &PreparedRemove{r: r, plan: plan}, nil
}

// Exec runs the prepared remove; s must bind the prepared key columns.
func (p *PreparedRemove) Exec(s rel.Tuple) (bool, error) {
	row, err := p.r.rowForTuple(s, p.plan.mut.BoundMask)
	if err != nil {
		return false, err
	}
	return p.r.runRemove(p.plan, row), nil
}

// ExecRow runs the prepared remove for a row binding exactly the prepared
// key columns.
func (p *PreparedRemove) ExecRow(s rel.Row) (bool, error) {
	if err := p.r.checkRow(s, p.plan.mut.BoundMask); err != nil {
		return false, err
	}
	return p.r.runRemove(p.plan, s), nil
}
