package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/query"
	"repro/internal/rel"
)

// Prepared operations are the library analog of the paper's static
// compilation: the Scala plugin compiled each syntactic relational
// operation once; here a client prepares an operation signature once and
// executes it many times with no per-call plan-cache lookups or
// validation. Two surfaces are offered:
//
//   - the Tuple API (Exec/Count), which converts between tuples and dense
//     rows exactly once at this boundary; and
//   - the Row API (ExecRow/ExecRows/CountRow), which accepts
//     schema-indexed rel.Row values directly and performs no column-name
//     work at all — the §6.2 benchmark adapters use it.
//
// A handle survives live migration (migrate.go): it stores its SIGNATURE
// plus an atomically published plan bundle stamped with the relation's
// representation version. Every execution — running under the shared
// representation latch — compares the stamp against the current version;
// on the steady state that is one atomic load and an integer compare, and
// after a cutover bumped the version the handle transparently recompiles
// through the relation's (already warm) plan caches.

// preparedQueryPlans is one representation's compiled plans for a query
// signature.
type preparedQueryPlans struct {
	ver  uint64
	plan *query.Plan
	// countPlan is the count-pushdown plan (internal/query/count.go),
	// falling back to the full plan when no counting frontier exists.
	countPlan *query.Plan
}

// PreparedQuery is a compiled query handle for one (bound columns, output
// columns) signature.
type PreparedQuery struct {
	r     *Relation
	bound []string
	out   []string
	pl    atomic.Pointer[preparedQueryPlans]
}

// PrepareQuery compiles the query signature once. The tuple or row passed
// to Exec/Count must bind exactly the prepared bound columns. The handle
// stays valid across live migrations.
func (r *Relation) PrepareQuery(bound, out []string) (*PreparedQuery, error) {
	r.lockRep()
	defer r.unlockRep()
	if err := r.checkCols(bound); err != nil {
		return nil, err
	}
	if err := r.checkCols(out); err != nil {
		return nil, err
	}
	q := &PreparedQuery{r: r, bound: append([]string(nil), bound...), out: append([]string(nil), out...)}
	if _, err := q.plans(); err != nil {
		return nil, err
	}
	return q, nil
}

// plans returns the handle's plan bundle for the CURRENT representation,
// recompiling through the relation's plan caches when a migration bumped
// the version since the bundle was stamped. Callers hold the
// representation latch (directly or via their enclosing batch), which is
// what makes the version compare meaningful.
func (q *PreparedQuery) plans() (*preparedQueryPlans, error) {
	r := q.r
	ver := r.repVer
	if ps := q.pl.Load(); ps != nil && ps.ver == ver {
		return ps, nil
	}
	plan, err := r.queryPlanFor(q.bound, q.out)
	if err != nil {
		return nil, err
	}
	countPlan, err := r.countPlanFor(q.bound)
	if err != nil {
		countPlan = plan // fall back to the full plan
	}
	ps := &preparedQueryPlans{ver: ver, plan: plan, countPlan: countPlan}
	q.pl.Store(ps)
	return ps, nil
}

// Exec runs the prepared query for the bound tuple s.
func (q *PreparedQuery) Exec(s rel.Tuple) ([]rel.Tuple, error) {
	q.r.lockRep()
	defer q.r.unlockRep()
	ps, err := q.plans()
	if err != nil {
		return nil, err
	}
	row, err := q.r.rowForTuple(s, ps.plan.BoundMask)
	if err != nil {
		return nil, err
	}
	return q.r.runQueryTuples(ps.plan, row), nil
}

// ExecRows runs the prepared query for the bound row s and yields each
// matching state's row until yield returns false. Yielded rows bind (at
// least) the prepared output columns; they are only valid during the
// callback — the backing storage is pooled. On an OptimisticCapable
// relation the traversal runs lock-free and yields only after its epoch
// records validated (no locks are held during the iteration); otherwise
// the query's shared locks are held for the duration of the iteration.
// Either way the yielded rows are a validated consistent snapshot.
func (q *PreparedQuery) ExecRows(s rel.Row, yield func(rel.Row) bool) error {
	q.r.lockRep()
	defer q.r.unlockRep()
	ps, err := q.plans()
	if err != nil {
		return err
	}
	if err := q.r.checkRow(s, ps.plan.BoundMask); err != nil {
		return err
	}
	q.r.ctr.reads.Add(1)
	b := q.r.getBuf()
	defer q.r.putBuf(b)
	states, ok := []*qstate(nil), false
	if q.r.optimisticOK {
		// Lock-free single-operation read path: yields run only after the
		// recorded epochs validated, so callers never see torn rows.
		states, ok = q.r.runStatesOptimistic(b, ps.plan.Steps, s, ps.plan.BoundMask)
	}
	if !ok {
		states = q.r.runSteps(b, ps.plan.Steps, s, ps.plan.BoundMask)
	}
	for _, st := range states {
		if !yield(st.row) {
			break
		}
	}
	b.recycle(states)
	return nil
}

// Count returns the number of tuples extending s, using the count-
// pushdown plan: once the bound columns are consumed, subtrees whose
// entries are keyed tuples are counted by container size under the
// already-required locks instead of being traversed.
func (q *PreparedQuery) Count(s rel.Tuple) (int, error) {
	q.r.lockRep()
	defer q.r.unlockRep()
	ps, err := q.plans()
	if err != nil {
		return 0, err
	}
	row, err := q.r.rowForTuple(s, ps.plan.BoundMask)
	if err != nil {
		return 0, err
	}
	return q.r.runCount(ps.countPlan, row), nil
}

// CountRow is Count over a schema-indexed row, the zero-name-resolution
// fast path.
func (q *PreparedQuery) CountRow(s rel.Row) (int, error) {
	q.r.lockRep()
	defer q.r.unlockRep()
	ps, err := q.plans()
	if err != nil {
		return 0, err
	}
	if err := q.r.checkRow(s, ps.plan.BoundMask); err != nil {
		return 0, err
	}
	return q.r.runCount(ps.countPlan, s), nil
}

// runQueryTuples executes a compiled plan and materializes the results as
// tuples — the single row→tuple conversion point of the query path. On
// OptimisticCapable relations it runs lock-free with epoch validation
// (materialization happens only after a successful validation), falling
// back to the locking execution otherwise.
func (r *Relation) runQueryTuples(plan *query.Plan, op rel.Row) []rel.Tuple {
	r.ctr.reads.Add(1)
	b := r.getBuf()
	defer r.putBuf(b)
	states, ok := []*qstate(nil), false
	if r.optimisticOK {
		states, ok = r.runStatesOptimistic(b, plan.Steps, op, plan.BoundMask)
	}
	if !ok {
		states = r.runSteps(b, plan.Steps, op, plan.BoundMask)
	}
	results := make([]rel.Tuple, 0, len(states))
	for _, st := range states {
		vals := make([]rel.Value, len(plan.OutIdx))
		for j, ci := range plan.OutIdx {
			vals[j] = st.row.At(ci)
		}
		results = append(results, rel.TupleFromSorted(plan.OutCols, vals))
	}
	b.recycle(states)
	return results
}

// runCount executes a count plan; a StepCount terminal sums container
// sizes at the counting frontier, otherwise surviving states are counted.
// On OptimisticCapable relations the count runs lock-free with epoch
// validation, falling back to the locking execution otherwise.
func (r *Relation) runCount(plan *query.Plan, op rel.Row) int {
	r.ctr.reads.Add(1)
	b := r.getBuf()
	defer r.putBuf(b)
	if r.optimisticOK {
		if n, ok := r.runCountOptimistic(b, plan.Steps, op, plan.BoundMask); ok {
			return n
		}
	}
	return r.runCountSteps(b, plan.Steps, op, plan.BoundMask)
}

// rowForTuple converts an operation tuple to a fresh row and checks that
// it binds exactly the plan's bound columns.
func (r *Relation) rowForTuple(s rel.Tuple, want uint64) (rel.Row, error) {
	row, err := r.schema.RowFromTuple(s, nil)
	if err != nil {
		return rel.Row{}, err
	}
	if row.Mask() != want {
		return rel.Row{}, fmt.Errorf("core: tuple %v does not bind the prepared columns", s)
	}
	return row, nil
}

// checkRow validates a caller-provided row against the schema width and a
// required bound mask.
func (r *Relation) checkRow(s rel.Row, want uint64) error {
	if s.Width() != r.schema.Len() {
		return fmt.Errorf("core: row width %d does not match schema width %d", s.Width(), r.schema.Len())
	}
	if s.Mask() != want {
		return fmt.Errorf("core: row binds %v, prepared operation wants %v",
			r.maskCols(s.Mask()), r.maskCols(want))
	}
	return nil
}

// maskCols renders a bound mask as its column names (error messages, and
// the signature key of migration replay's plan lookups; migrate.go).
func (r *Relation) maskCols(mask uint64) []string {
	cols := make([]string, 0, r.schema.Len())
	for i := 0; i < r.schema.Len(); i++ {
		if mask&(1<<uint(i)) != 0 {
			cols = append(cols, r.schema.Column(i))
		}
	}
	return cols
}

// preparedInsertPlan is one representation's compiled insert plan.
type preparedInsertPlan struct {
	ver  uint64
	plan *insertPlan
}

// PreparedInsert is a compiled insert handle for one key-column split.
type PreparedInsert struct {
	r     *Relation
	sCols []string
	pl    atomic.Pointer[preparedInsertPlan]
}

// PrepareInsert compiles insert r s t for dom(s) = sCols. The handle
// stays valid across live migrations.
func (r *Relation) PrepareInsert(sCols []string) (*PreparedInsert, error) {
	r.lockRep()
	defer r.unlockRep()
	p := &PreparedInsert{r: r, sCols: append([]string(nil), sCols...)}
	if _, err := p.resolve(); err != nil {
		return nil, err
	}
	return p, nil
}

// resolve returns the handle's insert plan for the current
// representation; see PreparedQuery.plans.
func (p *PreparedInsert) resolve() (*insertPlan, error) {
	ver := p.r.repVer
	if ps := p.pl.Load(); ps != nil && ps.ver == ver {
		return ps.plan, nil
	}
	plan, err := p.r.insertPlanFor(p.sCols)
	if err != nil {
		return nil, err
	}
	p.pl.Store(&preparedInsertPlan{ver: ver, plan: plan})
	return plan, nil
}

// Exec runs the prepared insert; s must bind the prepared key columns and
// s ∪ t must bind every column.
func (p *PreparedInsert) Exec(s, t rel.Tuple) (bool, error) {
	p.r.lockRep()
	defer p.r.unlockRep()
	plan, err := p.resolve()
	if err != nil {
		return false, err
	}
	x, err := s.Union(t)
	if err != nil {
		return false, err
	}
	row, err := p.r.rowForTuple(x, p.r.fullMask)
	if err != nil {
		return false, err
	}
	return p.r.runInsert(plan, row), nil
}

// ExecRow runs the prepared insert for a fully bound row x; the key
// columns s of the put-if-absent check are the prepared subset of x.
func (p *PreparedInsert) ExecRow(x rel.Row) (bool, error) {
	p.r.lockRep()
	defer p.r.unlockRep()
	plan, err := p.resolve()
	if err != nil {
		return false, err
	}
	if err := p.r.checkRow(x, p.r.fullMask); err != nil {
		return false, err
	}
	return p.r.runInsert(plan, x), nil
}

// preparedRemovePlan is one representation's compiled remove plan.
type preparedRemovePlan struct {
	ver  uint64
	plan *removePlan
}

// PreparedRemove is a compiled remove handle for one key signature.
type PreparedRemove struct {
	r     *Relation
	sCols []string
	pl    atomic.Pointer[preparedRemovePlan]
}

// PrepareRemove compiles remove r s for dom(s) = sCols (a key). The
// handle stays valid across live migrations.
func (r *Relation) PrepareRemove(sCols []string) (*PreparedRemove, error) {
	r.lockRep()
	defer r.unlockRep()
	p := &PreparedRemove{r: r, sCols: append([]string(nil), sCols...)}
	if _, err := p.resolve(); err != nil {
		return nil, err
	}
	return p, nil
}

// resolve returns the handle's remove plan for the current
// representation; see PreparedQuery.plans.
func (p *PreparedRemove) resolve() (*removePlan, error) {
	ver := p.r.repVer
	if ps := p.pl.Load(); ps != nil && ps.ver == ver {
		return ps.plan, nil
	}
	plan, err := p.r.removePlanFor(p.sCols)
	if err != nil {
		return nil, err
	}
	p.pl.Store(&preparedRemovePlan{ver: ver, plan: plan})
	return plan, nil
}

// Exec runs the prepared remove; s must bind the prepared key columns.
func (p *PreparedRemove) Exec(s rel.Tuple) (bool, error) {
	p.r.lockRep()
	defer p.r.unlockRep()
	plan, err := p.resolve()
	if err != nil {
		return false, err
	}
	row, err := p.r.rowForTuple(s, plan.mut.BoundMask)
	if err != nil {
		return false, err
	}
	return p.r.runRemove(plan, row), nil
}

// ExecRow runs the prepared remove for a row binding exactly the prepared
// key columns.
func (p *PreparedRemove) ExecRow(s rel.Row) (bool, error) {
	p.r.lockRep()
	defer p.r.unlockRep()
	plan, err := p.resolve()
	if err != nil {
		return false, err
	}
	if err := p.r.checkRow(s, plan.mut.BoundMask); err != nil {
		return false, err
	}
	return p.r.runRemove(plan, s), nil
}
