package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

// The well-lockedness auditor turns the logical-lock protocol of §4.2 into
// executable assertions: when enabled, every container access the executor
// performs is checked against the lock placement — the transaction must
// hold the physical lock(s) that imply the logical lock of the touched
// edge instances. A violation panics with a diagnostic; the test suites
// run with auditing on, so a planner or executor bug that under-locks
// cannot pass silently even if no race happens to materialize.
//
// The rules mirror §4.3–4.5:
//
//   - non-speculative edge: the lock lives on the placement node's
//     instance; if the operation tuple binds the stripe selector, that
//     stripe must be held, otherwise every stripe must be held (the
//     "conservatively take all k locks" case);
//   - speculative edge, present entry: the target instance's lock;
//   - speculative edge, absent entry or whole-container access: the
//     fallback stripes;
//   - instances created by the running operation are private until its
//     locks are released, so accesses to them need no locks.

var auditEnabled atomic.Bool

// SetAudit globally enables or disables well-lockedness auditing. Intended
// for tests; auditing costs one placement resolution per container access.
func SetAudit(on bool) { auditEnabled.Store(on) }

// AuditEnabled reports whether auditing is on.
func AuditEnabled() bool { return auditEnabled.Load() }

// covered reports whether the running operation's synchronization covers
// lock l: the transaction holds it, or — in an optimistic read-only
// attempt — its epoch has been recorded into the read-set, which is the
// lock-free analog of a shared hold (the final validation proves the
// reads under it were stable). A mixed-batch OCC commit (occ.go) mixes
// both currencies: write members' accesses are covered by held exclusive
// locks, read members' (and their apply-phase re-executions') by recorded
// epochs, and reads that traverse write-locked instances by either.
func (b *opBuf) covered(l *locks.Lock) bool {
	if b.occ {
		return b.txn.Holds(l) || b.reads.Contains(l)
	}
	if b.optimistic {
		return b.reads.Contains(l)
	}
	return b.txn.Holds(l)
}

// auditCover asserts coverage of l, with one deliberate relaxation: an
// OCC apply-phase re-execution may legitimately discover an instance
// that exists in NO coverage set — created by a concurrent transaction
// after the batch's read phase (the batch holds no lock excluding it).
// Such an attempt is doomed — the container the instance appeared in has
// a recorded epoch its creator bumped — so instead of panicking on a
// transient the protocol already handles, the audit records the
// discovered lock's epoch (the re-read's stability evidence) and lets
// validation fail the attempt. Every other mode keeps the hard panic.
func (b *opBuf) auditCover(l *locks.Lock) bool {
	if b.covered(l) {
		return true
	}
	if b.occ && b.apply {
		b.reads.Record(l)
		return true
	}
	return false
}

// auditAccess asserts lock coverage for an access to edge e. insts maps
// node index → located instance (a query state's instances or a
// mutation's xinst array); row is the access's bound row (the stripe
// source); target is the present speculative target, nil otherwise;
// fresh marks instances created by this operation.
// whole marks whole-container observations (emptiness and Len reads),
// which rely on every entry's logical lock: a single stripe then only
// suffices when the selector is constant per container (⊆ the source
// node's bound columns). Per-entry and filtered accesses accept a single
// stripe whenever the row binds the selector (the predicate-lock
// argument of §4.4: all entries the access relies on share that stripe).
// In an optimistic attempt (b.optimistic) "held" means "epoch recorded":
// every lock-free read must be covered by a read-set entry recorded where
// the pessimistic plan would have acquired the lock.
func (r *Relation) auditAccess(b *opBuf, e *decomp.Edge, insts []*Instance, row rel.Row, target *Instance, fresh map[*Instance]bool, whole bool) {
	if !auditEnabled.Load() {
		return
	}
	src := insts[e.Src.Index]
	if src == nil || fresh[src] {
		return // private or unlocated: nothing observable
	}
	rule := r.placement.RuleFor(e)
	if rule.Speculative {
		if target != nil {
			if fresh[target] {
				return
			}
			if !b.auditCover(target.lock(0)) {
				panic(fmt.Sprintf("core: audit: speculative access to %s without target lock %v", e.Name, target.lock(0).ID()))
			}
			return
		}
		r.auditStripes(b, e, insts[rule.FallbackAt.Index], rule.FallbackAt, rule.FallbackStripeBy, row, whole)
		return
	}
	at := insts[rule.At.Index]
	if at == nil {
		panic(fmt.Sprintf("core: audit: access to %s before locating placement node %s", e.Name, rule.At.Name))
	}
	if fresh[at] {
		return
	}
	r.auditStripes(b, e, at, rule.At, rule.StripeBy, row, whole)
}

// auditStripes asserts the stripe-coverage rule on one placement instance.
// Stripe selection mirrors Placement.StripeIndex, computed over the row
// through the schema (the auditor is test-only, so the per-access name
// resolution here is acceptable).
func (r *Relation) auditStripes(b *opBuf, e *decomp.Edge, inst *Instance, at *decomp.Node, stripeBy []string, row rel.Row, whole bool) {
	if inst == nil {
		panic(fmt.Sprintf("core: audit: access to %s before locating fallback/placement node %s", e.Name, at.Name))
	}
	k := r.placement.StripeCount(at)
	selMask := r.schema.Mask(stripeBy)
	single := false
	if whole {
		single = rel.ColsSubset(stripeBy, e.Src.A)
	} else {
		single = row.BindsAll(selMask)
	}
	if single {
		idx, ok := 0, true
		switch {
		case k == 1 || len(stripeBy) == 0:
			// stripe 0
		case row.BindsAll(selMask):
			idx = int(row.HashAt(r.schema.Indices(stripeBy)) % uint64(k))
		default:
			ok = false
		}
		if ok {
			if !b.auditCover(inst.lock(idx)) {
				panic(fmt.Sprintf("core: audit: access to %s without stripe %d of %s (selector %v)",
					e.Name, idx, at.Name, stripeBy))
			}
			return
		}
	}
	for i := 0; i < k; i++ {
		if !b.auditCover(inst.lock(i)) {
			panic(fmt.Sprintf("core: audit: unselective access to %s missing stripe %d of %s (whole=%v)", e.Name, i, at.Name, whole))
		}
	}
}
