package core

import (
	"os"
	"testing"
)

// TestMain enables the §4.2 well-lockedness auditor for the whole core
// suite: every differential, stress and linearizability test then also
// asserts, on every container access, that the executor holds the physical
// locks the placement requires.
func TestMain(m *testing.M) {
	SetAudit(true)
	code := m.Run()
	SetAudit(false)
	os.Exit(code)
}
