package core

import (
	"sort"

	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/query"
	"repro/internal/rel"
)

// This file is the runtime half of the compiled round maps
// (internal/query/roundmap.go): the batched growing phase as a walk over
// each member's pre-classified round array instead of the generic cursor
// machine of batch.go. The walkers mirror the cursor machine move for
// move — same gates, same wait transitions, same progress accounting — so
// the coalesced lock schedule is byte-identical; what changes is the
// per-sweep work (two integer comparisons instead of re-classifying the
// current step) and the state-array discipline: round-mode members pipe
// their scans through member-owned arrays, leaving the buffer's shared
// ping-pong pair to the apply phase's re-executions, so steady-state
// batches allocate nothing.
//
// Members are swept in plan-identity groups (buildGroups): the member
// order is partitioned by compiled-program pointer, memoized across
// batches on the pooled buffer, so same-plan members advance back to back
// and their per-node contributions merge while the plan's rounds stay hot.
// Speculative waves resolve through per-node index buckets instead of a
// global (node, key) sort, reusing the bucket arrays across waves.

// useRoundMaps gates the round-map scheduler; SetRoundMaps flips it for
// differential tests pinning the two schedulers against each other.
var useRoundMaps = true

// SetRoundMaps enables or disables the round-map batch scheduler,
// returning the previous setting. Testing knob: results and lock
// schedules are identical either way.
func SetRoundMaps(on bool) bool {
	prev := useRoundMaps
	useRoundMaps = on
	return prev
}

// prog returns the member's compiled-program pointer, the plan-identity
// key of the memoized grouping.
func (m *member) prog() any {
	if m.mut != nil {
		return m.mut.Prog
	}
	return m.qprog
}

// sameBacking reports whether two state lists share a backing array.
func sameBacking(a, c []*qstate) bool {
	return cap(a) > 0 && cap(c) > 0 && &a[:cap(a)][0] == &c[:cap(c)][0]
}

// detectRounds decides whether this batch runs on the round-map scheduler:
// every member must carry a compiled program, and insert members must not
// need a scan-shaped existence probe (those run on the shared ping-pong
// arrays, which round mode reserves for the apply phase).
func (b *opBuf) detectRounds() {
	b.rounds = useRoundMaps
	if !b.rounds {
		return
	}
	for i := range b.members {
		m := &b.members[i]
		switch m.kind {
		case mQuery, mCount:
			if m.qprog == nil {
				b.rounds = false
				return
			}
		case mInsert:
			if m.mut.Prog == nil {
				b.rounds = false
				return
			}
		case mRemove:
			if m.mut.Prog == nil {
				b.rounds = false
				return
			}
		}
	}
}

// buildGroups (re)computes the plan-identity sweep order: members sharing
// a compiled program are swept consecutively, first-occurrence order. The
// grouping is memoized on the buffer — steady-state callers enqueue the
// same operation mix batch after batch, so validation (one pointer
// comparison per member) almost always hits.
func (b *opBuf) buildGroups() {
	n := len(b.members)
	if len(b.groupKey) == n && len(b.groupOrder) == n {
		hit := true
		for i := range b.members {
			if b.groupKey[i] != b.members[i].prog() {
				hit = false
				break
			}
		}
		if hit {
			return
		}
	}
	b.groupKey = b.groupKey[:0]
	for i := range b.members {
		b.groupKey = append(b.groupKey, b.members[i].prog())
	}
	b.groupOrder = b.groupOrder[:0]
	for i := 0; i < n; i++ {
		k := b.groupKey[i]
		dup := false
		for j := 0; j < i; j++ {
			if b.groupKey[j] == k {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		for j := i; j < n; j++ {
			if b.groupKey[j] == k {
				b.groupOrder = append(b.groupOrder, int32(j))
			}
		}
	}
}

// advanceMemberRounds is advanceMember over the member's compiled round
// program.
func (r *Relation) advanceMemberRounds(b *opBuf, m *member, v int) bool {
	if m.wait != wNone {
		return false
	}
	switch m.kind {
	case mQuery, mCount:
		return r.advancePlanRounds(b, m, v)
	case mInsert:
		return r.advanceInsertRounds(b, m, v)
	case mRemove:
		return r.advanceRemoveRounds(b, m, v)
	}
	panic("core: unknown batch member kind")
}

// advancePlanRounds advances a query/count member through its round
// program: the compiled form of advancePlan's step classification.
func (r *Relation) advancePlanRounds(b *opBuf, m *member, v int) bool {
	rounds := m.qprog.Rounds
	progress := false
	for m.cursor < len(rounds) {
		rd := &rounds[m.cursor]
		switch rd.Kind {
		case query.RoundLock:
			if rd.Gate > v {
				return progress
			}
			r.execLock(b, &m.steps[rd.Lo], m.states, m.row) // diverts into b.collect
			m.cursor++
			m.wait = wLock
			return true
		case query.RoundSpec:
			if m.specResolved {
				m.consumeSpec()
				progress = true
				continue
			}
			if rd.Gate > v {
				return progress
			}
			s := &m.steps[rd.Lo]
			var n int
			if s.Kind == query.StepSpecLookup {
				for _, st := range m.states {
					src := st.insts[s.Edge.Src.Index]
					if src == nil {
						continue
					}
					b.specs = append(b.specs, batchSpecReq{m: m, st: st, edge: s.Edge, colIdx: s.ColIdx,
						row: st.row, src: src, key: b.keyOf(st.row, s.TargetIdx), node: s.Edge.Dst.Index, mode: s.Mode})
					n++
				}
			} else {
				n = r.registerSpecScan(b, m, s)
			}
			m.specOut = m.specOut[:0]
			m.specReg = true
			if n == 0 {
				m.specResolved = true
				continue
			}
			m.wait = wSpec
			return true
		default: // RoundSteps: a gate-free run of access steps
			for i := rd.Lo; i < rd.Hi; i++ {
				s := &m.steps[i]
				switch s.Kind {
				case query.StepScan:
					// Plain scan (speculative scans compile to RoundSpec):
					// ping-pong through the member's own arrays.
					r.execScanMember(b, m, s.Edge, s.ColIdx, s.FilterPos, s.FilterIdx)
				case query.StepCount:
					total := 0
					for _, st := range m.states {
						if inst := st.insts[s.Edge.Src.Index]; inst != nil {
							r.auditAccess(b, s.Edge, st.insts, st.row, nil, b.fresh, true)
							total += r.container(inst, s.Edge).Len()
						}
					}
					m.count, m.counted = total, true
					m.cursor = len(rounds)
					m.wait = wDone
					return true
				default:
					m.states = r.execStep(b, s, m.states, m.row)
				}
				progress = true
				if len(m.states) == 0 {
					m.wait = wDone
					return true
				}
			}
			m.cursor++
		}
	}
	m.wait = wDone
	return true
}

// insertAccess locates an insert directive's instance through its plain
// access edge, the body of the legacy stAccess stage.
func (r *Relation) insertAccess(b *opBuf, m *member, nd *query.NodeDirective) {
	if m.xinst[nd.Node.Index] == nil && nd.AccessIn != nil {
		if src := m.xinst[nd.AccessIn.Src.Index]; src != nil {
			r.auditAccess(b, nd.AccessIn, m.xinst, m.row, nil, b.fresh, false)
			if val, ok := r.container(src, nd.AccessIn).Lookup(b.keyOf(m.row, nd.ColIdx)); ok {
				m.xinst[nd.Node.Index] = val.(*Instance)
			}
		}
	}
}

// advanceInsertRounds advances an insert member through its round
// program: the compiled form of advanceInsert's stage machine.
func (r *Relation) advanceInsertRounds(b *opBuf, m *member, v int) bool {
	rounds := m.mut.Prog.Rounds
	progress := false
	for m.cursor < len(rounds) {
		rd := &rounds[m.cursor]
		if rd.Gate > v {
			return progress
		}
		nd := &m.mut.PerNode[rd.Dir]
		switch rd.Kind {
		case query.MRoundSpecIn:
			n := 0
			for i, e := range nd.SpecIns {
				src := m.xinst[e.Src.Index]
				if src == nil {
					continue
				}
				b.specs = append(b.specs, batchSpecReq{m: m, edge: e, colIdx: nd.SpecColIdx[i],
					row: m.row, src: src, key: b.keyOf(m.row, nd.SpecTargetIdx[i]),
					node: nd.Node.Index, mode: locks.Exclusive})
				n++
			}
			m.cursor++
			if n > 0 {
				m.specReg = true
				m.wait = wSpec
				return true
			}
		case query.MRoundLocate:
			if m.specFound != nil {
				m.xinst[nd.Node.Index] = m.specFound
				m.specFound = nil
			}
			m.specReg, m.specResolved = false, false
			r.insertAccess(b, m, nd) // legacy stSpecGot falls through stAccess
			m.cursor++
		case query.MRoundAccess:
			r.insertAccess(b, m, nd)
			m.cursor++
		case query.MRoundExist:
			step := m.ins.existAt[nd.Node.Index]
			if step == nil || len(m.states) == 0 {
				m.cursor++
				continue
			}
			if step.Kind == query.StepSpecLookup {
				if m.specResolved {
					m.takeSpecResults()
					m.cursor++
					continue
				}
				n := 0
				for _, st := range m.states {
					src := st.insts[step.Edge.Src.Index]
					if src == nil {
						continue
					}
					b.specs = append(b.specs, batchSpecReq{m: m, st: st, edge: step.Edge,
						colIdx: step.ColIdx, row: st.row, src: src,
						key: b.keyOf(st.row, step.TargetIdx), node: nd.Node.Index, mode: step.Mode})
					n++
				}
				m.specOut = m.specOut[:0]
				m.specReg = true
				if n > 0 {
					m.wait = wSpec
					return true // cursor NOT advanced: resolution re-enters here
				}
				m.specResolved = true
				continue
			}
			switch {
			case step.Kind == query.StepScan && r.placement.RuleFor(step.Edge).Speculative:
				// Synchronous §4.5 scan, exactly as legacy execStep routes
				// it, but onto member-owned arrays.
				r.execScanSpecMember(b, m, step)
			case step.Kind == query.StepScan:
				r.execScanMember(b, m, step.Edge, step.ColIdx, step.FilterPos, step.FilterIdx)
			default:
				m.states = r.execStep(b, step, m.states, m.row)
			}
			m.cursor++
		case query.MRoundLock:
			r.lockDirective(b, nd, m.xinst[nd.Node.Index], m.states, m.row) // diverts into b.collect
			m.cursor++
			if len(nd.Selectors) > 0 {
				m.wait = wLock
				return true
			}
			progress = true
		}
	}
	m.wait = wDone
	return true
}

// advanceRemoveRounds advances a remove member through its round program:
// the compiled form of advanceRemove's stage machine.
func (r *Relation) advanceRemoveRounds(b *opBuf, m *member, v int) bool {
	rounds := m.mut.Prog.Rounds
	progress := false
	for m.cursor < len(rounds) {
		rd := &rounds[m.cursor]
		if rd.Gate > v {
			return progress
		}
		nd := &m.mut.PerNode[rd.Dir]
		switch rd.Kind {
		case query.MRoundSpecIn:
			n := 0
			// Row-based locate requests over every speculative in-edge
			// (their key columns are always bound for mutations).
			for i, e := range nd.SpecIns {
				src := m.xinst[e.Src.Index]
				if src == nil {
					continue
				}
				b.specs = append(b.specs, batchSpecReq{m: m, edge: e, colIdx: nd.SpecColIdx[i],
					row: m.row, src: src, key: b.keyOf(m.row, nd.SpecTargetIdx[i]),
					node: nd.Node.Index, mode: locks.Exclusive})
				n++
			}
			// State-based requests advancing the victim pipeline.
			for _, st := range m.states {
				src := st.insts[nd.SpecIns[0].Src.Index]
				if src == nil {
					continue
				}
				b.specs = append(b.specs, batchSpecReq{m: m, st: st, edge: nd.SpecIns[0],
					colIdx: nd.SpecColIdx[0], row: st.row, src: src,
					key: b.keyOf(st.row, nd.SpecTargetIdx[0]), node: nd.Node.Index, mode: locks.Exclusive})
				n++
			}
			m.specOut = m.specOut[:0]
			m.specReg = true
			m.cursor++
			if n > 0 {
				m.wait = wSpec
				return true
			}
			m.specResolved = true
		case query.MRoundLocate:
			m.takeSpecResults()
			if m.specFound != nil {
				m.xinst[nd.Node.Index] = m.specFound
				m.specFound = nil
			}
			r.rowLocate(b, m, nd)
			m.cursor++
			progress = true
		case query.MRoundAccess:
			switch e := nd.AccessIn; {
			case e == nil:
				m.states = m.states[:0]
			case nd.AccessScan:
				r.execScanMember(b, m, e, nd.ColIdx, nd.FilterPos, nd.FilterIdx)
			default:
				m.states = r.execLookup(b, e, nd.ColIdx, m.states)
			}
			r.rowLocate(b, m, nd)
			m.cursor++
			progress = true
		case query.MRoundLock:
			r.lockDirective(b, nd, m.xinst[nd.Node.Index], m.states, m.row) // diverts into b.collect
			m.cursor++
			if len(nd.Selectors) > 0 {
				m.wait = wLock
				return true
			}
			progress = true
		}
	}
	m.wait = wDone
	return true
}

// execScanMember runs a plain scan over the member's states, ping-ponging
// between the member's two owned arrays (states and specOut — the latter
// is only live between spec registration and consumption, so outside a
// wave it is free scan scratch). Keeping member scans off the buffer's
// shared pair is what lets round-mode batches retain every capacity across
// the transaction without aliasing hazards.
func (r *Relation) execScanMember(b *opBuf, m *member, e *decomp.Edge, colIdx, filterPos, filterIdx []int) {
	out := r.execScanInto(b, m.specOut[:0], e, colIdx, filterPos, filterIdx, m.states)
	m.specOut = m.states[:0]
	m.states = out
}

// execOptimisticScanSpecMember is execScanMember for the optimistic
// speculative-scan degradation (readonly.go).
func (r *Relation) execOptimisticScanSpecMember(b *opBuf, m *member, s *query.Step) {
	out := r.execOptimisticScanSpecInto(b, m.specOut[:0], s, m.states)
	m.specOut = m.states[:0]
	m.states = out
}

// execScanSpecMember is execScanSpec (the synchronous speculative scan of
// an insert's existence check) onto member-owned arrays: candidates still
// pool in b.reqs — consumed before returning — but the survivor list the
// member retains is its own.
func (r *Relation) execScanSpecMember(b *opBuf, m *member, step *query.Step) {
	e := step.Edge
	cands := b.reqs[:0]
	for _, st := range m.states {
		src := st.insts[e.Src.Index]
		if src == nil {
			continue
		}
		r.auditAccess(b, e, st.insts, st.row, nil, b.fresh, true)
		r.container(src, e).Scan(func(k rel.Key, v any) bool {
			for fi, p := range step.FilterPos {
				if !rel.Equal(k.At(p), st.row.At(step.FilterIdx[fi])) {
					return true
				}
			}
			ns := b.clone(r, st)
			for p, ci := range step.ColIdx {
				ns.row.Set(ci, k.At(p))
			}
			cands = append(cands, specReq{st: ns, target: b.keyOf(ns.row, step.TargetIdx)})
			return true
		})
	}
	sort.Slice(cands, func(i, j int) bool { return rel.CompareKeys(cands[i].target, cands[j].target) < 0 })
	out := m.specOut[:0]
	for i := range cands {
		ns := cands[i].st
		src := ns.insts[e.Src.Index]
		if inst, ok := r.specLocate(b, e, step.ColIdx, src, ns.row, step.Mode); ok {
			ns.insts[e.Dst.Index] = inst
			out = append(out, ns)
		}
	}
	clear(cands)
	b.reqs = cands[:0]
	m.specOut = m.states[:0]
	m.states = out
}

// execSpecRoundMember executes a RoundSpec step outside the pessimistic
// growing phase — apply-mode re-execution or an optimistic read attempt —
// where speculative accesses degrade to plain (recorded) lookups/scans.
func (r *Relation) execSpecRoundMember(b *opBuf, m *member, s *query.Step) {
	switch {
	case s.Kind == query.StepSpecLookup && b.apply:
		m.states = r.execApplyLookup(b, s.Edge, s.ColIdx, m.states)
	case s.Kind == query.StepSpecLookup:
		m.states = r.execOptimisticLookup(b, s.Edge, s.ColIdx, m.states)
	case b.apply:
		r.execScanMember(b, m, s.Edge, s.ColIdx, s.FilterPos, s.FilterIdx)
	default:
		r.execOptimisticScanSpecMember(b, m, s)
	}
}

// runMemberRounds re-executes a query member over its round program on
// member-owned arrays: the round-mode analog of runSteps for the apply
// phase (b.apply) and the optimistic read phase (b.optimistic). The final
// states stay on the member; nothing is recycled to the shared pair.
func (r *Relation) runMemberRounds(b *opBuf, m *member) {
	m.states = append(m.states[:0], b.rootState(r, m.row, m.boundMask))
	rounds := m.qprog.Rounds
	for ri := range rounds {
		rd := &rounds[ri]
		switch rd.Kind {
		case query.RoundLock:
			if !b.apply {
				r.execLock(b, &m.steps[rd.Lo], m.states, m.row) // optimistic: records epochs
			}
		case query.RoundSpec:
			r.execSpecRoundMember(b, m, &m.steps[rd.Lo])
			if len(m.states) == 0 {
				return
			}
		default:
			for i := rd.Lo; i < rd.Hi; i++ {
				s := &m.steps[i]
				if s.Kind == query.StepScan {
					r.execScanMember(b, m, s.Edge, s.ColIdx, s.FilterPos, s.FilterIdx)
				} else {
					m.states = r.execStep(b, s, m.states, m.row)
				}
				if len(m.states) == 0 {
					return
				}
			}
		}
	}
}

// runMemberCountRounds is runMemberRounds for count members, returning
// the count-pushdown total (or the surviving-state count for plans with
// no StepCount terminal).
func (r *Relation) runMemberCountRounds(b *opBuf, m *member) int {
	m.states = append(m.states[:0], b.rootState(r, m.row, m.boundMask))
	rounds := m.qprog.Rounds
	for ri := range rounds {
		rd := &rounds[ri]
		switch rd.Kind {
		case query.RoundLock:
			if !b.apply {
				r.execLock(b, &m.steps[rd.Lo], m.states, m.row)
			}
		case query.RoundSpec:
			r.execSpecRoundMember(b, m, &m.steps[rd.Lo])
			if len(m.states) == 0 {
				return 0
			}
		default:
			for i := rd.Lo; i < rd.Hi; i++ {
				s := &m.steps[i]
				switch s.Kind {
				case query.StepCount:
					total := 0
					for _, st := range m.states {
						if inst := st.insts[s.Edge.Src.Index]; inst != nil {
							r.auditAccess(b, s.Edge, st.insts, st.row, nil, b.fresh, true)
							total += r.container(inst, s.Edge).Len()
						}
					}
					return total
				case query.StepScan:
					r.execScanMember(b, m, s.Edge, s.ColIdx, s.FilterPos, s.FilterIdx)
				default:
					m.states = r.execStep(b, s, m.states, m.row)
				}
				if len(m.states) == 0 {
					return 0
				}
			}
		}
	}
	return len(m.states)
}

// resolveBatchSpecsBucketed resolves a speculative wave through per-node
// index buckets: requests are distributed by node (the bucket arrays are
// pooled on the buffer), each bucket is sorted by target key only, and the
// buckets are walked in node order — the same global (node, key) order as
// the legacy sort over the whole pool, without re-comparing node indices
// per element. One trace round covers the wave, labelled by its first
// node, exactly as before.
func (r *Relation) resolveBatchSpecsBucketed(t *Txn, b *opBuf) {
	specs := b.specs
	nNodes := len(r.decomp.Nodes)
	if cap(b.specIdx) < nNodes {
		idx := make([][]int32, nNodes)
		copy(idx, b.specIdx)
		b.specIdx = idx
	}
	buckets := b.specIdx[:nNodes]
	for i := range specs {
		nd := specs[i].node
		buckets[nd] = append(buckets[nd], int32(i))
	}
	prev := b.txn.HeldCount()
	label := -1
	for nd := 0; nd < nNodes; nd++ {
		idx := buckets[nd]
		if len(idx) == 0 {
			continue
		}
		if label < 0 {
			label = nd
		}
		if len(idx) <= 32 {
			for i := 1; i < len(idx); i++ {
				for j := i; j > 0 && rel.CompareKeys(specs[idx[j]].key, specs[idx[j-1]].key) < 0; j-- {
					idx[j], idx[j-1] = idx[j-1], idx[j]
				}
			}
		} else {
			sort.Slice(idx, func(i, j int) bool {
				return rel.CompareKeys(specs[idx[i]].key, specs[idx[j]].key) < 0
			})
		}
		for i := 0; i < len(idx); {
			j := i
			mode := locks.Shared
			for ; j < len(idx) && rel.CompareKeys(specs[idx[j]].key, specs[idx[i]].key) == 0; j++ {
				if specs[idx[j]].mode == locks.Exclusive {
					mode = locks.Exclusive
				}
			}
			for k := i; k < j; k++ {
				r.resolveOneSpec(b, &specs[idx[k]], mode)
			}
			i = j
		}
		buckets[nd] = idx[:0]
	}
	if t.trace != nil && label >= 0 {
		t.recordRound(b, r.traceLabel(r.decomp.Nodes[label].Name), len(specs), prev, true)
	}
	clear(specs)
	b.specs = specs[:0]
	for i := range b.members {
		m := &b.members[i]
		if m.wait == wSpec {
			m.wait = wNone
			m.specResolved = true
		}
	}
}
