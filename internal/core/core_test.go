package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

func graphSpec() rel.Spec {
	return rel.MustSpec([]string{"src", "dst", "weight"},
		rel.FD{From: []string{"src", "dst"}, To: []string{"weight"}})
}

func dirSpec() rel.Spec {
	return rel.MustSpec([]string{"parent", "name", "child"},
		rel.FD{From: []string{"parent", "name"}, To: []string{"child"}})
}

// variant describes a (decomposition, placement) pair under test. The core
// suite runs every behavioural test over every variant: the paper's
// correctness claim is exactly that all legal representations implement
// the same relational semantics.
type variant struct {
	name  string
	build func(t *testing.T) *Relation
}

func stickRel(t *testing.T, top, mid container.Kind, place func(*decomp.Decomposition) *locks.Placement) *Relation {
	t.Helper()
	d, err := decomp.NewBuilder(graphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, top).
		Edge("uv", "u", "v", []string{"dst"}, mid).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := place(d)
	r, err := Synthesize(d, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func splitRel(t *testing.T, top, mid container.Kind, place func(*decomp.Decomposition) *locks.Placement) *Relation {
	t.Helper()
	d, err := decomp.NewBuilder(graphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, top).
		Edge("uw", "u", "w", []string{"dst"}, mid).
		Edge("wx", "w", "x", []string{"weight"}, container.Cell).
		Edge("ρv", "ρ", "v", []string{"dst"}, top).
		Edge("vy", "v", "y", []string{"src"}, mid).
		Edge("yz", "y", "z", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Synthesize(d, place(d))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func diamondRel(t *testing.T, spec bool) *Relation {
	t.Helper()
	d, err := decomp.NewBuilder(graphSpec(), "ρ").
		Edge("ρx", "ρ", "x", []string{"src"}, container.ConcurrentHashMap).
		Edge("ρy", "ρ", "y", []string{"dst"}, container.ConcurrentHashMap).
		Edge("xz", "x", "z", []string{"dst"}, container.TreeMap).
		Edge("yz", "y", "z", []string{"src"}, container.TreeMap).
		Edge("zw", "z", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := locks.NewPlacement(d)
	if spec {
		p.SetStripes(d.Root, 16)
		p.PlaceSpeculative(d.EdgeByName("ρx"), d.Root, "src")
		p.PlaceSpeculative(d.EdgeByName("ρy"), d.Root, "dst")
	}
	r, err := Synthesize(d, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func graphVariants() []variant {
	striped := func(k int) func(*decomp.Decomposition) *locks.Placement {
		return func(d *decomp.Decomposition) *locks.Placement {
			p := locks.NewPlacement(d)
			p.SetStripes(d.Root, k)
			for _, e := range d.Edges {
				if e.Src == d.Root {
					p.Place(e, d.Root, e.Cols...)
				}
			}
			return p
		}
	}
	return []variant{
		{"stick/coarse/hash+tree", func(t *testing.T) *Relation {
			return stickRel(t, container.HashMap, container.TreeMap, locks.Coarse)
		}},
		{"stick/fine/tree+tree", func(t *testing.T) *Relation {
			return stickRel(t, container.TreeMap, container.TreeMap, locks.FineGrained)
		}},
		{"stick/striped/chm+hash", func(t *testing.T) *Relation {
			return stickRel(t, container.ConcurrentHashMap, container.HashMap, striped(64))
		}},
		{"stick/striped/csl+tree", func(t *testing.T) *Relation {
			return stickRel(t, container.ConcurrentSkipListMap, container.TreeMap, striped(8))
		}},
		{"stick/fine/cow+cow", func(t *testing.T) *Relation {
			return stickRel(t, container.CopyOnWriteMap, container.CopyOnWriteMap, locks.FineGrained)
		}},
		{"split/coarse/hash+tree", func(t *testing.T) *Relation {
			return splitRel(t, container.HashMap, container.TreeMap, locks.Coarse)
		}},
		{"split/fine/chm+tree", func(t *testing.T) *Relation {
			return splitRel(t, container.ConcurrentHashMap, container.TreeMap, locks.FineGrained)
		}},
		{"split/striped/chm+hash", func(t *testing.T) *Relation {
			return splitRel(t, container.ConcurrentHashMap, container.HashMap, striped(1024))
		}},
		{"diamond/fine", func(t *testing.T) *Relation { return diamondRel(t, false) }},
		{"diamond/speculative", func(t *testing.T) *Relation { return diamondRel(t, true) }},
	}
}

func forEachVariant(t *testing.T, f func(t *testing.T, r *Relation)) {
	for _, v := range graphVariants() {
		t.Run(v.name, func(t *testing.T) { f(t, v.build(t)) })
	}
}

func sortTuples(ts []rel.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

func tuplesEqual(a, b []rel.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	sortTuples(a)
	sortTuples(b)
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestEmptyRelation(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		snap, err := r.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap) != 0 {
			t.Fatalf("empty relation has %d tuples", len(snap))
		}
		res, err := r.Query(rel.T("src", 1), "dst", "weight")
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 0 {
			t.Fatalf("query on empty relation returned %v", res)
		}
		if ok, err := r.Remove(rel.T("src", 1, "dst", 2)); err != nil || ok {
			t.Fatalf("remove on empty relation: %v, %v", ok, err)
		}
	})
}

func TestPaperSection2Example(t *testing.T) {
	// The worked example of §2: insert an edge, re-insert with a new
	// weight (no-op), query successors, remove.
	forEachVariant(t, func(t *testing.T, r *Relation) {
		ok, err := r.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 42))
		if err != nil || !ok {
			t.Fatalf("first insert: %v, %v", ok, err)
		}
		// Second insertion with same src/dst leaves the relation unchanged.
		ok, err = r.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 101))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("put-if-absent must reject duplicate src,dst")
		}
		snap, _ := r.Snapshot()
		if len(snap) != 1 || !snap[0].Equal(rel.T("src", 1, "dst", 2, "weight", 42)) {
			t.Fatalf("snapshot = %v", snap)
		}
		// query r ⟨src:1⟩ {dst, weight}
		res, err := r.Query(rel.T("src", 1), "dst", "weight")
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || !res[0].Equal(rel.T("dst", 2, "weight", 42)) {
			t.Fatalf("successors = %v", res)
		}
		// remove by key.
		ok, err = r.Remove(rel.T("src", 1, "dst", 2))
		if err != nil || !ok {
			t.Fatalf("remove: %v, %v", ok, err)
		}
		snap, _ = r.Snapshot()
		if len(snap) != 0 {
			t.Fatalf("after remove, snapshot = %v", snap)
		}
		if _, err := r.VerifyWellFormed(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestQueryDirections(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		edges := [][3]int{{1, 2, 10}, {1, 3, 11}, {2, 3, 12}, {3, 1, 13}, {4, 1, 14}}
		for _, e := range edges {
			ok, err := r.Insert(rel.T("src", e[0], "dst", e[1]), rel.T("weight", e[2]))
			if err != nil || !ok {
				t.Fatalf("insert %v: %v, %v", e, ok, err)
			}
		}
		// Successors of 1.
		succ, err := r.Query(rel.T("src", 1), "dst", "weight")
		if err != nil {
			t.Fatal(err)
		}
		want := []rel.Tuple{rel.T("dst", 2, "weight", 10), rel.T("dst", 3, "weight", 11)}
		if !tuplesEqual(succ, want) {
			t.Fatalf("successors of 1 = %v, want %v", succ, want)
		}
		// Predecessors of 1.
		pred, err := r.Query(rel.T("dst", 1), "src", "weight")
		if err != nil {
			t.Fatal(err)
		}
		wantP := []rel.Tuple{rel.T("src", 3, "weight", 13), rel.T("src", 4, "weight", 14)}
		if !tuplesEqual(pred, wantP) {
			t.Fatalf("predecessors of 1 = %v, want %v", pred, wantP)
		}
		// Point query.
		w, err := r.Query(rel.T("src", 2, "dst", 3), "weight")
		if err != nil {
			t.Fatal(err)
		}
		if len(w) != 1 || !w[0].Equal(rel.T("weight", 12)) {
			t.Fatalf("weight(2,3) = %v", w)
		}
		// Query by weight (requires scanning).
		byW, err := r.Query(rel.T("weight", 13), "src", "dst")
		if err != nil {
			t.Fatal(err)
		}
		if len(byW) != 1 || !byW[0].Equal(rel.T("src", 3, "dst", 1)) {
			t.Fatalf("byWeight = %v", byW)
		}
		if _, err := r.VerifyWellFormed(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRemoveCascadesCleanup(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		r.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 10))
		r.Insert(rel.T("src", 1, "dst", 3), rel.T("weight", 11))
		// Removing one of two edges keeps the src-level instance alive.
		if ok, _ := r.Remove(rel.T("src", 1, "dst", 2)); !ok {
			t.Fatal("remove failed")
		}
		if _, err := r.VerifyWellFormed(); err != nil {
			t.Fatalf("after partial remove: %v", err)
		}
		succ, _ := r.Query(rel.T("src", 1), "dst")
		if len(succ) != 1 || !succ[0].Equal(rel.T("dst", 3)) {
			t.Fatalf("successors after remove = %v", succ)
		}
		// Removing the last edge must clean up the instance entirely.
		if ok, _ := r.Remove(rel.T("src", 1, "dst", 3)); !ok {
			t.Fatal("remove failed")
		}
		tuples, err := r.VerifyWellFormed()
		if err != nil {
			t.Fatalf("after full remove: %v", err)
		}
		if len(tuples) != 0 {
			t.Fatalf("residual tuples %v", tuples)
		}
		// And re-insertion works afterwards.
		if ok, _ := r.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 99)); !ok {
			t.Fatal("re-insert failed")
		}
	})
}

func TestInsertRejectsMalformed(t *testing.T) {
	r := diamondRel(t, false)
	if _, err := r.Insert(rel.T("src", 1), rel.T("weight", 1)); err == nil {
		t.Error("partial tuple must be rejected")
	}
	if _, err := r.Insert(rel.T("src", 1, "dst", 2, "weight", 3), rel.T("weight", 4)); err == nil {
		t.Error("overlapping s and t must be rejected")
	}
	if _, err := r.Query(rel.T("nope", 1)); err == nil {
		t.Error("unknown column must be rejected")
	}
	if _, err := r.Remove(rel.T("src", 1)); err == nil {
		t.Error("remove by non-key must be rejected")
	}
}

// TestDifferentialRandomOps drives every variant and the reference with
// the same random operation stream and compares observable behaviour after
// every step.
func TestDifferentialRandomOps(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		ref := NewReference(graphSpec())
		rng := rand.New(rand.NewSource(99))
		const keys = 12
		for i := 0; i < 1500; i++ {
			src, dst := rng.Intn(keys), rng.Intn(keys)
			switch rng.Intn(10) {
			case 0, 1, 2: // insert
				w := rng.Intn(1000)
				got, err := r.Insert(rel.T("src", src, "dst", dst), rel.T("weight", w))
				if err != nil {
					t.Fatalf("step %d insert: %v", i, err)
				}
				want, _ := ref.Insert(rel.T("src", src, "dst", dst), rel.T("weight", w))
				if got != want {
					t.Fatalf("step %d insert(%d,%d): got %v want %v", i, src, dst, got, want)
				}
			case 3, 4: // remove
				got, err := r.Remove(rel.T("src", src, "dst", dst))
				if err != nil {
					t.Fatalf("step %d remove: %v", i, err)
				}
				want, _ := ref.Remove(rel.T("src", src, "dst", dst))
				if got != want {
					t.Fatalf("step %d remove(%d,%d): got %v want %v", i, src, dst, got, want)
				}
			case 5, 6: // successors
				got, _ := r.Query(rel.T("src", src), "dst", "weight")
				want, _ := ref.Query(rel.T("src", src), "dst", "weight")
				if !tuplesEqual(got, want) {
					t.Fatalf("step %d succ(%d): got %v want %v", i, src, got, want)
				}
			case 7: // predecessors
				got, _ := r.Query(rel.T("dst", dst), "src", "weight")
				want, _ := ref.Query(rel.T("dst", dst), "src", "weight")
				if !tuplesEqual(got, want) {
					t.Fatalf("step %d pred(%d): got %v want %v", i, dst, got, want)
				}
			case 8: // point
				got, _ := r.Query(rel.T("src", src, "dst", dst), "weight")
				want, _ := ref.Query(rel.T("src", src, "dst", dst), "weight")
				if !tuplesEqual(got, want) {
					t.Fatalf("step %d point(%d,%d): got %v want %v", i, src, dst, got, want)
				}
			default: // full snapshot + structural invariants
				got, err := r.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				want, _ := ref.Snapshot()
				if !tuplesEqual(got, want) {
					t.Fatalf("step %d snapshot: got %v want %v", i, got, want)
				}
				wf, err := r.VerifyWellFormed()
				if err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				if !tuplesEqual(wf, want) {
					t.Fatalf("step %d abstraction: got %v want %v", i, wf, want)
				}
			}
		}
	})
}

func TestDcacheFigure2Instance(t *testing.T) {
	// Build the Figure 2(b) instance through the public API and check the
	// worked queries of §5.2.
	d, err := decomp.NewBuilder(dirSpec(), "ρ").
		Edge("ρx", "ρ", "x", []string{"parent"}, container.TreeMap).
		Edge("xy", "x", "y", []string{"name"}, container.TreeMap).
		Edge("ρy", "ρ", "y", []string{"parent", "name"}, container.ConcurrentHashMap).
		Edge("yz", "y", "z", []string{"child"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Synthesize(d, locks.FineGrained(d))
	if err != nil {
		t.Fatal(err)
	}
	entries := []struct {
		parent int
		name   string
		child  int
	}{{1, "a", 2}, {2, "b", 3}, {2, "c", 4}}
	for _, e := range entries {
		ok, err := r.Insert(rel.T("parent", e.parent, "name", e.name), rel.T("child", e.child))
		if err != nil || !ok {
			t.Fatalf("insert %v: %v %v", e, ok, err)
		}
	}
	// Full iteration (plan (2)/(3)/(4) semantics).
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := []rel.Tuple{
		rel.T("parent", 1, "name", "a", "child", 2),
		rel.T("parent", 2, "name", "b", "child", 3),
		rel.T("parent", 2, "name", "c", "child", 4),
	}
	if !tuplesEqual(snap, want) {
		t.Fatalf("snapshot = %v", snap)
	}
	// Directory listing: children of parent 2.
	ls, err := r.Query(rel.T("parent", 2), "name", "child")
	if err != nil {
		t.Fatal(err)
	}
	if !tuplesEqual(ls, []rel.Tuple{rel.T("name", "b", "child", 3), rel.T("name", "c", "child", 4)}) {
		t.Fatalf("ls(2) = %v", ls)
	}
	// Path lookup via the hashtable edge.
	ch, err := r.Query(rel.T("parent", 1, "name", "a"), "child")
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) != 1 || !ch[0].Equal(rel.T("child", 2)) {
		t.Fatalf("lookup = %v", ch)
	}
	// FD guard: same (parent, name) with a different child is rejected.
	if ok, _ := r.Insert(rel.T("parent", 1, "name", "a"), rel.T("child", 9)); ok {
		t.Fatal("duplicate dentry accepted")
	}
	// Remove and verify cleanup.
	if ok, _ := r.Remove(rel.T("parent", 2, "name", "b")); !ok {
		t.Fatal("remove failed")
	}
	if _, err := r.VerifyWellFormed(); err != nil {
		t.Fatal(err)
	}
}

func TestStringValuesInGraph(t *testing.T) {
	// Columns hold heterogeneous values: string node ids.
	forEachVariant(t, func(t *testing.T, r *Relation) {
		r.Insert(rel.T("src", "alpha", "dst", "beta"), rel.T("weight", 1.5))
		r.Insert(rel.T("src", "alpha", "dst", "gamma"), rel.T("weight", 2.5))
		succ, err := r.Query(rel.T("src", "alpha"), "dst")
		if err != nil {
			t.Fatal(err)
		}
		if !tuplesEqual(succ, []rel.Tuple{rel.T("dst", "beta"), rel.T("dst", "gamma")}) {
			t.Fatalf("succ = %v", succ)
		}
	})
}

func TestSynthesizeRejectsInvalid(t *testing.T) {
	d, err := decomp.NewBuilder(graphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, container.TreeMap).
		Edge("uv", "u", "v", []string{"dst"}, container.TreeMap).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// Placement for a different decomposition.
	d2, _ := decomp.NewBuilder(graphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, container.TreeMap).
		Edge("uv", "u", "v", []string{"dst"}, container.TreeMap).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	if _, err := Synthesize(d, locks.Coarse(d2)); err == nil {
		t.Fatal("mismatched placement accepted")
	}
	// Invalid placement.
	p := locks.NewPlacement(d)
	p.SetStripes(d.NodeByName("u"), 4)
	p.Place(d.EdgeByName("uv"), d.NodeByName("u"), "dst") // entry striping on TreeMap
	if _, err := Synthesize(d, p); err == nil {
		t.Fatal("illegal placement accepted")
	}
}

func TestExplainOutputs(t *testing.T) {
	r := diamondRel(t, true)
	q, err := r.ExplainQuery([]string{"src"}, []string{"dst", "weight"})
	if err != nil {
		t.Fatal(err)
	}
	if len(q) == 0 {
		t.Fatal("empty explain")
	}
	i, err := r.ExplainInsert([]string{"dst", "src"})
	if err != nil {
		t.Fatal(err)
	}
	if len(i) == 0 {
		t.Fatal("empty insert explain")
	}
	rm, err := r.ExplainRemove([]string{"dst", "src"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rm) == 0 {
		t.Fatal("empty remove explain")
	}
}

func TestReferenceSemantics(t *testing.T) {
	ref := NewReference(graphSpec())
	ok, err := ref.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 3))
	if !ok || err != nil {
		t.Fatal("insert failed")
	}
	if ok, _ := ref.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 9)); ok {
		t.Fatal("duplicate accepted")
	}
	if ref.Len() != 1 {
		t.Fatal("len wrong")
	}
	// Reference remove accepts non-keys: remove by src wipes all matching.
	ref.Insert(rel.T("src", 1, "dst", 3), rel.T("weight", 4))
	if ok, _ := ref.Remove(rel.T("src", 1)); !ok {
		t.Fatal("remove failed")
	}
	if ref.Len() != 0 {
		t.Fatal("remove incomplete")
	}
	if _, err := ref.Insert(rel.T("src", 1), rel.T("weight", 2)); err == nil {
		t.Fatal("partial insert accepted")
	}
}

func TestManyTuplesAcrossVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	forEachVariant(t, func(t *testing.T, r *Relation) {
		const n = 40
		for s := 0; s < n; s++ {
			for d := 0; d < 5; d++ {
				ok, err := r.Insert(rel.T("src", s, "dst", (s+d)%n), rel.T("weight", s*1000+d))
				if err != nil || !ok {
					t.Fatalf("insert(%d,%d): %v %v", s, d, ok, err)
				}
			}
		}
		snap, err := r.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap) != n*5 {
			t.Fatalf("snapshot has %d tuples, want %d", len(snap), n*5)
		}
		for s := 0; s < n; s++ {
			succ, _ := r.Query(rel.T("src", s), "dst")
			if len(succ) != 5 {
				t.Fatalf("succ(%d) = %d entries", s, len(succ))
			}
		}
		if _, err := r.VerifyWellFormed(); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < n; s++ {
			for d := 0; d < 5; d++ {
				if ok, _ := r.Remove(rel.T("src", s, "dst", (s+d)%n)); !ok {
					t.Fatalf("remove(%d,%d) failed", s, d)
				}
			}
		}
		left, _ := r.Snapshot()
		if len(left) != 0 {
			t.Fatalf("%d tuples left", len(left))
		}
	})
}

func ExampleSynthesize() {
	spec := rel.MustSpec([]string{"src", "dst", "weight"},
		rel.FD{From: []string{"src", "dst"}, To: []string{"weight"}})
	d, _ := decomp.NewBuilder(spec, "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, container.ConcurrentHashMap).
		Edge("uv", "u", "v", []string{"dst"}, container.TreeMap).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	p := locks.NewPlacement(d)
	p.SetStripes(d.Root, 8)
	p.Place(d.EdgeByName("ρu"), d.Root, "src")
	r, _ := Synthesize(d, p)
	r.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 42))
	res, _ := r.Query(rel.T("src", 1), "dst", "weight")
	fmt.Println(res[0])
	// Output: ⟨dst: 2, weight: 42⟩
}
