package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rel"
)

// graphOp is one encoded relational operation for testing/quick.
type graphOp struct {
	Kind    uint8 // %5: 0,1 insert; 2 remove; 3 query succ; 4 query point
	Src     uint8
	Dst     uint8
	Weight  uint16
	OutMask uint8
}

// graphOps is the quick.Generator for random operation sequences.
type graphOps []graphOp

// Generate implements quick.Generator: short sequences over a tiny key
// space, maximizing collision coverage.
func (graphOps) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(60) + 10
	ops := make(graphOps, n)
	for i := range ops {
		ops[i] = graphOp{
			Kind:   uint8(r.Intn(5)),
			Src:    uint8(r.Intn(6)),
			Dst:    uint8(r.Intn(6)),
			Weight: uint16(r.Intn(100)),
		}
	}
	return reflect.ValueOf(ops)
}

// TestQuickSynthesizedRefinesReference is the core property test: any
// random single-threaded operation sequence yields identical observable
// behaviour on a synthesized relation and on the §2 reference, and leaves
// the instance graph well formed with the right abstraction.
func TestQuickSynthesizedRefinesReference(t *testing.T) {
	variants := graphVariants()
	// Exercise a representative subset under quick (full differential
	// coverage of all variants runs in TestDifferentialRandomOps).
	for _, name := range []string{"stick/fine/tree+tree", "split/striped/chm+hash", "diamond/speculative"} {
		var v *variant
		for i := range variants {
			if variants[i].name == name {
				v = &variants[i]
			}
		}
		if v == nil {
			t.Fatalf("variant %s missing", name)
		}
		t.Run(name, func(t *testing.T) {
			f := func(ops graphOps) bool {
				r := v.build(t)
				ref := NewReference(graphSpec())
				for _, op := range ops {
					s := rel.T("src", int(op.Src), "dst", int(op.Dst))
					switch op.Kind {
					case 0, 1:
						w := rel.T("weight", int(op.Weight))
						got, err := r.Insert(s, w)
						if err != nil {
							return false
						}
						want, _ := ref.Insert(s, w)
						if got != want {
							return false
						}
					case 2:
						got, err := r.Remove(s)
						if err != nil {
							return false
						}
						want, _ := ref.Remove(s)
						if got != want {
							return false
						}
					case 3:
						got, err := r.Query(rel.T("src", int(op.Src)), "dst", "weight")
						if err != nil {
							return false
						}
						want, _ := ref.Query(rel.T("src", int(op.Src)), "dst", "weight")
						if !tuplesEqual(got, want) {
							return false
						}
					default:
						got, err := r.Query(s, "weight")
						if err != nil {
							return false
						}
						want, _ := ref.Query(s, "weight")
						if !tuplesEqual(got, want) {
							return false
						}
					}
				}
				// Abstraction function agrees with the reference set.
				wf, err := r.VerifyWellFormed()
				if err != nil {
					return false
				}
				want, _ := ref.Snapshot()
				return tuplesEqual(wf, want)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickInsertRemoveRoundTrip: inserting a fresh tuple then removing it
// restores the previous snapshot, for random tuples and interleaved noise.
func TestQuickInsertRemoveRoundTrip(t *testing.T) {
	v := graphVariants()[1] // stick/fine
	r := v.build(t)
	// Background tuples.
	r.Insert(rel.T("src", 100, "dst", 100), rel.T("weight", 1))
	r.Insert(rel.T("src", 100, "dst", 101), rel.T("weight", 2))
	f := func(src, dst uint8, w uint16) bool {
		s := rel.T("src", 200+int(src), "dst", int(dst))
		before, err := r.Snapshot()
		if err != nil {
			return false
		}
		ok, err := r.Insert(s, rel.T("weight", int(w)))
		if err != nil || !ok {
			return false
		}
		ok, err = r.Remove(s)
		if err != nil || !ok {
			return false
		}
		after, err := r.Snapshot()
		if err != nil {
			return false
		}
		return tuplesEqual(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickQueryProjectionConsistent: for random bound tuples, the query
// result projected from a snapshot equals the direct query.
func TestQuickQueryProjectionConsistent(t *testing.T) {
	v := graphVariants()[8] // diamond/fine
	r := v.build(t)
	for i := 0; i < 30; i++ {
		r.Insert(rel.T("src", i%5, "dst", i%7), rel.T("weight", i))
	}
	f := func(src uint8) bool {
		bound := rel.T("src", int(src%5))
		direct, err := r.Query(bound, "dst", "weight")
		if err != nil {
			return false
		}
		snap, err := r.Snapshot()
		if err != nil {
			return false
		}
		var viaSnap []rel.Tuple
		for _, tu := range snap {
			if tu.Extends(bound) {
				viaSnap = append(viaSnap, tu.Project([]string{"dst", "weight"}))
			}
		}
		return tuplesEqual(direct, viaSnap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
