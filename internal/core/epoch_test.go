package core

import (
	"testing"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

// Epoch correctness: every mutating commit path must bump exactly the
// epoch cells of the instances it writes (begin-bump before the first
// write, end-bump before release), leave every cell even at quiescence,
// and — critically for the optimistic protocol — advance the cells of
// rolled-back writes too, so a torn read of a doomed transaction's state
// can never validate.

// collectEpochs walks the decomposition instance graph of a quiescent
// relation and snapshots every lock's epoch, keyed by lock ID string.
func collectEpochs(r *Relation) map[string]uint64 {
	out := map[string]uint64{}
	seen := map[*Instance]bool{}
	var walk func(inst *Instance)
	walk = func(inst *Instance) {
		if seen[inst] {
			return
		}
		seen[inst] = true
		for i := range inst.lockArr {
			l := inst.lock(i)
			out[l.ID().String()] = l.Epoch()
		}
		for _, c := range inst.containers {
			c.Scan(func(_ rel.Key, v any) bool {
				walk(v.(*Instance))
				return true
			})
		}
	}
	walk(r.root)
	return out
}

// lockFreeStick builds a fully concurrency-safe stick relation (every
// container concurrent ⇒ OptimisticCapable) under fine-grained placement.
func lockFreeStick(t *testing.T) *Relation {
	t.Helper()
	return stickRel(t, container.ConcurrentHashMap, container.ConcurrentSkipListMap, locks.FineGrained)
}

// epochDelta asserts how each cell moved between two snapshots: cells in
// wantBumped must have advanced by an even, positive amount; all others
// must be unchanged. Every cell must be even (quiescent).
func epochDelta(t *testing.T, before, after map[string]uint64, wantBumped map[string]bool) {
	t.Helper()
	for id, e := range after {
		if e&1 == 1 {
			t.Errorf("lock %s: epoch %d odd at quiescence", id, e)
		}
		b, existed := before[id]
		if !existed {
			// Instance created by the mutation: fresh cells start at 0 and
			// are never bumped while private.
			if e != 0 {
				t.Errorf("lock %s: fresh instance epoch %d, want 0", id, e)
			}
			continue
		}
		switch {
		case wantBumped[id] && e == b:
			t.Errorf("lock %s: epoch unchanged (%d), want bumped", id, e)
		case !wantBumped[id] && e != b:
			t.Errorf("lock %s: epoch moved %d -> %d, want untouched", id, b, e)
		}
	}
}

func TestEpochBumpExactlyTouchedInstances(t *testing.T) {
	r := lockFreeStick(t)
	mustInsert(t, r, 1, 2, 10)

	// A second edge from the same source writes only u(1)'s container (the
	// root entry for src=1 already exists): u(1)'s cell bumps, the root's
	// does not.
	before := collectEpochs(r)
	mustInsert(t, r, 1, 3, 11)
	after := collectEpochs(r)
	uLock := "node1(1)#0" // u's topological index is 1; instance key (src=1)
	if _, ok := after[uLock]; !ok {
		t.Fatalf("expected lock %s to exist; have %v", uLock, after)
	}
	epochDelta(t, before, after, map[string]bool{uLock: true})

	// An edge from a NEW source writes the root's container (new u
	// instance): the root cell bumps, u(1)'s does not.
	before = after
	mustInsert(t, r, 5, 2, 12)
	after = collectEpochs(r)
	epochDelta(t, before, after, map[string]bool{"node0()#0": true})

	// A failed put-if-absent performs no writes: nothing bumps.
	before = after
	if ok, err := r.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 99)); err != nil || ok {
		t.Fatalf("duplicate insert: ok=%v err=%v", ok, err)
	}
	epochDelta(t, before, collectEpochs(r), nil)

	// Removing (1,3) kills v/w instances below u(1): u(1)'s container is
	// written (and the dying instances' cells, while held, are bumped on
	// their container writes), the root is untouched. The dead instances
	// vanish from the after-walk, so only surviving cells are compared.
	before = collectEpochs(r)
	if ok, err := r.Remove(rel.T("src", 1, "dst", 3)); err != nil || !ok {
		t.Fatalf("remove: ok=%v err=%v", ok, err)
	}
	epochDelta(t, before, collectEpochs(r), map[string]bool{uLock: true})
}

func mustInsertTuple(t *testing.T, r *Relation, s, tup rel.Tuple) {
	t.Helper()
	if ok, err := r.Insert(s, tup); err != nil || !ok {
		t.Fatalf("insert %v %v: ok=%v err=%v", s, tup, ok, err)
	}
}

// TestEpochRollbackNoStaleValidation drives a registry batch that panics
// mid-apply, forcing the cross-relation undo log to roll every write
// back, and asserts the rollback protocol the optimistic readers depend
// on: all epochs are even again afterwards, and the cells covering the
// rolled-back writes have ADVANCED — a reader that observed the doomed
// intermediate state and validates after the rollback must fail, even
// though the container contents are back to the pre-batch state.
func TestEpochRollbackNoStaleValidation(t *testing.T) {
	g := NewRegistry()
	build := func(name string) *Relation {
		d, err := decomp.NewBuilder(rel.MustSpec([]string{"k", "v"}, rel.FD{From: []string{"k"}, To: []string{"v"}}), "ρ").
			Edge("ρu", "ρ", "u", []string{"k"}, container.ConcurrentHashMap).
			Edge("uv", "u", "v", []string{"v"}, container.Cell).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		r, err := g.Synthesize(name, d.Spec, WithDecomposition(d), WithPlacement(locks.FineGrained(d)))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := build("a"), build("b")
	mustInsertTuple(t, a, rel.T("k", 1), rel.T("v", 10))

	beforeA, beforeB := collectEpochs(a), collectEpochs(b)
	registryApplyHook = func(relName string, pos int) {
		if pos == 1 {
			panic("epoch-test: forced mid-apply failure")
		}
	}
	defer func() { registryApplyHook = nil }()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("batch did not panic")
			}
		}()
		g.Batch(func(tx *Txn) error {
			// Member 0 writes a's root (removing k=1 kills u(1)); member 1
			// panics before executing, rolling member 0 back.
			if _, err := tx.RemoveFrom(a, rel.T("k", 1)); err != nil {
				return err
			}
			_, err := tx.InsertInto(b, rel.T("k", 2), rel.T("v", 20))
			return err
		})
	}()

	// Rollback restored the contents...
	got, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(rel.T("k", 1, "v", 10)) {
		t.Fatalf("rollback did not restore a: %v", got)
	}
	// ...but the written cells moved, and everything is even. a's root
	// entry for k=1 was removed and restored: root cell must have advanced.
	afterA, afterB := collectEpochs(a), collectEpochs(b)
	for id, e := range afterA {
		if e&1 == 1 {
			t.Errorf("a lock %s: odd epoch %d after rollback", id, e)
		}
	}
	for id, e := range afterB {
		if e&1 == 1 {
			t.Errorf("b lock %s: odd epoch %d after rollback", id, e)
		}
	}
	rootA := "rel1.node0()#0"
	if afterA[rootA] == beforeA[rootA] {
		t.Errorf("a root epoch unchanged (%d) across rolled-back write — a torn read could validate", afterA[rootA])
	}
	// b's insert never applied (the panic preceded it): b untouched.
	for id, e := range afterB {
		if b, ok := beforeB[id]; ok && e != b {
			t.Errorf("b lock %s: epoch moved %d -> %d with no applied write", id, b, e)
		}
	}
}

// TestEpochSingleRelationPanicRollback is the single-relation analog: a
// Relation.Batch whose apply phase panics (put-if-absent violation forced
// via a poisoned member is not constructible, so use the registry hook's
// sibling — a yield callback that panics after a mutation applied).
func TestEpochSingleRelationPanicRollback(t *testing.T) {
	r := lockFreeStick(t)
	mustInsert(t, r, 1, 2, 10)
	before := collectEpochs(r)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("batch did not panic")
			}
		}()
		r.Batch(func(tx *Txn) error {
			if _, err := tx.Insert(rel.T("src", 1, "dst", 7), rel.T("weight", 70)); err != nil {
				return err
			}
			// The query member runs after the insert applied; panicking in
			// its yield unwinds the batch through the undo log.
			return tx.ExecRows(mustPrepareQuery(t, r, []string{"src"}, []string{"dst"}),
				mustRow(r, map[string]int64{"src": 1}), func(rel.Row) bool {
					panic("epoch-test: forced mid-apply failure")
				})
		})
	}()
	got, err := r.Query(rel.T("src", 1), "dst")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("rollback did not restore relation: %v", got)
	}
	after := collectEpochs(r)
	for id, e := range after {
		if e&1 == 1 {
			t.Errorf("lock %s: odd epoch %d after rollback", id, e)
		}
	}
	uLock := "node1(1)#0"
	if after[uLock] == before[uLock] {
		t.Errorf("u(1) epoch unchanged (%d) across rolled-back write", after[uLock])
	}
}

func mustPrepareQuery(t *testing.T, r *Relation, bound, out []string) *PreparedQuery {
	t.Helper()
	q, err := r.PrepareQuery(bound, out)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func mustRow(r *Relation, vals map[string]int64) rel.Row {
	row := r.Schema().NewRow()
	for c, v := range vals {
		row.Set(r.Schema().MustIndex(c), v)
	}
	return row
}
