package core

import (
	"fmt"

	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

// This file is the options-based synthesis surface: one SynthOption
// vocabulary shared by Registry.Synthesize (create a relation) and
// Registry.Migrate (re-synthesize a live one), so representation choice —
// explicit decomposition + placement, or a picker that derives them from
// the specification — is expressed the same way whether the relation is
// being born or being migrated. The positional SynthesizeDP survives as a
// deprecated shim.

// SynthOption configures a Synthesize or Migrate call.
type SynthOption func(*synthConfig)

// synthConfig is the resolved option set of one Synthesize/Migrate call.
type synthConfig struct {
	d      *decomp.Decomposition
	p      *locks.Placement
	picker func(rel.Spec) (*decomp.Decomposition, *locks.Placement, error)
}

// WithDecomposition selects an explicit decomposition for the relation.
func WithDecomposition(d *decomp.Decomposition) SynthOption {
	return func(c *synthConfig) { c.d = d }
}

// WithPlacement selects an explicit lock placement. Without it the
// fine-grain default placement (locks.NewPlacement) of the resolved
// decomposition is used.
func WithPlacement(p *locks.Placement) SynthOption {
	return func(c *synthConfig) { c.p = p }
}

// WithPicker installs a representation picker: a function deriving the
// decomposition (and optionally the placement) from the specification.
// An explicit WithDecomposition takes precedence; an explicit
// WithPlacement overrides the picker's placement. The public crs package
// wraps the §6.1 autotuner into a picker (crs.WithAutotune).
func WithPicker(pick func(rel.Spec) (*decomp.Decomposition, *locks.Placement, error)) SynthOption {
	return func(c *synthConfig) { c.picker = pick }
}

// SynthesizeSpec compiles a standalone concurrent relation from a
// specification and synthesis options — the options-based analog of the
// positional Synthesize(d, p). Use Registry.Synthesize instead when
// transactions must span several relations.
func SynthesizeSpec(spec rel.Spec, opts ...SynthOption) (*Relation, error) {
	d, p, err := resolveSynth(spec, opts)
	if err != nil {
		return nil, err
	}
	return synthesize(nil, 0, "", d, p)
}

// resolveSynth reduces an option list to a validated (decomposition,
// placement) pair for spec: explicit options win, the picker fills gaps,
// and a missing placement defaults to the fine-grain ψ2.
func resolveSynth(spec rel.Spec, opts []SynthOption) (*decomp.Decomposition, *locks.Placement, error) {
	var c synthConfig
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	d, p := c.d, c.p
	if d == nil && c.picker != nil {
		pd, pp, err := c.picker(spec)
		if err != nil {
			return nil, nil, fmt.Errorf("core: representation picker: %w", err)
		}
		d = pd
		if p == nil {
			p = pp
		}
	}
	if d == nil {
		return nil, nil, fmt.Errorf("core: no representation selected (pass WithDecomposition or a picker option)")
	}
	if !specsEqual(d.Spec, spec) {
		return nil, nil, fmt.Errorf("core: decomposition implements spec %s, want %s", d.Spec, spec)
	}
	if p == nil {
		p = locks.NewPlacement(d)
	}
	return d, p, nil
}

// specsEqual reports whether two specifications are interchangeable for
// synthesis: same columns (same schema indices) and same functional
// dependencies. Spec's canonical rendering covers both.
func specsEqual(a, b rel.Spec) bool { return a.String() == b.String() }
