package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

// Registry is a set of synthesized relations sharing one transactional
// domain — the library's database handle. Relations register at
// Synthesize time and receive a stable relation id that becomes the
// leading component of every lock ID they mint, extending the §5.1 total
// lock order registry-wide to (relation id, node, instance key, stripe).
// Registry.Batch therefore runs one two-phase-locking transaction over
// members against ANY registered relations: the growing phase acquires
// the pooled, coalesced lock sets of all member relations in the global
// order (deadlock-free by the same ordered-acquisition argument as a
// single relation, cf. Locksynth's globally ordered discipline), and the
// apply phase replays members in enqueue order under one undo log, so a
// cross-relation group commits atomically.
//
// A Registry is safe for concurrent use; relations remain individually
// usable (Relation.Batch, plain operations) alongside registry batches.
type Registry struct {
	mu   sync.Mutex
	rels []*Relation

	// txnPool recycles the transaction-wide locks.Txn of registry batches
	// (per-relation operation buffers are pooled on their relations).
	txnPool sync.Pool

	// logger, when non-nil, persists every committed mutating batch at its
	// commit point (redo.go). Set via SetCommitLogger before traffic.
	logger CommitLogger

	// migrMu is the representation latch (migrate.go): every operation
	// entry point holds it shared for the operation's full duration;
	// Migrate's cutover holds it exclusive, so exclusivity means no
	// operation is in flight and none can start. It precedes every data
	// lock in the acquisition order and so cannot close a deadlock cycle.
	migrMu sync.RWMutex
	// migrateMu serializes whole migrations (one at a time per registry).
	migrateMu sync.Mutex
	// tap, when non-nil, records committed mutations against the relation
	// under migration; checked (one atomic load) beside the commit logger
	// at every commit point (migrate.go).
	tap atomic.Pointer[migrationTap]

	// ctr holds the registry-level live counter cells (counters.go).
	ctr regCounters
	// evMu guards events, the completed-migration history Harvest copies.
	evMu   sync.Mutex
	events []MigrationEvent
}

// registryApplyHook, when non-nil, runs before each member of a registry
// batch's apply phase (arguments: relation name, member's global enqueue
// position). Tests use it to force a mid-apply panic and exercise the
// cross-relation undo log.
var registryApplyHook func(relName string, pos int)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// Synthesize compiles a representation for spec and registers it under
// name — the multi-relation analog of the package-level Synthesize. The
// representation comes from the options: an explicit decomposition
// (WithDecomposition, optionally WithPlacement) or a picker
// (WithPicker); a missing placement defaults to the fine-grain ψ2. The
// same option vocabulary drives Migrate, so creating a relation and
// re-synthesizing a live one read identically. The returned relation's
// id is its registration order (first relation gets 1; id 0 is reserved
// for standalone relations), fixed before any lock array exists so every
// lock ID carries it. Names must be unique and non-empty.
func (g *Registry) Synthesize(name string, spec rel.Spec, opts ...SynthOption) (*Relation, error) {
	d, p, err := resolveSynth(spec, opts)
	if err != nil {
		return nil, err
	}
	return g.SynthesizeDP(name, d, p)
}

// SynthesizeDP is the positional predecessor of Synthesize: an explicit
// decomposition + placement pair.
//
// Deprecated: use Synthesize with WithDecomposition and WithPlacement.
func (g *Registry) SynthesizeDP(name string, d *decomp.Decomposition, p *locks.Placement) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("core: registry relations need a name")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.rels {
		if r.name == name {
			return nil, fmt.Errorf("core: relation %q already registered", name)
		}
	}
	r, err := synthesize(g, len(g.rels)+1, name, d, p)
	if err != nil {
		return nil, err
	}
	g.rels = append(g.rels, r)
	return r, nil
}

// Relations returns the registered relations in registration (= lock
// order) order.
func (g *Registry) Relations() []*Relation {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Relation(nil), g.rels...)
}

// RelationByName returns the registered relation with the given name, or
// nil.
func (g *Registry) RelationByName(name string) *Relation {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.rels {
		if r.name == name {
			return r
		}
	}
	return nil
}

// getTxn checks a transaction-wide locks.Txn out of the pool.
func (g *Registry) getTxn() *locks.Txn {
	lt, _ := g.txnPool.Get().(*locks.Txn)
	if lt == nil {
		lt = locks.NewTxn()
	}
	lt.Reset()
	return lt
}

// Batch runs fn to assemble a group of operations against any registered
// relations, then executes the whole group as ONE two-phase-locking
// transaction: per relation, member lock requirements are merged exactly
// as in Relation.Batch; across relations, acquisition follows the
// registry-wide (relation id, node, inst, stripe) order, each physical
// lock taken at most once per batch. The group is atomic across relations
// (all-or-nothing under a shared undo log) and its members behave as if
// executed sequentially in enqueue order. If fn returns an error, nothing
// executes and the error is returned.
//
// A group whose members are all queries and counts is detected
// automatically and — when every touched relation is OptimisticCapable —
// executed lock-free under the optimistic epoch-validation protocol
// (readonly.go), acquiring zero physical locks on the conflict-free path.
// A MIXED group (mutations plus reads) over capable relations
// auto-upgrades to the Silo-style OCC commit (occ.go): exclusive locks
// for the write members only, lock-free epoch-validated reads for the
// rest, validated in the registry-wide lock order.
func (g *Registry) Batch(fn func(tx *Txn) error) error {
	return g.batch(fn, false)
}

// BatchReadOnly is Batch restricted to read-only groups: enqueueing a
// mutation fails with an error, making the zero-lock optimistic intent
// explicit. Execution is identical to what Batch auto-detects for
// read-only groups, so results never depend on which path ran.
func (g *Registry) BatchReadOnly(fn func(tx *Txn) error) error {
	return g.batch(fn, true)
}

// batch is the shared body of Batch and BatchReadOnly.
func (g *Registry) batch(fn func(tx *Txn) error, roOnly bool) error {
	// Representation latch, held shared across the whole batch — assembly,
	// commit AND the deferred shrink below (registered after the RUnlock,
	// so it runs before it) — keeping a migration cutover strictly ordered
	// against every in-flight batch (migrate.go).
	g.migrMu.RLock()
	defer g.migrMu.RUnlock()
	lt := g.getTxn()
	t := &Txn{reg: g, ltxn: lt, roOnly: roOnly, multi: &txnReg{}}
	defer func() {
		// Shrinking phase: end-bump every shard's begin-bumped epoch cells
		// while the locks are still held (optimistic readers must see the
		// odd window span all writes, rolled-back ones included), then
		// release the whole transaction's locks, restore each buffer's own
		// locks.Txn, and return the buffers to their relations' pools.
		// Runs on panic too (after commitTxn's rollback).
		for _, sh := range t.multi.shards {
			sh.b.finishEpochs()
		}
		lt.ReleaseAll()
		for _, sh := range t.multi.shards {
			sh.b.txn = sh.own
			sh.r.putBuf(sh.b)
		}
		g.txnPool.Put(lt)
	}()
	if err := fn(t); err != nil {
		t.sealed = true
		return err
	}
	t.sealed = true
	if len(t.multi.order) == 0 {
		return nil
	}
	// Every commit path — the lock-free read-only validation, the OCC
	// growing/validation phases and the pessimistic growing phase — walks
	// the shards in the registry-wide lock order, so sort them by relation
	// id once here; this is the ONLY sort (commitTxn and commitOCC rely
	// on it and never reorder the shards).
	sort.Slice(t.multi.shards, func(i, j int) bool { return t.multi.shards[i].r.regID < t.multi.shards[j].r.regID })
	if t.readOnly() {
		if g.commitReadOnly(t) {
			g.noteBatch(t, true, false)
			return nil
		}
	} else if ok, err := g.commitOCC(t); ok || err != nil {
		if ok && err == nil {
			g.noteBatch(t, false, true)
		}
		return err
	}
	if err := g.commitTxn(t); err != nil {
		return err
	}
	g.noteBatch(t, false, false)
	return nil
}

// commitTxn executes an assembled registry transaction: shard growing
// phases in relation-id order on the shared locks.Txn (Registry.batch
// sorted the shards before dispatching, and no commit path reorders
// them), then one apply phase replaying every member in global enqueue
// order under a shared undo log. With a commit logger attached the
// batch's redo record is appended after the apply phase completes, still
// under every held lock; a logging failure rolls the whole batch back
// and is returned from Batch.
func (g *Registry) commitTxn(t *Txn) error {
	for _, sh := range t.multi.shards {
		sh.r.initBatchMembers(sh.b)
	}
	for _, sh := range t.multi.shards {
		sh.r.growBatch(t, sh.b)
	}

	// Apply phase: one undo log spans all shards, so a panic in any
	// member's apply unwinds the writes of EVERY relation before the
	// locks are released — cross-relation all-or-nothing.
	var undo undoLog
	for _, sh := range t.multi.shards {
		sh.b.apply = true
		sh.b.undo = &undo
	}
	defer func() {
		for _, sh := range t.multi.shards {
			sh.b.undo = nil
		}
		if p := recover(); p != nil {
			undo.rollback()
			panic(p)
		}
	}()
	for pos, ref := range t.multi.order {
		if registryApplyHook != nil {
			registryApplyHook(ref.sh.r.name, pos)
		}
		ref.sh.r.applyMember(ref.sh.b, &ref.sh.b.members[ref.idx], ref.idx, ref.sh.firstMut)
	}
	// Commit point: the batch is fully applied, its locks are still held.
	// Append the redo record now, so the log order of conflicting batches
	// is their serialization order; failure unwinds through the same undo
	// log a mid-apply panic would use.
	if lg, tp := g.logger, g.tap.Load(); lg != nil || tp != nil {
		if ops := t.registryRedo(); ops != nil {
			if lg != nil {
				if err := lg.LogCommit(ops); err != nil {
					undo.rollback()
					for _, sh := range t.multi.shards {
						sh.b.apply = false
					}
					return err
				}
			}
			// The migration tap records only durable commits, after the
			// logger accepted the batch and still under every held lock
			// (migrate.go).
			if tp != nil {
				tp.record(ops)
			}
		}
	}
	for _, sh := range t.multi.shards {
		sh.b.apply = false
	}
	return nil
}
