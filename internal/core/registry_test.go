package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

func usersSpec() rel.Spec {
	return rel.MustSpec([]string{"user", "posts"},
		rel.FD{From: []string{"user"}, To: []string{"posts"}})
}

func postsSpec() rel.Spec {
	return rel.MustSpec([]string{"author", "post", "ts"},
		rel.FD{From: []string{"author", "post"}, To: []string{"ts"}})
}

// testRegistry builds the two-relation users/posts registry most tests
// exercise: a users table keyed by user carrying a posts counter, and a
// posts table keyed by (author, post).
func testRegistry(t *testing.T) (*Registry, *Relation, *Relation) {
	t.Helper()
	g := NewRegistry()
	ud, err := decomp.NewBuilder(usersSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"user"}, container.ConcurrentHashMap).
		Edge("uc", "u", "c", []string{"posts"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	users, err := g.Synthesize("users", ud.Spec, WithDecomposition(ud), WithPlacement(locks.FineGrained(ud)))
	if err != nil {
		t.Fatal(err)
	}
	pd, err := decomp.NewBuilder(postsSpec(), "ρ").
		Edge("ρa", "ρ", "a", []string{"author"}, container.ConcurrentHashMap).
		Edge("ap", "a", "p", []string{"post"}, container.TreeMap).
		Edge("pt", "p", "t", []string{"ts"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	posts, err := g.Synthesize("posts", pd.Spec, WithDecomposition(pd), WithPlacement(locks.FineGrained(pd)))
	if err != nil {
		t.Fatal(err)
	}
	return g, users, posts
}

// TestRegistrySynthesize pins registration: stable 1-based relation ids in
// registration order baked into lock IDs, name lookup, duplicate and
// empty names rejected, standalone relations keeping id 0.
func TestRegistrySynthesize(t *testing.T) {
	g, users, posts := testRegistry(t)
	if users.RegistryID() != 1 || posts.RegistryID() != 2 {
		t.Fatalf("registry ids = %d, %d; want 1, 2", users.RegistryID(), posts.RegistryID())
	}
	if users.Name() != "users" || g.RelationByName("posts") != posts {
		t.Fatal("registration names not tracked")
	}
	if rels := g.Relations(); len(rels) != 2 || rels[0] != users || rels[1] != posts {
		t.Fatalf("Relations() = %v", rels)
	}
	if id := users.root.lock(0).ID(); id.Rel != 1 {
		t.Fatalf("users root lock carries rel id %d, want 1", id.Rel)
	}
	ud, _ := decomp.NewBuilder(usersSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"user"}, container.HashMap).
		Edge("uc", "u", "c", []string{"posts"}, container.Cell).
		Build()
	if _, err := g.Synthesize("users", ud.Spec, WithDecomposition(ud), WithPlacement(locks.FineGrained(ud))); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := g.Synthesize("", ud.Spec, WithDecomposition(ud)); err == nil {
		t.Fatal("empty name accepted")
	}
	standalone, err := Synthesize(ud, locks.FineGrained(ud))
	if err != nil {
		t.Fatal(err)
	}
	if standalone.RegistryID() != 0 || standalone.root.lock(0).ID().Rel != 0 {
		t.Fatal("standalone relation has a registry id")
	}
}

// TestRegistryBatchCrossRelation is the headline behavioural test: one
// Registry.Batch mixing mutations and reads against both relations
// commits atomically, members observe earlier members' writes in their
// own relation, and both relations end up exactly as a sequential
// per-operation execution would leave them.
func TestRegistryBatchCrossRelation(t *testing.T) {
	g, users, posts := testRegistry(t)
	// Seed: author 1 has 1 post.
	if _, err := users.Insert(rel.T("user", 1), rel.T("posts", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := posts.Insert(rel.T("author", 1, "post", 100), rel.T("ts", 5)); err != nil {
		t.Fatal(err)
	}
	var insPost, remUser, insUser *Pending[bool]
	var before, after *Pending[int]
	err := g.Batch(func(tx *Txn) error {
		var err error
		if before, err = tx.CountIn(posts, rel.T("author", 1)); err != nil {
			return err
		}
		// "insert post + bump author count" as one atomic group.
		if insPost, err = tx.InsertInto(posts, rel.T("author", 1, "post", 101), rel.T("ts", 6)); err != nil {
			return err
		}
		if remUser, err = tx.RemoveFrom(users, rel.T("user", 1)); err != nil {
			return err
		}
		if insUser, err = tx.InsertInto(users, rel.T("user", 1), rel.T("posts", 2)); err != nil {
			return err
		}
		after, err = tx.CountIn(posts, rel.T("author", 1))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !insPost.Value() || !remUser.Value() || !insUser.Value() {
		t.Fatalf("mutation results: post %v, remove user %v, insert user %v",
			insPost.Value(), remUser.Value(), insUser.Value())
	}
	if before.Value() != 1 || after.Value() != 2 {
		t.Fatalf("post counts before/after = %d/%d, want 1/2", before.Value(), after.Value())
	}
	uTuples, err := users.VerifyWellFormed()
	if err != nil {
		t.Fatal(err)
	}
	if len(uTuples) != 1 || !uTuples[0].Equal(rel.T("user", 1, "posts", 2)) {
		t.Fatalf("users after batch: %v", uTuples)
	}
	pTuples, err := posts.VerifyWellFormed()
	if err != nil {
		t.Fatal(err)
	}
	if len(pTuples) != 2 {
		t.Fatalf("posts after batch: %v", pTuples)
	}
}

// TestRegistryBatchAPIErrors pins the routing rules: relation-less tuple
// enqueues need Relation.Batch, foreign relations are rejected, and a
// leaked Txn is sealed.
func TestRegistryBatchAPIErrors(t *testing.T) {
	g, users, _ := testRegistry(t)
	ud, _ := decomp.NewBuilder(usersSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"user"}, container.HashMap).
		Edge("uc", "u", "c", []string{"posts"}, container.Cell).
		Build()
	standalone, err := Synthesize(ud, locks.FineGrained(ud))
	if err != nil {
		t.Fatal(err)
	}
	var leaked *Txn
	err = g.Batch(func(tx *Txn) error {
		leaked = tx
		if _, err := tx.Insert(rel.T("user", 1), rel.T("posts", 0)); err == nil {
			t.Error("registry batch accepted a relation-less Insert")
		}
		if _, err := tx.InsertInto(standalone, rel.T("user", 1), rel.T("posts", 0)); err == nil {
			t.Error("registry batch accepted an unregistered relation")
		}
		_, err := tx.InsertInto(users, rel.T("user", 1), rel.T("posts", 0))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leaked.InsertInto(users, rel.T("user", 2), rel.T("posts", 0)); err == nil {
		t.Fatal("sealed registry Txn accepted an enqueue")
	}
	// Single-relation batches reject relations outside the transaction.
	err = users.Batch(func(tx *Txn) error {
		if _, err := tx.InsertInto(standalone, rel.T("user", 3), rel.T("posts", 0)); err == nil {
			t.Error("Relation.Batch accepted a foreign relation")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRegistryBatchLockAudit is the acceptance-criterion trace test: a
// batch spanning both relations acquires each physical lock AT MOST ONCE,
// in strictly increasing registry-wide (relation, node, inst, stripe)
// order, and acquires no more locks than the same members issued as
// one-member batches.
func TestRegistryBatchLockAudit(t *testing.T) {
	run := func(t *testing.T, grouped bool) (acquired int) {
		g, users, posts := testRegistry(t)
		if _, err := users.Insert(rel.T("user", 1), rel.T("posts", 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := posts.Insert(rel.T("author", 1, "post", 100), rel.T("ts", 5)); err != nil {
			t.Fatal(err)
		}
		// Overlapping members: the posts ops share author 1's path, the
		// users ops share user 1's path — heavy coalescing on both sides.
		// Enqueue order deliberately interleaves relations (posts, users,
		// posts, users, posts) so the test also proves acquisition order is
		// independent of enqueue order.
		ops := []func(tx *Txn) error{
			func(tx *Txn) error { _, err := tx.CountIn(posts, rel.T("author", 1)); return err },
			func(tx *Txn) error { _, err := tx.RemoveFrom(users, rel.T("user", 1)); return err },
			func(tx *Txn) error {
				_, err := tx.InsertInto(posts, rel.T("author", 1, "post", 101), rel.T("ts", 6))
				return err
			},
			func(tx *Txn) error { _, err := tx.InsertInto(users, rel.T("user", 1), rel.T("posts", 2)); return err },
			func(tx *Txn) error {
				_, err := tx.InsertInto(posts, rel.T("author", 1, "post", 102), rel.T("ts", 7))
				return err
			},
		}
		if grouped {
			var tr *BatchTrace
			err := g.Batch(func(tx *Txn) error {
				tx.EnableTrace()
				tr = tx.Trace()
				for _, op := range ops {
					if err := op(tx); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			var flat []locks.ID
			for _, rd := range tr.Rounds {
				flat = append(flat, rd.IDs...)
			}
			if len(flat) == 0 {
				t.Fatal("trace recorded no acquisitions")
			}
			for i := 1; i < len(flat); i++ {
				if locks.CompareIDs(flat[i-1], flat[i]) >= 0 {
					t.Fatalf("acquisition order violates the global lock order: %v then %v\n%s",
						flat[i-1], flat[i], tr)
				}
			}
			relSeen := map[int]bool{}
			for _, id := range flat {
				if id.Rel != 1 && id.Rel != 2 {
					t.Fatalf("lock %v carries unexpected relation id", id)
				}
				relSeen[id.Rel] = true
			}
			if !relSeen[1] || !relSeen[2] {
				t.Fatalf("batch did not lock both relations: %v\n%s", relSeen, tr)
			}
			return tr.Acquired
		}
		for _, op := range ops {
			var tr *BatchTrace
			err := g.Batch(func(tx *Txn) error {
				tx.EnableTrace()
				tr = tx.Trace()
				return op(tx)
			})
			if err != nil {
				t.Fatal(err)
			}
			acquired += tr.Acquired
		}
		return acquired
	}
	groupedAcq := run(t, true)
	seqAcq := run(t, false)
	if groupedAcq > seqAcq {
		t.Fatalf("coalesced cross-relation batch acquired %d locks, sequential acquired %d", groupedAcq, seqAcq)
	}
}

// regOp is one randomized cross-relation operation for the differential
// quick-check.
type regOp struct {
	Rel  uint8 // 0 = users, 1 = posts
	Kind uint8 // insert / remove / count
	A, B uint8 // key material
}

type regOps []regOp

// Generate implements quick.Generator: short op groups over tiny key
// spaces, maximizing overlap within and across relations.
func (regOps) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(8) + 1
	ops := make(regOps, n)
	for i := range ops {
		ops[i] = regOp{Rel: uint8(r.Intn(2)), Kind: uint8(r.Intn(3)), A: uint8(r.Intn(3)), B: uint8(r.Intn(3))}
	}
	return reflect.ValueOf(ops)
}

// TestRegistryBatchDifferentialQuick checks Registry.Batch against a PAIR
// of §2 reference oracles: any random cross-relation group executed as
// one registry batch yields the same per-operation results and the same
// final contents in BOTH relations as the sequence executed one
// operation at a time.
func TestRegistryBatchDifferentialQuick(t *testing.T) {
	f := func(pre, group regOps) bool {
		g, users, posts := testRegistry(t)
		uRef, pRef := NewReference(usersSpec()), NewReference(postsSpec())
		insert := func(r *Relation, ref *Reference, op regOp) (bool, bool) {
			var s, tup rel.Tuple
			if op.Rel == 0 {
				s, tup = rel.T("user", int(op.A)), rel.T("posts", int(op.B))
			} else {
				s, tup = rel.T("author", int(op.A), "post", int(op.B)), rel.T("ts", int(op.A)+int(op.B))
			}
			a, err := r.Insert(s, tup)
			if err != nil {
				t.Fatal(err)
			}
			b, err := ref.Insert(s, tup)
			if err != nil {
				t.Fatal(err)
			}
			return a, b
		}
		for _, op := range pre {
			if op.Kind != 0 {
				continue
			}
			r, ref := users, uRef
			if op.Rel == 1 {
				r, ref = posts, pRef
			}
			if a, b := insert(r, ref, op); a != b {
				t.Fatalf("pre-populate diverged")
			}
		}
		sTup := func(op regOp) rel.Tuple {
			if op.Rel == 0 {
				return rel.T("user", int(op.A))
			}
			return rel.T("author", int(op.A), "post", int(op.B))
		}
		// Sequential reference results.
		var want []any
		for _, op := range group {
			ref := uRef
			if op.Rel == 1 {
				ref = pRef
			}
			switch op.Kind {
			case 0:
				var s, tup rel.Tuple
				if op.Rel == 0 {
					s, tup = rel.T("user", int(op.A)), rel.T("posts", int(op.B))
				} else {
					s, tup = rel.T("author", int(op.A), "post", int(op.B)), rel.T("ts", int(op.A)+int(op.B))
				}
				ok, _ := ref.Insert(s, tup)
				want = append(want, ok)
			case 1:
				ok, _ := ref.Remove(sTup(op))
				want = append(want, ok)
			default:
				var q rel.Tuple
				if op.Rel == 0 {
					q = rel.T("user", int(op.A))
				} else {
					q = rel.T("author", int(op.A))
				}
				res, _ := ref.Query(q, ref.Spec().Columns...)
				want = append(want, len(res))
			}
		}
		// The same group as ONE registry batch.
		var got []func() any
		err := g.Batch(func(tx *Txn) error {
			for _, op := range group {
				r := users
				if op.Rel == 1 {
					r = posts
				}
				switch op.Kind {
				case 0:
					var s, tup rel.Tuple
					if op.Rel == 0 {
						s, tup = rel.T("user", int(op.A)), rel.T("posts", int(op.B))
					} else {
						s, tup = rel.T("author", int(op.A), "post", int(op.B)), rel.T("ts", int(op.A)+int(op.B))
					}
					p, err := tx.InsertInto(r, s, tup)
					if err != nil {
						return err
					}
					got = append(got, func() any { return p.Value() })
				case 1:
					p, err := tx.RemoveFrom(r, sTup(op))
					if err != nil {
						return err
					}
					got = append(got, func() any { return p.Value() })
				default:
					var q rel.Tuple
					if op.Rel == 0 {
						q = rel.T("user", int(op.A))
					} else {
						q = rel.T("author", int(op.A))
					}
					p, err := tx.CountIn(r, q)
					if err != nil {
						return err
					}
					got = append(got, func() any { return p.Value() })
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i]() != want[i] {
				t.Errorf("group op %d (%+v): batch %v, sequential %v", i, group[i], got[i](), want[i])
				return false
			}
		}
		assertSameTuples(t, users, uRef)
		assertSameTuples(t, posts, pRef)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryBatchRollback forces a panic midway through the apply phase
// of a cross-relation batch — after members of BOTH relations have
// written — and checks the shared undo log restores both relations to
// their exact pre-batch contents before the panic propagates.
func TestRegistryBatchRollback(t *testing.T) {
	g, users, posts := testRegistry(t)
	if _, err := users.Insert(rel.T("user", 1), rel.T("posts", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := posts.Insert(rel.T("author", 1, "post", 100), rel.T("ts", 5)); err != nil {
		t.Fatal(err)
	}
	uBefore, err := users.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pBefore, err := posts.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Panic after 3 of 4 members applied: by then the posts insert, the
	// users remove and the users insert have all written.
	registryApplyHook = func(relName string, pos int) {
		if pos == 3 {
			panic("registry rollback test: injected failure")
		}
	}
	defer func() { registryApplyHook = nil }()
	panicked := func() (p any) {
		defer func() { p = recover() }()
		g.Batch(func(tx *Txn) error {
			if _, err := tx.InsertInto(posts, rel.T("author", 1, "post", 101), rel.T("ts", 6)); err != nil {
				return err
			}
			if _, err := tx.RemoveFrom(users, rel.T("user", 1)); err != nil {
				return err
			}
			if _, err := tx.InsertInto(users, rel.T("user", 1), rel.T("posts", 2)); err != nil {
				return err
			}
			_, err := tx.InsertInto(posts, rel.T("author", 2, "post", 200), rel.T("ts", 9))
			return err
		})
		return nil
	}()
	if panicked == nil {
		t.Fatal("injected apply failure did not propagate")
	}
	registryApplyHook = nil
	uAfter, err := users.VerifyWellFormed()
	if err != nil {
		t.Fatalf("users ill-formed after rollback: %v", err)
	}
	pAfter, err := posts.VerifyWellFormed()
	if err != nil {
		t.Fatalf("posts ill-formed after rollback: %v", err)
	}
	if !tuplesEqual(uAfter, uBefore) {
		t.Fatalf("users not rolled back: %v, want %v", uAfter, uBefore)
	}
	if !tuplesEqual(pAfter, pBefore) {
		t.Fatalf("posts not rolled back: %v, want %v", pAfter, pBefore)
	}
}

// TestRegistryBatchConcurrentStress drives overlapping cross-relation
// batches from many goroutines, with the two relations enqueued in BOTH
// orders — the growing phase must still acquire in the global relation-id
// order, so no interleaving can deadlock. Run under -race; the timeout is
// the deadlock detector.
func TestRegistryBatchConcurrentStress(t *testing.T) {
	g, users, posts := testRegistry(t)
	const workers = 8
	const batchesPerWorker = 100
	const keys = 6
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < batchesPerWorker; i++ {
					a := rng.Intn(keys)
					b := rng.Intn(keys)
					var err error
					switch rng.Intn(4) {
					case 0: // add post + bump author counter (posts first)
						err = g.Batch(func(tx *Txn) error {
							if _, e := tx.InsertInto(posts, rel.T("author", a, "post", b), rel.T("ts", i)); e != nil {
								return e
							}
							if _, e := tx.RemoveFrom(users, rel.T("user", a)); e != nil {
								return e
							}
							_, e := tx.InsertInto(users, rel.T("user", a), rel.T("posts", i))
							return e
						})
					case 1: // users first, posts second (reverse enqueue order)
						err = g.Batch(func(tx *Txn) error {
							if _, e := tx.RemoveFrom(users, rel.T("user", a)); e != nil {
								return e
							}
							if _, e := tx.InsertInto(users, rel.T("user", a), rel.T("posts", i)); e != nil {
								return e
							}
							_, e := tx.RemoveFrom(posts, rel.T("author", a, "post", b))
							return e
						})
					case 2: // cross-relation reads
						err = g.Batch(func(tx *Txn) error {
							if _, e := tx.CountIn(posts, rel.T("author", a)); e != nil {
								return e
							}
							_, e := tx.CountIn(users, rel.T("user", b))
							return e
						})
					default: // single-relation registry batch
						err = g.Batch(func(tx *Txn) error {
							_, e := tx.InsertInto(posts, rel.T("author", a, "post", b), rel.T("ts", i))
							return e
						})
					}
					if err != nil {
						t.Errorf("registry batch: %v", err)
						return
					}
				}
			}(int64(w*104729 + 7))
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("deadlock: concurrent registry batch stress did not finish")
	}
	if _, err := users.VerifyWellFormed(); err != nil {
		t.Fatal(err)
	}
	if _, err := posts.VerifyWellFormed(); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryBatchAbort checks nothing executes when the callback errors,
// including release of every shard buffer checked out before the error.
func TestRegistryBatchAbort(t *testing.T) {
	g, users, posts := testRegistry(t)
	if _, err := posts.Insert(rel.T("author", 1, "post", 100), rel.T("ts", 5)); err != nil {
		t.Fatal(err)
	}
	errBoom := fmt.Errorf("boom")
	err := g.Batch(func(tx *Txn) error {
		if _, err := tx.InsertInto(users, rel.T("user", 1), rel.T("posts", 0)); err != nil {
			return err
		}
		if _, err := tx.RemoveFrom(posts, rel.T("author", 1, "post", 100)); err != nil {
			return err
		}
		return errBoom
	})
	if err != errBoom {
		t.Fatalf("Batch returned %v, want the callback error", err)
	}
	uTuples, err := users.VerifyWellFormed()
	if err != nil {
		t.Fatal(err)
	}
	if len(uTuples) != 0 {
		t.Fatalf("aborted batch wrote users: %v", uTuples)
	}
	pTuples, err := posts.VerifyWellFormed()
	if err != nil {
		t.Fatal(err)
	}
	if len(pTuples) != 1 {
		t.Fatalf("aborted batch changed posts: %v", pTuples)
	}
}
