package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/rel"
)

// TestConcurrentStress drives every representation variant with several
// goroutines issuing the four graph operations of §6.2 concurrently, then
// checks quiescent invariants: the synthesizer's claim is that any legal
// (decomposition, placement) pair yields serializable, deadlock-free
// operations, so none of this may race (run under -race), deadlock, or
// corrupt the instance graph.
func TestConcurrentStress(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		const workers = 8
		const opsPerWorker = 400
		const keys = 10
		done := make(chan struct{})
		go func() {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < opsPerWorker; i++ {
						src, dst := rng.Intn(keys), rng.Intn(keys)
						switch rng.Intn(10) {
						case 0, 1, 2, 3:
							if _, err := r.Insert(rel.T("src", src, "dst", dst), rel.T("weight", rng.Intn(100))); err != nil {
								t.Errorf("insert: %v", err)
								return
							}
						case 4, 5:
							if _, err := r.Remove(rel.T("src", src, "dst", dst)); err != nil {
								t.Errorf("remove: %v", err)
								return
							}
						case 6, 7:
							if _, err := r.Query(rel.T("src", src), "dst", "weight"); err != nil {
								t.Errorf("query succ: %v", err)
								return
							}
						case 8:
							if _, err := r.Query(rel.T("dst", dst), "src", "weight"); err != nil {
								t.Errorf("query pred: %v", err)
								return
							}
						default:
							if _, err := r.Snapshot(); err != nil {
								t.Errorf("snapshot: %v", err)
								return
							}
						}
					}
				}(int64(w * 7919))
			}
			wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("deadlock: concurrent stress did not finish")
		}
		// Quiescent coherence: the instance graph is well formed and the
		// snapshot agrees with the abstraction function.
		wf, err := r.VerifyWellFormed()
		if err != nil {
			t.Fatal(err)
		}
		snap, err := r.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !tuplesEqual(wf, snap) {
			t.Fatalf("abstraction %v != snapshot %v", wf, snap)
		}
		// Functional dependency preserved: src,dst unique.
		seen := map[string]bool{}
		for _, tu := range snap {
			k := tu.Project([]string{"src", "dst"}).String()
			if seen[k] {
				t.Fatalf("FD violated: duplicate %s", k)
			}
			seen[k] = true
		}
	})
}

// TestConcurrentDisjointInserts checks that inserts to disjoint keys all
// survive — a lost-update probe across every variant.
func TestConcurrentDisjointInserts(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		const workers = 8
		const perWorker = 50
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					src := w*perWorker + i
					if ok, err := r.Insert(rel.T("src", src, "dst", src+1), rel.T("weight", w)); err != nil || !ok {
						t.Errorf("insert %d: %v %v", src, ok, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		snap, err := r.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap) != workers*perWorker {
			t.Fatalf("lost updates: %d tuples, want %d", len(snap), workers*perWorker)
		}
	})
}

// TestConcurrentPutIfAbsentRace has all workers race to insert the same
// key with distinct weights: exactly one must win, and the surviving
// weight must correspond to a winner that reported true.
func TestConcurrentPutIfAbsentRace(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		for round := 0; round < 20; round++ {
			const workers = 8
			wins := make([]bool, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ok, err := r.Insert(rel.T("src", round, "dst", round), rel.T("weight", w))
					if err != nil {
						t.Errorf("insert: %v", err)
						return
					}
					wins[w] = ok
				}(w)
			}
			wg.Wait()
			winners := 0
			winner := -1
			for w, ok := range wins {
				if ok {
					winners++
					winner = w
				}
			}
			if winners != 1 {
				t.Fatalf("round %d: %d winners, want exactly 1", round, winners)
			}
			got, err := r.Query(rel.T("src", round, "dst", round), "weight")
			if err != nil || len(got) != 1 {
				t.Fatalf("round %d: query = %v, %v", round, got, err)
			}
			if !got[0].Equal(rel.T("weight", winner)) {
				t.Fatalf("round %d: stored weight %v but winner was %d", round, got[0], winner)
			}
		}
	})
}

// TestConcurrentInsertRemoveSameKey hammers one key with inserts and
// removes; afterwards presence must be coherent across query paths.
func TestConcurrentInsertRemoveSameKey(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 300; i++ {
					if w%2 == 0 {
						r.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", w*1000+i))
					} else {
						r.Remove(rel.T("src", 1, "dst", 2))
					}
				}
			}(w)
		}
		wg.Wait()
		bySucc, _ := r.Query(rel.T("src", 1), "dst")
		byPred, _ := r.Query(rel.T("dst", 2), "src")
		byPoint, _ := r.Query(rel.T("src", 1, "dst", 2), "weight")
		if len(bySucc) != len(byPred) || len(bySucc) != len(byPoint) {
			t.Fatalf("incoherent views: succ=%d pred=%d point=%d", len(bySucc), len(byPred), len(byPoint))
		}
		if _, err := r.VerifyWellFormed(); err != nil {
			t.Fatal(err)
		}
	})
}
