package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/rel"
)

// TestPreparedMatchesUnprepared checks that the prepared fast paths return
// exactly what the validated slow paths return.
func TestPreparedMatchesUnprepared(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		ins, err := r.PrepareInsert([]string{"dst", "src"})
		if err != nil {
			t.Fatal(err)
		}
		rem, err := r.PrepareRemove([]string{"dst", "src"})
		if err != nil {
			t.Fatal(err)
		}
		succ, err := r.PrepareQuery([]string{"src"}, []string{"dst", "weight"})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		ref := NewReference(graphSpec())
		for i := 0; i < 600; i++ {
			s, d := rng.Intn(8), rng.Intn(8)
			key := rel.T("src", s, "dst", d)
			switch rng.Intn(5) {
			case 0, 1:
				got, err := ins.Exec(key, rel.T("weight", i))
				if err != nil {
					t.Fatal(err)
				}
				want, _ := ref.Insert(key, rel.T("weight", i))
				if got != want {
					t.Fatalf("prepared insert diverged at %d", i)
				}
			case 2:
				got, err := rem.Exec(key)
				if err != nil {
					t.Fatal(err)
				}
				want, _ := ref.Remove(key)
				if got != want {
					t.Fatalf("prepared remove diverged at %d", i)
				}
			default:
				got, err := succ.Exec(rel.T("src", s))
				if err != nil {
					t.Fatal(err)
				}
				want, _ := ref.Query(rel.T("src", s), "dst", "weight")
				if !tuplesEqual(got, want) {
					t.Fatalf("prepared query diverged at %d: %v vs %v", i, got, want)
				}
			}
		}
	})
}

// TestCountMatchesQueryLen is the count-pushdown correctness check: for
// every variant and every bound-column pattern, Count(s) equals the
// length of the full query result, across random relation states.
func TestCountMatchesQueryLen(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 300; i++ {
			s, d := rng.Intn(6), rng.Intn(6)
			if rng.Intn(3) != 0 {
				r.Insert(rel.T("src", s, "dst", d), rel.T("weight", i))
			} else {
				r.Remove(rel.T("src", s, "dst", d))
			}
		}
		patterns := []struct {
			bound rel.Tuple
			out   []string
		}{
			{rel.T("src", 2), []string{"dst", "weight"}},
			{rel.T("dst", 3), []string{"src", "weight"}},
			{rel.T("src", 1, "dst", 4), []string{"weight"}},
			{rel.T(), []string{"dst", "src", "weight"}},
			{rel.T("weight", 5), []string{"dst", "src"}},
		}
		for _, p := range patterns {
			q, err := r.PrepareQuery(p.bound.Dom(), p.out)
			if err != nil {
				t.Fatal(err)
			}
			for probe := 0; probe < 6; probe++ {
				full, err := q.Exec(p.bound)
				if err != nil {
					t.Fatal(err)
				}
				n, err := q.Count(p.bound)
				if err != nil {
					t.Fatal(err)
				}
				if n != len(full) {
					t.Fatalf("Count(%v) = %d but query returned %d tuples", p.bound, n, len(full))
				}
			}
		}
	})
}

// TestCountConcurrentCoherence hammers Count against concurrent mutations;
// the counted value must always be a linearizable cardinality (between the
// minimum and maximum possible given the surrounding operations, checked
// here as: never negative, never exceeding the keyspace product).
func TestCountConcurrentCoherence(t *testing.T) {
	forEachVariant(t, func(t *testing.T, r *Relation) {
		succ, err := r.PrepareQuery([]string{"src"}, []string{"dst", "weight"})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < 400; i++ {
					s, d := rng.Intn(4), rng.Intn(8)
					switch rng.Intn(3) {
					case 0:
						r.Insert(rel.T("src", s, "dst", d), rel.T("weight", i))
					case 1:
						r.Remove(rel.T("src", s, "dst", d))
					default:
						n, err := succ.Count(rel.T("src", s))
						if err != nil {
							t.Errorf("count: %v", err)
							return
						}
						if n < 0 || n > 8 {
							t.Errorf("impossible count %d", n)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		// Quiescent: Count equals the real cardinality per source.
		for s := 0; s < 4; s++ {
			n, _ := succ.Count(rel.T("src", s))
			full, _ := succ.Exec(rel.T("src", s))
			if n != len(full) {
				t.Fatalf("quiescent count %d != %d", n, len(full))
			}
		}
	})
}
