package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/container"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/query"
	"repro/internal/rel"
)

// Relation is a synthesized concurrent relation (§2): a set of tuples over
// the specification's columns, represented by a decomposition instance and
// manipulated through the four atomic operations empty / insert / remove /
// query. All operations are linearizable (serializable) and deadlock-free
// by construction (§4–§5). A Relation is safe for concurrent use by any
// number of goroutines.
type Relation struct {
	spec      rel.Spec
	decomp    *decomp.Decomposition
	placement *locks.Placement
	planner   *query.Planner
	root      *Instance

	// Registry membership, fixed at Synthesize time: the owning registry
	// (nil for standalone relations), the registry-assigned relation id —
	// the leading component of every lock ID, so locks of distinct
	// registered relations are totally ordered (§5.1 extended
	// registry-wide) — and the registration name (for traces and lookup).
	registry *Registry
	regID    int
	name     string

	// Schema-compiled execution tables, fixed at Synthesize time: the
	// dense column schema, the full-binding mask, per-edge schema indices
	// of the edge's key columns (edge order), per-edge container slot in
	// the source node's Out list, and per-node schema indices (and
	// bitmask) of the node's bound columns A.
	schema      *rel.Schema
	fullMask    uint64
	edgeCols    [][]int
	edgeSlot    []int
	nodeKey     [][]int
	nodeKeyMask []uint64

	// optimisticOK, fixed at Synthesize time, reports that every container
	// in the decomposition is concurrency-safe (Figure 1), so read-only
	// batches may run lock-free under the optimistic epoch-validation
	// protocol (readonly.go). Relations with any unsafe container (HashMap,
	// TreeMap) always take the pessimistic 2PL path — an unlocked read
	// racing a writer would be a data race on those containers.
	optimisticOK bool

	// bufPool recycles operation buffers (transaction, query states, key
	// arena) across operations; see opBuf. A pointer so a migration can
	// adopt the replacement representation's pool wholesale (buffers are
	// shaped by the decomposition; migrate.go).
	bufPool *sync.Pool

	// repVer counts representation adoptions (migrate.go): bumped under
	// the exclusive representation latch at each cutover, read under the
	// shared latch by prepared handles to re-resolve their plans.
	repVer uint64

	// ctr holds the relation's live counter cells (counters.go). On the
	// Relation, not the representation: counts survive migrations.
	ctr relCounters

	// Plan caches: the paper compiles each syntactic operation once; the
	// library equivalent compiles per operation signature on first use.
	mu          sync.RWMutex
	queryPlans  map[string]*query.Plan
	countPlans  map[string]*query.Plan
	insertPlans map[string]*insertPlan
	removePlans map[string]*removePlan
}

// insertPlan bundles the growing-phase directives with the embedded
// put-if-absent existence query (§2's insert semantics).
type insertPlan struct {
	mut *query.MutationPlan
	// exist is the query plan whose access steps implement the existence
	// check for tuples matching s; its access step for node index i is
	// existAt[i].
	exist   *query.Plan
	existAt []*query.Step
}

// removePlan wraps the growing-phase directives of a remove; the per-node
// access routes live in the directives themselves (NodeDirective).
type removePlan struct {
	mut *query.MutationPlan
}

// Synthesize compiles a validated decomposition and lock placement into a
// standalone concurrent relation. It is the paper's compiler entry point;
// use Registry.Synthesize instead when transactions must span several
// relations.
func Synthesize(d *decomp.Decomposition, p *locks.Placement) (*Relation, error) {
	return synthesize(nil, 0, "", d, p)
}

// synthesize is the shared compiler body: regID and name are the registry
// coordinates (zero values for standalone relations). The relation id must
// be fixed before the root instance exists, because every lock array bakes
// it into its lock IDs.
func synthesize(g *Registry, regID int, name string, d *decomp.Decomposition, p *locks.Placement) (*Relation, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if p.D != d {
		return nil, fmt.Errorf("core: placement was built for a different decomposition")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	schema, err := rel.NewSchema(d.Spec.Columns)
	if err != nil {
		return nil, err
	}
	r := &Relation{
		spec:        d.Spec,
		decomp:      d,
		placement:   p,
		planner:     query.NewPlanner(d, p),
		registry:    g,
		regID:       regID,
		name:        name,
		schema:      schema,
		fullMask:    schema.FullMask(),
		bufPool:     &sync.Pool{},
		queryPlans:  map[string]*query.Plan{},
		countPlans:  map[string]*query.Plan{},
		insertPlans: map[string]*insertPlan{},
		removePlans: map[string]*removePlan{},
	}
	r.edgeCols = make([][]int, len(d.Edges))
	r.edgeSlot = make([]int, len(d.Edges))
	r.optimisticOK = true
	for _, e := range d.Edges {
		r.edgeCols[e.Index] = schema.Indices(e.Cols)
		for i, oe := range e.Src.Out {
			if oe == e {
				r.edgeSlot[e.Index] = i
			}
		}
		if !container.PropertiesOf(e.Container).ConcurrencySafe() {
			r.optimisticOK = false
		}
	}
	r.nodeKey = make([][]int, len(d.Nodes))
	r.nodeKeyMask = make([]uint64, len(d.Nodes))
	for _, n := range d.Nodes {
		r.nodeKey[n.Index] = schema.Indices(n.A)
		r.nodeKeyMask[n.Index] = schema.Mask(n.A)
	}
	r.root = r.newInstance(d.Root, rel.RowOver(make([]rel.Value, schema.Len()), 0))
	return r, nil
}

// Spec returns the relational specification this relation implements.
func (r *Relation) Spec() rel.Spec { return r.spec }

// Name returns the registration name ("" for standalone relations).
func (r *Relation) Name() string { return r.name }

// RegistryID returns the relation id the registry assigned at Synthesize
// time — the leading component of the relation's lock IDs (0 for
// standalone relations).
func (r *Relation) RegistryID() int { return r.regID }

// Schema returns the dense column schema fixed at synthesis time; use it
// to build rel.Row values for the prepared row API.
func (r *Relation) Schema() *rel.Schema { return r.schema }

// Decomposition returns the decomposition currently backing the
// relation (a migration may replace it; migrate.go).
func (r *Relation) Decomposition() *decomp.Decomposition {
	r.lockRep()
	defer r.unlockRep()
	return r.decomp
}

// Placement returns the lock placement currently backing the relation
// (a migration may replace it; migrate.go).
func (r *Relation) Placement() *locks.Placement {
	r.lockRep()
	defer r.unlockRep()
	return r.placement
}

// OptimisticCapable reports whether read-only batches against this
// relation may run lock-free under the optimistic epoch-validation
// protocol: true iff every container in the decomposition is
// concurrency-safe (Figure 1). Batch and BatchReadOnly fall back to
// pessimistic two-phase locking — with identical results — when this is
// false. A migration can change the answer (that unlock is the point of
// a TreeMap → ConcurrentSkipListMap migration).
func (r *Relation) OptimisticCapable() bool {
	r.lockRep()
	defer r.unlockRep()
	return r.optimisticOK
}

func planKey(bound, out []string) string {
	return strings.Join(bound, ",") + "|" + strings.Join(out, ",")
}

// queryPlanFor returns (compiling and caching on first use) the plan for a
// query binding the given columns and returning out.
func (r *Relation) queryPlanFor(bound, out []string) (*query.Plan, error) {
	k := planKey(bound, out)
	r.mu.RLock()
	p, ok := r.queryPlans[k]
	r.mu.RUnlock()
	if ok {
		return p, nil
	}
	p, err := r.planner.PlanQuery(bound, out)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.queryPlans[k] = p
	r.mu.Unlock()
	return p, nil
}

// countPlanFor returns (compiling and caching on first use) the
// count-pushdown plan for a cardinality query binding the given columns,
// falling back to the full query plan when no counting frontier exists.
func (r *Relation) countPlanFor(bound []string) (*query.Plan, error) {
	k := planKey(bound, nil)
	r.mu.RLock()
	p, ok := r.countPlans[k]
	r.mu.RUnlock()
	if ok {
		return p, nil
	}
	p, err := r.planner.PlanCount(bound)
	if err != nil {
		p, err = r.planner.PlanQuery(bound, r.spec.Columns)
		if err != nil {
			return nil, err
		}
	}
	r.mu.Lock()
	r.countPlans[k] = p
	r.mu.Unlock()
	return p, nil
}

func (r *Relation) insertPlanFor(sCols []string) (*insertPlan, error) {
	k := planKey(sCols, nil)
	r.mu.RLock()
	p, ok := r.insertPlans[k]
	r.mu.RUnlock()
	if ok {
		return p, nil
	}
	mut, err := r.planner.PlanMutation(query.OpInsert, sCols)
	if err != nil {
		return nil, err
	}
	exist, err := r.planner.PlanQuery(sCols, r.spec.Columns)
	if err != nil {
		return nil, err
	}
	ip := &insertPlan{mut: mut, exist: exist, existAt: make([]*query.Step, len(r.decomp.Nodes))}
	for i := range exist.Steps {
		s := &exist.Steps[i]
		if s.Kind != query.StepLock {
			ip.existAt[s.Edge.Dst.Index] = s
		}
	}
	r.mu.Lock()
	r.insertPlans[k] = ip
	r.mu.Unlock()
	return ip, nil
}

func (r *Relation) removePlanFor(sCols []string) (*removePlan, error) {
	k := planKey(sCols, nil)
	r.mu.RLock()
	p, ok := r.removePlans[k]
	r.mu.RUnlock()
	if ok {
		return p, nil
	}
	mut, err := r.planner.PlanMutation(query.OpRemove, sCols)
	if err != nil {
		return nil, err
	}
	rp := &removePlan{mut: mut}
	r.mu.Lock()
	r.removePlans[k] = rp
	r.mu.Unlock()
	return rp, nil
}

// Query implements query r s C (§2): it returns the projection onto out of
// every tuple in the relation extending s. The result order is
// unspecified.
func (r *Relation) Query(s rel.Tuple, out ...string) ([]rel.Tuple, error) {
	r.lockRep()
	defer r.unlockRep()
	if err := r.checkCols(s.Dom()); err != nil {
		return nil, err
	}
	if err := r.checkCols(out); err != nil {
		return nil, err
	}
	plan, err := r.queryPlanFor(s.Dom(), out)
	if err != nil {
		return nil, err
	}
	row, err := r.schema.RowFromTuple(s, nil)
	if err != nil {
		return nil, err
	}
	return r.runQueryTuples(plan, row), nil
}

// Insert implements insert r s t (§2): it inserts the tuple s ∪ t provided
// no existing tuple matches s, reporting whether the insertion happened.
// The domains of s and t must partition the relation's columns; this
// generalizes put-if-absent (§2). Maintaining the specification's
// functional dependencies is the client's obligation, which the s/t split
// makes checkable: bind the FD's left-hand side in s.
func (r *Relation) Insert(s, t rel.Tuple) (bool, error) {
	r.lockRep()
	defer r.unlockRep()
	x, err := s.Union(t)
	if err != nil {
		return false, err
	}
	if len(rel.ColsIntersect(s.Dom(), t.Dom())) > 0 {
		return false, fmt.Errorf("core: insert requires disjoint s and t, both bind %v", rel.ColsIntersect(s.Dom(), t.Dom()))
	}
	if !rel.ColsEqual(x.Dom(), r.spec.Columns) {
		return false, fmt.Errorf("core: insert tuple binds %v, want all of %v", x.Dom(), r.spec.Columns)
	}
	plan, err := r.insertPlanFor(s.Dom())
	if err != nil {
		return false, err
	}
	row, err := r.schema.RowFromTuple(x, nil)
	if err != nil {
		return false, err
	}
	return r.runInsert(plan, row), nil
}

// Remove implements remove r s (§2): it removes every tuple extending s
// and reports whether any tuple was removed. As in the paper's
// implementation, s must be a key for the relation.
func (r *Relation) Remove(s rel.Tuple) (bool, error) {
	r.lockRep()
	defer r.unlockRep()
	if err := r.checkCols(s.Dom()); err != nil {
		return false, err
	}
	plan, err := r.removePlanFor(s.Dom())
	if err != nil {
		return false, err
	}
	row, err := r.schema.RowFromTuple(s, nil)
	if err != nil {
		return false, err
	}
	return r.runRemove(plan, row), nil
}

// Snapshot returns every tuple currently in the relation (a full query).
// Intended for tests and tools; it takes whole-relation locks.
func (r *Relation) Snapshot() ([]rel.Tuple, error) {
	return r.Query(rel.T(), r.spec.Columns...)
}

// ExplainQuery renders the chosen plan for a query signature in the
// paper's let-notation (Figure 4 / §5.2).
func (r *Relation) ExplainQuery(bound []string, out []string) (string, error) {
	r.lockRep()
	defer r.unlockRep()
	plan, err := r.queryPlanFor(bound, out)
	if err != nil {
		return "", err
	}
	return plan.String(), nil
}

// ExplainInsert renders the growing-phase directives for an insert keyed
// by sCols.
func (r *Relation) ExplainInsert(sCols []string) (string, error) {
	r.lockRep()
	defer r.unlockRep()
	p, err := r.insertPlanFor(sCols)
	if err != nil {
		return "", err
	}
	return p.mut.String() + "existence check:\n" + p.exist.String(), nil
}

// ExplainRemove renders the growing-phase directives for a remove keyed by
// sCols.
func (r *Relation) ExplainRemove(sCols []string) (string, error) {
	r.lockRep()
	defer r.unlockRep()
	p, err := r.removePlanFor(sCols)
	if err != nil {
		return "", err
	}
	return p.mut.String(), nil
}

// DescribeQuery renders the compiled (schema-resolved) form of a query
// plan: the integer offsets the executor runs on. Pair with ExplainQuery
// (the paper's let-notation) to see both views of the same plan.
func (r *Relation) DescribeQuery(bound, out []string) (string, error) {
	r.lockRep()
	defer r.unlockRep()
	plan, err := r.queryPlanFor(bound, out)
	if err != nil {
		return "", err
	}
	return plan.Describe(), nil
}

// DescribeCount renders the compiled count-pushdown plan for a
// cardinality query binding the given columns.
func (r *Relation) DescribeCount(bound []string) (string, error) {
	r.lockRep()
	defer r.unlockRep()
	plan, err := r.countPlanFor(bound)
	if err != nil {
		return "", err
	}
	return plan.Describe(), nil
}

// DescribeInsert renders the compiled growing-phase directives of an
// insert keyed by sCols.
func (r *Relation) DescribeInsert(sCols []string) (string, error) {
	r.lockRep()
	defer r.unlockRep()
	p, err := r.insertPlanFor(sCols)
	if err != nil {
		return "", err
	}
	return p.mut.Describe() + "existence check:\n" + p.exist.Describe(), nil
}

// DescribeRemove renders the compiled growing-phase directives of a
// remove keyed by sCols.
func (r *Relation) DescribeRemove(sCols []string) (string, error) {
	r.lockRep()
	defer r.unlockRep()
	p, err := r.removePlanFor(sCols)
	if err != nil {
		return "", err
	}
	return p.mut.Describe(), nil
}

// DescribeQueryRounds renders the compiled round map of a query plan —
// the flat lock schedule the batched growing phase walks (§5's
// synchronization-is-compiled thesis applied to batches).
func (r *Relation) DescribeQueryRounds(bound, out []string) (string, error) {
	r.lockRep()
	defer r.unlockRep()
	plan, err := r.queryPlanFor(bound, out)
	if err != nil {
		return "", err
	}
	return plan.DescribeRounds(), nil
}

// DescribeCountRounds renders the compiled round map of the
// count-pushdown plan binding the given columns.
func (r *Relation) DescribeCountRounds(bound []string) (string, error) {
	r.lockRep()
	defer r.unlockRep()
	plan, err := r.countPlanFor(bound)
	if err != nil {
		return "", err
	}
	return plan.DescribeRounds(), nil
}

// DescribeInsertRounds renders the compiled round map of an insert's
// growing phase (existence-check probes appear as their own rounds).
func (r *Relation) DescribeInsertRounds(sCols []string) (string, error) {
	r.lockRep()
	defer r.unlockRep()
	p, err := r.insertPlanFor(sCols)
	if err != nil {
		return "", err
	}
	return p.mut.DescribeRounds(), nil
}

// DescribeRemoveRounds renders the compiled round map of a remove's
// growing phase.
func (r *Relation) DescribeRemoveRounds(sCols []string) (string, error) {
	r.lockRep()
	defer r.unlockRep()
	p, err := r.removePlanFor(sCols)
	if err != nil {
		return "", err
	}
	return p.mut.DescribeRounds(), nil
}

func (r *Relation) checkCols(cols []string) error {
	for _, c := range cols {
		if !r.spec.HasColumn(c) {
			return fmt.Errorf("core: unknown column %q (spec %s)", c, r.spec)
		}
	}
	return nil
}

// VerifyWellFormed walks the decomposition instance and checks the
// structural invariants the executor relies on, returning the represented
// relation. It takes no locks and must only be called on a quiescent
// relation (tests and tools):
//
//   - every non-root, non-unit instance has at least one entry in every
//     container (cascade cleanup held);
//   - a node instance reached along multiple in-edges is the same object;
//   - unit-edge containers hold at most one entry;
//   - the tuples read along every root-to-leaf path agree (abstraction
//     function is well defined).
func (r *Relation) VerifyWellFormed() ([]rel.Tuple, error) {
	var tuples []rel.Tuple
	seen := map[*Instance]rel.Tuple{}
	var walk func(inst *Instance, bound rel.Tuple) error
	walk = func(inst *Instance, bound rel.Tuple) error {
		if prev, ok := seen[inst]; ok {
			// The bound columns along any path to an instance are exactly
			// its node's A columns, so all paths must agree.
			if !prev.Equal(bound) {
				return fmt.Errorf("core: instance of %s reached with %v and %v", inst.node.Name, prev, bound)
			}
			return nil // already verified below this instance
		}
		seen[inst] = bound
		if inst.node.IsUnit() {
			tuples = append(tuples, bound)
			return nil
		}
		for i, e := range inst.node.Out {
			c := inst.containers[i]
			if c.Len() == 0 && inst.node != r.decomp.Root {
				return fmt.Errorf("core: empty container for %s on live instance of %s (cleanup invariant)", e.Name, inst.node.Name)
			}
			if e.IsUnitEdge() && c.Len() > 1 {
				return fmt.Errorf("core: unit edge %s has %d entries", e.Name, c.Len())
			}
			var err error
			c.Scan(func(k rel.Key, v any) bool {
				child := v.(*Instance)
				kt := k.Tuple(e.Cols)
				if !kt.Matches(bound) {
					err = fmt.Errorf("core: edge %s entry %v conflicts with path %v", e.Name, kt, bound)
					return false
				}
				err = walk(child, bound.MustUnion(kt))
				return err == nil
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(r.root, rel.T()); err != nil {
		return nil, err
	}
	// The abstraction function yields a set: decompositions with multiple
	// disjoint subtrees (e.g. the split of Figure 3(b)) represent each
	// tuple once per subtree.
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Compare(tuples[j]) < 0 })
	dedup := tuples[:0]
	for i, t := range tuples {
		if i == 0 || !t.Equal(tuples[i-1]) {
			dedup = append(dedup, t)
		}
	}
	return dedup, nil
}
