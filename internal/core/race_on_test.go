//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. The alloc
// gate skips under -race: instrumentation allocates shadow state per
// synchronization event, which is not the production configuration the
// gate measures.
const raceEnabled = true
