package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rel"
)

// Reference is the executable specification of §2: a relation represented
// directly as a coarsely locked set of tuples, with the four operations
// implemented by their defining equations
//
//	empty  ()      = ref ∅
//	remove r s     = r ← !r \ {t ∈ !r | t ⊇ s}
//	query  r s C   = π_C {t ∈ !r | t ⊇ s}
//	insert r s t   = if ∄u. u ∈ !r ∧ s ⊆ u then r ← !r ∪ {s ∪ t}
//
// Synthesized relations are differentially tested against a Reference, and
// the linearizability checker uses it as the sequential specification.
type Reference struct {
	spec   rel.Spec
	mu     sync.Mutex
	tuples []rel.Tuple
}

// NewReference returns an empty reference relation over spec.
func NewReference(spec rel.Spec) *Reference {
	return &Reference{spec: spec}
}

// Spec returns the relational specification.
func (r *Reference) Spec() rel.Spec { return r.spec }

// Insert adds s ∪ t if no existing tuple extends s, reporting whether the
// insertion happened.
func (r *Reference) Insert(s, t rel.Tuple) (bool, error) {
	x, err := s.Union(t)
	if err != nil {
		return false, err
	}
	if !rel.ColsEqual(x.Dom(), r.spec.Columns) {
		return false, fmt.Errorf("core: insert tuple binds %v, want all of %v", x.Dom(), r.spec.Columns)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, u := range r.tuples {
		if u.Extends(s) {
			return false, nil
		}
	}
	r.tuples = append(r.tuples, x)
	return true, nil
}

// Remove deletes every tuple extending s, reporting whether any was
// removed. Unlike the synthesized implementation, the reference accepts
// any s, not just keys.
func (r *Reference) Remove(s rel.Tuple) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.tuples[:0]
	removed := false
	for _, u := range r.tuples {
		if u.Extends(s) {
			removed = true
			continue
		}
		kept = append(kept, u)
	}
	r.tuples = kept
	return removed, nil
}

// Query returns π_out of every tuple extending s.
func (r *Reference) Query(s rel.Tuple, out ...string) ([]rel.Tuple, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var res []rel.Tuple
	for _, u := range r.tuples {
		if u.Extends(s) {
			res = append(res, u.Project(out))
		}
	}
	return res, nil
}

// Snapshot returns every tuple, sorted for deterministic comparison.
func (r *Reference) Snapshot() ([]rel.Tuple, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]rel.Tuple(nil), r.tuples...)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

// Len returns the number of tuples.
func (r *Reference) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tuples)
}
