package core

import (
	"strings"
	"testing"

	"repro/internal/locks"
	"repro/internal/rel"
)

// TestAuditCatchesUnlockedAccess drives the executor's lookup directly
// with an empty transaction: the §4.2 auditor must reject the access.
func TestAuditCatchesUnlockedAccess(t *testing.T) {
	if !AuditEnabled() {
		t.Skip("audit disabled")
	}
	r := graphVariants()[1].build(t) // stick/fine
	if ok, err := r.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 3)); err != nil || !ok {
		t.Fatal(err)
	}
	defer func() {
		msg := recover()
		if msg == nil {
			t.Fatal("unlocked access passed the audit")
		}
		if !strings.Contains(msg.(string), "audit") {
			t.Fatalf("unexpected panic: %v", msg)
		}
	}()
	b := r.getBuf()
	defer r.putBuf(b)
	row, err := r.schema.RowFromTuple(rel.T("src", 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := b.rootState(r, row, row.Mask())
	e := r.decomp.EdgeByName("ρu")
	// No lock step has run: the lookup must panic in the auditor.
	r.execLookup(b, e, r.edgeCols[e.Index], []*qstate{st})
}

// TestAuditCatchesWrongStripe locks one stripe of the striped root but
// accesses an edge instance whose selector hashes to a different stripe.
func TestAuditCatchesWrongStripe(t *testing.T) {
	if !AuditEnabled() {
		t.Skip("audit disabled")
	}
	r := graphVariants()[2].build(t) // stick/striped: 64 root stripes by src
	if ok, err := r.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 3)); err != nil || !ok {
		t.Fatal(err)
	}
	e := r.decomp.EdgeByName("ρu")
	rule := r.placement.RuleFor(e)
	idx1, ok := r.placement.StripeIndex(rule.At, rule.StripeBy, rel.T("src", 1))
	if !ok {
		t.Fatal("selector should bind")
	}
	other := -1
	for v := 2; v < 1000; v++ {
		if idx, _ := r.placement.StripeIndex(rule.At, rule.StripeBy, rel.T("src", v)); idx != idx1 {
			other = v
			break
		}
	}
	if other < 0 {
		t.Skip("no differing stripe found")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-stripe access passed the audit")
		}
	}()
	b := r.getBuf()
	defer r.putBuf(b)
	idxOther, _ := r.placement.StripeIndex(rule.At, rule.StripeBy, rel.T("src", other))
	b.txn.Acquire([]*locks.Lock{r.root.lock(idxOther)}, locks.Shared, false)
	// Holding the wrong stripe: accessing src=1 must fail the audit.
	row, err := r.schema.RowFromTuple(rel.T("src", 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := b.rootState(r, row, row.Mask())
	r.execLookup(b, e, r.edgeCols[e.Index], []*qstate{st})
}

// TestAuditAcceptsProperOperations is the positive control: the public
// operations run with auditing on throughout this package's test suite
// (see TestMain), so a bare end-to-end smoke here documents the intent.
func TestAuditAcceptsProperOperations(t *testing.T) {
	if !AuditEnabled() {
		t.Skip("audit disabled")
	}
	for _, v := range graphVariants() {
		r := v.build(t)
		if ok, err := r.Insert(rel.T("src", 5, "dst", 6), rel.T("weight", 7)); err != nil || !ok {
			t.Fatalf("%s: %v %v", v.name, ok, err)
		}
		if _, err := r.Query(rel.T("src", 5), "dst", "weight"); err != nil {
			t.Fatal(err)
		}
		if ok, err := r.Remove(rel.T("src", 5, "dst", 6)); err != nil || !ok {
			t.Fatalf("%s: %v %v", v.name, ok, err)
		}
	}
}
