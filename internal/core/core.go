package core
