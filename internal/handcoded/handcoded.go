// Package handcoded is the hand-written comparator of §6.2: a concurrent
// directed graph written the way a careful Go programmer would write it
// by hand, without the synthesizer. Structurally it is "essentially Split
// 4" (the paper's words about its own hand-written Java version): two
// sharded indexes — forward (src → successors) and backward (dst →
// predecessors) — with per-shard read/write locks acquired in a fixed
// global order (all forward shards before all backward shards) so
// cross-index operations cannot deadlock.
package handcoded

import "sync"

const shardCount = 64

type shard struct {
	mu sync.RWMutex
	// adj maps a node to its neighbor→weight map.
	adj map[int64]map[int64]int64
}

// Graph is a hand-written concurrent directed graph with put-if-absent
// edge insertion, keyed edge removal, and successor/predecessor queries.
// The zero value is not usable; call New.
type Graph struct {
	fwd [shardCount]shard
	bwd [shardCount]shard
}

// New returns an empty graph.
func New() *Graph {
	g := &Graph{}
	for i := range g.fwd {
		g.fwd[i].adj = make(map[int64]map[int64]int64)
		g.bwd[i].adj = make(map[int64]map[int64]int64)
	}
	return g
}

func shardOf(node int64) int {
	// Fibonacci hashing spreads sequential ids across shards.
	return int((uint64(node) * 0x9e3779b97f4a7c15) >> 58 % shardCount)
}

// FindSuccessors returns the number of outgoing edges of src.
func (g *Graph) FindSuccessors(src int64) int {
	s := &g.fwd[shardOf(src)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.adj[src])
}

// FindPredecessors returns the number of incoming edges of dst.
func (g *Graph) FindPredecessors(dst int64) int {
	s := &g.bwd[shardOf(dst)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.adj[dst])
}

// InsertEdge inserts (src, dst, weight) unless an edge with the same src
// and dst already exists, reporting whether the insertion happened. Both
// indexes are updated atomically under the two shard locks, always
// acquired forward-index first.
func (g *Graph) InsertEdge(src, dst, weight int64) bool {
	fs := &g.fwd[shardOf(src)]
	bs := &g.bwd[shardOf(dst)]
	fs.mu.Lock()
	bs.mu.Lock()
	defer bs.mu.Unlock()
	defer fs.mu.Unlock()
	if _, dup := fs.adj[src][dst]; dup {
		return false
	}
	if fs.adj[src] == nil {
		fs.adj[src] = make(map[int64]int64)
	}
	fs.adj[src][dst] = weight
	if bs.adj[dst] == nil {
		bs.adj[dst] = make(map[int64]int64)
	}
	bs.adj[dst][src] = weight
	return true
}

// RemoveEdge removes the edge (src, dst) from both indexes, reporting
// whether it existed.
func (g *Graph) RemoveEdge(src, dst int64) bool {
	fs := &g.fwd[shardOf(src)]
	bs := &g.bwd[shardOf(dst)]
	fs.mu.Lock()
	bs.mu.Lock()
	defer bs.mu.Unlock()
	defer fs.mu.Unlock()
	if _, ok := fs.adj[src][dst]; !ok {
		return false
	}
	delete(fs.adj[src], dst)
	if len(fs.adj[src]) == 0 {
		delete(fs.adj, src)
	}
	delete(bs.adj[dst], src)
	if len(bs.adj[dst]) == 0 {
		delete(bs.adj, dst)
	}
	return true
}

// Successors returns a copy of src's successor map (used by tests).
func (g *Graph) Successors(src int64) map[int64]int64 {
	s := &g.fwd[shardOf(src)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[int64]int64, len(s.adj[src]))
	for d, w := range s.adj[src] {
		out[d] = w
	}
	return out
}

// Predecessors returns a copy of dst's predecessor map (used by tests).
func (g *Graph) Predecessors(dst int64) map[int64]int64 {
	s := &g.bwd[shardOf(dst)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[int64]int64, len(s.adj[dst]))
	for sNode, w := range s.adj[dst] {
		out[sNode] = w
	}
	return out
}

// Len returns the total number of edges (forward index).
func (g *Graph) Len() int {
	n := 0
	for i := range g.fwd {
		g.fwd[i].mu.RLock()
		for _, m := range g.fwd[i].adj {
			n += len(m)
		}
		g.fwd[i].mu.RUnlock()
	}
	return n
}
