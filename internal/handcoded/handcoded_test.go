package handcoded

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBasicOps(t *testing.T) {
	g := New()
	if !g.InsertEdge(1, 2, 42) {
		t.Fatal("insert failed")
	}
	if g.InsertEdge(1, 2, 99) {
		t.Fatal("duplicate insert accepted")
	}
	if g.FindSuccessors(1) != 1 || g.FindPredecessors(2) != 1 {
		t.Fatal("counts wrong")
	}
	if w := g.Successors(1)[2]; w != 42 {
		t.Fatalf("weight = %d", w)
	}
	if w := g.Predecessors(2)[1]; w != 42 {
		t.Fatalf("pred weight = %d", w)
	}
	if !g.RemoveEdge(1, 2) {
		t.Fatal("remove failed")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatal("double remove succeeded")
	}
	if g.Len() != 0 {
		t.Fatal("graph not empty")
	}
}

func TestIndexesStayInSync(t *testing.T) {
	g := New()
	r := rand.New(rand.NewSource(5))
	type edge struct{ s, d int64 }
	model := map[edge]int64{}
	for i := 0; i < 5000; i++ {
		s, d := int64(r.Intn(50)), int64(r.Intn(50))
		if r.Intn(2) == 0 {
			w := int64(r.Intn(1000))
			ins := g.InsertEdge(s, d, w)
			_, had := model[edge{s, d}]
			if ins == had {
				t.Fatalf("step %d: insert=%v but model had=%v", i, ins, had)
			}
			if ins {
				model[edge{s, d}] = w
			}
		} else {
			rm := g.RemoveEdge(s, d)
			_, had := model[edge{s, d}]
			if rm != had {
				t.Fatalf("step %d: remove=%v but model had=%v", i, rm, had)
			}
			delete(model, edge{s, d})
		}
	}
	if g.Len() != len(model) {
		t.Fatalf("Len=%d model=%d", g.Len(), len(model))
	}
	// Forward and backward agree with the model.
	for e, w := range model {
		if g.Successors(e.s)[e.d] != w {
			t.Fatalf("fwd missing %v", e)
		}
		if g.Predecessors(e.d)[e.s] != w {
			t.Fatalf("bwd missing %v", e)
		}
	}
}

func TestConcurrentNoDeadlockAndCoherent(t *testing.T) {
	g := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				s, d := int64(r.Intn(20)), int64(r.Intn(20))
				switch r.Intn(4) {
				case 0:
					g.InsertEdge(s, d, int64(i))
				case 1:
					g.RemoveEdge(s, d)
				case 2:
					g.FindSuccessors(s)
				default:
					g.FindPredecessors(d)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	// Quiescent: forward and backward indexes agree edge for edge.
	fwd := map[[2]int64]int64{}
	for s := int64(0); s < 20; s++ {
		for d, w := range g.Successors(s) {
			fwd[[2]int64{s, d}] = w
		}
	}
	bwd := map[[2]int64]int64{}
	for d := int64(0); d < 20; d++ {
		for s, w := range g.Predecessors(d) {
			bwd[[2]int64{s, d}] = w
		}
	}
	if len(fwd) != len(bwd) {
		t.Fatalf("index sizes diverge: %d vs %d", len(fwd), len(bwd))
	}
	for e, w := range fwd {
		if bwd[e] != w {
			t.Fatalf("edge %v weight fwd=%d bwd=%d", e, w, bwd[e])
		}
	}
}
