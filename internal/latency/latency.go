// Package latency is a fixed-bucket log-scale histogram for recording
// latencies (or any non-negative int64 values, e.g. window occupancies)
// on hot paths. Recording is one atomic increment into a fixed array —
// no allocation, no locks — so many goroutines can record into one
// histogram concurrently and histograms merge lock-free by bucket-wise
// addition. Quantiles are deterministic: a bucket's reported value is
// its inclusive upper bound, so the same fills always produce the same
// quantiles, which is what lets tests assert them exactly.
//
// Bucket layout: values below subCount (16) get exact unit buckets;
// above that, each power of two is split into subCount linear
// sub-buckets, bounding the relative rounding error of any reported
// quantile at 1/subCount (6.25%). The full int64 range fits in 960
// buckets (~7.5 KiB of counters per histogram).
package latency

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits is the per-octave resolution: 2^subBits linear sub-buckets
	// per power of two.
	subBits  = 4
	subCount = 1 << subBits
	// numBuckets covers [0, 2^63): subCount exact unit buckets, then
	// subCount sub-buckets for each exponent subBits..62.
	numBuckets = (63 - subBits + 1) * subCount
)

// Histogram is a concurrent fixed-bucket log-scale histogram. The zero
// value is ready to use; copying a Histogram that is being recorded into
// is not (use Merge into a fresh one instead).
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Uint64
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subCount {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v)) // subBits..62
	scale := exp - subBits
	sub := int(uint64(v)>>uint(scale)) & (subCount - 1)
	return (exp-subBits+1)*subCount + sub
}

// bucketUpper is the inclusive upper bound of bucket idx — the value
// Quantile reports for it.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	exp := subBits + idx/subCount - 1
	scale := uint(exp - subBits)
	sub := uint64(idx % subCount)
	return int64(((subCount + sub + 1) << scale) - 1) // top bucket: 2^63-1 exactly
}

// BucketBounds reports the inclusive [lo, hi] range of the bucket a
// value lands in. Exported for tests and for documenting the resolution
// contract: hi-lo+1 is at most max(1, v/subCount) rounded to a power of
// two, so any reported quantile is within 1/subCount of a recorded
// value. Negative values clamp to 0.
func BucketBounds(v int64) (lo, hi int64) {
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	hi = bucketUpper(idx)
	if idx < subCount {
		return hi, hi
	}
	exp := subBits + idx/subCount - 1
	scale := uint(exp - subBits)
	sub := uint64(idx % subCount)
	return int64((subCount + sub) << scale), hi
}

// RecordValue folds one non-negative value into the histogram.
// Negative values clamp to 0 (a latency measured across a clock step
// should count as instantaneous, not vanish).
func (h *Histogram) RecordValue(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(uint64(v))
}

// Record folds one duration into the histogram (in nanoseconds).
func (h *Histogram) Record(d time.Duration) { h.RecordValue(int64(d)) }

// Merge adds o's counts into h bucket-wise. Both histograms may be
// concurrently recorded into during the merge; the result is some valid
// interleaving (each recorded value lands in exactly one histogram's
// totals). Merging is associative and commutative, so per-worker
// histograms can be folded in any order.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o == h {
		return
	}
	for i := range o.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.n.Add(o.n.Load())
	h.sum.Add(o.sum.Load())
}

// Count reports how many values have been recorded.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Mean reports the exact arithmetic mean of the recorded values (the
// running sum is kept outside the buckets, so the mean does not suffer
// bucket rounding). Zero when empty.
func (h *Histogram) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile reports the q-quantile (q in (0, 1]) as the inclusive upper
// bound of the lowest bucket whose cumulative count reaches
// ceil(q·Count) — deterministic for a given fill, monotone in q, and
// never below a recorded value of that rank. q outside (0, 1] clamps;
// an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 1 / float64(total) // the minimum's rank
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if float64(rank) < q*float64(total) { // ceil
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	// Concurrent recording can grow n between the Load above and the
	// walk; the largest occupied bucket is then the honest answer.
	for i := numBuckets - 1; i >= 0; i-- {
		if h.counts[i].Load() > 0 {
			return bucketUpper(i)
		}
	}
	return 0
}

// QuantileDuration is Quantile for duration-valued histograms.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// Summary is the compact serializable digest of a histogram: the count,
// exact mean, and the standard tail quantiles, all in the recorded unit
// (nanoseconds for Record, dimensionless for RecordValue).
type Summary struct {
	// Count is the number of recorded values.
	Count uint64 `json:"count"`
	// Mean is the exact arithmetic mean.
	Mean float64 `json:"mean"`
	// P50, P95 and P99 are deterministic bucket-upper-bound quantiles.
	P50 int64 `json:"p50"`
	P95 int64 `json:"p95"`
	P99 int64 `json:"p99"`
	// Max is the 100th percentile (the largest occupied bucket's upper
	// bound).
	Max int64 `json:"max"`
}

// Summarize digests the histogram; nil when nothing has been recorded
// (so JSON-embedded summaries disappear instead of reporting zeros).
func (h *Histogram) Summarize() *Summary {
	n := h.Count()
	if n == 0 {
		return nil
	}
	return &Summary{
		Count: n,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Quantile(1),
	}
}

// String renders the digest for logs.
func (s *Summary) String() string {
	if s == nil {
		return "empty"
	}
	return fmt.Sprintf("n=%d mean=%.0f p50=%d p95=%d p99=%d max=%d",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}
