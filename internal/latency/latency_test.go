package latency

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestExactSmallValues(t *testing.T) {
	h := New()
	// Values below 16 are exact: fill 0..15 once each.
	for v := int64(0); v < 16; v++ {
		h.RecordValue(v)
	}
	if got := h.Count(); got != 16 {
		t.Fatalf("Count = %d, want 16", got)
	}
	if got := h.Quantile(0.5); got != 7 {
		t.Fatalf("p50 of 0..15 = %d, want 7", got)
	}
	if got := h.Quantile(1); got != 15 {
		t.Fatalf("max of 0..15 = %d, want 15", got)
	}
	if got := h.Quantile(0.0001); got != 0 {
		t.Fatalf("min of 0..15 = %d, want 0", got)
	}
	if got := h.Mean(); got != 7.5 {
		t.Fatalf("Mean = %v, want 7.5", got)
	}
}

func TestQuantileBucketUpperBound(t *testing.T) {
	h := New()
	// 1000 lands in the bucket [992, 1023] (exp=9, scale=5, sub=15):
	// every quantile must report the bucket's upper bound 1023.
	h.RecordValue(1000)
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 1023 {
			t.Fatalf("Quantile(%v) of {1000} = %d, want 1023", q, got)
		}
	}
	lo, hi := BucketBounds(1000)
	if lo != 992 || hi != 1023 {
		t.Fatalf("BucketBounds(1000) = [%d, %d], want [992, 1023]", lo, hi)
	}
	// Mean stays exact even though the quantile rounds up.
	if got := h.Mean(); got != 1000 {
		t.Fatalf("Mean = %v, want 1000", got)
	}
}

func TestQuantileKnownFill(t *testing.T) {
	h := New()
	// 100 copies of 1, then one copy of 1<<20. p50/p95 sit in the value-1
	// bucket; p99 rank is ceil(0.99*101) = 100, still value 1; max is the
	// upper bound of the 1<<20 bucket (exactly a power of two: sub=0, so
	// upper = 17<<16 - 1).
	for i := 0; i < 100; i++ {
		h.RecordValue(1)
	}
	h.RecordValue(1 << 20)
	if got := h.Quantile(0.50); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	if got := h.Quantile(0.99); got != 1 {
		t.Fatalf("p99 = %d, want 1", got)
	}
	wantMax := int64(17<<16 - 1)
	if got := h.Quantile(1); got != wantMax {
		t.Fatalf("max = %d, want %d", got, wantMax)
	}
}

func TestNegativeClampsToZero(t *testing.T) {
	h := New()
	h.RecordValue(-5)
	h.Record(-3 * time.Nanosecond)
	if got := h.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if got := h.Quantile(1); got != 0 {
		t.Fatalf("max = %d, want 0", got)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := New()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if s := h.Summarize(); s != nil {
		t.Fatalf("Summarize of empty = %+v, want nil", s)
	}
	if got := (*Summary)(nil).String(); got != "empty" {
		t.Fatalf("nil Summary.String() = %q", got)
	}
}

func TestMergeAssociativity(t *testing.T) {
	fill := func(h *Histogram, seed int64, n int) {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			h.RecordValue(r.Int63n(1 << 30))
		}
	}
	// (a ⊕ b) ⊕ c  must equal  a ⊕ (b ⊕ c).
	mk := func(seed int64) *Histogram { h := New(); fill(h, seed, 500); return h }

	left := New()
	left.Merge(mk(1))
	left.Merge(mk(2))
	left.Merge(mk(3))

	bc := mk(2)
	bc.Merge(mk(3))
	right := mk(1)
	right.Merge(bc)

	if left.Count() != right.Count() {
		t.Fatalf("counts differ: %d vs %d", left.Count(), right.Count())
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		if l, r := left.Quantile(q), right.Quantile(q); l != r {
			t.Fatalf("Quantile(%v): %d vs %d", q, l, r)
		}
	}
	if l, r := left.Mean(), right.Mean(); math.Abs(l-r) > 1e-6 {
		t.Fatalf("means differ: %v vs %v", l, r)
	}
	// Self- and nil-merge are no-ops.
	before := left.Count()
	left.Merge(left)
	left.Merge(nil)
	if left.Count() != before {
		t.Fatalf("self/nil merge changed count: %d -> %d", before, left.Count())
	}
}

func TestConcurrentRecord(t *testing.T) {
	const workers = 8
	const perWorker = 5000
	h := New()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.RecordValue(r.Int63n(1 << 40))
			}
		}(int64(w + 1))
	}
	// Concurrent readers must not race with recorders.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Quantile(0.99)
			_ = h.Summarize()
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("Count = %d, want %d", got, workers*perWorker)
	}
	s := h.Summarize()
	if s == nil || s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Fatalf("quantiles not monotone: %s", s)
	}
}

func TestBucketBoundsQuickCheck(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	check := func(v int64) {
		lo, hi := BucketBounds(v)
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket [%d, %d]", v, lo, hi)
		}
		if lo > hi {
			t.Fatalf("inverted bucket [%d, %d] for %d", lo, hi, v)
		}
		// Relative error contract: the reported quantile (hi) overshoots
		// the recorded value by at most 1/16 ≈ 6.25%.
		if v >= 16 && float64(hi-v) > float64(v)/16 {
			t.Fatalf("bucket upper %d overshoots %d by more than 1/16", hi, v)
		}
	}
	// Edges: zero, exact-bucket boundary, powers of two and neighbors, max.
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 959, 960, 1023,
		1 << 20, 1<<20 - 1, 1<<20 + 1, math.MaxInt64, math.MaxInt64 - 1} {
		check(v)
	}
	for i := 0; i < 20000; i++ {
		// Bias across magnitudes: pick a random bit width, then a value.
		width := uint(r.Intn(63)) + 1
		check(r.Int63() & (1<<width - 1))
	}
	// Every recorded value's quantile report stays inside its own bucket.
	h := New()
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1 << 35)
		h2 := New()
		h2.RecordValue(v)
		_, hi := BucketBounds(v)
		if got := h2.Quantile(1); got != hi {
			t.Fatalf("singleton Quantile(1) of %d = %d, want bucket upper %d", v, got, hi)
		}
		_ = h
	}
}

func TestRecordDuration(t *testing.T) {
	h := New()
	h.Record(500 * time.Microsecond)
	lo, hi := BucketBounds(int64(500 * time.Microsecond))
	if got := h.QuantileDuration(0.99); int64(got) != hi {
		t.Fatalf("QuantileDuration = %v, want bucket upper %v (bucket [%d, %d])",
			got, time.Duration(hi), lo, hi)
	}
}
