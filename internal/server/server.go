package server

// The HTTP+JSON front end: a thin codec layer over the Dispatcher. Every
// data-path handler funnels into Dispatcher.Submit, so whether a request
// arrived via POST /v1/txn or one of the single-op conveniences, it
// coalesces with whatever else the window holds. cmd/crsd is a flag
// wrapper around New + ListenAndServe; tests start the same Server
// in-process on a random port.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
)

// Server serves a registry over HTTP: the transaction endpoint, single-op
// conveniences, and introspection.
//
//	POST /v1/txn       {"ops":[{"op":"insert","rel":"posts","s":{...},"t":{...}}, ...]}
//	POST /v1/insert    {"rel":"posts","s":{...},"t":{...}}
//	POST /v1/remove    {"rel":"posts","s":{...}}
//	POST /v1/count     {"rel":"posts","s":{...}}
//	POST /v1/query     {"rel":"posts","s":{...},"out":["post","ts"]}
//	GET  /v1/stats     dispatcher counters (coalescing statistics)
//	GET  /v1/relations registered relations and their columns
//	GET  /healthz      liveness
//
// Data-path replies are Response documents; errors are
// {"error":"..."} with status 400 (invalid request), 503 (shutting
// down) or 405 (wrong method).
type Server struct {
	disp *Dispatcher
	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener
}

// New builds a Server over reg with the given dispatcher configuration.
// Start or ListenAndServe make it accept connections.
func New(reg *core.Registry, cfg Config) *Server {
	s := &Server{disp: NewDispatcher(reg, cfg)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/txn", s.handleTxn)
	s.mux.HandleFunc("POST /v1/insert", s.handleSingle(OpInsert))
	s.mux.HandleFunc("POST /v1/remove", s.handleSingle(OpRemove))
	s.mux.HandleFunc("POST /v1/count", s.handleSingle(OpCount))
	s.mux.HandleFunc("POST /v1/query", s.handleSingle(OpQuery))
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/relations", func(w http.ResponseWriter, r *http.Request) {
		type relInfo struct {
			Name    string   `json:"name"`
			Columns []string `json:"columns"`
		}
		var out []relInfo
		for _, rel := range reg.Relations() {
			out = append(out, relInfo{Name: rel.Name(), Columns: rel.Spec().Columns})
		}
		writeJSON(w, http.StatusOK, out)
	})
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.http = &http.Server{Handler: s.mux}
	return s
}

// Dispatcher exposes the server's dispatcher (tests and benchmarks read
// its Stats and drive Flush during shutdown scenarios).
func (s *Server) Dispatcher() *Dispatcher { return s.disp }

// Registry exposes the served registry — quiescent inspection only
// (tests checksum the final relation contents after a run).
func (s *Server) Registry() *core.Registry { return s.disp.reg }

// Start listens on addr ("host:port"; port 0 picks a free one) and
// serves in a background goroutine. Addr reports the bound address.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() {
		// ErrServerClosed is the normal Shutdown result; anything else
		// would surface via failing requests, which the callers observe.
		_ = s.http.Serve(ln)
	}()
	return nil
}

// ListenAndServe listens on addr and serves until Shutdown — the
// foreground variant cmd/crsd runs.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	err = s.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Addr returns the bound listen address (valid after Start /
// ListenAndServe).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains gracefully: it stops accepting connections, then keeps
// flushing the dispatcher window while in-flight handlers finish — a
// request parked in a half-full window is committed and answered rather
// than waiting out the timer or being dropped — and finally closes the
// dispatcher. After Shutdown every accepted request has received its
// reply.
func (s *Server) Shutdown(ctx context.Context) error {
	done := make(chan error, 1)
	go func() { done <- s.http.Shutdown(ctx) }()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case err := <-done:
			s.disp.Close()
			return err
		case <-tick.C:
			s.disp.Flush()
		}
	}
}

// handleTxn decodes a Request document, submits it, and writes the
// Response.
func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.submit(w, &req)
}

// handleSingle adapts the single-op conveniences: the body is one Op
// without its "op" field (the route provides the kind), submitted as a
// one-member transaction.
func (s *Server) handleSingle(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var op Op
		if err := decodeBody(r, &op); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		op.Kind = kind
		s.submit(w, &Request{Ops: []Op{op}})
	}
}

// submit runs the shared submit-and-reply tail of the data-path handlers.
func (s *Server) submit(w http.ResponseWriter, req *Request) {
	resp, err := s.disp.Submit(req)
	switch {
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

// handleStats reports the dispatcher's coalescing counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.disp.Stats())
}

// decodeBody decodes a JSON request body with UseNumber (so integer keys
// reach the relational layer as int64, not float64), rejecting trailing
// garbage.
func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes an {"error": ...} document.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
