package server_test

// End-to-end tests for the adaptive mode: live representation migration
// under real HTTP traffic. The first test is the in-process equivalent
// of `crsd -adapt` — a registry booted on the conservative
// non-concurrent containers, clients streaming unique-key inserts plus
// a read-heavy query load, and the online advisor migrating the hot
// relation to its concurrent archetypes mid-stream. The contract is the
// issue's acceptance line: the migration event shows up in GET
// /v1/stats, and no acknowledged request is dropped or duplicated
// across the cutover. The second test crosses migration with the WAL:
// a child server churns migrations under traffic and is SIGKILLed, and
// recovery must still satisfy acked ⊆ recovered ⊆ issued.

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/workload"
)

// adaptKey identifies one unique-key insert across ack/recovery maps.
type adaptKey struct{ author, post int64 }

// TestE2EAdaptMigratesUnderTraffic boots the pessimistic social
// registry behind a real server, drives a read-heavy unique-key load
// from several HTTP clients, and steps the online advisor until it
// live-migrates the hot relation — while the clients keep streaming.
// Afterwards: the relation is optimistic-capable, /v1/stats carries the
// migration event, every acknowledged insert is present exactly once,
// and nothing unissued appears.
func TestE2EAdaptMigratesUnderTraffic(t *testing.T) {
	const (
		clients      = 3
		readsPerIns  = 4
		minAcksFirst = 60 // total acks before the advisor starts stepping
		postRounds   = 20 // per client, after the migration lands
	)
	soc, err := workload.NewSocialPessimistic()
	if err != nil {
		t.Fatal(err)
	}
	if soc.Posts.OptimisticCapable() {
		t.Fatal("pessimistic boot rep is already optimistic-capable")
	}
	srv := server.New(soc.Reg, server.Config{Window: 100 * time.Microsecond})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + srv.Addr()

	acked := make([]map[adaptKey]bool, clients)
	issued := make([]map[adaptKey]bool, clients)
	var ackTotal atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		acked[c] = make(map[adaptKey]bool)
		issued[c] = make(map[adaptKey]bool)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(base)
			for i := 0; !stop.Load(); i++ {
				k := adaptKey{author: int64(1000 + c), post: int64(c*1_000_000 + i)}
				issued[c][k] = true
				applied, err := cl.Insert(context.Background(), "posts",
					map[string]any{"author": k.author, "post": k.post},
					map[string]any{"ts": int64(i)})
				if err != nil {
					t.Errorf("client %d insert %v: %v", c, k, err)
					return
				}
				if !applied {
					t.Errorf("client %d: unique insert %v not applied (duplicate?)", c, k)
					return
				}
				acked[c][k] = true
				ackTotal.Add(1)
				for r := 0; r < readsPerIns; r++ {
					if _, err := cl.Count(context.Background(), "posts", map[string]any{"author": k.author}); err != nil {
						t.Errorf("client %d count: %v", c, err)
						return
					}
				}
			}
		}(c)
	}
	fail := func(format string, args ...any) {
		t.Helper()
		stop.Store(true)
		wg.Wait()
		t.Fatalf(format, args...)
	}

	// Warm up: the advisor refuses to migrate below MinOps, so wait for
	// real traffic before stepping it.
	deadline := time.Now().Add(20 * time.Second)
	for ackTotal.Load() < minAcksFirst {
		if time.Now().After(deadline) {
			fail("only %d acks before warm-up deadline", ackTotal.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// Step the advisor by hand (deterministic — no Interval goroutine)
	// with the traffic still flowing; the read-heavy mix must trigger
	// exactly one migration of posts to the concurrent family.
	cfg := autotune.Config{MinOps: 100, Margin: 0.05, Members: 1}
	adv := &autotune.Advisor{Registry: soc.Reg, Config: cfg}
	var events []*core.MigrationEvent
	for time.Now().Before(deadline) && len(events) == 0 {
		evs, err := adv.Step()
		if err != nil {
			fail("advisor step: %v", err)
		}
		events = append(events, evs...)
	}
	if len(events) != 1 {
		fail("advisor triggered %d migrations, want 1", len(events))
	}
	ev := events[0]
	if ev.Relation != "posts" || !ev.OptimisticAfter || ev.OptimisticBefore {
		fail("migration event = %+v", ev)
	}
	if !soc.Posts.OptimisticCapable() {
		fail("posts not optimistic-capable after advisor migration")
	}

	// Keep the streams running across the new representation, then stop.
	want := ackTotal.Load() + clients*postRounds
	for ackTotal.Load() < want {
		if time.Now().After(deadline) {
			fail("post-migration traffic stalled at %d acks", ackTotal.Load())
		}
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// The acceptance check: /v1/stats re-serializes the harvested
	// counter document, migrations included.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Registry *core.Counters `json:"registry"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Registry == nil || len(stats.Registry.Migrations) != 1 {
		t.Fatalf("stats.registry.migrations = %+v, want the one advisor event", stats.Registry)
	}
	got := stats.Registry.Migrations[0]
	if got.Relation != "posts" || !got.OptimisticAfter || got.From == got.To {
		t.Fatalf("served migration event = %+v", got)
	}

	// No dropped, no duplicated acknowledged requests: the final state
	// holds every acked unique key exactly once (the relation's FD makes
	// duplicates impossible; `applied` above catches re-execution), and
	// nothing that was never issued.
	tuples, err := soc.Posts.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[adaptKey]bool, len(tuples))
	for _, tp := range tuples {
		k := adaptKey{author: tp.MustGet("author").(int64), post: tp.MustGet("post").(int64)}
		if present[k] {
			t.Fatalf("row %v present twice after migration", k)
		}
		present[k] = true
	}
	for c := 0; c < clients; c++ {
		for k := range acked[c] {
			if !present[k] {
				t.Errorf("acked insert %v lost across the migration", k)
			}
		}
	}
	for k := range present {
		c := int(k.author - 1000)
		if c < 0 || c >= clients || !issued[c][k] {
			t.Errorf("row %v was never issued", k)
		}
	}
}

// TestE2EKillDuringMigrationChurn crosses live migration with the
// durability contract: the WAL-enabled child server continuously
// migrates posts and follows between container families while clients
// stream unique-key inserts, and the parent SIGKILLs it only after
// observing completed migrations in /v1/stats — so the kill provably
// lands amid churn. The representation choice is not persisted, so
// recovery rebuilds the boot rep (old or new, never a mix) and must
// still hold acked ⊆ recovered ⊆ issued.
func TestE2EKillDuringMigrationChurn(t *testing.T) {
	const (
		clients       = 4
		minAcked      = 5 // per client, before the kill fires
		minMigrations = 2 // completed in the child before the kill fires
	)
	dir := t.TempDir()
	cs := startCrashServer(t, dir, crashServerEnvMigrate+"=1")

	acked := make([]map[adaptKey]bool, clients)
	issued := make([]map[adaptKey]bool, clients)
	var ackTotal atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		acked[c] = make(map[adaptKey]bool)
		issued[c] = make(map[adaptKey]bool)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(cs.base)
			for i := 0; ; i++ {
				k := adaptKey{author: int64(1000 + c), post: int64(c*1_000_000 + i)}
				issued[c][k] = true
				applied, err := cl.Insert(context.Background(), "posts",
					map[string]any{"author": k.author, "post": k.post},
					map[string]any{"ts": int64(i)})
				if err != nil {
					return // the kill severed this request
				}
				if !applied {
					t.Errorf("client %d: unique insert %v not applied", c, k)
					return
				}
				acked[c][k] = true
				ackTotal.Add(1)
			}
		}(c)
	}

	// Kill only once the child has both acknowledged traffic in flight
	// AND completed migrations under that traffic.
	statsCl := client.New(cs.base)
	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("child not churning: %d acks", ackTotal.Load())
		}
		if ackTotal.Load() >= clients*minAcked {
			if st, err := statsCl.Stats(context.Background()); err == nil &&
				st.Registry != nil && len(st.Registry.Migrations) >= minMigrations {
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	cs.kill(t)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	rsoc, _ := recoverRegistry(t, dir)
	tuples, err := rsoc.Posts.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[adaptKey]bool, len(tuples))
	for _, tp := range tuples {
		k := adaptKey{author: tp.MustGet("author").(int64), post: tp.MustGet("post").(int64)}
		if present[k] {
			t.Fatalf("row %v recovered twice", k)
		}
		present[k] = true
	}
	for c := 0; c < clients; c++ {
		for k := range acked[c] {
			if !present[k] {
				t.Errorf("acked insert %v lost by the crash during migration churn", k)
			}
		}
	}
	for k := range present {
		if !issued[k.author-1000][k] {
			t.Errorf("recovered row %v was never issued", k)
		}
	}
}
