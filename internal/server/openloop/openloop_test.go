package openloop_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/openloop"
	"repro/internal/workload"
)

// startServer runs a crsd over a fresh social registry on a random port.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(workload.MustSocial().Reg, cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, "http://" + srv.Addr()
}

// config builds the standard test run: Poisson arrivals, disjoint
// per-client key partitions.
func config(base string, clients, requests int, mean time.Duration) openloop.Config {
	return openloop.Config{
		BaseURL:  base,
		Clients:  clients,
		Requests: requests,
		InFlight: 32,
		NewArrivals: func(c int) workload.ArrivalGen {
			return workload.NewPoissonArrivals(uint64(c+1), mean)
		},
		NewTraffic: func(c int) *server.SocialTraffic {
			return server.NewSocialTraffic(uint64(c+1), workload.DefaultSocialMix(), 24, int64(clients), int64(c))
		},
	}
}

// TestOpenLoopCompletesAll pins the healthy path: an uncontended server
// completes every scheduled arrival, the accounting identity holds, and
// the client-side histogram counts exactly the successes. The server's
// own commit-latency count, fetched over /v1/stats, must match the
// client's send count — the cross-check the Stats counters exist for.
func TestOpenLoopCompletesAll(t *testing.T) {
	const clients, requests = 3, 25
	_, base := startServer(t, server.Config{Window: 200 * time.Microsecond, MaxBatch: 16})
	res, err := openloop.Run(config(base, clients, requests, 300*time.Microsecond))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	st, err := client.New(base).Stats(context.Background())
	if err != nil {
		t.Fatalf("stats: %v", err)
	}

	if res.Scheduled != clients*requests {
		t.Fatalf("scheduled %d, want %d", res.Scheduled, clients*requests)
	}
	if res.Dropped != 0 || res.Errors != 0 {
		t.Fatalf("uncontended run dropped %d, errored %d", res.Dropped, res.Errors)
	}
	if res.Sent != res.Scheduled {
		t.Fatalf("sent %d of %d scheduled", res.Sent, res.Scheduled)
	}
	if got := res.Latency.Count(); got != uint64(res.Sent) {
		t.Fatalf("latency histogram holds %d samples, want %d", got, res.Sent)
	}
	if res.OfferedPerSec <= 0 || res.AchievedPerSec <= 0 {
		t.Fatalf("throughput not reported: offered %.0f achieved %.0f", res.OfferedPerSec, res.AchievedPerSec)
	}

	// Server-side cross-check over the wire: the dispatcher committed
	// exactly the sent requests, its commit-latency histogram saw each
	// one, and the occupancy digest agrees with the batch counters.
	if st.Requests != uint64(res.Sent) {
		t.Fatalf("server committed %d, client sent %d", st.Requests, res.Sent)
	}
	if st.CommitLatency == nil || st.CommitLatency.Count != uint64(res.Sent) {
		t.Fatalf("server commit-latency digest %v, want count %d", st.CommitLatency, res.Sent)
	}
	if st.WindowOccupancy == nil || st.WindowOccupancy.Count != st.Batches {
		t.Fatalf("window-occupancy digest %v, want one sample per batch (%d)", st.WindowOccupancy, st.Batches)
	}
	occMean := st.WindowOccupancy.Mean
	if diff := occMean - st.MeanBatchSize; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("occupancy mean %.4f != mean batch size %.4f", occMean, st.MeanBatchSize)
	}
	// Server-side commit latency can never exceed the client's view of
	// the same requests (the client clock starts at the scheduled
	// arrival, before the request even reaches the dispatcher).
	if cp99, sp99 := res.Latency.Quantile(0.99), st.CommitLatency.P99; sp99 > 4*cp99 && cp99 > 0 {
		t.Fatalf("server p99 %dns wildly above client p99 %dns", sp99, cp99)
	}
	if res.Checksum == 0 {
		t.Fatal("no reply folded into the checksum — did anything commit?")
	}
}

// TestOpenLoopDropAccounting forces overload: an in-flight cap of 1
// against a window that outlives the per-request timeout. The schedule
// must keep firing — arrivals past the cap are dropped, not queued — and
// Scheduled = Sent + Dropped must hold exactly, with the timed-out sends
// visible as errors rather than silent stalls.
func TestOpenLoopDropAccounting(t *testing.T) {
	// A window far longer than the client timeout, MaxBatch too high to
	// close on count: every sent request parks until its context expires.
	_, base := startServer(t, server.Config{Window: 30 * time.Second, MaxBatch: 1000})
	cfg := config(base, 1, 20, 50*time.Microsecond)
	cfg.InFlight = 1
	cfg.Timeout = 100 * time.Millisecond
	res, err := openloop.Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Sent+res.Dropped != res.Scheduled {
		t.Fatalf("accounting: %d sent + %d dropped != %d scheduled", res.Sent, res.Dropped, res.Scheduled)
	}
	if res.Dropped == 0 {
		t.Fatal("cap 1 against a parked window dropped nothing — the driver is closed-loop")
	}
	if res.Errors == 0 {
		t.Fatal("requests parked past their deadline reported no errors")
	}
	if got := res.Latency.Count(); got != uint64(res.Sent-res.Errors) {
		t.Fatalf("latency histogram holds %d samples, want successes only (%d)", got, res.Sent-res.Errors)
	}
}

// TestOpenLoopWindowHookStress is the -race stress: deterministic window
// boundaries via server.SetWindowHook (close at exactly 4 parked), a
// background flusher releasing stragglers, bursty arrivals, and every
// accounting identity checked at the end.
func TestOpenLoopWindowHookStress(t *testing.T) {
	const clients, requests = 4, 40
	server.SetWindowHook(func(pending int) bool { return pending >= 4 })
	defer server.SetWindowHook(nil)

	srv, base := startServer(t, server.Config{})
	// The hook arms no timer, so a tail of fewer than 4 parked requests
	// would wait forever; the flusher is their release valve.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				srv.Dispatcher().Flush()
			}
		}
	}()

	cfg := openloop.Config{
		BaseURL:  base,
		Clients:  clients,
		Requests: requests,
		InFlight: 16,
		NewArrivals: func(c int) workload.ArrivalGen {
			return workload.NewBurstyArrivals(uint64(c+1), 8, 2*time.Millisecond)
		},
		NewTraffic: func(c int) *server.SocialTraffic {
			return server.NewSocialTraffic(uint64(c+1), workload.DefaultSocialMix(), 24, int64(clients), int64(c))
		},
	}
	res, err := openloop.Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Sent+res.Dropped != res.Scheduled {
		t.Fatalf("accounting: %d sent + %d dropped != %d scheduled", res.Sent, res.Dropped, res.Scheduled)
	}
	if res.Errors != 0 {
		t.Fatalf("healthy stress errored %d times", res.Errors)
	}
	if got := res.Latency.Count(); got != uint64(res.Sent) {
		t.Fatalf("latency histogram holds %d samples, want %d", got, res.Sent)
	}
	st := srv.Dispatcher().Stats()
	if st.Requests != uint64(res.Sent) {
		t.Fatalf("server committed %d, client sent %d", st.Requests, res.Sent)
	}
}
