// Package openloop is the arrival-driven load driver for crsd: K HTTP
// clients each fire requests on their own ArrivalGen schedule instead of
// blocking on round-trips. That open-loop discipline is what makes tail
// latency honest — a closed-loop (lockstep) client stops generating load
// the moment the server slows down, silently excusing the stall from the
// measurement (coordinated omission). Here every request has a SCHEDULED
// arrival time fixed by the generator alone; latency is measured from
// that scheduled instant to completion, so a slow reply also charges the
// requests queued behind it.
//
// Overload never silently re-closes the loop: each client caps its
// in-flight requests, and an arrival that finds the cap exhausted is
// counted as a dropped send — visible in Result.Dropped — rather than
// blocking the schedule. Offered vs achieved throughput plus the drop
// and error counts make saturation explicit in every report.
package openloop

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/latency"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/workload"
)

// Config parameterizes one open-loop run.
type Config struct {
	// BaseURL is the crsd server root the clients fire at.
	BaseURL string
	// Clients is how many independent open-loop clients run (K).
	Clients int
	// Requests is the schedule length per client.
	Requests int
	// InFlight caps each client's concurrent outstanding requests; an
	// arrival past the cap is dropped (and counted), never queued. Zero
	// means 1.
	InFlight int
	// Timeout bounds each request via its context; zero means no
	// per-request deadline beyond the HTTP client's own.
	Timeout time.Duration
	// NewArrivals builds client c's arrival schedule. The generator is
	// Reset and replayed internally, so it must be freshly seeded (or
	// reset) when handed over.
	NewArrivals func(c int) workload.ArrivalGen
	// NewTraffic builds client c's deterministic request stream.
	NewTraffic func(c int) *server.SocialTraffic
}

// Result is one run's account: the schedule (offered) side and the
// completion (achieved) side, plus the coordinated-omission-free latency
// histogram merged across clients.
type Result struct {
	// Elapsed is the wall time from first scheduled arrival to last
	// completion.
	Elapsed time.Duration
	// Scheduled is Clients×Requests — every arrival the generators
	// produced, sent or not.
	Scheduled int
	// Sent is how many arrivals acquired an in-flight slot and went out.
	Sent int
	// Dropped is how many arrivals found the in-flight cap exhausted.
	// Scheduled = Sent + Dropped always.
	Dropped int
	// Errors is how many sent requests failed (timeout, refused, 5xx).
	Errors int
	// Checksum folds every successful reply (server.FoldResponse). The
	// fold is order-independent, but reply CONTENTS can vary run to run:
	// a client with InFlight > 1 races itself, so its own requests may
	// commit out of schedule order. The checksum is a liveness
	// cross-check (work really committed), not an oracle.
	Checksum uint64
	// OfferedPerSec is the schedule's aggregate arrival rate: per
	// client, Requests divided by the schedule span the generator
	// dictates, summed over clients — a property of the generators, not
	// of the server.
	OfferedPerSec float64
	// AchievedPerSec is successful completions divided by Elapsed.
	AchievedPerSec float64
	// Latency is the merged histogram of completion − scheduled-arrival
	// times (nanoseconds) for successful requests. Scheduled time, not
	// send time: a request delayed by the cap or by the scheduler still
	// charges its full lateness.
	Latency *latency.Histogram
}

// Run executes one open-loop pass and blocks until every in-flight
// request resolves. The schedule replays deterministically (generators
// are Reset before use); completions and drops depend on server timing.
func Run(cfg Config) (*Result, error) {
	if cfg.Clients <= 0 || cfg.Requests <= 0 {
		return nil, fmt.Errorf("openloop: need positive Clients and Requests, got %d×%d", cfg.Clients, cfg.Requests)
	}
	if cfg.NewArrivals == nil || cfg.NewTraffic == nil {
		return nil, fmt.Errorf("openloop: NewArrivals and NewTraffic are required")
	}
	inflight := cfg.InFlight
	if inflight <= 0 {
		inflight = 1
	}

	// Offered load is a pre-pass over each schedule: sum the gaps, Reset,
	// and replay the identical schedule live.
	gens := make([]workload.ArrivalGen, cfg.Clients)
	var offered float64
	for c := range gens {
		gens[c] = cfg.NewArrivals(c)
		var span time.Duration
		for i := 0; i < cfg.Requests; i++ {
			span += gens[c].Next()
		}
		gens[c].Reset()
		if span > 0 {
			offered += float64(cfg.Requests) / span.Seconds()
		}
	}

	var (
		wg       sync.WaitGroup
		sent     atomic.Int64
		dropped  atomic.Int64
		errors   atomic.Int64
		checksum atomic.Uint64
	)
	hists := make([]*latency.Histogram, cfg.Clients)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		hists[c] = latency.New()
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(cfg.BaseURL)
			gen := gens[c]
			traffic := cfg.NewTraffic(c)
			hist := hists[c]
			slots := make(chan struct{}, inflight)
			var reqs sync.WaitGroup
			sched := start
			for i := 0; i < cfg.Requests; i++ {
				sched = sched.Add(gen.Next())
				// The request stream advances on EVERY scheduled arrival,
				// sent or dropped, so which payloads go out never depends
				// on timing — only whether they go out does.
				req := traffic.Next()
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				select {
				case slots <- struct{}{}:
				default:
					// Cap exhausted: an open-loop client drops the send
					// rather than blocking its schedule (which would
					// re-close the loop and hide the overload).
					dropped.Add(1)
					continue
				}
				sent.Add(1)
				reqs.Add(1)
				go func(sched time.Time, req *server.Request) {
					defer reqs.Done()
					defer func() { <-slots }()
					ctx := context.Background()
					if cfg.Timeout > 0 {
						var cancel context.CancelFunc
						ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
						defer cancel()
					}
					resp, err := cl.Do(ctx, req)
					if err != nil {
						errors.Add(1)
						return
					}
					// Latency from the SCHEDULED arrival, not the send:
					// the coordinated-omission-free clock.
					hist.Record(time.Since(sched))
					checksum.Add(server.FoldResponse(0, resp))
				}(sched, req)
			}
			reqs.Wait()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := latency.New()
	for _, h := range hists {
		merged.Merge(h)
	}
	res := &Result{
		Elapsed:       elapsed,
		Scheduled:     cfg.Clients * cfg.Requests,
		Sent:          int(sent.Load()),
		Dropped:       int(dropped.Load()),
		Errors:        int(errors.Load()),
		Checksum:      checksum.Load(),
		OfferedPerSec: offered,
		Latency:       merged,
	}
	if elapsed > 0 {
		res.AchievedPerSec = float64(int64(merged.Count())) / elapsed.Seconds()
	}
	if res.Sent+res.Dropped != res.Scheduled {
		return nil, fmt.Errorf("openloop: accounting broke: %d sent + %d dropped != %d scheduled",
			res.Sent, res.Dropped, res.Scheduled)
	}
	return res, nil
}
