package server

// The wire workload: composite social requests expressible as ONE
// multi-op Request each — no request depends on another request's reply,
// so any number of clients can stream them concurrently and the
// dispatcher is free to coalesce across clients. The four composites
// mirror the registry benchmark's social mix shapes (workload.SocialMix)
// while staying read-independent:
//
//   - add-post:    ensure the author's profile row exists, insert the
//     post, count the author's posts — a MIXED group (OCC commit).
//   - remove-post: remove the post, count the author's posts — mixed.
//   - follow:      insert the follows edge, count the followee's posts —
//     the canonical mixed group.
//   - snapshot:    count profile row, posts and follows of one user — a
//     pure read-only group (lock-free optimistic commit).
//
// Determinism: SocialTraffic draws with the same SplitMix64 discipline as
// the in-process workload drivers, and the Stride/Offset fields partition
// the key space among clients (client c of K uses keys ≡ c mod K), so
// concurrent streams commute — the final registry state and every
// client's own reply stream are independent of cross-client interleaving,
// which is what lets the e2e tests compare against a sequential oracle.

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/workload"
)

// SocialTraffic deterministically generates composite social requests
// for one client.
type SocialTraffic struct {
	// Mix is the composite distribution (the same percentages as the
	// registry benchmark's SocialMix).
	Mix workload.SocialMix
	// KeySpace bounds the DISTINCT keys this client draws (its private
	// key universe has KeySpace ids before striding).
	KeySpace int64
	// Stride and Offset embed this client's keys into the shared space:
	// every key is Offset + Stride*draw. Stride = number of clients and
	// Offset = client id give disjoint per-client key sets; Stride 1,
	// Offset 0 is the unpartitioned single-client layout.
	Stride, Offset int64
	// state is the SplitMix64 draw state.
	state uint64
}

// NewSocialTraffic returns a generator seeded for one client. Clients of
// the same run must use distinct seeds (or distinct offsets) to produce
// distinct streams.
func NewSocialTraffic(seed uint64, mix workload.SocialMix, keySpace int64, stride, offset int64) *SocialTraffic {
	if stride < 1 || offset < 0 || offset >= stride {
		panic(fmt.Sprintf("server: bad stride/offset %d/%d", stride, offset))
	}
	if keySpace < 1 {
		panic("server: keyspace must be positive")
	}
	return &SocialTraffic{
		Mix:      mix,
		KeySpace: keySpace,
		Stride:   stride,
		Offset:   offset,
		state:    seed*0x9e3779b97f4a7c15 + uint64(offset)*0xdeadbeefcafef00d + 1,
	}
}

// key embeds a raw draw into this client's key partition.
func (g *SocialTraffic) key(raw uint64) int64 {
	return g.Offset + g.Stride*int64(raw%uint64(g.KeySpace))
}

// Next draws the next composite request. The sequence is a pure function
// of the seed, so replaying a client's stream reproduces it exactly.
func (g *SocialTraffic) Next() *Request {
	r := workload.SplitMix64(&g.state)
	choice := int(r % 100)
	a := g.key(r >> 32)
	b := g.key(r >> 16)
	ts := int64(r >> 40)
	m := g.Mix
	switch {
	case choice < m.AddPosts:
		return AddPostRequest(a, b, ts)
	case choice < m.AddPosts+m.RemovePosts:
		return RemovePostRequest(a, b)
	case choice < m.AddPosts+m.RemovePosts+m.Follows:
		return FollowRequest(a, b, ts)
	default:
		return SnapshotRequest(a)
	}
}

// AddPostRequest builds the add-post composite: seed the author's
// profile row (put-if-absent), insert the post, count the author's
// posts. One mixed cross-relation group.
func AddPostRequest(author, post, ts int64) *Request {
	return &Request{Ops: []Op{
		{Kind: OpInsert, Rel: "users", S: map[string]any{"user": author}, T: map[string]any{"posts": int64(0)}},
		{Kind: OpInsert, Rel: "posts", S: map[string]any{"author": author, "post": post}, T: map[string]any{"ts": ts}},
		{Kind: OpCount, Rel: "posts", S: map[string]any{"author": author}},
	}}
}

// RemovePostRequest builds the remove-post composite: remove the post,
// count the author's remaining posts.
func RemovePostRequest(author, post int64) *Request {
	return &Request{Ops: []Op{
		{Kind: OpRemove, Rel: "posts", S: map[string]any{"author": author, "post": post}},
		{Kind: OpCount, Rel: "posts", S: map[string]any{"author": author}},
	}}
}

// FollowRequest builds the follow composite: insert the follows edge and
// read the followee's post count in the same consistent group.
func FollowRequest(src, dst, since int64) *Request {
	return &Request{Ops: []Op{
		{Kind: OpInsert, Rel: "follows", S: map[string]any{"dst": dst, "src": src}, T: map[string]any{"since": since}},
		{Kind: OpCount, Rel: "posts", S: map[string]any{"author": dst}},
	}}
}

// SnapshotRequest builds the profile-snapshot composite: count the
// user's profile row, posts and follows — a pure read-only group.
func SnapshotRequest(user int64) *Request {
	return &Request{Ops: []Op{
		{Kind: OpCount, Rel: "users", S: map[string]any{"user": user}},
		{Kind: OpCount, Rel: "posts", S: map[string]any{"author": user}},
		{Kind: OpCount, Rel: "follows", S: map[string]any{"src": user}},
	}}
}

// FoldResponse folds one reply into a running checksum the same way the
// workload drivers fold operation results: applied mutations count 1,
// counts and row cardinalities add, so two runs returning identical
// results produce identical checksums.
func FoldResponse(sum uint64, resp *Response) uint64 {
	for _, res := range resp.Results {
		switch {
		case res.Applied != nil:
			if *res.Applied {
				sum++
			}
		case res.Count != nil:
			sum += uint64(*res.Count)
		default:
			sum += uint64(len(res.Rows))
		}
	}
	return sum
}

// RegistryChecksum fingerprints the full contents of every registered
// relation: each relation's snapshot is sorted into the canonical tuple
// order and hashed, so two registries hold identical data iff their
// checksums match. Quiescent callers only (it uses plain queries).
func RegistryChecksum(reg *core.Registry) (uint64, error) {
	var h uint64 = 1469598103934665603 // FNV offset basis
	for _, r := range reg.Relations() {
		tuples, err := r.Snapshot()
		if err != nil {
			return 0, fmt.Errorf("server: snapshot %s: %w", r.Name(), err)
		}
		sort.Slice(tuples, func(i, j int) bool { return tuples[i].Compare(tuples[j]) < 0 })
		for _, t := range tuples {
			h = h*1099511628211 ^ t.Hash()
		}
	}
	return h, nil
}
