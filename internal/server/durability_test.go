package server_test

// The kill -9 e2e: a child copy of the test binary runs a real
// WAL-enabled crsd-shaped server, the parent drives it over HTTP and
// then SIGKILLs the process — no drain, no Close, the same cut an
// operator's kill -9 makes. The parent recovers the WAL directory into
// a fresh registry and checks the durability contract from the
// client's side of the wire:
//
//   - quiescent kill: every request was acknowledged before the kill,
//     so the recovered RegistryChecksum must equal a never-crashed
//     sequential oracle's exactly.
//   - mid-flight kill: clients are streaming unique-key inserts when
//     the process dies, so the recovered rows must contain every
//     acknowledged insert (replies come only after the group fsync)
//     and nothing that was never issued.

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/wal"
	"repro/internal/workload"
)

// crashServerEnvDir, when set, diverts the test binary into a child
// server process whose WAL lives in the named directory.
const crashServerEnvDir = "SERVER_CRASH_WAL_DIR"

// crashServerEnvMigrate, when additionally set, makes the child churn
// live representation migrations (concurrent ⇄ non-concurrent container
// families) under the served traffic, so the SIGKILL can land in any
// migration phase: mid-backfill, mid-catch-up, inside the cutover latch.
const crashServerEnvMigrate = "SERVER_CRASH_MIGRATE"

// TestMain diverts to the durable child server when the harness env var
// is set; otherwise the package tests run normally.
func TestMain(m *testing.M) {
	if dir := os.Getenv(crashServerEnvDir); dir != "" {
		crashServerChild(dir)
		return
	}
	os.Exit(m.Run())
}

// crashServerChild is the process the parent kills: a social registry
// with a WAL attached (fsync once per coalesced window, the default
// policy), served on a random port printed to stdout. It recovers
// whatever the directory already holds before serving — restarting the
// child IS the recovery path — and then runs until SIGKILL.
func crashServerChild(dir string) {
	soc := workload.MustSocial()
	m, err := wal.Open(dir, soc.Reg, wal.Options{SnapshotEvery: 32})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child wal:", err)
		os.Exit(3)
	}
	soc.Reg.SetCommitLogger(m)
	srv := server.New(soc.Reg, server.Config{Window: 200 * time.Microsecond, WAL: m})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		fmt.Fprintln(os.Stderr, "child start:", err)
		os.Exit(3)
	}
	if os.Getenv(crashServerEnvMigrate) != "" {
		go migrateChurn(soc)
	}
	fmt.Printf("ADDR=%s\n", srv.Addr())
	select {} // hold the process open for the kill
}

// migrateChurn endlessly live-migrates the written relations back and
// forth between the concurrent and non-concurrent container families.
// The representation choice is deliberately NOT persisted (the WAL is
// logical redo), so whichever rep the kill interrupts, recovery rebuilds
// the boot-time one — "old or new, never a mix" holds by construction,
// and this loop exists to prove the LOGICAL state survives the churn.
func migrateChurn(soc *workload.Social) {
	flip := true // the social boot rep is concurrent; first hop downgrades
	for {
		for _, r := range []*core.Relation{soc.Posts, soc.Follows} {
			target, err := r.Decomposition().WithContainers(func(e *decomp.Edge) container.Kind {
				if flip {
					switch e.Container {
					case container.ConcurrentHashMap:
						return container.HashMap
					case container.ConcurrentSkipListMap:
						return container.TreeMap
					}
				} else {
					switch e.Container {
					case container.HashMap:
						return container.ConcurrentHashMap
					case container.TreeMap:
						return container.ConcurrentSkipListMap
					}
				}
				return e.Container
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "child churn decomp:", err)
				continue
			}
			if _, err := soc.Reg.Migrate(r.Name(), core.WithDecomposition(target)); err != nil {
				fmt.Fprintln(os.Stderr, "child churn migrate:", err)
			}
		}
		flip = !flip
		time.Sleep(time.Millisecond) // let a few windows commit between hops
	}
}

// crashServer is a running child and its base URL.
type crashServer struct {
	cmd  *exec.Cmd
	base string
}

// startCrashServer launches the child over dir and waits for its
// address line. extraEnv entries ("KEY=VALUE") select child variants.
func startCrashServer(t *testing.T, dir string, extraEnv ...string) *crashServer {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), crashServerEnvDir+"="+dir)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill() })
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "ADDR="); ok {
			return &crashServer{cmd: cmd, base: "http://" + addr}
		}
	}
	t.Fatalf("child exited before printing its address (scan err %v)", sc.Err())
	return nil
}

// kill SIGKILLs the child — the process dies between two instructions,
// exactly like kill -9 from a shell — and reaps it.
func (cs *crashServer) kill(t *testing.T) {
	t.Helper()
	if err := cs.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_ = cs.cmd.Wait()
}

// recoverRegistry replays the WAL directory into a fresh social
// registry, exactly as a crsd restart with -wal-dir would.
func recoverRegistry(t *testing.T, dir string) (*workload.Social, wal.Stats) {
	t.Helper()
	soc := workload.MustSocial()
	m, err := wal.Open(dir, soc.Reg, wal.Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	st := m.Stats()
	if err := m.Close(); err != nil {
		t.Fatalf("close recovered wal: %v", err)
	}
	return soc, st
}

// TestE2EKillRecoverQuiescent is the headline durability e2e: K clients
// run the deterministic social streams to completion (every reply
// received), the server is killed -9, and the recovered registry must
// checksum identically to a never-crashed sequential oracle that served
// the same streams — acknowledged means durable, with nothing extra.
func TestE2EKillRecoverQuiescent(t *testing.T) {
	const clients, rounds = 3, 25
	dir := t.TempDir()
	cs := startCrashServer(t, dir)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(cs.base)
			gen := trafficFor(c, clients)
			for i := 0; i < rounds; i++ {
				if _, err := cl.Do(context.Background(), gen.Next()); err != nil {
					t.Errorf("client %d round %d: %v", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	cs.kill(t)

	rsoc, st := recoverRegistry(t, dir)
	if st.LastLSN == 0 {
		t.Fatal("recovery found an empty log after a full run")
	}
	got, err := server.RegistryChecksum(rsoc.Reg)
	if err != nil {
		t.Fatal(err)
	}

	// The oracle: same streams, sequentially, no WAL, no crash. Disjoint
	// key partitions make the streams commute, so sequential replay
	// reaches the concurrent run's final state.
	oSrv, oBase := startServer(t, server.Config{MaxBatch: 1})
	oCl := client.New(oBase)
	for c := 0; c < clients; c++ {
		gen := trafficFor(c, clients)
		for i := 0; i < rounds; i++ {
			if _, err := oCl.Do(context.Background(), gen.Next()); err != nil {
				t.Fatalf("oracle client %d round %d: %v", c, i, err)
			}
		}
	}
	want, err := server.RegistryChecksum(oSrv.Registry())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("recovered checksum %x != oracle %x", got, want)
	}
}

// TestE2EKillMidFlightUniqueKeys kills the server while clients are
// mid-stream, so requests die in every stage: unsent, parked in a
// window, committed-unsynced, synced-unacknowledged. Unique keys make
// each request identifiable in the recovered state, pinning both halves
// of the contract: acknowledged ⊆ recovered (no acked commit is lost)
// and recovered ⊆ issued (nothing the clients never sent appears).
func TestE2EKillMidFlightUniqueKeys(t *testing.T) {
	const (
		clients   = 4
		minAcked  = 5 // per client, before the kill fires
		ackWaitMs = 10_000
	)
	dir := t.TempDir()
	cs := startCrashServer(t, dir)

	type key struct{ author, post int64 }
	acked := make([]map[key]bool, clients)
	issued := make([]map[key]bool, clients)
	var ackTotal atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		acked[c] = make(map[key]bool)
		issued[c] = make(map[key]bool)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(cs.base)
			for i := 0; ; i++ {
				k := key{author: int64(1000 + c), post: int64(c*1_000_000 + i)}
				issued[c][k] = true
				applied, err := cl.Insert(context.Background(), "posts",
					map[string]any{"author": k.author, "post": k.post},
					map[string]any{"ts": int64(i)})
				if err != nil {
					return // the kill severed this request
				}
				if !applied {
					t.Errorf("client %d: unique insert %v not applied", c, k)
					return
				}
				acked[c][k] = true
				ackTotal.Add(1)
			}
		}(c)
	}

	// Kill once every client has acknowledged traffic in flight — the
	// streams are still running, so the SIGKILL lands mid-window.
	deadline := time.Now().Add(ackWaitMs * time.Millisecond)
	for ackTotal.Load() < clients*minAcked {
		if time.Now().After(deadline) {
			t.Fatalf("only %d acks before deadline", ackTotal.Load())
		}
		time.Sleep(time.Millisecond)
	}
	cs.kill(t)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	rsoc, _ := recoverRegistry(t, dir)
	tuples, err := rsoc.Posts.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[key]bool, len(tuples))
	for _, tp := range tuples {
		present[key{
			author: tp.MustGet("author").(int64),
			post:   tp.MustGet("post").(int64),
		}] = true
	}
	for c := 0; c < clients; c++ {
		for k := range acked[c] {
			if !present[k] {
				t.Errorf("acked insert %v lost by the crash", k)
			}
		}
	}
	for k := range present {
		if !issued[k.author-1000][k] {
			t.Errorf("recovered row %v was never issued", k)
		}
	}
}
