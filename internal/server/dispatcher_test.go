package server

// Differential and property tests of the group-commit dispatcher. The
// load-bearing property: coalescing is transparent — for ANY grouping of
// concurrently submitted requests into windows, replaying the same
// requests sequentially in global commit order (BatchSeq, then BatchPos)
// against a fresh registry reproduces every per-request result
// byte-for-byte. The windowHook forces deterministic window boundaries
// so the tests control grouping instead of racing a timer.

import (
	"encoding/json"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
)

// setWindowHook installs a deterministic window-close policy for one test
// and restores the timer policy afterwards.
func setWindowHook(t *testing.T, hook func(pending int) bool) {
	t.Helper()
	windowHook = hook
	t.Cleanup(func() { windowHook = nil })
}

// resultsJSON renders a response's per-op results (without the batch
// coordinates) for byte-for-byte comparison.
func resultsJSON(t *testing.T, resp *Response) string {
	t.Helper()
	b, err := json.Marshal(resp.Results)
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	return string(b)
}

// submitRecorded is one client request and the reply it got.
type submitRecorded struct {
	req  *Request
	resp *Response
}

// runDifferential drives clients×perClient requests of the given mix
// through one dispatcher under a deterministic window policy, then
// replays the identical requests sequentially in (BatchSeq, BatchPos)
// order against a fresh registry and requires every result to match
// byte-for-byte.
func runDifferential(t *testing.T, mix workload.SocialMix, clients, perClient int) {
	t.Helper()

	// Window policy: cycle the close threshold through 1..4 parked
	// requests so the run exercises singleton and multi-request groups.
	var closes atomic.Uint64
	setWindowHook(t, func(pending int) bool {
		want := int(closes.Load()%4) + 1
		if pending >= want {
			closes.Add(1)
			return true
		}
		return false
	})

	social := workload.MustSocial()
	d := NewDispatcher(social.Reg, Config{})

	// A watchdog flushes stragglers: when the remaining clients cannot
	// reach the hook's current threshold they would park forever.
	stop := make(chan struct{})
	var flusher sync.WaitGroup
	flusher.Add(1)
	go func() {
		defer flusher.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
				d.Flush()
			}
		}
	}()

	// Clients share the key space (stride 1) so their requests genuinely
	// collide — the differential property must hold even then.
	recorded := make([][]submitRecorded, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := NewSocialTraffic(uint64(100+c), mix, 32, 1, 0)
			recs := make([]submitRecorded, 0, perClient)
			for i := 0; i < perClient; i++ {
				req := gen.Next()
				resp, err := d.Submit(req)
				if err != nil {
					t.Errorf("client %d request %d: %v", c, i, err)
					return
				}
				recs = append(recs, submitRecorded{req: req, resp: resp})
			}
			recorded[c] = recs
		}(c)
	}
	wg.Wait()
	close(stop)
	flusher.Wait()
	d.Close()
	if t.Failed() {
		t.FailNow()
	}
	// The oracle below must run the real MaxBatch-1 policy, not the
	// test hook (a hooked window ignores MaxBatch and would never close
	// for a lone sequential request).
	windowHook = nil

	// Global commit order: BatchSeq ascending, BatchPos within a group.
	var all []submitRecorded
	for _, recs := range recorded {
		all = append(all, recs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].resp, all[j].resp
		if a.BatchSeq != b.BatchSeq {
			return a.BatchSeq < b.BatchSeq
		}
		return a.BatchPos < b.BatchPos
	})

	// Sequential oracle: same requests, same order, one request per
	// commit (MaxBatch 1 disables coalescing) on a fresh registry.
	oracle := NewDispatcher(workload.MustSocial().Reg, Config{MaxBatch: 1})
	defer oracle.Close()
	multi := 0
	for i, rec := range all {
		want, err := oracle.Submit(rec.req)
		if err != nil {
			t.Fatalf("oracle request %d: %v", i, err)
		}
		if got, exp := resultsJSON(t, rec.resp), resultsJSON(t, want); got != exp {
			t.Fatalf("request %d (batch %d pos %d of %d) diverged from sequential replay:\ncoalesced: %s\nsequential: %s",
				i, rec.resp.BatchSeq, rec.resp.BatchPos, rec.resp.BatchSize, got, exp)
		}
		if rec.resp.BatchSize > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no request ever coalesced — the differential test exercised nothing")
	}

	st := d.Stats()
	if st.Requests != uint64(clients*perClient) {
		t.Fatalf("stats counted %d requests, want %d", st.Requests, clients*perClient)
	}
	if st.Degraded != 0 {
		t.Fatalf("healthy run degraded %d windows", st.Degraded)
	}
}

// TestDispatcherDifferential checks coalescing transparency across
// read-only, mixed, and write-only request mixes.
func TestDispatcherDifferential(t *testing.T) {
	cases := []struct {
		name string
		mix  workload.SocialMix
	}{
		{"read-only", workload.SocialMix{Snapshots: 100}},
		{"mixed", workload.DefaultSocialMix()},
		{"write-only", workload.SocialMix{AddPosts: 50, RemovePosts: 20, Follows: 30}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runDifferential(t, tc.mix, 4, 40)
		})
	}
}

// TestDispatcherExactGrouping pins the window mechanics themselves: K
// lockstep clients under a close-at-K hook commit in groups of exactly
// K, every round, with positions forming a permutation of 0..K-1.
func TestDispatcherExactGrouping(t *testing.T) {
	const clients, rounds = 3, 25
	setWindowHook(t, func(pending int) bool { return pending >= clients })

	social := workload.MustSocial()
	d := NewDispatcher(social.Reg, Config{})
	defer d.Close()

	var wg sync.WaitGroup
	responses := make([][]*Response, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := NewSocialTraffic(uint64(c+1), workload.DefaultSocialMix(), 16, clients, int64(c))
			resps := make([]*Response, 0, rounds)
			for i := 0; i < rounds; i++ {
				resp, err := d.Submit(gen.Next())
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				resps = append(resps, resp)
			}
			responses[c] = resps
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	positions := map[uint64][]int{}
	for c := 0; c < clients; c++ {
		for _, resp := range responses[c] {
			if resp.BatchSize != clients {
				t.Fatalf("batch %d committed %d requests, want exactly %d", resp.BatchSeq, resp.BatchSize, clients)
			}
			positions[resp.BatchSeq] = append(positions[resp.BatchSeq], resp.BatchPos)
		}
	}
	if len(positions) != rounds {
		t.Fatalf("%d distinct batches, want %d", len(positions), rounds)
	}
	for seq, pos := range positions {
		sort.Ints(pos)
		for i, p := range pos {
			if p != i {
				t.Fatalf("batch %d positions %v are not a permutation of 0..%d", seq, pos, clients-1)
			}
		}
	}
	st := d.Stats()
	if st.MeanBatchSize != clients {
		t.Fatalf("mean batch size %.2f, want exactly %d", st.MeanBatchSize, clients)
	}
	if st.MultiBatches != rounds {
		t.Fatalf("%d multi-request batches, want %d", st.MultiBatches, rounds)
	}
}

// TestDispatcherSequentialMode pins MaxBatch 1: every request commits
// alone, immediately, with no timer involved.
func TestDispatcherSequentialMode(t *testing.T) {
	social := workload.MustSocial()
	d := NewDispatcher(social.Reg, Config{MaxBatch: 1, Window: time.Hour})
	defer d.Close()
	gen := NewSocialTraffic(5, workload.DefaultSocialMix(), 16, 1, 0)
	for i := 0; i < 20; i++ {
		resp, err := d.Submit(gen.Next())
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.BatchSize != 1 || resp.BatchPos != 0 {
			t.Fatalf("request %d: batch size %d pos %d, want 1/0", i, resp.BatchSize, resp.BatchPos)
		}
	}
	if st := d.Stats(); st.MultiBatches != 0 || st.MeanBatchSize != 1 {
		t.Fatalf("sequential mode coalesced: %+v", st)
	}
}

// TestDispatcherValidation pins that malformed requests are rejected
// before entering a window — immediately, alone, and without disturbing
// the dispatcher's counters.
func TestDispatcherValidation(t *testing.T) {
	social := workload.MustSocial()
	d := NewDispatcher(social.Reg, Config{})
	defer d.Close()
	cases := []struct {
		name string
		req  *Request
	}{
		{"empty transaction", &Request{}},
		{"unknown relation", &Request{Ops: []Op{{Kind: OpCount, Rel: "nope", S: map[string]any{"user": 1}}}}},
		{"unknown op kind", &Request{Ops: []Op{{Kind: "upsert", Rel: "users", S: map[string]any{"user": 1}}}}},
		{"t on remove", &Request{Ops: []Op{{Kind: OpRemove, Rel: "users", S: map[string]any{"user": 1}, T: map[string]any{"posts": 0}}}}},
		{"query without out", &Request{Ops: []Op{{Kind: OpQuery, Rel: "posts", S: map[string]any{"author": 1}}}}},
		{"unsupported value", &Request{Ops: []Op{{Kind: OpCount, Rel: "users", S: map[string]any{"user": []any{1}}}}}},
		{"unknown column", &Request{Ops: []Op{{Kind: OpCount, Rel: "users", S: map[string]any{"bogus": 1}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := d.Submit(tc.req); err == nil {
				t.Fatal("expected a validation error")
			}
		})
	}
	if st := d.Stats(); st.Requests != 0 || st.Batches != 0 {
		t.Fatalf("rejected requests leaked into the counters: %+v", st)
	}
}

// TestDispatcherDegradedWindow pins error isolation on the defensive
// path: a request that bypasses validation and fails at group enqueue
// aborts only itself — its window-mates commit individually (degraded)
// with correct results, and the event is counted.
func TestDispatcherDegradedWindow(t *testing.T) {
	setWindowHook(t, func(pending int) bool { return pending >= 2 })

	social := workload.MustSocial()
	d := NewDispatcher(social.Reg, Config{})
	defer d.Close()

	// Compiles (the column is only checked at enqueue) but cannot
	// enqueue; submitted via submitCompiled to skip the probe, simulating
	// a validation gap.
	bad, err := compileRequest(social.Reg, &Request{Ops: []Op{
		{Kind: OpCount, Rel: "users", S: map[string]any{"bogus": int64(1)}},
	}})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	good := AddPostRequest(1, 2, 3)

	var wg sync.WaitGroup
	var badErr error
	var goodResp *Response
	var goodErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, badErr = d.submitCompiled(bad)
	}()
	go func() {
		defer wg.Done()
		goodResp, goodErr = d.Submit(good)
	}()
	wg.Wait()

	if badErr == nil {
		t.Fatal("unenqueueable request committed")
	}
	if goodErr != nil {
		t.Fatalf("innocent window-mate failed: %v", goodErr)
	}
	if goodResp.BatchSize != 1 {
		t.Fatalf("degraded commit reported batch size %d, want 1", goodResp.BatchSize)
	}
	if got := *goodResp.Results[2].Count; got != 1 {
		t.Fatalf("degraded add-post counted %d posts, want 1", got)
	}
	st := d.Stats()
	if st.Degraded != 1 {
		t.Fatalf("degraded windows %d, want 1", st.Degraded)
	}
	if st.Requests != 1 {
		t.Fatalf("committed requests %d, want 1", st.Requests)
	}
}

// TestDispatcherClose pins the drain contract: Close answers the parked
// window, further Submits fail with ErrClosed, and Close is idempotent.
func TestDispatcherClose(t *testing.T) {
	setWindowHook(t, func(int) bool { return false }) // nothing closes on its own

	social := workload.MustSocial()
	d := NewDispatcher(social.Reg, Config{})

	var wg sync.WaitGroup
	var resp *Response
	var err error
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err = d.Submit(SnapshotRequest(7))
	}()
	waitPending(t, d, 1)
	d.Close()
	wg.Wait()
	if err != nil {
		t.Fatalf("parked request dropped at Close: %v", err)
	}
	if resp.BatchSize != 1 {
		t.Fatalf("drain batch size %d, want 1", resp.BatchSize)
	}
	if _, err := d.Submit(SnapshotRequest(8)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	d.Close() // idempotent
}

// waitPending polls until the open window holds n parked requests.
func waitPending(t *testing.T, d *Dispatcher, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for d.Pending() < n {
		if time.Now().After(deadline) {
			t.Fatalf("window never reached %d parked requests (at %d)", n, d.Pending())
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestTrafficDeterminism pins that SocialTraffic streams are pure
// functions of their seed and that stride/offset partitions are
// disjoint.
func TestTrafficDeterminism(t *testing.T) {
	a := NewSocialTraffic(9, workload.DefaultSocialMix(), 32, 4, 1)
	b := NewSocialTraffic(9, workload.DefaultSocialMix(), 32, 4, 1)
	for i := 0; i < 200; i++ {
		ra, rb := a.Next(), b.Next()
		ja, _ := json.Marshal(ra)
		jb, _ := json.Marshal(rb)
		if string(ja) != string(jb) {
			t.Fatalf("draw %d: same seed diverged:\n%s\n%s", i, ja, jb)
		}
		for _, op := range ra.Ops {
			for col, v := range op.S {
				k, ok := v.(int64)
				if !ok {
					continue
				}
				if col == "ts" || col == "since" || col == "posts" {
					continue
				}
				if k%4 != 1 {
					t.Fatalf("draw %d: key %s=%d escaped partition offset 1 stride 4", i, col, k)
				}
			}
		}
	}
}
