package server

// The group-commit dispatcher. Submit parks each validated request in the
// current WINDOW; the window closes when it has been open for
// Config.Window (armed by the first arrival) or holds Config.MaxBatch
// requests, whichever comes first. The goroutine that closes a window
// commits every parked request as members of ONE Registry.Batch — the
// core then coalesces their lock schedules, detects read-only groups and
// runs them lock-free, and commits mixed groups Silo-style — and each
// submitter is woken with its own members' results plus the group's
// coordinates. Group commits of successive windows may overlap in time;
// the registry's globally ordered lock acquisition keeps that
// deadlock-free, exactly as for any two concurrent batches.
//
// Error isolation: requests are validated (probed) BEFORE entering a
// window, so a malformed request is rejected alone and never aborts its
// neighbors' group. If an enqueue error nonetheless surfaces at group
// commit, the group aborts untouched (Registry.Batch executes nothing on
// error) and the dispatcher degrades that window to per-request commits,
// preserving per-request semantics at the cost of one window's
// coalescing; the Stats.Degraded counter makes such events visible.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/latency"
	"repro/internal/wal"
	"repro/internal/workload"
)

// ErrClosed is returned by Submit after Close: the dispatcher accepts no
// new requests while draining.
var ErrClosed = errors.New("server: dispatcher closed")

// DefaultWindow is the coalescing window used when Config.Window is zero:
// long enough for concurrent arrivals to pile up, short enough to stay
// invisible next to network latency.
const DefaultWindow = 500 * time.Microsecond

// DefaultMaxBatch is the window's request-count cutoff when
// Config.MaxBatch is zero.
const DefaultMaxBatch = 64

// Config parameterizes a Dispatcher.
type Config struct {
	// Window is how long a window stays open after its first request
	// before committing, bounding the latency a request can pay for
	// coalescing. Zero means DefaultWindow.
	Window time.Duration
	// MaxBatch closes a window early once this many requests are parked,
	// bounding group size (and per-group lock-set size) under burst
	// arrivals. Zero means DefaultMaxBatch; 1 disables coalescing — every
	// request commits alone, the wire benchmark's "sequential
	// decomposition" baseline.
	MaxBatch int
	// Counts, when non-nil, turns on per-group lock-schedule tracing and
	// accumulates the same counters the workload drivers harvest —
	// requested/acquired totals, read-only and OCC counters — so the wire
	// benchmark reports the identical deterministic signals benchguard
	// gates everywhere else.
	Counts *workload.LockCounts
	// WAL, when non-nil, is the write-ahead log attached to the served
	// registry (via Registry.SetCommitLogger). The dispatcher becomes the
	// fsync batcher: after each window's group commit it calls WAL.Sync
	// ONCE and only then wakes the submitters, so a whole window of
	// requests shares one fsync and no request is acknowledged before its
	// redo record is durable. Group commit above and fsync batching below
	// are the same mechanism at two layers.
	WAL *wal.Manager
}

// window applies the Window default.
func (c Config) window() time.Duration {
	if c.Window <= 0 {
		return DefaultWindow
	}
	return c.Window
}

// maxBatch applies the MaxBatch default.
func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return DefaultMaxBatch
	}
	return c.MaxBatch
}

// Stats is a snapshot of a dispatcher's lifetime counters.
type Stats struct {
	// Requests is the number of requests committed (including degraded
	// ones); Members the relational operations they carried.
	Requests, Members uint64
	// Batches is the number of group commits; MultiBatches how many of
	// them coalesced more than one request.
	Batches, MultiBatches uint64
	// MaxBatchSize is the largest group committed.
	MaxBatchSize uint64
	// Degraded counts windows that fell back to per-request commits after
	// a group enqueue error (0 in healthy operation: validation probes
	// reject malformed requests before they reach a window).
	Degraded uint64
	// MeanBatchSize is Requests/Batches, the coalescing win's summary
	// statistic: 1.0 means no cross-client batching happened, K means the
	// average lock schedule amortized over K clients.
	MeanBatchSize float64
	// WAL carries the write-ahead log's counters when durability is
	// enabled (Config.WAL non-nil); nil otherwise. Under group commit
	// WAL.Fsyncs tracks Batches, not Requests — that ratio is the fsync
	// amortization the dispatcher exists to provide.
	WAL *wal.Stats `json:",omitempty"`
	// Registry is the served registry's harvested counter snapshot
	// (core.Registry.Harvest): per-relation read/write shapes, the
	// optimistic-path counters, and the migration event history the
	// -adapt advisor appends to. /v1/stats re-serializes exactly this
	// document — crstune -live consumes it.
	Registry *core.Counters `json:"registry,omitempty"`
	// CommitLatency digests the server-side commit latency in
	// nanoseconds: per request, from arrival at the dispatcher to its
	// group's acknowledgment (so it includes the window wait and, when
	// durable, the group fsync). Open-loop clients cross-check their
	// coordinated-omission-free measurements against this server view.
	// Nil until a request commits.
	CommitLatency *latency.Summary `json:"commit_latency_ns,omitempty"`
	// WindowOccupancy digests how many requests each closed window
	// carried (dimensionless; mean equals MeanBatchSize). Where
	// MeanBatchSize is one number, the occupancy quantiles show the
	// SHAPE of coalescing — under bursty arrivals p95 occupancy grows
	// with the window while p50 may stay at 1. Nil until a window
	// commits.
	WindowOccupancy *latency.Summary `json:"window_occupancy,omitempty"`
}

// call is one parked request: the compiled ops, its arrival time (the
// commit-latency clock starts when the request reaches the dispatcher),
// and the channel its submitter blocks on.
type call struct {
	req     *compiledReq
	arrived time.Time
	resp    *Response
	err     error
	done    chan struct{}
}

// Dispatcher coalesces concurrently submitted requests into group
// commits over one registry. Safe for concurrent use; create with
// NewDispatcher.
type Dispatcher struct {
	reg *core.Registry
	cfg Config

	mu      sync.Mutex
	pending []*call
	timer   *time.Timer
	gen     uint64 // window generation; a stale timer firing is a no-op
	closed  bool
	commits sync.WaitGroup // group commits in flight (balanced in takeLocked/commitGroup)

	seq          atomic.Uint64 // batch sequence numbers
	requests     atomic.Uint64
	members      atomic.Uint64
	batches      atomic.Uint64
	multiBatches atomic.Uint64
	maxBatch     atomic.Uint64
	degraded     atomic.Uint64

	// commitLatency records per-request arrival→acknowledgment time in
	// nanoseconds; occupancy records per-window committed batch sizes.
	// Both are lock-free (see internal/latency) so the commit path stays
	// allocation-free.
	commitLatency latency.Histogram
	occupancy     latency.Histogram
}

// windowHook, when non-nil, replaces the batching policy: it is invoked
// under the dispatcher lock after each arrival with the number of parked
// requests, and the window closes exactly when it returns true — no timer
// is armed and MaxBatch is ignored. Tests use it to force deterministic
// window boundaries.
var windowHook func(pending int) bool

// SetWindowHook installs (or, with nil, removes) the deterministic
// window policy hook: invoked under the dispatcher lock after each
// arrival with the number of parked requests, closing the window exactly
// when it returns true — no timer is armed and MaxBatch is ignored while
// installed. It is a test seam (the open-loop driver's -race stress pins
// window boundaries with it), global to the package; callers must remove
// it (SetWindowHook(nil)) before dispatchers configured without it run.
func SetWindowHook(f func(pending int) bool) { windowHook = f }

// NewDispatcher returns a dispatcher committing against reg.
func NewDispatcher(reg *core.Registry, cfg Config) *Dispatcher {
	return &Dispatcher{reg: reg, cfg: cfg}
}

// Submit validates req, parks it in the current window, and blocks until
// its group commits, returning this request's results. Validation errors
// are returned immediately (the request never enters a window); ErrClosed
// is returned after Close.
func (d *Dispatcher) Submit(req *Request) (*Response, error) {
	creq, err := compileRequest(d.reg, req)
	if err != nil {
		return nil, err
	}
	if err := probeRequest(d.reg, creq); err != nil {
		return nil, err
	}
	return d.submitCompiled(creq)
}

// submitCompiled parks an already-validated request; see Submit.
func (d *Dispatcher) submitCompiled(creq *compiledReq) (*Response, error) {
	c := &call{req: creq, arrived: time.Now(), done: make(chan struct{})}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	d.pending = append(d.pending, c)
	n := len(d.pending)
	var batch []*call
	if windowHook != nil {
		if windowHook(n) {
			batch = d.takeLocked()
		}
	} else {
		if n == 1 && d.cfg.maxBatch() > 1 {
			gen := d.gen
			d.timer = time.AfterFunc(d.cfg.window(), func() { d.flushGen(gen) })
		}
		if n >= d.cfg.maxBatch() {
			batch = d.takeLocked()
		}
	}
	d.mu.Unlock()
	if batch != nil {
		d.commitGroup(batch)
	}
	<-c.done
	return c.resp, c.err
}

// takeLocked removes the current window's requests, advances the window
// generation (cancelling the pending timer), and registers the group
// commit with the drain WaitGroup. Caller holds d.mu and MUST pass the
// result to commitGroup (which balances the WaitGroup).
func (d *Dispatcher) takeLocked() []*call {
	batch := d.pending
	d.pending = nil
	d.gen++
	if d.timer != nil {
		d.timer.Stop()
		d.timer = nil
	}
	if len(batch) == 0 {
		return nil
	}
	d.commits.Add(1)
	return batch
}

// flushGen closes the window of generation gen if it is still open — the
// timer path. A stale generation (window already closed by MaxBatch,
// Flush or Close) is a no-op.
func (d *Dispatcher) flushGen(gen uint64) {
	d.mu.Lock()
	if d.closed || gen != d.gen {
		d.mu.Unlock()
		return
	}
	batch := d.takeLocked()
	d.mu.Unlock()
	if batch != nil {
		d.commitGroup(batch)
	}
}

// Flush closes the current window immediately and commits its requests,
// returning how many it carried. Server.Shutdown uses it to drain parked
// handlers without waiting out the window timer.
func (d *Dispatcher) Flush() int {
	d.mu.Lock()
	batch := d.takeLocked()
	d.mu.Unlock()
	if batch == nil {
		return 0
	}
	d.commitGroup(batch)
	return len(batch)
}

// Close stops accepting requests, commits the in-flight window, and
// waits for every outstanding group commit to deliver its replies — no
// accepted request is ever dropped. Close is idempotent; Submit returns
// ErrClosed afterwards.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.commits.Wait()
		return
	}
	d.closed = true
	batch := d.takeLocked()
	d.mu.Unlock()
	if batch != nil {
		d.commitGroup(batch)
	}
	d.commits.Wait()
}

// Pending reports how many requests are parked in the currently open
// window — an observability hook for shutdown sequencing (a drain loop
// can wait for arrivals to park before flushing) and for tests.
func (d *Dispatcher) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}

// Stats returns a snapshot of the lifetime counters.
func (d *Dispatcher) Stats() Stats {
	s := Stats{
		Requests:     d.requests.Load(),
		Members:      d.members.Load(),
		Batches:      d.batches.Load(),
		MultiBatches: d.multiBatches.Load(),
		MaxBatchSize: d.maxBatch.Load(),
		Degraded:     d.degraded.Load(),
	}
	if s.Batches > 0 {
		s.MeanBatchSize = float64(s.Requests) / float64(s.Batches)
	}
	if d.cfg.WAL != nil {
		ws := d.cfg.WAL.Stats()
		s.WAL = &ws
	}
	rc := d.reg.Harvest()
	s.Registry = &rc
	s.CommitLatency = d.commitLatency.Summarize()
	s.WindowOccupancy = d.occupancy.Summarize()
	return s
}

// commitGroup commits one window's requests as a single registry batch
// and wakes every submitter with its results. On a group enqueue error
// (possible only for requests that bypassed validation) nothing has
// executed; the window degrades to per-request commits so one bad request
// cannot take its neighbors down.
func (d *Dispatcher) commitGroup(batch []*call) {
	defer d.commits.Done()
	seq := d.seq.Add(1)
	size := len(batch)
	pendings := make([][]pendingOp, size)
	var tr *core.BatchTrace
	var groupErr error
	err := d.reg.Batch(func(tx *core.Txn) error {
		if d.cfg.Counts != nil {
			tx.EnableTrace()
			tr = tx.Trace()
		}
		for i, c := range batch {
			pend, err := c.req.enqueue(tx)
			if err != nil {
				groupErr = fmt.Errorf("%w (request %d: %s)", err, i, c.req.summarize())
				return groupErr
			}
			pendings[i] = pend
		}
		return nil
	})
	if err != nil {
		d.degraded.Add(1)
		d.commitEach(batch)
		return
	}
	if serr := d.syncWAL(); serr != nil {
		// The group committed in memory but its redo record may not be on
		// stable storage: acknowledging now could ack work a crash would
		// lose. Every submitter in the window gets the sync error instead
		// of a result.
		for _, c := range batch {
			c.err = serr
			close(c.done)
		}
		return
	}
	if tr != nil {
		d.cfg.Counts.Harvest(tr)
	}
	d.recordBatch(size)
	for i, c := range batch {
		d.requests.Add(1)
		d.members.Add(uint64(len(c.req.ops)))
		c.resp = &Response{
			Results:   resolve(pendings[i]),
			BatchSeq:  seq,
			BatchSize: size,
			BatchPos:  i,
		}
		d.commitLatency.Record(time.Since(c.arrived))
		close(c.done)
	}
}

// commitEach is the degraded path: each request of an aborted window
// commits alone (its own batch sequence number, size 1), so per-request
// atomicity and results are preserved and only this window's coalescing
// is lost.
func (d *Dispatcher) commitEach(batch []*call) {
	for _, c := range batch {
		seq := d.seq.Add(1)
		var pend []pendingOp
		var tr *core.BatchTrace
		err := d.reg.Batch(func(tx *core.Txn) error {
			if d.cfg.Counts != nil {
				tx.EnableTrace()
				tr = tx.Trace()
			}
			var err error
			pend, err = c.req.enqueue(tx)
			return err
		})
		if err != nil {
			c.err = err
			close(c.done)
			continue
		}
		if serr := d.syncWAL(); serr != nil {
			c.err = serr
			close(c.done)
			continue
		}
		if tr != nil {
			d.cfg.Counts.Harvest(tr)
		}
		d.recordBatch(1)
		d.requests.Add(1)
		d.members.Add(uint64(len(c.req.ops)))
		c.resp = &Response{
			Results:   resolve(pend),
			BatchSeq:  seq,
			BatchSize: 1,
			BatchPos:  0,
		}
		d.commitLatency.Record(time.Since(c.arrived))
		close(c.done)
	}
}

// syncWAL is the durability barrier between commit and reply: one fsync
// for however many requests the window held. No-op without a WAL.
func (d *Dispatcher) syncWAL() error {
	if d.cfg.WAL == nil {
		return nil
	}
	if err := d.cfg.WAL.Sync(); err != nil {
		return fmt.Errorf("server: wal sync: %w", err)
	}
	return nil
}

// recordBatch folds one committed group into the batch-size counters and
// the window-occupancy histogram.
func (d *Dispatcher) recordBatch(size int) {
	d.occupancy.RecordValue(int64(size))
	d.batches.Add(1)
	if size > 1 {
		d.multiBatches.Add(1)
	}
	for {
		cur := d.maxBatch.Load()
		if uint64(size) <= cur || d.maxBatch.CompareAndSwap(cur, uint64(size)) {
			return
		}
	}
}
