// Package server puts a network front end and a group-commit dispatcher
// in front of core.Registry, turning the library into a system: clients
// submit relational operations (singly or as multi-op transactions) over
// HTTP+JSON, and a Dispatcher coalesces requests arriving from DIFFERENT
// connections within a short window into one Registry.Batch — so the
// coalesced lock schedules, optimistic read-only batches and Silo-style
// OCC commits of the core pay off with traffic instead of with caller
// discipline. Each client receives its own members' results after the
// group commits, exactly as if its request had run alone; the group is
// merely the lock-scheduling unit, never a semantic one.
//
// This file defines the wire model: Request (an ordered list of Ops that
// commit atomically), Op (one relational operation against a named
// relation), OpResult/Response (per-member results plus the batch
// coordinates the request committed under), and the JSON value codec
// mapping the relational value types onto JSON.
package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/rel"
)

// The operation kinds a Request can carry, in the wire encoding's "op"
// field: the four relational operations of §2.
const (
	// OpInsert is insert r s t: S binds the access-path columns, T the
	// remaining columns (put-if-absent; Applied reports whether the tuple
	// was new).
	OpInsert = "insert"
	// OpRemove is remove r s: S binds the columns identifying the tuples
	// to delete (Applied reports whether anything existed).
	OpRemove = "remove"
	// OpCount is |query r s C|: S binds the search columns, Count reports
	// the number of matching tuples.
	OpCount = "count"
	// OpQuery is query r s C: S binds the search columns, Out names the
	// projected columns; Rows carries one column→value object per match.
	OpQuery = "query"
)

// Op is one relational operation of a Request, addressed to a registered
// relation by name. S and T are column→value objects (the wire form of
// rel.Tuple); Out is the projection of a query.
type Op struct {
	// Kind is one of OpInsert, OpRemove, OpCount, OpQuery.
	Kind string `json:"op"`
	// Rel names the target relation in the server's registry.
	Rel string `json:"rel"`
	// S is the bound tuple: the access-path columns of an insert, the
	// identifying columns of a remove, the search columns of a count or
	// query.
	S map[string]any `json:"s,omitempty"`
	// T is the residue tuple of an insert (the columns S does not bind).
	T map[string]any `json:"t,omitempty"`
	// Out is the projection of a query.
	Out []string `json:"out,omitempty"`
}

// Request is an ordered list of operations committed ATOMICALLY as
// members of one registry batch: all-or-nothing, with sequential
// semantics in op order (later ops observe earlier ops' writes). Ops
// cannot consume each other's results mid-flight — results resolve only
// at commit.
type Request struct {
	// Ops are the member operations, executed in order.
	Ops []Op `json:"ops"`
}

// OpResult is one member's committed result. Exactly one of Applied,
// Count or Rows is set (per the op kind); Rows is never nil for a query,
// so an empty result is distinguishable from a mutation's.
type OpResult struct {
	// Applied reports an insert's put-if-absent outcome or a remove's
	// did-anything-exist outcome.
	Applied *bool `json:"applied,omitempty"`
	// Count reports a count's cardinality.
	Count *int `json:"count,omitempty"`
	// Rows reports a query's projected tuples as column→value objects.
	Rows []map[string]any `json:"rows,omitempty"`
}

// Response is a committed Request's reply: per-op results in op order,
// plus the coordinates of the group commit that carried it — BatchSeq
// (the dispatcher's running batch number), BatchSize (how many requests
// the group coalesced) and BatchPos (this request's position in the
// group's global enqueue order). The coordinates make coalescing
// observable: tests and benchmarks read batch sizes straight from
// replies, and replaying requests sequentially in (BatchSeq, BatchPos)
// order reproduces every result exactly.
type Response struct {
	// Results holds one OpResult per Request op, in op order.
	Results []OpResult `json:"results"`
	// BatchSeq is the group commit's sequence number (1-based).
	BatchSeq uint64 `json:"batch_seq"`
	// BatchSize is the number of client requests the group coalesced.
	BatchSize int `json:"batch_size"`
	// BatchPos is this request's position within the group (0-based).
	BatchPos int `json:"batch_pos"`
}

// decodeValue maps a decoded JSON value onto a relational value:
// json.Number becomes int64 when integral (float64 otherwise), bool and
// string pass through. The server decodes request bodies with
// json.Decoder.UseNumber, so numbers arrive here as json.Number, never
// float64 — integer keys survive the wire bit for bit. (int64 values
// beyond 2^53 still require clients that emit them as JSON integers,
// which the Go client does.)
func decodeValue(v any) (rel.Value, error) {
	switch x := v.(type) {
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return i, nil
		}
		f, err := x.Float64()
		if err != nil {
			return nil, fmt.Errorf("server: unparseable number %q", x.String())
		}
		return f, nil
	case bool, string:
		return x, nil
	case float64:
		// Bodies decoded without UseNumber (direct struct literals in
		// tests) deliver float64; keep integral ones as int64 the same way
		// the Number path does.
		if x == float64(int64(x)) {
			return int64(x), nil
		}
		return x, nil
	case int:
		return int64(x), nil
	case int64, uint64:
		return x, nil
	default:
		return nil, fmt.Errorf("server: unsupported value type %T", v)
	}
}

// tupleOf converts a wire column→value object into a rel.Tuple.
func tupleOf(m map[string]any) (rel.Tuple, error) {
	pairs := make([]any, 0, 2*len(m))
	// Sorted iteration keeps error messages deterministic; the tuple
	// itself canonicalizes column order regardless.
	cols := make([]string, 0, len(m))
	for c := range m {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	for _, c := range cols {
		v, err := decodeValue(m[c])
		if err != nil {
			return rel.Tuple{}, fmt.Errorf("column %q: %w", c, err)
		}
		pairs = append(pairs, c, v)
	}
	return rel.NewTuple(pairs...)
}

// tupleToMap converts a result tuple into its wire column→value object.
func tupleToMap(t rel.Tuple) map[string]any {
	m := make(map[string]any, t.Len())
	for _, c := range t.Dom() {
		m[c] = t.MustGet(c)
	}
	return m
}

// compiledOp is one Op resolved against the registry: relation pointer
// plus decoded tuples, ready to enqueue without further validation work.
type compiledOp struct {
	kind string
	r    *core.Relation
	s, t rel.Tuple
	out  []string
}

// compiledReq is a Request compiled for enqueueing.
type compiledReq struct {
	ops []compiledOp
}

// compileRequest resolves every op of req against reg — relation lookup,
// tuple decoding, op-kind checks — returning a form the dispatcher can
// enqueue directly. It does NOT prove enqueueability (plan existence,
// column coverage); probeRequest does that by dry-running the enqueue
// path itself.
func compileRequest(reg *core.Registry, req *Request) (*compiledReq, error) {
	if len(req.Ops) == 0 {
		return nil, fmt.Errorf("server: empty transaction")
	}
	c := &compiledReq{ops: make([]compiledOp, 0, len(req.Ops))}
	for i, op := range req.Ops {
		r := reg.RelationByName(op.Rel)
		if r == nil {
			return nil, fmt.Errorf("server: op %d: unknown relation %q", i, op.Rel)
		}
		s, err := tupleOf(op.S)
		if err != nil {
			return nil, fmt.Errorf("server: op %d: s: %w", i, err)
		}
		co := compiledOp{kind: op.Kind, r: r, s: s}
		switch op.Kind {
		case OpInsert:
			if co.t, err = tupleOf(op.T); err != nil {
				return nil, fmt.Errorf("server: op %d: t: %w", i, err)
			}
		case OpRemove, OpCount:
			if len(op.T) > 0 {
				return nil, fmt.Errorf("server: op %d: %s takes no t tuple", i, op.Kind)
			}
		case OpQuery:
			if len(op.T) > 0 {
				return nil, fmt.Errorf("server: op %d: query takes no t tuple", i)
			}
			if len(op.Out) == 0 {
				return nil, fmt.Errorf("server: op %d: query needs out columns", i)
			}
			co.out = op.Out
		default:
			return nil, fmt.Errorf("server: op %d: unknown op kind %q", i, op.Kind)
		}
		c.ops = append(c.ops, co)
	}
	return c, nil
}

// pendingOp holds one enqueued member's unresolved result.
type pendingOp struct {
	kind string
	pb   *core.Pending[bool]
	pi   *core.Pending[int]
	pt   *core.Pending[[]rel.Tuple]
}

// enqueue adds every op of c to tx, returning the unresolved results in
// op order. An error means some op could not be enqueued; the caller must
// abort the whole batch (members already enqueued cannot be withdrawn).
func (c *compiledReq) enqueue(tx *core.Txn) ([]pendingOp, error) {
	pend := make([]pendingOp, 0, len(c.ops))
	for i, op := range c.ops {
		var p pendingOp
		p.kind = op.kind
		var err error
		switch op.kind {
		case OpInsert:
			p.pb, err = tx.InsertInto(op.r, op.s, op.t)
		case OpRemove:
			p.pb, err = tx.RemoveFrom(op.r, op.s)
		case OpCount:
			p.pi, err = tx.CountIn(op.r, op.s)
		case OpQuery:
			p.pt, err = tx.QueryIn(op.r, op.s, op.out...)
		}
		if err != nil {
			return nil, fmt.Errorf("server: op %d: %w", i, err)
		}
		pend = append(pend, p)
	}
	return pend, nil
}

// resolve converts the committed pendings into wire results.
func resolve(pend []pendingOp) []OpResult {
	out := make([]OpResult, len(pend))
	for i, p := range pend {
		switch p.kind {
		case OpInsert, OpRemove:
			v := p.pb.Value()
			out[i].Applied = &v
		case OpCount:
			v := p.pi.Value()
			out[i].Count = &v
		case OpQuery:
			tuples := p.pt.Value()
			rows := make([]map[string]any, len(tuples))
			for j, t := range tuples {
				rows[j] = tupleToMap(t)
			}
			out[i].Rows = rows
		}
	}
	return out
}

// errProbe is the sentinel a validation probe returns from the Batch
// callback: it aborts the batch before anything executes, proving every
// member enqueued cleanly without committing them.
var errProbe = fmt.Errorf("server: validation probe (never executed)")

// probeRequest proves c is enqueueable: it dry-runs the exact enqueue
// path inside an aborted registry batch, so plan existence and column
// coverage are checked by the same code that will run at group commit.
// After a nil probeRequest, the group enqueue of c cannot fail (schemas
// and plan caches are immutable after synthesis).
func probeRequest(reg *core.Registry, c *compiledReq) error {
	var enqErr error
	err := reg.Batch(func(tx *core.Txn) error {
		if _, enqErr = c.enqueue(tx); enqErr != nil {
			return enqErr
		}
		return errProbe
	})
	if err == errProbe {
		return nil
	}
	return err
}

// summarize renders a compiled request for error messages: op kinds and
// relations only.
func (c *compiledReq) summarize() string {
	parts := make([]string, len(c.ops))
	for i, op := range c.ops {
		parts[i] = op.kind + " " + op.r.Name()
	}
	return strings.Join(parts, ", ")
}
