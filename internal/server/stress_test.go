package server_test

// Race-detector stress: goroutine clients hammer one dispatcher while a
// bouncer repeatedly closes it and swaps in a fresh one over the same
// registry — the server-restart scenario at full concurrency. The
// invariants: a Submit either returns its request's committed results or
// ErrClosed (never a hang, never a dropped reply, never a partial
// transaction), multi-op requests stay atomic across restarts, and the
// registry is consistent afterwards. CI runs this under -race.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/workload"
)

// TestStressDispatcherRestart bounces the dispatcher under load.
func TestStressDispatcherRestart(t *testing.T) {
	const (
		clients  = 8
		requests = 150 // per client, across however many dispatcher generations
		bounces  = 12
	)
	social := workload.MustSocial()
	cfg := server.Config{Window: 200 * time.Microsecond, MaxBatch: 4}

	var disp atomic.Pointer[server.Dispatcher]
	disp.Store(server.NewDispatcher(social.Reg, cfg))

	var committed, rejected atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Shared key space (stride 1): requests collide across clients
			// and across dispatcher generations.
			gen := server.NewSocialTraffic(uint64(c+1), workload.DefaultSocialMix(), 16, 1, 0)
			for i := 0; i < requests; i++ {
				req := gen.Next()
				for {
					resp, err := disp.Load().Submit(req)
					if errors.Is(err, server.ErrClosed) {
						rejected.Add(1)
						runtime.Gosched() // the bouncer is swapping; reload and retry
						continue
					}
					if err != nil {
						t.Errorf("client %d request %d: %v", c, i, err)
						return
					}
					if len(resp.Results) != len(req.Ops) {
						t.Errorf("client %d request %d: %d results for %d ops", c, i, len(resp.Results), len(req.Ops))
						return
					}
					// Atomicity probe on the add-post composite: the count
					// runs after this request's own posts insert, so it can
					// never see fewer than one post for the author.
					if len(req.Ops) == 3 && req.Ops[1].Kind == server.OpInsert && req.Ops[1].Rel == "posts" {
						if n := *resp.Results[2].Count; n < 1 {
							t.Errorf("client %d request %d: post count %d after insert in same request", c, i, n)
							return
						}
					}
					committed.Add(1)
					break
				}
			}
		}(c)
	}

	// The bouncer: close the live dispatcher mid-traffic, then install a
	// fresh one. Close drains — every request parked at that instant is
	// still answered.
	for b := 0; b < bounces; b++ {
		time.Sleep(2 * time.Millisecond)
		next := server.NewDispatcher(social.Reg, cfg)
		old := disp.Swap(next)
		old.Close()
	}
	wg.Wait()
	disp.Load().Close()
	if t.Failed() {
		t.FailNow()
	}

	if got := committed.Load(); got != clients*requests {
		t.Fatalf("committed %d requests, want %d (every request must eventually commit)", got, clients*requests)
	}
	t.Logf("stress: %d commits, %d ErrClosed retries across %d dispatcher generations",
		committed.Load(), rejected.Load(), bounces+1)

	// The registry survived: a full checksum walks every relation's
	// snapshot and fails if any plan is broken.
	if _, err := server.RegistryChecksum(social.Reg); err != nil {
		t.Fatalf("registry inconsistent after stress: %v", err)
	}
}

// TestStressServerShutdownUnderLoad points HTTP clients at a live server
// and shuts it down mid-traffic: every in-flight request must end in a
// committed reply or a clean error (503/connection error) — never a hang.
func TestStressServerShutdownUnderLoad(t *testing.T) {
	srv, base := startServer(t, server.Config{Window: 300 * time.Microsecond, MaxBatch: 4})

	const clients = 6
	var wg sync.WaitGroup
	var committed atomic.Uint64
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(base)
			gen := server.NewSocialTraffic(uint64(c+1), workload.DefaultSocialMix(), 16, 1, 0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.Do(context.Background(), gen.Next()); err == nil {
					committed.Add(1)
				}
				// Errors after shutdown begins are expected; the loop keeps
				// going until told to stop, proving no request ever hangs.
			}
		}(c)
	}

	time.Sleep(20 * time.Millisecond) // let traffic build
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}
	close(stop)
	wg.Wait()

	if committed.Load() == 0 {
		t.Fatal("no request committed before shutdown")
	}
	st := srv.Dispatcher().Stats()
	if st.Requests == 0 {
		t.Fatal("dispatcher saw no traffic")
	}
}
