package server_test

// End-to-end tests: a real crsd server (in-process, random port), real
// HTTP clients, and a sequential single-client oracle. The lockstep
// topology makes the coalescing measurement deterministic: K clients
// that each block on their reply, against a window of MaxBatch K and a
// timer far longer than a round trip, commit in groups of exactly K —
// so batch sizes are read straight from replies rather than inferred
// from timing.

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/workload"
)

// startServer runs a server over a fresh social registry on a random
// port and tears it down with the test.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(workload.MustSocial().Reg, cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, "http://" + srv.Addr()
}

// trafficFor builds client c's deterministic stream for a K-client run:
// shared seed discipline, disjoint key partition (keys ≡ c mod K).
func trafficFor(c, clients int) *server.SocialTraffic {
	return server.NewSocialTraffic(uint64(c+1), workload.DefaultSocialMix(), 24, int64(clients), int64(c))
}

// TestE2ELockstepOracle is the headline e2e: K concurrent HTTP clients
// in lockstep against one crsd, every reply recorded; then the same K
// streams replayed sequentially by a single client against a fresh
// server. Per-request results must match byte-for-byte, final relation
// contents must be identical, and the concurrent run must have
// coalesced (mean batch size ≥ 2 — in lockstep, exactly K).
func TestE2ELockstepOracle(t *testing.T) {
	const clients, rounds = 4, 30

	srv, base := startServer(t, server.Config{Window: 5 * time.Second, MaxBatch: clients})
	resultLog := make([][]string, clients) // per client, per round: Results JSON
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(base)
			gen := trafficFor(c, clients)
			log := make([]string, 0, rounds)
			for i := 0; i < rounds; i++ {
				resp, err := cl.Do(context.Background(), gen.Next())
				if err != nil {
					t.Errorf("client %d round %d: %v", c, i, err)
					return
				}
				if resp.BatchSize < 1 || resp.BatchSize > clients {
					t.Errorf("client %d round %d: batch size %d out of range", c, i, resp.BatchSize)
					return
				}
				b, err := json.Marshal(resp.Results)
				if err != nil {
					t.Errorf("client %d round %d: %v", c, i, err)
					return
				}
				log = append(log, string(b))
			}
			resultLog[c] = log
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	st := srv.Dispatcher().Stats()
	if st.Requests != clients*rounds {
		t.Fatalf("server committed %d requests, want %d", st.Requests, clients*rounds)
	}
	if st.MeanBatchSize < 2 {
		t.Fatalf("mean coalesced batch size %.2f, want ≥ 2 (lockstep should reach %d)", st.MeanBatchSize, clients)
	}
	if st.Degraded != 0 {
		t.Fatalf("healthy e2e degraded %d windows", st.Degraded)
	}

	// Sequential oracle: fresh server, one client, MaxBatch 1, identical
	// streams. Disjoint key partitions make the replies independent of
	// client order, so replaying client-by-client is a valid
	// sequentialization of the concurrent run.
	oSrv, oBase := startServer(t, server.Config{MaxBatch: 1})
	oCl := client.New(oBase)
	for c := 0; c < clients; c++ {
		gen := trafficFor(c, clients)
		for i := 0; i < rounds; i++ {
			resp, err := oCl.Do(context.Background(), gen.Next())
			if err != nil {
				t.Fatalf("oracle client %d round %d: %v", c, i, err)
			}
			if resp.BatchSize != 1 {
				t.Fatalf("oracle coalesced (batch size %d)", resp.BatchSize)
			}
			b, _ := json.Marshal(resp.Results)
			if string(b) != resultLog[c][i] {
				t.Fatalf("client %d round %d diverged from oracle:\nconcurrent: %s\nsequential: %s",
					c, i, resultLog[c][i], b)
			}
		}
	}

	// Final relation contents must be identical registries.
	concurrent, err := server.RegistryChecksum(srv.Registry())
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := server.RegistryChecksum(oSrv.Registry())
	if err != nil {
		t.Fatal(err)
	}
	if concurrent != sequential {
		t.Fatalf("final relation checksum %x (concurrent) != %x (sequential oracle)", concurrent, sequential)
	}
}

// TestE2ESingleOpEndpoints exercises the convenience endpoints and
// introspection through the Go client against a live server.
func TestE2ESingleOpEndpoints(t *testing.T) {
	_, base := startServer(t, server.Config{Window: 100 * time.Microsecond})
	cl := client.New(base, client.WithTimeout(15*time.Second))
	ctx := context.Background()

	if !cl.Healthy(ctx) {
		t.Fatal("healthz failed")
	}
	applied, err := cl.Insert(ctx, "posts", map[string]any{"author": 1, "post": 10}, map[string]any{"ts": 111})
	if err != nil || !applied {
		t.Fatalf("insert: applied=%v err=%v", applied, err)
	}
	applied, err = cl.Insert(ctx, "posts", map[string]any{"author": 1, "post": 10}, map[string]any{"ts": 111})
	if err != nil || applied {
		t.Fatalf("duplicate insert: applied=%v err=%v (want put-if-absent false)", applied, err)
	}
	n, err := cl.Count(ctx, "posts", map[string]any{"author": 1})
	if err != nil || n != 1 {
		t.Fatalf("count: %d err=%v, want 1", n, err)
	}
	rows, err := cl.Query(ctx, "posts", map[string]any{"author": 1}, "post", "ts")
	if err != nil || len(rows) != 1 {
		t.Fatalf("query: %v err=%v, want one row", rows, err)
	}
	if ts, ok := rows[0]["ts"].(json.Number); !ok || ts.String() != "111" {
		t.Fatalf("query row ts = %#v, want 111", rows[0]["ts"])
	}
	applied, err = cl.Remove(ctx, "posts", map[string]any{"author": 1, "post": 10})
	if err != nil || !applied {
		t.Fatalf("remove: applied=%v err=%v", applied, err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Requests != 5 {
		t.Fatalf("stats counted %d requests, want 5", st.Requests)
	}

	// Multi-op transaction with sequential semantics: the count sees the
	// insert that precedes it in the same request.
	resp, err := cl.Do(ctx, server.AddPostRequest(2, 20, 5))
	if err != nil {
		t.Fatalf("txn: %v", err)
	}
	if got := *resp.Results[2].Count; got != 1 {
		t.Fatalf("add-post count %d, want 1", got)
	}

	// Validation errors surface as client errors, not hangs.
	if _, err := cl.Count(ctx, "nope", map[string]any{"user": 1}); err == nil {
		t.Fatal("count on unknown relation succeeded")
	}

	// A context that is already expired aborts before the server replies.
	expired, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel()
	if _, err := cl.Count(expired, "posts", map[string]any{"author": 2}); err == nil {
		t.Fatal("expired context did not abort the request")
	}
}

// TestE2ELegacyClientShims pins that the deprecated pre-context
// signatures still compile and behave identically to the context
// methods they wrap.
func TestE2ELegacyClientShims(t *testing.T) {
	_, base := startServer(t, server.Config{Window: 100 * time.Microsecond})
	//lint:ignore SA1019 the deprecated shims must keep working until removed.
	cl := client.New(base).Legacy()

	if !cl.Healthy() {
		t.Fatal("healthz failed")
	}
	applied, err := cl.Insert("posts", map[string]any{"author": 7, "post": 70}, map[string]any{"ts": 700})
	if err != nil || !applied {
		t.Fatalf("legacy insert: applied=%v err=%v", applied, err)
	}
	n, err := cl.Count("posts", map[string]any{"author": 7})
	if err != nil || n != 1 {
		t.Fatalf("legacy count: %d err=%v, want 1", n, err)
	}
	rows, err := cl.Query("posts", map[string]any{"author": 7}, "post")
	if err != nil || len(rows) != 1 {
		t.Fatalf("legacy query: %v err=%v, want one row", rows, err)
	}
	if _, err := cl.Do(server.AddPostRequest(8, 80, 1)); err != nil {
		t.Fatalf("legacy txn: %v", err)
	}
	applied, err = cl.Remove("posts", map[string]any{"author": 7, "post": 70})
	if err != nil || !applied {
		t.Fatalf("legacy remove: applied=%v err=%v", applied, err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("legacy stats: %v", err)
	}
	if st.Requests != 5 {
		t.Fatalf("legacy stats counted %d requests, want 5", st.Requests)
	}
}

// TestE2EGracefulShutdown pins the drain contract over the wire: clients
// parked in a half-full window when Shutdown starts still receive their
// committed replies (nothing is dropped), and the server then refuses
// new work.
func TestE2EGracefulShutdown(t *testing.T) {
	const parked = 5
	// A window that never closes on its own: hour-long timer, huge
	// cutoff. Only Shutdown's drain can answer these clients.
	srv, base := startServer(t, server.Config{Window: time.Hour, MaxBatch: 1000})

	var wg sync.WaitGroup
	errs := make([]error, parked)
	sums := make([]uint64, parked)
	for c := 0; c < parked; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(base)
			resp, err := cl.Do(context.Background(), server.AddPostRequest(int64(c), int64(100+c), int64(c)))
			if err != nil {
				errs[c] = err
				return
			}
			sums[c] = server.FoldResponse(0, resp)
		}(c)
	}

	// Deterministic rendezvous: wait until every client is parked in the
	// window, then shut down.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Dispatcher().Pending() < parked {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d clients parked", srv.Dispatcher().Pending(), parked)
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	for c := 0; c < parked; c++ {
		if errs[c] != nil {
			t.Fatalf("client %d dropped at shutdown: %v", c, errs[c])
		}
		// add-post on a fresh registry: both inserts applied (2) + count 1.
		if sums[c] != 3 {
			t.Fatalf("client %d reply checksum %d, want 3", c, sums[c])
		}
	}
	st := srv.Dispatcher().Stats()
	if st.Requests != parked {
		t.Fatalf("drained %d requests, want %d", st.Requests, parked)
	}
	if st.MaxBatchSize < 2 {
		t.Fatalf("drain committed max batch %d; parked clients should have coalesced", st.MaxBatchSize)
	}

	// After shutdown the listener is gone (connection error) or the
	// dispatcher refuses (503 → client error): either way, an error.
	if _, err := client.New(base).Do(context.Background(), server.SnapshotRequest(1)); err == nil {
		t.Fatal("request succeeded after shutdown")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
