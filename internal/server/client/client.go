// Package client is the Go client of the crsd wire protocol: a thin
// typed wrapper over the HTTP+JSON endpoints of internal/server, used by
// the e2e tests and the crsbench -wire benchmark. One Client is safe for
// concurrent use by many goroutines (it shares one http.Client and its
// connection pool).
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/server"
)

// Client talks to one crsd server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// HTTP is the underlying client; nil uses a default with a generous
	// timeout (group commits deliberately delay replies by the window).
	HTTP *http.Client
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: 30 * time.Second},
	}
}

// Do submits a multi-op transaction and returns its committed response.
// A non-2xx status becomes an error carrying the server's message.
func (c *Client) Do(req *server.Request) (*server.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpResp, err := c.client().Post(c.BaseURL+"/v1/txn", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode != http.StatusOK {
		return nil, decodeError(httpResp.StatusCode, data)
	}
	var resp server.Response
	if err := unmarshalNumbers(data, &resp); err != nil {
		return nil, fmt.Errorf("client: bad response: %w", err)
	}
	return &resp, nil
}

// Insert submits insert rel s t as a one-op transaction and reports the
// put-if-absent outcome.
func (c *Client) Insert(rel string, s, t map[string]any) (bool, error) {
	resp, err := c.Do(&server.Request{Ops: []server.Op{{Kind: server.OpInsert, Rel: rel, S: s, T: t}}})
	if err != nil {
		return false, err
	}
	return *resp.Results[0].Applied, nil
}

// Remove submits remove rel s and reports whether anything existed.
func (c *Client) Remove(rel string, s map[string]any) (bool, error) {
	resp, err := c.Do(&server.Request{Ops: []server.Op{{Kind: server.OpRemove, Rel: rel, S: s}}})
	if err != nil {
		return false, err
	}
	return *resp.Results[0].Applied, nil
}

// Count submits |query rel s| and returns the cardinality.
func (c *Client) Count(rel string, s map[string]any) (int, error) {
	resp, err := c.Do(&server.Request{Ops: []server.Op{{Kind: server.OpCount, Rel: rel, S: s}}})
	if err != nil {
		return 0, err
	}
	return *resp.Results[0].Count, nil
}

// Query submits query rel s out and returns the projected rows.
func (c *Client) Query(rel string, s map[string]any, out ...string) ([]map[string]any, error) {
	resp, err := c.Do(&server.Request{Ops: []server.Op{{Kind: server.OpQuery, Rel: rel, S: s, Out: out}}})
	if err != nil {
		return nil, err
	}
	return resp.Results[0].Rows, nil
}

// Stats fetches the dispatcher's coalescing counters.
func (c *Client) Stats() (*server.Stats, error) {
	httpResp, err := c.client().Get(c.BaseURL + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode != http.StatusOK {
		return nil, decodeError(httpResp.StatusCode, data)
	}
	var s server.Stats
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Healthy reports whether the server answers its liveness probe.
func (c *Client) Healthy() bool {
	resp, err := c.client().Get(c.BaseURL + "/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// client applies the HTTP default.
func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// unmarshalNumbers unmarshals with UseNumber so row values keep integer
// identity (int64, not float64) across the wire — the same discipline the
// server applies to request bodies.
func unmarshalNumbers(data []byte, into any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	return dec.Decode(into)
}

// decodeError turns an error reply into a Go error.
func decodeError(status int, data []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("client: server returned %d: %s", status, e.Error)
	}
	return fmt.Errorf("client: server returned %d", status)
}
