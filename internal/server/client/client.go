// Package client is the Go client of the crsd wire protocol: a thin
// typed wrapper over the HTTP+JSON endpoints of internal/server, used by
// the e2e tests and the crsbench -wire/-openloop benchmarks. One Client
// is safe for concurrent use by many goroutines (it shares one
// http.Client and its connection pool).
//
// Construction follows the options vocabulary (client.New(base,
// client.WithTimeout(...))) and every method takes a context.Context
// first, so open-loop callers can enforce per-request deadlines without
// giving up the shared connection pool. The pre-context signatures
// survive as deprecated shims on the Legacy view.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/server"
)

// DefaultTimeout is the per-request timeout New installs when no option
// overrides it — generous, because group commits deliberately delay
// replies by the window.
const DefaultTimeout = 30 * time.Second

// Client talks to one crsd server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
}

// Option configures a Client at construction time.
type Option func(*Client)

// WithTimeout sets the per-request timeout of the client's default
// http.Client. It is ignored if WithHTTPClient later replaces the
// transport wholesale; per-request deadlines via context take precedence
// either way.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) {
		if c.HTTP != nil {
			c.HTTP.Timeout = d
		}
	}
}

// WithHTTPClient replaces the underlying http.Client wholesale — for
// custom transports, connection-pool tuning, or test doubles.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.HTTP = h }
}

// New returns a client for the server at baseURL, configured by opts in
// order. With no options it behaves like the original constructor: a
// fresh http.Client with DefaultTimeout.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: DefaultTimeout},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Do submits a multi-op transaction and returns its committed response.
// A non-2xx status becomes an error carrying the server's message; ctx
// cancellation or deadline expiry aborts the request.
func (c *Client) Do(ctx context.Context, req *server.Request) (*server.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	data, err := c.post(ctx, "/v1/txn", body)
	if err != nil {
		return nil, err
	}
	var resp server.Response
	if err := unmarshalNumbers(data, &resp); err != nil {
		return nil, fmt.Errorf("client: bad response: %w", err)
	}
	return &resp, nil
}

// Insert submits insert rel s t as a one-op transaction and reports the
// put-if-absent outcome.
func (c *Client) Insert(ctx context.Context, rel string, s, t map[string]any) (bool, error) {
	resp, err := c.Do(ctx, &server.Request{Ops: []server.Op{{Kind: server.OpInsert, Rel: rel, S: s, T: t}}})
	if err != nil {
		return false, err
	}
	return *resp.Results[0].Applied, nil
}

// Remove submits remove rel s and reports whether anything existed.
func (c *Client) Remove(ctx context.Context, rel string, s map[string]any) (bool, error) {
	resp, err := c.Do(ctx, &server.Request{Ops: []server.Op{{Kind: server.OpRemove, Rel: rel, S: s}}})
	if err != nil {
		return false, err
	}
	return *resp.Results[0].Applied, nil
}

// Count submits |query rel s| and returns the cardinality.
func (c *Client) Count(ctx context.Context, rel string, s map[string]any) (int, error) {
	resp, err := c.Do(ctx, &server.Request{Ops: []server.Op{{Kind: server.OpCount, Rel: rel, S: s}}})
	if err != nil {
		return 0, err
	}
	return *resp.Results[0].Count, nil
}

// Query submits query rel s out and returns the projected rows.
func (c *Client) Query(ctx context.Context, rel string, s map[string]any, out ...string) ([]map[string]any, error) {
	resp, err := c.Do(ctx, &server.Request{Ops: []server.Op{{Kind: server.OpQuery, Rel: rel, S: s, Out: out}}})
	if err != nil {
		return nil, err
	}
	return resp.Results[0].Rows, nil
}

// Stats fetches the dispatcher's coalescing and latency counters.
func (c *Client) Stats(ctx context.Context) (*server.Stats, error) {
	data, err := c.get(ctx, "/v1/stats")
	if err != nil {
		return nil, err
	}
	var s server.Stats
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Healthy reports whether the server answers its liveness probe.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body) // drain for pool reuse
	return resp.StatusCode == http.StatusOK
}

// Legacy is the pre-context view of a Client: the original signatures,
// kept as thin shims over the context methods with context.Background().
//
// Deprecated: use the context methods on Client directly.
type Legacy struct {
	c *Client
}

// Legacy returns the pre-context view of c.
//
// Deprecated: use the context methods on Client directly.
func (c *Client) Legacy() Legacy { return Legacy{c: c} }

// Do submits a multi-op transaction without a caller deadline.
//
// Deprecated: use Client.Do with a context.
func (l Legacy) Do(req *server.Request) (*server.Response, error) {
	return l.c.Do(context.Background(), req)
}

// Insert submits insert rel s t without a caller deadline.
//
// Deprecated: use Client.Insert with a context.
func (l Legacy) Insert(rel string, s, t map[string]any) (bool, error) {
	return l.c.Insert(context.Background(), rel, s, t)
}

// Remove submits remove rel s without a caller deadline.
//
// Deprecated: use Client.Remove with a context.
func (l Legacy) Remove(rel string, s map[string]any) (bool, error) {
	return l.c.Remove(context.Background(), rel, s)
}

// Count submits |query rel s| without a caller deadline.
//
// Deprecated: use Client.Count with a context.
func (l Legacy) Count(rel string, s map[string]any) (int, error) {
	return l.c.Count(context.Background(), rel, s)
}

// Query submits query rel s out without a caller deadline.
//
// Deprecated: use Client.Query with a context.
func (l Legacy) Query(rel string, s map[string]any, out ...string) ([]map[string]any, error) {
	return l.c.Query(context.Background(), rel, s, out...)
}

// Stats fetches the dispatcher counters without a caller deadline.
//
// Deprecated: use Client.Stats with a context.
func (l Legacy) Stats() (*server.Stats, error) {
	return l.c.Stats(context.Background())
}

// Healthy probes liveness without a caller deadline.
//
// Deprecated: use Client.Healthy with a context.
func (l Legacy) Healthy() bool {
	return l.c.Healthy(context.Background())
}

// post issues a context-bound POST and returns the 200 body.
func (c *Client) post(ctx context.Context, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.roundTrip(req)
}

// get issues a context-bound GET and returns the 200 body.
func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	return c.roundTrip(req)
}

// roundTrip executes the request and maps non-200 replies to errors.
func (c *Client) roundTrip(req *http.Request) ([]byte, error) {
	httpResp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode != http.StatusOK {
		return nil, decodeError(httpResp.StatusCode, data)
	}
	return data, nil
}

// client applies the HTTP default.
func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// unmarshalNumbers unmarshals with UseNumber so row values keep integer
// identity (int64, not float64) across the wire — the same discipline the
// server applies to request bodies.
func unmarshalNumbers(data []byte, into any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	return dec.Decode(into)
}

// decodeError turns an error reply into a Go error.
func decodeError(status int, data []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("client: server returned %d: %s", status, e.Error)
	}
	return fmt.Errorf("client: server returned %d", status)
}
