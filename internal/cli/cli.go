// Package cli holds the small parsing helpers shared by the command-line
// tools (cmd/crsbench, cmd/crstune): operation-mix strings in the paper's
// x-y-z-w notation, comma-separated integer lists, and variant-name lists.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graphreps"
	"repro/internal/workload"
)

// ParseMix parses "x-y-z-w" into an operation mix and validates that the
// percentages sum to 100.
func ParseMix(s string) (workload.Mix, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 4 {
		return workload.Mix{}, fmt.Errorf("cli: bad mix %q (want x-y-z-w)", s)
	}
	var nums [4]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return workload.Mix{}, fmt.Errorf("cli: bad mix component %q in %q", p, s)
		}
		nums[i] = n
	}
	m := workload.Mix{Successors: nums[0], Predecessors: nums[1], Inserts: nums[2], Removes: nums[3]}
	if nums[0]+nums[1]+nums[2]+nums[3] != 100 {
		return workload.Mix{}, fmt.Errorf("cli: mix %q does not sum to 100", s)
	}
	return m, nil
}

// ParseMixes parses a comma-separated mix list; "all" yields the four
// Figure 5 panels.
func ParseMixes(s string) ([]workload.Mix, error) {
	if s == "all" {
		return workload.Figure5Mixes(), nil
	}
	var out []workload.Mix
	for _, part := range strings.Split(s, ",") {
		m, err := ParseMix(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// ParseInts parses a comma-separated list of positive integers.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("cli: bad positive integer %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cli: empty integer list")
	}
	return out, nil
}

// ParseVariants parses a comma-separated list of Figure 5 variant names
// ("Handcoded" included); "all" yields the twelve named decompositions
// plus the hand-coded baseline.
func ParseVariants(s string) ([]string, error) {
	if s == "all" {
		var names []string
		for _, v := range graphreps.Figure5Variants() {
			names = append(names, v.Name)
		}
		return append(names, "Handcoded"), nil
	}
	var names []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "Handcoded" {
			if _, err := graphreps.VariantByName(part); err != nil {
				return nil, err
			}
		}
		names = append(names, part)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("cli: empty variant list")
	}
	return names, nil
}
