package cli

import (
	"testing"

	"repro/internal/workload"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("70-0-20-10")
	if err != nil {
		t.Fatal(err)
	}
	want := workload.Mix{Successors: 70, Predecessors: 0, Inserts: 20, Removes: 10}
	if m != want {
		t.Fatalf("ParseMix = %+v", m)
	}
	for _, bad := range []string{"70-0-20", "70-0-20-11", "a-b-c-d", "70-0-20-10-0", "-10-50-40-20"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) should fail", bad)
		}
	}
}

func TestParseMixes(t *testing.T) {
	ms, err := ParseMixes("all")
	if err != nil || len(ms) != 4 {
		t.Fatalf("all: %v %d", err, len(ms))
	}
	ms, err = ParseMixes("50-30-15-5, 0-0-50-50")
	if err != nil || len(ms) != 2 {
		t.Fatalf("list: %v %d", err, len(ms))
	}
	if ms[1].Inserts != 50 {
		t.Fatalf("second mix wrong: %+v", ms[1])
	}
	if _, err := ParseMixes("50-30-15-5,bogus"); err == nil {
		t.Error("bad element should fail")
	}
}

func TestParseInts(t *testing.T) {
	ns, err := ParseInts("1, 2,4")
	if err != nil || len(ns) != 3 || ns[2] != 4 {
		t.Fatalf("%v %v", ns, err)
	}
	for _, bad := range []string{"0", "-1", "x", "1,,2"} {
		if _, err := ParseInts(bad); err == nil {
			t.Errorf("ParseInts(%q) should fail", bad)
		}
	}
}

func TestParseVariants(t *testing.T) {
	vs, err := ParseVariants("all")
	if err != nil || len(vs) != 13 {
		t.Fatalf("all: %v %d", err, len(vs))
	}
	if vs[12] != "Handcoded" {
		t.Fatalf("last = %s", vs[12])
	}
	vs, err = ParseVariants("Split 4, Handcoded")
	if err != nil || len(vs) != 2 {
		t.Fatalf("list: %v %v", vs, err)
	}
	if _, err := ParseVariants("Nope 7"); err == nil {
		t.Error("unknown variant should fail")
	}
}
