package decomp

import (
	"strings"
	"testing"

	"repro/internal/container"
	"repro/internal/rel"
)

func enumGraphSpec() rel.Spec {
	return rel.MustSpec([]string{"src", "dst", "weight"},
		rel.FD{From: []string{"src", "dst"}, To: []string{"weight"}})
}

func TestEnumerateAllValidate(t *testing.T) {
	for _, share := range []bool{false, true} {
		ds, err := Enumerate(enumGraphSpec(), EnumOptions{Share: share, Limit: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if len(ds) == 0 {
			t.Fatal("no decompositions enumerated")
		}
		for _, d := range ds {
			if err := d.Validate(); err != nil {
				t.Fatalf("share=%v: invalid decomposition:\n%s\n%v", share, d, err)
			}
		}
		t.Logf("share=%v: %d structures", share, len(ds))
	}
}

// TestEnumerateFindsFigure3Structures checks that the generic enumerator
// discovers all three hand-drawn structures of Figure 3: the stick, the
// split (two independent indexes) and — with sharing — the diamond.
func TestEnumerateFindsFigure3Structures(t *testing.T) {
	match := func(ds []*Decomposition, want func(*Decomposition) bool) bool {
		for _, d := range ds {
			if want(d) {
				return true
			}
		}
		return false
	}
	isStick := func(d *Decomposition) bool {
		// ρ-{src}→·-{dst}→·-{weight}→·, single chain.
		if len(d.Edges) != 3 || len(d.Root.Out) != 1 {
			return false
		}
		e0 := d.Root.Out[0]
		if !rel.ColsEqual(e0.Cols, []string{"src"}) || len(e0.Dst.Out) != 1 {
			return false
		}
		e1 := e0.Dst.Out[0]
		return rel.ColsEqual(e1.Cols, []string{"dst"}) && len(e1.Dst.Out) == 1 &&
			rel.ColsEqual(e1.Dst.Out[0].Cols, []string{"weight"})
	}
	isSplit := func(d *Decomposition) bool {
		// Root fans out {src} and {dst}; six edges, no shared nodes.
		if len(d.Root.Out) != 2 || len(d.Edges) != 6 {
			return false
		}
		cols := map[string]bool{}
		for _, e := range d.Root.Out {
			cols[strings.Join(e.Cols, ",")] = true
		}
		return cols["src"] && cols["dst"]
	}
	isDiamond := func(d *Decomposition) bool {
		// Root fans out {src} and {dst}, and some node has two parents.
		if len(d.Root.Out) != 2 {
			return false
		}
		cols := map[string]bool{}
		for _, e := range d.Root.Out {
			cols[strings.Join(e.Cols, ",")] = true
		}
		if !cols["src"] || !cols["dst"] {
			return false
		}
		for _, n := range d.Nodes {
			if len(n.In) >= 2 {
				return true
			}
		}
		return false
	}

	noShare, err := Enumerate(enumGraphSpec(), EnumOptions{Share: false, Limit: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if !match(noShare, isStick) {
		t.Error("stick structure not enumerated")
	}
	if !match(noShare, isSplit) {
		t.Error("split structure not enumerated")
	}
	shared, err := Enumerate(enumGraphSpec(), EnumOptions{Share: true, Limit: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if !match(shared, isDiamond) {
		t.Error("diamond structure not enumerated with sharing")
	}
}

func TestEnumerateAssignsCells(t *testing.T) {
	ds, err := Enumerate(enumGraphSpec(), EnumOptions{Limit: 500})
	if err != nil {
		t.Fatal(err)
	}
	// Every edge over {weight} out of a node binding {src,dst} must be a
	// Cell (the FD determines it); weight edges out of lesser nodes must
	// not be.
	checked := 0
	for _, d := range ds {
		for _, e := range d.Edges {
			if rel.ColsEqual(e.Cols, []string{"weight"}) {
				determined := enumGraphSpec().Determines(e.Src.A, e.Cols)
				if determined != (e.Container == container.Cell) {
					t.Fatalf("edge %s: determined=%v but container=%v in\n%s", e.Name, determined, e.Container, d)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no weight edges checked")
	}
}

func TestEnumerateRespectsLimit(t *testing.T) {
	ds, err := Enumerate(enumGraphSpec(), EnumOptions{Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 7 {
		t.Fatalf("limit ignored: %d", len(ds))
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	a, err := Enumerate(enumGraphSpec(), EnumOptions{Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enumerate(enumGraphSpec(), EnumOptions{Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if signature(a[i]) != signature(b[i]) {
			t.Fatalf("order differs at %d", i)
		}
	}
}

func TestEnumerateDcacheSpec(t *testing.T) {
	spec := rel.MustSpec([]string{"parent", "name", "child"},
		rel.FD{From: []string{"parent", "name"}, To: []string{"child"}})
	ds, err := Enumerate(spec, EnumOptions{Share: true, Limit: 3000})
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 2(a) structure must appear: root edges {parent} and
	// {parent,name}, sharing the (parent,name)-bound node.
	found := false
	for _, d := range ds {
		if len(d.Root.Out) != 2 {
			continue
		}
		var one, two *Edge
		for _, e := range d.Root.Out {
			switch len(e.Cols) {
			case 1:
				one = e
			case 2:
				two = e
			}
		}
		if one == nil || two == nil {
			continue
		}
		if rel.ColsEqual(one.Cols, []string{"parent"}) &&
			rel.ColsEqual(two.Cols, []string{"name", "parent"}) &&
			len(two.Dst.In) == 2 {
			found = true
			break
		}
	}
	if !found {
		t.Error("Figure 2(a) structure not found among enumerated dcache decompositions")
	}
}

func TestSubsets(t *testing.T) {
	ss := subsets([]string{"a", "b", "c"}, 2)
	if len(ss) != 6 { // 3 singletons + 3 pairs
		t.Fatalf("subsets = %v", ss)
	}
	ss3 := subsets([]string{"a", "b", "c"}, 3)
	if len(ss3) != 7 {
		t.Fatalf("subsets(3) = %v", ss3)
	}
}
