package decomp

import (
	"fmt"
	"strings"

	"repro/internal/container"
)

// ToDOT renders the decomposition in Graphviz DOT syntax using the visual
// conventions of Figures 2 and 3: solid edges for TreeMap, dashed for the
// concurrent maps, dotted for singleton (Cell) edges. Each edge is
// labelled with its column set; each node with its name and type.
func (d *Decomposition) ToDOT(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [shape=circle];\n")
	for _, n := range d.Nodes {
		fmt.Fprintf(&b, "  %q [label=\"%s\\n{%s}▷{%s}\"];\n",
			n.Name, n.Name, strings.Join(n.A, ","), strings.Join(n.B, ","))
	}
	for _, e := range d.Edges {
		style := edgeStyle(e.Container)
		fmt.Fprintf(&b, "  %q -> %q [label=\"{%s}\\n%s\", style=%s];\n",
			e.Src.Name, e.Dst.Name, strings.Join(e.Cols, ","), e.Container, style)
	}
	b.WriteString("}\n")
	return b.String()
}

func edgeStyle(k container.Kind) string {
	switch k {
	case container.Cell:
		return "dotted"
	case container.ConcurrentHashMap, container.ConcurrentSkipListMap, container.CopyOnWriteMap:
		return "dashed"
	default:
		return "solid"
	}
}
