package decomp

import (
	"strings"
	"testing"

	"repro/internal/container"
	"repro/internal/rel"
)

func graphSpec() rel.Spec {
	return rel.MustSpec([]string{"src", "dst", "weight"},
		rel.FD{From: []string{"src", "dst"}, To: []string{"weight"}})
}

func dirSpec() rel.Spec {
	return rel.MustSpec([]string{"parent", "name", "child"},
		rel.FD{From: []string{"parent", "name"}, To: []string{"child"}})
}

// buildDirTree constructs the Figure 2(a) decomposition: a TreeMap from
// parent, a TreeMap from name, a global ConcurrentHashMap over
// (parent, name), and a singleton child edge.
func buildDirTree(t *testing.T) *Decomposition {
	t.Helper()
	d, err := NewBuilder(dirSpec(), "ρ").
		Edge("ρx", "ρ", "x", []string{"parent"}, container.TreeMap).
		Edge("xy", "x", "y", []string{"name"}, container.TreeMap).
		Edge("ρy", "ρ", "y", []string{"parent", "name"}, container.ConcurrentHashMap).
		Edge("yz", "y", "z", []string{"child"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFigure2Decomposition(t *testing.T) {
	d := buildDirTree(t)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	x := d.NodeByName("x")
	if x == nil || !rel.ColsEqual(x.A, []string{"parent"}) || !rel.ColsEqual(x.B, []string{"child", "name"}) {
		t.Fatalf("x type wrong: %v", x)
	}
	y := d.NodeByName("y")
	if y == nil || !rel.ColsEqual(y.A, []string{"name", "parent"}) || !rel.ColsEqual(y.B, []string{"child"}) {
		t.Fatalf("y type wrong: %v", y)
	}
	z := d.NodeByName("z")
	if z == nil || !z.IsUnit() {
		t.Fatalf("z should be a unit node: %v", z)
	}
	if len(y.In) != 2 {
		t.Fatalf("y should have 2 in-edges (diamond), got %d", len(y.In))
	}
	// Topological order: root first, indexes match positions.
	if d.Nodes[0] != d.Root {
		t.Fatal("root must be first in topo order")
	}
	for _, e := range d.Edges {
		if e.Src.Index >= e.Dst.Index {
			t.Fatalf("edge %s violates topo order", e.Name)
		}
	}
}

func TestBuilderConflictingJoinTypes(t *testing.T) {
	// y reached with different column sets along two paths must fail.
	_, err := NewBuilder(dirSpec(), "ρ").
		Edge("ρx", "ρ", "x", []string{"parent"}, container.TreeMap).
		Edge("xy", "x", "y", []string{"name"}, container.TreeMap).
		Edge("ρy", "ρ", "y", []string{"parent"}, container.HashMap). // wrong cols
		Edge("yz", "y", "z", []string{"child"}, container.Cell).
		Build()
	if err == nil || !strings.Contains(err.Error(), "conflicting types") {
		t.Fatalf("want conflicting-types error, got %v", err)
	}
}

func TestBuilderUnreachableNode(t *testing.T) {
	_, err := NewBuilder(graphSpec(), "ρ").
		Edge("uv", "u", "v", []string{"src"}, container.HashMap). // u never reached
		Build()
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("want unreachable error, got %v", err)
	}
}

func TestValidateRejectsBadUnitEdge(t *testing.T) {
	// Cell edge over a column not functionally determined must fail:
	// src alone does not determine dst.
	_, err := NewBuilder(graphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, container.HashMap).
		Edge("uv", "u", "v", []string{"dst"}, container.Cell). // src does not determine dst
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	if err == nil || !strings.Contains(err.Error(), "FD") {
		t.Fatalf("want FD violation error, got %v", err)
	}
}

func TestValidateAcceptsProperUnitEdge(t *testing.T) {
	// weight is determined by src,dst → Cell edge is legal there.
	d, err := NewBuilder(graphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, container.HashMap).
		Edge("uv", "u", "v", []string{"dst"}, container.TreeMap).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if !d.EdgeByName("vw").IsUnitEdge() {
		t.Fatal("vw should be a unit edge")
	}
}

func TestValidateRejectsDanglingResidual(t *testing.T) {
	// Node with residual columns but no outgoing edges.
	_, err := NewBuilder(graphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, container.HashMap).
		Build()
	if err == nil || !strings.Contains(err.Error(), "no outgoing edges") {
		t.Fatalf("want coverage error, got %v", err)
	}
}

func TestValidateRejectsUndeclaredColumn(t *testing.T) {
	_, err := NewBuilder(graphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"nope"}, container.HashMap).
		Build()
	if err == nil {
		t.Fatal("want undeclared column error")
	}
}

func TestDominates(t *testing.T) {
	d := buildDirTree(t)
	ρ, x, y, z := d.Root, d.NodeByName("x"), d.NodeByName("y"), d.NodeByName("z")
	cases := []struct {
		a, b *Node
		want bool
	}{
		{ρ, x, true}, {ρ, y, true}, {ρ, z, true}, {ρ, ρ, true},
		{x, y, false}, // y also reachable via ρy
		{x, z, false},
		{y, z, true}, // all paths to z go through y
		{x, ρ, false}, {y, x, false}, {z, z, true},
	}
	for _, c := range cases {
		if got := d.Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%s, %s) = %v, want %v", c.a.Name, c.b.Name, got, c.want)
		}
	}
}

func TestPathsBetween(t *testing.T) {
	d := buildDirTree(t)
	paths := d.PathsBetween(d.Root, d.NodeByName("y"))
	if len(paths) != 2 {
		t.Fatalf("want 2 paths ρ→y, got %d", len(paths))
	}
	paths = d.PathsBetween(d.Root, d.NodeByName("z"))
	if len(paths) != 2 {
		t.Fatalf("want 2 paths ρ→z, got %d", len(paths))
	}
	paths = d.PathsBetween(d.NodeByName("y"), d.NodeByName("z"))
	if len(paths) != 1 {
		t.Fatalf("want 1 path y→z, got %d", len(paths))
	}
}

func TestAllColumnsOnPaths(t *testing.T) {
	d := buildDirTree(t)
	for name, cols := range d.AllColumnsOnPaths() {
		if !rel.ColsEqual(cols, d.Spec.Columns) {
			t.Errorf("node %s: A∪B = %v, want all columns", name, cols)
		}
	}
}

func TestLookupHelpers(t *testing.T) {
	d := buildDirTree(t)
	if d.NodeByName("nope") != nil || d.EdgeByName("nope") != nil {
		t.Fatal("lookup of missing name should be nil")
	}
	if d.EdgeBetween("ρ", "x") == nil || d.EdgeBetween("x", "ρ") != nil {
		t.Fatal("EdgeBetween broken")
	}
}

func TestKeyOf(t *testing.T) {
	d := buildDirTree(t)
	e := d.EdgeByName("ρy")
	tu := rel.T("parent", 2, "name", "b", "child", 3)
	k := e.KeyOf(tu)
	if k.Len() != 2 || !rel.Equal(k.At(0), 2) || !rel.Equal(k.At(1), "b") {
		t.Fatalf("KeyOf = %v", k)
	}
}

func TestToDOT(t *testing.T) {
	d := buildDirTree(t)
	dot := d.ToDOT("dcache")
	for _, want := range []string{"digraph", "ρ", "style=dotted", "style=dashed", "style=solid", "TreeMap"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestStringRenderings(t *testing.T) {
	d := buildDirTree(t)
	s := d.String()
	if !strings.Contains(s, "ρx") || !strings.Contains(s, "▷") {
		t.Fatalf("String() missing content:\n%s", s)
	}
}

func TestDeterministicTopoOrder(t *testing.T) {
	// Rebuilding the same decomposition must give identical node indexes
	// (the lock order depends on it).
	a := buildDirTree(t)
	b := buildDirTree(t)
	for i := range a.Nodes {
		if a.Nodes[i].Name != b.Nodes[i].Name {
			t.Fatalf("topo order not deterministic: %s vs %s at %d", a.Nodes[i].Name, b.Nodes[i].Name, i)
		}
	}
}
