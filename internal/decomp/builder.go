package decomp

import (
	"fmt"

	"repro/internal/container"
	"repro/internal/rel"
)

// Builder assembles a Decomposition edge by edge. Node types (A ▷ B) are
// inferred by propagation from the root, mirroring the let-binding
// notation of the paper: the builder is the programmatic equivalent of the
// graphical decomposition language of Figure 2(a).
//
//	b := decomp.NewBuilder(spec, "ρ")
//	b.Edge("ρx", "ρ", "x", []string{"parent"}, container.TreeMap)
//	b.Edge("xy", "x", "y", []string{"name"}, container.TreeMap)
//	b.Edge("ρy", "ρ", "y", []string{"parent", "name"}, container.ConcurrentHashMap)
//	b.Edge("yz", "y", "z", []string{"child"}, container.Cell)
//	d, err := b.Build()
type Builder struct {
	spec  rel.Spec
	root  string
	edges []builderEdge
	err   error
}

type builderEdge struct {
	name      string
	src, dst  string
	cols      []string
	container container.Kind
}

// NewBuilder starts a decomposition for spec with the given root node
// name (conventionally "ρ").
func NewBuilder(spec rel.Spec, root string) *Builder {
	return &Builder{spec: spec, root: root}
}

// Edge adds an edge from src to dst over the given ordered key columns,
// implemented by the given container kind. Nodes are created on first
// mention. Returns the builder for chaining.
func (b *Builder) Edge(name, src, dst string, cols []string, kind container.Kind) *Builder {
	if b.err != nil {
		return b
	}
	if name == "" {
		name = src + dst
	}
	b.edges = append(b.edges, builderEdge{name: name, src: src, dst: dst, cols: cols, container: kind})
	return b
}

// Build infers node types, fixes a topological order, and validates the
// resulting decomposition.
func (b *Builder) Build() (*Decomposition, error) {
	if b.err != nil {
		return nil, b.err
	}
	nodes := map[string]*Node{}
	get := func(name string) *Node {
		if n, ok := nodes[name]; ok {
			return n
		}
		n := &Node{Name: name}
		nodes[name] = n
		return n
	}
	root := get(b.root)
	root.A = nil
	root.B = sortCols(b.spec.Columns)
	typed := map[string]bool{b.root: true}

	edges := make([]*Edge, 0, len(b.edges))
	for _, be := range b.edges {
		e := &Edge{
			Name:      be.name,
			Src:       get(be.src),
			Dst:       get(be.dst),
			Cols:      append([]string(nil), be.cols...),
			Container: be.container,
		}
		edges = append(edges, e)
		e.Src.Out = append(e.Src.Out, e)
		e.Dst.In = append(e.Dst.In, e)
	}

	// Propagate types from the root; every node must be reached.
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			if !typed[e.Src.Name] {
				continue
			}
			wantA := rel.ColsUnion(e.Src.A, e.Cols)
			wantB := rel.ColsMinus(e.Src.B, e.Cols)
			if !typed[e.Dst.Name] {
				e.Dst.A = wantA
				e.Dst.B = wantB
				typed[e.Dst.Name] = true
				changed = true
			} else if !rel.ColsEqual(e.Dst.A, wantA) || !rel.ColsEqual(e.Dst.B, wantB) {
				return nil, fmt.Errorf("decomp: node %s reached with conflicting types: {%v ▷ %v} vs {%v ▷ %v} via edge %s",
					e.Dst.Name, e.Dst.A, e.Dst.B, wantA, wantB, e.Name)
			}
		}
	}
	for name := range nodes {
		if !typed[name] {
			return nil, fmt.Errorf("decomp: node %s unreachable from root %s", name, b.root)
		}
	}

	d := &Decomposition{Spec: b.spec, Root: root}
	d.Nodes = topoSort(root, nodes)
	for i, n := range d.Nodes {
		n.Index = i
	}
	for i, e := range edges {
		e.Index = i
		e.computeSortOrder()
	}
	d.Edges = edges
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// MustBuild is Build panicking on error, for literals in examples/tests.
func (b *Builder) MustBuild() *Decomposition {
	d, err := b.Build()
	if err != nil {
		panic(err)
	}
	return d
}

// topoSort returns the nodes in a deterministic topological order: by
// Kahn's algorithm, breaking ties by node name so that rebuilding the same
// decomposition always yields the same lock order (§5.1 fixes "a
// topological sort of the decomposition nodes").
func topoSort(root *Node, nodes map[string]*Node) []*Node {
	indeg := map[*Node]int{}
	for _, n := range nodes {
		for _, e := range n.Out {
			indeg[e.Dst]++
		}
	}
	var frontier []*Node
	for _, n := range nodes {
		if indeg[n] == 0 {
			frontier = append(frontier, n)
		}
	}
	var order []*Node
	for len(frontier) > 0 {
		// Deterministic tie-break: smallest name first, root always first.
		best := 0
		for i := 1; i < len(frontier); i++ {
			if frontier[i] == root {
				best = i
				break
			}
			if frontier[best] != root && frontier[i].Name < frontier[best].Name {
				best = i
			}
		}
		n := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)
		order = append(order, n)
		for _, e := range n.Out {
			indeg[e.Dst]--
			if indeg[e.Dst] == 0 {
				frontier = append(frontier, e.Dst)
			}
		}
	}
	return order
}
