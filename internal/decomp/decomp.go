// Package decomp implements the concurrent decomposition language of §4 of
// "Concurrent Data Representation Synthesis" (PLDI 2012): rooted directed
// acyclic graphs whose nodes carry types A ▷ B (A = columns bound by the
// path from the root, B = residual columns) and whose edges carry a set of
// key columns and a container choice. A decomposition is a static
// description of the heap, similar to a type; its runtime counterpart (the
// decomposition instance) lives in internal/core.
package decomp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/container"
	"repro/internal/rel"
)

// Node is a decomposition vertex with type A ▷ B (written v: A.B in the
// paper): A is the set of columns bound by any path from the root to this
// node, B the residual columns represented by the subgraph below it.
type Node struct {
	Name string
	// A is the sorted set of columns whose valuation identifies an
	// instance of this node.
	A []string
	// B is the sorted residual column set represented below this node.
	B []string
	// Index is the node's position in a fixed topological order of the
	// decomposition; it is the most significant component of the physical
	// lock order (§5.1).
	Index int
	// Out and In list the edges leaving and entering the node.
	Out []*Edge
	In  []*Edge
}

// IsUnit reports whether the node is a unit node (B = ∅): a leaf that
// represents the single empty tuple.
func (n *Node) IsUnit() bool { return len(n.B) == 0 }

// String renders the node as "x: {a} ▷ {b, c}".
func (n *Node) String() string {
	return fmt.Sprintf("%s: {%s} ▷ {%s}", n.Name, strings.Join(n.A, ", "), strings.Join(n.B, ", "))
}

// Edge is a decomposition edge: at runtime, each instance of Src owns one
// container of kind Container mapping valuations of Cols to instances of
// Dst.
type Edge struct {
	// Name is a human-readable label such as "ρx".
	Name     string
	Src, Dst *Node
	// Cols is the ordered list of key columns of the edge's containers.
	// The order fixes the container key layout (and, for sorted
	// containers, the iteration order).
	Cols []string
	// Container is the container kind implementing the edge.
	Container container.Kind
	// Index is the edge's position in Decomposition.Edges.
	Index int
	// SortedCols is Cols in ascending order and SortPerm the permutation
	// with SortedCols[i] == Cols[SortPerm[i]]; precomputed by the builder
	// for the executor's allocation-lean scan joins.
	SortedCols []string
	SortPerm   []int
}

// computeSortOrder fills SortedCols and SortPerm.
func (e *Edge) computeSortOrder() {
	n := len(e.Cols)
	e.SortPerm = make([]int, n)
	for i := range e.SortPerm {
		e.SortPerm[i] = i
	}
	sort.Slice(e.SortPerm, func(a, b int) bool { return e.Cols[e.SortPerm[a]] < e.Cols[e.SortPerm[b]] })
	e.SortedCols = make([]string, n)
	for i, p := range e.SortPerm {
		e.SortedCols[i] = e.Cols[p]
	}
}

// IsUnitEdge reports whether the edge targets a unit node whose columns
// are functionally determined by the source — the "dotted" singleton edges
// of Figures 2 and 3, implemented by container.Cell.
func (e *Edge) IsUnitEdge() bool { return e.Container == container.Cell }

// String renders the edge as "ρx: ρ→x {src} TreeMap".
func (e *Edge) String() string {
	return fmt.Sprintf("%s: %s→%s {%s} %s", e.Name, e.Src.Name, e.Dst.Name,
		strings.Join(e.Cols, ", "), e.Container)
}

// KeyOf projects a tuple onto the edge's key columns in edge order.
func (e *Edge) KeyOf(t rel.Tuple) rel.Key { return t.Key(e.Cols) }

// Decomposition is a rooted DAG describing how to represent a relation as
// cooperating containers (§4.1). Construct one with Builder and validate
// with Validate before use.
type Decomposition struct {
	Spec rel.Spec
	Root *Node
	// Nodes in topological order (root first); Nodes[i].Index == i.
	Nodes []*Node
	Edges []*Edge
}

// NodeByName returns the named node, or nil.
func (d *Decomposition) NodeByName(name string) *Node {
	for _, n := range d.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// EdgeByName returns the named edge, or nil.
func (d *Decomposition) EdgeByName(name string) *Edge {
	for _, e := range d.Edges {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// EdgeBetween returns the edge from src to dst, or nil.
func (d *Decomposition) EdgeBetween(src, dst string) *Edge {
	for _, e := range d.Edges {
		if e.Src.Name == src && e.Dst.Name == dst {
			return e
		}
	}
	return nil
}

// Validate checks that the decomposition is a well-formed, adequate
// description of the relational specification (§4.1):
//
//  1. the graph is a rooted DAG, every vertex reachable from the unique
//     source;
//  2. node types compose: for every edge uv, A_v = A_u ∪ cols(uv) and
//     B_v = B_u \ cols(uv), with cols(uv) a non-empty subset of B_u
//     (adequacy requires C ⊇ A ∪ cols(uv));
//  3. shared nodes (DAG joins) receive the same type along every path;
//  4. every non-unit node has at least one outgoing edge, and the residual
//     columns of each node are covered by each of its outgoing edges'
//     subtrees, so every relation tuple is represented along every path;
//  5. unit (Cell) edges are only used where the source's bound columns
//     functionally determine the edge columns under the spec's FDs, so the
//     container really holds at most one entry;
//  6. the root has type ∅ ▷ C where C is the full column set.
func (d *Decomposition) Validate() error {
	if d.Root == nil || len(d.Nodes) == 0 {
		return fmt.Errorf("decomp: empty decomposition")
	}
	if err := d.Spec.Validate(); err != nil {
		return err
	}
	// Root type.
	if len(d.Root.A) != 0 {
		return fmt.Errorf("decomp: root %s must have A = ∅", d.Root.Name)
	}
	if !rel.ColsEqual(d.Root.B, d.Spec.Columns) {
		return fmt.Errorf("decomp: root %s must have B = %v, got %v", d.Root.Name, d.Spec.Columns, d.Root.B)
	}
	// Topological order sanity and reachability.
	seen := map[*Node]bool{}
	for i, n := range d.Nodes {
		if n.Index != i {
			return fmt.Errorf("decomp: node %s has index %d at position %d", n.Name, n.Index, i)
		}
		seen[n] = true
	}
	if !seen[d.Root] {
		return fmt.Errorf("decomp: root not among nodes")
	}
	names := map[string]bool{}
	for _, n := range d.Nodes {
		if names[n.Name] {
			return fmt.Errorf("decomp: duplicate node name %q", n.Name)
		}
		names[n.Name] = true
	}
	for _, e := range d.Edges {
		if !seen[e.Src] || !seen[e.Dst] {
			return fmt.Errorf("decomp: edge %s references unknown node", e.Name)
		}
		if e.Src.Index >= e.Dst.Index {
			return fmt.Errorf("decomp: edge %s violates topological order", e.Name)
		}
		if len(e.Cols) == 0 {
			return fmt.Errorf("decomp: edge %s has no columns", e.Name)
		}
		for _, c := range e.Cols {
			if !d.Spec.HasColumn(c) {
				return fmt.Errorf("decomp: edge %s uses undeclared column %q", e.Name, c)
			}
		}
		colSet := map[string]bool{}
		for _, c := range e.Cols {
			if colSet[c] {
				return fmt.Errorf("decomp: edge %s repeats column %q", e.Name, c)
			}
			colSet[c] = true
		}
		// Type composition.
		if !rel.ColsSubset(e.Cols, e.Src.B) {
			return fmt.Errorf("decomp: edge %s columns %v not within source residual %v", e.Name, e.Cols, e.Src.B)
		}
		wantA := rel.ColsUnion(e.Src.A, e.Cols)
		wantB := rel.ColsMinus(e.Src.B, e.Cols)
		if !rel.ColsEqual(e.Dst.A, wantA) {
			return fmt.Errorf("decomp: edge %s: target %s has A=%v, want %v (join paths must agree)", e.Name, e.Dst.Name, e.Dst.A, wantA)
		}
		if !rel.ColsEqual(e.Dst.B, wantB) {
			return fmt.Errorf("decomp: edge %s: target %s has B=%v, want %v", e.Name, e.Dst.Name, e.Dst.B, wantB)
		}
		// Unit-edge FD obligation.
		if e.IsUnitEdge() && !d.Spec.Determines(e.Src.A, e.Cols) {
			return fmt.Errorf("decomp: Cell edge %s requires FD %v → %v, not implied by spec %v",
				e.Name, e.Src.A, e.Cols, d.Spec)
		}
	}
	// Reachability from root and non-unit coverage.
	reach := map[*Node]bool{d.Root: true}
	for _, n := range d.Nodes { // topo order ⇒ single pass suffices
		if !reach[n] {
			continue
		}
		for _, e := range n.Out {
			reach[e.Dst] = true
		}
	}
	for _, n := range d.Nodes {
		if !reach[n] {
			return fmt.Errorf("decomp: node %s unreachable from root", n.Name)
		}
		if !n.IsUnit() && len(n.Out) == 0 {
			return fmt.Errorf("decomp: node %s has residual columns %v but no outgoing edges", n.Name, n.B)
		}
	}
	// In/Out slices must be consistent with Edges.
	for _, e := range d.Edges {
		if !edgeIn(e, e.Src.Out) || !edgeIn(e, e.Dst.In) {
			return fmt.Errorf("decomp: edge %s not linked into adjacency lists", e.Name)
		}
	}
	return nil
}

func edgeIn(e *Edge, es []*Edge) bool {
	for _, x := range es {
		if x == e {
			return true
		}
	}
	return false
}

// AllColumnsOnPaths returns, for each node, the union A ∪ B — a sanity
// helper used in tests: it must equal the spec's column set for all nodes.
func (d *Decomposition) AllColumnsOnPaths() map[string][]string {
	out := make(map[string][]string, len(d.Nodes))
	for _, n := range d.Nodes {
		out[n.Name] = rel.ColsUnion(n.A, n.B)
	}
	return out
}

// Dominates reports whether node a dominates node b: every path from the
// root to b passes through a. Used by lock-placement well-formedness
// (§4.3). A node dominates itself.
func (d *Decomposition) Dominates(a, b *Node) bool {
	if a == b {
		return true
	}
	if b == d.Root {
		return false
	}
	// b is unreachable from root when a is removed ⇒ a dominates b.
	blocked := map[*Node]bool{a: true}
	reach := map[*Node]bool{}
	if d.Root != a {
		reach[d.Root] = true
	}
	for _, n := range d.Nodes {
		if !reach[n] || blocked[n] {
			continue
		}
		for _, e := range n.Out {
			if !blocked[e.Dst] {
				reach[e.Dst] = true
			}
		}
	}
	return !reach[b]
}

// PathsBetween returns every directed path (as edge slices) from a to b.
// Decompositions are tiny (≤ ~10 nodes), so exhaustive enumeration is
// fine; the planner and placement validator both use this.
func (d *Decomposition) PathsBetween(a, b *Node) [][]*Edge {
	var paths [][]*Edge
	var walk func(n *Node, acc []*Edge)
	walk = func(n *Node, acc []*Edge) {
		if n == b {
			paths = append(paths, append([]*Edge(nil), acc...))
			return
		}
		for _, e := range n.Out {
			walk(e.Dst, append(acc, e))
		}
	}
	walk(a, nil)
	return paths
}

// String renders a compact multi-line description of the decomposition.
func (d *Decomposition) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "decomposition of %s\n", d.Spec)
	for _, n := range d.Nodes {
		fmt.Fprintf(&b, "  %s\n", n)
		for _, e := range n.Out {
			fmt.Fprintf(&b, "    %s\n", e)
		}
	}
	return b.String()
}

// sortCols returns a sorted copy of cols.
func sortCols(cols []string) []string {
	out := append([]string(nil), cols...)
	sort.Strings(out)
	return out
}
