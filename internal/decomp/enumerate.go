package decomp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/container"
	"repro/internal/rel"
)

// This file implements the structure-enumeration half of the autotuner
// (§6.1): "To enumerate decompositions, the autotuner first chooses an
// adequate decomposition structure, exactly as for the non-concurrent
// case [12]."
//
// Enumeration works on the observation (enforced by Validate) that for a
// node of type A ▷ B, every outgoing edge with columns X ⊆ B leads to a
// sub-decomposition of type (A ∪ X) ▷ (B \ X); since A ∪ B is always the
// full column set, a node's type is determined by A alone. Structures are
// therefore trees of column-set choices, and hash-consing nodes by A turns
// shared suffixes into DAG joins — which is exactly how the diamond of
// Figure 3(c) arises from the split of Figure 3(b).

// EnumOptions bounds structure enumeration.
type EnumOptions struct {
	// MaxFanout is the maximum number of outgoing edges per node
	// (secondary indexes of the same subrelation). Default 2.
	MaxFanout int
	// MaxEdgeCols caps how many columns one edge may consume. Default 2.
	MaxEdgeCols int
	// Limit caps the number of decompositions returned. Default 512.
	Limit int
	// Share hash-conses nodes with equal bound-column sets, producing
	// DAGs (diamonds) instead of trees where subtrees coincide.
	Share bool
	// MapContainer is assigned to ordinary edges (default TreeMap); unit
	// edges (source functionally determines the edge columns) always get
	// container.Cell. The concurrent autotuner re-assigns containers per
	// placement afterwards.
	MapContainer container.Kind
}

func (o EnumOptions) withDefaults() EnumOptions {
	if o.MaxFanout == 0 {
		o.MaxFanout = 2
	}
	if o.MaxEdgeCols == 0 {
		o.MaxEdgeCols = 2
	}
	if o.Limit == 0 {
		o.Limit = 512
	}
	if o.MapContainer == 0 {
		o.MapContainer = container.TreeMap
	}
	return o
}

// shape is an enumerated structure: a tree of column-set choices. Sharing
// is applied at materialization time.
type shape struct {
	edges []shapeEdge
}

type shapeEdge struct {
	cols []string
	sub  *shape
}

// canon returns a canonical string for deduplication; edge order is
// irrelevant, so edges are sorted by their rendering.
func (s *shape) canon() string {
	if s == nil || len(s.edges) == 0 {
		return "·"
	}
	parts := make([]string, len(s.edges))
	for i, e := range s.edges {
		parts[i] = strings.Join(e.cols, ",") + "→" + e.sub.canon()
	}
	sort.Strings(parts)
	return "(" + strings.Join(parts, " | ") + ")"
}

// Enumerate returns adequate decompositions of spec within the given
// bounds, built with deterministic node names ("n" + sorted bound
// columns) so repeated runs agree. All results pass Validate.
func Enumerate(spec rel.Spec, opts EnumOptions) ([]*Decomposition, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	memo := map[string][]*shape{}
	var enum func(a, b []string) []*shape
	enum = func(a, b []string) []*shape {
		key := strings.Join(a, ",") + "|" + strings.Join(b, ",")
		if got, ok := memo[key]; ok {
			return got
		}
		if len(b) == 0 {
			leaf := &shape{}
			memo[key] = []*shape{leaf}
			return memo[key]
		}
		// Single-edge alternatives for this node.
		var singles []shapeEdge
		for _, x := range subsets(b, opts.MaxEdgeCols) {
			for _, sub := range enum(rel.ColsUnion(a, x), rel.ColsMinus(b, x)) {
				singles = append(singles, shapeEdge{cols: x, sub: sub})
			}
		}
		var shapes []*shape
		seen := map[string]bool{}
		add := func(s *shape) {
			c := s.canon()
			if !seen[c] {
				seen[c] = true
				shapes = append(shapes, s)
			}
		}
		for _, e := range singles {
			add(&shape{edges: []shapeEdge{e}})
		}
		if opts.MaxFanout >= 2 {
			for i := 0; i < len(singles); i++ {
				for j := i + 1; j < len(singles); j++ {
					// Two alternative indexes only make sense when they
					// start with different column sets.
					if rel.ColsEqual(singles[i].cols, singles[j].cols) {
						continue
					}
					add(&shape{edges: []shapeEdge{singles[i], singles[j]}})
				}
			}
		}
		memo[key] = shapes
		return shapes
	}

	shapes := enum(nil, spec.Columns)
	out := make([]*Decomposition, 0, len(shapes))
	seen := map[string]bool{}
	for _, s := range shapes {
		if len(out) >= opts.Limit {
			break
		}
		d, err := materialize(spec, s, opts)
		if err != nil {
			return nil, fmt.Errorf("decomp: enumerated shape failed to materialize: %w", err)
		}
		// Sharing can collapse distinct shapes onto one DAG (the second
		// subtree under a shared node is dropped); deduplicate by
		// structural signature.
		sig := signature(d)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, d)
	}
	return out, nil
}

// WithContainers rebuilds the decomposition with per-edge container kinds
// chosen by f (given each edge of the original). Unit edges should remain
// container.Cell; Validate enforces the FD obligation either way. The
// concurrent autotuner uses this to re-assign containers after choosing a
// lock placement (§6.1).
func (d *Decomposition) WithContainers(f func(*Edge) container.Kind) (*Decomposition, error) {
	b := NewBuilder(d.Spec, d.Root.Name)
	for _, e := range d.Edges {
		b.Edge(e.Name, e.Src.Name, e.Dst.Name, e.Cols, f(e))
	}
	return b.Build()
}

// signature canonically renders a decomposition's structure: edges as
// (source bound columns) → (edge columns, container), sorted.
func signature(d *Decomposition) string {
	parts := make([]string, 0, len(d.Edges))
	for _, e := range d.Edges {
		parts = append(parts, fmt.Sprintf("{%s}-%s:%s->{%s}",
			strings.Join(e.Src.A, ","), strings.Join(e.Cols, ","), e.Container, strings.Join(e.Dst.A, ",")))
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// subsets returns the nonempty subsets of cols with at most maxSize
// elements, each sorted.
func subsets(cols []string, maxSize int) [][]string {
	var out [][]string
	n := len(cols)
	for mask := 1; mask < 1<<n; mask++ {
		var s []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, cols[i])
			}
		}
		if len(s) <= maxSize {
			sort.Strings(s)
			out = append(out, s)
		}
	}
	// Deterministic order: by size then lexicographic.
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return strings.Join(out[i], ",") < strings.Join(out[j], ",")
	})
	return out
}

// materialize turns a shape into a validated Decomposition via Builder,
// hash-consing node names by bound columns when sharing is enabled.
func materialize(spec rel.Spec, s *shape, opts EnumOptions) (*Decomposition, error) {
	b := NewBuilder(spec, "ρ")
	names := map[string]string{} // bound-column key → node name
	fresh := 0
	nodeName := func(a []string) string {
		key := strings.Join(a, ",")
		if opts.Share {
			if n, ok := names[key]; ok {
				return n
			}
		} else {
			key = fmt.Sprintf("%s#%d", key, fresh)
		}
		fresh++
		n := fmt.Sprintf("n%d", fresh)
		names[key] = n
		return n
	}
	visited := map[string]bool{} // emitted node names (sharing: emit once)
	edgeID := 0
	var emit func(srcName string, a []string, s *shape) error
	emit = func(srcName string, a []string, s *shape) error {
		if visited[srcName] {
			return nil
		}
		visited[srcName] = true
		for _, e := range s.edges {
			dstA := rel.ColsUnion(a, e.cols)
			dstName := nodeName(dstA)
			kind := opts.MapContainer
			if spec.Determines(a, e.cols) {
				kind = container.Cell
			}
			edgeID++
			b.Edge(fmt.Sprintf("e%d", edgeID), srcName, dstName, e.cols, kind)
			if err := emit(dstName, dstA, e.sub); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("ρ", nil, s); err != nil {
		return nil, err
	}
	return b.Build()
}
