// Package workload implements the benchmark methodology of §6.2, modeled
// after Herlihy et al.'s concurrent-map comparisons (the paper's reference
// [14]) generalized to relations: k identical threads execute a fixed
// number of randomly chosen operations against one shared directed-graph
// relation, and the harness reports aggregate throughput. Varying the
// operation mix reproduces the four panels of Figure 5.
package workload

import (
	"fmt"
	"sync"
	"time"
)

// GraphOps is the operation interface of the §6.2 benchmark: the four
// relational operations specialized to the directed-graph relation
// {src, dst, weight | src,dst → weight}. Read operations return result
// counts so implementations cannot be optimized away.
type GraphOps interface {
	// FindSuccessors returns the number of (dst, weight) pairs for src.
	FindSuccessors(src int64) int
	// FindPredecessors returns the number of (src, weight) pairs for dst.
	FindPredecessors(dst int64) int
	// InsertEdge inserts the edge unless one with the same src,dst exists
	// (put-if-absent, preserving the FD).
	InsertEdge(src, dst, weight int64) bool
	// RemoveEdge removes the edge, reporting whether it existed.
	RemoveEdge(src, dst int64) bool
}

// Mix is an operation distribution, written x-y-z-w in the paper: x%
// successor queries, y% predecessor queries, z% inserts, w% removes.
type Mix struct {
	Successors, Predecessors, Inserts, Removes int
}

// String renders the mix in the paper's x-y-z-w notation.
func (m Mix) String() string {
	return fmt.Sprintf("%d-%d-%d-%d", m.Successors, m.Predecessors, m.Inserts, m.Removes)
}

// valid reports whether the percentages sum to 100.
func (m Mix) valid() bool {
	return m.Successors+m.Predecessors+m.Inserts+m.Removes == 100
}

// Figure5Mixes lists the four operation distributions of Figure 5.
func Figure5Mixes() []Mix {
	return []Mix{
		{Successors: 70, Predecessors: 0, Inserts: 20, Removes: 10},
		{Successors: 35, Predecessors: 35, Inserts: 20, Removes: 10},
		{Successors: 0, Predecessors: 0, Inserts: 50, Removes: 50},
		{Successors: 45, Predecessors: 45, Inserts: 9, Removes: 1},
	}
}

// Config parameterizes one benchmark run.
type Config struct {
	// Threads is the number of worker goroutines (k in §6.2).
	Threads int
	// OpsPerThread is the number of operations each thread executes; the
	// paper uses 5·10^5.
	OpsPerThread int
	// KeySpace bounds the random node ids (node ids are drawn uniformly
	// from [0, KeySpace)).
	KeySpace int64
	// Seed makes runs reproducible; thread i derives its generator from
	// Seed and i.
	Seed uint64
	// Mix is the operation distribution.
	Mix Mix
}

// DefaultConfig returns the §6.2 parameters with a modest key space.
func DefaultConfig() Config {
	return Config{Threads: 4, OpsPerThread: 500_000, KeySpace: 512, Seed: 1, Mix: Figure5Mixes()[0]}
}

// Result reports a run's aggregate throughput.
type Result struct {
	Ops        int
	Duration   time.Duration
	Throughput float64 // operations per second, all threads combined
	// Checksum accumulates result counts, preventing dead-code
	// elimination and giving runs a comparable fingerprint.
	Checksum uint64
}

// SplitMix64 advances a SplitMix64 state and returns the next draw — the
// package's single deterministic generator, exported so the wire traffic
// generators (internal/server) draw from exactly the same stream
// discipline as the in-process drivers.
func SplitMix64(state *uint64) uint64 { return splitmix64(state) }

// splitmix64 advances a SplitMix64 state; a tiny, fast, seedable generator
// so benchmark threads never contend on a shared RNG.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Run executes the benchmark: all threads start together, each performs
// cfg.OpsPerThread random operations per cfg.Mix, and the harness reports
// aggregate throughput over the wall time from start to last finish.
func Run(g GraphOps, cfg Config) Result {
	if !cfg.Mix.valid() {
		panic(fmt.Sprintf("workload: mix %s does not sum to 100", cfg.Mix))
	}
	if cfg.Threads < 1 || cfg.OpsPerThread < 1 || cfg.KeySpace < 1 {
		panic("workload: invalid config")
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	sums := make([]uint64, cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			state := cfg.Seed*0x9e3779b97f4a7c15 + uint64(tid)*0xdeadbeefcafef00d + 1
			<-start
			var sum uint64
			for op := 0; op < cfg.OpsPerThread; op++ {
				r := splitmix64(&state)
				choice := int(r % 100)
				a := int64((r >> 32) % uint64(cfg.KeySpace))
				b := int64((r >> 16) % uint64(cfg.KeySpace))
				switch {
				case choice < cfg.Mix.Successors:
					sum += uint64(g.FindSuccessors(a))
				case choice < cfg.Mix.Successors+cfg.Mix.Predecessors:
					sum += uint64(g.FindPredecessors(a))
				case choice < cfg.Mix.Successors+cfg.Mix.Predecessors+cfg.Mix.Inserts:
					if g.InsertEdge(a, b, int64(r>>40)) {
						sum++
					}
				default:
					if g.RemoveEdge(a, b) {
						sum++
					}
				}
			}
			sums[tid] = sum
		}(i)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	total := cfg.Threads * cfg.OpsPerThread
	var checksum uint64
	for _, s := range sums {
		checksum += s
	}
	return Result{
		Ops:        total,
		Duration:   elapsed,
		Throughput: float64(total) / elapsed.Seconds(),
		Checksum:   checksum,
	}
}

// Series runs the benchmark across ascending thread counts and returns
// one Result per count — one throughput/scalability curve of Figure 5.
func Series(g func() GraphOps, cfg Config, threads []int) []Result {
	results := make([]Result, 0, len(threads))
	for _, k := range threads {
		c := cfg
		c.Threads = k
		results = append(results, Run(g(), c))
	}
	return results
}
