package workload

import (
	"fmt"
	"sync/atomic"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

// This file is the multi-relation benchmark scenario the registry makes
// possible: a small social schema — users, posts, follows — whose
// composite operations maintain CROSS-TABLE invariants ("insert a post
// and bump the author's post counter") and therefore need one transaction
// to span relations. Each composite runs either as ONE Registry.Batch
// (coalesced registry-wide lock schedule) or as one single-member batch
// per relational operation (the sequential baseline), so the benchmark
// compares the two lock disciplines over identical member executions.
//
// Scope note: the counter's NEW value is computed from reads issued
// BEFORE the transaction (batch members cannot consume each other's
// results mid-flight), so the counter==posts invariant is exact only
// under single-threaded drivers — which is what the invariant test and
// the deterministic lock-counting pass run. The grouped discipline still
// guarantees the cross-relation WRITES land atomically (no reader ever
// observes the post without its counter bump); closing the
// read-modify-write race needs in-batch read→write dependencies (the
// OCC commit validates a group's reads, but members still cannot
// consume each other's results mid-flight).

// SocialMix is an operation distribution over the composite social
// operations, in percent.
type SocialMix struct {
	AddPosts, RemovePosts, Follows, Snapshots int
}

// String renders the mix as a-r-f-s.
func (m SocialMix) String() string {
	return fmt.Sprintf("%d-%d-%d-%d", m.AddPosts, m.RemovePosts, m.Follows, m.Snapshots)
}

func (m SocialMix) valid() bool {
	return m.AddPosts+m.RemovePosts+m.Follows+m.Snapshots == 100
}

// DefaultSocialMix returns the mixed read-write distribution the
// cross-relation benchmark reports: 30% post inserts, 10% post removals,
// 20% follows, 40% profile snapshots.
func DefaultSocialMix() SocialMix {
	return SocialMix{AddPosts: 30, RemovePosts: 10, Follows: 20, Snapshots: 40}
}

// ReadHeavySocialMix returns the 95/5 read-dominated distribution of the
// optimistic benchmark: 95% profile snapshots (pure read-only
// cross-relation groups, which the optimistic path runs lock-free) with a
// trickle of writes keeping the epochs moving.
func ReadHeavySocialMix() SocialMix {
	return SocialMix{AddPosts: 3, RemovePosts: 1, Follows: 1, Snapshots: 95}
}

// MixedSocialMix returns the Follow-heavy distribution of the mixed-batch
// OCC benchmark: 60% Follows — the canonical MIXED group (insert a
// follows edge + count the followee's posts), which the grouped
// discipline commits Silo-style with write locks only — plus enough
// writes and snapshots to keep every path exercised.
func MixedSocialMix() SocialMix {
	return SocialMix{AddPosts: 15, RemovePosts: 5, Follows: 60, Snapshots: 20}
}

// LockCounts accumulates a run's lock-schedule statistics: how many lock
// acquisitions the members requested before coalescing, how many physical
// locks were actually taken, and the optimistic read-only batch counters.
// Counter updates are atomic so the throughput harness can share one
// across threads; the deterministic counting pass runs single-threaded.
type LockCounts struct {
	Requested atomic.Int64
	Acquired  atomic.Int64

	// Members counts the relational operations (batch members) the
	// composites issued — the denominator of crsbench's deterministic
	// ns_per_member rows. Both disciplines count identically (the
	// sequential baseline issues the same relational operations, one
	// transaction each), so per-member timings are directly comparable.
	Members atomic.Int64

	// ReadOnlyBatches counts batches that attempted the lock-free
	// optimistic path; ReadOnlyAcquired the physical locks those batches
	// ended up taking (zero unless validation failures forced the
	// pessimistic fallback), ValidationRetries the optimistic attempts
	// beyond each batch's first, and Fallbacks the batches that exhausted
	// their attempts and re-ran under two-phase locking.
	ReadOnlyBatches   atomic.Int64
	ReadOnlyAcquired  atomic.Int64
	ValidationRetries atomic.Int64
	Fallbacks         atomic.Int64

	// The mixed-batch OCC counters (occ.go): OCCBatches counts mixed
	// groups that took the Silo-style path; OCCWriteLocks the exclusive
	// locks those batches' write members acquired (on successful commits —
	// the benchguard "strictly fewer than sequential" signal rides on the
	// plain Acquired totals, which include these); OCCSharedLocks the
	// Shared-mode acquisitions of successful OCC commits, structurally
	// zero (reads divert into the read-set) and gated at zero by
	// benchguard; OCCReadSet the distinct epoch cells validated;
	// OCCRetries the attempts beyond each batch's first; OCCFallbacks the
	// batches that exhausted their attempts and re-ran under full 2PL.
	OCCBatches     atomic.Int64
	OCCWriteLocks  atomic.Int64
	OCCSharedLocks atomic.Int64
	OCCReadSet     atomic.Int64
	OCCRetries     atomic.Int64
	OCCFallbacks   atomic.Int64
}

// Harvest folds one batch's trace into the counters.
func (c *LockCounts) Harvest(tr *core.BatchTrace) {
	c.Requested.Add(int64(tr.Requested))
	c.Acquired.Add(int64(tr.Acquired))
	if tr.Optimistic {
		c.ReadOnlyBatches.Add(1)
		c.ReadOnlyAcquired.Add(int64(tr.Acquired))
		if tr.Attempts > 1 {
			c.ValidationRetries.Add(int64(tr.Attempts - 1))
		}
		if tr.FellBack {
			c.Fallbacks.Add(1)
		}
	}
	if tr.OCC {
		c.OCCBatches.Add(1)
		if tr.FellBack {
			c.OCCFallbacks.Add(1)
		} else {
			c.OCCWriteLocks.Add(int64(tr.Acquired))
			c.OCCSharedLocks.Add(int64(tr.SharedAcquired))
			c.OCCReadSet.Add(int64(tr.EpochsDistinct))
		}
		if tr.Attempts > 1 {
			c.OCCRetries.Add(int64(tr.Attempts - 1))
		}
	}
}

// Social is the three-relation social scenario over one core.Registry,
// with every relational operation prepared at construction time.
type Social struct {
	Reg                   *core.Registry
	Users, Posts, Follows *core.Relation

	// Grouped selects the execution discipline: one Registry.Batch per
	// composite operation (true) or one single-member batch per relational
	// operation (false, the sequential baseline).
	Grouped bool

	// Counts, when non-nil, turns on per-batch lock-schedule tracing and
	// accumulates the requested/acquired totals.
	Counts *LockCounts

	insUser   *core.PreparedInsert
	remUser   *core.PreparedRemove
	userRow   *core.PreparedQuery // bound user, out posts
	insPost   *core.PreparedInsert
	remPost   *core.PreparedRemove
	postsOf   *core.PreparedQuery // bound author, out post+ts
	postAt    *core.PreparedQuery // bound (author, post), out ts
	insFollow *core.PreparedInsert
	followsOf *core.PreparedQuery // bound src, out dst+since

	iUser, iPosts         int
	iAuthor, iPost, iTs   int
	iSrc, iDst, iSince    int
	wUsers, wPosts, wFlws int
}

// UsersSpec returns the users relation specification: a per-user post
// counter maintained by the composite operations.
func UsersSpec() rel.Spec {
	return rel.MustSpec([]string{"user", "posts"},
		rel.FD{From: []string{"user"}, To: []string{"posts"}})
}

// PostsSpec returns the posts relation specification.
func PostsSpec() rel.Spec {
	return rel.MustSpec([]string{"author", "post", "ts"},
		rel.FD{From: []string{"author", "post"}, To: []string{"ts"}})
}

// FollowsSpec returns the follows relation specification.
func FollowsSpec() rel.Spec {
	return rel.MustSpec([]string{"src", "dst", "since"},
		rel.FD{From: []string{"src", "dst"}, To: []string{"since"}})
}

// NewSocial synthesizes the three relations into one registry and
// prepares every operation. The decompositions are concurrent sticks —
// ConcurrentHashMap at the root edge, ConcurrentSkipListMap below (sorted
// iteration like the TreeMap it replaced, but concurrency-safe, which
// makes all three relations OptimisticCapable: read-only groups run
// lock-free), Cell leaves — under fine-grained placement.
func NewSocial() (*Social, error) {
	return NewSocialWith(container.ConcurrentHashMap, container.ConcurrentSkipListMap)
}

// NewSocialPessimistic is NewSocial built on non-concurrency-safe
// containers (HashMap roots, TreeMap middles): every operation takes the
// pessimistic 2PL paths. Functionally identical to NewSocial — it exists
// as the starting point for live-migration scenarios (crsd -adapt), where
// the advisor upgrades these containers to unlock the optimistic paths.
func NewSocialPessimistic() (*Social, error) {
	return NewSocialWith(container.HashMap, container.TreeMap)
}

// NewSocialWith is NewSocial parameterized by the container kinds of the
// map edges: root for the top-level point lookups (user/author/src), mid
// for the sorted scans below (post/dst). Leaves stay Cells.
func NewSocialWith(root, mid container.Kind) (*Social, error) {
	g := core.NewRegistry()
	ud, err := decomp.NewBuilder(UsersSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"user"}, root).
		Edge("uc", "u", "c", []string{"posts"}, container.Cell).
		Build()
	if err != nil {
		return nil, err
	}
	users, err := g.Synthesize("users", UsersSpec(),
		core.WithDecomposition(ud), core.WithPlacement(locks.FineGrained(ud)))
	if err != nil {
		return nil, err
	}
	pd, err := decomp.NewBuilder(PostsSpec(), "ρ").
		Edge("ρa", "ρ", "a", []string{"author"}, root).
		Edge("ap", "a", "p", []string{"post"}, mid).
		Edge("pt", "p", "t", []string{"ts"}, container.Cell).
		Build()
	if err != nil {
		return nil, err
	}
	posts, err := g.Synthesize("posts", PostsSpec(),
		core.WithDecomposition(pd), core.WithPlacement(locks.FineGrained(pd)))
	if err != nil {
		return nil, err
	}
	fd, err := decomp.NewBuilder(FollowsSpec(), "ρ").
		Edge("ρs", "ρ", "s", []string{"src"}, root).
		Edge("sd", "s", "d", []string{"dst"}, mid).
		Edge("dw", "d", "w", []string{"since"}, container.Cell).
		Build()
	if err != nil {
		return nil, err
	}
	follows, err := g.Synthesize("follows", FollowsSpec(),
		core.WithDecomposition(fd), core.WithPlacement(locks.FineGrained(fd)))
	if err != nil {
		return nil, err
	}
	s := &Social{Reg: g, Users: users, Posts: posts, Follows: follows, Grouped: true}
	if s.insUser, err = users.PrepareInsert([]string{"user"}); err != nil {
		return nil, err
	}
	if s.remUser, err = users.PrepareRemove([]string{"user"}); err != nil {
		return nil, err
	}
	if s.userRow, err = users.PrepareQuery([]string{"user"}, []string{"posts"}); err != nil {
		return nil, err
	}
	if s.insPost, err = posts.PrepareInsert([]string{"author", "post"}); err != nil {
		return nil, err
	}
	if s.remPost, err = posts.PrepareRemove([]string{"author", "post"}); err != nil {
		return nil, err
	}
	if s.postsOf, err = posts.PrepareQuery([]string{"author"}, []string{"post", "ts"}); err != nil {
		return nil, err
	}
	if s.postAt, err = posts.PrepareQuery([]string{"author", "post"}, []string{"ts"}); err != nil {
		return nil, err
	}
	if s.insFollow, err = follows.PrepareInsert([]string{"dst", "src"}); err != nil {
		return nil, err
	}
	if s.followsOf, err = follows.PrepareQuery([]string{"src"}, []string{"dst", "since"}); err != nil {
		return nil, err
	}
	us, ps, fs := users.Schema(), posts.Schema(), follows.Schema()
	s.iUser, s.iPosts = us.MustIndex("user"), us.MustIndex("posts")
	s.iAuthor, s.iPost, s.iTs = ps.MustIndex("author"), ps.MustIndex("post"), ps.MustIndex("ts")
	s.iSrc, s.iDst, s.iSince = fs.MustIndex("src"), fs.MustIndex("dst"), fs.MustIndex("since")
	s.wUsers, s.wPosts, s.wFlws = us.Len(), ps.Len(), fs.Len()
	return s, nil
}

// MustSocial is NewSocial panicking on error.
func MustSocial() *Social {
	s, err := NewSocial()
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	return s
}

// batch runs one Registry.Batch with lock counting when enabled. The
// trace totals are filled at commit, so they are read only after Batch
// returns.
func (s *Social) batch(fn func(tx *core.Txn) error) {
	var tr *core.BatchTrace
	err := s.Reg.Batch(func(tx *core.Txn) error {
		if s.Counts != nil {
			tx.EnableTrace()
			tr = tx.Trace()
		}
		return fn(tx)
	})
	if err != nil {
		panic(fmt.Sprintf("workload: social batch: %v", err))
	}
	if tr != nil {
		s.Counts.Harvest(tr)
	}
}

// userRowBuf fills a stack buffer with a users row.
func (s *Social) userRowBuf(buf []rel.Value, user int64, posts int64, full bool) rel.Row {
	row := rel.RowOver(buf[:s.wUsers], 0)
	row.Set(s.iUser, user)
	if full {
		row.Set(s.iPosts, posts)
	}
	return row
}

// postRowBuf fills a stack buffer with a posts row.
func (s *Social) postRowBuf(buf []rel.Value, author, post, ts int64, full bool) rel.Row {
	row := rel.RowOver(buf[:s.wPosts], 0)
	row.Set(s.iAuthor, author)
	row.Set(s.iPost, post)
	if full {
		row.Set(s.iTs, ts)
	}
	return row
}

// PostCount returns the stored post counter of user (0 when absent).
func (s *Social) PostCount(user int64) int64 {
	var buf [2]rel.Value
	row := s.userRowBuf(buf[:], user, 0, false)
	var n int64
	if err := s.userRow.ExecRows(row, func(r rel.Row) bool {
		n = r.At(s.iPosts).(int64)
		return false
	}); err != nil {
		panic(fmt.Sprintf("workload: post count: %v", err))
	}
	return n
}

// PostsOf counts the actual posts stored for author — the ground truth
// the counter must match under single-threaded composite operations.
func (s *Social) PostsOf(author int64) int {
	var buf [3]rel.Value
	row := rel.RowOver(buf[:s.wPosts], 0)
	row.Set(s.iAuthor, author)
	n, err := s.postsOf.CountRow(row)
	if err != nil {
		panic(fmt.Sprintf("workload: posts of: %v", err))
	}
	return n
}

// AddPost inserts (author, post, ts) and bumps the author's post counter
// in the SAME transaction (Grouped) or as three separate transactions
// (the baseline). Returns whether the post was new. The existence check
// and the counter read happen before the transaction (see the file
// comment), so concurrent AddPosts for one author may lose counter
// updates; the write group itself is atomic either way.
func (s *Social) AddPost(author, post, ts int64) bool {
	var ebuf [3]rel.Value
	erow := s.postRowBuf(ebuf[:], author, post, 0, false)
	if n, err := s.postAt.CountRow(erow); err != nil {
		panic(fmt.Sprintf("workload: post exists: %v", err))
	} else if n > 0 {
		return false
	}
	n := s.PostCount(author)
	var pbuf, rbuf, ubuf [3]rel.Value
	prow := s.postRowBuf(pbuf[:], author, post, ts, true)
	rrow := s.userRowBuf(rbuf[:], author, 0, false)
	urow := s.userRowBuf(ubuf[:], author, n+1, true)
	if s.Grouped {
		s.batch(func(tx *core.Txn) error {
			if _, err := tx.ExecRow(s.insPost, prow); err != nil {
				return err
			}
			if _, err := tx.ExecRow(s.remUser, rrow); err != nil {
				return err
			}
			_, err := tx.ExecRow(s.insUser, urow)
			return err
		})
		return true
	}
	s.batch(func(tx *core.Txn) error { _, err := tx.ExecRow(s.insPost, prow); return err })
	s.batch(func(tx *core.Txn) error { _, err := tx.ExecRow(s.remUser, rrow); return err })
	s.batch(func(tx *core.Txn) error { _, err := tx.ExecRow(s.insUser, urow); return err })
	return true
}

// RemovePost deletes (author, post) and decrements the author's counter,
// atomically when Grouped. Returns whether the post existed. Like
// AddPost, the dependent reads precede the transaction.
func (s *Social) RemovePost(author, post int64) bool {
	var ebuf [3]rel.Value
	erow := s.postRowBuf(ebuf[:], author, post, 0, false)
	if n, err := s.postAt.CountRow(erow); err != nil {
		panic(fmt.Sprintf("workload: post exists: %v", err))
	} else if n == 0 {
		return false
	}
	n := s.PostCount(author)
	if n < 1 {
		n = 1
	}
	var pbuf, rbuf, ubuf [3]rel.Value
	prow := s.postRowBuf(pbuf[:], author, post, 0, false)
	rrow := s.userRowBuf(rbuf[:], author, 0, false)
	urow := s.userRowBuf(ubuf[:], author, n-1, true)
	if s.Grouped {
		s.batch(func(tx *core.Txn) error {
			if _, err := tx.ExecRow(s.remPost, prow); err != nil {
				return err
			}
			if _, err := tx.ExecRow(s.remUser, rrow); err != nil {
				return err
			}
			_, err := tx.ExecRow(s.insUser, urow)
			return err
		})
		return true
	}
	s.batch(func(tx *core.Txn) error { _, err := tx.ExecRow(s.remPost, prow); return err })
	s.batch(func(tx *core.Txn) error { _, err := tx.ExecRow(s.remUser, rrow); return err })
	s.batch(func(tx *core.Txn) error { _, err := tx.ExecRow(s.insUser, urow); return err })
	return true
}

// Follow inserts a follows edge and reads the followee's post count in
// one consistent group (a follower wants the profile as of the follow).
// Returns the followee's post count observed by the group.
func (s *Social) Follow(src, dst, since int64) int {
	var fbuf [3]rel.Value
	frow := rel.RowOver(fbuf[:s.wFlws], 0)
	frow.Set(s.iSrc, src)
	frow.Set(s.iDst, dst)
	frow.Set(s.iSince, since)
	var pbuf [3]rel.Value
	prow := rel.RowOver(pbuf[:s.wPosts], 0)
	prow.Set(s.iAuthor, dst)
	var cnt *core.Pending[int]
	if s.Grouped {
		s.batch(func(tx *core.Txn) error {
			if _, err := tx.ExecRow(s.insFollow, frow); err != nil {
				return err
			}
			var err error
			cnt, err = tx.CountRow(s.postsOf, prow)
			return err
		})
		return cnt.Value()
	}
	s.batch(func(tx *core.Txn) error { _, err := tx.ExecRow(s.insFollow, frow); return err })
	s.batch(func(tx *core.Txn) error { var err error; cnt, err = tx.CountRow(s.postsOf, prow); return err })
	return cnt.Value()
}

// ProfileSnapshot reads one user's profile — stored post counter, actual
// post count, follow count — in a single consistent cross-relation group.
func (s *Social) ProfileSnapshot(user int64) int {
	var ubuf, pbuf, fbuf [3]rel.Value
	urow := s.userRowBuf(ubuf[:], user, 0, false)
	prow := rel.RowOver(pbuf[:s.wPosts], 0)
	prow.Set(s.iAuthor, user)
	frow := rel.RowOver(fbuf[:s.wFlws], 0)
	frow.Set(s.iSrc, user)
	var posts, follows *core.Pending[int]
	counter := 0
	if s.Grouped {
		s.batch(func(tx *core.Txn) error {
			if err := tx.ExecRows(s.userRow, urow, func(r rel.Row) bool {
				counter = int(r.At(s.iPosts).(int64))
				return false
			}); err != nil {
				return err
			}
			var err error
			if posts, err = tx.CountRow(s.postsOf, prow); err != nil {
				return err
			}
			follows, err = tx.CountRow(s.followsOf, frow)
			return err
		})
		return counter + posts.Value() + follows.Value()
	}
	s.batch(func(tx *core.Txn) error {
		return tx.ExecRows(s.userRow, urow, func(r rel.Row) bool {
			counter = int(r.At(s.iPosts).(int64))
			return false
		})
	})
	s.batch(func(tx *core.Txn) error { var err error; posts, err = tx.CountRow(s.postsOf, prow); return err })
	s.batch(func(tx *core.Txn) error { var err error; follows, err = tx.CountRow(s.followsOf, frow); return err })
	return counter + posts.Value() + follows.Value()
}

// SocialOp draws and executes ONE composite social operation against s:
// it advances the SplitMix64 state, picks the composite per mix, derives
// operands from the draw, and returns the checksum contribution. It is
// the single dispatch shared by RunSocial and cmd/crsbench's registry
// benchmark, so archived BENCH_*.json runs measure exactly this workload.
func SocialOp(s *Social, state *uint64, mix SocialMix, keySpace int64) uint64 {
	r := splitmix64(state)
	choice := int(r % 100)
	a := int64((r >> 32) % uint64(keySpace))
	b := int64((r >> 16) % uint64(keySpace))
	var sum uint64
	switch {
	case choice < mix.AddPosts:
		if s.AddPost(a, b, int64(r>>40)) {
			sum++
		}
	case choice < mix.AddPosts+mix.RemovePosts:
		if s.RemovePost(a, b) {
			sum++
		}
	case choice < mix.AddPosts+mix.RemovePosts+mix.Follows:
		sum += uint64(s.Follow(a, b, int64(r>>40)))
	default:
		sum += uint64(s.ProfileSnapshot(a))
	}
	return sum
}

// RunSocial executes the cross-relation benchmark: cfg.Threads workers
// each perform cfg.OpsPerThread composite operations drawn from mix.
// Throughput is composite operations per second (each composite is ≥ 2
// relational operations, across up to three relations).
func RunSocial(s *Social, cfg Config, mix SocialMix) Result {
	if !mix.valid() {
		panic(fmt.Sprintf("workload: social mix %s does not sum to 100", mix))
	}
	return runWorkers(cfg, func(state *uint64) uint64 {
		return SocialOp(s, state, mix, cfg.KeySpace)
	})
}
