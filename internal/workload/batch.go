package workload

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rel"
)

// This file extends the §6.2 methodology from single operations to
// operation GROUPS, the unit the batched-transaction API (core.Txn) makes
// atomic: real graph workloads issue related operations together —
// insert both directions of a relationship, move an edge, read a
// consistent 2-hop neighborhood — and the batched Figure-5 variant
// measures the throughput of those groups executed as one coalesced
// two-phase-locking transaction versus one lock cycle per operation.

// BatchGraphOps extends GraphOps with the composite operations of the
// batched benchmark. Implementations define each composite as one atomic
// group (RelationBatchGraph) or as its sequential decomposition
// (SequentialRelationBatchGraph, the non-coalesced baseline).
type BatchGraphOps interface {
	GraphOps
	// InsertEdgePair inserts two edges as one atomic group, reporting
	// each put-if-absent outcome.
	InsertEdgePair(src1, dst1, w1, src2, dst2, w2 int64) (bool, bool)
	// MoveEdge retargets an edge atomically: remove (src, dstOld) and
	// insert (src, dstNew, w) in one group, reporting both outcomes. A
	// concurrent reader never observes the moved edge absent-and-absent
	// or present-and-present.
	MoveEdge(src, dstOld, dstNew, w int64) (bool, bool)
	// CountSuccessorPair counts the successors of two nodes in one
	// consistent snapshot, returning the sum.
	CountSuccessorPair(a, b int64) int
	// TwoHopCount sums the successor counts over src's successors. The
	// successor list is read first; the per-successor counts then execute
	// as one atomic group, so the hop-2 sum is internally consistent.
	TwoHopCount(src int64) int
}

// RelationBatchGraph adapts a synthesized graph relation to BatchGraphOps
// using batched transactions: each composite operation is one
// Relation.Batch whose members run under a single coalesced lock schedule
// — or, for the read-only composites on an OptimisticCapable relation,
// lock-free under the optimistic epoch-validation protocol.
type RelationBatchGraph struct {
	*RelationGraph

	// Counts, when non-nil, turns on per-batch lock-schedule tracing and
	// accumulates lock and optimistic-read statistics across composites.
	Counts *LockCounts

	// pool recycles compositeScratch blocks across calls. The adapter is
	// shared by every worker thread, so per-call state cannot live on the
	// struct itself; pooling it keeps the steady-state composites at zero
	// adapter allocations per group, matching the sequential baseline
	// (whose prepared single operations never leave the stack) — without
	// it the adapter's closures, escaping row buffers and per-call hop
	// slices dominate the batched-vs-sequential allocation gap.
	pool sync.Pool
}

// compositeScratch is the reusable per-call state of one batched
// composite: operand row buffers, the hop/pending slices of TwoHopCount,
// and the batch callback plus hop visitor bound ONCE at creation (method
// values and capturing closures allocate; binding them per scratch, not
// per call, moves that cost to pool warmup).
type compositeScratch struct {
	g        *RelationBatchGraph
	kind     uint8
	rb1, rb2 [3]rel.Value
	r1, r2   rel.Row
	hops     []int64
	rows     []rel.Value
	pend     []*core.Pending[int]
	pb1, pb2 *core.Pending[bool]
	pi1, pi2 *core.Pending[int]
	fn       func(tx *core.Txn) error
	hopFn    func(r rel.Row) bool
}

const (
	csInsertPair = iota
	csMove
	csCountPair
	csTwoHop
)

// run enqueues the scratch's composite against the open transaction; it
// is the pre-bound callback every composite hands to Batch.
func (s *compositeScratch) run(tx *core.Txn) error {
	g := s.g
	var err error
	switch s.kind {
	case csInsertPair:
		if s.pb1, err = tx.ExecRow(g.ins, s.r1); err != nil {
			return err
		}
		s.pb2, err = tx.ExecRow(g.ins, s.r2)
	case csMove:
		if s.pb1, err = tx.ExecRow(g.rem, s.r1); err != nil {
			return err
		}
		s.pb2, err = tx.ExecRow(g.ins, s.r2)
	case csCountPair:
		if s.pi1, err = tx.CountRow(g.succ, s.r1); err != nil {
			return err
		}
		s.pi2, err = tx.CountRow(g.succ, s.r2)
	case csTwoHop:
		for i, h := range s.hops {
			r := rel.RowOver(s.rows[i*g.width:(i+1)*g.width], 0)
			r.Set(g.iSrc, h)
			if s.pend[i], err = tx.CountRow(g.succ, r); err != nil {
				return err
			}
		}
	}
	return err
}

// scratch checks a scratch block out of the pool.
func (g *RelationBatchGraph) scratch() *compositeScratch {
	return g.pool.Get().(*compositeScratch)
}

// exec runs the scratch's composite as one batch. The untraced path calls
// Batch directly with the pre-bound callback (no per-call closure); the
// counting pass routes through the traced wrapper, whose allocations are
// why deterministic timing comes from a separate untraced pass.
func (g *RelationBatchGraph) exec(s *compositeScratch) {
	if g.Counts == nil {
		if err := g.R.Batch(s.fn); err != nil {
			panic(fmt.Sprintf("workload: batch: %v", err))
		}
		return
	}
	g.batch(s.fn)
}

// members records n relational members against the counting pass.
func (g *RelationBatchGraph) members(n int) {
	if g.Counts != nil {
		g.Counts.Members.Add(int64(n))
	}
}

// batch runs one Relation.Batch with lock counting when enabled; the
// trace totals are filled at commit, so they are read after Batch returns.
func (g *RelationBatchGraph) batch(fn func(tx *core.Txn) error) {
	var tr *core.BatchTrace
	err := g.R.Batch(func(tx *core.Txn) error {
		if g.Counts != nil {
			tx.EnableTrace()
			tr = tx.Trace()
		}
		return fn(tx)
	})
	if err != nil {
		panic(fmt.Sprintf("workload: batch: %v", err))
	}
	if tr != nil {
		g.Counts.Harvest(tr)
	}
}

// NewRelationBatchGraph prepares the batched benchmark operations
// against r.
func NewRelationBatchGraph(r *core.Relation) (*RelationBatchGraph, error) {
	rg, err := NewRelationGraph(r)
	if err != nil {
		return nil, err
	}
	g := &RelationBatchGraph{RelationGraph: rg}
	g.pool.New = func() any {
		s := &compositeScratch{g: g}
		s.fn = s.run
		s.hopFn = func(r rel.Row) bool {
			s.hops = append(s.hops, nodeID(r.At(g.iDst)))
			return true
		}
		return s
	}
	return g, nil
}

// MustRelationBatchGraph is NewRelationBatchGraph panicking on error.
func MustRelationBatchGraph(r *core.Relation) *RelationBatchGraph {
	g, err := NewRelationBatchGraph(r)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	return g
}

// edgeRow fills a stack buffer with a fully bound edge row.
func (g *RelationBatchGraph) edgeRow(buf []rel.Value, src, dst, w int64) rel.Row {
	row := rel.RowOver(buf[:g.width], 0)
	row.Set(g.iSrc, src)
	row.Set(g.iDst, dst)
	row.Set(g.iWeight, w)
	return row
}

// keyRow fills a stack buffer with a (src, dst) key row.
func (g *RelationBatchGraph) keyRow(buf []rel.Value, src, dst int64) rel.Row {
	row := rel.RowOver(buf[:g.width], 0)
	row.Set(g.iSrc, src)
	row.Set(g.iDst, dst)
	return row
}

// InsertEdgePair inserts both edges in one batched transaction.
func (g *RelationBatchGraph) InsertEdgePair(src1, dst1, w1, src2, dst2, w2 int64) (bool, bool) {
	g.members(2)
	s := g.scratch()
	s.kind = csInsertPair
	s.r1 = g.edgeRow(s.rb1[:], src1, dst1, w1)
	s.r2 = g.edgeRow(s.rb2[:], src2, dst2, w2)
	g.exec(s)
	ok1, ok2 := s.pb1.Value(), s.pb2.Value()
	g.pool.Put(s)
	return ok1, ok2
}

// MoveEdge removes (src, dstOld) and inserts (src, dstNew, w) atomically.
func (g *RelationBatchGraph) MoveEdge(src, dstOld, dstNew, w int64) (bool, bool) {
	g.members(2)
	s := g.scratch()
	s.kind = csMove
	s.r1 = g.keyRow(s.rb1[:], src, dstOld)
	s.r2 = g.edgeRow(s.rb2[:], src, dstNew, w)
	g.exec(s)
	removed, inserted := s.pb1.Value(), s.pb2.Value()
	g.pool.Put(s)
	return removed, inserted
}

// CountSuccessorPair counts successors of a and b in one snapshot.
func (g *RelationBatchGraph) CountSuccessorPair(a, b int64) int {
	g.members(2)
	s := g.scratch()
	s.kind = csCountPair
	s.r1 = rel.RowOver(s.rb1[:g.width], 0)
	s.r1.Set(g.iSrc, a)
	s.r2 = rel.RowOver(s.rb2[:g.width], 0)
	s.r2.Set(g.iSrc, b)
	g.exec(s)
	total := s.pi1.Value() + s.pi2.Value()
	g.pool.Put(s)
	return total
}

// TwoHopCount reads src's successor list, then counts every successor's
// successors in one atomic batch and returns the sum.
func (g *RelationBatchGraph) TwoHopCount(src int64) int {
	s := g.scratch()
	s.hops = s.hops[:0]
	row := rel.RowOver(s.rb1[:g.width], 0)
	row.Set(g.iSrc, src)
	if err := g.succ.ExecRows(row, s.hopFn); err != nil {
		panic(fmt.Sprintf("workload: two-hop successors: %v", err))
	}
	g.members(1 + len(s.hops)) // the hop-1 read plus one count per successor
	if len(s.hops) == 0 {
		g.pool.Put(s)
		return 0
	}
	s.kind = csTwoHop
	if need := len(s.hops) * g.width; cap(s.rows) < need {
		s.rows = make([]rel.Value, need)
	} else {
		s.rows = s.rows[:need]
	}
	if cap(s.pend) < len(s.hops) {
		s.pend = make([]*core.Pending[int], len(s.hops))
	} else {
		s.pend = s.pend[:len(s.hops)]
	}
	g.exec(s)
	total := 0
	for _, p := range s.pend {
		total += p.Value()
	}
	g.pool.Put(s)
	return total
}

// nodeID converts a stored node-id value to the int64 ids GraphOps
// speaks. The benchmark adapters write int64, but the relation is shared
// with tuple-API clients whose literals arrive as int, so both are
// accepted; anything else is a mis-specified graph and panics.
func nodeID(v rel.Value) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case int:
		return int64(x)
	case uint64:
		return int64(x)
	}
	panic(fmt.Sprintf("workload: node id %v (%T) is not an integer", v, v))
}

// SequentialRelationBatchGraph is the sequential baseline over a
// synthesized relation: identical per-member execution to
// RelationBatchGraph (same prepared row operations) but one transaction
// per member instead of one coalesced transaction per group.
type SequentialRelationBatchGraph struct {
	*RelationGraph

	// Counts, when non-nil, accumulates the relational member total of the
	// deterministic counting pass. Unlike the batched adapter it carries NO
	// lock-schedule or OCC statistics: the sequential discipline runs bare
	// single operations outside any traced batch, so those counters do not
	// exist for it — crsbench marks its deterministic rows counters_absent.
	Counts *LockCounts
}

// members records n relational members against the counting pass.
func (g *SequentialRelationBatchGraph) members(n int) {
	if g.Counts != nil {
		g.Counts.Members.Add(int64(n))
	}
}

// NewSequentialRelationBatchGraph prepares the baseline against r.
func NewSequentialRelationBatchGraph(r *core.Relation) (*SequentialRelationBatchGraph, error) {
	g, err := NewRelationGraph(r)
	if err != nil {
		return nil, err
	}
	return &SequentialRelationBatchGraph{RelationGraph: g}, nil
}

// InsertEdgePair issues the two inserts as separate transactions.
func (g *SequentialRelationBatchGraph) InsertEdgePair(src1, dst1, w1, src2, dst2, w2 int64) (bool, bool) {
	g.members(2)
	return g.InsertEdge(src1, dst1, w1), g.InsertEdge(src2, dst2, w2)
}

// MoveEdge issues remove then insert as separate transactions.
func (g *SequentialRelationBatchGraph) MoveEdge(src, dstOld, dstNew, w int64) (bool, bool) {
	g.members(2)
	return g.RemoveEdge(src, dstOld), g.InsertEdge(src, dstNew, w)
}

// CountSuccessorPair issues the two counts as separate transactions.
func (g *SequentialRelationBatchGraph) CountSuccessorPair(a, b int64) int {
	g.members(2)
	return g.FindSuccessors(a) + g.FindSuccessors(b)
}

// TwoHopCount reads the successor list, then counts each successor's
// successors as separate transactions (no hop-2 consistency).
func (g *SequentialRelationBatchGraph) TwoHopCount(src int64) int {
	var buf [3]rel.Value
	row := rel.RowOver(buf[:g.width], 0)
	row.Set(g.iSrc, src)
	var hops []int64
	if err := g.succ.ExecRows(row, func(r rel.Row) bool {
		hops = append(hops, nodeID(r.At(g.iDst)))
		return true
	}); err != nil {
		panic(fmt.Sprintf("workload: two-hop successors: %v", err))
	}
	g.members(1 + len(hops)) // the hop-1 read plus one count per successor
	total := 0
	for _, h := range hops {
		total += g.FindSuccessors(h)
	}
	return total
}

// BatchMix is an operation distribution over the composite batched
// operations, in percent: insert pairs, edge moves, successor-count
// pairs, and two-hop counts.
type BatchMix struct {
	InsertPairs, Moves, CountPairs, TwoHops int
}

// String renders the mix as p-m-c-h.
func (m BatchMix) String() string {
	return fmt.Sprintf("%d-%d-%d-%d", m.InsertPairs, m.Moves, m.CountPairs, m.TwoHops)
}

// valid reports whether the percentages sum to 100.
func (m BatchMix) valid() bool {
	return m.InsertPairs+m.Moves+m.CountPairs+m.TwoHops == 100
}

// DefaultBatchMix returns the mixed read-write distribution the batched
// Figure-5 variant reports: 20% insert pairs, 10% moves, 40% count
// pairs, 30% two-hop counts.
func DefaultBatchMix() BatchMix {
	return BatchMix{InsertPairs: 20, Moves: 10, CountPairs: 40, TwoHops: 30}
}

// ReadHeavyBatchMix returns the 95/5 read-dominated distribution of the
// optimistic benchmark: count pairs and two-hop scans (pure read-only
// groups, lock-free on an OptimisticCapable relation) with a trickle of
// writes keeping the epochs moving.
func ReadHeavyBatchMix() BatchMix {
	return BatchMix{InsertPairs: 3, Moves: 2, CountPairs: 45, TwoHops: 50}
}

// CompositeOp draws and executes ONE composite operation against g: it
// advances the SplitMix64 state, picks the composite per mix, derives the
// operand node ids from the draw, and returns the checksum contribution.
// It is the single dispatch shared by RunBatched and the in-repo
// BatchedVsSequential benchmark, so archived BENCH_*.json runs and
// `go test -bench` measure the same workload under the same mix label.
func CompositeOp(g BatchGraphOps, state *uint64, mix BatchMix, keySpace int64) uint64 {
	r := splitmix64(state)
	choice := int(r % 100)
	a := int64((r >> 32) % uint64(keySpace))
	b := int64((r >> 16) % uint64(keySpace))
	c := int64((r >> 48) % uint64(keySpace))
	var sum uint64
	switch {
	case choice < mix.InsertPairs:
		ok1, ok2 := g.InsertEdgePair(a, b, int64(r>>40), a, c, int64(r>>24))
		if ok1 {
			sum++
		}
		if ok2 {
			sum++
		}
	case choice < mix.InsertPairs+mix.Moves:
		rem, ins := g.MoveEdge(a, b, c, int64(r>>40))
		if rem {
			sum++
		}
		if ins {
			sum++
		}
	case choice < mix.InsertPairs+mix.Moves+mix.CountPairs:
		sum += uint64(g.CountSuccessorPair(a, b))
	default:
		sum += uint64(g.TwoHopCount(a))
	}
	return sum
}

// RunBatched executes the batched benchmark: cfg.Threads workers each
// perform cfg.OpsPerThread composite operations drawn from mix, against
// one shared BatchGraphOps. Throughput is reported in composite
// operations per second (each composite is ≥ 2 relational operations).
func RunBatched(g BatchGraphOps, cfg Config, mix BatchMix) Result {
	if !mix.valid() {
		panic(fmt.Sprintf("workload: batch mix %s does not sum to 100", mix))
	}
	return runWorkers(cfg, func(state *uint64) uint64 {
		return CompositeOp(g, state, mix, cfg.KeySpace)
	})
}

// runWorkers is the shared thread harness of Run and RunBatched: start
// cfg.Threads generators together, execute cfg.OpsPerThread draws of op,
// and report aggregate throughput and the checksum.
func runWorkers(cfg Config, op func(state *uint64) uint64) Result {
	if cfg.Threads < 1 || cfg.OpsPerThread < 1 || cfg.KeySpace < 1 {
		panic("workload: invalid config")
	}
	done := make(chan uint64, cfg.Threads)
	start := make(chan struct{})
	for i := 0; i < cfg.Threads; i++ {
		go func(tid int) {
			state := cfg.Seed*0x9e3779b97f4a7c15 + uint64(tid)*0xdeadbeefcafef00d + 1
			<-start
			var sum uint64
			for n := 0; n < cfg.OpsPerThread; n++ {
				sum += op(&state)
			}
			done <- sum
		}(i)
	}
	t0 := time.Now()
	close(start)
	var checksum uint64
	for i := 0; i < cfg.Threads; i++ {
		checksum += <-done
	}
	elapsed := time.Since(t0)
	total := cfg.Threads * cfg.OpsPerThread
	return Result{
		Ops:        total,
		Duration:   elapsed,
		Throughput: float64(total) / elapsed.Seconds(),
		Checksum:   checksum,
	}
}
