package workload

import (
	"math"
	"testing"
	"time"
)

// TestPoissonDeterministic pins that a Poisson generator is a pure
// function of its seed: same seed → identical gap sequence, different
// seed → a different one.
func TestPoissonDeterministic(t *testing.T) {
	const n = 1000
	a := NewPoissonArrivals(42, time.Millisecond)
	b := NewPoissonArrivals(42, time.Millisecond)
	c := NewPoissonArrivals(43, time.Millisecond)
	same, diff := true, false
	for i := 0; i < n; i++ {
		ga, gb, gc := a.Next(), b.Next(), c.Next()
		if ga != gb {
			same = false
		}
		if ga != gc {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different gap sequences")
	}
	if !diff {
		t.Fatal("different seeds produced identical gap sequences")
	}
}

// TestPoissonDistribution sanity-checks the exponential shape under a
// fixed seed: positive gaps, sample mean near the configured mean, and
// roughly 1-1/e of gaps below the mean (exponential CDF at the mean).
func TestPoissonDistribution(t *testing.T) {
	const n = 200_000
	mean := time.Millisecond
	g := NewPoissonArrivals(7, mean)
	var sum time.Duration
	below := 0
	for i := 0; i < n; i++ {
		gap := g.Next()
		if gap < 0 {
			t.Fatalf("draw %d: negative gap %v", i, gap)
		}
		sum += gap
		if gap < mean {
			below++
		}
	}
	sampleMean := float64(sum) / n
	if ratio := sampleMean / float64(mean); ratio < 0.98 || ratio > 1.02 {
		t.Fatalf("sample mean %.0fns is %.3f of configured mean %v", sampleMean, ratio, mean)
	}
	want := 1 - 1/math.E
	if got := float64(below) / n; math.Abs(got-want) > 0.01 {
		t.Fatalf("fraction of gaps below the mean = %.4f, want ≈ %.4f", got, want)
	}
}

// TestBurstyDeterministic pins seed-determinism of the burst process,
// including the burst-size draws (the zero-gap runs must line up, not
// just the idle gaps).
func TestBurstyDeterministic(t *testing.T) {
	const n = 1000
	a := NewBurstyArrivals(9, 4, time.Millisecond)
	b := NewBurstyArrivals(9, 4, time.Millisecond)
	for i := 0; i < n; i++ {
		if ga, gb := a.Next(), b.Next(); ga != gb {
			t.Fatalf("draw %d: %v != %v", i, ga, gb)
		}
	}
}

// TestBurstyShape checks the on/off structure under a fixed seed: every
// gap is zero (within a burst) or positive (burst boundary), mean burst
// size tracks the configured geometric mean, and the idle gaps keep
// their exponential mean.
func TestBurstyShape(t *testing.T) {
	const n = 200_000
	meanBurst := 4.0
	meanGap := time.Millisecond
	g := NewBurstyArrivals(11, meanBurst, meanGap)
	bursts := 0
	var idle time.Duration
	for i := 0; i < n; i++ {
		gap := g.Next()
		if gap < 0 {
			t.Fatalf("draw %d: negative gap %v", i, gap)
		}
		if gap > 0 {
			bursts++
			idle += gap
		}
	}
	if bursts == 0 {
		t.Fatal("no burst boundaries in the sample")
	}
	if got := float64(n) / float64(bursts); got < meanBurst*0.95 || got > meanBurst*1.05 {
		t.Fatalf("mean burst size %.3f, want ≈ %.1f", got, meanBurst)
	}
	gapMean := float64(idle) / float64(bursts)
	if ratio := gapMean / float64(meanGap); ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("mean idle gap %.0fns is %.3f of configured %v", gapMean, ratio, meanGap)
	}
}

// TestBurstyMeanBurstOne pins the degenerate case: mean burst 1 is a
// plain Poisson process — every gap positive, no zero-gap runs.
func TestBurstyMeanBurstOne(t *testing.T) {
	g := NewBurstyArrivals(3, 1, time.Millisecond)
	for i := 0; i < 10_000; i++ {
		if gap := g.Next(); gap <= 0 {
			t.Fatalf("draw %d: gap %v, want positive", i, gap)
		}
	}
}

// TestArrivalReset pins that Reset rewinds a generator to its initial
// state: the replayed gap sequence is identical draw for draw, even when
// Reset lands mid-burst for the bursty process.
func TestArrivalReset(t *testing.T) {
	gens := []struct {
		name string
		gen  ArrivalGen
	}{
		{"poisson", NewPoissonArrivals(42, time.Millisecond)},
		{"bursty", NewBurstyArrivals(42, 4, time.Millisecond)},
	}
	for _, tc := range gens {
		t.Run(tc.name, func(t *testing.T) {
			const n = 500
			first := make([]time.Duration, n)
			for i := range first {
				first[i] = tc.gen.Next()
			}
			// Rewind from a clean end-of-sequence point...
			tc.gen.Reset()
			for i := 0; i < n; i++ {
				if got := tc.gen.Next(); got != first[i] {
					t.Fatalf("after Reset, draw %d = %v, want %v", i, got, first[i])
				}
			}
			// ...and from an arbitrary mid-sequence point (for bursty this
			// can land inside a burst; Reset must discard the burst tail).
			tc.gen.Reset()
			for i := 0; i < n/3; i++ {
				tc.gen.Next()
			}
			tc.gen.Reset()
			for i := 0; i < n; i++ {
				if got := tc.gen.Next(); got != first[i] {
					t.Fatalf("after mid-sequence Reset, draw %d = %v, want %v", i, got, first[i])
				}
			}
		})
	}
}

// TestArrivalValidation pins constructor panics on nonsense parameters.
func TestArrivalValidation(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"poisson zero mean", func() { NewPoissonArrivals(1, 0) }},
		{"bursty small burst", func() { NewBurstyArrivals(1, 0.5, time.Millisecond) }},
		{"bursty zero gap", func() { NewBurstyArrivals(1, 2, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}
