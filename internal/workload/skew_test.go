package workload

import "testing"

// TestSkewedKeyUniformIdentity: skew 0 must reproduce the historical
// modular draw exactly — archived benchmark checksums depend on it.
func TestSkewedKeyUniformIdentity(t *testing.T) {
	state := uint64(42)
	for i := 0; i < 10000; i++ {
		u := splitmix64(&state)
		if got, want := SkewedKey(u, 512, 0), int64(u%512); got != want {
			t.Fatalf("SkewedKey(%d, 512, 0) = %d, want %d", u, got, want)
		}
	}
}

// TestSkewedKeyConcentration: higher skew must concentrate strictly more
// mass on the hot (low-id) end, and every draw must stay in range.
func TestSkewedKeyConcentration(t *testing.T) {
	const keySpace = 512
	const draws = 200000
	hotMass := func(skew float64) float64 {
		state := uint64(7)
		hot := 0
		for i := 0; i < draws; i++ {
			id := SkewedKey(splitmix64(&state), keySpace, skew)
			if id < 0 || id >= keySpace {
				t.Fatalf("skew %v: id %d outside [0, %d)", skew, id, keySpace)
			}
			if id < keySpace/10 {
				hot++
			}
		}
		return float64(hot) / draws
	}
	uniform := hotMass(0)
	mid := hotMass(0.5)
	high := hotMass(0.9)
	if uniform < 0.08 || uniform > 0.12 {
		t.Errorf("uniform hot mass %.3f, want ~0.10", uniform)
	}
	if mid <= uniform {
		t.Errorf("skew 0.5 hot mass %.3f not above uniform %.3f", mid, uniform)
	}
	if high <= mid {
		t.Errorf("skew 0.9 hot mass %.3f not above skew 0.5 %.3f", high, mid)
	}
	// skew 0.9 (exponent 10) should put well over half the mass on the
	// hottest decile.
	if high < 0.5 {
		t.Errorf("skew 0.9 hot mass %.3f, want > 0.5", high)
	}
}

// TestSocialOpSkewZeroMatches: the skewed dispatch at skew 0 must follow
// the exact RNG/operand path of SocialOp — same checksums, same state.
func TestSocialOpSkewZeroMatches(t *testing.T) {
	s1, s2 := MustSocial(), MustSocial()
	mix := MixedSocialMix()
	st1, st2 := uint64(99), uint64(99)
	for i := 0; i < 500; i++ {
		a := SocialOp(s1, &st1, mix, 64)
		b := SocialOpSkewed(s2, &st2, mix, 64, 0)
		if a != b || st1 != st2 {
			t.Fatalf("op %d: sums %d/%d states %d/%d diverge", i, a, b, st1, st2)
		}
	}
}
