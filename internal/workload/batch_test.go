package workload

import (
	"testing"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/locks"
)

// buildBatchRel synthesizes a striped stick for the batched-workload
// tests.
func buildBatchRel(t *testing.T) *core.Relation {
	t.Helper()
	d, err := decomp.NewBuilder(GraphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, container.ConcurrentHashMap).
		Edge("uv", "u", "v", []string{"dst"}, container.TreeMap).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := locks.NewPlacement(d)
	p.SetStripes(d.Root, 64)
	p.Place(d.EdgeByName("ρu"), d.Root, "src")
	r, err := core.Synthesize(d, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestBatchedMatchesSequentialAdapters checks, single-threaded, that the
// batched adapter and the sequential baseline produce identical composite
// results and identical final graphs from the same operation stream.
func TestBatchedMatchesSequentialAdapters(t *testing.T) {
	rb := buildBatchRel(t)
	rs := buildBatchRel(t)
	gb := MustRelationBatchGraph(rb)
	gs, err := NewSequentialRelationBatchGraph(rs)
	if err != nil {
		t.Fatal(err)
	}
	state := uint64(42)
	for i := 0; i < 400; i++ {
		r := splitmix64(&state)
		a, b, c := int64(r%16), int64((r>>16)%16), int64((r>>32)%16)
		switch r % 4 {
		case 0:
			b1, b2 := gb.InsertEdgePair(a, b, int64(i), a, c, int64(i+1))
			s1, s2 := gs.InsertEdgePair(a, b, int64(i), a, c, int64(i+1))
			if b1 != s1 || b2 != s2 {
				t.Fatalf("op %d: InsertEdgePair batched (%v,%v) sequential (%v,%v)", i, b1, b2, s1, s2)
			}
		case 1:
			b1, b2 := gb.MoveEdge(a, b, c, int64(i))
			s1, s2 := gs.MoveEdge(a, b, c, int64(i))
			if b1 != s1 || b2 != s2 {
				t.Fatalf("op %d: MoveEdge batched (%v,%v) sequential (%v,%v)", i, b1, b2, s1, s2)
			}
		case 2:
			if bn, sn := gb.CountSuccessorPair(a, b), gs.CountSuccessorPair(a, b); bn != sn {
				t.Fatalf("op %d: CountSuccessorPair batched %d sequential %d", i, bn, sn)
			}
		default:
			if bn, sn := gb.TwoHopCount(a), gs.TwoHopCount(a); bn != sn {
				t.Fatalf("op %d: TwoHopCount batched %d sequential %d", i, bn, sn)
			}
		}
	}
	sb, err := rb.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ss, err := rs.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(sb) != len(ss) {
		t.Fatalf("final graphs diverge: batched %d tuples, sequential %d", len(sb), len(ss))
	}
}

// TestRunBatched smoke-tests the batched harness under concurrency: it
// must terminate (deadlock freedom), count every operation, and leave a
// coherent graph.
func TestRunBatched(t *testing.T) {
	r := buildBatchRel(t)
	g := MustRelationBatchGraph(r)
	cfg := Config{Threads: 4, OpsPerThread: 300, KeySpace: 16, Seed: 7}
	res := RunBatched(g, cfg, DefaultBatchMix())
	if res.Ops != 4*300 {
		t.Fatalf("ops = %d, want %d", res.Ops, 4*300)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %f", res.Throughput)
	}
	if _, err := r.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchMixValidation pins the percentage check.
func TestBatchMixValidation(t *testing.T) {
	g := MustRelationBatchGraph(buildBatchRel(t))
	defer func() {
		if recover() == nil {
			t.Fatal("invalid batch mix did not panic")
		}
	}()
	RunBatched(g, Config{Threads: 1, OpsPerThread: 1, KeySpace: 1}, BatchMix{InsertPairs: 50})
}

// TestReadHeavyBatchLockFree drives the read-heavy mix single-threaded
// against the optimistic-capable stick and asserts the zero-lock
// property: every read-only composite (count pairs, two-hop counts) runs
// as an optimistic batch that acquires no locks, retries nothing on an
// uncontended pass, and never falls back.
func TestReadHeavyBatchLockFree(t *testing.T) {
	core.SetAudit(true)
	defer core.SetAudit(false)
	d, err := decomp.NewBuilder(GraphSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, container.ConcurrentHashMap).
		Edge("uv", "u", "v", []string{"dst"}, container.ConcurrentSkipListMap).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	p := locks.NewPlacement(d)
	p.SetStripes(d.Root, 64)
	p.Place(d.EdgeByName("ρu"), d.Root, "src")
	r, err := core.Synthesize(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OptimisticCapable() {
		t.Fatal("concurrent stick should be optimistic-capable")
	}
	g := MustRelationBatchGraph(r)
	g.Counts = &LockCounts{}
	state := uint64(9)
	for i := 0; i < 1000; i++ {
		CompositeOp(g, &state, ReadHeavyBatchMix(), 16)
	}
	if g.Counts.ReadOnlyBatches.Load() == 0 {
		t.Fatal("read-heavy mix produced no optimistic read-only batches")
	}
	if got := g.Counts.ReadOnlyAcquired.Load(); got != 0 {
		t.Fatalf("read-only batches acquired %d locks, want 0", got)
	}
	if got := g.Counts.ValidationRetries.Load(); got != 0 {
		t.Fatalf("%d validation retries on an uncontended pass", got)
	}
	if got := g.Counts.Fallbacks.Load(); got != 0 {
		t.Fatalf("%d fallbacks on an uncontended pass", got)
	}
	// The write composites still take locks: total acquisitions are all
	// attributable to them.
	if g.Counts.Acquired.Load() == 0 {
		t.Fatal("write composites acquired no locks")
	}
}
