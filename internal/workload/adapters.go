package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rel"
)

// RelationGraph adapts a synthesized relation over the directed-graph
// specification to the benchmark's GraphOps interface. Operations are
// prepared once at construction — the library analog of the paper's
// statically compiled operations. Errors from the relation indicate a
// mis-specified benchmark setup, so they panic.
type RelationGraph struct {
	R    *core.Relation
	succ *core.PreparedQuery
	pred *core.PreparedQuery
	ins  *core.PreparedInsert
	rem  *core.PreparedRemove
}

// GraphSpec is the relational specification of §2's running example:
// {src, dst, weight} with src,dst → weight.
func GraphSpec() rel.Spec {
	return rel.MustSpec([]string{"src", "dst", "weight"},
		rel.FD{From: []string{"src", "dst"}, To: []string{"weight"}})
}

// NewRelationGraph prepares the four benchmark operations against r.
func NewRelationGraph(r *core.Relation) (*RelationGraph, error) {
	succ, err := r.PrepareQuery([]string{"src"}, []string{"dst", "weight"})
	if err != nil {
		return nil, err
	}
	pred, err := r.PrepareQuery([]string{"dst"}, []string{"src", "weight"})
	if err != nil {
		return nil, err
	}
	ins, err := r.PrepareInsert([]string{"dst", "src"})
	if err != nil {
		return nil, err
	}
	rem, err := r.PrepareRemove([]string{"dst", "src"})
	if err != nil {
		return nil, err
	}
	return &RelationGraph{R: r, succ: succ, pred: pred, ins: ins, rem: rem}, nil
}

// MustRelationGraph is NewRelationGraph panicking on error.
func MustRelationGraph(r *core.Relation) *RelationGraph {
	g, err := NewRelationGraph(r)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	return g
}

// FindSuccessors counts (dst, weight) pairs for src.
func (g *RelationGraph) FindSuccessors(src int64) int {
	n, err := g.succ.Count(rel.T("src", src))
	if err != nil {
		panic(fmt.Sprintf("workload: successors: %v", err))
	}
	return n
}

// FindPredecessors counts (src, weight) pairs for dst.
func (g *RelationGraph) FindPredecessors(dst int64) int {
	n, err := g.pred.Count(rel.T("dst", dst))
	if err != nil {
		panic(fmt.Sprintf("workload: predecessors: %v", err))
	}
	return n
}

// InsertEdge inserts via put-if-absent on (src, dst).
func (g *RelationGraph) InsertEdge(src, dst, weight int64) bool {
	ok, err := g.ins.Exec(rel.T("src", src, "dst", dst), rel.T("weight", weight))
	if err != nil {
		panic(fmt.Sprintf("workload: insert: %v", err))
	}
	return ok
}

// RemoveEdge removes by the (src, dst) key.
func (g *RelationGraph) RemoveEdge(src, dst int64) bool {
	ok, err := g.rem.Exec(rel.T("src", src, "dst", dst))
	if err != nil {
		panic(fmt.Sprintf("workload: remove: %v", err))
	}
	return ok
}
