package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rel"
)

// RelationGraph adapts a synthesized relation over the directed-graph
// specification to the benchmark's GraphOps interface. Operations are
// prepared once at construction — the library analog of the paper's
// statically compiled operations — and executed through the prepared row
// API: each call builds a dense rel.Row via schema indices resolved at
// construction time, so the benchmark measures the zero-name-resolution
// pipeline end to end. Errors from the relation indicate a mis-specified
// benchmark setup, so they panic.
type RelationGraph struct {
	R    *core.Relation
	succ *core.PreparedQuery
	pred *core.PreparedQuery
	ins  *core.PreparedInsert
	rem  *core.PreparedRemove

	// Schema indices of the three graph columns, resolved once.
	iSrc, iDst, iWeight int
	width               int
}

// GraphSpec is the relational specification of §2's running example:
// {src, dst, weight} with src,dst → weight.
func GraphSpec() rel.Spec {
	return rel.MustSpec([]string{"src", "dst", "weight"},
		rel.FD{From: []string{"src", "dst"}, To: []string{"weight"}})
}

// NewRelationGraph prepares the four benchmark operations against r.
func NewRelationGraph(r *core.Relation) (*RelationGraph, error) {
	succ, err := r.PrepareQuery([]string{"src"}, []string{"dst", "weight"})
	if err != nil {
		return nil, err
	}
	pred, err := r.PrepareQuery([]string{"dst"}, []string{"src", "weight"})
	if err != nil {
		return nil, err
	}
	ins, err := r.PrepareInsert([]string{"dst", "src"})
	if err != nil {
		return nil, err
	}
	rem, err := r.PrepareRemove([]string{"dst", "src"})
	if err != nil {
		return nil, err
	}
	schema := r.Schema()
	g := &RelationGraph{R: r, succ: succ, pred: pred, ins: ins, rem: rem, width: schema.Len()}
	var ok bool
	if g.iSrc, ok = schema.IndexOf("src"); !ok {
		return nil, fmt.Errorf("workload: relation schema lacks column src")
	}
	if g.iDst, ok = schema.IndexOf("dst"); !ok {
		return nil, fmt.Errorf("workload: relation schema lacks column dst")
	}
	if g.iWeight, ok = schema.IndexOf("weight"); !ok {
		return nil, fmt.Errorf("workload: relation schema lacks column weight")
	}
	if g.width != 3 {
		return nil, fmt.Errorf("workload: graph adapter needs the 3-column graph spec, got %d columns", g.width)
	}
	return g, nil
}

// MustRelationGraph is NewRelationGraph panicking on error.
func MustRelationGraph(r *core.Relation) *RelationGraph {
	g, err := NewRelationGraph(r)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	return g
}

// row builds a stack-backed operation row; the graph schema has exactly
// three columns.
func (g *RelationGraph) row(buf []rel.Value) rel.Row {
	return rel.RowOver(buf[:g.width], 0)
}

// FindSuccessors counts (dst, weight) pairs for src.
func (g *RelationGraph) FindSuccessors(src int64) int {
	var buf [3]rel.Value
	row := g.row(buf[:])
	row.Set(g.iSrc, src)
	n, err := g.succ.CountRow(row)
	if err != nil {
		panic(fmt.Sprintf("workload: successors: %v", err))
	}
	return n
}

// FindPredecessors counts (src, weight) pairs for dst.
func (g *RelationGraph) FindPredecessors(dst int64) int {
	var buf [3]rel.Value
	row := g.row(buf[:])
	row.Set(g.iDst, dst)
	n, err := g.pred.CountRow(row)
	if err != nil {
		panic(fmt.Sprintf("workload: predecessors: %v", err))
	}
	return n
}

// InsertEdge inserts via put-if-absent on (src, dst).
func (g *RelationGraph) InsertEdge(src, dst, weight int64) bool {
	var buf [3]rel.Value
	row := g.row(buf[:])
	row.Set(g.iSrc, src)
	row.Set(g.iDst, dst)
	row.Set(g.iWeight, weight)
	ok, err := g.ins.ExecRow(row)
	if err != nil {
		panic(fmt.Sprintf("workload: insert: %v", err))
	}
	return ok
}

// RemoveEdge removes by the (src, dst) key.
func (g *RelationGraph) RemoveEdge(src, dst int64) bool {
	var buf [3]rel.Value
	row := g.row(buf[:])
	row.Set(g.iSrc, src)
	row.Set(g.iDst, dst)
	ok, err := g.rem.ExecRow(row)
	if err != nil {
		panic(fmt.Sprintf("workload: remove: %v", err))
	}
	return ok
}
