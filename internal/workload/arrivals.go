package workload

import (
	"fmt"
	"math"
	"time"
)

// This file closes the ROADMAP's burstiness gap: the throughput drivers
// fire operations back to back, which models saturated callers but not
// ARRIVING traffic — and the group-commit dispatcher's window only has
// something to coalesce when requests cluster in time. Two deterministic
// arrival processes cover the realistic shapes: Poisson (memoryless
// independent clients; exponential inter-arrival gaps) and bursty
// (on/off sources: geometric-size bursts of back-to-back arrivals
// separated by exponential idle gaps — the heavy-tailed clumping real
// front-end fan-out produces). Both are pure functions of their seed, so
// the wire benchmark and the e2e tests can replay identical arrival
// schedules.

// ArrivalGen produces a deterministic sequence of inter-arrival gaps:
// Next returns the delay before the NEXT event. Implementations are pure
// functions of their seed and are not safe for concurrent use (give each
// client goroutine its own generator).
type ArrivalGen interface {
	// Next returns the gap preceding the next arrival.
	Next() time.Duration
	// Reset rewinds the generator to its initial state so the exact
	// sequence of gaps replays — a counting pass can sum the schedule's
	// offered load and a measurement pass can then fire on the identical
	// schedule without reconstructing the generator.
	Reset()
}

// uniform01 maps one SplitMix64 draw onto (0, 1]: the open lower bound
// keeps math.Log finite.
func uniform01(state *uint64) float64 {
	u := float64(splitmix64(state)>>11) / float64(1<<53) // [0, 1) with 53-bit resolution
	return 1 - u                                         // (0, 1]
}

// PoissonArrivals generates a Poisson arrival process: independent
// exponential inter-arrival gaps with the configured mean, via the
// inverse-CDF transform gap = -Mean·ln(U).
type PoissonArrivals struct {
	// Mean is the mean inter-arrival gap (1/λ).
	Mean time.Duration
	// state is the SplitMix64 draw state; init remembers its initial
	// value for Reset.
	state uint64
	init  uint64
}

// NewPoissonArrivals returns a Poisson process with the given mean gap.
func NewPoissonArrivals(seed uint64, mean time.Duration) *PoissonArrivals {
	if mean <= 0 {
		panic(fmt.Sprintf("workload: poisson mean %v must be positive", mean))
	}
	s := seed*0x9e3779b97f4a7c15 + 1
	return &PoissonArrivals{Mean: mean, state: s, init: s}
}

// Reset rewinds the process to its initial seed state.
func (p *PoissonArrivals) Reset() { p.state = p.init }

// Next draws the next exponential gap.
func (p *PoissonArrivals) Next() time.Duration {
	gap := -math.Log(uniform01(&p.state)) * float64(p.Mean)
	return time.Duration(gap)
}

// BurstyArrivals generates an on/off burst process: bursts of
// back-to-back arrivals (zero gap) whose sizes are geometric with the
// configured mean, separated by exponential idle gaps. The first arrival
// of each burst pays the idle gap; the rest of the burst arrives
// immediately — the clumped shape that gives a coalescing window
// something to win on.
type BurstyArrivals struct {
	// MeanBurst is the mean burst size (geometric distribution, ≥ 1).
	MeanBurst float64
	// MeanGap is the mean idle gap between bursts.
	MeanGap time.Duration
	// state is the SplitMix64 draw state; init remembers its initial
	// value for Reset; left counts the remaining arrivals of the
	// current burst.
	state uint64
	init  uint64
	left  int
}

// NewBurstyArrivals returns a burst process with the given mean burst
// size and mean inter-burst gap.
func NewBurstyArrivals(seed uint64, meanBurst float64, meanGap time.Duration) *BurstyArrivals {
	if meanBurst < 1 {
		panic(fmt.Sprintf("workload: mean burst size %v must be >= 1", meanBurst))
	}
	if meanGap <= 0 {
		panic(fmt.Sprintf("workload: mean gap %v must be positive", meanGap))
	}
	s := seed*0x9e3779b97f4a7c15 + 1
	return &BurstyArrivals{MeanBurst: meanBurst, MeanGap: meanGap, state: s, init: s}
}

// Reset rewinds the process to its initial seed state, discarding any
// in-progress burst.
func (b *BurstyArrivals) Reset() {
	b.state = b.init
	b.left = 0
}

// burstSize draws a geometric burst size with mean MeanBurst: success
// probability 1/MeanBurst, support {1, 2, ...}, via the inverse-CDF
// transform ⌈ln(U)/ln(1-p)⌉.
func (b *BurstyArrivals) burstSize() int {
	p := 1 / b.MeanBurst
	if p >= 1 {
		return 1
	}
	n := int(math.Ceil(math.Log(uniform01(&b.state)) / math.Log(1-p)))
	if n < 1 {
		n = 1
	}
	return n
}

// Next returns the gap before the next arrival: an exponential idle gap
// when it opens a new burst, zero within a burst.
func (b *BurstyArrivals) Next() time.Duration {
	if b.left > 0 {
		b.left--
		return 0
	}
	b.left = b.burstSize() - 1
	gap := -math.Log(uniform01(&b.state)) * float64(b.MeanGap)
	return time.Duration(gap)
}
