package workload

import (
	"testing"

	"repro/internal/core"
)

// TestSocialCounterInvariant drives the composite mix single-threaded and
// checks the cross-table invariant the grouped transactions maintain: the
// stored per-user post counter equals the actual number of posts by that
// author, for every author touched.
func TestSocialCounterInvariant(t *testing.T) {
	core.SetAudit(true)
	defer core.SetAudit(false)
	s := MustSocial()
	state := uint64(42)
	const keys = 8
	for i := 0; i < 2000; i++ {
		SocialOp(s, &state, DefaultSocialMix(), keys)
	}
	for a := int64(0); a < keys; a++ {
		if got, want := s.PostCount(a), int64(s.PostsOf(a)); got != want {
			t.Fatalf("author %d: stored counter %d, actual posts %d", a, got, want)
		}
	}
	for _, r := range []*core.Relation{s.Users, s.Posts, s.Follows} {
		if _, err := r.VerifyWellFormed(); err != nil {
			t.Fatalf("%s ill-formed: %v", r.Name(), err)
		}
	}
}

// TestSocialGroupedMatchesSequential runs the identical deterministic
// workload in both disciplines and requires identical checksums (the
// member executions are the same; only the transaction grouping differs).
// Read-only groups run lock-free in both disciplines, so the
// cross-discipline lock-count comparison is meaningful only on the
// write side: TestSocialWriteCoalescing asserts it on a write-only mix.
func TestSocialGroupedMatchesSequential(t *testing.T) {
	run := func(grouped bool) (uint64, *LockCounts) {
		s := MustSocial()
		s.Grouped = grouped
		s.Counts = &LockCounts{}
		state := uint64(7)
		var sum uint64
		for i := 0; i < 1500; i++ {
			sum += SocialOp(s, &state, DefaultSocialMix(), 6)
		}
		return sum, s.Counts
	}
	gSum, gCounts := run(true)
	sSum, sCounts := run(false)
	if gSum != sSum {
		t.Fatalf("checksums diverge: grouped %d, sequential %d", gSum, sSum)
	}
	if gCounts.Requested.Load() == 0 || gCounts.Acquired.Load() == 0 {
		t.Fatal("lock counting recorded nothing")
	}
	// The uncontended single-threaded pass must never fail a validation:
	// every read-only group (40% snapshots, plus the sequential
	// discipline's standalone reads) runs lock-free with zero retries.
	for name, c := range map[string]*LockCounts{"grouped": gCounts, "sequential": sCounts} {
		if c.ReadOnlyBatches.Load() == 0 {
			t.Fatalf("%s run attempted no optimistic read-only batches", name)
		}
		if got := c.ReadOnlyAcquired.Load(); got != 0 {
			t.Fatalf("%s run: read-only batches acquired %d locks, want 0", name, got)
		}
		if got := c.ValidationRetries.Load(); got != 0 {
			t.Fatalf("%s run: %d validation retries on an uncontended pass", name, got)
		}
		if got := c.Fallbacks.Load(); got != 0 {
			t.Fatalf("%s run: %d pessimistic fallbacks on an uncontended pass", name, got)
		}
	}
}

// TestSocialWriteCoalescing pins the coalescing property on a write-only
// mix, where lock counts still measure it cleanly: the grouped discipline
// (one transaction per composite, several writes coalesced) must acquire
// strictly fewer physical locks than one transaction per member. Read
// mixes no longer discriminate — read-only groups acquire zero locks in
// both disciplines via the optimistic path.
func TestSocialWriteCoalescing(t *testing.T) {
	mix := SocialMix{AddPosts: 60, RemovePosts: 40}
	run := func(grouped bool) (uint64, *LockCounts) {
		s := MustSocial()
		s.Grouped = grouped
		s.Counts = &LockCounts{}
		state := uint64(11)
		var sum uint64
		for i := 0; i < 1500; i++ {
			sum += SocialOp(s, &state, mix, 16)
		}
		return sum, s.Counts
	}
	gSum, gCounts := run(true)
	sSum, sCounts := run(false)
	if gSum != sSum {
		t.Fatalf("checksums diverge: grouped %d, sequential %d", gSum, sSum)
	}
	if gCounts.Acquired.Load() >= sCounts.Acquired.Load() {
		t.Fatalf("grouped write run acquired %d locks, sequential %d — coalescing must win",
			gCounts.Acquired.Load(), sCounts.Acquired.Load())
	}
}

// TestSocialMixedOCC pins the tentpole invariant the PR-4 benchguard
// exemption papered over: with mixed groups committing Silo-style (write
// locks + validated lock-free reads), the grouped discipline acquires
// STRICTLY FEWER physical locks than its sequential decomposition on the
// Follow-heavy mixed mix — and the OCC path itself takes zero shared
// locks, zero retries and zero fallbacks on the uncontended deterministic
// pass.
func TestSocialMixedOCC(t *testing.T) {
	core.SetAudit(true)
	defer core.SetAudit(false)
	run := func(grouped bool) (uint64, *LockCounts) {
		s := MustSocial()
		s.Grouped = grouped
		s.Counts = &LockCounts{}
		state := uint64(23)
		var sum uint64
		for i := 0; i < 1500; i++ {
			sum += SocialOp(s, &state, MixedSocialMix(), 16)
		}
		return sum, s.Counts
	}
	gSum, gCounts := run(true)
	sSum, sCounts := run(false)
	if gSum != sSum {
		t.Fatalf("checksums diverge: grouped %d, sequential %d", gSum, sSum)
	}
	if gCounts.OCCBatches.Load() == 0 {
		t.Fatal("grouped mixed run committed no batches via the OCC path")
	}
	if sCounts.OCCBatches.Load() != 0 {
		t.Fatalf("sequential run reported %d OCC batches; single-member groups are never mixed",
			sCounts.OCCBatches.Load())
	}
	if got := gCounts.OCCSharedLocks.Load(); got != 0 {
		t.Fatalf("OCC commits acquired %d shared locks, want 0", got)
	}
	if got := gCounts.OCCRetries.Load(); got != 0 {
		t.Fatalf("%d validation retries on an uncontended single-threaded pass", got)
	}
	if got := gCounts.OCCFallbacks.Load(); got != 0 {
		t.Fatalf("%d OCC fallbacks on an uncontended single-threaded pass", got)
	}
	if gCounts.OCCReadSet.Load() == 0 || gCounts.OCCWriteLocks.Load() == 0 {
		t.Fatalf("OCC counters empty: writeLocks=%d readSet=%d",
			gCounts.OCCWriteLocks.Load(), gCounts.OCCReadSet.Load())
	}
	// The restored invariant: a batch never out-locks its sequential
	// decomposition, mixed groups included.
	if gCounts.Acquired.Load() >= sCounts.Acquired.Load() {
		t.Fatalf("grouped mixed run acquired %d locks, sequential %d — OCC must restore batched < sequential",
			gCounts.Acquired.Load(), sCounts.Acquired.Load())
	}
}

// TestSocialMixedConcurrent stresses the Follow-heavy mixed mix across
// threads (run with -race in CI): every mixed group must converge —
// validate within its attempt budget or fall back to 2PL — and leave all
// three relations well-formed.
func TestSocialMixedConcurrent(t *testing.T) {
	s := MustSocial()
	cfg := Config{Threads: 4, OpsPerThread: 200, KeySpace: 6, Seed: 9}
	res := RunSocial(s, cfg, MixedSocialMix())
	if res.Ops != 800 {
		t.Fatalf("ran %d ops", res.Ops)
	}
	for _, r := range []*core.Relation{s.Users, s.Posts, s.Follows} {
		if _, err := r.VerifyWellFormed(); err != nil {
			t.Fatalf("%s ill-formed: %v", r.Name(), err)
		}
	}
}

// TestSocialConcurrent smokes the registry under concurrent composite
// operations (run with -race in CI).
func TestSocialConcurrent(t *testing.T) {
	s := MustSocial()
	cfg := Config{Threads: 4, OpsPerThread: 200, KeySpace: 6, Seed: 3}
	res := RunSocial(s, cfg, DefaultSocialMix())
	if res.Ops != 800 {
		t.Fatalf("ran %d ops", res.Ops)
	}
	for _, r := range []*core.Relation{s.Users, s.Posts, s.Follows} {
		if _, err := r.VerifyWellFormed(); err != nil {
			t.Fatalf("%s ill-formed: %v", r.Name(), err)
		}
	}
}
