package workload

import (
	"fmt"
	"math"
)

// This file adds skewed key generation to the workload drivers. The §6.2
// methodology draws node ids uniformly, which understates contention:
// real access distributions are Zipf-like, concentrating traffic on a few
// hot keys whose epoch cells then invalidate concurrent OCC read-sets.
// SkewedKey biases the uniform draw toward low ids with a power-law
// inverse-CDF transform — a cheap stand-in for exact Zipf sampling that
// needs no per-keyspace precomputation and degenerates exactly to the
// historical uniform draw at skew 0, so archived BENCH_*.json checksums
// are unchanged when the -skew flag is off.

// SkewedKey maps one uniform 64-bit draw onto [0, keySpace). skew in
// [0, 1) controls the bias: 0 reproduces the uniform modular draw bit for
// bit; as skew approaches 1 the mass concentrates on the lowest ids (the
// hot keys), with exponent 1/(1-skew) — skew 0.5 squares the uniform
// fraction, skew 0.9 raises it to the 10th power, etc.
func SkewedKey(u uint64, keySpace int64, skew float64) int64 {
	if skew <= 0 {
		return int64(u % uint64(keySpace))
	}
	x := float64(u%uint64(keySpace)) / float64(keySpace)
	id := int64(math.Pow(x, 1/(1-skew)) * float64(keySpace))
	if id >= keySpace {
		id = keySpace - 1
	}
	return id
}

// validSkew panics unless skew is in the supported [0, 1) range.
func validSkew(skew float64) {
	if skew < 0 || skew >= 1 || math.IsNaN(skew) {
		panic(fmt.Sprintf("workload: skew %v outside [0, 1)", skew))
	}
}

// SocialOpSkewed is SocialOp with the operand node ids drawn through
// SkewedKey instead of the uniform modular draw. At skew 0 it is
// bit-for-bit SocialOp.
func SocialOpSkewed(s *Social, state *uint64, mix SocialMix, keySpace int64, skew float64) uint64 {
	r := splitmix64(state)
	choice := int(r % 100)
	a := SkewedKey(r>>32, keySpace, skew)
	b := SkewedKey(r>>16, keySpace, skew)
	var sum uint64
	switch {
	case choice < mix.AddPosts:
		if s.AddPost(a, b, int64(r>>40)) {
			sum++
		}
	case choice < mix.AddPosts+mix.RemovePosts:
		if s.RemovePost(a, b) {
			sum++
		}
	case choice < mix.AddPosts+mix.RemovePosts+mix.Follows:
		sum += uint64(s.Follow(a, b, int64(r>>40)))
	default:
		sum += uint64(s.ProfileSnapshot(a))
	}
	return sum
}

// RunSocialSkewed executes the cross-relation benchmark with skewed key
// draws: identical to RunSocial except every operand id passes through
// SkewedKey. Under skew, concurrent Follows pile onto the same followees,
// so the OCC validation-retry and fallback counters — flat at zero on the
// uniform uncontended pass — become the observable signal.
func RunSocialSkewed(s *Social, cfg Config, mix SocialMix, skew float64) Result {
	validSkew(skew)
	if !mix.valid() {
		panic(fmt.Sprintf("workload: social mix %s does not sum to 100", mix))
	}
	return runWorkers(cfg, func(state *uint64) uint64 {
		return SocialOpSkewed(s, state, mix, cfg.KeySpace, skew)
	})
}
