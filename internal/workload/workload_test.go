package workload

import (
	"sync"
	"testing"

	"repro/internal/graphreps"
)

// fakeGraph counts operations, for harness accounting tests.
type fakeGraph struct {
	mu                         sync.Mutex
	succ, pred, insert, remove int
}

func (f *fakeGraph) FindSuccessors(int64) int {
	f.mu.Lock()
	f.succ++
	f.mu.Unlock()
	return 1
}
func (f *fakeGraph) FindPredecessors(int64) int {
	f.mu.Lock()
	f.pred++
	f.mu.Unlock()
	return 1
}
func (f *fakeGraph) InsertEdge(int64, int64, int64) bool {
	f.mu.Lock()
	f.insert++
	f.mu.Unlock()
	return true
}
func (f *fakeGraph) RemoveEdge(int64, int64) bool {
	f.mu.Lock()
	f.remove++
	f.mu.Unlock()
	return true
}

func TestMixString(t *testing.T) {
	m := Mix{Successors: 70, Predecessors: 0, Inserts: 20, Removes: 10}
	if m.String() != "70-0-20-10" {
		t.Fatalf("Mix.String = %s", m.String())
	}
}

func TestFigure5Mixes(t *testing.T) {
	mixes := Figure5Mixes()
	if len(mixes) != 4 {
		t.Fatalf("want 4 mixes, got %d", len(mixes))
	}
	want := []string{"70-0-20-10", "35-35-20-10", "0-0-50-50", "45-45-9-1"}
	for i, m := range mixes {
		if m.String() != want[i] {
			t.Errorf("mix %d = %s, want %s", i, m, want[i])
		}
		if !m.valid() {
			t.Errorf("mix %s does not sum to 100", m)
		}
	}
}

func TestRunAccounting(t *testing.T) {
	f := &fakeGraph{}
	cfg := Config{Threads: 3, OpsPerThread: 1000, KeySpace: 64, Seed: 7,
		Mix: Mix{Successors: 70, Predecessors: 0, Inserts: 20, Removes: 10}}
	res := Run(f, cfg)
	total := f.succ + f.pred + f.insert + f.remove
	if total != 3000 || res.Ops != 3000 {
		t.Fatalf("executed %d ops, result says %d, want 3000", total, res.Ops)
	}
	if f.pred != 0 {
		t.Fatalf("mix has 0%% predecessors but %d ran", f.pred)
	}
	// Roughly proportional: successors ≈ 70%.
	if f.succ < 1800 || f.succ > 2400 {
		t.Fatalf("successors = %d, expected ≈ 2100", f.succ)
	}
	if res.Throughput <= 0 || res.Checksum == 0 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestRunDeterministicChecksumSingleThread(t *testing.T) {
	// One thread ⇒ a fixed seed must give identical op streams.
	mk := func() Result {
		v, err := graphreps.VariantByName("Stick 3")
		if err != nil {
			t.Fatal(err)
		}
		r, err := v.Build()
		if err != nil {
			t.Fatal(err)
		}
		return Run(MustRelationGraph(r), Config{
			Threads: 1, OpsPerThread: 3000, KeySpace: 32, Seed: 42,
			Mix: Mix{Successors: 50, Predecessors: 25, Inserts: 15, Removes: 10}})
	}
	a, b := mk(), mk()
	if a.Checksum != b.Checksum {
		t.Fatalf("single-thread runs not reproducible: %d vs %d", a.Checksum, b.Checksum)
	}
}

func TestRunOnRealVariantsParallel(t *testing.T) {
	for _, name := range []string{"Stick 1", "Split 3", "Diamond 1"} {
		t.Run(name, func(t *testing.T) {
			v, err := graphreps.VariantByName(name)
			if err != nil {
				t.Fatal(err)
			}
			r, err := v.Build()
			if err != nil {
				t.Fatal(err)
			}
			res := Run(MustRelationGraph(r), Config{
				Threads: 4, OpsPerThread: 500, KeySpace: 16, Seed: 3,
				Mix: Figure5Mixes()[1]})
			if res.Ops != 2000 || res.Throughput <= 0 {
				t.Fatalf("bad result %+v", res)
			}
			// The relation must still be structurally sound afterwards.
			if _, err := r.VerifyWellFormed(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSeries(t *testing.T) {
	v, err := graphreps.VariantByName("Stick 2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{OpsPerThread: 200, KeySpace: 16, Seed: 1, Mix: Figure5Mixes()[0]}
	results := Series(func() GraphOps {
		r, err := v.Build()
		if err != nil {
			t.Fatal(err)
		}
		return MustRelationGraph(r)
	}, cfg, []int{1, 2, 4})
	if len(results) != 3 {
		t.Fatalf("want 3 results, got %d", len(results))
	}
	for i, k := range []int{1, 2, 4} {
		if results[i].Ops != k*200 {
			t.Fatalf("series %d ops = %d", i, results[i].Ops)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Threads: 0, OpsPerThread: 1, KeySpace: 1, Mix: Figure5Mixes()[0]},
		{Threads: 1, OpsPerThread: 1, KeySpace: 1, Mix: Mix{Successors: 50}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			Run(&fakeGraph{}, cfg)
		}()
	}
}
