package autotune

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/query"
	"repro/internal/rel"
)

// This file is the ONLINE half of the autotuner: instead of measuring
// candidates offline under a synthetic workload (autotune.go), it folds
// the counters every relation harvests during real traffic
// (core.Counters) into the batch-aware cost model and, when a better
// container choice emerges — typically upgrading non-concurrent
// containers to their concurrent archetypes, which unlocks the lock-free
// read-only path and Silo-style OCC — triggers a live migration through
// Registry.Migrate. The decision rule (RecommendKinds) is shared by the
// in-process Advisor loop, crstune -live and cmd/crsd's -adapt mode, so
// an offline dump and the online loop always agree.

// Config bounds the online advisor's decision rule.
type Config struct {
	// MinOps is the minimum number of observed operations (reads+writes)
	// on a relation before the advisor will consider migrating it —
	// below it the read fraction is noise.
	MinOps uint64
	// Margin is the relative cost improvement [0,1] the upgraded
	// representation must promise under the observed profile before a
	// migration is recommended.
	Margin float64
	// Members and SharedPrefix parameterize the BatchProfile the
	// observed read fraction is folded into (see query.BatchProfile);
	// zero values mean solo batches with no shared prefix.
	Members      int
	SharedPrefix float64
}

// DefaultConfig returns the advisor defaults: 1000 observed operations,
// a 10% required improvement, solo batches.
func DefaultConfig() Config {
	return Config{MinOps: 1000, Margin: 0.10, Members: 1}
}

// UpgradeKind maps a container kind to its concurrency-safe archetype:
// HashMap → ConcurrentHashMap, TreeMap → ConcurrentSkipListMap (same
// iteration order contract, per Figure 1). Kinds that are already safe
// map to themselves; the second result reports whether anything changed.
func UpgradeKind(k container.Kind) (container.Kind, bool) {
	switch k {
	case container.HashMap:
		return container.ConcurrentHashMap, true
	case container.TreeMap:
		return container.ConcurrentSkipListMap, true
	default:
		return k, false
	}
}

// upgradeKindName is UpgradeKind on Kind.String() names, for decision
// passes that only have a harvested snapshot (crstune -live).
func upgradeKindName(name string) (string, bool) {
	switch name {
	case container.HashMap.String():
		return container.ConcurrentHashMap.String(), true
	case container.TreeMap.String():
		return container.ConcurrentSkipListMap.String(), true
	default:
		return name, false
	}
}

// ProfileFromCounters folds one relation's harvested counters into the
// batch-aware costing profile: the observed read fraction, plus the
// configured batch shape.
func ProfileFromCounters(rc core.RelationCounters, cfg Config) query.BatchProfile {
	prof := query.BatchProfile{Members: cfg.Members, SharedPrefix: cfg.SharedPrefix}
	if prof.Members < 1 {
		prof.Members = 1
	}
	if total := rc.Reads + rc.Writes; total > 0 {
		prof.ReadFrac = float64(rc.Reads) / float64(total)
	}
	return prof
}

// pathCost estimates the relative per-operation synchronization cost of
// a representation under a profile. Reads on an optimistic-capable
// representation validate epochs instead of locking (§6.2's lock-free
// read path), so they are discounted; writes pay slightly more on
// concurrent containers (CAS traffic) than on their plain counterparts.
// The absolute numbers only matter relative to each other — the advisor
// compares the same workload under two container choices.
func pathCost(optimistic bool, prof query.BatchProfile) float64 {
	readCost, writeCost := 1.0, 1.5
	if optimistic {
		readCost, writeCost = 0.25, 1.65
	}
	f := prof.ReadFrac
	if f < 0 {
		f = 0
	} else if f > 1 {
		f = 1
	}
	// Locked operations amortize across the batch's coalesced growing
	// phase; epoch validation doesn't need to.
	n := float64(prof.Members)
	if n < 1 {
		n = 1
	}
	locked := f*readCost + (1-f)*writeCost
	if optimistic {
		return f*readCost + (1-f)*writeCost/((n+1)/2)
	}
	return locked / ((n + 1) / 2)
}

// Recommendation is the advisor's proposal for one relation: upgrade its
// containers to the listed kinds.
type Recommendation struct {
	// Relation names the relation to migrate.
	Relation string
	// From and To list the container kinds of every decomposition edge,
	// in edge-index order, before and after the proposed migration.
	From, To []string
	// ReadFrac is the observed read fraction that justified the upgrade.
	ReadFrac float64
	// CostBefore and CostAfter are the modeled relative per-operation
	// costs under the observed profile.
	CostBefore, CostAfter float64
	// Reason is a one-line human-readable justification.
	Reason string
}

// RecommendKinds is the shared decision rule, computable from a
// harvested snapshot alone: if the relation has seen enough traffic, is
// not optimistic-capable, and upgrading its non-concurrent containers
// would beat the current representation by at least cfg.Margin under the
// observed profile, it returns the proposed kinds. crstune -live runs
// exactly this on an offline dump; Recommend materializes the same
// proposal against a live relation.
func RecommendKinds(rc core.RelationCounters, cfg Config) (*Recommendation, bool) {
	if rc.Reads+rc.Writes < cfg.MinOps {
		return nil, false
	}
	if rc.OptimisticCapable {
		return nil, false
	}
	to := make([]string, len(rc.Containers))
	changed := false
	for i, name := range rc.Containers {
		up, ok := upgradeKindName(name)
		to[i] = up
		changed = changed || ok
	}
	if !changed {
		return nil, false
	}
	prof := ProfileFromCounters(rc, cfg)
	before := pathCost(false, prof)
	after := pathCost(true, prof)
	if math.IsNaN(after) || after > before*(1-cfg.Margin) {
		return nil, false
	}
	return &Recommendation{
		Relation:   rc.Name,
		From:       append([]string(nil), rc.Containers...),
		To:         to,
		ReadFrac:   prof.ReadFrac,
		CostBefore: before,
		CostAfter:  after,
		Reason: fmt.Sprintf("read fraction %.2f over %d ops: upgrading containers unlocks the optimistic paths (modeled cost %.2f → %.2f)",
			prof.ReadFrac, rc.Reads+rc.Writes, before, after),
	}, true
}

// Materialize turns a recommendation into the target representation for
// Registry.Migrate: the relation's current decomposition with upgraded
// container kinds, and its current placement rebased onto it (falling
// back to the fine-grain default if the rebased placement is illegal
// under the new kinds).
func Materialize(r *core.Relation, rec *Recommendation) (*decomp.Decomposition, *locks.Placement, error) {
	d := r.Decomposition()
	d2, err := d.WithContainers(func(e *decomp.Edge) container.Kind {
		up, _ := UpgradeKind(e.Container)
		return up
	})
	if err != nil {
		return nil, nil, fmt.Errorf("autotune: upgrade containers of %s: %w", rec.Relation, err)
	}
	p2, err := locks.Rebase(r.Placement(), d2)
	if err != nil {
		p2 = locks.FineGrained(d2)
		if verr := p2.Validate(); verr != nil {
			return nil, nil, fmt.Errorf("autotune: no legal placement for upgraded %s: %w", rec.Relation, verr)
		}
	}
	return d2, p2, nil
}

// Recommend applies the shared decision rule to a live relation and, on
// a hit, materializes the target representation.
func Recommend(r *core.Relation, rc core.RelationCounters, cfg Config) (*Recommendation, *decomp.Decomposition, *locks.Placement, bool) {
	rec, ok := RecommendKinds(rc, cfg)
	if !ok {
		return nil, nil, nil, false
	}
	d2, p2, err := Materialize(r, rec)
	if err != nil {
		return nil, nil, nil, false
	}
	return rec, d2, p2, true
}

// Advisor is the online representation advisor: a loop that periodically
// harvests a registry's counters, runs the shared decision rule on every
// relation, and triggers live migrations for the hits. cmd/crsd runs one
// behind -adapt.
type Advisor struct {
	// Registry is the registry being advised.
	Registry *core.Registry
	// Config bounds the decision rule; zero value means DefaultConfig.
	Config Config
	// Interval is the harvest period of Start's loop (default 1s).
	Interval time.Duration
	// Source overrides where Step harvests counters from — tests inject
	// deterministic snapshots here. Nil means Registry.Harvest.
	Source func() core.Counters
	// OnMigrate, when non-nil, observes every migration Step triggers
	// (with the error, if it failed).
	OnMigrate func(rec *Recommendation, ev *core.MigrationEvent, err error)

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// cfg returns the effective config (zero value → defaults).
func (a *Advisor) cfg() Config {
	c := a.Config
	if c == (Config{}) {
		c = DefaultConfig()
	}
	return c
}

// Step runs one advisor pass: harvest, decide, migrate. It returns the
// migration events it triggered (nil most passes). Concurrent Steps are
// safe — Registry.Migrate serializes — but pointless.
func (a *Advisor) Step() ([]*core.MigrationEvent, error) {
	cfg := a.cfg()
	var c core.Counters
	if a.Source != nil {
		c = a.Source()
	} else {
		c = a.Registry.Harvest()
	}
	var evs []*core.MigrationEvent
	var firstErr error
	for _, rc := range c.Relations {
		r := a.Registry.RelationByName(rc.Name)
		if r == nil {
			continue
		}
		rec, d2, p2, ok := Recommend(r, rc, cfg)
		if !ok {
			continue
		}
		ev, err := a.Registry.Migrate(rc.Name, core.WithDecomposition(d2), core.WithPlacement(p2))
		if a.OnMigrate != nil {
			a.OnMigrate(rec, ev, err)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		evs = append(evs, ev)
	}
	return evs, firstErr
}

// Start launches the advisor loop in a goroutine; Stop ends it. A
// started advisor must be stopped exactly once.
func (a *Advisor) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stop != nil {
		return
	}
	interval := a.Interval
	if interval <= 0 {
		interval = time.Second
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	stop, done := a.stop, a.done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_, _ = a.Step()
			}
		}
	}()
}

// Stop ends a started advisor loop and waits for it to exit. Stopping a
// never-started advisor is a no-op.
func (a *Advisor) Stop() {
	a.mu.Lock()
	stop, done := a.stop, a.done
	a.stop, a.done = nil, nil
	a.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// PickGeneric returns a representation picker for core.WithPicker (the
// public crs.WithAutotune): enumerate adequate structures for the
// specification (§6.1's first phase, at most structLimit per sharing
// mode; ≤ 0 means the enumerator default), pair each with the coarse and
// fine placements, and statically prefer representations that keep the
// optimistic read path available with the fewest containers.
func PickGeneric(structLimit int) func(rel.Spec) (*decomp.Decomposition, *locks.Placement, error) {
	return func(spec rel.Spec) (*decomp.Decomposition, *locks.Placement, error) {
		var bestD *decomp.Decomposition
		var bestP *locks.Placement
		best := math.Inf(1)
		for _, share := range []bool{false, true} {
			ds, err := decomp.Enumerate(spec, decomp.EnumOptions{Share: share, Limit: structLimit})
			if err != nil {
				return nil, nil, err
			}
			for _, d := range ds {
				// Each structure competes twice: with the enumerator's
				// default containers and with their concurrent archetypes
				// (the same UpgradeKind mapping the online advisor applies).
				cands := []*decomp.Decomposition{d}
				if up, uerr := d.WithContainers(func(e *decomp.Edge) container.Kind {
					k, _ := UpgradeKind(e.Container)
					return k
				}); uerr == nil {
					cands = append(cands, up)
				}
				for _, dc := range cands {
					for _, p := range []*locks.Placement{locks.FineGrained(dc), locks.Coarse(dc)} {
						if p.Validate() != nil {
							continue
						}
						s := structScore(dc, p)
						if s < best {
							best, bestD, bestP = s, dc, p
						}
					}
				}
			}
		}
		if bestD == nil {
			return nil, nil, fmt.Errorf("autotune: no legal representation for %s", spec)
		}
		return bestD, bestP, nil
	}
}

// structScore statically ranks a (decomposition, placement) pair with no
// workload information: keeping the lock-free read path available
// dominates, then fewer edges (fewer container hops per operation), then
// fine- over coarse-grain placement (no serialization bottleneck).
func structScore(d *decomp.Decomposition, p *locks.Placement) float64 {
	s := float64(len(d.Edges))
	optimistic := true
	for _, e := range d.Edges {
		if !container.PropertiesOf(e.Container).ConcurrencySafe() {
			optimistic = false
		}
	}
	if !optimistic {
		s += 100
	}
	coarse := true
	for _, r := range p.Rules {
		if r.At != d.Root || r.Speculative {
			coarse = false
			break
		}
	}
	if coarse && len(d.Nodes) > 1 {
		s += 10
	}
	return s
}
