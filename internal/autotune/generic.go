package autotune

import (
	"fmt"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/graphreps"
	"repro/internal/locks"
	"repro/internal/rel"
)

// EnumerateGeneric generates candidates from *generically enumerated*
// structures (internal/decomp.Enumerate) rather than the hand-built
// Figure 3 families: the full §6.1 pipeline — choose an adequate
// structure, choose a well-formed placement, then choose containers the
// placement permits. Structure enumeration includes sharing, so diamonds
// appear alongside sticks and splits.
//
// For every structure three placements are attempted: coarse (ψ1), fine
// (ψ2), and striped (ψ3: root out-edges striped by their own columns
// across graphreps.StripeFactor root locks, with the top containers
// re-assigned to ConcurrentHashMap). Illegal combinations are skipped.
func EnumerateGeneric(spec rel.Spec, structLimit int) ([]Candidate, error) {
	if structLimit <= 0 {
		structLimit = 64
	}
	var structures []*decomp.Decomposition
	for _, share := range []bool{false, true} {
		ds, err := decomp.Enumerate(spec, decomp.EnumOptions{Share: share, Limit: structLimit})
		if err != nil {
			return nil, err
		}
		structures = append(structures, ds...)
	}
	var out []Candidate
	for i, d := range structures {
		d := d
		name := fmt.Sprintf("gen%03d", i)
		out = append(out,
			Candidate{
				Name:        name + "/coarse",
				Family:      "generic",
				Description: "enumerated structure, coarse placement",
				Build: func() (*core.Relation, error) {
					return core.Synthesize(d, locks.Coarse(d))
				},
			},
			Candidate{
				Name:        name + "/fine",
				Family:      "generic",
				Description: "enumerated structure, fine placement",
				Build: func() (*core.Relation, error) {
					return core.Synthesize(d, locks.FineGrained(d))
				},
			},
			Candidate{
				Name:        name + "/striped",
				Family:      "generic",
				Description: "enumerated structure, striped root, concurrent top containers",
				Build: func() (*core.Relation, error) {
					dd, err := d.WithContainers(func(e *decomp.Edge) container.Kind {
						if e.Src == d.Root && e.Container != container.Cell {
							return container.ConcurrentHashMap
						}
						return e.Container
					})
					if err != nil {
						return nil, err
					}
					p := locks.NewPlacement(dd)
					p.SetStripes(dd.Root, graphreps.StripeFactor)
					for _, e := range dd.Root.Out {
						if e.Container == container.Cell {
							p.Place(e, dd.Root)
							continue
						}
						p.Place(e, dd.Root, e.Cols...)
					}
					if err := p.Validate(); err != nil {
						return nil, err
					}
					return core.Synthesize(dd, p)
				},
			},
		)
	}
	return out, nil
}
