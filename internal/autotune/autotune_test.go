package autotune

import (
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/workload"
)

func TestEnumerationCount(t *testing.T) {
	cands := EnumerateGraph()
	byFamily := map[string]int{}
	for _, c := range cands {
		byFamily[c.Family]++
	}
	// Per side: coarse(4) + fine(4) + striped1(4) + striped1024(4) = 16,
	// plus speculative(4) on diamond sides = 20.
	if byFamily["stick"] != 16 {
		t.Errorf("stick variants = %d, want 16", byFamily["stick"])
	}
	if byFamily["split"] != 256 {
		t.Errorf("split variants = %d, want 256", byFamily["split"])
	}
	if byFamily["diamond"] != 400 {
		t.Errorf("diamond variants = %d, want 400", byFamily["diamond"])
	}
	if len(cands) != 672 {
		t.Errorf("total = %d, want 672 (paper's enumeration: 448)", len(cands))
	}
	// Names unique.
	seen := map[string]bool{}
	for _, c := range cands {
		if seen[c.Name] {
			t.Fatalf("duplicate candidate name %s", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestAllCandidatesBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, c := range EnumerateGraph() {
		r, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if r == nil {
			t.Fatalf("%s: nil relation", c.Name)
		}
	}
}

func TestStaticCostOrdersPredecessorPlans(t *testing.T) {
	// For a predecessor-heavy mix, a stick must cost more than a split
	// statically (sticks scan the whole top level for predecessors).
	cands := EnumerateGraph()
	var stick, split *Candidate
	for i := range cands {
		if cands[i].Name == "stick[striped(1024)/ConcurrentHashMap-of-TreeMap]" {
			stick = &cands[i]
		}
		if cands[i].Name == "split[striped(1024)/ConcurrentHashMap-of-TreeMap|striped(1024)/ConcurrentHashMap-of-TreeMap]" {
			split = &cands[i]
		}
	}
	if stick == nil || split == nil {
		var names []string
		for _, c := range cands[:20] {
			names = append(names, c.Name)
		}
		t.Fatalf("expected candidates not found; sample names: %s", strings.Join(names, ", "))
	}
	mix := workload.Mix{Successors: 45, Predecessors: 45, Inserts: 9, Removes: 1}
	rs, err := stick.Build()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := StaticCost(rs, mix)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := split.Build()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := StaticCost(rp, mix)
	if err != nil {
		t.Fatal(err)
	}
	if cs <= cp {
		t.Fatalf("stick static cost %f should exceed split %f on predecessor-heavy mix", cs, cp)
	}
}

func TestTuneSmallSample(t *testing.T) {
	// Tune a handful of candidates with a tiny training run; ranking must
	// be well formed (sorted by throughput, all measured).
	cands := EnumerateGraph()[:6]
	cfg := workload.Config{Threads: 2, OpsPerThread: 300, KeySpace: 32, Seed: 1,
		Mix: workload.Figure5Mixes()[0]}
	scored, err := Tune(cands, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) != 6 {
		t.Fatalf("scored %d, want 6", len(scored))
	}
	for i := 1; i < len(scored); i++ {
		if scored[i].Result.Throughput > scored[i-1].Result.Throughput {
			t.Fatal("ranking not sorted")
		}
	}
	for _, s := range scored {
		if s.Result.Ops == 0 {
			t.Fatalf("%s not measured", s.Name)
		}
	}
}

func TestTuneTopStaticFilter(t *testing.T) {
	cands := EnumerateGraph()[:10]
	cfg := workload.Config{Threads: 1, OpsPerThread: 200, KeySpace: 16, Seed: 1,
		Mix: workload.Figure5Mixes()[0]}
	scored, err := Tune(cands, cfg, Options{TopStatic: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) != 3 {
		t.Fatalf("TopStatic=3 but measured %d", len(scored))
	}
}

func TestStaticBatchCostAmortizes(t *testing.T) {
	// Under a batch profile the lock portion of every plan is amortized
	// across the group's members, so the batch-aware estimate must be
	// strictly cheaper than the standalone one — and approach it again as
	// the profile degenerates to single-member batches.
	cands := EnumerateGraph()
	mix := workload.Figure5Mixes()[0]
	prof := query.BatchProfile{Members: 8, SharedPrefix: 0.5, ReadFrac: 0.5}
	single := query.BatchProfile{Members: 1}
	checked := 0
	for _, c := range cands[:12] {
		r, err := c.Build()
		if err != nil {
			continue
		}
		plain, err := StaticCost(r, mix)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		batched, err := StaticBatchCost(r, mix, prof)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if batched >= plain {
			t.Errorf("%s: batch cost %.3f not cheaper than standalone %.3f", c.Name, batched, plain)
		}
		lone, err := StaticBatchCost(r, mix, single)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if lone > plain+1e-9 {
			t.Errorf("%s: single-member batch cost %.3f exceeds standalone %.3f", c.Name, lone, plain)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no buildable candidates")
	}
}

func TestTuneBatchProfileRanking(t *testing.T) {
	// The batch-aware TopStatic cut must rank with BatchCost: every kept
	// candidate's Static field equals its StaticBatchCost under the
	// profile, not its standalone StaticCost.
	cands := EnumerateGraph()[:8]
	prof := query.BatchProfile{Members: 16, SharedPrefix: 0.75, ReadFrac: 0.7}
	cfg := workload.Config{Threads: 1, OpsPerThread: 200, KeySpace: 16, Seed: 1,
		Mix: workload.Figure5Mixes()[0]}
	scored, err := Tune(cands, cfg, Options{TopStatic: 3, Batch: &prof})
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) != 3 {
		t.Fatalf("TopStatic=3 but measured %d", len(scored))
	}
	for _, s := range scored {
		r, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		want, err := StaticBatchCost(r, cfg.Mix, prof)
		if err != nil {
			t.Fatal(err)
		}
		if s.Static != want {
			t.Errorf("%s: Static %.3f, want batch-aware %.3f", s.Name, s.Static, want)
		}
	}
}
