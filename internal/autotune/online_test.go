package autotune

import (
	"testing"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/locks"
	"repro/internal/rel"
)

func onlineSpec() rel.Spec {
	return rel.MustSpec([]string{"src", "dst", "weight"},
		rel.FD{From: []string{"src", "dst"}, To: []string{"weight"}})
}

func onlineDecomp(t testing.TB, top, mid container.Kind) *decomp.Decomposition {
	t.Helper()
	d, err := decomp.NewBuilder(onlineSpec(), "ρ").
		Edge("ρu", "ρ", "u", []string{"src"}, top).
		Edge("uv", "u", "v", []string{"dst"}, mid).
		Edge("vw", "v", "w", []string{"weight"}, container.Cell).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRecommendKinds pins the shared decision rule on snapshots alone:
// too little traffic → no; already optimistic → no; read-heavy
// non-concurrent → upgrade to the concurrent archetypes.
func TestRecommendKinds(t *testing.T) {
	cfg := DefaultConfig()
	base := core.RelationCounters{
		Name:       "edges",
		Containers: []string{"HashMap", "TreeMap", "Cell"},
		Reads:      9000,
		Writes:     1000,
	}
	if _, ok := RecommendKinds(base, cfg); !ok {
		t.Fatal("read-heavy non-concurrent relation not recommended for upgrade")
	}
	rec, _ := RecommendKinds(base, cfg)
	want := []string{"ConcurrentHashMap", "ConcurrentSkipListMap", "Cell"}
	for i, k := range want {
		if rec.To[i] != k {
			t.Fatalf("To = %v, want %v", rec.To, want)
		}
	}
	if rec.ReadFrac != 0.9 || rec.CostAfter >= rec.CostBefore {
		t.Fatalf("rec = %+v", rec)
	}

	cold := base
	cold.Reads, cold.Writes = 10, 1
	if _, ok := RecommendKinds(cold, cfg); ok {
		t.Fatal("recommended below MinOps")
	}
	done := base
	done.OptimisticCapable = true
	done.Containers = want
	if _, ok := RecommendKinds(done, cfg); ok {
		t.Fatal("recommended an already-optimistic relation")
	}
	writeHeavy := base
	writeHeavy.Reads, writeHeavy.Writes = 100, 9900
	if _, ok := RecommendKinds(writeHeavy, cfg); ok {
		t.Fatal("recommended a write-heavy relation (no modeled win)")
	}
}

// TestUpgradeKind pins the Figure 1 archetype mapping.
func TestUpgradeKind(t *testing.T) {
	cases := []struct {
		in, out container.Kind
		changed bool
	}{
		{container.HashMap, container.ConcurrentHashMap, true},
		{container.TreeMap, container.ConcurrentSkipListMap, true},
		{container.ConcurrentHashMap, container.ConcurrentHashMap, false},
		{container.Cell, container.Cell, false},
		{container.CopyOnWriteMap, container.CopyOnWriteMap, false},
	}
	for _, c := range cases {
		got, changed := UpgradeKind(c.in)
		if got != c.out || changed != c.changed {
			t.Fatalf("UpgradeKind(%s) = %s,%v; want %s,%v", c.in, got, changed, c.out, c.changed)
		}
	}
}

// TestAdvisorStepTriggersMigration is the deterministic advisor-trigger
// test: counters are injected through the Source hook (no real traffic
// needed), one Step migrates the relation to the concurrent family, and
// a second Step — now harvesting the real, migrated counters — is a
// no-op.
func TestAdvisorStepTriggersMigration(t *testing.T) {
	g := core.NewRegistry()
	d := onlineDecomp(t, container.HashMap, container.TreeMap)
	r, err := g.Synthesize("edges", d.Spec, core.WithDecomposition(d), core.WithPlacement(locks.FineGrained(d)))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if _, err := r.Insert(rel.T("src", i%4, "dst", i), rel.T("weight", i)); err != nil {
			t.Fatal(err)
		}
	}

	injected := true
	var migrated []*Recommendation
	adv := &Advisor{
		Registry: g,
		Source: func() core.Counters {
			c := g.Harvest()
			if injected {
				for i := range c.Relations {
					c.Relations[i].Reads = 9500
					c.Relations[i].Writes = 500
				}
			}
			return c
		},
		OnMigrate: func(rec *Recommendation, ev *core.MigrationEvent, err error) {
			if err != nil {
				t.Errorf("advisor migration failed: %v", err)
			}
			migrated = append(migrated, rec)
		},
	}
	evs, err := adv.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || len(migrated) != 1 {
		t.Fatalf("Step triggered %d migrations (%d observed)", len(evs), len(migrated))
	}
	if !evs[0].OptimisticAfter || evs[0].Backfilled != 20 {
		t.Fatalf("event = %+v", evs[0])
	}
	if !r.OptimisticCapable() {
		t.Fatal("advisor migration did not unlock the optimistic paths")
	}

	injected = false
	evs, err = adv.Step()
	if err != nil || len(evs) != 0 {
		t.Fatalf("second Step = %d migrations, err=%v", len(evs), err)
	}
	// Even with the hot profile re-injected, the relation is already
	// optimistic-capable — still a no-op.
	injected = true
	if evs, _ := adv.Step(); len(evs) != 0 {
		t.Fatal("advisor re-migrated an already-optimistic relation")
	}
}

// TestMaterializeRebase pins that a tuned placement (striped root)
// survives the container upgrade via locks.Rebase instead of collapsing
// to the fine-grain default.
func TestMaterializeRebase(t *testing.T) {
	g := core.NewRegistry()
	d := onlineDecomp(t, container.ConcurrentHashMap, container.TreeMap)
	p := locks.NewPlacement(d)
	p.SetStripes(d.Root, 64)
	p.Place(d.EdgeByName("ρu"), d.Root, "src")
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := g.Synthesize("edges", d.Spec, core.WithDecomposition(d), core.WithPlacement(p))
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recommendation{Relation: "edges"}
	d2, p2, err := Materialize(r, rec)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Edges[1].Container != container.ConcurrentSkipListMap {
		t.Fatalf("upgraded kinds = %s/%s", d2.Edges[0].Container, d2.Edges[1].Container)
	}
	if p2.StripeCount(d2.Root) != 64 {
		t.Fatalf("rebased stripe count = %d, want 64", p2.StripeCount(d2.Root))
	}
	if r := p2.RuleFor(d2.Edges[0]); r.At != d2.Root || len(r.StripeBy) != 1 || r.StripeBy[0] != "src" {
		t.Fatalf("rebased rule = %+v", r)
	}
	if _, err := g.Migrate("edges", core.WithDecomposition(d2), core.WithPlacement(p2)); err != nil {
		t.Fatalf("migrating to rebased placement: %v", err)
	}
}

// TestPickGeneric pins the WithAutotune picker: from the bare graph
// specification it selects a legal representation that keeps the
// optimistic read path available, and the picker plugs into the
// options-based synthesis entry points.
func TestPickGeneric(t *testing.T) {
	pick := PickGeneric(16)
	d, p, err := pick(onlineSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range d.Edges {
		if !container.PropertiesOf(e.Container).ConcurrencySafe() {
			t.Fatalf("picker chose non-concurrent container %s for %s", e.Container, e.Name)
		}
	}
	r, err := core.SynthesizeSpec(onlineSpec(), core.WithPicker(pick))
	if err != nil {
		t.Fatal(err)
	}
	if !r.OptimisticCapable() {
		t.Fatal("picked representation is not optimistic-capable")
	}
	if ok, err := r.Insert(rel.T("src", 1, "dst", 2), rel.T("weight", 3)); err != nil || !ok {
		t.Fatalf("picked relation insert: ok=%v err=%v", ok, err)
	}
	if n, err := r.Query(rel.T("src", 1), "dst"); err != nil || len(n) != 1 {
		t.Fatalf("picked relation query: %d rows err=%v", len(n), err)
	}
}
